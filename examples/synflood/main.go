// SYN flood attack emulation (§7.5): HyperTester generates 64-byte SYN
// packets with sweeping spoofed sources on four 100 Gbps ports at line
// rate, and the run extrapolates to the 6.5 Tbps switch of Table 8.
//
// Run with:
//
//	go run ./examples/synflood
package main

import (
	"fmt"
	"log"

	hypertester "github.com/hypertester/hypertester"
	"github.com/hypertester/hypertester/internal/costmodel"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/testbed"
)

const task = `
# SYN flood attack emulation
T1 = trigger()
    .set([dip, dport, proto, flag], [9.9.9.9, 80, tcp, SYN])
    .set(sip, range(201326592, 201392127, 1))
    .set(sport, range(1024, 65535, 1))
    .set(port, [0, 1, 2, 3])
`

func main() {
	ht := hypertester.New(hypertester.Config{
		Ports: []float64{100, 100, 100, 100}, Seed: 3,
	})
	if err := ht.LoadTaskSource("synflood", task); err != nil {
		log.Fatalf("load task: %v", err)
	}

	sinks := make([]*testbed.Sink, 4)
	for i := range sinks {
		sinks[i] = testbed.NewSink(ht.Sim, fmt.Sprintf("victim%d", i), 100)
		testbed.Connect(ht.Sim, ht.Port(i), sinks[i].Iface, testbed.DefaultCableDelay)
	}
	if err := ht.Start(); err != nil {
		log.Fatal(err)
	}
	ht.RunFor(30 * netsim.Microsecond)
	for _, s := range sinks {
		s.Reset()
	}
	ht.RunFor(500 * netsim.Microsecond)

	var gbps, mpps float64
	for i, s := range sinks {
		fmt.Printf("port %d: %.1f Gbps, %.1f Mpps of SYNs\n",
			i, s.ThroughputGbps(), s.RatePps()/1e6)
		gbps += s.ThroughputGbps()
		mpps += s.RatePps() / 1e6
	}
	fmt.Printf("\ntestbed total: %.0f Gbps, %.0f Mpps\n", gbps, mpps)
	fmt.Printf("emulated attack agents at 1 Mbps each: %.1e\n\n",
		gbps*1e3/costmodel.AgentTrafficMbps)

	est := costmodel.EstimateSynFlood(6500, 0.8)
	fmt.Printf("Table 8 estimation for a 6.5 Tbps switch at 80%% efficiency:\n")
	fmt.Printf("  %.0f Gbps, %.0f Mpps, %.1e agents\n",
		est.ThroughputGbps, est.SynPacketMpps, est.EmulatedAgents)
}
