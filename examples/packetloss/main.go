// Packet-loss measurement: one of the operator duties §1 motivates. The
// tester sends a counted probe stream through a lossy path to a reflector;
// sent and received reduce queries disagree by exactly the lost packets,
// and the random inter-departure feature (§3.1) makes the probe stream
// Poisson so the loss sample is unbiased (PASTA).
//
// Run with:
//
//	go run ./examples/packetloss
package main

import (
	"fmt"
	"log"

	hypertester "github.com/hypertester/hypertester"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/testbed"
)

const task = `
# Loss probing: Poisson probes (exponential inter-departure, mean 5us)
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 7, 7])
    .set(ipv4.id, range(0, 65535, 1))
    .set(interval, random('E', 5000, 0))
    .set(port, 0)
Q1 = query(T1).reduce(func=count)
Q2 = query().reduce(func=count)
`

func main() {
	const trueLoss = 0.02 // the path drops 2% of frames

	ht := hypertester.New(hypertester.Config{Ports: []float64{100}, Seed: 21})
	if err := ht.LoadTaskSource("loss", task); err != nil {
		log.Fatalf("load task: %v", err)
	}

	refl := testbed.NewReflector(ht.Sim, "far-end", 100)
	link := testbed.ConnectLossy(ht.Sim, ht.Port(0), refl.Iface, testbed.DefaultCableDelay, trueLoss, 5)

	if err := ht.Start(); err != nil {
		log.Fatal(err)
	}
	ht.RunFor(200 * netsim.Millisecond)

	q1, _ := ht.Report("Q1") // sent
	q2, _ := ht.Report("Q2") // received back
	sent, recv := q1.Matches, q2.Matches
	measured := 1 - float64(recv)/float64(sent)

	fmt.Printf("probes sent:     %d (Poisson, mean inter-departure 5us)\n", sent)
	fmt.Printf("echoes received: %d\n", recv)
	fmt.Printf("measured two-way loss: %.3f%%\n", 100*measured)
	fmt.Printf("link ground truth: %d dropped of %d offered (%.3f%% per traversal)\n",
		link.Dropped, link.Dropped+link.Delivered,
		100*float64(link.Dropped)/float64(link.Dropped+link.Delivered))
	twoWay := 1 - (1-trueLoss)*(1-trueLoss)
	fmt.Printf("expected two-way loss: %.3f%%\n", 100*twoWay)
}
