// Heavy-hitter monitoring: HyperTester's receive side as a standalone
// traffic monitor. A software generator (the MoonGen model) blasts a skewed
// flow mix at the tester; a reduce query counts per-source packets with the
// false-positive-free counter tables, and the CPU-side TopK report names
// the heavy hitters exactly.
//
// Run with:
//
//	go run ./examples/heavyhitter
package main

import (
	"fmt"
	"log"

	hypertester "github.com/hypertester/hypertester"
	"github.com/hypertester/hypertester/internal/core/htpr"
	"github.com/hypertester/hypertester/internal/moongen"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/testbed"
)

// The monitoring task: no triggers at all — HyperTester is purely capturing.
// (A generation-free task needs no injection port.)
const task = `
Q1 = query().filter(udp.dport == 9000).reduce(func=count, keys={ipv4.sip})
Q2 = query().filter(udp.dport == 9000).map(p -> (pkt_len)).reduce(func=sum, keys={ipv4.sip})
`

func main() {
	ht := hypertester.New(hypertester.Config{Ports: []float64{100}, Seed: 33})
	if err := ht.LoadTaskSource("heavyhitter", task); err != nil {
		log.Fatalf("load task: %v", err)
	}

	// A skewed source population: flow k sends proportionally to 1/(k+1)
	// (zipf-ish), built with the MoonGen generator's per-packet callback.
	const flows = 64
	weights := make([]int, 0, flows*8)
	for k := 0; k < flows; k++ {
		for w := 0; w < flows/(k+1); w++ {
			weights = append(weights, k)
		}
	}
	sim := ht.Sim
	g := moongen.New(sim, moongen.Config{
		Name: "traffic", PortGbps: 10, TargetPps: 2e6, HWRateControl: true, Seed: 33,
		Build: func(n uint64) []byte {
			k := weights[int(n)%len(weights)]
			raw, _ := netproto.BuildUDP(netproto.UDPSpec{
				SrcIP:   netproto.IPv4Addr(0x0a000000 + uint32(k)),
				DstIP:   netproto.MustIPv4("10.255.0.1"),
				SrcPort: 5000, DstPort: 9000, FrameLen: 64,
			})
			return raw
		},
	})
	testbed.Connect(sim, g.Iface, ht.Port(0), testbed.DefaultCableDelay)

	if err := ht.Start(); err != nil {
		log.Fatal(err)
	}
	g.Start(netsim.Time(20 * netsim.Millisecond))
	ht.RunFor(25 * netsim.Millisecond)

	q1, _ := ht.Report("Q1")
	q2, _ := ht.Report("Q2")
	fmt.Printf("monitored %d packets across %d sources\n\n", q1.Matches, len(q1.Results))

	fmt.Println("top 5 heavy hitters (exact counts, no sketch error):")
	bytesBySrc := map[uint64]uint64{}
	for _, r := range q2.Results {
		bytesBySrc[r.Key[0]] = r.Value
	}
	for i, r := range htpr.TopK(q1.Results, 5) {
		fmt.Printf("  #%d %v: %6d packets, %7d bytes\n",
			i+1, netproto.IPv4Addr(r.Key[0]), r.Value, bytesBySrc[r.Key[0]])
	}
	joined := htpr.Join(q1.Results, q2.Results)
	fmt.Printf("\njoined packet+byte report covers %d sources (CPU-side join)\n", len(joined))
}
