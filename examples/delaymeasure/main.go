// Delay measurement (§7.5, Fig. 18): measure a switch DUT's forwarding
// delay. Two methods run side by side:
//
//   - state-based, entirely in NTAPI: a delay() query stores a pipeline
//     timestamp per probe at egress and computes now-stored when the probe
//     returns (Fig. 18b);
//   - hardware timestamps captured at the MACs by tapping the cable
//     (Fig. 18a's most accurate method), as ground truth.
//
// Run with:
//
//	go run ./examples/delaymeasure
package main

import (
	"fmt"
	"log"

	hypertester "github.com/hypertester/hypertester"
	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/stats"
	"github.com/hypertester/hypertester/internal/testbed"
)

const task = `
# Delay probes: 64B UDP at 100Kpps, per-probe key in ipv4.id
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 7, 7])
    .set(ipv4.id, range(0, 65535, 1))
    .set(interval, 10us)
    .set(port, 0)
Q1 = query().filter(udp.dport == 7).delay(keys={ipv4.id})
`

func main() {
	ht := hypertester.New(hypertester.Config{Ports: []float64{100, 100}, Seed: 4})
	if err := ht.LoadTaskSource("delay", task); err != nil {
		log.Fatalf("load task: %v", err)
	}

	// DUT: a second programmable switch in plain forwarding mode. Probes
	// enter DUT port 0 and come back to the tester on its port 1 — but
	// the delay() query needs them back on the *sending* switch, so the
	// DUT's output loops to tester port 1.
	dut := testbed.NewForwardingDUT(ht.Sim, "dut", []float64{100, 100}, map[int]int{0: 1}, 99)

	txAt := map[uint64]netsim.Time{}
	var hwDelays []float64
	ht.Port(0).SetPeer(func(pkt *netproto.Packet, at netsim.Time) {
		txAt[pkt.Meta.UID] = at // MAC egress timestamp (HW)
		dut.Port(0).Receive(pkt)
	})
	dut.Port(1).SetPeer(func(pkt *netproto.Packet, at netsim.Time) {
		if tx, ok := txAt[pkt.Meta.UID]; ok {
			delete(txAt, pkt.Meta.UID)
			hwDelays = append(hwDelays, at.Sub(tx).Nanoseconds())
		}
		ht.Port(1).Receive(pkt)
	})

	if err := ht.Start(); err != nil {
		log.Fatal(err)
	}
	ht.RunFor(50 * netsim.Millisecond)

	truth := float64(asic.IngressLatencyNs+asic.TMLatencyNs+asic.EgressLatencyNs+asic.MACTxLatencyNs) +
		netproto.WireTimeNs(64, 100)
	fmt.Printf("true DUT forwarding delay:         %.1f ns\n\n", truth)
	fmt.Printf("HW (MAC) timestamps:               mean %.1f ns over %d probes\n",
		stats.Mean(hwDelays), len(hwDelays))

	q1, _ := ht.Report("Q1")
	fmt.Printf("state-based delay() query (SW ts): mean %.1f ns over %d probes\n",
		q1.DelayMeanNs, q1.DelaySamples)
	fmt.Printf("                                   min %.1f / max %.1f ns\n",
		q1.DelayMinNs, q1.DelayMaxNs)
	fmt.Println("\nThe SW-timestamp path measures the extra pipeline traversal on each")
	fmt.Println("side — a constant, calibratable offset above the HW result (Fig. 18).")
}
