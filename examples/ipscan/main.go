// Internet scanning (ZMap-style): stateless SYN probes sweep an address
// block; a distinct query counts responding hosts exactly — no false
// positives, thanks to exact key matching over the precomputed probe space.
//
// Run with:
//
//	go run ./examples/ipscan
package main

import (
	"fmt"
	"log"

	hypertester "github.com/hypertester/hypertester"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/testbed"
)

// Probe 11.0.0.0/16 (65536 addresses) on port 80, one pass.
const task = `
# IP scanning
T1 = trigger()
    .set([sip, proto, flag], [1.1.0.1, tcp, SYN])
    .set([dport, sport], [80, 1024])
    .set(dip, range(184549376, 184614911, 1))
    .set(loop, 1)
    .set(port, 0)
Q1 = query().filter(tcp_flag == SYN+ACK).distinct(keys={ipv4.sip})
Q2 = query().filter(tcp_flag == RST).reduce(func=count, keys={ipv4.sip})
`

func main() {
	ht := hypertester.New(hypertester.Config{Ports: []float64{100}, Seed: 11})
	if err := ht.LoadTaskSource("ipscan", task); err != nil {
		log.Fatalf("load task: %v", err)
	}

	// The scanned network: 3.2% of addresses are live; live hosts serve
	// 80/443 and RST other ports.
	target := testbed.NewScanTarget(ht.Sim, "internet", 100)
	target.LivePermille = 32
	testbed.Connect(ht.Sim, ht.Port(0), target.Iface, testbed.DefaultCableDelay)

	if err := ht.Start(); err != nil {
		log.Fatal(err)
	}
	ht.RunFor(10 * netsim.Millisecond)

	// Ground truth from the target model.
	live := 0
	for i := uint32(0); i < 65536; i++ {
		if target.Live(netproto.IPv4Addr(184549376 + i)) {
			live++
		}
	}

	fmt.Printf("probes sent:        %d\n", ht.Sender.FiredCount(1))
	fmt.Printf("probes seen by net: %d\n", target.ProbesSeen)
	fmt.Printf("live hosts (truth): %d\n", live)
	rep, _ := ht.Report("Q1")
	fmt.Printf("distinct SYN+ACK sources measured: %d\n", rep.Distinct)
	if rep.Distinct == live {
		fmt.Println("=> exact: counter-based distinct has no false positives (§5.2)")
	} else {
		fmt.Println("=> MISMATCH: investigate")
	}
}
