// Quickstart: the paper's Table 3 throughput-testing task, end to end.
//
// A single trigger generates 64-byte UDP packets at line rate on one
// 100 Gbps port; one query counts sent bytes, another counts received bytes
// (nothing comes back from a sink). Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hypertester "github.com/hypertester/hypertester"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/testbed"
)

const task = `
# Throughput testing (Table 3 of the paper)
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set([loop, length], [0, 64])
    .set(port, 0)
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
Q2 = query().map(p -> (pkt_len)).reduce(func=sum)
`

func main() {
	// One tester switch with a single 100G port.
	ht := hypertester.New(hypertester.Config{Ports: []float64{100}, Seed: 1})
	if err := ht.LoadTaskSource("throughput", task); err != nil {
		log.Fatalf("load task: %v", err)
	}

	// The device under test is a plain sink here: we measure what the
	// tester can generate.
	sink := testbed.NewSink(ht.Sim, "dut", 100)
	testbed.Connect(ht.Sim, ht.Port(0), sink.Iface, testbed.DefaultCableDelay)

	if err := ht.Start(); err != nil {
		log.Fatal(err)
	}
	// Warm up (the accelerator fills the recirculation loop), then measure.
	ht.RunFor(20 * netsim.Microsecond)
	sink.Reset()
	ht.RunFor(1 * netsim.Millisecond)

	fmt.Printf("generated: %.2f Gbps, %.2f Mpps (64B frames at 100G line rate)\n",
		sink.ThroughputGbps(), sink.RatePps()/1e6)
	for _, rep := range ht.Reports() {
		var total uint64
		for _, r := range rep.Results {
			total += r.Value
		}
		fmt.Printf("%s: %d packets matched, sum(pkt_len) = %d bytes\n",
			rep.Query, rep.Matches, total)
	}
	fmt.Printf("\ngenerated P4 program: %d bytes (see Table 5 for the LoC comparison)\n",
		len(ht.GeneratedP4()))
}
