// Package hypertester is a faithful, simulator-backed reproduction of
// HyperTester (Zhou et al., CoNEXT 2019): a high-performance network tester
// driven by programmable switches. Testing tasks are written against the
// Network Testing API (NTAPI) — packet-stream triggers and queries — and
// compiled onto a Tofino-class RMT switch model that implements
// template-based packet generation, timer-gated multicast replication,
// header editing, false-positive-free counter-based queries, and stateless
// connections, all on a deterministic picosecond-resolution virtual clock.
//
// A minimal session:
//
//	ht := hypertester.New(hypertester.Config{Ports: []float64{100, 100}})
//	task, _ := ntapi.Parse("throughput", src) // or build with the ntapi API
//	ht.LoadTask(task)
//	testbed.Connect(ht.Sim, ht.Port(0), deviceUnderTest, cableDelay)
//	ht.Start()
//	ht.RunFor(netsim.Millisecond)
//	for _, rep := range ht.Reports() { ... }
package hypertester

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/core/htpr"
	"github.com/hypertester/hypertester/internal/core/htps"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/core/stateless"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
	"github.com/hypertester/hypertester/internal/p4ir"
	"github.com/hypertester/hypertester/internal/switchcpu"
)

// Config describes the tester switch to build.
type Config struct {
	// Sim is the simulation to join; nil creates a fresh one.
	Sim *netsim.Sim
	// Ports lists front-panel port rates in Gbps (index = port ID).
	Ports []float64
	// RecircPaths is the number of recirculation paths (default 1);
	// raise it to emulate §6.1's loopback-port capacity extension.
	RecircPaths int
	// Seed drives all of the tester's randomness.
	Seed int64
	// Compiler tunes compilation (digest width, array sizes, ...).
	Compiler compiler.Options
	// Name labels the switch in diagnostics.
	Name string
}

// Tester is one HyperTester instance: a programmable switch plus its switch
// CPU, ready to load and execute one testing task at a time.
type Tester struct {
	Sim    *netsim.Sim
	Switch *asic.Switch
	CPU    *switchcpu.CPU

	Program  *compiler.Program
	Sender   *htps.Sender
	Receiver *htpr.Receiver

	cfg   Config
	trace *obs.Trace
}

// New builds a tester switch. Load a task with LoadTask before starting.
func New(cfg Config) *Tester {
	if cfg.Sim == nil {
		cfg.Sim = netsim.New()
	}
	if len(cfg.Ports) == 0 {
		cfg.Ports = []float64{100}
	}
	if cfg.Name == "" {
		cfg.Name = "hypertester"
	}
	if cfg.RecircPaths == 0 {
		cfg.RecircPaths = 1
	}
	sw := asic.New(asic.Config{
		Name: cfg.Name, Sim: cfg.Sim, PortGbps: cfg.Ports,
		RecircPaths: cfg.RecircPaths, Seed: cfg.Seed,
	})
	return &Tester{
		Sim:    cfg.Sim,
		Switch: sw,
		CPU:    switchcpu.New(cfg.Sim, sw),
		cfg:    cfg,
	}
}

// Port returns a front-panel port for testbed wiring.
func (t *Tester) Port(id int) *asic.Port { return t.Switch.Port(id) }

// EnableTrace attaches a per-packet lifecycle trace stream to the tester:
// the switch (parse/table/TM/mcast/recirculate/deparse/digest/drop/wire
// records) plus the SALU register arrays of any loaded task. Tracing is
// purely observational — enabling it changes no experiment result — and a
// nil stream disables it. Call any time; a task loaded later inherits the
// stream.
func (t *Tester) EnableTrace(tr *obs.Trace) {
	t.trace = tr
	t.Switch.SetTrace(tr)
	t.observeProgram()
}

// observeProgram binds the active task's register arrays to the trace.
func (t *Tester) observeProgram() {
	if t.trace == nil {
		return
	}
	if t.Sender != nil {
		t.Sender.Observe(t.Sim, t.trace)
	}
	if t.Receiver != nil {
		t.Receiver.Observe(t.Sim, t.trace)
	}
}

// Describe registers the tester's health metrics (switch counters, pools,
// digest channel) on r.
func (t *Tester) Describe(r *obs.Registry) { t.Switch.Describe(r) }

// LoadTask compiles a task and deploys it onto the switch, replacing any
// previously loaded task.
func (t *Tester) LoadTask(task *ntapi.Task) error {
	opts := t.cfg.Compiler
	if opts.RecircPaths == 0 {
		opts.RecircPaths = t.cfg.RecircPaths
	}
	prog, err := compiler.Compile(task, opts)
	if err != nil {
		return err
	}
	return t.deploy(prog)
}

// LoadTaskSource parses NTAPI source text and loads the resulting task.
func (t *Tester) LoadTaskSource(name, src string) error {
	task, err := ntapi.Parse(name, src)
	if err != nil {
		return err
	}
	return t.LoadTask(task)
}

func (t *Tester) deploy(prog *compiler.Program) error {
	recv := htpr.NewReceiver(prog)
	// Evictions from counter tables travel to the switch CPU as digest
	// messages over the rate-limited PCIe channel (§5.2 push mode).
	recv.EnableDigestEvictions()
	recv.DigestRoom = func() bool { return t.Switch.DigestQueueLen() < 4096 }
	t.CPU.OnDigest = func(msg []byte, at netsim.Time) {
		if qid, key, v, err := htpr.DecodeEviction(msg); err == nil {
			recv.MergeEviction(qid, key, v)
		}
	}

	fifos := map[int]*stateless.FIFO{}
	for _, q := range prog.Queries {
		if f := recv.TriggerFIFO(q.ID); f != nil {
			fifos[q.ID] = f
		}
	}
	send, err := htps.New(t.Switch, t.CPU, prog, fifos, t.cfg.Seed)
	if err != nil {
		return err
	}

	// Pipeline layout (§5.2): ingress runs the receiver first (received
	// traffic + KV-FIFO drains on template passes), then the sender
	// (accelerator + replicator). Egress runs the editor before the
	// sent-traffic queries so queries observe the final test packets.
	t.Switch.Ingress.Clear()
	t.Switch.Egress.Clear()
	t.Switch.Ingress.Add(recv.IngressProcessor(), send.IngressProcessor())
	t.Switch.Egress.Add(send.EgressProcessor(), recv.EgressProcessor())

	t.Program = prog
	t.Sender = send
	t.Receiver = recv
	t.observeProgram()
	return nil
}

// Start injects the template packets; generation begins once the
// accelerator fills the recirculation loop (a few microseconds of virtual
// time).
func (t *Tester) Start() error {
	if t.Sender == nil {
		return fmt.Errorf("hypertester: no task loaded")
	}
	t.Sender.Start()
	return nil
}

// RunFor advances virtual time by d.
func (t *Tester) RunFor(d netsim.Duration) { t.Sim.RunFor(d) }

// Reports collects every query's results (the switch CPU's view): the CPU
// reads out any digests still queued on the channel, then assembles reports.
func (t *Tester) Reports() []htpr.Report {
	if t.Receiver == nil {
		return nil
	}
	t.Switch.FlushDigests()
	return t.Receiver.Collect()
}

// Report returns one query's report by name.
func (t *Tester) Report(queryName string) (htpr.Report, bool) {
	for _, r := range t.Reports() {
		if r.Query == queryName {
			return r, true
		}
	}
	return htpr.Report{}, false
}

// GeneratedP4 renders the compiled data-plane program (what the paper's
// Table 5 counts).
func (t *Tester) GeneratedP4() string {
	if t.Program == nil {
		return ""
	}
	return p4ir.Print(t.Program.P4)
}

// Resources returns the program's estimated data-plane resource usage,
// normalized by switch.p4 (the paper's Table 7 methodology).
func (t *Tester) Resources() p4ir.Normalized {
	if t.Program == nil {
		return p4ir.Normalized{}
	}
	return t.Program.Resources.Normalize(p4ir.SwitchP4Baseline)
}
