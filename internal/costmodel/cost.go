// Package costmodel computes the equipment/power economics of §7.4
// (Table 6) and the SYN-flood agent estimation of §7.5 (Table 8), from the
// constants the paper states: a programmable switch costs ~$3600 and 150 W
// per Tbps [30]; an 8-core server costs ~$3500 and 750 W under full load
// and generates 80 Gbps with MoonGen (Fig. 10b).
package costmodel

// Platform describes one tester platform's economics.
type Platform struct {
	Name string
	// EquipmentUSD and PowerWatts are per deployable unit.
	EquipmentUSD float64
	PowerWatts   float64
	// ThroughputTbps is what one unit generates.
	ThroughputTbps float64
}

// Paper constants.
var (
	// MoonGenServer is one 8-core commodity server running MoonGen.
	MoonGenServer = Platform{
		Name:           "MoonGen (8-core server)",
		EquipmentUSD:   3500,
		PowerWatts:     750,
		ThroughputTbps: 0.080,
	}
	// HyperTesterSwitch is one programmable switch, normalized per Tbps
	// ($3600, 150 W per Tbps per [30]).
	HyperTesterSwitch = Platform{
		Name:           "HyperTester (programmable switch)",
		EquipmentUSD:   3600,
		PowerWatts:     150,
		ThroughputTbps: 1.0,
	}
)

// The §2.2 context platforms: commodity testers and FPGA-based open
// hardware, priced from the figures the paper cites.
var (
	// CommodityTester is a proprietary tester priced from the paper's
	// "$25,000 for a dual-10Gbps-port packet generation module" [21].
	CommodityTester = Platform{
		Name:           "Commodity tester (dual 10G module)",
		EquipmentUSD:   25000,
		PowerWatts:     300,
		ThroughputTbps: 0.020,
	}
	// NetFPGATester is a NetFPGA-SUME board ("$6,999 ... four 10Gbps
	// ports" [42]).
	NetFPGATester = Platform{
		Name:           "NetFPGA-SUME (4x10G)",
		EquipmentUSD:   6999,
		PowerWatts:     60,
		ThroughputTbps: 0.040,
	}
)

// PerTbps is a platform's cost normalized by throughput (Table 6's rows).
type PerTbps struct {
	EquipmentUSD float64
	PowerWatts   float64
}

// Normalize returns cost per Tbps.
func (p Platform) Normalize() PerTbps {
	return PerTbps{
		EquipmentUSD: p.EquipmentUSD / p.ThroughputTbps,
		PowerWatts:   p.PowerWatts / p.ThroughputTbps,
	}
}

// Savings returns how much b saves against a, per Tbps (Table 6's last row).
func Savings(a, b Platform) PerTbps {
	na, nb := a.Normalize(), b.Normalize()
	return PerTbps{
		EquipmentUSD: na.EquipmentUSD - nb.EquipmentUSD,
		PowerWatts:   na.PowerWatts - nb.PowerWatts,
	}
}

// ServersReplacedBy returns how many MoonGen servers one switch of the given
// capacity replaces (§7.4: a 6.5 Tbps switch replaces 81 8-core servers).
func ServersReplacedBy(switchTbps float64) int {
	return int(switchTbps / MoonGenServer.ThroughputTbps)
}

// SynFlood captures the Table 8 estimation.
type SynFlood struct {
	ThroughputGbps float64
	SynPacketMpps  float64
	EmulatedAgents float64
}

// SynFloodPacketNs is the wire time of one 64-byte SYN at 1 Gbps — used to
// convert throughput to packet rate (64+16 bytes of occupancy).
const synWireBitsPerPkt = (64 + 16) * 8

// AgentTrafficMbps is the SYN-flood traffic one distributed attack agent
// generates (1 Mbps, per [72]).
const AgentTrafficMbps = 1.0

// EstimateSynFlood converts a generation throughput into Table 8's rows.
// efficiency is the fraction of raw bandwidth achievable with 64-byte SYNs
// (the paper estimates 80% for a 6.5 Tbps switch).
func EstimateSynFlood(rawGbps, efficiency float64) SynFlood {
	gbps := rawGbps * efficiency
	return SynFlood{
		ThroughputGbps: gbps,
		SynPacketMpps:  gbps * 1e3 / synWireBitsPerPkt,
		EmulatedAgents: gbps * 1e3 / AgentTrafficMbps,
	}
}
