package costmodel

import (
	"math"
	"testing"
)

func TestTable6Numbers(t *testing.T) {
	mg := MoonGenServer.Normalize()
	ht := HyperTesterSwitch.Normalize()
	// Table 6: MoonGen $42000 and 7200W per Tbps; HyperTester $3600/150W.
	if math.Abs(mg.EquipmentUSD-43750) > 2000 {
		t.Fatalf("MoonGen equipment/Tbps = %.0f, want ~42000-44000", mg.EquipmentUSD)
	}
	if math.Abs(mg.PowerWatts-9375) > 2200 {
		t.Fatalf("MoonGen power/Tbps = %.0f, want ~7200-9400", mg.PowerWatts)
	}
	if ht.EquipmentUSD != 3600 || ht.PowerWatts != 150 {
		t.Fatalf("HyperTester per Tbps = %+v", ht)
	}
	s := Savings(MoonGenServer, HyperTesterSwitch)
	// Paper: saves $38,400 and 7,150W per Tbps.
	if s.EquipmentUSD < 38000 {
		t.Fatalf("equipment savings = %.0f, want >= 38400-ish", s.EquipmentUSD)
	}
	if s.PowerWatts < 7000 {
		t.Fatalf("power savings = %.0f, want >= 7050-ish", s.PowerWatts)
	}
}

func TestServersReplaced(t *testing.T) {
	// §7.4: a 6.5 Tbps switch replaces 81 8-core servers.
	if got := ServersReplacedBy(6.5); got != 81 {
		t.Fatalf("servers replaced = %d, want 81", got)
	}
}

func TestTable8SynFlood(t *testing.T) {
	// Testbed row: 400 Gbps raw at full efficiency.
	tb := EstimateSynFlood(400, 1.0)
	if math.Abs(tb.SynPacketMpps-625) > 40 {
		t.Fatalf("testbed SYN rate = %.0f Mpps, want ~595-625", tb.SynPacketMpps)
	}
	if math.Abs(tb.EmulatedAgents-4e5) > 1e4 {
		t.Fatalf("testbed agents = %.0f, want ~4e5", tb.EmulatedAgents)
	}
	// Estimation row: 6.5 Tbps at 80%.
	est := EstimateSynFlood(6500, 0.8)
	if math.Abs(est.ThroughputGbps-5200) > 1 {
		t.Fatalf("estimated throughput = %.0f, want 5200", est.ThroughputGbps)
	}
	if math.Abs(est.SynPacketMpps-7737) > 600 {
		t.Fatalf("estimated SYN rate = %.0f Mpps, want ~7737-8125", est.SynPacketMpps)
	}
	if math.Abs(est.EmulatedAgents-5.2e6) > 1e4 {
		t.Fatalf("estimated agents = %.0f, want 5.2e6", est.EmulatedAgents)
	}
}

func TestContextPlatformsPerTbps(t *testing.T) {
	// §2.2's price points: commodity testers are the most expensive per
	// Tbps; NetFPGA cheaper but still far above the programmable switch.
	c := CommodityTester.Normalize()
	n := NetFPGATester.Normalize()
	h := HyperTesterSwitch.Normalize()
	if c.EquipmentUSD != 1.25e6 {
		t.Fatalf("commodity $/Tbps = %v, want $1.25M (25k per 20G)", c.EquipmentUSD)
	}
	if n.EquipmentUSD < 170000 || n.EquipmentUSD > 180000 {
		t.Fatalf("NetFPGA $/Tbps = %v, want ~175k", n.EquipmentUSD)
	}
	if !(c.EquipmentUSD > n.EquipmentUSD && n.EquipmentUSD > h.EquipmentUSD) {
		t.Fatal("per-Tbps cost ordering commodity > NetFPGA > HyperTester must hold")
	}
}
