package scenario

// Library returns the built-in starter suite: four scenarios past the
// paper's own evaluation, each deterministic on both engines. The committed
// examples/suites/starter.json is EncodeSuite(Library()) verbatim — a test
// keeps them in sync — so the file doubles as the format's reference
// document.
func Library() *Suite {
	return &Suite{
		Name: "starter",
		Scenarios: []*Scenario{
			incastMicroburst(),
			synFlood443(),
			zipfHeavyHitter(),
			httpFloodBurst(),
		},
	}
}

// incastMicroburst oversubscribes a slow port: one line-rate 64B template
// multicasts onto a 100G port and a 25G port, so the traffic manager's
// queue toward the slow port overflows — the classic incast/microburst
// storm. Checks pin near-line-rate delivery on the fast port, rate capping
// on the slow one, and that the overload actually dropped frames.
func incastMicroburst() *Scenario {
	return &Scenario{
		Name:  "incast-microburst",
		Title: "Microburst storm into an oversubscribed 25G port",
		Topology: Topology{
			Ports: []float64{100, 25},
			DUT:   DUTSink,
		},
		Program: Program{
			Name: "incast",
			Source: `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set(length, 64)
    .set(port, [0, 1])
`,
		},
		Traffic: Traffic{WarmupUs: 20, WindowUs: 50, Seed: 1},
		Checks: []Check{
			{Name: "fast port near line rate", Kind: CheckThreshold, Metric: "sink0.gbps", Op: ">=", Value: 90},
			{Name: "slow port capped at 25G", Kind: CheckRange, Metric: "sink1.gbps", Min: 20, Max: 26},
			{Name: "overload drops frames", Kind: CheckThreshold, Metric: "port1.tx_drops", Op: ">", Value: 0},
			{Name: "trace recorded", Kind: CheckThreshold, Metric: "trace.records", Op: ">", Value: 0},
		},
	}
}

// synFlood443 is the SYN-flood variant beyond Table 8: HTTPS port, a /16 of
// spoofed sources, and — unlike the paper's task — a sent-traffic query
// totalling flood bytes, so the check can cross-validate the query counter
// against the sink's byte count.
func synFlood443() *Scenario {
	return &Scenario{
		Name:  "synflood-443",
		Title: "SYN flood on 443 from a spoofed /16 (Table 8 variant)",
		Topology: Topology{
			Ports: []float64{100},
			DUT:   DUTSink,
		},
		Program: Program{
			Name: "synflood443",
			Source: `
T1 = trigger()
    .set([dip, dport, proto, flag], [9.9.9.9, 443, tcp, SYN])
    .set(sip, range(3232235520, 3232301055, 1))
    .set(sport, range(1024, 65535, 1))
    .set(port, 0)
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
`,
		},
		Traffic: Traffic{WarmupUs: 15, WindowUs: 40, Seed: 1},
		Checks: []Check{
			{Name: "flood near line rate", Kind: CheckThreshold, Metric: "sink0.gbps", Op: ">=", Value: 90},
			{Name: "query observed the flood", Kind: CheckThreshold, Metric: "query.Q1.matches", Op: ">", Value: 1000},
			{Name: "nothing dropped at 100G", Kind: CheckThreshold, Metric: "port0.tx_drops", Op: "==", Value: 0},
		},
	}
}

// zipfHeavyHitter drives a Zipf-style skewed flow population (exponential
// source-port distribution — NTAPI's random() offers N and E) into the
// heavy-hitter sink, which counts flows exactly and shadows them into a
// Count-Min sketch. The golden check pins the sketch's defining guarantee,
// zero underestimates, byte-exactly.
func zipfHeavyHitter() *Scenario {
	return &Scenario{
		Name:  "zipf-heavy-hitter",
		Title: "Skewed flow population vs Count-Min ground truth",
		Topology: Topology{
			Ports: []float64{100},
			DUT:   DUTHHSink,
		},
		Program: Program{
			Name: "zipfhh",
			Source: `
T1 = trigger()
    .set([dip, sip, proto, dport], [9.9.9.9, 1.1.0.1, udp, 80])
    .set(sport, random('E', 2000, 0, 16))
    .set(interval, 100ns)
    .set(port, 0)
`,
		},
		Traffic: Traffic{WarmupUs: 20, WindowUs: 300, Seed: 7},
		Checks: []Check{
			{Name: "sketch never undercounts", Kind: CheckGolden, Metric: "hh0.underestimates", Want: "0"},
			{Name: "population is wide", Kind: CheckThreshold, Metric: "hh0.flows", Op: ">=", Value: 100},
			{Name: "a heavy hitter emerges", Kind: CheckThreshold, Metric: "hh0.top_count", Op: ">=", Value: 10},
			{Name: "skew: top flow beats the mean", Kind: CheckThreshold, Metric: "hh0.top_count", Op: ">", Value: 3},
		},
	}
}

// httpFloodBurst replays the §5.4 stateless web workflow as a burst flood:
// SYNs at 5us intervals (2x the case study's client rate) against the
// HTTP server farm, full handshake + GET + response lifecycle. Checks
// assert the farm actually served load and that the tester's SYN+ACK query
// saw the handshakes.
func httpFloodBurst() *Scenario {
	return &Scenario{
		Name:  "http-flood-burst",
		Title: "Bursty HTTP flood against the server farm DUT",
		Topology: Topology{
			Ports: []float64{100},
			DUT:   DUTHTTPFarm,
			// The §5.4 loop needs a realistic RTT contribution.
			CableDelayNs: 5,
		},
		Program: Program{
			Name: "httpflood",
			Source: `
T1 = trigger()
    .set([dip, dport, proto, flag, seq_no], [9.9.9.9, 80, tcp, SYN, 1])
    .set(sip, 1.1.0.1)
    .set(sport, range(1024, 33791, 1))
    .set(interval, 5us)
    .set(port, 0)
Q1 = query().filter(tcp_flag == SYN+ACK)
T2 = trigger(Q1)
    .set([dip, sip, dport, sport], [Q1.sip, Q1.dip, Q1.sport, Q1.dport])
    .set([proto, flag], [tcp, ACK])
    .set([seq_no, ack_no], [Q1.ack_no, Q1.seq_no + 1])
Q2 = query().filter(tcp_flag == SYN+ACK)
T3 = trigger(Q2)
    .set([dip, sip, dport, sport], [Q2.sip, Q2.dip, Q2.sport, Q2.dport])
    .set([proto, flag], [tcp, PSH+ACK])
    .set([seq_no, ack_no], [Q2.ack_no, Q2.seq_no + 1])
    .set(length, 78)
    .set(payload, "GET index.html")
Q5 = query().filter(tcp_flag == SYN+ACK).reduce(func=sum)
`,
		},
		Traffic: Traffic{WindowUs: 2000, Seed: 3},
		Checks: []Check{
			{Name: "farm saw the flood", Kind: CheckThreshold, Metric: "httpfarm0.syn_received", Op: ">=", Value: 300},
			{Name: "handshakes completed", Kind: CheckThreshold, Metric: "httpfarm0.handshakes", Op: ">=", Value: 100},
			{Name: "requests served", Kind: CheckThreshold, Metric: "httpfarm0.requests", Op: ">=", Value: 100},
			{Name: "responses sent", Kind: CheckThreshold, Metric: "httpfarm0.data_sent", Op: ">=", Value: 500},
			{Name: "tester matched SYN+ACKs", Kind: CheckThreshold, Metric: "query.Q1.matches", Op: ">=", Value: 100},
		},
	}
}
