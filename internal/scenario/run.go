package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
	"github.com/hypertester/hypertester/internal/testbed"

	hypertester "github.com/hypertester/hypertester"
)

// RunResult is one executed scenario: every metric the run observed and
// the verdict of every declared check.
type RunResult struct {
	Name    string        `json:"name"`
	Title   string        `json:"title,omitempty"`
	Pass    bool          `json:"pass"`
	Passed  int           `json:"passed"`
	Failed  int           `json:"failed"`
	Checks  []CheckResult `json:"checks"`
	Metrics []Metric      `json:"metrics"`
	// Err is set when the scenario never produced metrics (compile error,
	// panic); such a run fails regardless of checks.
	Err string `json:"err,omitempty"`
}

// dut is one device-under-test instance and its metric contribution.
type dut struct {
	reset   func()          // clears counters at end of warmup (nil = none)
	collect func(m *Metrics) // records the DUT's metrics after the window
	iface   *testbed.Iface
}

// Run executes one scenario and evaluates its checks. workers > 0 overrides
// the topology's SimWorkers (the CLI's -simworkers and the differential
// tests use this); the observed metrics are bit-identical either way.
//
// Metric catalogue (names checks can reference):
//
//	port<i>.tx_packets/.tx_bytes/.rx_packets/.rx_bytes/.tx_drops
//	template<id>.fired
//	query.<name>.matches/.bytes/.distinct/.delay_samples/.delay_mean_ns/...
//	sink<i>.rx_packets/.rx_bytes/.gbps/.pps            (sink, hhsink)
//	reflector<i>.reflected                             (reflector)
//	scantarget<i>.probes_seen/.synacks_sent/.rsts_sent (scantarget)
//	httpfarm<i>.syn_received/.handshakes/.requests/.data_sent/
//	            .fin_received/.closed/.open_conns      (httpfarm)
//	hh<i>.flows/.packets/.top_count/.underestimates/
//	      .overestimate_total, hh<i>.top_flow (text)   (hhsink)
//	trace.records (num), trace.sha256 (text)
//
// Sink-style DUTs reset at the end of the warmup so rate metrics cover the
// clean window; stateful DUTs (httpfarm, scantarget, reflector) accumulate
// across the whole run, warm-up included.
func Run(sc *Scenario, workers int) (*RunResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Program.Source == "" {
		return nil, fmt.Errorf("scenario %q: program file %q was not resolved at load time",
			sc.Name, sc.Program.File)
	}
	if workers <= 0 {
		workers = sc.Topology.SimWorkers
	}

	p := testbed.NewPartition(workers)
	trace := obs.NewTraceSet()
	ht := hypertester.New(hypertester.Config{
		Sim:   p.LP("tester"),
		Ports: sc.Topology.Ports,
		Seed:  sc.Traffic.Seed,
		Name:  "tester",
	})
	// Stream creation order (tester, then DUTs in port order) fixes merge
	// ranks, keeping the canonical trace engine-independent.
	ht.EnableTrace(trace.New("tester"))
	progName := sc.Program.Name
	if progName == "" {
		progName = sc.Name
	}
	if err := ht.LoadTaskSource(progName, string(sc.Program.Source)); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}

	duts := make([]dut, len(sc.Topology.Ports))
	for i := range sc.Topology.Ports {
		gbps := sc.Topology.DUTGbps
		if gbps == 0 {
			gbps = sc.Topology.Ports[i]
		}
		duts[i] = buildDUT(p, sc.Topology.DUT, i, gbps)
		duts[i].iface.SetTrace(trace.New(duts[i].iface.Name))
		p.Connect(ht.Port(i), duts[i].iface, netsim.Ns(sc.Topology.CableDelayNs))
	}
	if err := ht.Start(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}

	p.RunFor(netsim.Ns(sc.Traffic.WarmupUs * 1e3))
	for _, d := range duts {
		if d.reset != nil {
			d.reset()
		}
	}
	p.RunFor(netsim.Ns(sc.Traffic.WindowUs * 1e3))

	// Snapshot the trace before Reports(): the report flush drains digests
	// still in flight at the final boundary, and what is in flight there is
	// engine-dependent — the windowed trace is the engine-invariant oracle.
	traceRecords := trace.Len()
	sum := sha256.Sum256([]byte(trace.Canonical()))

	m := &Metrics{}
	for i := range sc.Topology.Ports {
		port := ht.Port(i)
		pre := fmt.Sprintf("port%d", i)
		m.AddNum(pre+".tx_packets", float64(port.TxPackets))
		m.AddNum(pre+".tx_bytes", float64(port.TxBytes))
		m.AddNum(pre+".rx_packets", float64(port.RxPackets))
		m.AddNum(pre+".rx_bytes", float64(port.RxBytes))
		m.AddNum(pre+".tx_drops", float64(port.TxDrops))
	}
	for _, tmpl := range ht.Program.Templates {
		m.AddNum(fmt.Sprintf("template%d.fired", tmpl.ID), float64(ht.Sender.FiredCount(tmpl.ID)))
	}
	for _, r := range ht.Reports() {
		pre := "query." + r.Query
		m.AddNum(pre+".matches", float64(r.Matches))
		m.AddNum(pre+".bytes", float64(r.Bytes))
		m.AddNum(pre+".distinct", float64(r.Distinct))
		m.AddNum(pre+".delay_samples", float64(r.DelaySamples))
		m.AddNum(pre+".delay_mean_ns", r.DelayMeanNs)
		m.AddNum(pre+".delay_min_ns", r.DelayMinNs)
		m.AddNum(pre+".delay_max_ns", r.DelayMaxNs)
	}
	for _, d := range duts {
		d.collect(m)
	}
	m.AddNum("trace.records", float64(traceRecords))
	m.AddText("trace.sha256", hex.EncodeToString(sum[:]))

	res := &RunResult{Name: sc.Name, Title: sc.Title, Metrics: m.All()}
	for _, c := range sc.Checks {
		cr := c.Eval(m)
		res.Checks = append(res.Checks, cr)
		if cr.Pass {
			res.Passed++
		} else {
			res.Failed++
		}
	}
	res.Pass = res.Failed == 0
	return res, nil
}

// buildDUT constructs one device instance of the given kind on its own
// logical process, with its reset/collect behaviour.
func buildDUT(p *testbed.Partition, kind string, i int, gbps float64) dut {
	name := fmt.Sprintf("%s%d", kind, i)
	sim := p.LP(name)
	switch kind {
	case DUTSink:
		s := testbed.NewSink(sim, name, gbps)
		return dut{
			iface: s.Iface,
			reset: s.Reset,
			collect: func(m *Metrics) {
				collectSink(m, fmt.Sprintf("sink%d", i), s)
			},
		}
	case DUTHHSink:
		h := NewHHSink(sim, name, gbps)
		return dut{
			iface: h.Sink.Iface,
			reset: h.Reset,
			collect: func(m *Metrics) {
				collectSink(m, fmt.Sprintf("sink%d", i), h.Sink)
				st := h.Stats()
				pre := fmt.Sprintf("hh%d", i)
				m.AddNum(pre+".flows", float64(st.Flows))
				m.AddNum(pre+".packets", float64(st.Packets))
				m.AddNum(pre+".top_count", float64(st.TopCount))
				m.AddNum(pre+".underestimates", float64(st.Underestimates))
				m.AddNum(pre+".overestimate_total", float64(st.OverestimateTotal))
				m.AddText(pre+".top_flow", st.TopFlow.String())
			},
		}
	case DUTReflector:
		r := testbed.NewReflector(sim, name, gbps)
		return dut{
			iface: r.Iface,
			collect: func(m *Metrics) {
				m.AddNum(fmt.Sprintf("reflector%d.reflected", i), float64(r.Reflected))
			},
		}
	case DUTScanTarget:
		t := testbed.NewScanTarget(sim, name, gbps)
		return dut{
			iface: t.Iface,
			collect: func(m *Metrics) {
				pre := fmt.Sprintf("scantarget%d", i)
				m.AddNum(pre+".probes_seen", float64(t.ProbesSeen))
				m.AddNum(pre+".synacks_sent", float64(t.SynAcksSent))
				m.AddNum(pre+".rsts_sent", float64(t.RstsSent))
			},
		}
	case DUTHTTPFarm:
		f := testbed.NewHTTPServerFarm(sim, name, gbps)
		return dut{
			iface: f.Iface,
			collect: func(m *Metrics) {
				pre := fmt.Sprintf("httpfarm%d", i)
				m.AddNum(pre+".syn_received", float64(f.SynReceived))
				m.AddNum(pre+".handshakes", float64(f.Handshakes))
				m.AddNum(pre+".requests", float64(f.Requests))
				m.AddNum(pre+".data_sent", float64(f.DataSent))
				m.AddNum(pre+".fin_received", float64(f.FinReceived))
				m.AddNum(pre+".closed", float64(f.Closed))
				m.AddNum(pre+".open_conns", float64(f.OpenConnections()))
			},
		}
	}
	panic(fmt.Sprintf("scenario: unknown DUT kind %q", kind)) // Validate rejects earlier
}

func collectSink(m *Metrics, pre string, s *testbed.Sink) {
	m.AddNum(pre+".rx_packets", float64(s.Packets))
	m.AddNum(pre+".rx_bytes", float64(s.Bytes))
	m.AddNum(pre+".gbps", s.ThroughputGbps())
	m.AddNum(pre+".pps", s.RatePps())
}
