package scenario

import (
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/sketch"
	"github.com/hypertester/hypertester/internal/testbed"
)

// HHSink is the heavy-hitter DUT: a counting sink that additionally tracks
// exact per-flow packet counts and shadows every update into a Count-Min
// sketch, so a scenario can assert the sketch's one-sided-error guarantee
// (estimates never undercount) against ground truth — the comparison §5.2
// makes when arguing for exact counter-based queries.
type HHSink struct {
	Sink *testbed.Sink

	counts map[netproto.FlowKey]uint64
	// order remembers first-seen flow order so statistics never range over
	// the map (insertion order is deterministic; map order is not).
	order []netproto.FlowKey
	cm    *sketch.CountMin
	stack netproto.Stack
}

// hhSketchDepth and hhSketchWidth size the Count-Min shadow: small enough
// that skewed populations actually collide, so the overestimate metric is
// exercised, large enough that totals stay meaningful.
const (
	hhSketchDepth = 4
	hhSketchWidth = 512
)

// NewHHSink builds a heavy-hitter sink behind a fresh interface.
func NewHHSink(sim *netsim.Sim, name string, gbps float64) *HHSink {
	h := &HHSink{
		Sink:   testbed.NewSink(sim, name, gbps),
		counts: make(map[netproto.FlowKey]uint64),
		cm:     sketch.NewCountMin(hhSketchDepth, hhSketchWidth),
	}
	h.Sink.OnPacket = h.observe
	return h
}

func (h *HHSink) observe(pkt *netproto.Packet, _ netsim.Time) {
	// The OnPacket hook owns the packet; release it once decoded.
	defer pkt.Release()
	if err := h.stack.Decode(pkt.Data); err != nil {
		return
	}
	key, ok := netproto.FlowFromStack(&h.stack)
	if !ok {
		return
	}
	if _, seen := h.counts[key]; !seen {
		h.order = append(h.order, key)
	}
	h.counts[key]++
	kb := key.Bytes()
	h.cm.Add(kb[:], 1)
}

// Reset clears flow state and the underlying sink counters (end of warmup).
func (h *HHSink) Reset() {
	h.Sink.Reset()
	h.counts = make(map[netproto.FlowKey]uint64)
	h.order = h.order[:0]
	h.cm = sketch.NewCountMin(hhSketchDepth, hhSketchWidth)
}

// Stats summarizes the flow population against the Count-Min shadow.
type HHStats struct {
	Flows    int
	Packets  uint64
	TopCount uint64
	TopFlow  netproto.FlowKey
	// Underestimates counts flows whose sketch estimate fell below the
	// exact count — always 0 if the sketch honours its guarantee.
	Underestimates int
	// OverestimateTotal sums (estimate - exact) across flows: the
	// collision error a threshold check can bound.
	OverestimateTotal uint64
}

// Stats walks flows in first-seen order (deterministic across engines: the
// LP engine replays the sequential per-device event order).
func (h *HHSink) Stats() HHStats {
	var st HHStats
	st.Flows = len(h.order)
	for _, key := range h.order {
		exact := h.counts[key]
		st.Packets += exact
		if exact > st.TopCount {
			st.TopCount = exact
			st.TopFlow = key
		}
		kb := key.Bytes()
		est := h.cm.Estimate(kb[:])
		if est < exact {
			st.Underestimates++
		} else {
			st.OverestimateTotal += est - exact
		}
	}
	return st
}
