package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const minimalScenario = `{
      "name": "one",
      "topology": {"ports": [100], "dut": "sink"},
      "program": {"source": "T1 = trigger().set(port, 0)\n"},
      "traffic": {"window_us": 10}
    }`

// TestParseErrors covers the loader's rejection paths; every parse-level
// error must carry a file:line:col location.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name     string
		data     string
		want     string
		wantLine bool
	}{
		{"syntax error", "{\n  \"name\": \"x\",,\n}", "invalid character", true},
		{"wrong type", "{\n  \"name\": 42\n}", "cannot unmarshal number", true},
		{"unknown field", "{\n  \"name\": \"x\",\n  \"scenarioz\": []\n}", "unknown field", true},
		{"trailing content", `{"name": "x", "scenarios": [` + minimalScenario + `]} {"again": 1}`, "trailing content", true},
		{"no name", `{"scenarios": [` + minimalScenario + `]}`, "no name", false},
		{"no scenarios", `{"name": "x"}`, "declares no scenarios", false},
		{"invalid scenario", `{"name": "x", "scenarios": [{"name": "bad"}]}`, "at least one port", false},
		{"unknown check kind", `{"name": "x", "scenarios": [{
		      "name": "one",
		      "topology": {"ports": [100], "dut": "sink"},
		      "program": {"source": "T1 = trigger().set(port, 0)\n"},
		      "traffic": {"window_us": 10},
		      "checks": [{"kind": "vibes", "metric": "m"}]
		    }]}`, "unknown check kind", false},
		{"duplicate names", `{"name": "x", "scenarios": [` + minimalScenario + `, ` + minimalScenario + `]}`, "duplicate scenario name", false},
		{"missing program file", `{"name": "x", "scenarios": [{
		      "name": "one",
		      "topology": {"ports": [100], "dut": "sink"},
		      "program": {"file": "no-such-task.nt"},
		      "traffic": {"window_us": 10}
		    }]}`, "no-such-task.nt", false},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.data), "suite.json", t.TempDir())
		if err == nil {
			t.Errorf("%s: not rejected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if c.wantLine && !strings.Contains(err.Error(), "suite.json:") {
			t.Errorf("%s: error %q carries no file:line location", c.name, err)
		}
	}

	// A parse error's line:col must point at the offending line.
	_, err := Parse([]byte("{\n  \"name\": \"x\",,\n}"), "suite.json", "")
	if err == nil || !strings.Contains(err.Error(), "suite.json:2:") {
		t.Errorf("syntax error located at %v, want line 2", err)
	}
}

// TestLoadResolvesProgramFiles pins .nt file resolution relative to the
// suite file's directory, including multi-line array sources.
func TestLoadResolvesProgramFiles(t *testing.T) {
	dir := t.TempDir()
	task := "T1 = trigger().set(port, 0)\n"
	if err := os.WriteFile(filepath.Join(dir, "task.nt"), []byte(task), 0o644); err != nil {
		t.Fatal(err)
	}
	suite := `{"name": "files", "scenarios": [{
	      "name": "from-file",
	      "topology": {"ports": [100], "dut": "sink"},
	      "program": {"file": "task.nt"},
	      "traffic": {"window_us": 10}
	    }, {
	      "name": "from-lines",
	      "topology": {"ports": [100], "dut": "sink"},
	      "program": {"source": ["T1 = trigger()", "    .set(port, 0)"]},
	      "traffic": {"window_us": 10}
	    }]}`
	path := filepath.Join(dir, "suite.json")
	if err := os.WriteFile(path, []byte(suite), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(s.Scenarios[0].Program.Source); got != task {
		t.Errorf("file source = %q, want %q", got, task)
	}
	if s.Scenarios[0].Program.Name != "task.nt" {
		t.Errorf("program name = %q, want the file name", s.Scenarios[0].Program.Name)
	}
	if got := string(s.Scenarios[1].Program.Source); got != "T1 = trigger()\n    .set(port, 0)\n" {
		t.Errorf("line-array source = %q", got)
	}

	// File references must be rejected when no base directory is allowed.
	if _, err := Parse([]byte(suite), "inline", ""); err == nil ||
		!strings.Contains(err.Error(), "not allowed") {
		t.Errorf("dirless file reference: %v", err)
	}
}

// TestEncodeRoundTrip pins that EncodeSuite output re-parses to the same
// suite — the property the committed starter file relies on.
func TestEncodeRoundTrip(t *testing.T) {
	lib := Library()
	data, err := EncodeSuite(lib)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data, "encoded", "")
	if err != nil {
		t.Fatalf("encoded library does not re-parse: %v", err)
	}
	if len(back.Scenarios) != len(lib.Scenarios) {
		t.Fatalf("round trip lost scenarios: %d vs %d", len(back.Scenarios), len(lib.Scenarios))
	}
	again, err := EncodeSuite(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("encode → parse → encode is not a fixed point")
	}
}
