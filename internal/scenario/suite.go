package scenario

import (
	"encoding/json"
	"fmt"

	"github.com/hypertester/hypertester/internal/experiments"
)

// SuiteResult is the machine-readable outcome of a suite run (the -results
// file the CLI writes).
type SuiteResult struct {
	Suite  string `json:"suite"`
	// SimWorkers echoes the engine the suite ran on (0 = each scenario's
	// own topology setting).
	SimWorkers int          `json:"sim_workers"`
	Pass       bool         `json:"pass"`
	Passed     int          `json:"passed"` // scenarios fully passing
	Failed     int          `json:"failed"`
	Scenarios  []*RunResult `json:"scenarios"`
}

// Encode renders the result as indented JSON.
func (r *SuiteResult) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// RunSuite executes every scenario of a suite on the experiments worker
// pool — the same runner the 18 paper reproductions use, so scenarios get
// its input-order results and per-spec panic containment for free. workers
// overrides each scenario's SimWorkers when > 0. Scenario errors (compile
// failures, panics) fail that scenario and the suite, never the process.
func RunSuite(suite *Suite, workers int) *SuiteResult {
	slots := make([]*RunResult, len(suite.Scenarios))
	specs := make([]experiments.Spec, len(suite.Scenarios))
	for i, sc := range suite.Scenarios {
		i, sc := i, sc
		specs[i] = experiments.Spec{
			ID: "scenario/" + sc.Name,
			Fn: func(cfg experiments.Config) *experiments.Result {
				w := workers
				if cfg.SimWorkers > 0 {
					w = cfg.SimWorkers
				}
				r, err := Run(sc, w)
				if err != nil {
					r = &RunResult{Name: sc.Name, Title: sc.Title, Err: err.Error()}
				}
				slots[i] = r
				return r.Table()
			},
		}
	}
	experiments.Run(experiments.Config{SimWorkers: workers}, specs)

	out := &SuiteResult{Suite: suite.Name, SimWorkers: workers, Pass: true}
	for i, sc := range suite.Scenarios {
		r := slots[i]
		if r == nil {
			// The scenario panicked: experiments.Run recovered it before the
			// slot was written. Report it as a failed scenario.
			r = &RunResult{Name: sc.Name, Title: sc.Title,
				Err: "scenario panicked; see the suite log"}
		}
		out.Scenarios = append(out.Scenarios, r)
		if r.Pass && r.Err == "" {
			out.Passed++
		} else {
			out.Failed++
			out.Pass = false
		}
	}
	return out
}

// Table renders the run as an experiments result: one row per check plus a
// closing tally row whose first cell parses as the headline ("N of M
// passed" → N).
func (r *RunResult) Table() *experiments.Result {
	title := r.Title
	if title == "" {
		title = "scenario"
	}
	res := &experiments.Result{
		ID:      "scenario/" + r.Name,
		Title:   title,
		Columns: []string{"result", "observed"},
	}
	if r.Err != "" {
		res.Title = "scenario failed"
		res.Notes = append(res.Notes, r.Err)
		return res
	}
	for _, c := range r.Checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL (" + c.Detail + ")"
		}
		res.Rows = append(res.Rows, experiments.Row{
			Label:  c.Name,
			Values: []string{verdict, c.Got},
		})
	}
	res.Rows = append(res.Rows, experiments.Row{
		Label:  "checks",
		Values: []string{fmt.Sprintf("%d of %d passed", r.Passed, r.Passed+r.Failed), ""},
	})
	return res
}
