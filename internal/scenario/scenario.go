// Package scenario is the declarative layer over the simulated testbed: a
// Scenario names a topology (ports, DUT kind, link delay, engine workers),
// an NTAPI program (inline source or a .nt file), a traffic window, and a
// list of checks evaluated against the metrics the run observed. Suites of
// scenarios load from stdlib-JSON files (Load), run on the experiments
// worker pool with per-scenario panic containment (RunSuite), and register
// into the experiments registry next to the 18 paper reproductions
// (RegisterSuite) — the paper's §4 pitch, that one switch program model
// drives arbitrary testing tasks, expressed as data instead of Go.
//
// # Determinism contract
//
// Everything a check can observe is engine-invariant: switch port counters,
// template fired counts, query reports, DUT statistics, and the SHA-256 of
// the canonical packet trace are bit-identical between the sequential
// engine and the parallel LP engine at any worker count (DESIGN.md §10).
// Metrics are carried as an ordered list, never ranged out of a map, so a
// rendered scenario result is byte-stable too.
package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
)

// DUT kinds a topology can name. Each tester port gets its own device
// instance on its own logical process.
const (
	DUTSink       = "sink"       // counting sink (throughput/rate checks)
	DUTReflector  = "reflector"  // bounces frames back (delay loops)
	DUTHTTPFarm   = "httpfarm"   // TCP/HTTP server farm (web testing)
	DUTScanTarget = "scantarget" // emulated IPv4 space (scanning)
	DUTHHSink     = "hhsink"     // per-flow counting sink + Count-Min shadow
)

// dutKinds lists the valid kinds for error messages, in doc order.
var dutKinds = []string{DUTSink, DUTReflector, DUTHTTPFarm, DUTScanTarget, DUTHHSink}

// KnownDUT reports whether kind names a device this package can build.
func KnownDUT(kind string) bool {
	for _, k := range dutKinds {
		if k == kind {
			return true
		}
	}
	return false
}

// DUTKinds returns the valid -dut / topology kinds, for CLI usage text.
func DUTKinds() []string { return append([]string(nil), dutKinds...) }

// Topology declares the testbed a scenario runs on: a HyperTester switch
// with len(Ports) front-panel ports, each cabled to its own DUT instance.
type Topology struct {
	// Ports lists front-panel port rates in Gbps (index = port ID).
	Ports []float64 `json:"ports"`
	// DUT names the device kind behind every port (see DUT constants).
	DUT string `json:"dut"`
	// DUTGbps overrides the DUT-side line rate; 0 means match the port.
	DUTGbps float64 `json:"dut_gbps,omitempty"`
	// CableDelayNs is the cable propagation delay in nanoseconds.
	CableDelayNs float64 `json:"cable_delay_ns,omitempty"`
	// SimWorkers > 1 runs the topology on the parallel LP engine. The
	// suite runner's config can override it; results are identical either
	// way.
	SimWorkers int `json:"sim_workers,omitempty"`
}

// Program names the NTAPI task the tester loads: inline Source, or a .nt
// File that the suite loader resolves (relative to the suite file) and
// reads into Source, so a validated scenario never touches the filesystem.
type Program struct {
	Name   string `json:"name,omitempty"`
	Source Source `json:"source,omitempty"`
	File   string `json:"file,omitempty"`
}

// Source is NTAPI program text. In a suite file it may be written as one
// JSON string or as an array of lines (JSON has no multiline strings);
// either way it round-trips as the joined text.
type Source string

// UnmarshalJSON accepts a string or an array of line strings.
func (s *Source) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '[' {
		var lines []string
		if err := json.Unmarshal(b, &lines); err != nil {
			return err
		}
		*s = Source(strings.Join(lines, "\n") + "\n")
		return nil
	}
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	*s = Source(str)
	return nil
}

// Traffic bounds the run: a warm-up that is excluded from sink statistics,
// then the measurement window checks observe.
type Traffic struct {
	WarmupUs float64 `json:"warmup_us,omitempty"`
	WindowUs float64 `json:"window_us"`
	// Seed drives all of the run's randomness (templates, DUT jitter).
	Seed int64 `json:"seed,omitempty"`
}

// Check kinds.
const (
	CheckThreshold = "threshold" // numeric metric compared with Op/Value
	CheckRange     = "range"     // numeric metric inside [Min, Max]
	CheckGolden    = "golden"    // metric's canonical text == Want, byte-exact
)

// Check is one assertion over the run's metrics.
type Check struct {
	// Name labels the check in reports; defaults to "<kind> <metric>".
	Name string `json:"name,omitempty"`
	// Kind is one of the Check constants.
	Kind string `json:"kind"`
	// Metric names the observed value (see Run's metric catalogue).
	Metric string `json:"metric"`
	// Op and Value parameterize threshold checks. Op is one of
	// >=, <=, >, <, ==, != (default >=).
	Op    string  `json:"op,omitempty"`
	Value float64 `json:"value,omitempty"`
	// Min and Max bound range checks (inclusive).
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// Want is the golden text a golden check compares against.
	Want string `json:"want,omitempty"`
}

// Label returns the check's display name.
func (c Check) Label() string {
	if c.Name != "" {
		return c.Name
	}
	return c.Kind + " " + c.Metric
}

// Scenario is one declarative test: topology + program + traffic + checks.
type Scenario struct {
	Name     string   `json:"name"`
	Title    string   `json:"title,omitempty"`
	Topology Topology `json:"topology"`
	Program  Program  `json:"program"`
	Traffic  Traffic  `json:"traffic"`
	Checks   []Check  `json:"checks,omitempty"`
}

// Validate rejects scenarios that would build a nonsense testbed, so every
// error surfaces before any simulation runs.
func (s *Scenario) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if len(s.Topology.Ports) == 0 {
		return fail("topology needs at least one port")
	}
	for i, g := range s.Topology.Ports {
		if !(g > 0) { // catches NaN too
			return fail("port %d rate %v Gbps is not positive", i, g)
		}
	}
	if s.Topology.DUTGbps < 0 || s.Topology.DUTGbps != s.Topology.DUTGbps {
		return fail("dut_gbps %v is invalid", s.Topology.DUTGbps)
	}
	if !KnownDUT(s.Topology.DUT) {
		return fail("unknown dut kind %q (want one of %s)",
			s.Topology.DUT, strings.Join(dutKinds, ", "))
	}
	if s.Topology.CableDelayNs < 0 || s.Topology.CableDelayNs != s.Topology.CableDelayNs {
		return fail("cable_delay_ns %v is invalid", s.Topology.CableDelayNs)
	}
	if s.Program.Source == "" && s.Program.File == "" {
		return fail("program needs inline source or a file")
	}
	if s.Program.Source != "" && s.Program.File != "" {
		return fail("program has both inline source and a file; pick one")
	}
	if !(s.Traffic.WindowUs > 0) {
		return fail("traffic window %v us is not positive", s.Traffic.WindowUs)
	}
	if s.Traffic.WarmupUs < 0 || s.Traffic.WarmupUs != s.Traffic.WarmupUs {
		return fail("traffic warmup %v us is invalid", s.Traffic.WarmupUs)
	}
	for i, c := range s.Checks {
		if c.Metric == "" {
			return fail("check %d (%s) names no metric", i, c.Label())
		}
		switch c.Kind {
		case CheckThreshold:
			switch c.Op {
			case "", ">=", "<=", ">", "<", "==", "!=":
			default:
				return fail("check %d (%s): unknown op %q", i, c.Label(), c.Op)
			}
		case CheckRange:
			if c.Min > c.Max {
				return fail("check %d (%s): min %v > max %v", i, c.Label(), c.Min, c.Max)
			}
		case CheckGolden:
			if c.Want == "" {
				return fail("check %d (%s): golden check needs want", i, c.Label())
			}
		default:
			return fail("check %d (%s): unknown check kind %q (want %s, %s or %s)",
				i, c.Label(), c.Kind, CheckThreshold, CheckRange, CheckGolden)
		}
	}
	return nil
}
