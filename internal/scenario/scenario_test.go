package scenario

import (
	"strings"
	"testing"
)

// TestLibraryBothEngines is the package's determinism gate: every starter
// scenario must pass all of its checks, and every observed metric —
// including the SHA-256 of the canonical packet trace — must be
// byte-identical between the sequential engine and the parallel LP engine
// at 4 workers.
func TestLibraryBothEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every starter scenario twice")
	}
	for _, sc := range Library().Scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			seq, err := Run(sc, 1)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := Run(sc, 4)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			for _, r := range seq.Checks {
				if !r.Pass {
					t.Errorf("check %q failed: got %s, %s", r.Name, r.Got, r.Detail)
				}
			}
			if !par.Pass {
				t.Errorf("parallel run failed checks that sequential passed")
			}
			if len(seq.Metrics) != len(par.Metrics) {
				t.Fatalf("metric count diverges: %d sequential, %d parallel",
					len(seq.Metrics), len(par.Metrics))
			}
			for i := range seq.Metrics {
				s, p := seq.Metrics[i], par.Metrics[i]
				if s.Name != p.Name || s.Text != p.Text {
					t.Errorf("metric %d diverges across engines: %s=%s (seq) vs %s=%s (par)",
						i, s.Name, s.Text, p.Name, p.Text)
				}
			}
		})
	}
}

// TestValidate covers the scenario-level rejection paths.
func TestValidate(t *testing.T) {
	good := func() *Scenario {
		return &Scenario{
			Name:     "ok",
			Topology: Topology{Ports: []float64{100}, DUT: DUTSink},
			Program:  Program{Source: "T1 = trigger().set(port, 0)\n"},
			Traffic:  Traffic{WindowUs: 10},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	nan := 0.0
	nan /= nan
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no name", func(s *Scenario) { s.Name = "" }, "missing name"},
		{"no ports", func(s *Scenario) { s.Topology.Ports = nil }, "at least one port"},
		{"zero rate", func(s *Scenario) { s.Topology.Ports = []float64{0} }, "not positive"},
		{"negative rate", func(s *Scenario) { s.Topology.Ports = []float64{-1} }, "not positive"},
		{"nan rate", func(s *Scenario) { s.Topology.Ports = []float64{nan} }, "not positive"},
		{"bad dut", func(s *Scenario) { s.Topology.DUT = "toaster" }, "unknown dut kind"},
		{"negative cable", func(s *Scenario) { s.Topology.CableDelayNs = -1 }, "cable_delay_ns"},
		{"no program", func(s *Scenario) { s.Program = Program{} }, "inline source or a file"},
		{"both programs", func(s *Scenario) { s.Program.File = "x.nt" }, "pick one"},
		{"zero window", func(s *Scenario) { s.Traffic.WindowUs = 0 }, "not positive"},
		{"nan window", func(s *Scenario) { s.Traffic.WindowUs = nan }, "not positive"},
		{"negative warmup", func(s *Scenario) { s.Traffic.WarmupUs = -1 }, "warmup"},
		{"no metric", func(s *Scenario) { s.Checks = []Check{{Kind: CheckThreshold}} }, "names no metric"},
		{"bad kind", func(s *Scenario) { s.Checks = []Check{{Kind: "vibes", Metric: "m"}} }, "unknown check kind"},
		{"bad op", func(s *Scenario) {
			s.Checks = []Check{{Kind: CheckThreshold, Metric: "m", Op: "~="}}
		}, "unknown op"},
		{"inverted range", func(s *Scenario) {
			s.Checks = []Check{{Kind: CheckRange, Metric: "m", Min: 2, Max: 1}}
		}, "min 2 > max 1"},
		{"golden no want", func(s *Scenario) {
			s.Checks = []Check{{Kind: CheckGolden, Metric: "m"}}
		}, "needs want"},
	}
	for _, c := range cases {
		sc := good()
		c.mut(sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: not rejected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestCheckEval covers the check evaluator, including the missing-metric
// and non-numeric failure modes.
func TestCheckEval(t *testing.T) {
	m := &Metrics{}
	m.AddNum("rate", 42.5)
	m.AddText("digest", "abc123")

	cases := []struct {
		check Check
		pass  bool
	}{
		{Check{Kind: CheckThreshold, Metric: "rate", Op: ">=", Value: 42.5}, true},
		{Check{Kind: CheckThreshold, Metric: "rate", Op: ">", Value: 42.5}, false},
		{Check{Kind: CheckThreshold, Metric: "rate", Op: "<=", Value: 42.5}, true},
		{Check{Kind: CheckThreshold, Metric: "rate", Op: "<", Value: 50}, true},
		{Check{Kind: CheckThreshold, Metric: "rate", Op: "==", Value: 42.5}, true},
		{Check{Kind: CheckThreshold, Metric: "rate", Op: "!=", Value: 0}, true},
		{Check{Kind: CheckThreshold, Metric: "rate", Value: 40}, true}, // default op >=
		{Check{Kind: CheckThreshold, Metric: "missing", Value: 0}, false},
		{Check{Kind: CheckThreshold, Metric: "digest", Value: 0}, false}, // not numeric
		{Check{Kind: CheckRange, Metric: "rate", Min: 42, Max: 43}, true},
		{Check{Kind: CheckRange, Metric: "rate", Min: 0, Max: 42}, false},
		{Check{Kind: CheckRange, Metric: "digest", Min: 0, Max: 1}, false},
		{Check{Kind: CheckGolden, Metric: "digest", Want: "abc123"}, true},
		{Check{Kind: CheckGolden, Metric: "digest", Want: "abc124"}, false},
		{Check{Kind: CheckGolden, Metric: "rate", Want: "42.5"}, true}, // canonical text
	}
	for i, c := range cases {
		got := c.check.Eval(m)
		if got.Pass != c.pass {
			t.Errorf("case %d (%s %s): pass=%v, want %v (got %s, %s)",
				i, c.check.Kind, c.check.Metric, got.Pass, c.pass, got.Got, got.Detail)
		}
	}
	if r := (Check{Kind: CheckThreshold, Metric: "missing"}).Eval(m); r.Got != "(missing)" {
		t.Errorf("missing metric rendered %q", r.Got)
	}
}

// TestMetricsOrderAndOverwrite pins that Metrics preserves recording order
// and that re-adding a name overwrites in place.
func TestMetricsOrderAndOverwrite(t *testing.T) {
	m := &Metrics{}
	m.AddNum("b", 1)
	m.AddNum("a", 2)
	m.AddNum("b", 3)
	all := m.All()
	if len(all) != 2 || all[0].Name != "b" || all[1].Name != "a" {
		t.Fatalf("order not preserved: %+v", all)
	}
	if v, _ := m.Get("b"); v.Num != 3 {
		t.Errorf("overwrite lost: %+v", v)
	}
	if all[0].Text != "3" {
		t.Errorf("canonical integer text = %q, want bare digits", all[0].Text)
	}
}
