package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/hypertester/hypertester/internal/experiments"
)

// quickScenario is a cheap single-port scenario for runner-level tests.
func quickScenario(name string, checks []Check) *Scenario {
	return &Scenario{
		Name:     name,
		Topology: Topology{Ports: []float64{100}, DUT: DUTSink},
		Program: Program{Source: `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set(length, 64)
    .set(port, 0)
`},
		Traffic: Traffic{WarmupUs: 5, WindowUs: 10, Seed: 1},
		Checks:  checks,
	}
}

// TestRunSuite covers the suite runner end to end: passing checks, failing
// checks, and a scenario whose program does not compile — all reported in
// input order, none aborting the suite.
func TestRunSuite(t *testing.T) {
	bad := quickScenario("wont-compile", nil)
	bad.Program.Source = "T1 = trigger(.set(port, 0)\n"
	suite := &Suite{Name: "mixed", Scenarios: []*Scenario{
		quickScenario("passes", []Check{
			{Kind: CheckThreshold, Metric: "sink0.rx_packets", Op: ">", Value: 0},
		}),
		quickScenario("fails", []Check{
			{Kind: CheckThreshold, Metric: "sink0.rx_packets", Op: "<", Value: 0},
		}),
		bad,
	}}
	res := RunSuite(suite, 0)
	if res.Pass || res.Passed != 1 || res.Failed != 2 {
		t.Fatalf("suite tally = pass=%v %d/%d, want fail 1/2", res.Pass, res.Passed, res.Failed)
	}
	if len(res.Scenarios) != 3 {
		t.Fatalf("got %d scenario results", len(res.Scenarios))
	}
	for i, want := range []string{"passes", "fails", "wont-compile"} {
		if res.Scenarios[i].Name != want {
			t.Errorf("result %d = %s, want %s (input order lost)", i, res.Scenarios[i].Name, want)
		}
	}
	if !res.Scenarios[0].Pass || res.Scenarios[1].Pass {
		t.Errorf("check verdicts wrong: %+v %+v", res.Scenarios[0], res.Scenarios[1])
	}
	if res.Scenarios[2].Err == "" {
		t.Errorf("compile failure not reported: %+v", res.Scenarios[2])
	}

	// The result must round-trip through its machine-readable encoding.
	data, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var back SuiteResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("results file does not re-parse: %v", err)
	}
	if back.Passed != 1 || back.Failed != 2 || len(back.Scenarios) != 3 {
		t.Errorf("round-tripped tally diverges: %+v", back)
	}
}

// TestSuiteTableHeadline pins the rendered scenario table: a tally row
// whose first cell parses as the experiments headline.
func TestSuiteTableHeadline(t *testing.T) {
	r := &RunResult{
		Name:   "x",
		Passed: 2,
		Failed: 1,
		Checks: []CheckResult{
			{Name: "a", Pass: true, Got: "1"},
			{Name: "b", Pass: true, Got: "2"},
			{Name: "c", Pass: false, Got: "3", Detail: "want rate >= 9"},
		},
	}
	tbl := r.Table()
	if got := tbl.Rows[len(tbl.Rows)-1].Values[0]; got != "2 of 3 passed" {
		t.Fatalf("tally cell = %q", got)
	}
	if !strings.Contains(tbl.Rows[2].Values[0], "FAIL (want rate >= 9)") {
		t.Errorf("failing row = %q", tbl.Rows[2].Values[0])
	}

	experiments.RegisterHeadline("scenario/x", experiments.HeadlineSpec{Row: -1, Col: 0, Unit: "checks-passed"})
	defer experiments.Unregister("scenario/x")
	v, unit, err := experiments.Headline(tbl)
	if err != nil || v != 2 || unit != "checks-passed" {
		t.Errorf("headline = %v %s (%v), want 2 checks-passed", v, unit, err)
	}
}

// TestRegisterSuiteBridge pins the registry integration: registered
// scenarios appear in experiments.Specs, run through the experiments
// runner, and roll back cleanly on duplicate names.
func TestRegisterSuiteBridge(t *testing.T) {
	suite := &Suite{Name: "bridge", Scenarios: []*Scenario{
		quickScenario("bridge-a", []Check{
			{Kind: CheckThreshold, Metric: "sink0.rx_packets", Op: ">", Value: 0},
		}),
	}}
	if err := RegisterSuite(suite); err != nil {
		t.Fatal(err)
	}
	defer UnregisterSuite(suite)

	var spec *experiments.Spec
	for _, sp := range experiments.Specs() {
		if sp.ID == "scenario/bridge-a" {
			sp := sp
			spec = &sp
		}
	}
	if spec == nil {
		t.Fatal("registered scenario missing from experiments.Specs()")
	}
	out := experiments.Run(experiments.Config{Quick: true, Seed: 1}, []experiments.Spec{*spec})
	v, unit, err := experiments.Headline(out[0])
	if err != nil || v != 1 || unit != "checks-passed" {
		t.Errorf("headline via registry = %v %s (%v), want 1 checks-passed", v, unit, err)
	}

	// Duplicate registration must fail and roll back nothing else.
	if err := RegisterSuite(suite); err == nil {
		t.Error("duplicate suite registration did not error")
	}

	dup := &Suite{Name: "dup", Scenarios: []*Scenario{
		quickScenario("bridge-b", nil),
		quickScenario("bridge-a", nil), // collides with the installed one
	}}
	if err := RegisterSuite(dup); err == nil {
		t.Fatal("colliding suite registration did not error")
	}
	for _, sp := range experiments.Specs() {
		if sp.ID == "scenario/bridge-b" {
			t.Error("failed registration left bridge-b behind (no rollback)")
		}
	}
}
