package scenario

import (
	"os"
	"testing"
)

// TestStarterFileInSync pins that the committed example suite is exactly
// EncodeSuite(Library()) — regenerate examples/suites/starter.json after
// editing library.go (make suite does this check in CI).
func TestStarterFileInSync(t *testing.T) {
	want, err := EncodeSuite(Library())
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("../../examples/suites/starter.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("examples/suites/starter.json is out of sync with scenario.Library(); regenerate it from EncodeSuite(Library())")
	}
}

// TestPaperSmokeSuite runs the second committed example end to end: it
// loads .nt program files from tasks/ (the file-reference path) and its
// checks — including the byte-exact golden trace oracle — must pass on
// both engines.
func TestPaperSmokeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the example suite twice")
	}
	suite, err := Load("../../examples/suites/paper-smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		res := RunSuite(suite, workers)
		if !res.Pass {
			for _, sc := range res.Scenarios {
				if sc.Err != "" {
					t.Errorf("workers=%d: %s: %s", workers, sc.Name, sc.Err)
				}
				for _, c := range sc.Checks {
					if !c.Pass {
						t.Errorf("workers=%d: %s: check %q failed: got %s, %s",
							workers, sc.Name, c.Name, c.Got, c.Detail)
					}
				}
			}
		}
	}
}
