package scenario

import (
	"github.com/hypertester/hypertester/internal/experiments"
)

// RegisterSuite installs every scenario of a suite into the experiments
// registry, next to the 18 paper reproductions: experiments.All then runs
// paper figures and declared scenarios through one pool, and each scenario
// exposes its check tally as the headline metric ("N of M passed" → N,
// unit "checks-passed"). Registration is all-or-nothing: on a duplicate
// name, already-installed scenarios are rolled back.
func RegisterSuite(suite *Suite) error {
	var done []string
	for _, sc := range suite.Scenarios {
		sc := sc
		id := "scenario/" + sc.Name
		err := experiments.Register(experiments.Spec{
			ID: id,
			Fn: func(cfg experiments.Config) *experiments.Result {
				r, err := Run(sc, cfg.SimWorkers)
				if err != nil {
					r = &RunResult{Name: sc.Name, Title: sc.Title, Err: err.Error()}
				}
				return r.Table()
			},
		})
		if err != nil {
			for _, d := range done {
				experiments.Unregister(d)
			}
			return err
		}
		// Headline = the tally row's leading number (checks passed).
		experiments.RegisterHeadline(id, experiments.HeadlineSpec{Row: -1, Col: 0, Unit: "checks-passed"})
		done = append(done, id)
	}
	return nil
}

// UnregisterSuite removes a suite's scenarios from the registry.
func UnregisterSuite(suite *Suite) {
	for _, sc := range suite.Scenarios {
		experiments.Unregister("scenario/" + sc.Name)
	}
}
