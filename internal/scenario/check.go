package scenario

import (
	"fmt"
	"strconv"
)

// Metric is one observed value. Numeric metrics carry Num and a canonical
// Text rendering; text-only metrics (trace digests) carry just Text. The
// canonical rendering is what golden checks compare, so it must be
// locale-free and stable: integers print bare, floats with %g.
type Metric struct {
	Name string  `json:"name"`
	Num  float64 `json:"num,omitempty"`
	Text string  `json:"text"`
	// IsNum distinguishes a numeric 0 from a text-only metric.
	IsNum bool `json:"is_num,omitempty"`
}

// Metrics is an ordered metric list — ordered so results render and encode
// byte-identically run after run (the package never ranges over a map to
// produce output). Lookup is by name.
type Metrics struct {
	list  []Metric
	index map[string]int
}

// AddNum records a numeric metric with its canonical text rendering.
func (m *Metrics) AddNum(name string, v float64) {
	text := strconv.FormatFloat(v, 'g', -1, 64)
	m.add(Metric{Name: name, Num: v, Text: text, IsNum: true})
}

// AddText records a text-only metric (golden checks only).
func (m *Metrics) AddText(name, text string) {
	m.add(Metric{Name: name, Text: text})
}

func (m *Metrics) add(mm Metric) {
	if m.index == nil {
		m.index = make(map[string]int)
	}
	if i, ok := m.index[mm.Name]; ok {
		m.list[i] = mm
		return
	}
	m.index[mm.Name] = len(m.list)
	m.list = append(m.list, mm)
}

// Get returns a metric by name.
func (m *Metrics) Get(name string) (Metric, bool) {
	i, ok := m.index[name]
	if !ok {
		return Metric{}, false
	}
	return m.list[i], true
}

// All returns the metrics in recording order.
func (m *Metrics) All() []Metric { return m.list }

// CheckResult is one evaluated check.
type CheckResult struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Metric string `json:"metric"`
	Pass   bool   `json:"pass"`
	// Got is the observed value's canonical text; Detail says what was
	// expected, phrased for a failure report.
	Got    string `json:"got"`
	Detail string `json:"detail"`
}

// Eval evaluates one check against the observed metrics. A missing metric
// fails the check rather than erroring: a typo'd metric name in a suite
// file should read as a failed assertion with a clear message, not abort
// the scenario.
func (c Check) Eval(m *Metrics) CheckResult {
	res := CheckResult{Name: c.Label(), Kind: c.Kind, Metric: c.Metric}
	got, ok := m.Get(c.Metric)
	if !ok {
		res.Got = "(missing)"
		res.Detail = fmt.Sprintf("metric %q was not observed", c.Metric)
		return res
	}
	res.Got = got.Text
	switch c.Kind {
	case CheckThreshold:
		op := c.Op
		if op == "" {
			op = ">="
		}
		res.Detail = fmt.Sprintf("want %s %s %v", c.Metric, op, c.Value)
		if !got.IsNum {
			res.Detail += " (metric is not numeric)"
			return res
		}
		switch op {
		case ">=":
			res.Pass = got.Num >= c.Value
		case "<=":
			res.Pass = got.Num <= c.Value
		case ">":
			res.Pass = got.Num > c.Value
		case "<":
			res.Pass = got.Num < c.Value
		case "==":
			res.Pass = got.Num == c.Value
		case "!=":
			res.Pass = got.Num != c.Value
		}
	case CheckRange:
		res.Detail = fmt.Sprintf("want %v <= %s <= %v", c.Min, c.Metric, c.Max)
		res.Pass = got.IsNum && got.Num >= c.Min && got.Num <= c.Max
		if !got.IsNum {
			res.Detail += " (metric is not numeric)"
		}
	case CheckGolden:
		res.Detail = fmt.Sprintf("want %s == %q, byte-exact", c.Metric, c.Want)
		res.Pass = got.Text == c.Want
	}
	return res
}
