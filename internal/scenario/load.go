package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Suite is a named list of scenarios, the unit suite files declare and the
// CLI's -suite mode runs.
type Suite struct {
	Name      string      `json:"name"`
	Scenarios []*Scenario `json:"scenarios"`
}

// Load reads and validates a suite file. Program files referenced by
// scenarios resolve relative to the suite file's directory and are read
// into the scenario here, so a loaded suite never touches the filesystem
// again. Every parse error carries file:line:col.
func Load(path string) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("suite: %w", err)
	}
	return Parse(data, path, filepath.Dir(path))
}

// Parse parses and validates suite JSON. name labels errors (usually the
// file path); dir resolves program file references ("" forbids them, for
// callers feeding untrusted bytes).
func Parse(data []byte, name, dir string) (*Suite, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var suite Suite
	if err := dec.Decode(&suite); err != nil {
		return nil, located(data, name, err, dec.InputOffset())
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("%s:%s: trailing content after the suite object",
			name, lineCol(data, dec.InputOffset()))
	}
	if suite.Name == "" {
		return nil, fmt.Errorf("%s: suite has no name", name)
	}
	if len(suite.Scenarios) == 0 {
		return nil, fmt.Errorf("%s: suite %q declares no scenarios", name, suite.Name)
	}
	seen := make(map[string]bool, len(suite.Scenarios))
	for i, sc := range suite.Scenarios {
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("%s: scenarios[%d]: %w", name, i, err)
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("%s: duplicate scenario name %q", name, sc.Name)
		}
		seen[sc.Name] = true
		if sc.Program.File != "" {
			if dir == "" {
				return nil, fmt.Errorf("%s: scenario %q: program file references are not allowed here", name, sc.Name)
			}
			src, err := os.ReadFile(filepath.Join(dir, sc.Program.File))
			if err != nil {
				return nil, fmt.Errorf("%s: scenario %q: program %w", name, sc.Name, err)
			}
			sc.Program.Source = Source(src)
			if sc.Program.Name == "" {
				sc.Program.Name = sc.Program.File
			}
			// The scenario is now self-contained; provenance lives in Name.
			sc.Program.File = ""
		}
	}
	return &suite, nil
}

// located rewrites a json decode error with file:line:col derived from the
// error's byte offset (or the decoder's position for offset-less errors
// like unknown fields).
func located(data []byte, name string, err error, fallbackOff int64) error {
	off := fallbackOff
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case errors.As(err, &syn):
		off = syn.Offset
	case errors.As(err, &typ):
		off = typ.Offset
	}
	return fmt.Errorf("%s:%s: %w", name, lineCol(data, off), err)
}

// lineCol renders a 1-based "line:col" for a byte offset into data.
func lineCol(data []byte, off int64) string {
	if off < 0 {
		off = 0
	}
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	line, col := 1, 1
	for _, b := range data[:off] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("%d:%d", line, col)
}

// EncodeSuite renders a suite as indented JSON, the exact bytes Parse
// accepts — used to generate the committed starter suite file and the test
// that keeps it in sync with the built-in library. HTML escaping is off so
// check operators like ">=" stay readable.
func EncodeSuite(s *Suite) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
