// Package switchcpu models the switch's control-plane CPU: the low-
// performance, high-programmability processor HyperTester co-designs with
// the switching ASIC (§3.1). It provides template-packet injection over the
// PCIe packet interface, the digest receive path (push-mode statistics),
// and the counter pull API in both one-by-one and batched form — the two
// collection modes Fig. 16 benchmarks.
package switchcpu

import (
	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

// Collection-latency calibration (Fig. 16b): batched pulls fetch 65536
// counters in under 0.2 s, one-by-one pulls are roughly an order of
// magnitude slower.
const (
	// SingleReadLatency is one control-plane register read RPC.
	SingleReadLatency = 30 * netsim.Microsecond
	// BatchSetupLatency is the fixed cost of a batched DMA pull.
	BatchSetupLatency = 1 * netsim.Millisecond
	// BatchPerCounterLatency is the marginal cost per counter in a batch.
	BatchPerCounterLatency = 3 * netsim.Microsecond
)

// CPU is the switch control-plane processor.
type CPU struct {
	sim *netsim.Sim
	sw  *asic.Switch

	// OnDigest, when set, runs for every digest message after the PCIe
	// channel delay. The msg slice is pooled by the ASIC's digest channel
	// and valid only during the call; retain a copy if needed. Messages are
	// also retained in Digests while RetainDigests is set.
	OnDigest func(msg []byte, at netsim.Time)

	// RetainDigests (default true) keeps a copy of every received message
	// in Digests. Goodput-only measurements (Fig. 16a) switch it off to
	// keep the digest path allocation-free.
	RetainDigests bool

	// Digests accumulates received push-mode messages.
	Digests [][]byte

	// DigestBytes totals goodput for the Fig. 16a measurement.
	DigestBytes uint64

	// pullBusyUntil serializes control-plane reads: the CPU issues one
	// RPC at a time.
	pullBusyUntil netsim.Time
}

// New attaches a CPU to a switch, wiring the digest channel.
func New(sim *netsim.Sim, sw *asic.Switch) *CPU {
	c := &CPU{sim: sim, sw: sw, RetainDigests: true}
	sw.DigestOut = func(data []byte, at netsim.Time) {
		if c.RetainDigests {
			c.Digests = append(c.Digests, append([]byte(nil), data...))
		}
		c.DigestBytes += uint64(len(data))
		if c.OnDigest != nil {
			c.OnDigest(data, at)
		}
	}
	return c
}

// Switch returns the attached switch.
func (c *CPU) Switch() *asic.Switch { return c.sw }

// InjectTemplate sends a CPU-built template packet into the ASIC over PCIe.
func (c *CPU) InjectTemplate(pkt *netproto.Packet) { c.sw.InjectFromCPU(pkt) }

// occupyPull reserves the control-plane channel for d and returns the
// completion time.
func (c *CPU) occupyPull(d netsim.Duration) netsim.Time {
	start := c.pullBusyUntil
	if now := c.sim.Now(); start < now {
		start = now
	}
	end := start.Add(d)
	c.pullBusyUntil = end
	return end
}

// PullCounter reads one register cell via a control-plane RPC; done runs at
// RPC completion with the value snapshotted at completion time.
func (c *CPU) PullCounter(r *asic.RegisterArray, idx int, done func(v uint64, at netsim.Time)) {
	end := c.occupyPull(SingleReadLatency)
	c.sim.At(end, func() {
		done(r.Read(idx), end)
	})
}

// PullCounters reads cells [lo,hi) one RPC at a time (the paper's "w/o
// batching" mode); done runs after the last RPC.
func (c *CPU) PullCounters(r *asic.RegisterArray, lo, hi int, done func(vals []uint64, at netsim.Time)) {
	n := hi - lo
	if n <= 0 {
		done(nil, c.sim.Now())
		return
	}
	end := c.occupyPull(netsim.Duration(n) * SingleReadLatency)
	c.sim.At(end, func() {
		done(r.Snapshot(lo, hi), end)
	})
}

// PullCountersBatch reads cells [lo,hi) with one batched DMA operation (the
// paper's "w/ batching" mode).
func (c *CPU) PullCountersBatch(r *asic.RegisterArray, lo, hi int, done func(vals []uint64, at netsim.Time)) {
	n := hi - lo
	if n <= 0 {
		done(nil, c.sim.Now())
		return
	}
	end := c.occupyPull(BatchSetupLatency + netsim.Duration(n)*BatchPerCounterLatency)
	c.sim.At(end, func() {
		done(r.Snapshot(lo, hi), end)
	})
}

// Poller periodically pulls a counter range — the "statistic collector"
// control program of §2.1. Each round issues one batched DMA pull and hands
// the snapshot to the callback; rounds never overlap (a slow pull delays
// the next round).
type Poller struct {
	cpu      *CPU
	reg      *asic.RegisterArray
	lo, hi   int
	interval netsim.Duration
	onPull   func(vals []uint64, at netsim.Time)

	stopped bool
	// Rounds counts completed pulls.
	Rounds uint64
}

// Poll starts pulling [lo,hi) every interval, invoking fn with each
// snapshot. Stop the poller to cease.
func (c *CPU) Poll(r *asic.RegisterArray, lo, hi int, interval netsim.Duration,
	fn func(vals []uint64, at netsim.Time)) *Poller {
	p := &Poller{cpu: c, reg: r, lo: lo, hi: hi, interval: interval, onPull: fn}
	c.sim.After(interval, p.round)
	return p
}

func (p *Poller) round() {
	if p.stopped {
		return
	}
	p.cpu.PullCountersBatch(p.reg, p.lo, p.hi, func(vals []uint64, at netsim.Time) {
		if p.stopped {
			return
		}
		p.Rounds++
		p.onPull(vals, at)
		p.cpu.sim.After(p.interval, p.round)
	})
}

// Stop halts the poller after any in-flight pull completes.
func (p *Poller) Stop() { p.stopped = true }

// CPUInjectCost is the switch CPU's per-packet cost for direct PCIe packet
// injection. The testbed's control CPU is a 4-core 1.6 GHz Pentium (§7);
// ~800 ns/packet (~1.25 Mpps) is generous for such a core pushing packets
// through the PCIe packet interface.
const CPUInjectCost = 800 * netsim.Nanosecond

// InjectLoop generates packets directly from the switch CPU — the naive
// alternative to template-based generation that §3.1's co-design argument
// rules out. Each packet costs CPUInjectCost of CPU time; build constructs
// the n-th packet. Returns a counter of injected packets.
func (c *CPU) InjectLoop(build func(n uint64) *netproto.Packet, until netsim.Time) *uint64 {
	count := new(uint64)
	var step func()
	step = func() {
		if c.sim.Now() >= until {
			return
		}
		pkt := build(*count)
		*count++
		c.sw.InjectFromCPU(pkt)
		c.sim.After(CPUInjectCost, step)
	}
	c.sim.After(CPUInjectCost, step)
	return count
}
