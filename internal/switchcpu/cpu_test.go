package switchcpu

import (
	"testing"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

func newCPU(t *testing.T) (*netsim.Sim, *asic.Switch, *CPU) {
	t.Helper()
	sim := netsim.New()
	sw := asic.New(asic.Config{Name: "sw", Sim: sim, PortGbps: []float64{100}, Seed: 1})
	return sim, sw, New(sim, sw)
}

func TestDigestReceive(t *testing.T) {
	sim, sw, cpu := newCPU(t)
	var gotAt netsim.Time
	cpu.OnDigest = func(msg []byte, at netsim.Time) { gotAt = at }
	sw.Ingress.Add(asic.ProcessorFunc(func(p *asic.PHV) {
		p.DigestData = []byte("report!")
		p.Drop = true
	}))
	raw, _ := netproto.BuildUDP(netproto.UDPSpec{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, FrameLen: 64})
	sw.Port(0).Receive(&netproto.Packet{Data: raw})
	sim.Run()
	if len(cpu.Digests) != 1 || string(cpu.Digests[0]) != "report!" {
		t.Fatalf("digests = %q", cpu.Digests)
	}
	if cpu.DigestBytes != 7 {
		t.Fatalf("DigestBytes = %d", cpu.DigestBytes)
	}
	if gotAt == 0 {
		t.Fatal("OnDigest not invoked")
	}
}

func TestPullCounterSingle(t *testing.T) {
	sim, _, cpu := newCPU(t)
	r := asic.NewRegisterArray("ctr", 8)
	r.Write(3, 42)
	var got uint64
	var at netsim.Time
	cpu.PullCounter(r, 3, func(v uint64, t netsim.Time) { got, at = v, t })
	sim.Run()
	if got != 42 {
		t.Fatalf("value = %d", got)
	}
	if at != netsim.Time(SingleReadLatency) {
		t.Fatalf("completion at %v, want %v", at, SingleReadLatency)
	}
}

func TestPullSerialized(t *testing.T) {
	// Two overlapping single pulls must be serialized on the channel.
	sim, _, cpu := newCPU(t)
	r := asic.NewRegisterArray("ctr", 8)
	var times []netsim.Time
	cpu.PullCounter(r, 0, func(v uint64, t netsim.Time) { times = append(times, t) })
	cpu.PullCounter(r, 1, func(v uint64, t netsim.Time) { times = append(times, t) })
	sim.Run()
	if times[1].Sub(times[0]) != SingleReadLatency {
		t.Fatalf("pulls not serialized: %v", times)
	}
}

func TestBatchedPullFaster(t *testing.T) {
	// Fig. 16b: 65536 counters in <0.2s batched; one-by-one much slower.
	const n = 65536
	sim, _, cpu := newCPU(t)
	r := asic.NewRegisterArray("ctr", n)
	var batchDone, singleDone netsim.Time
	cpu.PullCountersBatch(r, 0, n, func(vals []uint64, at netsim.Time) {
		if len(vals) != n {
			t.Errorf("batch returned %d values", len(vals))
		}
		batchDone = at
	})
	sim.Run()

	sim2, _, cpu2 := func() (*netsim.Sim, *asic.Switch, *CPU) {
		s := netsim.New()
		sw := asic.New(asic.Config{Name: "sw2", Sim: s, PortGbps: []float64{100}})
		return s, sw, New(s, sw)
	}()
	r2 := asic.NewRegisterArray("ctr", n)
	cpu2.PullCounters(r2, 0, n, func(vals []uint64, at netsim.Time) { singleDone = at })
	sim2.Run()

	if batchDone.Seconds() >= 0.2 {
		t.Fatalf("batched pull of 65536 took %.3fs, want <0.2s (Fig. 16b)", batchDone.Seconds())
	}
	if singleDone.Seconds() < 5*batchDone.Seconds() {
		t.Fatalf("one-by-one (%.3fs) should be far slower than batched (%.3fs)",
			singleDone.Seconds(), batchDone.Seconds())
	}
}

func TestPullEmptyRange(t *testing.T) {
	sim, _, cpu := newCPU(t)
	r := asic.NewRegisterArray("ctr", 4)
	called := false
	cpu.PullCounters(r, 2, 2, func(vals []uint64, at netsim.Time) {
		called = true
		if vals != nil {
			t.Errorf("vals = %v", vals)
		}
	})
	cpu.PullCountersBatch(r, 3, 1, func(vals []uint64, at netsim.Time) {
		if vals != nil {
			t.Errorf("batch vals = %v", vals)
		}
	})
	sim.Run()
	if !called {
		t.Fatal("done not called for empty range")
	}
}

func TestPullSnapshotDecoupled(t *testing.T) {
	// The values delivered reflect completion time, and later data-plane
	// writes must not mutate the delivered slice.
	sim, _, cpu := newCPU(t)
	r := asic.NewRegisterArray("ctr", 2)
	r.Write(0, 7)
	var got []uint64
	cpu.PullCountersBatch(r, 0, 2, func(vals []uint64, at netsim.Time) { got = vals })
	sim.Run()
	r.Write(0, 99)
	if got[0] != 7 {
		t.Fatalf("snapshot aliased live register: %v", got)
	}
}

func TestInjectTemplate(t *testing.T) {
	sim, sw, cpu := newCPU(t)
	seen := false
	sw.Ingress.Add(asic.ProcessorFunc(func(p *asic.PHV) {
		seen = p.Meta.InPort == asic.CPUPortID
		p.Drop = true
	}))
	raw, _ := netproto.BuildUDP(netproto.UDPSpec{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, FrameLen: 64})
	cpu.InjectTemplate(&netproto.Packet{Data: raw, Meta: netproto.Meta{TemplateID: 1}})
	sim.Run()
	if !seen {
		t.Fatal("template did not reach ingress from CPU port")
	}
}

func TestPollerRounds(t *testing.T) {
	sim, _, cpu := newCPU(t)
	r := asic.NewRegisterArray("ctr", 64)
	var snapshots [][]uint64
	p := cpu.Poll(r, 0, 64, 10*netsim.Millisecond, func(vals []uint64, at netsim.Time) {
		snapshots = append(snapshots, vals)
	})
	// Grow a counter between rounds.
	for i := 1; i <= 5; i++ {
		v := uint64(i)
		sim.At(netsim.Time(i)*netsim.Time(10*netsim.Millisecond)-netsim.Time(netsim.Millisecond),
			func() { r.Write(0, v) })
	}
	sim.RunUntil(netsim.Time(45 * netsim.Millisecond))
	p.Stop()
	sim.Run()

	if p.Rounds < 3 || p.Rounds > 5 {
		t.Fatalf("rounds = %d, want ~4 in 45ms at 10ms cadence", p.Rounds)
	}
	// Snapshots observe monotonically growing counter values.
	for i := 1; i < len(snapshots); i++ {
		if snapshots[i][0] < snapshots[i-1][0] {
			t.Fatalf("snapshot %d went backwards: %v", i, snapshots)
		}
	}
	if snapshots[len(snapshots)-1][0] == 0 {
		t.Fatal("poller never saw the counter grow")
	}
}

func TestPollerStopPreventsRounds(t *testing.T) {
	sim, _, cpu := newCPU(t)
	r := asic.NewRegisterArray("ctr", 4)
	p := cpu.Poll(r, 0, 4, netsim.Millisecond, func(vals []uint64, at netsim.Time) {})
	p.Stop()
	sim.RunUntil(netsim.Time(20 * netsim.Millisecond))
	if p.Rounds != 0 {
		t.Fatalf("stopped poller ran %d rounds", p.Rounds)
	}
}
