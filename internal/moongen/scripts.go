package moongen

import "strings"

// Lua scripts for the four Table 5 applications, written the way MoonGen
// userscripts are (device setup, mempool, slave task per queue, manual
// field filling). CountLoC applies the paper's counting rule: non-blank,
// non-comment lines.

// ScriptThroughput is the throughput-testing userscript.
const ScriptThroughput = `
local mg     = require "moongen"
local memory = require "memory"
local device = require "device"
local stats  = require "stats"

local PKT_SIZE = 64

function configure(parser)
	parser:argument("txDev", "transmit device"):convert(tonumber)
	parser:argument("rxDev", "receive device"):convert(tonumber)
	parser:option("-r --rate", "rate in Mbit/s"):default(10000):convert(tonumber)
end

function master(args)
	local txDev = device.config{port = args.txDev, txQueues = 1}
	local rxDev = device.config{port = args.rxDev, rxQueues = 1}
	device.waitForLinks()
	txDev:getTxQueue(0):setRate(args.rate)
	mg.startTask("txSlave", txDev:getTxQueue(0))
	mg.startTask("rxSlave", rxDev:getRxQueue(0))
	mg.waitForTasks()
end

function txSlave(queue)
	local mempool = memory.createMemPool(function(buf)
		buf:getUdpPacket():fill{
			ethSrc = queue, ethDst = "10:11:12:13:14:15",
			ip4Src = "10.1.0.1", ip4Dst = "10.2.0.1",
			udpSrc = 1, udpDst = 1,
			pktLength = PKT_SIZE
		}
	end)
	local bufs = mempool:bufArray()
	local txCtr = stats:newDevTxCounter(queue.dev, "plain")
	while mg.running() do
		bufs:alloc(PKT_SIZE)
		bufs:offloadUdpChecksums()
		queue:send(bufs)
		txCtr:update()
	end
	txCtr:finalize()
end

function rxSlave(queue)
	local rxCtr = stats:newDevRxCounter(queue.dev, "plain")
	while mg.running() do
		rxCtr:update()
	end
	rxCtr:finalize()
end
`

// ScriptDelay is the delay-testing userscript (timestamped probes plus a
// latency histogram, both HW and SW timestamping paths).
const ScriptDelay = `
local mg        = require "moongen"
local memory    = require "memory"
local device    = require "device"
local ts        = require "timestamping"
local hist      = require "histogram"
local timer     = require "timer"

local PKT_SIZE = 84
local RATE     = 1000

function configure(parser)
	parser:argument("txDev", "transmit device"):convert(tonumber)
	parser:argument("rxDev", "receive device"):convert(tonumber)
	parser:option("-m --mode", "hw or sw timestamps"):default("hw")
end

function master(args)
	local txDev = device.config{port = args.txDev, txQueues = 2}
	local rxDev = device.config{port = args.rxDev, rxQueues = 2}
	device.waitForLinks()
	mg.startTask("loadSlave", txDev:getTxQueue(0))
	mg.startTask("timerSlave", txDev:getTxQueue(1), rxDev:getRxQueue(1), args.mode)
	mg.waitForTasks()
end

function loadSlave(queue)
	local mempool = memory.createMemPool(function(buf)
		buf:getUdpPacket():fill{
			ip4Src = "10.1.0.1", ip4Dst = "10.2.0.1",
			udpSrc = 42, udpDst = 42,
			pktLength = PKT_SIZE
		}
	end)
	local bufs = mempool:bufArray()
	while mg.running() do
		bufs:alloc(PKT_SIZE)
		queue:send(bufs)
	end
end

function timerSlave(txQueue, rxQueue, mode)
	local timestamper
	if mode == "hw" then
		timestamper = ts:newUdpTimestamper(txQueue, rxQueue)
	else
		timestamper = ts:newSoftwareTimestamper(txQueue, rxQueue)
	end
	local h = hist:new()
	local rateLimit = timer:new(1 / RATE)
	while mg.running() do
		h:update(timestamper:measureLatency(PKT_SIZE, function(buf)
			buf:getUdpPacket():fill{
				ip4Src = "10.1.0.1", ip4Dst = "10.2.0.1",
				udpSrc = 42, udpDst = 42,
				pktLength = PKT_SIZE
			}
		end))
		rateLimit:wait()
		rateLimit:reset()
	end
	h:print()
	h:save("latency-" .. mode .. ".csv")
end
`

// ScriptIPScan is the Internet-scanning userscript (SYN probes over an
// address range, SYN+ACK capture).
const ScriptIPScan = `
local mg     = require "moongen"
local memory = require "memory"
local device = require "device"
local stats  = require "stats"

local PKT_SIZE  = 64
local BASE_IP   = parseIPAddress("11.0.0.0")
local NUM_ADDRS = 1048576

function configure(parser)
	parser:argument("txDev"):convert(tonumber)
	parser:argument("rxDev"):convert(tonumber)
end

function master(args)
	local txDev = device.config{port = args.txDev, txQueues = 1}
	local rxDev = device.config{port = args.rxDev, rxQueues = 1}
	device.waitForLinks()
	mg.startTask("scanSlave", txDev:getTxQueue(0))
	mg.startTask("captureSlave", rxDev:getRxQueue(0))
	mg.waitForTasks()
end

function scanSlave(queue)
	local mempool = memory.createMemPool(function(buf)
		buf:getTcpPacket():fill{
			ip4Src = "10.1.0.1",
			tcpSrc = 1024, tcpDst = 80,
			tcpSyn = 1, tcpSeqNumber = 1,
			pktLength = PKT_SIZE
		}
	end)
	local bufs = mempool:bufArray()
	local counter = 0
	while mg.running() do
		bufs:alloc(PKT_SIZE)
		for i, buf in ipairs(bufs) do
			local pkt = buf:getTcpPacket()
			pkt.ip4.dst:set(BASE_IP + counter % NUM_ADDRS)
			counter = counter + 1
		end
		bufs:offloadTcpChecksums()
		queue:send(bufs)
	end
end

function captureSlave(queue)
	local bufs = memory.bufArray()
	local live = 0
	while mg.running() do
		local rx = queue:recv(bufs)
		for i = 1, rx do
			local pkt = bufs[i]:getTcpPacket()
			if pkt.tcp:getSyn() == 1 and pkt.tcp:getAck() == 1 then
				live = live + 1
			end
		end
		bufs:free(rx)
	end
	print("live hosts:", live)
end
`

// ScriptSynFlood is the SYN-flood attack-emulation userscript.
const ScriptSynFlood = `
local mg     = require "moongen"
local memory = require "memory"
local device = require "device"
local stats  = require "stats"

local PKT_SIZE = 64

function configure(parser)
	parser:argument("dev", "devices to use"):args("+"):convert(tonumber)
	parser:option("-t --target", "target IP"):default("10.2.0.1")
	parser:option("-a --agents", "emulated agents"):default(65536):convert(tonumber)
end

function master(args)
	for i, port in ipairs(args.dev) do
		local dev = device.config{port = port, txQueues = 1}
		device.waitForLinks()
		mg.startTask("floodSlave", dev:getTxQueue(0), args.target, args.agents)
	end
	mg.waitForTasks()
end

function floodSlave(queue, target, agents)
	local mempool = memory.createMemPool(function(buf)
		buf:getTcpPacket():fill{
			ip4Dst = target,
			tcpDst = 80,
			tcpSyn = 1,
			tcpSeqNumber = 1,
			tcpWindow = 10,
			pktLength = PKT_SIZE
		}
	end)
	local bufs = mempool:bufArray()
	local baseIP = parseIPAddress("12.0.0.1")
	local agent = 0
	local txCtr = stats:newDevTxCounter(queue.dev, "plain")
	while mg.running() do
		bufs:alloc(PKT_SIZE)
		for i, buf in ipairs(bufs) do
			local pkt = buf:getTcpPacket()
			pkt.ip4.src:set(baseIP + agent % agents)
			pkt.tcp:setSrcPort(1024 + agent % 64512)
			agent = agent + 1
		end
		bufs:offloadTcpChecksums()
		queue:send(bufs)
		txCtr:update()
	end
	txCtr:finalize()
end
`

// Scripts maps application name to userscript, for the Table 5 experiment.
var Scripts = map[string]string{
	"throughput": ScriptThroughput,
	"delay":      ScriptDelay,
	"ipscan":     ScriptIPScan,
	"synflood":   ScriptSynFlood,
}

// CountLoC counts non-blank, non-comment lines of a Lua script, the rule
// the paper applies to MoonGen userscripts in Table 5.
func CountLoC(script string) int {
	n := 0
	for _, line := range strings.Split(script, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "--") {
			continue
		}
		n++
	}
	return n
}
