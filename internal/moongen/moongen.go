// Package moongen models the paper's software baseline: MoonGen, a
// DPDK-based packet generator scripted in Lua (Emmerich et al., IMC'15).
// The model captures the behaviours the paper's comparisons rest on:
//
//   - a per-core packet budget (one CPU core saturates a 10 Gbps port with
//     64-byte frames; a single core cannot fill a 40 Gbps port with small
//     packets — Figs. 9b, 10b);
//   - DPDK burst batching, which makes software departures bursty;
//   - NIC hardware rate control whose pacing clock is far coarser than a
//     switch pipeline's packet-arrival granularity, leaving inter-departure
//     errors an order of magnitude above HyperTester's (Fig. 11);
//   - software timestamping error that inflates measured delays (Fig. 18).
//
// Calibration sources: the MoonGen paper's reported 14.88 Mpps single-core
// line-rate result for 10 GbE and the gap study it cites ([24] in the
// HyperTester paper).
package moongen

import (
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/testbed"
)

// Model constants.
const (
	// CPUCostPerPacket is the per-packet CPU time of the generation loop
	// (buffer alloc, field fill, checksum offload setup). 63.5 ns/packet
	// = 15.75 Mpps per core — just enough for one core to saturate a
	// 10 GbE port with 64-byte frames under this repo's 80-byte wire
	// occupancy model (the classic "14.88 Mpps" figure assumes 84 bytes).
	CPUCostPerPacket = netsim.Duration(63500) // 63.5 ns in ps

	// CPUCostJitterSpread is the spread of per-packet CPU time noise
	// (cache misses, ring contention).
	CPUCostJitterSpread = 8 * netsim.Nanosecond

	// BurstSize is the DPDK TX burst: the CPU hands descriptors to the
	// NIC in batches, so software departures cluster.
	BurstSize = 32

	// HWRateClock is the NIC rate-limiter pacing granularity. Hardware
	// rate control quantizes departure slots to this grid — coarse next
	// to the 6.4 ns template-arrival granularity of a switch pipeline.
	HWRateClock = 205 * netsim.Nanosecond

	// SWTimestampMean/Spread model CPU (software) timestamping error:
	// the timestamp is taken in the processing loop, microseconds away
	// from the wire (Fig. 18's MoonGen-SW deviating ~3x).
	SWTimestampMean   = 1200 * netsim.Nanosecond
	SWTimestampSpread = 900 * netsim.Nanosecond

	// HWTimestampSpread models NIC MAC-level timestamp error.
	HWTimestampSpread = 4 * netsim.Nanosecond
)

// Config describes one generator instance (one core driving one port, the
// deployment the paper evaluates).
type Config struct {
	Name     string
	PortGbps float64
	FrameLen int
	// TargetPps is the configured rate; 0 means "as fast as possible".
	TargetPps float64
	// HWRateControl selects NIC-based pacing (the paper configures
	// MoonGen this way for the rate-control comparison).
	HWRateControl bool
	// Build constructs the n-th frame. Nil uses a fixed UDP frame.
	Build func(n uint64) []byte
	Seed  int64
}

// Generator is one MoonGen core+port instance.
type Generator struct {
	Iface *testbed.Iface

	cfg Config
	sim *netsim.Sim
	rng *netsim.RNG

	// Sent counts frames handed to the NIC.
	Sent uint64

	cpuReady netsim.Time // when the core finishes producing the next packet
	running  bool
	stopAt   netsim.Time

	fixedFrame []byte
}

// New builds a generator.
func New(sim *netsim.Sim, cfg Config) *Generator {
	g := &Generator{
		Iface: testbed.NewIface(sim, cfg.Name, cfg.PortGbps),
		cfg:   cfg,
		sim:   sim,
		rng:   netsim.NewRNG(cfg.Seed, "moongen/"+cfg.Name),
	}
	if cfg.Build == nil {
		frameLen := cfg.FrameLen
		if frameLen < netproto.MinUDPFrame {
			frameLen = netproto.MinUDPFrame
		}
		raw, err := netproto.BuildUDP(netproto.UDPSpec{
			SrcIP: netproto.MustIPv4("10.1.0.1"), DstIP: netproto.MustIPv4("10.2.0.1"),
			SrcPort: 1000, DstPort: 2000, FrameLen: frameLen,
		})
		if err != nil {
			panic(err)
		}
		g.fixedFrame = raw
	}
	return g
}

// Start begins generation until the given virtual deadline.
func (g *Generator) Start(until netsim.Time) {
	if g.running {
		return
	}
	g.running = true
	g.stopAt = until
	g.cpuReady = g.sim.Now()
	if g.cfg.TargetPps > 0 {
		g.schedulePaced()
	} else {
		g.scheduleBurst()
	}
}

// Stop halts generation at the current virtual time.
func (g *Generator) Stop() { g.running = false }

// scheduleBurst models max-speed generation: the core spends per-packet CPU
// time assembling BurstSize descriptors, then hands the burst to the NIC,
// which serializes back to back.
func (g *Generator) scheduleBurst() {
	if !g.running || g.sim.Now() >= g.stopAt {
		g.running = false
		return
	}
	var cpu netsim.Duration
	for i := 0; i < BurstSize; i++ {
		cpu += CPUCostPerPacket + g.rng.Jitter(CPUCostJitterSpread)
	}
	g.sim.After(cpu, func() {
		if !g.running || g.sim.Now() >= g.stopAt {
			g.running = false
			return
		}
		for i := 0; i < BurstSize; i++ {
			g.Iface.Send(g.nextPacket())
		}
		g.scheduleBurst()
	})
}

// schedulePaced models rate-controlled generation: one packet per interval.
// With HW rate control the NIC releases descriptors on its internal pacing
// grid; with software rate control the CPU busy-waits, adding timer noise.
// In both modes the NIC TX queue backpressures the core, so production
// never runs ahead of pacing (descriptor ring model).
func (g *Generator) schedulePaced() {
	if !g.running || g.sim.Now() >= g.stopAt {
		g.running = false
		return
	}
	interval := netsim.Duration(1e12 / g.cfg.TargetPps)
	n := netsim.Duration(g.Sent)
	ideal := netsim.Time(n * interval)

	var depart netsim.Time
	if g.cfg.HWRateControl {
		depart = quantizeUp(ideal, HWRateClock)
		// Descriptor fetch / DMA completion noise grows with frame
		// size (the gap study [24] observed exactly this); it is the
		// dominant error term for large paced frames.
		depart = depart.Add(netsim.Duration(g.rng.Int63n(int64(dmaJitter(len(g.frameBytesFor()))))))
	} else {
		// Software pacing: busy-wait precision noise, always late.
		depart = ideal.Add(netsim.Duration(g.rng.Int63n(int64(swPacerSpread))))
	}
	// CPU feeding constraint: the core needs CPUCostPerPacket per frame.
	g.cpuReady = g.cpuReady.Add(CPUCostPerPacket + g.rng.Jitter(CPUCostJitterSpread))
	if depart < g.cpuReady {
		depart = g.cpuReady
	}
	if now := g.sim.Now(); depart < now {
		depart = now
	}
	if depart >= g.stopAt {
		g.running = false
		return
	}
	g.sim.At(depart, func() {
		g.Iface.Send(g.nextPacket())
		g.schedulePaced()
	})
}

// swPacerSpread is the software busy-wait release noise.
const swPacerSpread = 600 * netsim.Nanosecond

// dmaJitter is the NIC descriptor-fetch/DMA noise bound for a frame size.
func dmaJitter(frameLen int) netsim.Duration {
	return (150 + 2*netsim.Duration(frameLen)) * netsim.Nanosecond
}

// frameBytesFor reports the frame length of the next packet (model input
// for the DMA noise bound).
func (g *Generator) frameBytesFor() []byte {
	if g.cfg.Build != nil {
		return make([]byte, g.cfg.FrameLen+netproto.MinUDPFrame)
	}
	return g.fixedFrame
}

// nextPacket builds the next frame to send.
func (g *Generator) nextPacket() *netproto.Packet {
	var data []byte
	if g.cfg.Build != nil {
		data = g.cfg.Build(g.Sent)
	} else {
		data = make([]byte, len(g.fixedFrame))
		copy(data, g.fixedFrame)
	}
	pkt := &netproto.Packet{Data: data}
	pkt.Meta.UID = g.Sent + 1
	g.Sent++
	return pkt
}

func quantizeUp(t netsim.Time, grid netsim.Duration) netsim.Time {
	gt := netsim.Time(grid)
	return (t + gt - 1) / gt * gt
}

// SWTimestamp returns a software (CPU) timestamp for an event at true time
// t: late and noisy, as Fig. 18's MoonGen-SW results show.
func (g *Generator) SWTimestamp(t netsim.Time) netsim.Time {
	return t.Add(SWTimestampMean + g.rng.Jitter(SWTimestampSpread))
}

// HWTimestamp returns a NIC hardware timestamp for an event at true time t.
func (g *Generator) HWTimestamp(t netsim.Time) netsim.Time {
	return t.Add(g.rng.Jitter(HWTimestampSpread))
}

// MaxPpsPerCore returns the CPU-bound packet rate of one core.
func MaxPpsPerCore() float64 { return 1e12 / float64(CPUCostPerPacket) }

// LineRatePps returns the wire-limited packet rate for a frame size on a
// port rate.
func LineRatePps(frameLen int, gbps float64) float64 {
	return 1e9 / netproto.WireTimeNs(frameLen, gbps)
}

// ExpectedPps returns the rate the model predicts for one core on one port:
// min(CPU budget, line rate), the curve Figs. 9b/10b trace.
func ExpectedPps(frameLen int, gbps float64) float64 {
	cpu := MaxPpsPerCore()
	line := LineRatePps(frameLen, gbps)
	if cpu < line {
		return cpu
	}
	return line
}
