package moongen

import (
	"math"
	"testing"

	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/stats"
	"github.com/hypertester/hypertester/internal/testbed"
)

func runGen(t *testing.T, cfg Config, window netsim.Duration) *testbed.Sink {
	t.Helper()
	sim := netsim.New()
	g := New(sim, cfg)
	sink := testbed.NewSink(sim, "sink", cfg.PortGbps)
	sink.RecordTimestamps = true
	testbed.Connect(sim, g.Iface, sink.Iface, 0)
	g.Start(netsim.Time(window))
	sim.RunUntil(netsim.Time(window) + netsim.Time(netsim.Millisecond))
	return sink
}

func TestMaxSpeedSmallPacketsCPUBound(t *testing.T) {
	// One core on a 40G port with 64B frames: CPU-bound at ~15.7 Mpps,
	// well under the 62.5 Mpps line rate (Fig. 9b).
	sink := runGen(t, Config{Name: "mg", PortGbps: 40, FrameLen: 64, Seed: 1}, 2*netsim.Millisecond)
	pps := sink.RatePps() / 1e6
	if pps < 14 || pps > 16.5 {
		t.Fatalf("64B single-core rate = %.2f Mpps, want ~15.7", pps)
	}
	if g := sink.ThroughputGbps(); g > 12 {
		t.Fatalf("64B throughput = %.1f Gbps; one core must not fill 40G", g)
	}
}

func TestMaxSpeedLargePacketsLineRate(t *testing.T) {
	// 1500B frames: line-rate limited, CPU has headroom (Fig. 9b shape).
	sink := runGen(t, Config{Name: "mg", PortGbps: 40, FrameLen: 1500, Seed: 1}, 2*netsim.Millisecond)
	if g := sink.ThroughputGbps(); g < 38 || g > 41 {
		t.Fatalf("1500B throughput = %.1f Gbps, want ~40 (line rate)", g)
	}
}

func TestTenGigSaturatedByOneCore(t *testing.T) {
	// The paper's Fig. 10b deployment: one core per 10G port at 64B.
	sink := runGen(t, Config{Name: "mg", PortGbps: 10, FrameLen: 64, Seed: 1}, 2*netsim.Millisecond)
	if g := sink.ThroughputGbps(); g < 9.4 || g > 10.1 {
		t.Fatalf("throughput = %.2f Gbps, want ~10 (one core saturates 10G)", g)
	}
}

func TestHWRateControlHoldsRate(t *testing.T) {
	target := 1e6 // 1 Mpps
	sink := runGen(t, Config{
		Name: "mg", PortGbps: 40, FrameLen: 64,
		TargetPps: target, HWRateControl: true, Seed: 1,
	}, 10*netsim.Millisecond)
	pps := sink.RatePps()
	if math.Abs(pps-target)/target > 0.02 {
		t.Fatalf("rate = %.0f pps, want ~%.0f", pps, target)
	}
}

func TestHWRateControlErrorMagnitude(t *testing.T) {
	// Inter-departure error with NIC pacing sits at the ~100ns scale —
	// an order of magnitude (or more) above a switch pipeline's few ns.
	target := 1e6
	sink := runGen(t, Config{
		Name: "mg", PortGbps: 40, FrameLen: 64,
		TargetPps: target, HWRateControl: true, Seed: 1,
	}, 20*netsim.Millisecond)
	e := stats.InterDepartureErrors(sink.Timestamps, 1e9/target)
	if e.MAE < 20 || e.MAE > 400 {
		t.Fatalf("MG MAE = %.1f ns, want order of ~100ns", e.MAE)
	}
	if e.RMSE < e.MAE {
		t.Fatalf("RMSE %.1f < MAE %.1f", e.RMSE, e.MAE)
	}
}

func TestSWRateControlWorseThanHW(t *testing.T) {
	target := 1e6
	hw := runGen(t, Config{Name: "hw", PortGbps: 40, FrameLen: 64,
		TargetPps: target, HWRateControl: true, Seed: 1}, 10*netsim.Millisecond)
	sw := runGen(t, Config{Name: "sw", PortGbps: 40, FrameLen: 64,
		TargetPps: target, HWRateControl: false, Seed: 1}, 10*netsim.Millisecond)
	ehw := stats.InterDepartureErrors(hw.Timestamps, 1e9/target)
	esw := stats.InterDepartureErrors(sw.Timestamps, 1e9/target)
	if esw.MAE <= ehw.MAE {
		t.Fatalf("SW pacing MAE %.1f should exceed HW pacing MAE %.1f", esw.MAE, ehw.MAE)
	}
}

func TestPacedStopsAtDeadline(t *testing.T) {
	sink := runGen(t, Config{Name: "mg", PortGbps: 10, FrameLen: 64,
		TargetPps: 1e5, HWRateControl: true, Seed: 1}, 1*netsim.Millisecond)
	want := 100.0 // 1ms at 100Kpps
	if math.Abs(float64(sink.Packets)-want) > 3 {
		t.Fatalf("sent %d packets in 1ms at 100Kpps, want ~100", sink.Packets)
	}
}

func TestCustomBuilder(t *testing.T) {
	// Build receives a running packet index, letting scripts vary fields
	// per packet (the Lua-callback equivalent).
	sim := netsim.New()
	seen := map[int]int{}
	g := New(sim, Config{Name: "mg", PortGbps: 10, TargetPps: 1e6, HWRateControl: true, Seed: 1,
		Build: func(n uint64) []byte { return make([]byte, 64+int(n%3)) }})
	sink := testbed.NewSink(sim, "sink", 10)
	sink.OnPacket = func(pkt *netproto.Packet, at netsim.Time) { seen[pkt.Len()]++ }
	testbed.Connect(sim, g.Iface, sink.Iface, 0)
	g.Start(netsim.Time(100 * netsim.Microsecond))
	sim.Run()
	if len(seen) != 3 {
		t.Fatalf("custom builder sizes seen: %v", seen)
	}
}

func TestTimestampModels(t *testing.T) {
	sim := netsim.New()
	g := New(sim, Config{Name: "mg", PortGbps: 10, FrameLen: 64, Seed: 3})
	base := netsim.Time(1000 * netsim.Microsecond)
	var swErr, hwErr []float64
	for i := 0; i < 500; i++ {
		swErr = append(swErr, g.SWTimestamp(base).Sub(base).Nanoseconds())
		hwErr = append(hwErr, g.HWTimestamp(base).Sub(base).Nanoseconds())
	}
	if m := stats.Mean(swErr); m < 200 {
		t.Fatalf("SW timestamp bias = %.0fns, want large positive", m)
	}
	if m := math.Abs(stats.Mean(hwErr)); m > 2 {
		t.Fatalf("HW timestamp bias = %.1fns, want ~0", m)
	}
	if stats.StdDev(hwErr) > stats.StdDev(swErr) {
		t.Fatal("HW timestamps should be less noisy than SW")
	}
}

func TestExpectedPpsModel(t *testing.T) {
	if pps := ExpectedPps(64, 10); math.Abs(pps-LineRatePps(64, 10)) > 1 {
		t.Fatalf("64B@10G should be line-rate bound: %.0f", pps)
	}
	if pps := ExpectedPps(64, 40); math.Abs(pps-MaxPpsPerCore()) > 1 {
		t.Fatalf("64B@40G should be CPU bound: %.0f", pps)
	}
	if pps := ExpectedPps(1500, 40); math.Abs(pps-LineRatePps(1500, 40)) > 1 {
		t.Fatalf("1500B@40G should be line-rate bound: %.0f", pps)
	}
}

func TestScriptLoCCounts(t *testing.T) {
	// Table 5's MoonGen column: tens of lines per app, delay the largest.
	counts := map[string]int{}
	for name, script := range Scripts {
		counts[name] = CountLoC(script)
	}
	for name, c := range counts {
		if c < 30 || c > 90 {
			t.Errorf("%s script LoC = %d, out of Table 5's magnitude", name, c)
		}
	}
	if counts["delay"] <= counts["throughput"] {
		t.Error("delay script should be the longest, as in Table 5")
	}
	if CountLoC("-- only a comment\n\n") != 0 {
		t.Error("comment/blank counting broken")
	}
}
