//go:build !race

// Package raceflag reports whether the binary was built with the race
// detector. Zero-allocation guard tests consult it: race instrumentation
// inserts its own heap allocations, so allocs-per-op contracts only hold
// in non-race builds.
package raceflag

// Enabled is true when built with -race.
const Enabled = false
