package asic

import (
	"testing"

	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

// TestWheelGeometryCoversCalibration pins the relationship between the
// netsim timing wheel's bucket geometry and the calibration constants in
// timing.go. The wheel's levels are sized so that each class of scheduler
// horizon this package generates lands in O(1) wheel buckets rather than
// the overflow heap; if a calibration constant drifts past its level's
// span, this test names the invariant that broke. (The test lives here
// because netsim cannot import asic without a cycle.)
func TestWheelGeometryCoversCalibration(t *testing.T) {
	span := func(k int) netsim.Duration { return netsim.WheelLevelSpan(k) }

	// Level 0 (256 ps buckets, 65.5 ns span) must resolve the minimum
	// template inter-arrival — the 6.4 ns wire time of a 64-byte frame at
	// the 100 Gbps recirculation port — with room for tens of buckets, so
	// back-to-back template departures never collapse into one bucket.
	interArrival := netsim.Ns(netproto.WireTimeNs(64, RecircGbps))
	if interArrival < 8*netsim.WheelBucketWidth(0) {
		t.Fatalf("level-0 buckets too coarse: inter-arrival %v vs bucket %v",
			interArrival, netsim.WheelBucketWidth(0))
	}
	if interArrival >= span(0) {
		t.Fatalf("inter-arrival %v beyond level-0 span %v", interArrival, span(0))
	}

	// Level 1 (65.5 ns buckets, 16.8 µs span) must hold the per-packet
	// pipeline delays: the fixed pipeline latency, the 64-byte loop RTT,
	// and the multicast replication delay for the largest frame.
	for _, c := range []struct {
		name string
		d    netsim.Duration
	}{
		{"PipelineFixedNs", netsim.Ns(PipelineFixedNs)},
		{"LoopRTT(64)", netsim.Ns(LoopRTTNs(64))},
		{"McastDelay(1500)", netsim.Ns(McastDelayNs(1500))},
	} {
		if c.d >= span(1) {
			t.Fatalf("%s = %v beyond level-1 span %v", c.name, c.d, span(1))
		}
		if c.d < netsim.WheelBucketWidth(1) {
			t.Fatalf("%s = %v fits in one level-1 bucket width %v — level 0 should own it",
				c.name, c.d, netsim.WheelBucketWidth(1))
		}
	}

	// Level 2 (16.8 µs buckets, 4.3 ms span) owns measurement-window and
	// rate-control horizons: 1 Mpps pacing (1 µs) through quick-mode
	// windows (1 ms) stay at or below this level.
	if netsim.Duration(1*netsim.Millisecond) >= span(2) {
		t.Fatalf("1 ms quick window beyond level-2 span %v", span(2))
	}

	// Level 3 (4.3 ms buckets, 1.1 s span) must cover full experiment
	// windows (100 ms scale) without spilling every timer to overflow.
	if netsim.Duration(100*netsim.Millisecond) >= span(3) {
		t.Fatalf("100 ms full window beyond level-3 span %v", span(3))
	}
}
