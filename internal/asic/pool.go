package asic

import (
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/obs"
)

// This file holds the switch's hot-path object pools. A Switch is bound to a
// single-threaded Sim, so plain free-list slices suffice — no locking, and
// (unlike sync.Pool) no cross-experiment sharing that could perturb
// determinism when experiment suites run in parallel.
//
// Pooling invariants (see DESIGN.md "Pooling invariants"):
//   - A PHV lives from acquirePHV to releasePHV within one pipeline pass;
//     processors must not retain a *PHV past their Process call.
//   - A pktJob lives from job() to putJob() across exactly one scheduled
//     callback.
//   - A Packet is released only by its exclusive owner, on paths where the
//     packet's journey ends inside the switch (pipeline drop, no-route drop,
//     TX tail-drop, the replaced original of a multicast replication).
//     Delivered packets belong to the receiver and are never released here.

// acquirePHV returns a parsed PHV for pkt, reusing pooled storage (including
// the decoded-layer list capacity) when available.
func (sw *Switch) acquirePHV(pkt *netproto.Packet) *PHV {
	if n := len(sw.phvFree); n > 0 {
		p := sw.phvFree[n-1]
		sw.phvFree = sw.phvFree[:n-1]
		p.init(pkt)
		return p
	}
	return NewPHV(pkt)
}

// releasePHV recycles a PHV after its pipeline pass. The caller must not
// touch the PHV afterwards. An unconsumed digest attachment (a path that
// released the PHV without reaching takeDigest) is returned to its producer
// here so pooled buffers are never left dangling.
func (sw *Switch) releasePHV(p *PHV) {
	if p.DigestData != nil && p.DigestFree != nil {
		p.DigestFree(p.DigestData)
	}
	p.Pkt = nil
	p.Meta = netproto.Meta{}
	p.DigestData = nil
	p.DigestFree = nil
	sw.phvFree = append(sw.phvFree, p)
}

// pktJob carries the arguments of one scheduled packet hop (traffic-manager
// delay, egress delay, wire serialization, ingress latency) so hops schedule
// through netsim.AtCall without allocating a capturing closure per packet.
type pktJob struct {
	sw   *Switch
	pkt  *netproto.Packet
	port *Port
	// n and uid carry a byte count and packet UID for jobs that outlive
	// their packet (the packet is already handed across an LP boundary when
	// the job fires).
	n   int
	uid uint64
}

// job builds a pooled hop descriptor.
func (sw *Switch) job(pkt *netproto.Packet, port *Port) *pktJob {
	if n := len(sw.jobFree); n > 0 {
		j := sw.jobFree[n-1]
		sw.jobFree = sw.jobFree[:n-1]
		j.pkt, j.port = pkt, port
		return j
	}
	return &pktJob{sw: sw, pkt: pkt, port: port}
}

// jobN builds a pooled descriptor carrying only a byte count and packet UID
// — used for TX counter credits on cross-LP links, where the frame itself
// has already been staged to the remote LP.
func (sw *Switch) jobN(n int, uid uint64, port *Port) *pktJob {
	j := sw.job(nil, port)
	j.n, j.uid = n, uid
	return j
}

// putJob recycles a hop descriptor at the start of its callback.
func (sw *Switch) putJob(j *pktJob) {
	j.pkt, j.port, j.n, j.uid = nil, nil, 0, 0
	sw.jobFree = append(sw.jobFree, j)
}

// Scheduled-callback trampolines. Static funcs: passing them to AtCall
// allocates nothing.

// runInjectJob completes a CPU packet injection after the PCIe delay.
func runInjectJob(a any) {
	j := a.(*pktJob)
	sw, pkt := j.sw, j.pkt
	sw.putJob(j)
	pkt.Meta.IngressPs = int64(sw.sim.Now())
	pkt.Meta.InPort = CPUPortID
	sw.ingress(pkt)
}

// runIngressJob enters the ingress pipeline after the MAC ingress latency.
func runIngressJob(a any) {
	j := a.(*pktJob)
	sw, pkt := j.sw, j.pkt
	sw.putJob(j)
	sw.ingress(pkt)
}

// runEgressJob runs the egress pipeline after the traffic-manager delay.
func runEgressJob(a any) {
	j := a.(*pktJob)
	sw, pkt, port := j.sw, j.pkt, j.port
	sw.putJob(j)
	sw.runEgress(pkt, port)
}

// runTransmitJob starts wire serialization after the egress+MAC latency.
func runTransmitJob(a any) {
	j := a.(*pktJob)
	pkt, port := j.pkt, j.port
	j.sw.putJob(j)
	port.Transmit(pkt)
}

// runTxCountJob credits TX counters at serialization end for frames staged
// to a remote LP at Transmit time (see Port.Transmit's remote path). It is
// the cross-LP twin of txDone's wire_tx trace record: both are scheduled at
// Transmit time for the serialization-end instant, so the record lands in
// the same trace slot under either engine.
func runTxCountJob(a any) {
	j := a.(*pktJob)
	sw, port, n, uid := j.sw, j.port, j.n, j.uid
	sw.putJob(j)
	port.TxPackets++
	port.TxBytes += uint64(n)
	sw.trace.Emit(sw.sim.Now(), obs.KindWireTx, uid, "", int64(port.ID), int64(n))
}

// runTxDoneJob fires when the last bit of a frame leaves the port.
func runTxDoneJob(a any) {
	j := a.(*pktJob)
	pkt, port := j.pkt, j.port
	j.sw.putJob(j)
	port.txDone(pkt)
}

// digestRing is a growable circular queue of digest messages. The previous
// implementation popped with digestQueue = digestQueue[1:], which keeps the
// whole backing array reachable for as long as any message remains — a
// retention leak under sustained digest load. The ring reuses its slots
// instead (same discipline as stateless.FIFO's front/rear counters).
type digestRing struct {
	buf  [][]byte
	head int
	n    int
}

// Len reports queued messages.
func (r *digestRing) Len() int { return r.n }

// Push appends a message, growing the ring when full.
func (r *digestRing) Push(m []byte) {
	if r.n == len(r.buf) {
		grown := make([][]byte, max(2*len(r.buf), 64))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = m
	r.n++
}

// Pop removes and returns the oldest message, clearing its slot so the ring
// holds no reference to delivered data.
func (r *digestRing) Pop() []byte {
	if r.n == 0 {
		return nil
	}
	m := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return m
}
