package asic

import (
	"encoding/binary"

	"github.com/hypertester/hypertester/internal/netproto"
)

// In-place header writers used by the deparser. They overwrite header bytes
// in the original frame (lengths are invariant) and recompute checksums the
// way the egress deparser's checksum units do.

func writeEthernet(b []byte, e *netproto.Ethernet) {
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
}

func writeDot1Q(b []byte, v *netproto.Dot1Q) {
	tci := uint16(v.PCP&0x7)<<13 | v.VID&0x0fff
	if v.DEI {
		tci |= 0x1000
	}
	binary.BigEndian.PutUint16(b[0:2], tci)
	binary.BigEndian.PutUint16(b[2:4], v.EtherType)
}

func writeIPv4(b []byte, ip *netproto.IPv4) {
	// Preserve version/IHL and TotalLen already present on the wire;
	// the pipeline cannot resize packets.
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	b[8] = ip.TTL
	b[9] = ip.Protocol
	binary.BigEndian.PutUint32(b[12:16], uint32(ip.Src))
	binary.BigEndian.PutUint32(b[16:20], uint32(ip.Dst))
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint16(b[10:12], ipChecksum(b[:netproto.IPv4MinLen]))
}

func writeTCP(b []byte, t *netproto.TCP, ip *netproto.IPv4, segLen int) {
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[13] = t.Flags & 0x3f
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	if segLen < netproto.TCPMinLen || segLen > len(b) {
		segLen = len(b)
	}
	b[16], b[17] = 0, 0
	sum := pseudoSum(ip.Src, ip.Dst, netproto.IPProtoTCP, segLen)
	binary.BigEndian.PutUint16(b[16:18], foldSum(addBytes(sum, b[:segLen])))
}

func writeUDP(b []byte, u *netproto.UDP, ip *netproto.IPv4) {
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	segLen := int(binary.BigEndian.Uint16(b[4:6]))
	if segLen < netproto.UDPLen || segLen > len(b) {
		segLen = len(b)
	}
	b[6], b[7] = 0, 0
	sum := pseudoSum(ip.Src, ip.Dst, netproto.IPProtoUDP, segLen)
	cs := foldSum(addBytes(sum, b[:segLen]))
	if cs == 0 {
		cs = 0xffff
	}
	binary.BigEndian.PutUint16(b[6:8], cs)
}

func writeICMP(b []byte, ic *netproto.ICMP, msgLen int) {
	b[0] = ic.Type
	b[1] = ic.Code
	binary.BigEndian.PutUint16(b[4:6], ic.Ident)
	binary.BigEndian.PutUint16(b[6:8], ic.Seq)
	if msgLen < netproto.ICMPLen || msgLen > len(b) {
		msgLen = len(b)
	}
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[2:4], foldSum(addBytes(0, b[:msgLen])))
}

func addBytes(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

func foldSum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

func ipChecksum(hdr []byte) uint16 { return foldSum(addBytes(0, hdr)) }

func pseudoSum(src, dst netproto.IPv4Addr, proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(src) >> 16
	sum += uint32(src) & 0xffff
	sum += uint32(dst) >> 16
	sum += uint32(dst) & 0xffff
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}
