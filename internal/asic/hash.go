package asic

// Hash units. Tofino pipelines compute hashes with CRC engines whose
// polynomial is selectable per unit; HyperTester's cuckoo arrays and flow
// digests need several independent functions over the same key bytes. We
// implement reflected CRC-32 with a configurable polynomial, truncated to
// the requested width — the same family the hardware offers.

// HashUnit is one configured CRC engine.
type HashUnit struct {
	name  string
	table [256]uint32
}

// Standard polynomials (reflected form) available to pipelines.
const (
	PolyCRC32   = 0xEDB88320 // CRC-32 (Ethernet)
	PolyCRC32C  = 0x82F63B78 // CRC-32C (Castagnoli)
	PolyKoopman = 0xEB31D82E // CRC-32K
	PolyQ       = 0xD5828281 // CRC-32Q (reflected)
)

// NewHashUnit builds a CRC engine for the given reflected polynomial.
func NewHashUnit(name string, poly uint32) *HashUnit {
	h := &HashUnit{name: name}
	for i := range h.table {
		crc := uint32(i)
		for j := 0; j < 8; j++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
		h.table[i] = crc
	}
	return h
}

// Sum computes the CRC of data.
func (h *HashUnit) Sum(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = h.table[byte(crc)^b] ^ crc>>8
	}
	return ^crc
}

// Index hashes data into [0, buckets).
func (h *HashUnit) Index(data []byte, buckets int) int {
	return int(h.Sum(data) % uint32(buckets))
}

// Digest hashes data down to width bits (1..32), the partial-key digest the
// counter-based algorithm stores instead of full keys (§5.2).
func (h *HashUnit) Digest(data []byte, width int) uint32 {
	if width >= 32 {
		return h.Sum(data)
	}
	return h.Sum(data) & (1<<uint(width) - 1)
}
