package asic

// Processor is one step of a match-action pipeline: a table apply, a gateway
// condition, or a register operation. Processors run in order, mirroring the
// sequential physical stages of RMT.
type Processor interface {
	Process(p *PHV)
}

// ProcessorFunc adapts a function to the Processor interface.
type ProcessorFunc func(p *PHV)

// Process implements Processor.
func (f ProcessorFunc) Process(p *PHV) { f(p) }

// Process implements Processor for tables (apply and discard the hit flag).
func (t *Table) Process(p *PHV) { t.Apply(p) }

// Gateway is a conditional: when Cond holds, Then processors run, otherwise
// Else processors run. It models the gateway resources RMT stages provide
// for control flow.
type Gateway struct {
	Name string
	Cond func(p *PHV) bool
	Then []Processor
	Else []Processor
}

// Process implements Processor.
func (g *Gateway) Process(p *PHV) {
	branch := g.Else
	if g.Cond(p) {
		branch = g.Then
	}
	for _, pr := range branch {
		pr.Process(p)
	}
}

// Pipeline is an ordered list of processors (an ingress or egress pipeline).
type Pipeline struct {
	Name  string
	procs []Processor

	// Packets counts PHVs processed, for tests and statistics.
	Packets uint64
}

// NewPipeline returns an empty pipeline.
func NewPipeline(name string) *Pipeline { return &Pipeline{Name: name} }

// Add appends processors to the pipeline.
func (pl *Pipeline) Add(ps ...Processor) { pl.procs = append(pl.procs, ps...) }

// Len reports the number of processors installed.
func (pl *Pipeline) Len() int { return len(pl.procs) }

// Clear removes all processors (used when reprogramming the switch).
func (pl *Pipeline) Clear() { pl.procs = nil }

// Run processes one PHV through every stage. A Drop set mid-pipeline stops
// further stages, as the deflect-on-drop path would.
func (pl *Pipeline) Run(p *PHV) {
	pl.Packets++
	for _, pr := range pl.procs {
		pr.Process(p)
		if p.Drop {
			return
		}
	}
}
