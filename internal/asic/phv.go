package asic

import (
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
)

// PHV is the packet header vector: the parsed representation of a packet
// plus intrinsic metadata, carried through the match-action pipelines.
// The pipeline may read and write header fields and metadata but — like the
// hardware it models — never the payload bytes.
type PHV struct {
	// Pkt is the underlying wire packet. Its Data is only rewritten by
	// the deparser after the egress pipeline.
	Pkt *netproto.Packet

	// Stack holds the parsed headers.
	Stack netproto.Stack

	// FrameLen is the frame length in bytes; the pipeline cannot change
	// it (§5.3 motivates the trigger FIFO with exactly this restriction).
	FrameLen int

	// Meta mirrors the packet's simulation metadata at parse time.
	Meta netproto.Meta

	// Intrinsic egress controls set by the pipeline.
	EgressPort  int  // unicast destination; -1 means unset
	McastGroup  int  // multicast group ID; 0 means none
	Drop        bool // discard at end of pipeline
	Recirculate bool // send back through the recirculation path

	// DigestData, when non-nil, is emitted to the switch CPU through the
	// digest engine at end of ingress (generate_digest).
	DigestData []byte

	// DigestFree, when non-nil, is the consumption callback for DigestData:
	// the switch invokes it exactly once with the attached buffer, either
	// after the digest engine has copied it onto the channel or when the
	// PHV is released with the attachment unconsumed. Producers that pool
	// their digest buffers set it alongside DigestData and recycle in the
	// callback — never by inferring consumption from later pipeline passes.
	DigestFree func([]byte)

	// Dirty records that a header field changed so the deparser knows to
	// re-serialize headers and fix checksums.
	Dirty bool

	// Scratch is pipeline scratch metadata (temporary PHV containers),
	// reset for every packet.
	Scratch [8]uint64

	// Trace, when non-nil, receives per-stage lifecycle records (table
	// hits, deparse) emitted during this pipeline pass; TraceAt is the
	// pass's virtual instant. Set by the switch after acquiring the PHV —
	// every stage of one pass runs at a single instant, so emitters use
	// TraceAt instead of re-reading the clock.
	Trace   *obs.Trace
	TraceAt netsim.Time
}

// NewPHV parses pkt into a fresh PHV. Parse errors leave the successfully
// decoded outer layers available, as the hardware parser would.
func NewPHV(pkt *netproto.Packet) *PHV {
	p := &PHV{}
	p.init(pkt)
	return p
}

// init (re)parses pkt into p, resetting every pipeline-visible field. It is
// the reuse path behind the switch's PHV pool: Stack.Decode overwrites the
// previous packet's layers and resets the decoded-layer list in place, so a
// recycled PHV behaves exactly like a fresh one without reallocating.
func (p *PHV) init(pkt *netproto.Packet) {
	p.Pkt = pkt
	p.FrameLen = pkt.Len()
	p.Meta = pkt.Meta
	p.EgressPort = -1
	p.McastGroup = 0
	p.Drop = false
	p.Recirculate = false
	p.DigestData = nil
	p.DigestFree = nil
	p.Dirty = false
	p.Scratch = [8]uint64{}
	p.Trace = nil
	p.TraceAt = 0
	// The parser stops at unknown layers without failing the packet.
	_ = p.Stack.Decode(pkt.Data)
}

// Has reports whether the parser extracted the given layer.
func (p *PHV) Has(t netproto.LayerType) bool { return p.Stack.Has(t) }

// Deparse re-serializes modified headers in place over the packet data and
// recomputes checksums. Frame length never changes: the pipeline cannot add
// or remove bytes.
func (p *PHV) Deparse() {
	if !p.Dirty {
		return
	}
	p.Trace.Emit(p.TraceAt, obs.KindDeparse, p.Meta.UID, "", 0, int64(p.FrameLen))
	data := p.Pkt.Data
	off := 0
	if p.Has(netproto.LayerEthernet) {
		writeEthernet(data[off:], &p.Stack.Eth)
		off += netproto.EthernetLen
	}
	if p.Has(netproto.LayerVLAN) {
		writeDot1Q(data[off:], &p.Stack.VLAN)
		off += netproto.Dot1QLen
	}
	if p.Has(netproto.LayerIPv4) {
		writeIPv4(data[off:], &p.Stack.IP4)
		l4off := off + netproto.IPv4MinLen
		switch {
		case p.Has(netproto.LayerTCP):
			writeTCP(data[l4off:], &p.Stack.TCP, &p.Stack.IP4, int(p.Stack.IP4.TotalLen)-netproto.IPv4MinLen)
		case p.Has(netproto.LayerUDP):
			writeUDP(data[l4off:], &p.Stack.UDP, &p.Stack.IP4)
		case p.Has(netproto.LayerICMP):
			writeICMP(data[l4off:], &p.Stack.ICMP, int(p.Stack.IP4.TotalLen)-netproto.IPv4MinLen)
		}
	}
	p.Dirty = false
}
