package asic

import (
	"runtime/debug"
	"testing"

	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
	"github.com/hypertester/hypertester/internal/raceflag"
)

// obsTestPipeline builds a 2-port switch whose ingress pass crosses every
// per-packet trace callsite that a production pipeline has: a match-table
// lookup, a SALU register access, and forwarding to port 1 (TM, egress,
// deparse, wire). The returned register is pre-bound to nothing; callers
// attach traces as needed.
func obsTestPipeline(t *testing.T) (*netsim.Sim, *Switch, *Table, *RegisterArray) {
	t.Helper()
	sim, sw := benchTestSwitch(t, 2)
	tbl := NewTable("obs_tbl", MatchExact, FieldUDPDstPort)
	if err := tbl.AddExact([]uint64{2}, nil); err != nil {
		t.Fatal(err)
	}
	reg := NewRegisterArray("obs_reg", 4)
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) {
		tbl.Apply(p)
		reg.RMW(0, func(old uint64) (uint64, uint64) { return old + 1, 0 })
		p.EgressPort = 1
	}))
	sw.Port(1).SetPeer(func(pkt *netproto.Packet, at netsim.Time) { pkt.Release() })
	return sim, sw, tbl, reg
}

// TestDisabledTracingZeroAllocs is the disabled-path cost contract of the
// observability layer, measured end to end: a full ingress→table→SALU→TM→
// egress→wire traversal with tracing disabled (nil trace everywhere — the
// default) must not allocate. Together with the pipeline/replication tests
// in bench_test.go this pins that adding the trace callsites costs untraced
// runs nothing but a few predictable branches.
func TestDisabledTracingZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; the contract holds in non-race builds")
	}
	sim, sw, _, _ := obsTestPipeline(t)
	sw.SetTrace(nil) // explicit: the path under test is the disabled one
	base := testFrame(t, 64)
	run := func() {
		sw.Port(0).Receive(base.Clone())
		sim.Run()
	}
	for i := 0; i < 32; i++ { // warm the pools
		run()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Fatalf("disabled-tracing traversal allocates %v allocs/op, want 0", avg)
	}
}

// TestTracedLifecycleRecords runs one frame through the same pipeline with
// tracing enabled and checks the record stream tells the full story in
// order: parse, table hit, SALU access, TM enqueue/dequeue, wire TX — all on
// the switch's stream, with the frame's UID and interned labels.
func TestTracedLifecycleRecords(t *testing.T) {
	sim, sw, _, reg := obsTestPipeline(t)
	ts := obs.NewTraceSet()
	tr := ts.New("sw")
	sw.SetTrace(tr)
	reg.Observe(sim, tr)

	pkt := testFrame(t, 64)
	pkt.Meta.UID = 77
	sw.Port(0).Receive(pkt)
	sim.Run()

	want := []obs.Kind{
		obs.KindParse, obs.KindTableHit, obs.KindSALU,
		obs.KindTMEnqueue, obs.KindTMDequeue, obs.KindWireTx,
	}
	recs := tr.Records()
	i := 0
	for _, r := range recs {
		if i < len(want) && r.Kind == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("lifecycle records out of order or missing: matched %d of %v in %v", i, want, recs)
	}
	for _, r := range recs {
		switch r.Kind {
		case obs.KindTableHit:
			if r.Label != "obs_tbl" {
				t.Errorf("table record label = %q, want obs_tbl", r.Label)
			}
		case obs.KindSALU:
			if r.Label != "obs_reg" {
				t.Errorf("salu record label = %q, want obs_reg", r.Label)
			}
		case obs.KindParse:
			if r.UID != 77 {
				t.Errorf("parse record uid = %d, want 77", r.UID)
			}
		}
	}
	var last netsim.Time
	for _, r := range recs {
		if r.At < last {
			t.Fatalf("records not time-ordered within the stream: %v", recs)
		}
		last = r.At
	}
}
