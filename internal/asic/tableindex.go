package asic

import "sort"

// TableImpl tags the active match-table lookup implementation, recorded into
// BENCH_results.json so the bench trajectory is attributable across PRs.
const TableImpl = "indexed/v1"

// Indexed lookup structures
//
// The Tofino resolves every match kind in constant time per packet; the
// original reproduction paid a priority-ordered linear scan per Apply for
// ternary and range tables, plus a full re-sort on every insert. The entries
// slices stay the source of truth, kept in (priority desc, insertion order)
// — but sorted lazily, once per batch of control-plane updates, and fronted
// by lookup indexes rebuilt at the same time:
//
//   - ternary: entries are bucketed by their match value masked to the bits
//     every entry examines (the AND of all masks). A lookup key can only
//     match entries in the bucket keyed by its own masked value, so the scan
//     shrinks to one bucket, kept in global priority order. If the table
//     holds a catch-all (zero common mask) this degrades to the old full
//     scan, never worse.
//   - range: entry bounds split the key space into elementary intervals; a
//     priority sweep precomputes the winning entry for each, and Apply
//     binary-searches the interval containing the key.
//
// The linear scans survive below (lookupTernaryLinear, lookupRangeLinear) as
// unexported reference oracles for the differential tests.

type ternaryIndex struct {
	// commonMask is the AND of every entry's mask, per key word.
	commonMask [4]uint64
	// buckets maps a masked match value to the entries carrying it, as
	// indices into the sorted entries slice, ascending (= priority order).
	buckets map[[4]uint64][]int32
}

type rangeIndex struct {
	// points are the elementary-interval boundaries: every lo and hi+1,
	// sorted and deduplicated. Interval i spans [points[i], points[i+1]).
	points []uint64
	// winner[i] is the entries index that wins interval i, or -1.
	winner []int32
}

// ensureIndex sorts the entries and rebuilds the lookup index after
// control-plane changes. One stable sort over a batch of appends yields the
// same order as the old sort-per-insert: ties on priority keep insertion
// order either way.
func (t *Table) ensureIndex() {
	if !t.dirty {
		return
	}
	t.dirty = false
	switch t.Kind {
	case MatchTernary:
		sort.SliceStable(t.ternary, func(i, j int) bool { return t.ternary[i].priority > t.ternary[j].priority })
		t.rebuildTernaryIndex()
	case MatchRange:
		sort.SliceStable(t.ranges, func(i, j int) bool { return t.ranges[i].priority > t.ranges[j].priority })
		t.rebuildRangeIndex()
	}
}

func (t *Table) rebuildTernaryIndex() {
	idx := &t.tern
	idx.commonMask = [4]uint64{}
	if len(t.ternary) == 0 {
		idx.buckets = nil
		return
	}
	for w := range idx.commonMask {
		idx.commonMask[w] = ^uint64(0)
	}
	for i := range t.ternary {
		for w, m := range t.ternary[i].mask {
			idx.commonMask[w] &= m
		}
	}
	idx.buckets = make(map[[4]uint64][]int32, len(t.ternary))
	var bk [4]uint64
	for i := range t.ternary {
		e := &t.ternary[i]
		bk = [4]uint64{}
		for w, v := range e.value {
			bk[w] = v & e.mask[w] & idx.commonMask[w]
		}
		idx.buckets[bk] = append(idx.buckets[bk], int32(i))
	}
}

// lookupTernary returns the index of the highest-priority matching entry.
func (t *Table) lookupTernary(keys []uint64) (int, bool) {
	if t.tern.buckets == nil {
		return 0, false
	}
	var bk [4]uint64
	for w, k := range keys {
		bk[w] = k & t.tern.commonMask[w]
	}
	for _, i := range t.tern.buckets[bk] {
		e := &t.ternary[i]
		match := true
		for j := range keys {
			if keys[j]&e.mask[j] != e.value[j]&e.mask[j] {
				match = false
				break
			}
		}
		if match {
			return int(i), true
		}
	}
	return 0, false
}

// lookupTernaryLinear is the pre-index scan, kept as the reference oracle
// for differential tests. The entries slice must already be sorted.
func (t *Table) lookupTernaryLinear(keys []uint64) (int, bool) {
	for i := range t.ternary {
		e := &t.ternary[i]
		match := true
		for j := range keys {
			if keys[j]&e.mask[j] != e.value[j]&e.mask[j] {
				match = false
				break
			}
		}
		if match {
			return i, true
		}
	}
	return 0, false
}

func (t *Table) rebuildRangeIndex() {
	idx := &t.rng
	idx.points = idx.points[:0]
	idx.winner = idx.winner[:0]
	n := len(t.ranges)
	if n == 0 {
		return
	}
	for i := range t.ranges {
		idx.points = append(idx.points, t.ranges[i].lo)
		if hi := t.ranges[i].hi; hi != ^uint64(0) {
			idx.points = append(idx.points, hi+1)
		}
	}
	sort.Slice(idx.points, func(i, j int) bool { return idx.points[i] < idx.points[j] })
	uniq := idx.points[:1]
	for _, p := range idx.points[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	idx.points = uniq

	// Sweep the boundaries in order, keeping a lazy-deletion min-heap of the
	// active entries by slice index — entries are priority-sorted, so the
	// smallest active index is the winner of the current interval.
	starts := make([]int32, n)
	for i := range starts {
		starts[i] = int32(i)
	}
	sort.Slice(starts, func(i, j int) bool { return t.ranges[starts[i]].lo < t.ranges[starts[j]].lo })
	var heap []int32
	push := func(v int32) {
		heap = append(heap, v)
		for c := len(heap) - 1; c > 0; {
			p := (c - 1) / 2
			if heap[p] <= heap[c] {
				break
			}
			heap[p], heap[c] = heap[c], heap[p]
			c = p
		}
	}
	pop := func() {
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for p := 0; ; {
			c := 2*p + 1
			if c >= last {
				break
			}
			if r := c + 1; r < last && heap[r] < heap[c] {
				c = r
			}
			if heap[p] <= heap[c] {
				break
			}
			heap[p], heap[c] = heap[c], heap[p]
			p = c
		}
	}
	next := 0
	for _, p := range idx.points {
		for next < n && t.ranges[starts[next]].lo == p {
			push(starts[next])
			next++
		}
		// Expired entries surface lazily: only the top needs checking.
		for len(heap) > 0 && t.ranges[heap[0]].hi < p {
			pop()
		}
		if len(heap) > 0 {
			idx.winner = append(idx.winner, heap[0])
		} else {
			idx.winner = append(idx.winner, -1)
		}
	}
}

// lookupRange returns the index of the highest-priority entry covering key.
func (t *Table) lookupRange(key uint64) (int, bool) {
	points := t.rng.points
	// Binary search for the elementary interval containing key: the last
	// point <= key. Hand-rolled to keep Apply free of closures.
	lo, hi := 0, len(points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if points[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo - 1
	if i < 0 || i >= len(t.rng.winner) {
		return 0, false
	}
	if w := t.rng.winner[i]; w >= 0 {
		return int(w), true
	}
	return 0, false
}

// lookupRangeLinear is the pre-index scan, kept as the reference oracle for
// differential tests. The entries slice must already be sorted.
func (t *Table) lookupRangeLinear(key uint64) (int, bool) {
	for i := range t.ranges {
		e := &t.ranges[i]
		if key >= e.lo && key <= e.hi {
			return i, true
		}
	}
	return 0, false
}
