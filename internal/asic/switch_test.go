package asic

import (
	"math"
	"testing"

	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

func newTestSwitch(t *testing.T, ports int) (*netsim.Sim, *Switch) {
	t.Helper()
	sim := netsim.New()
	gbps := make([]float64, ports)
	for i := range gbps {
		gbps[i] = 100
	}
	sw := New(Config{Name: "sw", Sim: sim, PortGbps: gbps, Seed: 1})
	return sim, sw
}

func frame(t *testing.T, size int) *netproto.Packet {
	t.Helper()
	raw, err := netproto.BuildUDP(netproto.UDPSpec{
		SrcIP: netproto.MustIPv4("10.0.0.1"), DstIP: netproto.MustIPv4("10.0.0.2"),
		SrcPort: 1, DstPort: 2, FrameLen: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &netproto.Packet{Data: raw}
}

func TestUnicastForwarding(t *testing.T) {
	sim, sw := newTestSwitch(t, 2)
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { p.EgressPort = 1 }))

	var gotAt netsim.Time
	var got *netproto.Packet
	sw.Port(1).SetPeer(func(pkt *netproto.Packet, at netsim.Time) { got, gotAt = pkt, at })

	sw.Port(0).Receive(frame(t, 64))
	sim.Run()

	if got == nil {
		t.Fatal("packet not forwarded")
	}
	// Latency = ingress + TM + egress + MACtx + serialization(64B@100G).
	wantNs := float64(IngressLatencyNs+TMLatencyNs+EgressLatencyNs+MACTxLatencyNs) + netproto.WireTimeNs(64, 100)
	if math.Abs(gotAt.Nanoseconds()-wantNs) > 0.5 {
		t.Fatalf("forwarding latency = %.1fns, want %.1f", gotAt.Nanoseconds(), wantNs)
	}
	if sw.Port(1).TxPackets != 1 || sw.Port(0).RxPackets != 1 {
		t.Fatal("port counters wrong")
	}
}

func TestNoRouteDropped(t *testing.T) {
	sim, sw := newTestSwitch(t, 1)
	sw.Port(0).Receive(frame(t, 64))
	sim.Run()
	if sw.NoRouteDrops != 1 {
		t.Fatalf("NoRouteDrops = %d", sw.NoRouteDrops)
	}
}

func TestPipelineDropCounted(t *testing.T) {
	sim, sw := newTestSwitch(t, 1)
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { p.Drop = true }))
	sw.Port(0).Receive(frame(t, 64))
	sim.Run()
	if sw.PipelineDrops != 1 {
		t.Fatalf("PipelineDrops = %d", sw.PipelineDrops)
	}
}

func TestRecirculationRTTCalibration(t *testing.T) {
	// A packet that recirculates forever: measure loop RTT against the
	// paper's 570 ns (64 B) with RMSE < 5 ns (Fig. 14a).
	for _, size := range []int{64, 512, 1500} {
		sim, sw := newTestSwitch(t, 1)
		var arrivals []netsim.Time
		sw.Ingress.Add(ProcessorFunc(func(p *PHV) {
			if p.Meta.InPort >= RecircPortBase || p.Meta.InPort == 0 {
				arrivals = append(arrivals, netsim.Time(p.Meta.IngressPs))
			}
			p.Recirculate = true
		}))
		sw.Port(0).Receive(frame(t, size))
		sim.RunUntil(netsim.Time(200 * netsim.Microsecond))

		if len(arrivals) < 100 {
			t.Fatalf("size %d: only %d loops", size, len(arrivals))
		}
		var rtts []float64
		for i := 2; i < len(arrivals); i++ { // skip the front-panel hop
			rtts = append(rtts, arrivals[i].Sub(arrivals[i-1]).Nanoseconds())
		}
		mean, rmse := meanAndRMSE(rtts)
		want := LoopRTTNs(size)
		if math.Abs(mean-want) > 2 {
			t.Errorf("size %d: mean RTT %.1fns, want %.1f", size, mean, want)
		}
		if rmse > 5 {
			t.Errorf("size %d: RTT RMSE %.2fns, want <5 (paper Fig. 14a)", size, rmse)
		}
		if size == 64 && math.Abs(want-570) > 0.5 {
			t.Errorf("calibration drifted: LoopRTTNs(64) = %.2f, want 570", want)
		}
	}
}

func meanAndRMSE(xs []float64) (mean, rmse float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

func TestAcceleratorCapacityCalibration(t *testing.T) {
	// Paper §7.3: 89 64-byte template packets per recirculation path.
	if got := AcceleratorCapacity(64); got != 89 {
		t.Fatalf("AcceleratorCapacity(64) = %d, want 89", got)
	}
	// Larger packets: fewer fit (RTT grows slower than serialization).
	if got := AcceleratorCapacity(1500); got >= 89 || got < 1 {
		t.Fatalf("AcceleratorCapacity(1500) = %d, want in [1,89)", got)
	}
}

func TestMulticastReplication(t *testing.T) {
	sim, sw := newTestSwitch(t, 4)
	if err := sw.Mcast.SetGroup(1, []CopySpec{{Port: 1, Rid: 10}, {Port: 2, Rid: 20}, {Port: 3, Rid: 30}}); err != nil {
		t.Fatal(err)
	}
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { p.McastGroup = 1 }))

	got := map[int]*netproto.Packet{}
	var sendAt netsim.Time
	var arriveAt []netsim.Time
	// Replication metadata is visible inside the switch (egress pipeline)
	// but stripped before the frame leaves on the wire.
	ridsSeen := map[int]int{}
	sw.Egress.Add(ProcessorFunc(func(p *PHV) { ridsSeen[p.EgressPort] = p.Meta.ReplicaID }))
	for _, pid := range []int{1, 2, 3} {
		pid := pid
		sw.Port(pid).SetPeer(func(pkt *netproto.Packet, at netsim.Time) {
			got[pid] = pkt
			arriveAt = append(arriveAt, at)
		})
	}
	sendAt = sim.Now()
	sw.Port(0).Receive(frame(t, 64))
	sim.Run()

	if len(got) != 3 {
		t.Fatalf("replicated to %d ports, want 3", len(got))
	}
	rids := map[int]int{1: 10, 2: 20, 3: 30}
	uids := map[uint64]bool{}
	for pid, pkt := range got {
		if ridsSeen[pid] != rids[pid] {
			t.Errorf("port %d rid = %d in egress pipeline, want %d", pid, ridsSeen[pid], rids[pid])
		}
		if pkt.Meta.ReplicaID != 0 || pkt.Meta.Replica {
			t.Errorf("port %d: replication metadata leaked onto the wire", pid)
		}
		if uids[pkt.Meta.UID] {
			t.Error("replicas share a UID")
		}
		uids[pkt.Meta.UID] = true
	}
	// Replication adds the mcast-engine delay (~389 ns for 64 B).
	minDelay := arriveAt[0].Sub(sendAt).Nanoseconds()
	unicastNs := float64(IngressLatencyNs+TMLatencyNs+EgressLatencyNs+MACTxLatencyNs) + netproto.WireTimeNs(64, 100)
	extra := minDelay - unicastNs
	if extra < McastDelayNs(64)-McastJitterSpreadNs-1 || extra > McastDelayNs(64)+McastJitterSpreadNs+1 {
		t.Fatalf("mcast extra delay = %.1fns, want ~%.1f", extra, McastDelayNs(64))
	}
}

func TestMulticastUnknownGroupDrops(t *testing.T) {
	sim, sw := newTestSwitch(t, 1)
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { p.McastGroup = 99 }))
	sw.Port(0).Receive(frame(t, 64))
	sim.Run()
	if sw.NoRouteDrops != 1 {
		t.Fatalf("NoRouteDrops = %d", sw.NoRouteDrops)
	}
}

func TestMcastGroupValidation(t *testing.T) {
	m := NewMcastEngine()
	if err := m.SetGroup(0, []CopySpec{{Port: 1}}); err == nil {
		t.Fatal("gid 0 accepted")
	}
	if err := m.SetGroup(1, nil); err == nil {
		t.Fatal("empty copy list accepted")
	}
	if err := m.SetGroup(1, []CopySpec{{Port: 1}}); err != nil {
		t.Fatal(err)
	}
	if m.Groups() != 1 {
		t.Fatal("group count")
	}
	m.DeleteGroup(1)
	if m.Copies(1) != nil {
		t.Fatal("deleted group still resolves")
	}
}

func TestPortSerializationSpacing(t *testing.T) {
	// Two back-to-back frames on a 100G port must be spaced by the wire
	// time of the first frame.
	sim, sw := newTestSwitch(t, 2)
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { p.EgressPort = 1 }))
	var times []netsim.Time
	sw.Port(1).SetPeer(func(pkt *netproto.Packet, at netsim.Time) { times = append(times, at) })

	sw.Port(0).Receive(frame(t, 1500))
	sw.Port(0).Receive(frame(t, 1500))
	sim.Run()

	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := times[1].Sub(times[0]).Nanoseconds()
	want := netproto.WireTimeNs(1500, 100)
	if math.Abs(gap-want) > 0.5 {
		t.Fatalf("gap = %.2fns, want %.2f", gap, want)
	}
}

func TestPortBacklogDrop(t *testing.T) {
	sim, sw := newTestSwitch(t, 2)
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { p.EgressPort = 1 }))
	sw.Port(1).MaxBacklog = 1 * netsim.Microsecond
	// 1500B @100G is ~121ns each; 100 frames = 12.1us backlog >> 1us cap.
	for i := 0; i < 100; i++ {
		sw.Port(0).Receive(frame(t, 1500))
	}
	sim.Run()
	if sw.Port(1).TxDrops == 0 {
		t.Fatal("no tail drops despite backlog cap")
	}
	if sw.Port(1).TxPackets+sw.Port(1).TxDrops != 100 {
		t.Fatalf("tx+drops = %d, want 100", sw.Port(1).TxPackets+sw.Port(1).TxDrops)
	}
}

func TestLoopbackPortRecirculates(t *testing.T) {
	sim, sw := newTestSwitch(t, 2)
	seen := 0
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) {
		seen++
		if seen < 5 {
			p.EgressPort = 1 // loopback port
		} else {
			p.Drop = true
		}
	}))
	if err := sw.SetLoopback(1, true); err != nil {
		t.Fatal(err)
	}
	sw.Port(0).Receive(frame(t, 64))
	sim.Run()
	if seen != 5 {
		t.Fatalf("ingress saw packet %d times, want 5", seen)
	}
}

func TestSetLoopbackValidation(t *testing.T) {
	_, sw := newTestSwitch(t, 1)
	if err := sw.SetLoopback(9, true); err == nil {
		t.Fatal("bad port accepted")
	}
	if err := sw.SetLoopback(RecircPortBase, true); err == nil {
		t.Fatal("recirc port accepted")
	}
}

func TestInjectFromCPU(t *testing.T) {
	sim, sw := newTestSwitch(t, 1)
	var inPort int
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { inPort = p.Meta.InPort; p.Drop = true }))
	sw.InjectFromCPU(frame(t, 64))
	sim.Run()
	if inPort != CPUPortID {
		t.Fatalf("in port = %d, want CPU port", inPort)
	}
}

func TestDigestChannelRateBound(t *testing.T) {
	sim, sw := newTestSwitch(t, 1)
	var delivered []netsim.Time
	sw.DigestOut = func(data []byte, at netsim.Time) { delivered = append(delivered, at) }
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) {
		p.DigestData = []byte("0123456789abcdef")
		p.Drop = true
	}))
	for i := 0; i < 10; i++ {
		sw.Port(0).Receive(frame(t, 64))
	}
	sim.Run()
	if len(delivered) != 10 {
		t.Fatalf("delivered %d digests", len(delivered))
	}
	// Deliveries must be spaced by the digest service time (channel is
	// message-rate bound).
	for i := 1; i < len(delivered); i++ {
		gap := delivered[i].Sub(delivered[i-1])
		if gap < 450*netsim.Microsecond {
			t.Fatalf("digest gap %v too small", gap)
		}
	}
	if sw.DigestsSent != 10 {
		t.Fatalf("DigestsSent = %d", sw.DigestsSent)
	}
}

// TestDigestFreeCallback pins the digest-attachment consumption contract:
// the producer's DigestFree callback fires exactly once per attachment,
// after the digest engine has copied the buffer onto the channel — the point
// the buffer is provably free for reuse.
func TestDigestFreeCallback(t *testing.T) {
	sim, sw := newTestSwitch(t, 1)
	buf := []byte("pooled-digest-buffer")
	var freed [][]byte
	sw.DigestOut = func(data []byte, at netsim.Time) {}
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) {
		p.DigestData = buf
		p.DigestFree = func(b []byte) { freed = append(freed, b) }
		p.Drop = true
	}))
	sw.Port(0).Receive(frame(t, 64))
	sim.Run()
	if len(freed) != 1 {
		t.Fatalf("DigestFree fired %d times, want exactly once", len(freed))
	}
	if &freed[0][0] != &buf[0] {
		t.Fatal("DigestFree handed back a different buffer than was attached")
	}
}

// TestDigestFreeOnUnconsumedRelease pins the safety net: a PHV released with
// its digest attachment unconsumed returns the buffer to its producer.
func TestDigestFreeOnUnconsumedRelease(t *testing.T) {
	_, sw := newTestSwitch(t, 1)
	freed := 0
	p := sw.acquirePHV(frame(t, 64))
	p.DigestData = []byte("x")
	p.DigestFree = func([]byte) { freed++ }
	sw.releasePHV(p)
	if freed != 1 {
		t.Fatalf("releasePHV invoked DigestFree %d times, want 1", freed)
	}
}

func TestEgressPipelineRunsAndEdits(t *testing.T) {
	sim, sw := newTestSwitch(t, 2)
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { p.EgressPort = 1 }))
	sw.Egress.Add(ProcessorFunc(func(p *PHV) { FieldUDPDstPort.Set(p, 9999) }))
	var got *netproto.Packet
	sw.Port(1).SetPeer(func(pkt *netproto.Packet, at netsim.Time) { got = pkt })
	sw.Port(0).Receive(frame(t, 64))
	sim.Run()
	var s netproto.Stack
	if err := s.Decode(got.Data); err != nil {
		t.Fatal(err)
	}
	if s.UDP.DstPort != 9999 {
		t.Fatalf("egress edit lost: dport = %d", s.UDP.DstPort)
	}
}

func TestUtilization(t *testing.T) {
	sim, sw := newTestSwitch(t, 2)
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { p.EgressPort = 1 }))
	sw.Port(1).SetPeer(func(pkt *netproto.Packet, at netsim.Time) {})
	// Saturate: send 64B frames back-to-back for 10us at 100G = 1562 frames.
	n := 1500
	for i := 0; i < n; i++ {
		sw.Port(0).Receive(frame(t, 64))
	}
	sim.Run()
	u := sw.Port(1).Utilization(10 * netsim.Microsecond)
	if u < 0.90 || u > 1.01 {
		t.Fatalf("utilization = %.3f, want ~0.96", u)
	}
}
