package asic

import (
	"testing"
	"testing/quick"

	"github.com/hypertester/hypertester/internal/netproto"
)

func udpPHV(t *testing.T, sport, dport uint16) *PHV {
	t.Helper()
	raw, err := netproto.BuildUDP(netproto.UDPSpec{
		SrcIP: netproto.MustIPv4("10.0.0.1"), DstIP: netproto.MustIPv4("10.0.0.2"),
		SrcPort: sport, DstPort: dport, FrameLen: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewPHV(&netproto.Packet{Data: raw})
}

func tcpPHV(t *testing.T, sport, dport uint16, flags uint8) *PHV {
	t.Helper()
	raw, err := netproto.BuildTCP(netproto.TCPSpec{
		SrcIP: netproto.MustIPv4("1.1.0.1"), DstIP: netproto.MustIPv4("9.9.9.9"),
		SrcPort: sport, DstPort: dport, Flags: flags, FrameLen: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewPHV(&netproto.Packet{Data: raw})
}

func TestExactTable(t *testing.T) {
	tbl := NewTable("fwd", MatchExact, FieldUDPDstPort)
	var hitPort uint64
	if err := tbl.AddExact([]uint64{53}, func(p *PHV) { hitPort = 53; p.EgressPort = 7 }); err != nil {
		t.Fatal(err)
	}
	tbl.Default = func(p *PHV) { p.Drop = true }

	p := udpPHV(t, 1000, 53)
	if !tbl.Apply(p) {
		t.Fatal("expected hit")
	}
	if hitPort != 53 || p.EgressPort != 7 {
		t.Fatalf("action did not run: port=%d egress=%d", hitPort, p.EgressPort)
	}

	p2 := udpPHV(t, 1000, 80)
	if tbl.Apply(p2) {
		t.Fatal("expected miss")
	}
	if !p2.Drop {
		t.Fatal("default action did not run")
	}
	if tbl.Hits != 1 || tbl.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", tbl.Hits, tbl.Misses)
	}
}

func TestExactTableMultiKey(t *testing.T) {
	tbl := NewTable("pair", MatchExact, FieldUDPSrcPort, FieldUDPDstPort)
	matched := false
	if err := tbl.AddExact([]uint64{1000, 53}, func(p *PHV) { matched = true }); err != nil {
		t.Fatal(err)
	}
	tbl.Apply(udpPHV(t, 1000, 53))
	if !matched {
		t.Fatal("multi-key exact entry missed")
	}
	matched = false
	tbl.Apply(udpPHV(t, 53, 1000)) // swapped must not match
	if matched {
		t.Fatal("swapped key matched")
	}
}

func TestExactTableKeyArityChecked(t *testing.T) {
	tbl := NewTable("pair", MatchExact, FieldUDPSrcPort, FieldUDPDstPort)
	if err := tbl.AddExact([]uint64{1}, nil); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestTableCapacity(t *testing.T) {
	tbl := NewTable("small", MatchExact, FieldUDPDstPort)
	tbl.MaxEntries = 2
	if err := tbl.AddExact([]uint64{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddExact([]uint64{2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddExact([]uint64{3}, nil); err == nil {
		t.Fatal("overflow insert accepted")
	}
	tbl.DeleteExact([]uint64{1})
	if err := tbl.AddExact([]uint64{3}, nil); err != nil {
		t.Fatalf("insert after delete failed: %v", err)
	}
}

func TestTernaryPriority(t *testing.T) {
	tbl := NewTable("acl", MatchTernary, FieldTCPFlags)
	var got string
	// Low priority: any packet.
	if err := tbl.AddTernary([]uint64{0}, []uint64{0}, 1, func(p *PHV) { got = "any" }); err != nil {
		t.Fatal(err)
	}
	// High priority: SYN set (masked match on the SYN bit).
	syn := uint64(netproto.TCPSyn)
	if err := tbl.AddTernary([]uint64{syn}, []uint64{syn}, 10, func(p *PHV) { got = "syn" }); err != nil {
		t.Fatal(err)
	}
	tbl.Apply(tcpPHV(t, 1, 2, netproto.TCPSyn|netproto.TCPAck))
	if got != "syn" {
		t.Fatalf("got %q, want syn (priority order)", got)
	}
	tbl.Apply(tcpPHV(t, 1, 2, netproto.TCPAck))
	if got != "any" {
		t.Fatalf("got %q, want any", got)
	}
}

func TestTernaryWrongKind(t *testing.T) {
	tbl := NewTable("x", MatchExact, FieldTCPFlags)
	if err := tbl.AddTernary([]uint64{0}, []uint64{0}, 0, nil); err == nil {
		t.Fatal("AddTernary on exact table accepted")
	}
	tbl2 := NewTable("y", MatchTernary, FieldTCPFlags)
	if err := tbl2.AddExact([]uint64{0}, nil); err == nil {
		t.Fatal("AddExact on ternary table accepted")
	}
}

func TestRangeTable(t *testing.T) {
	tbl := NewTable("ports", MatchRange, FieldTCPDstPort)
	var got string
	if err := tbl.AddRange(80, 90, 1, func(p *PHV) { got = "web" }); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRange(85, 85, 10, func(p *PHV) { got = "special" }); err != nil {
		t.Fatal(err)
	}
	tbl.Apply(tcpPHV(t, 1, 82, 0))
	if got != "web" {
		t.Fatalf("got %q", got)
	}
	tbl.Apply(tcpPHV(t, 1, 85, 0))
	if got != "special" {
		t.Fatalf("got %q, want special (priority)", got)
	}
	if tbl.Apply(tcpPHV(t, 1, 100, 0)) {
		t.Fatal("out-of-range value matched")
	}
	if err := tbl.AddRange(9, 3, 0, nil); err == nil {
		t.Fatal("lo>hi range accepted")
	}
}

func TestRangeTableSingleKeyOnly(t *testing.T) {
	tbl := NewTable("bad", MatchRange, FieldTCPDstPort, FieldTCPSrcPort)
	if err := tbl.AddRange(1, 2, 0, nil); err == nil {
		t.Fatal("multi-key range table accepted")
	}
}

func TestGateway(t *testing.T) {
	var path string
	g := &Gateway{
		Cond: func(p *PHV) bool { return FieldTCPFlags.Get(p)&uint64(netproto.TCPSyn) != 0 },
		Then: []Processor{ProcessorFunc(func(p *PHV) { path = "then" })},
		Else: []Processor{ProcessorFunc(func(p *PHV) { path = "else" })},
	}
	g.Process(tcpPHV(t, 1, 2, netproto.TCPSyn))
	if path != "then" {
		t.Fatal("then branch not taken")
	}
	g.Process(tcpPHV(t, 1, 2, netproto.TCPAck))
	if path != "else" {
		t.Fatal("else branch not taken")
	}
}

func TestPipelineStopsOnDrop(t *testing.T) {
	pl := NewPipeline("test")
	ran := 0
	pl.Add(ProcessorFunc(func(p *PHV) { ran++; p.Drop = true }))
	pl.Add(ProcessorFunc(func(p *PHV) { ran++ }))
	pl.Run(udpPHV(t, 1, 2))
	if ran != 1 {
		t.Fatalf("stages ran after drop: %d", ran)
	}
	if pl.Packets != 1 {
		t.Fatalf("Packets = %d", pl.Packets)
	}
}

func TestRegisterRMW(t *testing.T) {
	r := NewRegisterArray("ctr", 4)
	out := r.RMW(2, func(old uint64) (uint64, uint64) { return old + 5, old })
	if out != 0 {
		t.Fatalf("first RMW out = %d, want 0 (old value)", out)
	}
	if r.Read(2) != 5 {
		t.Fatalf("cell = %d, want 5", r.Read(2))
	}
	if r.Accesses != 2 {
		t.Fatalf("accesses = %d, want 2", r.Accesses)
	}
	r.Write(0, 9)
	snap := r.Snapshot(0, 4)
	if snap[0] != 9 || snap[2] != 5 {
		t.Fatalf("snapshot = %v", snap)
	}
	r.Write(0, 10)
	if snap[0] != 9 {
		t.Fatal("snapshot aliases live cells")
	}
	r.Reset()
	if r.Read(2) != 0 {
		t.Fatal("Reset did not zero cells")
	}
}

func TestRegisterOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range register access did not panic")
		}
	}()
	NewRegisterArray("x", 2).Read(5)
}

func TestHashUnitsIndependent(t *testing.T) {
	h1 := NewHashUnit("h1", PolyCRC32)
	h2 := NewHashUnit("h2", PolyCRC32C)
	data := []byte("the same key bytes")
	if h1.Sum(data) == h2.Sum(data) {
		t.Fatal("different polynomials produced identical sums")
	}
	if h1.Sum(data) != h1.Sum(data) {
		t.Fatal("hash not deterministic")
	}
}

func TestHashKnownCRC32(t *testing.T) {
	// CRC-32 of "123456789" is the classic check value 0xCBF43926.
	h := NewHashUnit("crc32", PolyCRC32)
	if got := h.Sum([]byte("123456789")); got != 0xCBF43926 {
		t.Fatalf("crc32 check = %#x, want 0xCBF43926", got)
	}
}

func TestHashDigestWidth(t *testing.T) {
	h := NewHashUnit("d", PolyCRC32)
	d := h.Digest([]byte("key"), 16)
	if d > 0xffff {
		t.Fatalf("16-bit digest out of range: %#x", d)
	}
	if h.Digest([]byte("key"), 32) != h.Sum([]byte("key")) {
		t.Fatal("32-bit digest must equal full sum")
	}
	idx := h.Index([]byte("key"), 100)
	if idx < 0 || idx >= 100 {
		t.Fatalf("index out of range: %d", idx)
	}
}

func TestFieldGetSetRoundTrip(t *testing.T) {
	p := tcpPHV(t, 1111, 2222, netproto.TCPSyn)
	fields := map[Field]uint64{
		FieldIPv4Src:    0x0a000001,
		FieldIPv4Dst:    0x0a000002,
		FieldIPv4TTL:    13,
		FieldTCPSrcPort: 4096,
		FieldTCPDstPort: 80,
		FieldTCPSeq:     99999,
		FieldTCPAck:     12,
		FieldTCPFlags:   uint64(netproto.TCPSyn | netproto.TCPAck),
		FieldEthSrc:     0x112233445566,
	}
	for f, v := range fields {
		f.Set(p, v)
		if got := f.Get(p); got != v {
			t.Errorf("%v: get after set = %#x, want %#x", f, got, v)
		}
	}
	if !p.Dirty {
		t.Fatal("Set did not mark PHV dirty")
	}
}

func TestFieldByName(t *testing.T) {
	cases := map[string]Field{
		"ipv4.dip":  FieldIPv4Dst,
		"dip":       FieldIPv4Dst,
		"sport":     FieldL4SrcPort,
		"tcp_flag":  FieldTCPFlags,
		"seq_no":    FieldTCPSeq,
		"pkt_len":   FieldPktLen,
		"udp.dport": FieldUDPDstPort,
	}
	for name, want := range cases {
		got, err := FieldByName(name)
		if err != nil || got != want {
			t.Errorf("FieldByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := FieldByName("nope.nope"); err == nil {
		t.Fatal("unknown field resolved")
	}
}

func TestFieldWidthsAndMax(t *testing.T) {
	if FieldTCPSrcPort.Width() != 16 || FieldTCPSrcPort.MaxValue() != 65535 {
		t.Fatal("tcp.sport width/max wrong")
	}
	if FieldIPv4Src.MaxValue() != 0xffffffff {
		t.Fatal("ipv4.sip max wrong")
	}
	if FieldEthSrc.MaxValue() != 1<<48-1 {
		t.Fatal("eth.src max wrong")
	}
}

func TestPHVDeparseRewritesWire(t *testing.T) {
	p := tcpPHV(t, 1111, 80, netproto.TCPSyn)
	FieldIPv4Dst.Set(p, uint64(netproto.MustIPv4("99.99.99.99")))
	FieldTCPDstPort.Set(p, 443)
	FieldTCPSeq.Set(p, 777)
	p.Deparse()

	var s netproto.Stack
	if err := s.Decode(p.Pkt.Data); err != nil {
		t.Fatal(err)
	}
	if s.IP4.Dst != netproto.MustIPv4("99.99.99.99") {
		t.Fatalf("dst = %v", s.IP4.Dst)
	}
	if s.TCP.DstPort != 443 || s.TCP.Seq != 777 {
		t.Fatalf("tcp = %+v", s.TCP)
	}
	// Checksums must be valid after rewrite.
	if !s.IP4.VerifyChecksum(p.Pkt.Data[netproto.EthernetLen:]) {
		t.Fatal("IPv4 checksum invalid after deparse")
	}
	if len(p.Pkt.Data) != 64 {
		t.Fatalf("deparse changed frame length: %d", len(p.Pkt.Data))
	}
}

func TestPHVDeparseUDPChecksum(t *testing.T) {
	p := udpPHV(t, 5000, 53)
	FieldUDPDstPort.Set(p, 123)
	p.Deparse()
	var s netproto.Stack
	if err := s.Decode(p.Pkt.Data); err != nil {
		t.Fatal(err)
	}
	if s.UDP.DstPort != 123 {
		t.Fatalf("udp dport = %d", s.UDP.DstPort)
	}
	// Verify the UDP checksum over the rewritten datagram.
	off := netproto.EthernetLen + netproto.IPv4MinLen
	seg := p.Pkt.Data[off : off+int(s.UDP.Length)]
	sum := pseudoSum(s.IP4.Src, s.IP4.Dst, netproto.IPProtoUDP, len(seg))
	if foldSum(addBytes(sum, seg)) != 0 {
		t.Fatal("UDP checksum invalid after deparse")
	}
}

func TestPHVDeparseNoopWhenClean(t *testing.T) {
	p := udpPHV(t, 1, 2)
	before := string(p.Pkt.Data)
	p.Deparse()
	if string(p.Pkt.Data) != before {
		t.Fatal("clean deparse rewrote bytes")
	}
}

func TestTernaryAndRangeDelete(t *testing.T) {
	tbl := NewTable("acl", MatchTernary, FieldTCPFlags)
	syn := uint64(netproto.TCPSyn)
	hit := false
	if err := tbl.AddTernary([]uint64{syn}, []uint64{syn}, 1, func(p *PHV) { hit = true }); err != nil {
		t.Fatal(err)
	}
	tbl.DeleteTernary([]uint64{syn}, []uint64{syn})
	tbl.Apply(tcpPHV(t, 1, 2, netproto.TCPSyn))
	if hit {
		t.Fatal("deleted ternary entry still matches")
	}
	tbl.DeleteTernary([]uint64{99}, []uint64{99}) // unknown: no-op

	rt := NewTable("ports", MatchRange, FieldTCPDstPort)
	if err := rt.AddRange(80, 90, 1, func(p *PHV) { hit = true }); err != nil {
		t.Fatal(err)
	}
	rt.DeleteRange(80, 90)
	if rt.Apply(tcpPHV(t, 1, 85, 0)) {
		t.Fatal("deleted range entry still matches")
	}
	rt.DeleteRange(1, 2) // unknown: no-op
}

// Property: any in-range field writes survive deparse -> re-decode, and the
// rewritten packet's checksums verify.
func TestDeparseRoundTripProperty(t *testing.T) {
	f := func(sip, dip uint32, sport, dport uint16, seq, ack uint32, flags uint8, ttl uint8) bool {
		p := tcpPHV(t, 1, 2, netproto.TCPSyn)
		if ttl == 0 {
			ttl = 1
		}
		writes := map[Field]uint64{
			FieldIPv4Src:    uint64(sip),
			FieldIPv4Dst:    uint64(dip),
			FieldIPv4TTL:    uint64(ttl),
			FieldTCPSrcPort: uint64(sport),
			FieldTCPDstPort: uint64(dport),
			FieldTCPSeq:     uint64(seq),
			FieldTCPAck:     uint64(ack),
			FieldTCPFlags:   uint64(flags & 0x3f),
		}
		for fld, v := range writes {
			fld.Set(p, v)
		}
		p.Deparse()
		var s netproto.Stack
		if err := s.Decode(p.Pkt.Data); err != nil {
			return false
		}
		reparsed := NewPHV(p.Pkt)
		for fld, v := range writes {
			if fld.Get(reparsed) != v {
				return false
			}
		}
		return s.IP4.VerifyChecksum(p.Pkt.Data[netproto.EthernetLen:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
