// Package asic simulates a Tofino-class RMT switching ASIC: a programmable
// parser, match-action pipelines with stateful registers and SALUs, a traffic
// manager with a multicast engine and per-port serialization, recirculation
// and loopback ports, MAC timestamping, and a digest engine towards the
// switch CPU.
//
// The simulator is calibrated against the micro-benchmarks HyperTester
// reports for its Tofino testbed (§7.3); see the constants in this file.
// It enforces the architectural restrictions the paper designs around: the
// pipeline cannot create packets, cannot touch payload bytes, and stateful
// memory is only reachable through per-packet register operations.
package asic

import "github.com/hypertester/hypertester/internal/netproto"

// Latency calibration. The paper measures a 570 ns recirculation round trip
// for 64-byte template packets (Fig. 14a) with an RMSE under 5 ns, and a
// minimum template inter-arrival of 6.4 ns at the 100 Gbps recirculation
// port (§5.1). The fixed components below sum to 563.6 ns so that
// 563.6 + wire(64B @100G) = 570 ns.
const (
	// IngressLatencyNs covers MAC receive, parsing and the ingress
	// match-action stages.
	IngressLatencyNs = 170
	// TMLatencyNs covers queueing-system traversal without replication.
	TMLatencyNs = 120
	// EgressLatencyNs covers the egress match-action stages and deparser.
	EgressLatencyNs = 180
	// MACTxLatencyNs covers MAC transmit logic before serialization.
	MACTxLatencyNs = 94 // 563.6 total with the 0.4 fractional part below

	// pipeFixedSubNs is the fractional remainder distributed into the
	// fixed path so the 64-byte loop lands exactly on 570 ns.
	pipeFixedSubNs = 0.4
)

// PipelineFixedNs is the size-independent portion of a full
// ingress→TM→egress→MAC traversal.
const PipelineFixedNs = IngressLatencyNs + TMLatencyNs + EgressLatencyNs + MACTxLatencyNs - pipeFixedSubNs

// LoopRTTNs returns the calibrated recirculation round-trip time for a frame
// of the given size: fixed pipeline latency plus serialization on the
// 100 Gbps recirculation path.
func LoopRTTNs(frameLen int) float64 {
	return PipelineFixedNs + netproto.WireTimeNs(frameLen, RecircGbps)
}

// RecircGbps is the recirculation-path bandwidth the paper measures
// ("no less than 100Gbps", §5.1).
const RecircGbps = 100.0

// McastDelayNs returns the replication-engine delay for one multicast copy.
// Fig. 15a: ~389 ns for 64-byte packets, rising ~65 ns by 1280 bytes, with
// jitter (RMSE) under 4.5 ns. Port count and speed have a near-zero effect
// (Fig. 15b), so neither appears here.
func McastDelayNs(frameLen int) float64 {
	return 385.6 + 0.0534*float64(frameLen)
}

// McastJitterSpreadNs bounds the uniform jitter applied to replication
// delay; calibrated so the observed RMSE stays below the paper's 4.5 ns.
const McastJitterSpreadNs = 7

// RTTJitterSpreadNs bounds the uniform jitter on the recirculation loop;
// calibrated so the RTT RMSE stays below the paper's 5 ns (Fig. 14a).
const RTTJitterSpreadNs = 8

// AcceleratorCapacity returns how many template packets of the given size
// one recirculation path can keep in flight: loop RTT divided by the minimum
// inter-arrival time (§7.3, 89 packets at 64 bytes).
func AcceleratorCapacity(frameLen int) int {
	return int(LoopRTTNs(frameLen) / netproto.WireTimeNs(frameLen, RecircGbps))
}
