package asic

import (
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
)

// Port is a switch front-panel or internal port. Transmit serializes frames
// at the port rate (a busy-until model equivalent to a FIFO queue) and
// delivers them to the attached sink — a cable towards another device, or
// the port's own ingress when in loopback mode (§6.1's recirculation-via-
// loopback technique).
type Port struct {
	sw   *Switch
	ID   int
	Gbps float64

	// Loopback, when set, wires TX straight back into this port's RX,
	// turning it into an extra recirculation path.
	Loopback bool

	// peer receives frames after full serialization. Nil peers discard
	// (an unplugged port).
	peer func(pkt *netproto.Packet, at netsim.Time)

	// remote, when set, diverts transmissions to a cross-LP channel of the
	// parallel engine: it runs at Transmit time (not serialization end)
	// with the computed end-of-serialization timestamp, so the partitioned
	// testbed can stage the delivery with full lookahead. TX counters are
	// still credited at serialization end by a local event.
	remote func(pkt *netproto.Packet, end netsim.Time)

	txBusyUntil netsim.Time

	// MaxBacklog bounds how far ahead of real time the TX queue may run
	// before tail-dropping, modelling finite packet buffers. Zero means
	// the switch default.
	MaxBacklog netsim.Duration

	// Counters.
	TxPackets, TxBytes uint64
	RxPackets, RxBytes uint64
	TxDrops            uint64
}

// DefaultMaxBacklog approximates Tofino's per-port share of packet buffer:
// at 100 Gbps, 50 us of backlog is ~625 KB.
const DefaultMaxBacklog = 50 * netsim.Microsecond

// SetPeer attaches the frame sink called at serialization end.
func (pt *Port) SetPeer(fn func(pkt *netproto.Packet, at netsim.Time)) { pt.peer = fn }

// SetRemote diverts this port's transmissions to a cross-LP staging hook
// (see the remote field). Used by testbed.Partition for partitioned links;
// mutually exclusive with loopback mode.
func (pt *Port) SetRemote(fn func(pkt *netproto.Packet, end netsim.Time)) { pt.remote = fn }

// Sim returns the simulation clock this port (via its switch) is bound to.
func (pt *Port) Sim() *netsim.Sim { return pt.sw.sim }

// Transmit enqueues a frame for serialization at the port rate. It is called
// by the switch at egress-pipeline completion time. A tail-dropped frame's
// journey ends inside the switch, so its buffer returns to the packet pool.
func (pt *Port) Transmit(pkt *netproto.Packet) {
	sim := pt.sw.sim
	now := sim.Now()
	start := pt.txBusyUntil
	if start < now {
		start = now
	}
	maxBacklog := pt.MaxBacklog
	if maxBacklog == 0 {
		maxBacklog = DefaultMaxBacklog
	}
	if start.Sub(now) > maxBacklog {
		pt.TxDrops++
		pt.sw.trace.Emit(now, obs.KindDrop, pkt.Meta.UID, dropTx, int64(pt.ID), int64(pkt.Len()))
		pkt.Release()
		return
	}
	wire := netsim.Ns(netproto.WireTimeNs(pkt.Len(), pt.Gbps))
	end := start.Add(wire)
	pt.txBusyUntil = end
	if pt.remote != nil && !pt.Loopback {
		// Cross-LP path: perform txDone's bookkeeping now — the packet is
		// handed to the staging engine and must not be touched afterwards —
		// and credit TX counters with a local event at serialization end,
		// exactly when the sequential engine would. The job carries the UID
		// so the wire_tx trace record can still name the frame.
		sim.AtCall(end, runTxCountJob, pt.sw.jobN(pkt.Len(), pkt.Meta.UID, pt))
		pkt.Meta.EgressPs = int64(end)
		pkt.Meta.TemplateID = 0
		pkt.Meta.Replica = false
		pkt.Meta.ReplicaID = 0
		pkt.Meta.SeqID = 0
		pkt.Meta.Record = nil
		pt.remote(pkt, end)
		return
	}
	sim.AtCall(end, runTxDoneJob, pt.sw.job(pkt, pt))
}

// txDone runs when the last bit of pkt leaves the port (the scheduled end of
// serialization, so the current virtual time IS the egress timestamp).
func (pt *Port) txDone(pkt *netproto.Packet) {
	end := pt.sw.sim.Now()
	pt.TxPackets++
	pt.TxBytes += uint64(pkt.Len())
	pt.sw.trace.Emit(end, obs.KindWireTx, pkt.Meta.UID, "", int64(pt.ID), int64(pkt.Len()))
	pkt.Meta.EgressPs = int64(end)
	if pt.Loopback {
		pt.Receive(pkt)
		return
	}
	// The internal bridge header (template ID, replication metadata,
	// trigger records) is removed by the deparser before the frame
	// hits a real wire.
	pkt.Meta.TemplateID = 0
	pkt.Meta.Replica = false
	pkt.Meta.ReplicaID = 0
	pkt.Meta.SeqID = 0
	pkt.Meta.Record = nil
	if pt.peer != nil {
		pt.peer(pkt, end)
	}
}

// Receive accepts a frame arriving on the wire now. The MAC stamps the
// ingress timestamp and hands the frame to the ingress pipeline after the
// fixed ingress latency.
func (pt *Port) Receive(pkt *netproto.Packet) {
	sim := pt.sw.sim
	pt.RxPackets++
	pt.RxBytes += uint64(pkt.Len())
	pkt.Meta.IngressPs = int64(sim.Now())
	pkt.Meta.InPort = pt.ID
	sim.AfterCall(netsim.Duration(IngressLatencyNs)*netsim.Nanosecond,
		runIngressJob, pt.sw.job(pkt, nil))
}

// Utilization returns transmitted bits / (rate × elapsed) over the given
// virtual-time window, a convenience for throughput reports.
func (pt *Port) Utilization(window netsim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	bits := float64(pt.TxBytes+uint64(pt.TxPackets)*netproto.WireOverheadBytes) * 8
	return bits / (pt.Gbps * window.Nanoseconds())
}

// Deliver is Receive under the name the testbed wiring uses for any frame
// destination (switch port or device interface).
func (pt *Port) Deliver(pkt *netproto.Packet) { pt.Receive(pkt) }

// DeliverLookahead is the calibrated latency between a frame's wire arrival
// and the first state-bearing event its delivery schedules: the MAC +
// ingress-pipeline entry latency. A partitioned testbed adds it to the
// cross-LP lookahead of any channel terminating at a switch port, widening
// synchronization windows by ~17x over the bare wire+cable bound.
func (pt *Port) DeliverLookahead() netsim.Duration {
	return netsim.Duration(IngressLatencyNs) * netsim.Nanosecond
}

// CreditRX credits the port's RX counters for one received frame of the
// given length. Receive does this inline at wire arrival; the partitioned
// cross-LP path calls it separately (testbed's remote-arrival handler, or
// the engine's boundary flush when a RunUntil deadline lands between a
// frame's arrival and its deferred pipeline entry) so RX counters sampled
// at any run boundary match the sequential engine bit for bit.
func (pt *Port) CreditRX(frameLen int) {
	pt.RxPackets++
	pt.RxBytes += uint64(frameLen)
}

// DeliverDeferred is the cross-LP delivery entry point: it performs arrival
// bookkeeping (with the original arrival timestamp) and enters the ingress
// pipeline directly. The caller must invoke it on the owning LP's clock at
// arrival + DeliverLookahead() — the instant Receive's deferred ingress
// event would have run — and must credit RX counters itself via CreditRX,
// which the sequential engine makes observable at the arrival instant.
// Register state, digests and every downstream timestamp are unaffected
// (the ingress pass itself happens at the same instant in both engines).
func (pt *Port) DeliverDeferred(pkt *netproto.Packet, arrival netsim.Time) {
	pkt.Meta.IngressPs = int64(arrival)
	pkt.Meta.InPort = pt.ID
	pt.sw.ingress(pkt)
}
