package asic

import (
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

// Port is a switch front-panel or internal port. Transmit serializes frames
// at the port rate (a busy-until model equivalent to a FIFO queue) and
// delivers them to the attached sink — a cable towards another device, or
// the port's own ingress when in loopback mode (§6.1's recirculation-via-
// loopback technique).
type Port struct {
	sw   *Switch
	ID   int
	Gbps float64

	// Loopback, when set, wires TX straight back into this port's RX,
	// turning it into an extra recirculation path.
	Loopback bool

	// peer receives frames after full serialization. Nil peers discard
	// (an unplugged port).
	peer func(pkt *netproto.Packet, at netsim.Time)

	txBusyUntil netsim.Time

	// MaxBacklog bounds how far ahead of real time the TX queue may run
	// before tail-dropping, modelling finite packet buffers. Zero means
	// the switch default.
	MaxBacklog netsim.Duration

	// Counters.
	TxPackets, TxBytes uint64
	RxPackets, RxBytes uint64
	TxDrops            uint64
}

// DefaultMaxBacklog approximates Tofino's per-port share of packet buffer:
// at 100 Gbps, 50 us of backlog is ~625 KB.
const DefaultMaxBacklog = 50 * netsim.Microsecond

// SetPeer attaches the frame sink called at serialization end.
func (pt *Port) SetPeer(fn func(pkt *netproto.Packet, at netsim.Time)) { pt.peer = fn }

// Transmit enqueues a frame for serialization at the port rate. It is called
// by the switch at egress-pipeline completion time. A tail-dropped frame's
// journey ends inside the switch, so its buffer returns to the packet pool.
func (pt *Port) Transmit(pkt *netproto.Packet) {
	sim := pt.sw.sim
	now := sim.Now()
	start := pt.txBusyUntil
	if start < now {
		start = now
	}
	maxBacklog := pt.MaxBacklog
	if maxBacklog == 0 {
		maxBacklog = DefaultMaxBacklog
	}
	if start.Sub(now) > maxBacklog {
		pt.TxDrops++
		pkt.Release()
		return
	}
	wire := netsim.Ns(netproto.WireTimeNs(pkt.Len(), pt.Gbps))
	end := start.Add(wire)
	pt.txBusyUntil = end
	sim.AtCall(end, runTxDoneJob, pt.sw.job(pkt, pt))
}

// txDone runs when the last bit of pkt leaves the port (the scheduled end of
// serialization, so the current virtual time IS the egress timestamp).
func (pt *Port) txDone(pkt *netproto.Packet) {
	end := pt.sw.sim.Now()
	pt.TxPackets++
	pt.TxBytes += uint64(pkt.Len())
	pkt.Meta.EgressPs = int64(end)
	if pt.Loopback {
		pt.Receive(pkt)
		return
	}
	// The internal bridge header (template ID, replication metadata,
	// trigger records) is removed by the deparser before the frame
	// hits a real wire.
	pkt.Meta.TemplateID = 0
	pkt.Meta.Replica = false
	pkt.Meta.ReplicaID = 0
	pkt.Meta.SeqID = 0
	pkt.Meta.Record = nil
	if pt.peer != nil {
		pt.peer(pkt, end)
	}
}

// Receive accepts a frame arriving on the wire now. The MAC stamps the
// ingress timestamp and hands the frame to the ingress pipeline after the
// fixed ingress latency.
func (pt *Port) Receive(pkt *netproto.Packet) {
	sim := pt.sw.sim
	pt.RxPackets++
	pt.RxBytes += uint64(pkt.Len())
	pkt.Meta.IngressPs = int64(sim.Now())
	pkt.Meta.InPort = pt.ID
	sim.AfterCall(netsim.Duration(IngressLatencyNs)*netsim.Nanosecond,
		runIngressJob, pt.sw.job(pkt, nil))
}

// Utilization returns transmitted bits / (rate × elapsed) over the given
// virtual-time window, a convenience for throughput reports.
func (pt *Port) Utilization(window netsim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	bits := float64(pt.TxBytes+uint64(pt.TxPackets)*netproto.WireOverheadBytes) * 8
	return bits / (pt.Gbps * window.Nanoseconds())
}

// Deliver is Receive under the name the testbed wiring uses for any frame
// destination (switch port or device interface).
func (pt *Port) Deliver(pkt *netproto.Packet) { pt.Receive(pkt) }
