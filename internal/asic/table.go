package asic

import (
	"encoding/binary"
	"fmt"

	"github.com/hypertester/hypertester/internal/obs"
)

// Action is the code body of a match-action entry. Actions run against the
// PHV only — they cannot allocate packets or touch payloads.
type Action func(p *PHV)

// MatchKind selects the table's matching semantics and, in the resource
// model, the memory it consumes.
type MatchKind uint8

// Supported match kinds.
const (
	MatchExact   MatchKind = iota // SRAM exact match
	MatchTernary                  // TCAM value/mask with priority
	MatchRange                    // TCAM-expanded range match on one key
)

func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchTernary:
		return "ternary"
	case MatchRange:
		return "range"
	}
	return "unknown"
}

// Table is a runtime match-action table. Entries are installed by the
// control plane (switch CPU) and matched per packet by the pipeline.
type Table struct {
	Name string
	Kind MatchKind
	Keys []Field

	// Default runs when no entry matches. Nil means no-op.
	Default Action

	// MaxEntries, when >0, bounds the table size as the compiler's
	// resource allocation would; AddEntry fails beyond it.
	MaxEntries int

	exact   map[string]Action
	ternary []ternaryEntry
	ranges  []rangeEntry

	// dirty marks the sorted order and lookup indexes stale after a
	// control-plane change; ensureIndex rebuilds them once per batch
	// instead of re-sorting on every insert.
	dirty bool
	tern  ternaryIndex
	rng   rangeIndex

	// Hits and Misses count lookups for statistics and tests.
	Hits, Misses uint64
}

type ternaryEntry struct {
	value, mask []uint64
	priority    int
	action      Action
}

type rangeEntry struct {
	lo, hi   uint64
	priority int
	action   Action
}

// NewTable constructs an empty table.
func NewTable(name string, kind MatchKind, keys ...Field) *Table {
	t := &Table{Name: name, Kind: kind, Keys: keys}
	if kind == MatchExact {
		t.exact = make(map[string]Action)
	}
	return t
}

// Size reports the number of installed entries.
func (t *Table) Size() int {
	switch t.Kind {
	case MatchExact:
		return len(t.exact)
	case MatchTernary:
		return len(t.ternary)
	default:
		return len(t.ranges)
	}
}

func (t *Table) checkRoom() error {
	if t.MaxEntries > 0 && t.Size() >= t.MaxEntries {
		return fmt.Errorf("asic: table %s full (%d entries)", t.Name, t.MaxEntries)
	}
	return nil
}

func exactKey(values []uint64) string {
	b := make([]byte, 8*len(values))
	for i, v := range values {
		binary.BigEndian.PutUint64(b[i*8:], v)
	}
	return string(b)
}

// AddExact installs an exact-match entry keyed on the given values (one per
// key field, in Keys order).
func (t *Table) AddExact(values []uint64, a Action) error {
	if t.Kind != MatchExact {
		return fmt.Errorf("asic: AddExact on %s table %s", t.Kind, t.Name)
	}
	if len(values) != len(t.Keys) {
		return fmt.Errorf("asic: table %s wants %d key values, got %d", t.Name, len(t.Keys), len(values))
	}
	if err := t.checkRoom(); err != nil {
		return err
	}
	t.exact[exactKey(values)] = a
	return nil
}

// DeleteExact removes an exact entry; unknown keys are a no-op.
func (t *Table) DeleteExact(values []uint64) {
	if t.Kind == MatchExact {
		delete(t.exact, exactKey(values))
	}
}

// AddTernary installs a value/mask entry with a priority (higher wins).
func (t *Table) AddTernary(value, mask []uint64, priority int, a Action) error {
	if t.Kind != MatchTernary {
		return fmt.Errorf("asic: AddTernary on %s table %s", t.Kind, t.Name)
	}
	if len(value) != len(t.Keys) || len(mask) != len(t.Keys) {
		return fmt.Errorf("asic: table %s wants %d key values", t.Name, len(t.Keys))
	}
	if err := t.checkRoom(); err != nil {
		return err
	}
	t.ternary = append(t.ternary, ternaryEntry{value: value, mask: mask, priority: priority, action: a})
	t.dirty = true
	return nil
}

// AddRange installs a [lo,hi] entry on a single-key range table.
func (t *Table) AddRange(lo, hi uint64, priority int, a Action) error {
	if t.Kind != MatchRange {
		return fmt.Errorf("asic: AddRange on %s table %s", t.Kind, t.Name)
	}
	if len(t.Keys) != 1 {
		return fmt.Errorf("asic: range table %s must have exactly one key", t.Name)
	}
	if lo > hi {
		return fmt.Errorf("asic: range table %s entry lo>hi", t.Name)
	}
	if err := t.checkRoom(); err != nil {
		return err
	}
	t.ranges = append(t.ranges, rangeEntry{lo: lo, hi: hi, priority: priority, action: a})
	t.dirty = true
	return nil
}

// DeleteTernary removes the first entry matching value/mask exactly, in
// priority order — so the index is brought up to date first.
func (t *Table) DeleteTernary(value, mask []uint64) {
	t.ensureIndex()
	for i := range t.ternary {
		if equalU64(t.ternary[i].value, value) && equalU64(t.ternary[i].mask, mask) {
			t.ternary = append(t.ternary[:i], t.ternary[i+1:]...)
			t.dirty = true
			return
		}
	}
}

// DeleteRange removes the first [lo,hi] entry in priority order.
func (t *Table) DeleteRange(lo, hi uint64) {
	t.ensureIndex()
	for i := range t.ranges {
		if t.ranges[i].lo == lo && t.ranges[i].hi == hi {
			t.ranges = append(t.ranges[:i], t.ranges[i+1:]...)
			t.dirty = true
			return
		}
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Apply looks the PHV up and runs the matching action (or the default).
// It reports whether an entry hit.
func (t *Table) Apply(p *PHV) bool {
	var keyBuf [4]uint64
	keys := keyBuf[:0]
	for _, f := range t.Keys {
		keys = append(keys, f.Get(p))
	}
	var act Action
	hit := false
	switch t.Kind {
	case MatchExact:
		// Key bytes stay on the stack: indexing the map with a converted
		// byte slice does not allocate.
		var kb [32]byte
		for i, v := range keys {
			binary.BigEndian.PutUint64(kb[i*8:], v)
		}
		if a, ok := t.exact[string(kb[:8*len(keys)])]; ok {
			act, hit = a, true
		}
	case MatchTernary:
		t.ensureIndex()
		if i, ok := t.lookupTernary(keys); ok {
			act, hit = t.ternary[i].action, true
		}
	case MatchRange:
		t.ensureIndex()
		if i, ok := t.lookupRange(keys[0]); ok {
			act, hit = t.ranges[i].action, true
		}
	}
	if hit {
		t.Hits++
	} else {
		t.Misses++
		act = t.Default
	}
	if p.Trace != nil {
		kind := obs.KindTableMiss
		if hit {
			kind = obs.KindTableHit
		}
		var k0 int64
		if len(keys) > 0 {
			k0 = int64(keys[0])
		}
		p.Trace.Emit(p.TraceAt, kind, p.Meta.UID, t.Name, k0, 0)
	}
	if act != nil {
		act(p)
	}
	return hit
}
