package asic

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
)

// RegisterArray is a stateful register array accessed through a SALU
// (stateful ALU). Tofino constrains stateful access: a packet gets one
// read-modify-write on one index per array traversal, with a simple update
// function. The simulator offers exactly that shape.
type RegisterArray struct {
	Name  string
	cells []uint64

	// Accesses counts SALU operations, for resource accounting and the
	// pull-speed experiments.
	Accesses uint64

	// clock + trace, when bound via Observe, emit one salu trace record per
	// Read/Write/RMW (Snapshot and Reset are control-plane bulk operations
	// and stay silent).
	clock *netsim.Sim
	trace *obs.Trace
}

// Observe binds the array to a trace stream: every subsequent SALU access
// emits a salu record stamped with clock's current virtual time. Pass a nil
// trace to unbind.
func (r *RegisterArray) Observe(clock *netsim.Sim, tr *obs.Trace) {
	r.clock, r.trace = clock, tr
}

// NewRegisterArray allocates an array of size cells, all zero.
func NewRegisterArray(name string, size int) *RegisterArray {
	return &RegisterArray{Name: name, cells: make([]uint64, size)}
}

// Size returns the number of cells.
func (r *RegisterArray) Size() int { return len(r.cells) }

func (r *RegisterArray) check(idx int) {
	if idx < 0 || idx >= len(r.cells) {
		panic(fmt.Sprintf("asic: register %s index %d out of range [0,%d)", r.Name, idx, len(r.cells)))
	}
}

// Read returns the cell value (a SALU read).
func (r *RegisterArray) Read(idx int) uint64 {
	r.check(idx)
	r.Accesses++
	v := r.cells[idx]
	if r.trace != nil {
		r.trace.Emit(r.clock.Now(), obs.KindSALU, 0, r.Name, int64(idx), int64(v))
	}
	return v
}

// Write stores v (a SALU write).
func (r *RegisterArray) Write(idx int, v uint64) {
	r.check(idx)
	r.Accesses++
	r.cells[idx] = v
	if r.trace != nil {
		r.trace.Emit(r.clock.Now(), obs.KindSALU, 0, r.Name, int64(idx), int64(v))
	}
}

// RMW performs one atomic read-modify-write: f receives the old value and
// returns the new value plus an output word handed back to the pipeline —
// the exact contract of a Tofino stateful ALU.
func (r *RegisterArray) RMW(idx int, f func(old uint64) (newVal, out uint64)) uint64 {
	r.check(idx)
	r.Accesses++
	nv, out := f(r.cells[idx])
	r.cells[idx] = nv
	if r.trace != nil {
		r.trace.Emit(r.clock.Now(), obs.KindSALU, 0, r.Name, int64(idx), int64(nv))
	}
	return out
}

// Snapshot copies cells[lo:hi] for control-plane pulls; the copy decouples
// the CPU's view from subsequent data-plane writes.
func (r *RegisterArray) Snapshot(lo, hi int) []uint64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(r.cells) {
		hi = len(r.cells)
	}
	out := make([]uint64, hi-lo)
	copy(out, r.cells[lo:hi])
	return out
}

// Reset zeroes every cell (control-plane operation between test runs).
func (r *RegisterArray) Reset() {
	for i := range r.cells {
		r.cells[i] = 0
	}
}
