package asic

import (
	"runtime/debug"
	"testing"

	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/raceflag"
)

func benchSwitch(b *testing.B, ports int) (*netsim.Sim, *Switch) {
	b.Helper()
	sim := netsim.New()
	gbps := make([]float64, ports)
	for i := range gbps {
		gbps[i] = 100
	}
	return sim, New(Config{Name: "bench", Sim: sim, PortGbps: gbps, Seed: 1})
}

func benchFrame(b *testing.B, size int) *netproto.Packet {
	b.Helper()
	raw, err := netproto.BuildUDP(netproto.UDPSpec{
		SrcIP: netproto.MustIPv4("10.0.0.1"), DstIP: netproto.MustIPv4("10.0.0.2"),
		SrcPort: 1, DstPort: 2, FrameLen: size,
	})
	if err != nil {
		b.Fatal(err)
	}
	return &netproto.Packet{Data: raw}
}

// BenchmarkIngressPipeline measures one full unicast traversal: ingress
// pipeline, traffic manager, egress pipeline, and port serialization.
func BenchmarkIngressPipeline(b *testing.B) {
	sim, sw := benchSwitch(b, 2)
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { p.EgressPort = 1 }))
	// The peer models a consuming sink: it owns the delivered frame and
	// returns it to the packet pool, closing the steady-state cycle.
	sw.Port(1).SetPeer(func(pkt *netproto.Packet, at netsim.Time) { pkt.Release() })
	base := benchFrame(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := base.Clone()
		sw.Port(0).Receive(pkt)
		sim.Run()
	}
}

// TestIngressPipelineZeroAllocs pins the steady-state allocation contract of
// the unicast hot path: with pooled events, jobs, PHVs, and packets, a full
// ingress→TM→egress→wire traversal must not touch the heap. GC is paused so
// sync.Pool contents survive the measurement deterministically.
func TestIngressPipelineZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; the contract holds in non-race builds")
	}
	sim, sw := benchTestSwitch(t, 2)
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { p.EgressPort = 1 }))
	sw.Port(1).SetPeer(func(pkt *netproto.Packet, at netsim.Time) { pkt.Release() })
	base := testFrame(t, 64)
	run := func() {
		sw.Port(0).Receive(base.Clone())
		sim.Run()
	}
	for i := 0; i < 32; i++ { // warm the pools
		run()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Fatalf("unicast traversal allocates %v allocs/op, want 0", avg)
	}
}

// TestMcastReplicateZeroAllocs pins the same contract for replication: one
// template arrival fanning out to 4 ports must run allocation-free.
func TestMcastReplicateZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; the contract holds in non-race builds")
	}
	sim, sw := benchTestSwitch(t, 5)
	if err := sw.Mcast.SetGroup(1, []CopySpec{
		{Port: 1, Rid: 1}, {Port: 2, Rid: 2}, {Port: 3, Rid: 3}, {Port: 4, Rid: 4},
	}); err != nil {
		t.Fatal(err)
	}
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { p.McastGroup = 1 }))
	for i := 1; i <= 4; i++ {
		sw.Port(i).SetPeer(func(pkt *netproto.Packet, at netsim.Time) { pkt.Release() })
	}
	base := testFrame(t, 64)
	run := func() {
		sw.Port(0).Receive(base.Clone())
		sim.Run()
	}
	for i := 0; i < 32; i++ {
		run()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Fatalf("4-way replication allocates %v allocs/op, want 0", avg)
	}
}

func benchTestSwitch(t *testing.T, ports int) (*netsim.Sim, *Switch) {
	t.Helper()
	sim := netsim.New()
	gbps := make([]float64, ports)
	for i := range gbps {
		gbps[i] = 100
	}
	return sim, New(Config{Name: "bench", Sim: sim, PortGbps: gbps, Seed: 1})
}

func testFrame(t *testing.T, size int) *netproto.Packet {
	t.Helper()
	raw, err := netproto.BuildUDP(netproto.UDPSpec{
		SrcIP: netproto.MustIPv4("10.0.0.1"), DstIP: netproto.MustIPv4("10.0.0.2"),
		SrcPort: 1, DstPort: 2, FrameLen: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &netproto.Packet{Data: raw}
}

// BenchmarkMcastReplicate measures a 4-way multicast replication per op.
func BenchmarkMcastReplicate(b *testing.B) {
	sim, sw := benchSwitch(b, 5)
	if err := sw.Mcast.SetGroup(1, []CopySpec{
		{Port: 1, Rid: 1}, {Port: 2, Rid: 2}, {Port: 3, Rid: 3}, {Port: 4, Rid: 4},
	}); err != nil {
		b.Fatal(err)
	}
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) { p.McastGroup = 1 }))
	for i := 1; i <= 4; i++ {
		sw.Port(i).SetPeer(func(pkt *netproto.Packet, at netsim.Time) { pkt.Release() })
	}
	base := benchFrame(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := base.Clone()
		sw.Port(0).Receive(pkt)
		sim.Run()
	}
}

// TestDigestPathZeroAllocs pins the allocation contract of the §5.2 digest
// channel: a frame whose pipeline pass emits a generate_digest message —
// queueing it, draining it over the rate-limited channel, and handing it to
// the CPU-side callback — must recycle every buffer (packet, PHV, event,
// digest message) through its pool and never touch the heap in steady state.
func TestDigestPathZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; the contract holds in non-race builds")
	}
	sim, sw := benchTestSwitch(t, 1)
	payload := make([]byte, 64)
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) {
		p.DigestData = payload
		p.Drop = true
	}))
	var digests, bytes uint64
	sw.DigestOut = func(msg []byte, at netsim.Time) {
		digests++
		bytes += uint64(len(msg))
	}
	base := testFrame(t, 64)
	run := func() {
		sw.Port(0).Receive(base.Clone())
		sim.Run() // includes the 455us channel-service drain event
	}
	for i := 0; i < 32; i++ { // warm the pools
		run()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Fatalf("digest emit+drain allocates %v allocs/op, want 0", avg)
	}
	if digests == 0 || bytes == 0 {
		t.Fatalf("digest callback never ran (digests=%d bytes=%d)", digests, bytes)
	}
}

// BenchmarkDigestPath measures one digest-emitting pipeline pass plus its
// channel drain (the Fig. 16a inner loop).
func BenchmarkDigestPath(b *testing.B) {
	sim, sw := benchSwitch(b, 1)
	payload := make([]byte, 64)
	sw.Ingress.Add(ProcessorFunc(func(p *PHV) {
		p.DigestData = payload
		p.Drop = true
	}))
	sw.DigestOut = func(msg []byte, at netsim.Time) {}
	base := benchFrame(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Port(0).Receive(base.Clone())
		sim.Run()
	}
}
