package asic

import (
	"math/rand"
	"testing"
)

// randTernaryTable fills a ternary table with a mix of structured entries
// (shared mask shapes, as real compilers emit), overlapping priorities, and
// the occasional catch-all that zeroes the common mask.
func randTernaryTable(t *testing.T, rng *rand.Rand, n int) *Table {
	t.Helper()
	tbl := NewTable("diff-tern", MatchTernary, FieldIPv4Dst, FieldIPv4Proto)
	maskShapes := [][]uint64{
		{0xffffffff, 0xff},
		{0xffffff00, 0xff},
		{0xffff0000, 0},
		{0xff000000, 0xff},
	}
	for i := 0; i < n; i++ {
		mask := maskShapes[rng.Intn(len(maskShapes))]
		if rng.Intn(16) == 0 {
			mask = []uint64{0, 0} // catch-all: degrades the prefilter to a scan
		}
		value := []uint64{rng.Uint64() & 0xffffffff, rng.Uint64() & 0xff}
		if err := tbl.AddTernary(value, mask, rng.Intn(8), nil); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestTernaryIndexMatchesLinearScan drives randomized tables and keys
// through both the indexed lookup and the retained linear-scan oracle,
// asserting they pick the identical entry, including across interleaved
// deletes that force index rebuilds.
func TestTernaryIndexMatchesLinearScan(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		tbl := randTernaryTable(t, rng, 1+rng.Intn(64))
		probe := func() {
			tbl.ensureIndex()
			for q := 0; q < 200; q++ {
				keys := []uint64{rng.Uint64() & 0xffffffff, rng.Uint64() & 0xff}
				if rng.Intn(2) == 0 && len(tbl.ternary) > 0 {
					// Bias half the probes toward installed values so hits
					// are exercised, not just misses.
					e := &tbl.ternary[rng.Intn(len(tbl.ternary))]
					keys = []uint64{e.value[0], e.value[1]}
				}
				gi, gok := tbl.lookupTernary(keys)
				wi, wok := tbl.lookupTernaryLinear(keys)
				if gok != wok || (gok && gi != wi) {
					t.Fatalf("trial %d: key %x: indexed (%d,%v) != linear (%d,%v)",
						trial, keys, gi, gok, wi, wok)
				}
			}
		}
		probe()
		// Delete a few entries (marking the index dirty) and re-probe.
		for d := 0; d < 5 && len(tbl.ternary) > 0; d++ {
			e := tbl.ternary[rng.Intn(len(tbl.ternary))]
			tbl.DeleteTernary(e.value, e.mask)
		}
		probe()
	}
}

// TestRangeIndexMatchesLinearScan does the same for range tables: random
// overlapping intervals with random priorities, probed at boundaries and
// random points, before and after deletes.
func TestRangeIndexMatchesLinearScan(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 500))
		tbl := NewTable("diff-range", MatchRange, FieldTCPDstPort)
		n := 1 + rng.Intn(64)
		for i := 0; i < n; i++ {
			lo := rng.Uint64() & 0xffff
			hi := lo + uint64(rng.Intn(1024))
			if rng.Intn(16) == 0 {
				hi = ^uint64(0) // open-ended tail entry
			}
			if err := tbl.AddRange(lo, hi, rng.Intn(8), nil); err != nil {
				t.Fatal(err)
			}
		}
		probe := func() {
			tbl.ensureIndex()
			check := func(key uint64) {
				gi, gok := tbl.lookupRange(key)
				wi, wok := tbl.lookupRangeLinear(key)
				if gok != wok || (gok && gi != wi) {
					t.Fatalf("trial %d: key %d: indexed (%d,%v) != linear (%d,%v)",
						trial, key, gi, gok, wi, wok)
				}
			}
			for q := 0; q < 200; q++ {
				check(rng.Uint64() & 0x1ffff)
			}
			// Boundaries are where an off-by-one in the elementary-interval
			// index would hide.
			for i := range tbl.ranges {
				e := &tbl.ranges[i]
				check(e.lo)
				check(e.hi)
				if e.lo > 0 {
					check(e.lo - 1)
				}
				if e.hi < ^uint64(0) {
					check(e.hi + 1)
				}
			}
			check(0)
			check(^uint64(0))
		}
		probe()
		for d := 0; d < 5 && len(tbl.ranges) > 0; d++ {
			e := tbl.ranges[rng.Intn(len(tbl.ranges))]
			tbl.DeleteRange(e.lo, e.hi)
		}
		probe()
	}
}

// TestTableApplyZeroAllocs pins that indexed Apply stays off the heap for
// all three match kinds.
func TestTableApplyZeroAllocs(t *testing.T) {
	p := tcpPHV(t, 1, 80, 0)

	exact := NewTable("z-exact", MatchExact, FieldTCPDstPort)
	if err := exact.AddExact([]uint64{80}, nil); err != nil {
		t.Fatal(err)
	}
	tern := NewTable("z-tern", MatchTernary, FieldTCPDstPort, FieldTCPSrcPort)
	if err := tern.AddTernary([]uint64{80, 0}, []uint64{0xffff, 0}, 1, nil); err != nil {
		t.Fatal(err)
	}
	rng := NewTable("z-range", MatchRange, FieldTCPDstPort)
	if err := rng.AddRange(1, 1024, 1, nil); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		tbl  *Table
	}{{"exact", exact}, {"ternary", tern}, {"range", rng}} {
		tbl := tc.tbl
		tbl.Apply(p) // build the index outside the measurement
		if avg := testing.AllocsPerRun(200, func() { tbl.Apply(p) }); avg != 0 {
			t.Fatalf("%s Apply allocates %v allocs/op, want 0", tc.name, avg)
		}
	}
}

// BenchmarkTernaryPopulate measures table population cost — the pattern
// that used to re-sort on every insert.
func BenchmarkTernaryPopulate(b *testing.B) {
	const n = 512
	value := []uint64{0x0a000000, 6}
	mask := []uint64{0xffffff00, 0xff}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := NewTable("pop", MatchTernary, FieldIPv4Dst, FieldIPv4Proto)
		for j := 0; j < n; j++ {
			if err := tbl.AddTernary(value, mask, j&7, nil); err != nil {
				b.Fatal(err)
			}
		}
		tbl.ensureIndex()
	}
}

// BenchmarkTernaryLookup compares the indexed lookup against the linear
// oracle on a 512-entry table.
func BenchmarkTernaryLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tbl := NewTable("lk", MatchTernary, FieldIPv4Dst, FieldIPv4Proto)
	for j := 0; j < 512; j++ {
		value := []uint64{rng.Uint64() & 0xffffffff, 6}
		if err := tbl.AddTernary(value, []uint64{0xffffffff, 0xff}, j&7, nil); err != nil {
			b.Fatal(err)
		}
	}
	tbl.ensureIndex()
	keys := []uint64{tbl.ternary[300].value[0], 6}
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tbl.lookupTernary(keys)
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl.lookupTernaryLinear(keys)
		}
	})
}

// BenchmarkRangeLookup compares the interval index against the linear scan.
func BenchmarkRangeLookup(b *testing.B) {
	tbl := NewTable("lk", MatchRange, FieldTCPDstPort)
	for j := 0; j < 512; j++ {
		lo := uint64(j * 128)
		if err := tbl.AddRange(lo, lo+63, j&7, nil); err != nil {
			b.Fatal(err)
		}
	}
	tbl.ensureIndex()
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tbl.lookupRange(300 * 128)
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl.lookupRangeLinear(300 * 128)
		}
	})
}
