package asic

import "fmt"

// McastEngine is the traffic manager's packet replication engine. A group
// maps to a list of copies, each naming an egress port and a replication ID
// (rid) the egress pipeline can match on. This is the "general primitive
// widely supported by commodity switches" HTPS builds its replicator on.
type McastEngine struct {
	groups map[int][]CopySpec
}

// CopySpec is one replica of a multicast group.
type CopySpec struct {
	Port int
	Rid  int
}

// NewMcastEngine returns an empty engine.
func NewMcastEngine() *McastEngine {
	return &McastEngine{groups: make(map[int][]CopySpec)}
}

// SetGroup installs or replaces a multicast group. Group IDs are positive;
// zero means "no multicast" in the PHV.
func (m *McastEngine) SetGroup(gid int, copies []CopySpec) error {
	if gid <= 0 {
		return fmt.Errorf("asic: multicast group id must be positive, got %d", gid)
	}
	if len(copies) == 0 {
		return fmt.Errorf("asic: multicast group %d has no copies", gid)
	}
	cs := make([]CopySpec, len(copies))
	copy(cs, copies)
	m.groups[gid] = cs
	return nil
}

// DeleteGroup removes a group; unknown groups are a no-op.
func (m *McastEngine) DeleteGroup(gid int) { delete(m.groups, gid) }

// Copies returns the copy list for gid, or nil when the group is not
// configured (the hardware silently drops such packets).
func (m *McastEngine) Copies(gid int) []CopySpec { return m.groups[gid] }

// Groups returns the number of configured groups.
func (m *McastEngine) Groups() int { return len(m.groups) }
