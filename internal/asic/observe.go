package asic

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/obs"
)

// Observability wiring for the switch. Trace emissions are placed only at
// engine-invariant instants — points that execute at the same virtual time
// and in the same per-device order under both the sequential and the
// parallel (LP) engines — so per-switch trace streams are bit-identical at
// any worker count (the determinism contract in package obs). Concretely:
//
//   - parse / table / SALU / TM / mcast / recirculate / deparse / digest /
//     drop records are emitted inside pipeline passes and TM hops, which the
//     LP engine schedules exactly as the sequential engine does;
//   - wire_tx is emitted at serialization end, which both engines schedule
//     from Transmit time (txDone locally, runTxCountJob on partitioned
//     links);
//   - no record is emitted from Port.Receive: the partitioned path performs
//     arrival bookkeeping at a different instant (see Port.DeliverDeferred),
//     so RX visibility comes from the parse record at pipeline entry, which
//     is engine-invariant.
//
// Every callsite passes only pre-materialized scalars and interned labels;
// with tracing disabled (nil trace) each reduces to a field load and one
// predictable branch — the htlint obsalloc analyzer and the zero-alloc
// tests hold that path at 0 allocs/op.

// Drop-reason labels (interned; trace callsites must not build strings).
const (
	dropPipeline = "pipeline"
	dropNoRoute  = "noroute"
	dropTx       = "txdrop"
)

// SetTrace attaches a trace stream to the switch (nil disables tracing).
// Call while the switch is idle — mid-flight packets would get a torn
// trace, not corrupted state.
func (sw *Switch) SetTrace(tr *obs.Trace) { sw.trace = tr }

// Trace returns the attached trace stream (nil when disabled).
func (sw *Switch) Trace() *obs.Trace { return sw.trace }

// Describe registers the switch's health metrics on r under the switch
// name: per-port TX/RX counters, drop counters, digest-channel state and
// hot-path pool sizes. Gauges are read lazily at snapshot time; Describe
// itself is setup-time code and may allocate freely.
func (sw *Switch) Describe(r *obs.Registry) {
	if r == nil {
		return
	}
	prefix := sw.Name
	r.Gauge(prefix+".pipeline_drops", func() float64 { return float64(sw.PipelineDrops) })
	r.Gauge(prefix+".noroute_drops", func() float64 { return float64(sw.NoRouteDrops) })
	r.Gauge(prefix+".digests_sent", func() float64 { return float64(sw.DigestsSent) })
	r.Gauge(prefix+".digest_drops", func() float64 { return float64(sw.DigestDrops) })
	r.Gauge(prefix+".digest_queue", func() float64 { return float64(sw.digestQueue.Len()) })
	r.Gauge(prefix+".phv_pool", func() float64 { return float64(len(sw.phvFree)) })
	r.Gauge(prefix+".job_pool", func() float64 { return float64(len(sw.jobFree)) })
	for _, pt := range sw.ports {
		pt.describe(r, fmt.Sprintf("%s.port%d", prefix, pt.ID))
	}
	for _, pt := range sw.recirc {
		pt.describe(r, fmt.Sprintf("%s.recirc%d", prefix, pt.ID-RecircPortBase))
	}
}

// describe registers one port's counters under prefix.
func (pt *Port) describe(r *obs.Registry, prefix string) {
	r.Gauge(prefix+".tx_packets", func() float64 { return float64(pt.TxPackets) })
	r.Gauge(prefix+".tx_bytes", func() float64 { return float64(pt.TxBytes) })
	r.Gauge(prefix+".rx_packets", func() float64 { return float64(pt.RxPackets) })
	r.Gauge(prefix+".rx_bytes", func() float64 { return float64(pt.RxBytes) })
	r.Gauge(prefix+".tx_drops", func() float64 { return float64(pt.TxDrops) })
}
