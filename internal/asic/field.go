package asic

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/netproto"
)

// Field identifies a header or intrinsic-metadata field a match-action
// pipeline can read or write. Pipelines address fields through this enum —
// the simulation equivalent of a PHV container allocation — rather than by
// string, so the hot path never hashes names.
type Field uint8

// Header and metadata fields available to pipelines.
const (
	FieldNone Field = iota

	FieldEthSrc
	FieldEthDst
	FieldEthType

	FieldVlanID
	FieldVlanPCP

	FieldIPv4Src
	FieldIPv4Dst
	FieldIPv4TTL
	FieldIPv4Proto
	FieldIPv4TOS
	FieldIPv4ID

	FieldTCPSrcPort
	FieldTCPDstPort
	FieldTCPSeq
	FieldTCPAck
	FieldTCPFlags
	FieldTCPWindow

	FieldUDPSrcPort
	FieldUDPDstPort

	FieldICMPType
	FieldICMPIdent
	FieldICMPSeq

	// FieldL4SrcPort/FieldL4DstPort read whichever transport layer was
	// parsed (TCP or UDP), the way a P4 program unions the two headers
	// for 5-tuple keying.
	FieldL4SrcPort
	FieldL4DstPort

	// Intrinsic metadata (read-only except where noted).
	FieldInPort     // ingress port
	FieldPktLen     // frame length in bytes
	FieldIngressTs  // MAC ingress timestamp, ns
	FieldTemplateID // HyperTester template ID carried in metadata

	numFields
)

var fieldInfo = [numFields]struct {
	name  string
	width int // bits
}{
	FieldNone:       {"none", 0},
	FieldEthSrc:     {"eth.src", 48},
	FieldEthDst:     {"eth.dst", 48},
	FieldEthType:    {"eth.type", 16},
	FieldVlanID:     {"vlan.id", 12},
	FieldVlanPCP:    {"vlan.pcp", 3},
	FieldIPv4Src:    {"ipv4.sip", 32},
	FieldIPv4Dst:    {"ipv4.dip", 32},
	FieldIPv4TTL:    {"ipv4.ttl", 8},
	FieldIPv4Proto:  {"ipv4.proto", 8},
	FieldIPv4TOS:    {"ipv4.tos", 8},
	FieldIPv4ID:     {"ipv4.id", 16},
	FieldTCPSrcPort: {"tcp.sport", 16},
	FieldTCPDstPort: {"tcp.dport", 16},
	FieldTCPSeq:     {"tcp.seq_no", 32},
	FieldTCPAck:     {"tcp.ack_no", 32},
	FieldTCPFlags:   {"tcp.flag", 8},
	FieldTCPWindow:  {"tcp.window", 16},
	FieldUDPSrcPort: {"udp.sport", 16},
	FieldUDPDstPort: {"udp.dport", 16},
	FieldL4SrcPort:  {"l4.sport", 16},
	FieldL4DstPort:  {"l4.dport", 16},
	FieldICMPType:   {"icmp.type", 8},
	FieldICMPIdent:  {"icmp.ident", 16},
	FieldICMPSeq:    {"icmp.seq", 16},
	FieldInPort:     {"meta.in_port", 9},
	FieldPktLen:     {"pkt_len", 16},
	FieldIngressTs:  {"meta.ingress_ts", 64},
	FieldTemplateID: {"meta.template_id", 16},
}

// Name returns the NTAPI-style dotted name of the field.
func (f Field) Name() string { return fieldInfo[f].name }

// Width returns the field width in bits.
func (f Field) Width() int { return fieldInfo[f].width }

// MaxValue returns the largest value the field can hold.
func (f Field) MaxValue() uint64 {
	w := fieldInfo[f].width
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

func (f Field) String() string { return f.Name() }

// FieldByName resolves an NTAPI-style dotted field name. It accepts the
// aliases used in the paper's listings (dip/sip/dport/sport without a header
// prefix resolve against IPv4/TCP-or-UDP as NTAPI does).
func FieldByName(name string) (Field, error) {
	for f := Field(1); f < numFields; f++ {
		if fieldInfo[f].name == name {
			return f, nil
		}
	}
	switch name {
	case "sip":
		return FieldIPv4Src, nil
	case "dip":
		return FieldIPv4Dst, nil
	case "proto":
		return FieldIPv4Proto, nil
	case "ttl":
		return FieldIPv4TTL, nil
	case "sport":
		return FieldL4SrcPort, nil
	case "dport":
		return FieldL4DstPort, nil
	case "flag", "tcp_flag", "tcp.tcp_flag":
		return FieldTCPFlags, nil
	case "seq_no":
		return FieldTCPSeq, nil
	case "ack_no":
		return FieldTCPAck, nil
	}
	return FieldNone, fmt.Errorf("asic: unknown field %q", name)
}

// Get reads the field from a PHV. Reading a field whose layer was not parsed
// returns zero, matching P4's invalid-header read semantics on Tofino.
func (f Field) Get(p *PHV) uint64 {
	s := &p.Stack
	switch f {
	case FieldEthSrc:
		return macToUint64(s.Eth.Src)
	case FieldEthDst:
		return macToUint64(s.Eth.Dst)
	case FieldEthType:
		return uint64(s.Eth.EtherType)
	case FieldVlanID:
		return uint64(s.VLAN.VID)
	case FieldVlanPCP:
		return uint64(s.VLAN.PCP)
	case FieldIPv4Src:
		return uint64(s.IP4.Src)
	case FieldIPv4Dst:
		return uint64(s.IP4.Dst)
	case FieldIPv4TTL:
		return uint64(s.IP4.TTL)
	case FieldIPv4Proto:
		return uint64(s.IP4.Protocol)
	case FieldIPv4TOS:
		return uint64(s.IP4.TOS)
	case FieldIPv4ID:
		return uint64(s.IP4.ID)
	case FieldTCPSrcPort:
		return uint64(s.TCP.SrcPort)
	case FieldTCPDstPort:
		return uint64(s.TCP.DstPort)
	case FieldTCPSeq:
		return uint64(s.TCP.Seq)
	case FieldTCPAck:
		return uint64(s.TCP.Ack)
	case FieldTCPFlags:
		return uint64(s.TCP.Flags)
	case FieldTCPWindow:
		return uint64(s.TCP.Window)
	case FieldUDPSrcPort:
		return uint64(s.UDP.SrcPort)
	case FieldUDPDstPort:
		return uint64(s.UDP.DstPort)
	case FieldL4SrcPort:
		if s.Has(netproto.LayerTCP) {
			return uint64(s.TCP.SrcPort)
		}
		return uint64(s.UDP.SrcPort)
	case FieldL4DstPort:
		if s.Has(netproto.LayerTCP) {
			return uint64(s.TCP.DstPort)
		}
		return uint64(s.UDP.DstPort)
	case FieldICMPType:
		return uint64(s.ICMP.Type)
	case FieldICMPIdent:
		return uint64(s.ICMP.Ident)
	case FieldICMPSeq:
		return uint64(s.ICMP.Seq)
	case FieldInPort:
		return uint64(p.Meta.InPort)
	case FieldPktLen:
		return uint64(p.FrameLen)
	case FieldIngressTs:
		return uint64(p.Meta.IngressPs)
	case FieldTemplateID:
		return uint64(p.Meta.TemplateID)
	}
	return 0
}

// Set writes the field into a PHV. Writes to read-only intrinsic metadata
// and to unparsed layers are silently dropped, as on hardware.
func (f Field) Set(p *PHV, v uint64) {
	s := &p.Stack
	switch f {
	case FieldEthSrc:
		s.Eth.Src = uint64ToMAC(v)
	case FieldEthDst:
		s.Eth.Dst = uint64ToMAC(v)
	case FieldEthType:
		s.Eth.EtherType = uint16(v)
	case FieldVlanID:
		if p.Has(netproto.LayerVLAN) {
			s.VLAN.VID = uint16(v) & 0x0fff
		}
	case FieldVlanPCP:
		if p.Has(netproto.LayerVLAN) {
			s.VLAN.PCP = uint8(v) & 0x7
		}
	case FieldIPv4Src:
		s.IP4.Src = netproto.IPv4Addr(v)
	case FieldIPv4Dst:
		s.IP4.Dst = netproto.IPv4Addr(v)
	case FieldIPv4TTL:
		s.IP4.TTL = uint8(v)
	case FieldIPv4Proto:
		s.IP4.Protocol = uint8(v)
	case FieldIPv4TOS:
		s.IP4.TOS = uint8(v)
	case FieldIPv4ID:
		s.IP4.ID = uint16(v)
	case FieldTCPSrcPort:
		s.TCP.SrcPort = uint16(v)
	case FieldTCPDstPort:
		s.TCP.DstPort = uint16(v)
	case FieldTCPSeq:
		s.TCP.Seq = uint32(v)
	case FieldTCPAck:
		s.TCP.Ack = uint32(v)
	case FieldTCPFlags:
		s.TCP.Flags = uint8(v) & 0x3f
	case FieldTCPWindow:
		s.TCP.Window = uint16(v)
	case FieldUDPSrcPort:
		s.UDP.SrcPort = uint16(v)
	case FieldUDPDstPort:
		s.UDP.DstPort = uint16(v)
	case FieldL4SrcPort:
		if s.Has(netproto.LayerTCP) {
			s.TCP.SrcPort = uint16(v)
		} else {
			s.UDP.SrcPort = uint16(v)
		}
	case FieldL4DstPort:
		if s.Has(netproto.LayerTCP) {
			s.TCP.DstPort = uint16(v)
		} else {
			s.UDP.DstPort = uint16(v)
		}
	case FieldICMPType:
		s.ICMP.Type = uint8(v)
	case FieldICMPIdent:
		s.ICMP.Ident = uint16(v)
	case FieldICMPSeq:
		s.ICMP.Seq = uint16(v)
	}
	p.Dirty = true
}

func macToUint64(m netproto.MAC) uint64 {
	var v uint64
	for _, b := range m {
		v = v<<8 | uint64(b)
	}
	return v
}

func uint64ToMAC(v uint64) netproto.MAC { return netproto.MACFromUint64(v) }
