package asic

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
)

// RecircPortBase is the port-ID space for internal recirculation paths,
// addressed by the `recirculate` primitive.
const RecircPortBase = 1000

// CPUPortID is the PCIe packet port between switching ASIC and switch CPU.
const CPUPortID = 2000

// Config describes a switch to build.
type Config struct {
	Name string
	Sim  *netsim.Sim
	// PortGbps gives per-front-panel-port rates; index is port ID.
	PortGbps []float64
	// RecircPaths is the number of internal recirculation paths
	// (default 1). §6.1's loopback trick adds more by flipping front-
	// panel ports into loopback mode instead.
	RecircPaths int
	// Seed drives the switch's jitter streams.
	Seed int64
}

// Switch is the simulated programmable switch: front-panel ports, one
// ingress and one egress pipeline, a traffic manager with a multicast
// engine, recirculation paths, and a digest engine towards the switch CPU.
type Switch struct {
	Name    string
	sim     *netsim.Sim
	ports   []*Port
	recirc  []*Port
	Ingress *Pipeline
	Egress  *Pipeline
	Mcast   *McastEngine

	rngLoop  *netsim.RNG // recirculation-path jitter
	rngMcast *netsim.RNG // replication-engine jitter

	// DigestOut receives generate_digest messages on the switch-CPU side
	// after the PCIe channel's service delay. The data slice is pooled: it
	// is valid only for the duration of the call, and receivers that retain
	// digest contents must copy them out.
	DigestOut func(data []byte, at netsim.Time)

	digestBusyUntil netsim.Time
	digestQueue     digestRing
	digestDraining  bool
	// digestFree recycles delivered digest-message buffers back into
	// emitDigest, making the sustained digest path allocation-free.
	digestFree [][]byte

	// Hot-path object pools (see pool.go). Single-threaded with the Sim.
	phvFree []*PHV
	jobFree []*pktJob

	// trace, when non-nil, receives per-packet lifecycle records (see
	// observe.go for the emission-point contract).
	trace *obs.Trace

	// Counters.
	PipelineDrops uint64 // packets dropped by pipeline decision
	NoRouteDrops  uint64 // packets leaving ingress with no destination
	DigestsSent   uint64
	DigestDrops   uint64

	uid uint64
}

// Digest-channel calibration (Fig. 16a): goodput grows linearly with message
// size and reaches ~4.5 Mbps at 256-byte messages, i.e. the channel is
// message-rate-bound at ~2200 messages/s.
const (
	digestServiceTime = 455 * netsim.Microsecond
	digestMaxQueue    = 16384
)

// New builds a switch from cfg.
func New(cfg Config) *Switch {
	if cfg.Sim == nil {
		panic("asic: Config.Sim is required")
	}
	if cfg.RecircPaths == 0 {
		cfg.RecircPaths = 1
	}
	sw := &Switch{
		Name:     cfg.Name,
		sim:      cfg.Sim,
		Ingress:  NewPipeline("ingress"),
		Egress:   NewPipeline("egress"),
		Mcast:    NewMcastEngine(),
		rngLoop:  netsim.NewRNG(cfg.Seed, cfg.Name+"/recirc"),
		rngMcast: netsim.NewRNG(cfg.Seed, cfg.Name+"/mcast"),
	}
	for i, g := range cfg.PortGbps {
		sw.ports = append(sw.ports, &Port{sw: sw, ID: i, Gbps: g})
	}
	for i := 0; i < cfg.RecircPaths; i++ {
		sw.recirc = append(sw.recirc, &Port{
			sw: sw, ID: RecircPortBase + i, Gbps: RecircGbps, Loopback: true,
		})
	}
	return sw
}

// Sim returns the simulation the switch is bound to.
func (sw *Switch) Sim() *netsim.Sim { return sw.sim }

// Port returns a front-panel, recirculation, or loopback port by ID.
func (sw *Switch) Port(id int) *Port {
	if id >= RecircPortBase && id < RecircPortBase+len(sw.recirc) {
		return sw.recirc[id-RecircPortBase]
	}
	if id >= 0 && id < len(sw.ports) {
		return sw.ports[id]
	}
	return nil
}

// NumPorts returns the front-panel port count.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// RecircPaths returns the number of internal recirculation paths.
func (sw *Switch) RecircPaths() int { return len(sw.recirc) }

// SetLoopback flips a front-panel port into loopback mode, trading its
// bandwidth for extra recirculation capacity (§6.1).
func (sw *Switch) SetLoopback(portID int, on bool) error {
	p := sw.Port(portID)
	if p == nil || portID >= RecircPortBase {
		return fmt.Errorf("asic: no front-panel port %d", portID)
	}
	p.Loopback = on
	return nil
}

// NextUID returns a fresh packet UID.
func (sw *Switch) NextUID() uint64 {
	sw.uid++
	return sw.uid
}

// InjectFromCPU delivers a CPU-built packet (e.g. a template packet) into
// the ingress pipeline, as the PCIe packet interface does. The injection
// takes effect after the PCIe transfer delay.
func (sw *Switch) InjectFromCPU(pkt *netproto.Packet) {
	const pcieDelay = 2 * netsim.Microsecond
	pkt.Meta.UID = sw.NextUID()
	sw.sim.AfterCall(pcieDelay, runInjectJob, sw.job(pkt, nil))
}

// ingress runs the ingress pipeline and dispatches the PHV through the
// traffic manager. Called at ingress-pipeline completion time. The switch
// owns pkt for the duration of the pass: packets whose journey ends here
// (drops) are released back to the packet pool.
func (sw *Switch) ingress(pkt *netproto.Packet) {
	sw.trace.Emit(sw.sim.Now(), obs.KindParse, pkt.Meta.UID, "", int64(pkt.Meta.InPort), int64(pkt.Len()))
	phv := sw.acquirePHV(pkt)
	phv.Trace, phv.TraceAt = sw.trace, sw.sim.Now()
	sw.Ingress.Run(phv)
	pkt.Meta = phv.Meta // metadata edits travel with the packet
	sw.takeDigest(phv)
	if phv.Drop {
		sw.PipelineDrops++
		sw.trace.Emit(phv.TraceAt, obs.KindDrop, pkt.Meta.UID, dropPipeline, 0, int64(pkt.Len()))
		sw.releasePHV(phv)
		pkt.Release()
		return
	}
	switch {
	case phv.McastGroup > 0:
		sw.replicate(phv)
		sw.releasePHV(phv)
	case phv.Recirculate:
		phv.Deparse()
		port := sw.recircPortFor(phv)
		sw.trace.Emit(phv.TraceAt, obs.KindRecirculate, pkt.Meta.UID, "", int64(port.ID), 0)
		sw.releasePHV(phv)
		sw.toEgress(pkt, port, netsim.Duration(TMLatencyNs)*netsim.Nanosecond)
	case phv.EgressPort >= 0:
		phv.Deparse()
		port := sw.Port(phv.EgressPort)
		sw.releasePHV(phv)
		sw.toEgress(pkt, port, netsim.Duration(TMLatencyNs)*netsim.Nanosecond)
	default:
		sw.NoRouteDrops++
		sw.trace.Emit(phv.TraceAt, obs.KindDrop, pkt.Meta.UID, dropNoRoute, 0, int64(pkt.Len()))
		sw.releasePHV(phv)
		pkt.Release()
	}
}

// recircPortFor picks the recirculation path for a PHV. Templates spread
// across paths by template ID so extra loopback paths extend capacity.
func (sw *Switch) recircPortFor(phv *PHV) *Port {
	if len(sw.recirc) == 1 {
		return sw.recirc[0]
	}
	return sw.recirc[phv.Meta.TemplateID%len(sw.recirc)]
}

// replicate hands the PHV to the multicast engine: one copy per CopySpec,
// each delayed by the replication-engine latency. Every copy — including the
// rid-0 continuation — is a fresh clone; the original packet's journey ends
// here and its buffer returns to the pool.
func (sw *Switch) replicate(phv *PHV) {
	pkt := phv.Pkt
	copies := sw.Mcast.Copies(phv.McastGroup)
	if copies == nil {
		sw.NoRouteDrops++
		sw.trace.Emit(phv.TraceAt, obs.KindDrop, pkt.Meta.UID, dropNoRoute, 0, int64(pkt.Len()))
		pkt.Release()
		return
	}
	phv.Deparse()
	base := netsim.Duration(TMLatencyNs) * netsim.Nanosecond
	for _, c := range copies {
		dup := pkt.Clone()
		dup.Meta.UID = sw.NextUID()
		dup.Meta.Replica = true
		dup.Meta.ReplicaID = c.Rid
		sw.trace.Emit(phv.TraceAt, obs.KindMcastCopy, dup.Meta.UID, "", int64(c.Port), int64(c.Rid))
		d := base
		if c.Rid != 0 {
			// Replication-engine latency applies to generated copies;
			// the rid-0 copy is the original continuing its path
			// (otherwise the recirculation loop could not sustain the
			// paper's 570 ns RTT while firing every arrival).
			d += netsim.Ns(McastDelayNs(dup.Len())) +
				sw.rngMcast.Jitter(McastJitterSpreadNs*netsim.Nanosecond)
		}
		sw.toEgress(dup, sw.Port(c.Port), d)
	}
	pkt.Release()
}

// toEgress schedules the egress pipeline for pkt on port after tmDelay.
func (sw *Switch) toEgress(pkt *netproto.Packet, port *Port, tmDelay netsim.Duration) {
	if port == nil {
		sw.NoRouteDrops++
		sw.trace.Emit(sw.sim.Now(), obs.KindDrop, pkt.Meta.UID, dropNoRoute, 0, int64(pkt.Len()))
		pkt.Release()
		return
	}
	sw.trace.Emit(sw.sim.Now(), obs.KindTMEnqueue, pkt.Meta.UID, "", int64(port.ID), int64(pkt.Len()))
	sw.sim.AfterCall(tmDelay, runEgressJob, sw.job(pkt, port))
}

// runEgress executes the egress pipeline for pkt bound to port, then hands
// the frame to the port after the egress+MAC latency. Called at traffic-
// manager completion time.
func (sw *Switch) runEgress(pkt *netproto.Packet, port *Port) {
	sw.trace.Emit(sw.sim.Now(), obs.KindTMDequeue, pkt.Meta.UID, "", int64(port.ID), int64(pkt.Len()))
	phv := sw.acquirePHV(pkt)
	phv.Trace, phv.TraceAt = sw.trace, sw.sim.Now()
	phv.EgressPort = port.ID
	sw.Egress.Run(phv)
	pkt.Meta = phv.Meta
	sw.takeDigest(phv)
	if phv.Drop {
		sw.PipelineDrops++
		sw.trace.Emit(phv.TraceAt, obs.KindDrop, pkt.Meta.UID, dropPipeline, 1, int64(pkt.Len()))
		sw.releasePHV(phv)
		pkt.Release()
		return
	}
	phv.Deparse()
	sw.releasePHV(phv)
	egressDelay := netsim.Duration(EgressLatencyNs+MACTxLatencyNs) * netsim.Nanosecond
	if port.Loopback {
		// Calibrated loop: apply the fractional correction plus
		// bounded jitter so measured RTTs match Fig. 14a.
		egressDelay -= netsim.Ns(pipeFixedSubNs)
		egressDelay += sw.rngLoop.Jitter(RTTJitterSpreadNs * netsim.Nanosecond / 2)
	}
	sw.sim.AfterCall(egressDelay, runTransmitJob, sw.job(pkt, port))
}

// DigestQueueLen reports messages currently queued on the digest channel
// (the pipeline-visible backpressure signal a learn filter provides).
func (sw *Switch) DigestQueueLen() int { return sw.digestQueue.Len() }

// takeDigest consumes a PHV's digest attachment at end of pipeline pass:
// the message is copied onto the digest channel, then the producer's buffer
// is handed back through its DigestFree callback. This is the one point a
// pooled attachment buffer is provably done with — producers must not infer
// consumption from later pipeline activity.
func (sw *Switch) takeDigest(phv *PHV) {
	if phv.DigestData == nil {
		return
	}
	sw.trace.Emit(phv.TraceAt, obs.KindDigest, phv.Meta.UID, "", int64(len(phv.DigestData)), 0)
	sw.emitDigest(phv.DigestData)
	if phv.DigestFree != nil {
		phv.DigestFree(phv.DigestData)
	}
	phv.DigestData = nil
	phv.DigestFree = nil
}

// emitDigest queues a generate_digest message on the PCIe channel towards
// the switch CPU. The channel is message-rate bound; overflow drops.
func (sw *Switch) emitDigest(data []byte) {
	if sw.DigestOut == nil {
		return
	}
	if sw.digestQueue.Len() >= digestMaxQueue {
		sw.DigestDrops++
		return
	}
	var msg []byte
	if n := len(sw.digestFree); n > 0 {
		msg = append(sw.digestFree[n-1][:0], data...)
		sw.digestFree[n-1] = nil
		sw.digestFree = sw.digestFree[:n-1]
	} else {
		msg = append([]byte(nil), data...)
	}
	sw.digestQueue.Push(msg)
	sw.scheduleDigest()
}

// recycleDigest returns a delivered message buffer to the freelist once the
// DigestOut callback has returned (the receiver's retention window is the
// call itself — see the DigestOut contract).
func (sw *Switch) recycleDigest(msg []byte) {
	sw.digestFree = append(sw.digestFree, msg)
}

// scheduleDigest arms the next channel delivery if one is not in flight.
func (sw *Switch) scheduleDigest() {
	if sw.digestDraining || sw.digestQueue.Len() == 0 {
		return
	}
	sw.digestDraining = true
	now := sw.sim.Now()
	start := sw.digestBusyUntil
	if start < now {
		start = now
	}
	end := start.Add(digestServiceTime)
	sw.digestBusyUntil = end
	sw.sim.AtCall(end, runDigestDrain, sw)
}

// runDigestDrain delivers the oldest queued digest at channel-service time.
func runDigestDrain(a any) {
	sw := a.(*Switch)
	sw.digestDraining = false
	if sw.digestQueue.Len() == 0 {
		return // flushed in the meantime
	}
	msg := sw.digestQueue.Pop()
	sw.DigestsSent++
	sw.DigestOut(msg, sw.sim.Now())
	sw.recycleDigest(msg)
	sw.scheduleDigest()
}

// FlushDigests synchronously delivers every queued digest message — the
// switch CPU reading out the learn buffer at collection time.
func (sw *Switch) FlushDigests() {
	now := sw.sim.Now()
	for sw.digestQueue.Len() > 0 {
		msg := sw.digestQueue.Pop()
		sw.DigestsSent++
		if sw.DigestOut != nil {
			sw.DigestOut(msg, now)
		}
		sw.recycleDigest(msg)
	}
}
