package obs

import (
	"fmt"
	"sort"
)

// Registry collects named metrics for one simulation run. It is not
// synchronized: registration and updates happen on the owning experiment's
// goroutine (each experiment builds its own Registry, mirroring how each
// builds its own Partition), and Snapshot is taken after the run completes.
type Registry struct {
	names    map[string]struct{}
	counters []*Counter
	gauges   []gauge
	hists    []*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) claim(name string) {
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = struct{}{}
}

// Counter is a monotonically increasing count.
type Counter struct {
	name string
	v    uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Counter registers and returns a new counter. Safe on a nil registry
// (returns a nil counter whose methods are no-ops), so instrumented code
// can hold counters unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.claim(name)
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

type gauge struct {
	name string
	fn   func() float64
}

// Gauge registers a read-on-snapshot gauge. The function is invoked only by
// Snapshot, never on the hot path, so closures are fine here.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.claim(name)
	r.gauges = append(r.gauges, gauge{name: name, fn: fn})
}

// Hist is a fixed-bin histogram over sim-time quantities (latencies in ns,
// queue depths, …). Out-of-range observations are clamped into the edge
// bins rather than silently dropped, and counted in Under/Over.
type Hist struct {
	name     string
	min, max float64
	width    float64
	counts   []uint64
	total    uint64
	under    uint64
	over     uint64
}

// Histogram registers a histogram with bins equal-width buckets across
// [min, max). It panics on degenerate shapes (bins<=0 or min>=max) —
// registration happens at wiring time, where a loud failure beats a
// silently empty metric. Safe on a nil registry.
func (r *Registry) Histogram(name string, min, max float64, bins int) *Hist {
	if r == nil {
		return nil
	}
	if bins <= 0 || !(min < max) {
		panic(fmt.Sprintf("obs: degenerate histogram %q [%g,%g) bins=%d", name, min, max, bins))
	}
	r.claim(name)
	h := &Hist{name: name, min: min, max: max, width: (max - min) / float64(bins), counts: make([]uint64, bins)}
	r.hists = append(r.hists, h)
	return h
}

// Observe records one sample. NaN samples are dropped. Safe on a nil Hist.
func (h *Hist) Observe(x float64) {
	if h == nil || x != x {
		return
	}
	h.total++
	idx := int((x - h.min) / h.width)
	switch {
	case x < h.min:
		h.under++
		idx = 0
	case x >= h.max || idx >= len(h.counts):
		if x >= h.max {
			h.over++
		}
		idx = len(h.counts) - 1
	case idx < 0:
		idx = 0
	}
	h.counts[idx]++
}

// Total returns the number of samples observed (including clamped ones).
func (h *Hist) Total() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Snapshot returns all metric values keyed by name. Counters marshal as
// integers, gauges as floats, histograms as {min,max,total,under,over,
// counts}. encoding/json sorts map keys, so a marshaled snapshot is
// deterministic; SortedNames is provided for text output.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, c := range r.counters {
		out[c.name] = c.v
	}
	for _, g := range r.gauges {
		out[g.name] = g.fn()
	}
	for _, h := range r.hists {
		out[h.name] = map[string]any{
			"min":    h.min,
			"max":    h.max,
			"total":  h.total,
			"under":  h.under,
			"over":   h.over,
			"counts": h.counts,
		}
	}
	return out
}

// SortedNames returns every registered metric name in lexical order.
func (r *Registry) SortedNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.names))
	for n := range r.names {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
