package obs

import "github.com/hypertester/hypertester/internal/netsim"

// DescribeSim registers snapshot gauges for one Sim's scheduler under
// prefix: pending/due/overflow event counts and occupied wheel buckets.
// Gauges read WheelStats lazily at Snapshot time, so registration costs
// nothing during the run.
func DescribeSim(r *Registry, prefix string, s *netsim.Sim) {
	if r == nil || s == nil {
		return
	}
	r.Gauge(prefix+".events_pending", func() float64 { return float64(s.WheelStats().Pending) })
	r.Gauge(prefix+".events_due", func() float64 { return float64(s.WheelStats().Due) })
	r.Gauge(prefix+".events_overflow", func() float64 { return float64(s.WheelStats().Overflow) })
	r.Gauge(prefix+".wheel_buckets", func() float64 { return float64(s.WheelStats().Buckets) })
	r.Gauge(prefix+".executed", func() float64 { return float64(s.Executed) })
}

// DescribeEngine registers gauges for the LP engine under prefix: epoch
// count, last LBTS, and per-LP executed/sent/received/stall counters (keyed
// by LP name). Call after the engine topology is built; the gauges read
// Engine.Stats at Snapshot time, which requires the engine to be quiescent.
func DescribeEngine(r *Registry, prefix string, e *netsim.Engine) {
	if r == nil || e == nil {
		return
	}
	r.Gauge(prefix+".workers", func() float64 { return float64(e.Stats().Workers) })
	r.Gauge(prefix+".epochs", func() float64 { return float64(e.Stats().Epochs) })
	r.Gauge(prefix+".lbts_ns", func() float64 { return e.Stats().LBTS.Nanoseconds() })
	for i, lp := range e.Stats().LPs {
		idx := i
		base := prefix + ".lp." + lp.Name
		r.Gauge(base+".executed", func() float64 { return float64(e.Stats().LPs[idx].Executed) })
		r.Gauge(base+".sent", func() float64 { return float64(e.Stats().LPs[idx].Sent) })
		r.Gauge(base+".received", func() float64 { return float64(e.Stats().LPs[idx].Received) })
		r.Gauge(base+".stalls", func() float64 { return float64(e.Stats().LPs[idx].Stalls) })
	}
}
