package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"strconv"
)

// WriteCanonical writes the merged trace as one line per record:
//
//	<at_ps> <dev> <kind> <uid> <label> <arg> <arg2>\n
//
// The encoding is the trace oracle's comparison format: two runs are
// equivalent iff their canonical dumps are byte-identical. Fields are
// space-separated; labels are emitted verbatim (they are interned
// identifiers and never contain whitespace).
func (s *TraceSet) WriteCanonical(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, r := range s.Merged() {
		line = line[:0]
		line = strconv.AppendInt(line, int64(r.At), 10)
		line = append(line, ' ')
		line = append(line, r.Dev...)
		line = append(line, ' ')
		line = append(line, r.Kind.String()...)
		line = append(line, ' ')
		line = strconv.AppendUint(line, r.UID, 10)
		line = append(line, ' ')
		if r.Label == "" {
			line = append(line, '-')
		} else {
			line = append(line, r.Label...)
		}
		line = append(line, ' ')
		line = strconv.AppendInt(line, r.Arg, 10)
		line = append(line, ' ')
		line = strconv.AppendInt(line, r.Arg2, 10)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Canonical returns the canonical dump as a string (convenience for tests).
func (s *TraceSet) Canonical() string {
	var b bytes.Buffer
	s.WriteCanonical(&b)
	return b.String()
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// loadable by Perfetto and chrome://tracing.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the merged trace as Chrome trace-event JSON.
// Each device stream becomes a process (pid = rank, named via a
// process_name metadata event); each packet UID becomes a thread within it,
// so Perfetto renders one lane per packet lifecycle. Timestamps are
// sim-time microseconds with sub-ns precision preserved by the float.
func (s *TraceSet) WriteChromeTrace(w io.Writer) error {
	merged := s.Merged()
	events := make([]chromeEvent, 0, len(merged)+len(s.traces))
	for _, t := range s.traces {
		events = append(events, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   t.rank,
			Args:  map[string]any{"name": t.dev},
		})
	}
	for _, r := range merged {
		name := r.Kind.String()
		if r.Label != "" {
			name = r.Label
		}
		events = append(events, chromeEvent{
			Name:  name,
			Phase: "i",
			TS:    float64(r.At) / 1e6, // ps → µs
			PID:   r.Rank,
			TID:   r.UID,
			Scope: "t",
			Args: map[string]any{
				"kind": r.Kind.String(),
				"uid":  r.UID,
				"arg":  r.Arg,
				"arg2": r.Arg2,
			},
		})
	}
	doc := struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}{
		DisplayTimeUnit: "ns",
		TraceEvents:     events,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
