// Package obs is the simulator's observability layer: per-packet lifecycle
// traces recorded against sim-time, and a metrics registry for counters,
// gauges and sim-time histograms.
//
// # Determinism contract
//
// Trace records are only ever emitted from code that executes at the same
// virtual instant, in the same per-device order, under both the sequential
// and the parallel (LP) engines. Each traced device owns one Trace stream;
// a TraceSet assigns every stream a rank in creation order and merges
// streams by (At, rank), preserving per-stream emission order for equal
// keys. Because the LP engine replays exactly the per-device event sequence
// of the sequential engine (see DESIGN.md §10), the merged trace — and its
// Canonical() byte encoding — is bit-identical at any worker count. The
// differential tests in internal/experiments diff full canonical traces at
// simworkers 1 vs 4 and fail on the first diverging byte.
//
// # Disabled-path cost contract
//
// Emit is nil-receiver-safe: a disabled device holds a nil *Trace and every
// Emit callsite reduces to one predictable branch. Callsites must pass only
// already-materialized scalars and interned strings (table names, fixed
// labels) so the disabled path performs zero allocations; the htlint
// obsalloc analyzer enforces this statically and
// TestDisabledTracingZeroAllocs enforces it empirically.
package obs

import "github.com/hypertester/hypertester/internal/netsim"

// Kind identifies a packet-lifecycle stage.
type Kind uint8

const (
	// KindParse marks a frame entering the ingress parser. Arg = ingress
	// port, Arg2 = frame length.
	KindParse Kind = 1 + iota
	// KindTableHit records a match-table hit. Label = table name.
	KindTableHit
	// KindTableMiss records a match-table miss. Label = table name.
	KindTableMiss
	// KindSALU records a stateful-ALU register access. Label = register
	// array name, Arg = cell index, Arg2 = the value read or written.
	KindSALU
	// KindTMEnqueue marks handoff to the traffic manager. Arg = egress port.
	KindTMEnqueue
	// KindTMDequeue marks the egress pipeline starting on a frame after the
	// traffic-manager delay. Arg = egress port.
	KindTMDequeue
	// KindMcastCopy records one replication-engine copy. Arg = egress port,
	// Arg2 = replica id (rid).
	KindMcastCopy
	// KindRecirculate marks a frame re-entering ingress via a recirculation
	// path. Arg = recirculation port.
	KindRecirculate
	// KindDeparse marks header write-back at deparse. Arg = dirty-field
	// mask, Arg2 = frame length.
	KindDeparse
	// KindDigest records a digest emitted toward the CPU. Arg = digest
	// length in bytes.
	KindDigest
	// KindDrop records a dropped frame. Label = drop reason.
	KindDrop
	// KindWireTx marks the last bit of a frame leaving a port (end of wire
	// serialization). Arg = port, Arg2 = frame length.
	KindWireTx
	// KindWireRx marks a frame arriving at a host interface. Arg = source
	// port on the delivering device, Arg2 = frame length.
	KindWireRx

	kindCount
)

var kindNames = [kindCount]string{
	KindParse:       "parse",
	KindTableHit:    "table_hit",
	KindTableMiss:   "table_miss",
	KindSALU:        "salu",
	KindTMEnqueue:   "tm_enq",
	KindTMDequeue:   "tm_deq",
	KindMcastCopy:   "mcast_copy",
	KindRecirculate: "recirculate",
	KindDeparse:     "deparse",
	KindDigest:      "digest",
	KindDrop:        "drop",
	KindWireTx:      "wire_tx",
	KindWireRx:      "wire_rx",
}

// String returns the canonical stage name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Record is one trace event. Label must be an interned string (a table or
// register name, or a package-level constant) — emitters never build labels
// per packet.
type Record struct {
	At   netsim.Time
	Kind Kind
	UID  uint64
	// Label names the object involved (table, register, drop reason).
	Label string
	// Arg, Arg2 are kind-specific scalars; see the Kind docs.
	Arg  int64
	Arg2 int64
}

// Trace is one device's record stream. The zero value is unusable; obtain
// traces from TraceSet.New. A nil *Trace is the disabled state: Emit on it
// is a no-op costing one branch.
type Trace struct {
	dev  string
	rank int
	recs []Record
	// limit caps len(recs); 0 means unlimited. The cap is count-based so
	// that truncation is deterministic across engines.
	limit   int
	dropped uint64
}

// Emit appends one record. Safe on a nil receiver (tracing disabled).
func (t *Trace) Emit(at netsim.Time, k Kind, uid uint64, label string, arg, arg2 int64) {
	if t == nil {
		return
	}
	if t.limit > 0 && len(t.recs) >= t.limit {
		t.dropped++
		return
	}
	t.recs = append(t.recs, Record{At: at, Kind: k, UID: uid, Label: label, Arg: arg, Arg2: arg2})
}

// Device returns the device name the stream was created for.
func (t *Trace) Device() string {
	if t == nil {
		return ""
	}
	return t.dev
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.recs)
}

// Dropped returns how many events were discarded by the record cap.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Records returns the raw stream in emission order. The slice is owned by
// the trace; callers must not mutate it.
func (t *Trace) Records() []Record {
	if t == nil {
		return nil
	}
	return t.recs
}

// TraceSet owns the per-device streams of one simulation run. Stream rank —
// and therefore merge order — is assigned by New in call order, so wiring
// code must create traces in a deterministic device order (the experiment
// harness creates them in topology order).
type TraceSet struct {
	traces []*Trace
	limit  int
}

// NewTraceSet returns an empty set whose streams are unlimited.
func NewTraceSet() *TraceSet { return &TraceSet{} }

// SetLimit caps each subsequently created stream at n records (0 = no cap).
// The cap counts records, not bytes, so truncation points are identical
// across engines.
func (s *TraceSet) SetLimit(n int) { s.limit = n }

// New creates the stream for device dev and assigns it the next rank.
func (s *TraceSet) New(dev string) *Trace {
	t := &Trace{dev: dev, rank: len(s.traces), limit: s.limit}
	s.traces = append(s.traces, t)
	return t
}

// Traces returns the streams in rank order.
func (s *TraceSet) Traces() []*Trace { return s.traces }

// Len returns the total number of records across all streams.
func (s *TraceSet) Len() int {
	n := 0
	for _, t := range s.traces {
		n += len(t.recs)
	}
	return n
}

// Dropped returns the total number of cap-discarded records.
func (s *TraceSet) Dropped() uint64 {
	var n uint64
	for _, t := range s.traces {
		n += t.dropped
	}
	return n
}

// MergedRecord is a Record tagged with its originating stream.
type MergedRecord struct {
	Record
	Dev  string
	Rank int
}

// Merged returns all records ordered by (At, rank), with per-stream
// emission order preserved among equal keys. The ordering key is total and
// engine-independent, so the merged sequence is bit-identical between the
// sequential and parallel engines.
func (s *TraceSet) Merged() []MergedRecord {
	out := make([]MergedRecord, 0, s.Len())
	for _, t := range s.traces {
		for _, r := range t.recs {
			out = append(out, MergedRecord{Record: r, Dev: t.dev, Rank: t.rank})
		}
	}
	// Insertion order is (rank, emission index); a stable sort on (At,
	// rank) therefore preserves emission order within each stream.
	stableSortMerged(out)
	return out
}

// stableSortMerged stable-sorts by (At, Rank) using a bottom-up merge sort
// (sort.SliceStable would work too; this avoids the interface shim on what
// can be a multi-million-record slice).
func stableSortMerged(rs []MergedRecord) {
	n := len(rs)
	if n < 2 {
		return
	}
	buf := make([]MergedRecord, n)
	src, dst := rs, buf
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &rs[0] {
		copy(rs, src)
	}
}

func mergeRuns(dst, a, b []MergedRecord) {
	i, j := 0, 0
	for k := range dst {
		switch {
		case i >= len(a):
			dst[k] = b[j]
			j++
		case j >= len(b):
			dst[k] = a[i]
			i++
		case mergedLess(&b[j], &a[i]):
			dst[k] = b[j]
			j++
		default:
			dst[k] = a[i]
			i++
		}
	}
}

func mergedLess(x, y *MergedRecord) bool {
	if x.At != y.At {
		return x.At < y.At
	}
	return x.Rank < y.Rank
}
