package obs

import (
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/hypertester/hypertester/internal/netsim"
)

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	tr.Emit(1, KindParse, 7, "x", 1, 2) // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Device() != "" || tr.Records() != nil {
		t.Fatal("nil trace accessors must be zero")
	}
}

func TestEmitDisabledZeroAllocs(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(42, KindTableHit, 9, "tbl", 3, 4)
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocated %v allocs/op, want 0", allocs)
	}
}

func TestTraceLimit(t *testing.T) {
	s := NewTraceSet()
	s.SetLimit(3)
	tr := s.New("dev")
	for i := 0; i < 10; i++ {
		tr.Emit(netsim.Time(i), KindParse, uint64(i), "", 0, 0)
	}
	if tr.Len() != 3 || tr.Dropped() != 7 || s.Dropped() != 7 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestMergedOrderAndStability(t *testing.T) {
	s := NewTraceSet()
	a := s.New("a")
	b := s.New("b")
	// Same timestamps across devices; multiple records per instant per
	// device to exercise stability.
	for i := 0; i < 4; i++ {
		at := netsim.Time(i / 2) // 0,0,1,1
		b.Emit(at, KindParse, uint64(100+i), "", 0, 0)
		a.Emit(at, KindParse, uint64(i), "", 0, 0)
	}
	m := s.Merged()
	if len(m) != 8 {
		t.Fatalf("merged %d records", len(m))
	}
	// Expect per-instant: all of a's records (rank 0) before b's, each in
	// emission order.
	for i := 1; i < len(m); i++ {
		p, q := m[i-1], m[i]
		if q.At < p.At {
			t.Fatalf("merge not sorted by At at %d", i)
		}
		if q.At == p.At {
			if q.Rank < p.Rank {
				t.Fatalf("merge tie not broken by rank at %d", i)
			}
			if q.Rank == p.Rank && q.UID < p.UID {
				t.Fatalf("merge not stable within stream at %d", i)
			}
		}
	}
}

// The hand-rolled stable merge sort must agree with sort.SliceStable on
// random inputs.
func TestStableSortMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		got := make([]MergedRecord, n)
		for i := range got {
			got[i] = MergedRecord{
				Record: Record{At: netsim.Time(rng.Intn(10)), UID: uint64(i)},
				Rank:   rng.Intn(4),
			}
		}
		want := append([]MergedRecord(nil), got...)
		sort.SliceStable(want, func(i, j int) bool { return mergedLess(&want[i], &want[j]) })
		stableSortMerged(got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d: got %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestCanonicalFormat(t *testing.T) {
	s := NewTraceSet()
	tr := s.New("sw0")
	tr.Emit(1500, KindTableHit, 42, "l2fwd", 3, 0)
	tr.Emit(2000, KindDrop, 42, "noroute", 0, 64)
	got := s.Canonical()
	want := "1500 sw0 table_hit 42 l2fwd 3 0\n2000 sw0 drop 42 noroute 0 64\n"
	if got != want {
		t.Fatalf("canonical:\n%q\nwant:\n%q", got, want)
	}
}

func TestChromeTraceExport(t *testing.T) {
	s := NewTraceSet()
	tr := s.New("sw0")
	tr.Emit(1_000_000, KindParse, 7, "", 1, 64) // 1 µs
	var b strings.Builder
	if err := s.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			PID   int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 2 { // process_name metadata + 1 instant
		t.Fatalf("%d events", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Phase != "M" || doc.TraceEvents[1].Phase != "i" {
		t.Fatalf("phases %q %q", doc.TraceEvents[0].Phase, doc.TraceEvents[1].Phase)
	}
	if doc.TraceEvents[1].TS != 1.0 {
		t.Fatalf("ts = %v µs, want 1", doc.TraceEvents[1].TS)
	}
}

func TestRegistryCountersGaugesHists(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts")
	c.Add(3)
	c.Inc()
	g := 2.5
	r.Gauge("depth", func() float64 { return g })
	h := r.Histogram("lat_ns", 0, 100, 10)
	h.Observe(5)
	h.Observe(99.999999)
	h.Observe(-1)  // clamps into bin 0, counted under
	h.Observe(100) // clamps into last bin, counted over
	snap := r.Snapshot()
	if snap["pkts"].(uint64) != 4 {
		t.Fatalf("counter %v", snap["pkts"])
	}
	if snap["depth"].(float64) != 2.5 {
		t.Fatalf("gauge %v", snap["depth"])
	}
	hm := snap["lat_ns"].(map[string]any)
	if hm["total"].(uint64) != 4 || hm["under"].(uint64) != 1 || hm["over"].(uint64) != 1 {
		t.Fatalf("hist %v", hm)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
	names := r.SortedNames()
	if len(names) != 3 || names[0] != "depth" || names[1] != "lat_ns" || names[2] != "pkts" {
		t.Fatalf("names %v", names)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(1)
	r.Gauge("y", func() float64 { return 0 })
	h := r.Histogram("z", 0, 1, 2)
	h.Observe(0.5)
	if c.Value() != 0 || h.Total() != 0 || r.Snapshot() != nil || r.SortedNames() != nil {
		t.Fatal("nil registry must be inert")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Counter("x")
}

func TestHistEdgeRounding(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 0, 0.1, 3)
	// The adversarial value whose bin index rounds to exactly bins.
	h.Observe(0.09999999999999999)
	if h.Total() != 1 {
		t.Fatal("sample lost")
	}
}

func TestDescribeSimAndEngine(t *testing.T) {
	r := NewRegistry()
	s := netsim.New()
	s.After(10, func() {})
	DescribeSim(r, "sim", s)
	snap := r.Snapshot()
	if snap["sim.events_pending"].(float64) != 1 {
		t.Fatalf("pending gauge %v", snap["sim.events_pending"])
	}

	e := netsim.NewEngine(2)
	a := e.NewLP("a")
	b := e.NewLP("b")
	e.Channel(a, b, 10)
	n := 0
	a.At(5, func() { n++ })
	b.At(7, func() { n++ })
	r2 := NewRegistry()
	DescribeEngine(r2, "eng", e)
	e.RunUntil(100)
	snap2 := r2.Snapshot()
	if snap2["eng.workers"].(float64) != 2 {
		t.Fatalf("workers %v", snap2["eng.workers"])
	}
	if snap2["eng.epochs"].(float64) < 1 {
		t.Fatalf("epochs %v", snap2["eng.epochs"])
	}
	if snap2["eng.lp.a.executed"].(float64) != 1 || snap2["eng.lp.b.executed"].(float64) != 1 {
		t.Fatalf("lp executed gauges: %v %v", snap2["eng.lp.a.executed"], snap2["eng.lp.b.executed"])
	}
}
