package verify

import (
	"fmt"
	"strings"
	"testing"

	"github.com/hypertester/hypertester/internal/p4ir"
)

// oneEntryTable builds a meta.one-gated table running act, the generator's
// always-on shape.
func oneEntryTable(p *p4ir.Program, name string, pipe p4ir.PipelineKind, act string) {
	p.AddTable(&p4ir.TableDef{
		Name: name, Pipeline: pipe, Match: p4ir.MatchExact,
		Keys:    []p4ir.KeyDef{{Field: "meta.one", Bits: 1}},
		Actions: []string{act}, Size: 1,
		Entries: []p4ir.Entry{{Values: []uint64{1}}},
	})
}

func hasDiag(r *Report, check string, frag string) bool {
	for _, d := range r.Diagnostics {
		if d.Check == check && strings.Contains(d.Message+d.Site, frag) {
			return true
		}
	}
	return false
}

func countDiag(r *Report, check string) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Check == check {
			n++
		}
	}
	return n
}

// Negative 1: an action writes a TCP field on a program whose packets can
// be UDP-only — the path through the udp parse branch reaches the write.
func TestInvalidHeaderWrite(t *testing.T) {
	p := &p4ir.Program{
		Name:    "invwrite",
		Headers: []string{"ethernet", "ipv4", "udp"},
		Parser: []p4ir.ParserEdge{
			{From: "ethernet", To: "ipv4"}, {From: "ipv4", To: "udp"},
		},
	}
	p.AddAction(&p4ir.ActionDef{Name: "mark", Ops: []p4ir.Op{
		{Kind: p4ir.OpModifyField, Dst: "tcp.sport", Src: "80", Bits: 16},
	}})
	oneEntryTable(p, "marker", p4ir.PipeIngress, "mark")
	p.Ingress = []p4ir.ControlStmt{{
		If:   "ipv4.proto == 17",
		Then: []p4ir.ControlStmt{{Apply: "marker"}},
	}}
	r := Analyze(p, Options{})
	if !hasDiag(r, CheckInvalidAccess, "tcp.sport") {
		t.Fatalf("missing invalid-header diagnostic; got %v", r.Diagnostics)
	}
	if len(r.Errors()) == 0 {
		t.Fatal("invalid-header access must be error severity")
	}
}

// The same write is safe when the gateway proves the TCP header present.
func TestValidHeaderWriteClean(t *testing.T) {
	p := &p4ir.Program{
		Name:    "okwrite",
		Headers: []string{"ethernet", "ipv4", "tcp"},
		Parser: []p4ir.ParserEdge{
			{From: "ethernet", To: "ipv4"}, {From: "ipv4", To: "tcp"},
		},
	}
	p.AddAction(&p4ir.ActionDef{Name: "mark", Ops: []p4ir.Op{
		{Kind: p4ir.OpModifyField, Dst: "tcp.sport", Src: "80", Bits: 16},
	}})
	oneEntryTable(p, "marker", p4ir.PipeIngress, "mark")
	p.Ingress = []p4ir.ControlStmt{{
		If:   "ipv4.proto == 6",
		Then: []p4ir.ControlStmt{{Apply: "marker"}},
	}}
	r := Analyze(p, Options{})
	if n := countDiag(r, CheckInvalidAccess); n != 0 {
		t.Fatalf("false positive: %v", r.Diagnostics)
	}
}

// Negative 2: duplicate exact entries — the second is shadowed and dead.
func TestShadowedAndDeadEntries(t *testing.T) {
	p := &p4ir.Program{Name: "shadow", Headers: []string{"ethernet"}}
	p.AddAction(&p4ir.ActionDef{Name: "a", Ops: []p4ir.Op{{Kind: p4ir.OpNoOp}}})
	p.AddAction(&p4ir.ActionDef{Name: "b", Ops: []p4ir.Op{{Kind: p4ir.OpNoOp}}})
	p.AddTable(&p4ir.TableDef{
		Name: "dup", Pipeline: p4ir.PipeIngress, Match: p4ir.MatchExact,
		Keys:    []p4ir.KeyDef{{Field: "meta.sel", Bits: 8}},
		Actions: []string{"a", "b"}, Size: 4,
		Entries: []p4ir.Entry{
			{Values: []uint64{5}, Action: "a"},
			{Values: []uint64{5}, Action: "b"}, // unreachable duplicate
			{Values: []uint64{9}, Action: "a"},
		},
	})
	p.Ingress = []p4ir.ControlStmt{{Apply: "dup"}}
	r := Analyze(p, Options{})
	if !hasDiag(r, CheckShadowed, "entry 1") {
		t.Fatalf("missing shadowed-entry diagnostic; got %v", r.Diagnostics)
	}
	if !hasDiag(r, CheckDeadEntry, "entry 1") {
		t.Fatalf("missing dead-entry diagnostic; got %v", r.Diagnostics)
	}
	if hasDiag(r, CheckDeadEntry, "entry 2") {
		t.Fatalf("entry 2 is live; got %v", r.Diagnostics)
	}
}

// Ternary cover: a higher-priority wildcard entry shadows a specific one.
func TestTernaryShadow(t *testing.T) {
	p := &p4ir.Program{Name: "tshadow", Headers: []string{"ethernet"}}
	p.AddAction(&p4ir.ActionDef{Name: "a", Ops: []p4ir.Op{{Kind: p4ir.OpNoOp}}})
	p.AddTable(&p4ir.TableDef{
		Name: "tern", Pipeline: p4ir.PipeIngress, Match: p4ir.MatchTernary,
		Keys:    []p4ir.KeyDef{{Field: "meta.sel", Bits: 8}},
		Actions: []string{"a"}, Size: 4,
		Entries: []p4ir.Entry{
			{Values: []uint64{0}, Masks: []uint64{0}, Priority: 10},   // catch-all
			{Values: []uint64{7}, Masks: []uint64{0xFF}, Priority: 1}, // shadowed
		},
	})
	p.Ingress = []p4ir.ControlStmt{{Apply: "tern"}}
	r := Analyze(p, Options{})
	if !hasDiag(r, CheckShadowed, "entry 1") {
		t.Fatalf("missing ternary shadow; got %v", r.Diagnostics)
	}
}

// Negative 3: contradictory nested gateways make the inner table
// unreachable and the inner then-branch infeasible.
func TestUnreachableTable(t *testing.T) {
	p := &p4ir.Program{Name: "unreach", Headers: []string{"ethernet"}}
	p.AddAction(&p4ir.ActionDef{Name: "a", Ops: []p4ir.Op{{Kind: p4ir.OpNoOp}}})
	oneEntryTable(p, "inner", p4ir.PipeIngress, "a")
	p.Ingress = []p4ir.ControlStmt{{
		If: "meta.template_id == 1",
		Then: []p4ir.ControlStmt{{
			If:   "meta.template_id == 2",
			Then: []p4ir.ControlStmt{{Apply: "inner"}},
		}},
	}}
	r := Analyze(p, Options{})
	if !hasDiag(r, CheckUnreachable, "inner") {
		t.Fatalf("missing unreachable-table diagnostic; got %v", r.Diagnostics)
	}
	if !hasDiag(r, CheckGateway, "meta.template_id == 2") {
		t.Fatalf("missing infeasible-gateway diagnostic; got %v", r.Diagnostics)
	}
}

// Negative 4: two tables touch one register under overlapping guards; the
// joint path meta.x in [2,5] fires both SALUs in one pass.
func TestSALUConflictOnJointPath(t *testing.T) {
	p := salupair("meta.x >= 2", "meta.x <= 5")
	r := Analyze(p, Options{})
	if !r.HasSALUConflict("r", "t1", "t2") {
		t.Fatalf("missing SALU conflict; got %+v", r.SALUConflicts)
	}
	if countDiag(r, CheckSALU) == 0 {
		t.Fatal("conflict must surface as an error diagnostic")
	}
}

// Numerically disjoint guards the syntactic heuristic cannot prove apart:
// the path walker shows no joint path exists, so no conflict.
func TestSALUDisjointGuardsClean(t *testing.T) {
	p := salupair("meta.x < 2", "meta.x > 5")
	r := Analyze(p, Options{})
	if r.HasSALUConflict("r", "t1", "t2") {
		t.Fatalf("false conflict on disjoint guards: %+v", r.SALUConflicts)
	}
	if countDiag(r, CheckSALU) != 0 {
		t.Fatalf("false SALU diagnostic: %v", r.Diagnostics)
	}
}

func salupair(g1, g2 string) *p4ir.Program {
	p := &p4ir.Program{Name: "salu", Headers: []string{"ethernet"}}
	p.AddRegister(&p4ir.RegisterDef{Name: "r", Width: 32, Size: 1})
	p.AddAction(&p4ir.ActionDef{Name: "a1", Ops: []p4ir.Op{
		{Kind: p4ir.OpRegisterRMW, Dst: "r", Src: "prog-one", Bits: 32},
	}})
	p.AddAction(&p4ir.ActionDef{Name: "a2", Ops: []p4ir.Op{
		{Kind: p4ir.OpRegisterRMW, Dst: "r", Src: "prog-two", Bits: 32},
	}})
	oneEntryTable(p, "t1", p4ir.PipeIngress, "a1")
	oneEntryTable(p, "t2", p4ir.PipeIngress, "a2")
	p.Ingress = []p4ir.ControlStmt{
		{If: g1, Then: []p4ir.ControlStmt{{Apply: "t1"}}},
		{If: g2, Then: []p4ir.ControlStmt{{Apply: "t2"}}},
	}
	return p
}

// The same register touched in ingress and egress is two pipeline passes,
// not a conflict.
func TestSALUAcrossPipelinesClean(t *testing.T) {
	p := &p4ir.Program{Name: "xpipe", Headers: []string{"ethernet"}}
	p.AddRegister(&p4ir.RegisterDef{Name: "r", Width: 32, Size: 1})
	p.AddAction(&p4ir.ActionDef{Name: "a1", Ops: []p4ir.Op{
		{Kind: p4ir.OpRegisterRMW, Dst: "r", Src: "push", Bits: 32},
	}})
	p.AddAction(&p4ir.ActionDef{Name: "a2", Ops: []p4ir.Op{
		{Kind: p4ir.OpRegisterRMW, Dst: "r", Src: "pop", Bits: 32},
	}})
	oneEntryTable(p, "t1", p4ir.PipeIngress, "a1")
	oneEntryTable(p, "t2", p4ir.PipeEgress, "a2")
	p.Ingress = []p4ir.ControlStmt{{Apply: "t1"}}
	p.Egress = []p4ir.ControlStmt{{Apply: "t2"}}
	r := Analyze(p, Options{})
	if countDiag(r, CheckSALU) != 0 {
		t.Fatalf("cross-pipeline access misflagged: %v", r.Diagnostics)
	}
}

// Negative 5: recirculation with no strictly-increasing loop state has no
// termination proof.
func TestRecircWithoutLoopState(t *testing.T) {
	p := recircProg("push")
	r := Analyze(p, Options{})
	if !hasDiag(r, CheckRecirc, "termination") {
		t.Fatalf("missing recirc diagnostic; got %v", r.Diagnostics)
	}
}

// The accelerator shape — "+1" before recirculating — proves termination.
func TestRecircWithIncrementClean(t *testing.T) {
	p := recircProg("+1")
	r := Analyze(p, Options{})
	if countDiag(r, CheckRecirc) != 0 {
		t.Fatalf("false recirc diagnostic: %v", r.Diagnostics)
	}
}

func recircProg(salu string) *p4ir.Program {
	p := &p4ir.Program{Name: "recirc", Headers: []string{"ethernet"}}
	p.AddRegister(&p4ir.RegisterDef{Name: "loop", Width: 32, Size: 1})
	p.AddAction(&p4ir.ActionDef{Name: "again", Ops: []p4ir.Op{
		{Kind: p4ir.OpRegisterRMW, Dst: "loop", Src: salu, Bits: 32},
		{Kind: p4ir.OpRecirculate, Dst: "recirc_port"},
	}})
	oneEntryTable(p, "looper", p4ir.PipeIngress, "again")
	p.Ingress = []p4ir.ControlStmt{{
		If:   "meta.template_id != 0",
		Then: []p4ir.ControlStmt{{Apply: "looper"}},
	}}
	return p
}

// Negative 6: a gateway comparing an 8-bit field against 300 can never
// take its then-branch.
func TestInfeasibleGateway(t *testing.T) {
	p := &p4ir.Program{
		Name:    "gw",
		Headers: []string{"ethernet", "ipv4"},
		Parser:  []p4ir.ParserEdge{{From: "ethernet", To: "ipv4"}},
	}
	p.AddAction(&p4ir.ActionDef{Name: "a", Ops: []p4ir.Op{{Kind: p4ir.OpNoOp}}})
	oneEntryTable(p, "t", p4ir.PipeIngress, "a")
	p.Ingress = []p4ir.ControlStmt{{
		If:   "ipv4.ttl > 300",
		Then: []p4ir.ControlStmt{{Apply: "t"}},
	}}
	r := Analyze(p, Options{})
	if !hasDiag(r, CheckGateway, "ipv4.ttl > 300") {
		t.Fatalf("missing infeasible-gateway diagnostic; got %v", r.Diagnostics)
	}
	if !hasDiag(r, CheckUnreachable, "t") {
		t.Fatalf("table under an infeasible gateway is unreachable; got %v", r.Diagnostics)
	}
}

// Template invariants kill the false positive the path-insensitive view
// would report: the editor writes tcp.sport under meta.template_id == 1,
// and the invariant ties template 1 to TCP packets.
func TestInvariantsSuppressFalsePositive(t *testing.T) {
	p := &p4ir.Program{
		Name:    "inv",
		Headers: []string{"ethernet", "ipv4", "tcp", "udp"},
		Parser: []p4ir.ParserEdge{
			{From: "ethernet", To: "ipv4"},
			{From: "ipv4", To: "tcp"}, {From: "ipv4", To: "udp"},
		},
	}
	p.AddAction(&p4ir.ActionDef{Name: "edit", Ops: []p4ir.Op{
		{Kind: p4ir.OpModifyField, Dst: "tcp.sport", Src: "1234", Bits: 16},
	}})
	p.AddTable(&p4ir.TableDef{
		Name: "editor", Pipeline: p4ir.PipeEgress, Match: p4ir.MatchExact,
		Keys:    []p4ir.KeyDef{{Field: "meta.template_id", Bits: 16}},
		Actions: []string{"edit"}, Size: 1,
		Entries: []p4ir.Entry{{Values: []uint64{1}}},
	})
	p.Egress = []p4ir.ControlStmt{{
		If:   "meta.template_id == 1 and eg_intr_md.rid != 0",
		Then: []p4ir.ControlStmt{{Apply: "editor"}},
	}}
	inv := []Implication{{
		If: p4ir.Atom{Field: "meta.template_id", Op: p4ir.CmpEq, Value: 1},
		Then: []p4ir.Atom{
			{Field: "eth.type", Op: p4ir.CmpEq, Value: 0x0800},
			{Field: "ipv4.proto", Op: p4ir.CmpEq, Value: 6},
		},
	}}

	// Without the invariant the UDP parse path reaches the editor.
	r := Analyze(p, Options{})
	if !hasDiag(r, CheckInvalidAccess, "tcp.sport") {
		t.Fatalf("path-insensitive run should flag the write; got %v", r.Diagnostics)
	}
	// With it, only TCP packets carry template 1: clean.
	r = Analyze(p, Options{Invariants: inv})
	if n := countDiag(r, CheckInvalidAccess); n != 0 {
		t.Fatalf("invariant did not suppress the false positive: %v", r.Diagnostics)
	}
}

// Witness extraction: a feasible leaf through the tcp.sport == 80 filter
// yields a concrete TCP packet with that port.
func TestWitnessExtraction(t *testing.T) {
	p := &p4ir.Program{
		Name:    "wit",
		Headers: []string{"ethernet", "ipv4", "tcp"},
		Parser: []p4ir.ParserEdge{
			{From: "ethernet", To: "ipv4"}, {From: "ipv4", To: "tcp"},
		},
	}
	p.AddAction(&p4ir.ActionDef{Name: "count", Ops: []p4ir.Op{
		{Kind: p4ir.OpRegisterRMW, Dst: "c", Src: "+1", Bits: 64},
	}})
	p.AddRegister(&p4ir.RegisterDef{Name: "c", Width: 64, Size: 1})
	oneEntryTable(p, "capture", p4ir.PipeIngress, "count")
	p.Ingress = []p4ir.ControlStmt{{
		If:   "tcp.sport == 80",
		Then: []p4ir.ControlStmt{{Apply: "capture"}},
	}}
	r := Analyze(p, Options{Witnesses: true})
	if len(r.Witnesses) == 0 {
		t.Fatal("no witnesses extracted")
	}
	found := false
	for _, w := range r.Witnesses {
		hasTCP := false
		for _, h := range w.Headers {
			hasTCP = hasTCP || h == "tcp"
		}
		if hasTCP && w.Fields["tcp.sport"] == 80 {
			found = true
		}
		// Every witness must be internally consistent with its headers.
		for name := range w.Fields {
			if hdr := headerOf(name); hdr != "" && hdr != "l4" {
				ok := false
				for _, h := range w.Headers {
					ok = ok || h == hdr
				}
				if !ok {
					t.Fatalf("witness field %s of header %s not in stack %v", name, hdr, w.Headers)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no witness drives the tcp.sport == 80 path; got %+v", r.Witnesses)
	}
}

func TestParserCycleDetected(t *testing.T) {
	p := &p4ir.Program{
		Name: "cyc",
		Parser: []p4ir.ParserEdge{
			{From: "a", To: "b"}, {From: "b", To: "a"},
		},
		Headers: []string{"a", "b"},
	}
	r := Analyze(p, Options{})
	if countDiag(r, CheckParser) == 0 {
		t.Fatalf("missing parser-cycle diagnostic; got %v", r.Diagnostics)
	}
}

func TestMaxPathsTruncates(t *testing.T) {
	// 20 stacked two-way gateways would be 2^20 paths.
	p := &p4ir.Program{Name: "boom", Headers: []string{"ethernet"}}
	p.AddAction(&p4ir.ActionDef{Name: "a", Ops: []p4ir.Op{{Kind: p4ir.OpNoOp}}})
	oneEntryTable(p, "t", p4ir.PipeIngress, "a")
	stmt := []p4ir.ControlStmt{{Apply: "t"}}
	for i := 0; i < 20; i++ {
		stmt = []p4ir.ControlStmt{{
			If:   fmt.Sprintf("meta.f%d != 0", i),
			Then: stmt,
			Else: stmt,
		}}
	}
	p.Ingress = stmt
	r := Analyze(p, Options{MaxPaths: 100})
	if !r.Truncated {
		t.Fatal("walk should truncate at MaxPaths")
	}
	if r.Paths > 100 {
		t.Fatalf("enumerated %d paths past the cap", r.Paths)
	}
	// Reachability must stay silent on a truncated walk.
	if countDiag(r, CheckUnreachable)+countDiag(r, CheckGateway) != 0 {
		t.Fatalf("truncated walk emitted reachability diagnostics: %v", r.Diagnostics)
	}
}
