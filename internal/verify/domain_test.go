package verify

import (
	"testing"

	"github.com/hypertester/hypertester/internal/p4ir"
)

func TestConstrainIntervals(t *testing.T) {
	v := Top(8)
	if !v.Constrain(p4ir.CmpGe, 10) || !v.Constrain(p4ir.CmpLe, 20) {
		t.Fatal("interval [10,20] should be satisfiable")
	}
	if v.Lo != 10 || v.Hi != 20 {
		t.Fatalf("got [%d,%d], want [10,20]", v.Lo, v.Hi)
	}
	if v.Constrain(p4ir.CmpGt, 20) {
		t.Fatal("x in [10,20] and x > 20 should be unsatisfiable")
	}

	v = Top(8)
	if !v.Constrain(p4ir.CmpEq, 7) {
		t.Fatal("x == 7 satisfiable")
	}
	if c, ok := v.ConstValue(); !ok || c != 7 {
		t.Fatalf("ConstValue = %d,%v want 7,true", c, ok)
	}
	if v.Constrain(p4ir.CmpNe, 7) {
		t.Fatal("x == 7 and x != 7 should be unsatisfiable")
	}
}

func TestConstrainBeyondWidth(t *testing.T) {
	v := Top(8)
	if v.Constrain(p4ir.CmpGt, 300) {
		t.Fatal("an 8-bit field can never exceed 300")
	}
	v = Top(8)
	if !v.Constrain(p4ir.CmpLt, 300) {
		t.Fatal("an 8-bit field is always below 300")
	}
	if !v.IsTop() {
		t.Fatalf("x < 300 should not constrain an 8-bit field, got %s", v)
	}
}

func TestConstrainNe(t *testing.T) {
	v := Top(4)
	for _, c := range []uint64{0, 1, 2} {
		if !v.Constrain(p4ir.CmpNe, c) {
			t.Fatalf("!= %d should stay satisfiable", c)
		}
	}
	if got := v.Concretize(); got < 3 {
		t.Fatalf("Concretize = %d, excluded values {0,1,2}", got)
	}
	if !v.Constrain(p4ir.CmpLe, 3) {
		t.Fatal("<= 3 with {0,1,2} excluded leaves 3")
	}
	if c, ok := v.ConstValue(); !ok || c != 3 {
		t.Fatalf("want const 3, got %s", v)
	}
}

func TestConstrainMask(t *testing.T) {
	v := Top(8)
	if !v.ConstrainMask(0xF0, 0xA0) {
		t.Fatal("high nibble 0xA satisfiable")
	}
	got := v.Concretize()
	if got&0xF0 != 0xA0 {
		t.Fatalf("Concretize = %#x, want high nibble 0xA", got)
	}
	if !v.Admits(0xA5) || v.Admits(0xB0) {
		t.Fatal("Admits disagrees with the known-bits constraint")
	}
	if v.ConstrainMask(0xF0, 0x50) {
		t.Fatal("contradictory masks should be unsatisfiable")
	}
}

func TestCloneIsolation(t *testing.T) {
	v := Top(16)
	v.Constrain(p4ir.CmpNe, 5)
	c := v.Clone()
	c.Constrain(p4ir.CmpNe, 6)
	if len(v.Ne) != 1 || len(c.Ne) != 2 {
		t.Fatalf("clone shares Ne storage: v=%v c=%v", v.Ne, c.Ne)
	}
}

func TestConcretizeRespectsAll(t *testing.T) {
	v := Top(16)
	v.Constrain(p4ir.CmpGe, 100)
	v.Constrain(p4ir.CmpLe, 200)
	v.Constrain(p4ir.CmpNe, 100)
	v.ConstrainMask(1, 1) // odd
	got := v.Concretize()
	if !v.Admits(got) {
		t.Fatalf("Concretize = %d not admitted by %s", got, v)
	}
}
