// Package verify is a path-sensitive symbolic evaluator over p4ir programs
// (ROADMAP item 4, in the spirit of P4Testgen): it enumerates parser and
// control paths under a path condition over PHV fields, tracking header
// validity, and from that single walk derives
//
//   - proofs that no action touches a field of a header that can be
//     invalid on some feasible path;
//   - reachability facts: unreachable tables, dead or shadowed entries,
//     infeasible gateway branches;
//   - a path-sensitive verdict for the one-SALU-access-per-packet rule
//     (two accesses conflict only when their path conditions are jointly
//     satisfiable);
//   - a termination argument for recirculation (some loop-state register
//     strictly increases on every recirculating path);
//   - and, for every feasible leaf path, a concrete witness packet that
//     the differential harness (interp.go plus compiler.ReplayPlan)
//     replays through both the compiled ASIC plan and a naive IR
//     interpreter.
//
// Everything is stdlib-only; the path condition domain is a bitvector
// interval plus known-bits lattice with a small disequality set.
package verify

import (
	"fmt"
	"sort"

	"github.com/hypertester/hypertester/internal/p4ir"
)

// Value is the abstract value of one PHV field on a path: every concrete
// value v it admits satisfies Lo <= v <= Hi, v&Mask == Bits, and v is not
// in Ne. A Value is created by Top or Const and refined by Constrain; the
// zero Value is NOT meaningful.
type Value struct {
	W      int    // field width in bits (1..64)
	Lo, Hi uint64 // inclusive interval
	Mask   uint64 // known-bit positions
	Bits   uint64 // known-bit values (Bits &^ Mask == 0)
	Ne     []uint64
}

// maxVal returns the largest value a w-bit field holds.
func maxVal(w int) uint64 {
	if w <= 0 || w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// Top returns the unconstrained value of a w-bit field.
func Top(w int) *Value { return &Value{W: w, Hi: maxVal(w)} }

// Const returns the singleton value.
func Const(w int, v uint64) *Value {
	v &= maxVal(w)
	return &Value{W: w, Lo: v, Hi: v, Mask: maxVal(w), Bits: v}
}

// Clone deep-copies the value.
func (v *Value) Clone() *Value {
	c := *v
	c.Ne = append([]uint64(nil), v.Ne...)
	return &c
}

// IsTop reports whether the value is wholly unconstrained.
func (v *Value) IsTop() bool {
	return v.Lo == 0 && v.Hi == maxVal(v.W) && v.Mask == 0 && len(v.Ne) == 0
}

// ConstValue returns the single admitted value, if there is exactly one.
func (v *Value) ConstValue() (uint64, bool) {
	if v.Lo == v.Hi {
		return v.Lo, true
	}
	return 0, false
}

func (v *Value) excluded(x uint64) bool {
	for _, n := range v.Ne {
		if n == x {
			return true
		}
	}
	return false
}

// normalize shrinks the interval off excluded endpoints and reports whether
// any admitted value remains.
func (v *Value) normalize() bool {
	for v.Lo <= v.Hi {
		if !v.excluded(v.Lo) && v.Lo&v.Mask == v.Bits&v.Mask {
			break
		}
		// Endpoints excluded by Ne or known bits slide inward; known-bit
		// exclusion only slides while the interval is small enough to
		// walk (the generated programs constrain narrow fields).
		if v.Lo == v.Hi {
			return false
		}
		v.Lo++
	}
	for v.Hi >= v.Lo {
		if !v.excluded(v.Hi) && v.Hi&v.Mask == v.Bits&v.Mask {
			break
		}
		if v.Hi == v.Lo {
			return false
		}
		v.Hi--
	}
	return v.Lo <= v.Hi
}

// Constrain refines the value with `value op c` and reports whether the
// refined value still admits anything (false = the path is infeasible).
func (v *Value) Constrain(op p4ir.CmpOp, c uint64) bool {
	max := maxVal(v.W)
	if c > max {
		// A constant beyond the field's width: ==, >, >= can never hold;
		// !=, <, <= always hold.
		switch op {
		case p4ir.CmpEq, p4ir.CmpGt, p4ir.CmpGe:
			return false
		default:
			return v.normalize()
		}
	}
	switch op {
	case p4ir.CmpEq:
		if c < v.Lo || c > v.Hi || v.excluded(c) || c&v.Mask != v.Bits&v.Mask {
			return false
		}
		v.Lo, v.Hi = c, c
		v.Mask, v.Bits = max, c
	case p4ir.CmpNe:
		if v.Lo == v.Hi && v.Lo == c {
			return false
		}
		if !v.excluded(c) {
			v.Ne = append(v.Ne, c)
		}
	case p4ir.CmpLt:
		if c == 0 {
			return false
		}
		if c-1 < v.Hi {
			v.Hi = c - 1
		}
	case p4ir.CmpLe:
		if c < v.Hi {
			v.Hi = c
		}
	case p4ir.CmpGt:
		if c == max {
			return false
		}
		if c+1 > v.Lo {
			v.Lo = c + 1
		}
	case p4ir.CmpGe:
		if c > v.Lo {
			v.Lo = c
		}
	}
	return v.normalize()
}

// ConstrainMask refines with a ternary match `value & mask == bits` and
// reports continued satisfiability.
func (v *Value) ConstrainMask(mask, bits uint64) bool {
	bits &= mask
	if v.Mask&mask != 0 && v.Bits&mask&v.Mask != bits&v.Mask {
		return false
	}
	v.Mask |= mask
	v.Bits = (v.Bits &^ mask) | bits
	return v.normalize()
}

// Concretize picks one admitted value, preferring the smallest. The scan is
// bounded; when the known-bits pattern cannot be located inside the bound
// it falls back to forcing the known bits onto Lo (still inside the
// interval for the shapes our walker produces).
func (v *Value) Concretize() uint64 {
	sort.Slice(v.Ne, func(i, j int) bool { return v.Ne[i] < v.Ne[j] })
	const scanCap = 1 << 16
	x := v.Lo
	for i := 0; i < scanCap && x <= v.Hi; i++ {
		if x&v.Mask == v.Bits&v.Mask && !v.excluded(x) {
			return x
		}
		if x == v.Hi {
			break
		}
		x++
	}
	return ((v.Lo &^ v.Mask) | v.Bits&v.Mask) & maxVal(v.W)
}

// Admits reports whether the value admits the concrete x.
func (v *Value) Admits(x uint64) bool {
	return x >= v.Lo && x <= v.Hi && x&v.Mask == v.Bits&v.Mask && !v.excluded(x)
}

func (v *Value) String() string {
	if c, ok := v.ConstValue(); ok {
		return fmt.Sprintf("%d", c)
	}
	s := fmt.Sprintf("[%d,%d]", v.Lo, v.Hi)
	if v.Mask != 0 {
		s += fmt.Sprintf("&%#x=%#x", v.Mask, v.Bits)
	}
	if len(v.Ne) > 0 {
		s += fmt.Sprintf("≠%v", v.Ne)
	}
	return s
}
