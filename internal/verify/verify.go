package verify

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/hypertester/hypertester/internal/p4ir"
)

// Severity grades a diagnostic. Errors are safety violations the compiler
// must refuse to deploy; warnings are reachability facts (dead or shadowed
// configuration) worth surfacing but not fatal.
type Severity string

// Severities.
const (
	SevError   Severity = "error"
	SevWarning Severity = "warning"
)

// Check names, one per analysis the walker performs.
const (
	CheckParser        = "parser-cycle"
	CheckInvalidAccess = "invalid-header-access"
	CheckSALU          = "salu-conflict"
	CheckRecirc        = "recirc-unbounded"
	CheckUnreachable   = "unreachable-table"
	CheckDeadEntry     = "dead-entry"
	CheckShadowed      = "shadowed-entry"
	CheckGateway       = "infeasible-gateway"
)

// Diagnostic is one finding, anchored to the program element it concerns.
type Diagnostic struct {
	Check    string
	Severity Severity
	Site     string // table, action, or gateway condition
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]: %s", d.Severity, d.Site, d.Check, d.Message)
}

// Implication is an environment invariant: whenever the If atom holds
// (restricted to equality — the only shape the compiler emits), the Then
// atoms hold too. The compiler derives these from its template packets:
// meta.template_id == N implies the packet carries template N's headers and
// select-field values. A Then atom over a header the current parse path did
// not extract makes the path infeasible.
type Implication struct {
	If   p4ir.Atom
	Then []p4ir.Atom
}

// Options tunes an Analyze run.
type Options struct {
	Invariants   []Implication
	MaxPaths     int  // feasible leaf paths to enumerate (default 8192)
	Witnesses    bool // concretize a witness per feasible leaf path
	MaxWitnesses int  // cap on distinct witnesses kept (default 256)
}

// SALUConflict is a pair of tables that access one register on a single
// jointly-feasible path of one pipeline pass.
type SALUConflict struct {
	Pipeline p4ir.PipelineKind
	Register string
	Tables   [2]string // sorted
}

// Witness is a concrete input that drives the program down one feasible
// leaf path: which headers the packet carries and the value of every field
// the path constrained or read.
type Witness struct {
	Program string            `json:"program"`
	Path    []string          `json:"path"`
	Headers []string          `json:"headers"`
	Fields  map[string]uint64 `json:"fields"`
}

// Report is the result of one Analyze run.
type Report struct {
	Diagnostics   []Diagnostic
	SALUConflicts []SALUConflict
	Witnesses     []Witness
	Paths         int  // feasible leaf paths enumerated
	Truncated     bool // MaxPaths or MaxWitnesses hit
}

// Errors returns the error-severity diagnostics.
func (r *Report) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// HasSALUConflict reports whether the walk saw both tables touch the
// register on one feasible path.
func (r *Report) HasSALUConflict(register, tableA, tableB string) bool {
	if tableA > tableB {
		tableA, tableB = tableB, tableA
	}
	for _, c := range r.SALUConflicts {
		if c.Register == register && c.Tables[0] == tableA && c.Tables[1] == tableB {
			return true
		}
	}
	return false
}

// fieldWidths mirrors the PHV field widths of internal/asic plus the
// compiler's metadata fields. verify deliberately avoids importing asic so
// the symbolic walker and the naive interpreter form an oracle independent
// of the ASIC model they are checking.
var fieldWidths = map[string]int{
	"eth.src": 48, "eth.dst": 48, "eth.type": 16,
	"vlan.id": 12, "vlan.pcp": 3,
	"ipv4.sip": 32, "ipv4.dip": 32, "ipv4.ttl": 8, "ipv4.proto": 8,
	"ipv4.tos": 8, "ipv4.id": 16,
	"tcp.sport": 16, "tcp.dport": 16, "tcp.seq_no": 32, "tcp.ack_no": 32,
	"tcp.flag": 8, "tcp.window": 16,
	"udp.sport": 16, "udp.dport": 16,
	"l4.sport": 16, "l4.dport": 16,
	"icmp.type": 8, "icmp.ident": 16, "icmp.seq": 16,
	"meta.in_port": 9, "pkt_len": 16, "meta.ingress_ts": 64,
	"meta.template_id": 16,
	"meta.one":         1, "meta.trigger_push": 1,
	"eg_intr_md.rid": 16, "ig_intr_md.mcast_grp": 16,
	"pkt_id": 32, "meta.rand": 16, "meta.rand_bucket": 16,
	"meta.idx1": 16, "meta.idx2": 16, "meta.digest": 32,
	"meta.delay_idx": 16, "recirc_port": 9,
}

func fieldWidth(name string, hint int) int {
	if w, ok := fieldWidths[name]; ok {
		return w
	}
	if hint > 0 && hint <= 64 {
		return hint
	}
	return 32
}

// headerOf maps a field name to the parser header that must be valid to
// touch it; "" means metadata, always valid. "l4" is the resolver's
// leftover when neither transport header was parsed.
func headerOf(name string) string {
	i := strings.IndexByte(name, '.')
	if i < 0 {
		return ""
	}
	switch name[:i] {
	case "eth":
		return "ethernet"
	case "vlan", "ipv4", "tcp", "udp", "icmp", "l4":
		return name[:i]
	}
	return ""
}

// selectEdge returns the parser select convention for a transition: the
// field examined in the From state and the value routing to To. ok=false
// means the edge's select is unknown and the walker forks unconstrained.
func selectEdge(from, to string) (field string, val uint64, ok bool) {
	switch from {
	case "ethernet":
		switch to {
		case "ipv4":
			return "eth.type", 0x0800, true
		case "vlan":
			return "eth.type", 0x8100, true
		}
	case "ipv4":
		switch to {
		case "tcp":
			return "ipv4.proto", 6, true
		case "udp":
			return "ipv4.proto", 17, true
		case "icmp":
			return "ipv4.proto", 1, true
		}
	}
	return "", 0, false
}

// state is one symbolic path: current field values, the input constraints
// that led here, header validity, and per-pass SALU ownership. fields and
// input share *Value pointers copy-on-write: a gateway constraint refines
// both while shared; an action write replaces only the current value.
type state struct {
	fields  map[string]*Value
	input   map[string]*Value
	valid   map[string]bool
	salu    map[string]string // register -> owning table, this pipeline pass
	applied map[int]bool      // invariant indices already applied
	trail   []string
	recOK   bool // a strict-increase RMW ran earlier on this path
}

func newState() *state {
	return &state{
		fields:  map[string]*Value{},
		input:   map[string]*Value{},
		valid:   map[string]bool{},
		salu:    map[string]string{},
		applied: map[int]bool{},
	}
}

func (s *state) clone() *state {
	c := &state{
		fields:  make(map[string]*Value, len(s.fields)),
		input:   make(map[string]*Value, len(s.input)),
		valid:   make(map[string]bool, len(s.valid)),
		salu:    make(map[string]string, len(s.salu)),
		applied: make(map[int]bool, len(s.applied)),
		trail:   append([]string(nil), s.trail...),
		recOK:   s.recOK,
	}
	for k, v := range s.fields {
		c.fields[k] = v
	}
	for k, v := range s.input {
		c.input[k] = v
	}
	for k, v := range s.valid {
		c.valid[k] = v
	}
	for k, v := range s.salu {
		c.salu[k] = v
	}
	for k, v := range s.applied {
		c.applied[k] = v
	}
	return c
}

// get returns the field's current value, creating an unconstrained input
// on first touch (shared between fields and input — see state).
func (s *state) get(name string, width int) *Value {
	if v, ok := s.fields[name]; ok {
		return v
	}
	v := Top(fieldWidth(name, width))
	s.fields[name] = v
	s.input[name] = v
	return v
}

// refine replaces the field with a constrained clone; the input constraint
// follows only while still shared (i.e. the field was never overwritten).
func (s *state) refine(name string, width int, fn func(*Value) bool) bool {
	old := s.get(name, width)
	nv := old.Clone()
	if !fn(nv) {
		return false
	}
	s.fields[name] = nv
	if s.input[name] == old {
		s.input[name] = nv
	}
	return true
}

// write performs a strong update of the current value, leaving the input
// constraint behind.
func (s *state) write(name string, v *Value) { s.fields[name] = v }

// gwSite accumulates per-gateway feasibility counts across all paths.
type gwSite struct {
	pipe    p4ir.PipelineKind
	visited int
	thenOK  int
	elseOK  int
	opaque  bool
}

// tblSite accumulates per-table and per-entry feasibility counts.
type tblSite struct {
	visits  int
	entries []int
}

type walker struct {
	p    *p4ir.Program
	opts Options

	tables  map[string]*p4ir.TableDef
	actions map[string]*p4ir.ActionDef

	gw  map[*p4ir.ControlStmt]*gwSite
	tbl map[string]*tblSite

	diags       []Diagnostic
	diagSeen    map[string]bool
	conflicts   map[string]SALUConflict
	witnesses   []Witness
	witnessSeen map[string]bool
	paths       int
	truncated   bool

	pipe p4ir.PipelineKind // pipeline currently being walked
}

// Analyze symbolically executes the program and returns every finding plus
// (optionally) one concrete witness per feasible leaf path.
func Analyze(p *p4ir.Program, opts Options) *Report {
	if opts.MaxPaths <= 0 {
		opts.MaxPaths = 8192
	}
	if opts.MaxWitnesses <= 0 {
		opts.MaxWitnesses = 256
	}
	w := &walker{
		p: p, opts: opts,
		tables:      map[string]*p4ir.TableDef{},
		actions:     map[string]*p4ir.ActionDef{},
		gw:          map[*p4ir.ControlStmt]*gwSite{},
		tbl:         map[string]*tblSite{},
		diagSeen:    map[string]bool{},
		conflicts:   map[string]SALUConflict{},
		witnessSeen: map[string]bool{},
	}
	for _, t := range p.Tables {
		w.tables[t.Name] = t
		w.tbl[t.Name] = &tblSite{entries: make([]int, len(t.Entries))}
	}
	for _, a := range p.Actions {
		w.actions[a.Name] = a
	}

	if cyc := parserCycle(p); cyc != "" {
		w.diag(CheckParser, SevError, "parser",
			"parse graph has a cycle through %s; a TCAM parser never terminates on it", cyc)
	} else {
		w.enumParsePaths()
	}
	w.staticShadow()
	w.reachability()

	rep := &Report{
		Diagnostics: w.diags,
		Witnesses:   w.witnesses,
		Paths:       w.paths,
		Truncated:   w.truncated,
	}
	for _, c := range w.conflicts {
		rep.SALUConflicts = append(rep.SALUConflicts, c)
	}
	sort.Slice(rep.SALUConflicts, func(i, j int) bool {
		a, b := rep.SALUConflicts[i], rep.SALUConflicts[j]
		if a.Register != b.Register {
			return a.Register < b.Register
		}
		return a.Tables[0]+a.Tables[1] < b.Tables[0]+b.Tables[1]
	})
	sort.SliceStable(rep.Diagnostics, func(i, j int) bool {
		return rep.Diagnostics[i].Severity == SevError && rep.Diagnostics[j].Severity != SevError
	})
	return rep
}

func (w *walker) diag(check string, sev Severity, site, format string, args ...interface{}) {
	d := Diagnostic{Check: check, Severity: sev, Site: site, Message: fmt.Sprintf(format, args...)}
	key := d.Check + "|" + d.Site + "|" + d.Message
	if w.diagSeen[key] {
		return
	}
	w.diagSeen[key] = true
	w.diags = append(w.diags, d)
}

// parserCycle returns a node on a parse-graph cycle, or "".
func parserCycle(p *p4ir.Program) string {
	adj := map[string][]string{}
	for _, e := range p.ParserGraph() {
		adj[e.From] = append(adj[e.From], e.To)
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(n string) string
	visit = func(n string) string {
		color[n] = grey
		for _, m := range adj[n] {
			switch color[m] {
			case grey:
				return m
			case white:
				if c := visit(m); c != "" {
					return c
				}
			}
		}
		color[n] = black
		return ""
	}
	for n := range adj {
		if color[n] == white {
			if c := visit(n); c != "" {
				return c
			}
		}
	}
	return ""
}

// enumParsePaths forks one symbolic state per path through the parse graph,
// including "stop here" prefixes, then runs the control pipelines on each.
func (w *walker) enumParsePaths() {
	adj := map[string][]string{}
	for _, e := range w.p.ParserGraph() {
		adj[e.From] = append(adj[e.From], e.To)
	}
	st := newState()
	// Inputs with fixed or bounded initial values.
	st.write("meta.one", Const(1, 1))
	st.input["meta.one"] = st.fields["meta.one"]
	st.write("meta.trigger_push", Const(1, 0))
	pl := &Value{W: 16, Lo: 64, Hi: 1500}
	st.fields["pkt_len"] = pl
	st.input["pkt_len"] = pl

	start := "ethernet"
	if len(w.p.Headers) > 0 {
		start = w.p.Headers[0]
	}
	if len(w.p.Headers) == 0 && len(w.p.Parser) == 0 {
		w.runControls(st)
		return
	}
	w.parseFrom(st, start, adj)
}

func (w *walker) parseFrom(st *state, node string, adj map[string][]string) {
	if w.truncated {
		return
	}
	st.valid[node] = true
	st.trail = append(st.trail, "parse "+node)
	succs := adj[node]
	if len(succs) == 0 {
		w.runControls(st)
		return
	}
	// Stop-here fork: the select field matched none of the known edges.
	stop := st.clone()
	feasible := true
	for _, to := range succs {
		f, v, ok := selectEdge(node, to)
		if !ok {
			continue
		}
		if !w.constrainField(stop, f, 0, p4ir.CmpNe, v) {
			feasible = false
			break
		}
	}
	if feasible {
		stop.trail = append(stop.trail, "accept")
		w.runControls(stop)
	}
	for _, to := range succs {
		br := st.clone()
		if f, v, ok := selectEdge(node, to); ok {
			if !w.constrainField(br, f, 0, p4ir.CmpEq, v) {
				continue
			}
		}
		w.parseFrom(br, to, adj)
	}
}

func (w *walker) runControls(st *state) {
	if w.over() {
		return
	}
	w.pipe = p4ir.PipeIngress
	w.seq(st, w.p.Ingress, func(st2 *state) {
		// Egress is a fresh pipeline pass: SALU once-per-pass resets.
		st2.salu = map[string]string{}
		w.pipe = p4ir.PipeEgress
		w.seq(st2, w.p.Egress, func(st3 *state) { w.leaf(st3) })
		w.pipe = p4ir.PipeIngress
	})
}

func (w *walker) over() bool {
	if w.paths >= w.opts.MaxPaths {
		w.truncated = true
		return true
	}
	return false
}

// seq walks stmts in order, calling k on every feasible completion.
func (w *walker) seq(st *state, stmts []p4ir.ControlStmt, k func(*state)) {
	if w.over() {
		return
	}
	if len(stmts) == 0 {
		k(st)
		return
	}
	s := &stmts[0]
	rest := stmts[1:]
	kk := func(st2 *state) { w.seq(st2, rest, k) }
	if s.Apply != "" {
		w.applyTable(st, s.Apply, kk)
		return
	}
	w.gateway(st, s, kk)
}

func (w *walker) gwSite(s *p4ir.ControlStmt) *gwSite {
	g, ok := w.gw[s]
	if !ok {
		g = &gwSite{pipe: w.pipe}
		w.gw[s] = g
	}
	return g
}

func (w *walker) gateway(st *state, s *p4ir.ControlStmt, k func(*state)) {
	site := w.gwSite(s)
	site.visited++
	cond, ok := p4ir.ParseCond(s.If)
	if !ok {
		// Opaque condition (outside the generator grammar): both branches
		// stay feasible and unconstrained.
		site.opaque = true
		thenSt := st.clone()
		thenSt.trail = append(thenSt.trail, "if? "+s.If)
		w.seq(thenSt, s.Then, k)
		if w.over() {
			return
		}
		elseSt := st.clone()
		elseSt.trail = append(elseSt.trail, "else? "+s.If)
		w.seq(elseSt, s.Else, k)
		return
	}

	thenSt := st.clone()
	feasible := true
	for _, a := range cond.Atoms {
		if !w.constrainAtom(thenSt, a) {
			feasible = false
			break
		}
	}
	if feasible {
		site.thenOK++
		thenSt.trail = append(thenSt.trail, "if "+cond.String())
		w.seq(thenSt, s.Then, k)
	}

	// Else is the DNF of the negated conjunction: one fork per atom,
	// with all earlier atoms held true (disjoint cover, no double count).
	for i, a := range cond.Atoms {
		if w.over() {
			return
		}
		elseSt := st.clone()
		ok := true
		for j := 0; j < i && ok; j++ {
			ok = w.constrainAtom(elseSt, cond.Atoms[j])
		}
		if ok {
			ok = w.constrainAtom(elseSt, a.Negate())
		}
		if !ok {
			continue
		}
		site.elseOK++
		elseSt.trail = append(elseSt.trail, "if not("+a.String()+")")
		w.seq(elseSt, s.Else, k)
	}
}

// resolveField canonicalizes l4.* onto the transport header the path
// parsed, and returns the guarding header ("" = metadata).
func resolveField(st *state, name string) (string, string) {
	if name == "l4.sport" || name == "l4.dport" {
		suffix := name[3:]
		if st.valid["tcp"] {
			return "tcp" + suffix, "tcp"
		}
		if st.valid["udp"] {
			return "udp" + suffix, "udp"
		}
		return name, "l4"
	}
	return name, headerOf(name)
}

// constrainAtom refines the path condition with one gateway/key comparison.
// A field of an invalid header reads as 0 in match hardware, so the atom
// degenerates to a concrete test (no diagnostic: this is defined behavior).
func (w *walker) constrainAtom(st *state, a p4ir.Atom) bool {
	name, hdr := resolveField(st, a.Field)
	if hdr != "" && !st.valid[hdr] {
		return a.Op.Eval(0, a.Value)
	}
	return w.constrainField(st, name, 0, a.Op, a.Value)
}

func (w *walker) constrainField(st *state, name string, width int, op p4ir.CmpOp, c uint64) bool {
	if !st.refine(name, width, func(v *Value) bool { return v.Constrain(op, c) }) {
		return false
	}
	if cv, ok := st.fields[name].ConstValue(); ok {
		return w.applyInvariants(st, name, cv)
	}
	return true
}

// applyInvariants fires every not-yet-applied invariant whose If atom the
// now-constant field satisfies. A Then atom over an unparsed header refutes
// the path: the environment only produces such metadata on packets that
// carry the header.
func (w *walker) applyInvariants(st *state, name string, cv uint64) bool {
	for i := range w.opts.Invariants {
		inv := &w.opts.Invariants[i]
		if st.applied[i] || inv.If.Op != p4ir.CmpEq || inv.If.Field != name || inv.If.Value != cv {
			continue
		}
		st.applied[i] = true
		for _, t := range inv.Then {
			n2, hdr := resolveField(st, t.Field)
			if hdr != "" && !st.valid[hdr] {
				return false
			}
			if !w.constrainField(st, n2, 0, t.Op, t.Value) {
				return false
			}
		}
	}
	return true
}

func (w *walker) constrainKey(st *state, kd p4ir.KeyDef, op p4ir.CmpOp, c uint64) bool {
	name, hdr := resolveField(st, kd.Field)
	if hdr != "" && !st.valid[hdr] {
		return op.Eval(0, c)
	}
	return w.constrainField(st, name, kd.Bits, op, c)
}

func (w *walker) constrainKeyMask(st *state, kd p4ir.KeyDef, mask, bits uint64) bool {
	name, hdr := resolveField(st, kd.Field)
	if hdr != "" && !st.valid[hdr] {
		return 0&mask == bits&mask
	}
	if !st.refine(name, kd.Bits, func(v *Value) bool { return v.ConstrainMask(mask, bits) }) {
		return false
	}
	if cv, ok := st.fields[name].ConstValue(); ok {
		return w.applyInvariants(st, name, cv)
	}
	return true
}

func (w *walker) applyTable(st *state, name string, k func(*state)) {
	t := w.tables[name]
	if t == nil {
		return // Program.Validate rejects this before Analyze runs
	}
	site := w.tbl[name]
	site.visits++

	if len(t.Entries) == 0 {
		// Runtime-populated: hit (unknown entry, each action possible)
		// or miss.
		for _, an := range t.Actions {
			if w.over() {
				return
			}
			hit := st.clone()
			hit.trail = append(hit.trail, name+":"+an)
			w.execAction(hit, t, an)
			k(hit)
		}
		if w.over() {
			return
		}
		miss := st.clone()
		miss.trail = append(miss.trail, name+":miss")
		k(miss)
		return
	}

	switch t.Match {
	case p4ir.MatchExact:
		w.applyExact(st, t, site, k)
	case p4ir.MatchTernary:
		w.applyTernary(st, t, site, k)
	case p4ir.MatchRange:
		w.applyRange(st, t, site, k)
	}
}

func (w *walker) applyExact(st *state, t *p4ir.TableDef, site *tblSite, k func(*state)) {
	single := len(t.Keys) == 1
	for i := range t.Entries {
		if w.over() {
			return
		}
		e := &t.Entries[i]
		br := st.clone()
		ok := true
		for ki := range t.Keys {
			if !w.constrainKey(br, t.Keys[ki], p4ir.CmpEq, e.Values[ki]) {
				ok = false
				break
			}
		}
		// First-match semantics for duplicates: entry i only matches when
		// no earlier entry already claimed the key (single-key tables).
		for j := 0; ok && single && j < i; j++ {
			ok = w.constrainKey(br, t.Keys[0], p4ir.CmpNe, t.Entries[j].Values[0])
		}
		if !ok {
			continue
		}
		site.entries[i]++
		act := e.ActionName(t)
		br.trail = append(br.trail, fmt.Sprintf("%s:entry%d:%s", t.Name, i, act))
		w.execAction(br, t, act)
		k(br)
	}
	if w.over() {
		return
	}
	miss := st.clone()
	ok := true
	if single {
		for i := range t.Entries {
			if !w.constrainKey(miss, t.Keys[0], p4ir.CmpNe, t.Entries[i].Values[0]) {
				ok = false
				break
			}
		}
	}
	if ok {
		miss.trail = append(miss.trail, t.Name+":miss")
		k(miss)
	}
}

func (w *walker) applyTernary(st *state, t *p4ir.TableDef, site *tblSite, k func(*state)) {
	for i := range t.Entries {
		if w.over() {
			return
		}
		e := &t.Entries[i]
		br := st.clone()
		ok := true
		for ki := range t.Keys {
			mask := maxVal(fieldWidth(t.Keys[ki].Field, t.Keys[ki].Bits))
			if e.Masks != nil {
				mask = e.Masks[ki]
			}
			if !w.constrainKeyMask(br, t.Keys[ki], mask, e.Values[ki]&mask) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Higher-priority exclusion is over-approximated away: a lower
		// entry may be counted matchable even when a higher one covers
		// it — the static shadow check reports the definite cases.
		site.entries[i]++
		act := e.ActionName(t)
		br.trail = append(br.trail, fmt.Sprintf("%s:entry%d:%s", t.Name, i, act))
		w.execAction(br, t, act)
		k(br)
	}
	if w.over() {
		return
	}
	miss := st.clone()
	miss.trail = append(miss.trail, t.Name+":miss")
	k(miss)
}

func (w *walker) applyRange(st *state, t *p4ir.TableDef, site *tblSite, k func(*state)) {
	kd := t.Keys[0]
	minLo, maxHi := ^uint64(0), uint64(0)
	for i := range t.Entries {
		if w.over() {
			return
		}
		e := &t.Entries[i]
		if e.Lo < minLo {
			minLo = e.Lo
		}
		if e.Hi > maxHi {
			maxHi = e.Hi
		}
		br := st.clone()
		if !w.constrainKey(br, kd, p4ir.CmpGe, e.Lo) || !w.constrainKey(br, kd, p4ir.CmpLe, e.Hi) {
			continue
		}
		site.entries[i]++
		act := e.ActionName(t)
		br.trail = append(br.trail, fmt.Sprintf("%s:entry%d:%s", t.Name, i, act))
		w.execAction(br, t, act)
		k(br)
	}
	// Miss cover: below every range and above every range (gaps between
	// ranges are dropped — missing a miss path is sound, it only means
	// fewer witnesses).
	if minLo > 0 {
		if w.over() {
			return
		}
		miss := st.clone()
		if w.constrainKey(miss, kd, p4ir.CmpLt, minLo) {
			miss.trail = append(miss.trail, t.Name+":miss")
			k(miss)
		}
	}
	if maxHi < maxVal(fieldWidth(kd.Field, kd.Bits)) {
		if w.over() {
			return
		}
		miss := st.clone()
		if w.constrainKey(miss, kd, p4ir.CmpGt, maxHi) {
			miss.trail = append(miss.trail, t.Name+":miss")
			k(miss)
		}
	}
}

// srcField reports whether an op Src names a PHV field (rather than a
// constant, register, or SALU program).
func srcField(src string) bool {
	if _, ok := fieldWidths[src]; ok {
		return true
	}
	return headerOf(src) != "" && !strings.ContainsAny(src, " []")
}

// execAction interprets one action's ops on the path: field writes, SALU
// ownership, recirculation safety. Ops never refute a path.
func (w *walker) execAction(st *state, t *p4ir.TableDef, actName string) {
	a := w.actions[actName]
	if a == nil {
		return
	}
	for _, op := range a.Ops {
		switch op.Kind {
		case p4ir.OpModifyField, p4ir.OpAddToField:
			w.fieldWrite(st, t, a, op)
		case p4ir.OpRegisterRead, p4ir.OpRegisterWrite, p4ir.OpRegisterRMW:
			w.saluTouch(st, t, op.Dst)
			if op.Kind == p4ir.OpRegisterRMW {
				if inc, _, ok := parseIncrement(op.Src); ok && inc >= 1 {
					st.recOK = true
				}
			}
		case p4ir.OpHash, p4ir.OpRandom:
			st.write(op.Dst, Top(fieldWidth(op.Dst, op.Bits)))
		case p4ir.OpRecirculate:
			if !st.recOK {
				w.diag(CheckRecirc, SevError, t.Name,
					"action %s recirculates on a path with no strictly-increasing loop-state update; the loop has no termination proof", a.Name)
			}
		case p4ir.OpMulticast:
			if c, err := strconv.ParseUint(op.Src, 0, 64); err == nil {
				st.write(op.Dst, Const(fieldWidth(op.Dst, op.Bits), c))
			} else {
				st.write(op.Dst, Top(fieldWidth(op.Dst, op.Bits)))
			}
		case p4ir.OpGenerateDigest, p4ir.OpDropPacket, p4ir.OpNoOp:
		}
	}
}

// fieldWrite models OpModifyField/OpAddToField, diagnosing touches of
// headers that are invalid on this path. Unlike match keys (which read 0 by
// definition), a VLIW write to an invalid header's PHV container is
// undefined on real hardware — this is the property the verifier proves.
func (w *walker) fieldWrite(st *state, t *p4ir.TableDef, a *p4ir.ActionDef, op p4ir.Op) {
	dst, dstHdr := resolveField(st, op.Dst)
	if dstHdr != "" && !st.valid[dstHdr] {
		w.diag(CheckInvalidAccess, SevError, t.Name,
			"action %s writes %s, but header %s can be invalid on a feasible path (%s)",
			a.Name, op.Dst, dstHdr, lastSteps(st.trail, 3))
		return
	}
	width := fieldWidth(dst, op.Bits)

	var srcVal *Value
	if c, err := strconv.ParseUint(op.Src, 0, 64); err == nil {
		srcVal = Const(width, c)
	} else if srcField(op.Src) {
		src, srcHdr := resolveField(st, op.Src)
		if srcHdr != "" && !st.valid[srcHdr] {
			w.diag(CheckInvalidAccess, SevError, t.Name,
				"action %s reads %s, but header %s can be invalid on a feasible path (%s)",
				a.Name, op.Src, srcHdr, lastSteps(st.trail, 3))
			srcVal = Top(width)
		} else {
			sv := st.get(src, 0).Clone()
			sv.W = width
			srcVal = sv
		}
	} else {
		srcVal = Top(width) // register, list lookup, record slot, ...
	}

	if op.Kind == p4ir.OpAddToField {
		cur := st.get(dst, op.Bits)
		if cv, ok1 := cur.ConstValue(); ok1 {
			if sv, ok2 := srcVal.ConstValue(); ok2 {
				st.write(dst, Const(width, cv+sv))
				return
			}
		}
		st.write(dst, Top(width))
		return
	}
	st.write(dst, srcVal)
}

// saluTouch enforces the one-SALU-access-per-pass rule path-sensitively:
// a second table touching the register on the same feasible pass is a
// conflict. Re-touches from the same table (multi-op actions) are the
// syntactic pre-pass's concern.
func (w *walker) saluTouch(st *state, t *p4ir.TableDef, register string) {
	owner, seen := st.salu[register]
	if !seen {
		st.salu[register] = t.Name
		return
	}
	if owner == t.Name {
		return
	}
	a, b := owner, t.Name
	if a > b {
		a, b = b, a
	}
	key := string(t.Pipeline) + "|" + register + "|" + a + "|" + b
	if _, dup := w.conflicts[key]; dup {
		return
	}
	w.conflicts[key] = SALUConflict{Pipeline: t.Pipeline, Register: register, Tables: [2]string{a, b}}
	w.diag(CheckSALU, SevError, t.Name,
		"register %s is accessed by both %s and %s on one feasible %s pass (%s); an RMT SALU fires at most once per packet",
		register, a, b, t.Pipeline, lastSteps(st.trail, 3))
}

// parseIncrement recognizes the generator's strictly-increasing SALU
// programs: "+N" and "+N wrap M".
func parseIncrement(src string) (inc uint64, wrap uint64, ok bool) {
	if !strings.HasPrefix(src, "+") {
		return 0, 0, false
	}
	rest := strings.TrimPrefix(src, "+")
	if i := strings.Index(rest, " wrap "); i >= 0 {
		wv, err := strconv.ParseUint(strings.TrimSpace(rest[i+len(" wrap "):]), 0, 64)
		if err != nil {
			return 0, 0, false
		}
		wrap = wv
		rest = rest[:i]
	}
	n, err := strconv.ParseUint(strings.TrimSpace(rest), 0, 64)
	if err != nil {
		return 0, 0, false
	}
	return n, wrap, true
}

func lastSteps(trail []string, n int) string {
	if len(trail) > n {
		trail = trail[len(trail)-n:]
	}
	return strings.Join(trail, "; ")
}

// leaf finishes one feasible path: count it and concretize a witness.
func (w *walker) leaf(st *state) {
	w.paths++
	if !w.opts.Witnesses {
		return
	}
	if len(w.witnesses) >= w.opts.MaxWitnesses {
		w.truncated = true
		return
	}
	wit := Witness{
		Program: w.p.Name,
		Path:    append([]string(nil), st.trail...),
		Fields:  map[string]uint64{},
	}
	for _, h := range w.p.Headers {
		if st.valid[h] {
			wit.Headers = append(wit.Headers, h)
		}
	}
	for name, v := range st.input {
		hdr := headerOf(name)
		if hdr == "l4" || (hdr != "" && !st.valid[hdr]) {
			continue
		}
		wit.Fields[name] = v.Concretize()
	}
	key := witnessKey(wit)
	if w.witnessSeen[key] {
		return
	}
	w.witnessSeen[key] = true
	w.witnesses = append(w.witnesses, wit)
}

// witnessKey canonicalizes the concrete assignment so identical inputs
// reached via different trails dedup.
func witnessKey(wit Witness) string {
	names := make([]string, 0, len(wit.Fields))
	for n := range wit.Fields {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(strings.Join(wit.Headers, ","))
	for _, n := range names {
		fmt.Fprintf(&b, "|%s=%d", n, wit.Fields[n])
	}
	return b.String()
}

// staticShadow reports entries that a preceding entry provably covers.
func (w *walker) staticShadow() {
	for _, t := range w.p.Tables {
		for i := 1; i < len(t.Entries); i++ {
			for j := 0; j < i; j++ {
				if shadows(t, j, i) {
					w.diag(CheckShadowed, SevWarning, t.Name,
						"entry %d is shadowed by entry %d and can never fire", i, j)
					break
				}
			}
		}
	}
}

// shadows reports whether entry j of t makes entry i unmatchable.
func shadows(t *p4ir.TableDef, j, i int) bool {
	a, b := &t.Entries[j], &t.Entries[i]
	switch t.Match {
	case p4ir.MatchExact:
		for k := range t.Keys {
			if a.Values[k] != b.Values[k] {
				return false
			}
		}
		return true
	case p4ir.MatchTernary:
		// a shadows b when a's mask is a subset of b's, they agree on a's
		// mask, and a wins ties (higher or equal priority).
		if a.Priority < b.Priority {
			return false
		}
		for k := range t.Keys {
			am, bm := ^uint64(0), ^uint64(0)
			if a.Masks != nil {
				am = a.Masks[k]
			}
			if b.Masks != nil {
				bm = b.Masks[k]
			}
			if am&^bm != 0 {
				return false // a constrains a bit b leaves free: b can dodge
			}
			if a.Values[k]&am != b.Values[k]&am {
				return false
			}
		}
		return true
	case p4ir.MatchRange:
		return a.Priority >= b.Priority && a.Lo <= b.Lo && a.Hi >= b.Hi
	}
	return false
}

// reachability converts the walk's site counters into diagnostics. A
// truncated walk proves nothing about what it never reached, so the
// counters are only trusted when enumeration completed.
func (w *walker) reachability() {
	if w.truncated {
		return
	}
	for s, site := range w.gw {
		if site.opaque || site.visited == 0 {
			continue
		}
		if len(s.Then) > 0 && site.thenOK == 0 {
			w.diag(CheckGateway, SevWarning, s.If,
				"the condition never holds on any feasible %s path; the then-branch is dead", site.pipe)
		}
		if len(s.Else) > 0 && site.elseOK == 0 {
			w.diag(CheckGateway, SevWarning, s.If,
				"the condition always holds on every feasible %s path; the else-branch is dead", site.pipe)
		}
	}
	for _, t := range w.p.Tables {
		site := w.tbl[t.Name]
		if site.visits == 0 {
			w.diag(CheckUnreachable, SevWarning, t.Name,
				"no feasible path applies this table")
			continue
		}
		for i, n := range site.entries {
			if n == 0 {
				w.diag(CheckDeadEntry, SevWarning, t.Name,
					"entry %d never matches on any feasible path", i)
			}
		}
	}
}
