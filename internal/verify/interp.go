package verify

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"github.com/hypertester/hypertester/internal/p4ir"
)

// This file is the execution half of the differential oracle. The witness
// packets Analyze extracts are replayed through two executors:
//
//   - the compiled ASIC plan (compiler.ReplayPlan), which drives the real
//     asic PHV, field codec, and indexed match tables;
//   - the naive interpreter below, which walks the p4ir control directly
//     over a flat field map with linear-scan matching.
//
// The two share ONLY the primitives that would be unverifiable if modeled
// twice (the deterministic op semantics in ExecOp, gateway evaluation in
// EvalCondString) — everything the differential is meant to check (packet
// codec, field width/masking quirks, table lookup structures, control
// walking) is implemented independently on each side.

// RecircCap bounds the recirculation passes both executors run; the
// verifier's termination check keeps real programs from depending on it.
const RecircCap = 3

// Machine abstracts the PHV: the compiled side wraps an asic.PHV, the
// naive side a field map.
type Machine interface {
	Get(field string) uint64
	Set(field string, v uint64)
}

// Outcome is everything observable about one replay: final field values,
// the table decisions in order, SALU activity, digests, and the packet's
// fate. Two executors agree iff their Canonical() strings are equal.
type Outcome struct {
	Fields  map[string]uint64 `json:"fields"`
	Tables  []string          `json:"tables"` // "table:action" or "table:miss"
	SALU    []string          `json:"salu"`   // "register:program:cell0"
	Digests []string          `json:"digests"`
	Recircs int               `json:"recircs"`
	Dropped bool              `json:"dropped"`
}

// Canonical renders the outcome deterministically for diffing.
func (o *Outcome) Canonical() string {
	var b strings.Builder
	names := make([]string, 0, len(o.Fields))
	for n := range o.Fields {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d\n", n, o.Fields[n])
	}
	fmt.Fprintf(&b, "tables=%s\n", strings.Join(o.Tables, ";"))
	fmt.Fprintf(&b, "salu=%s\n", strings.Join(o.SALU, ";"))
	fmt.Fprintf(&b, "digests=%s\n", strings.Join(o.Digests, ";"))
	fmt.Fprintf(&b, "recircs=%d dropped=%v\n", o.Recircs, o.Dropped)
	return b.String()
}

// ExecState is the per-replay mutable state outside the PHV: register
// arrays (cell 0 carries the deterministic semantics), the RNG sequence
// counter, and the pending-recirculation flag.
type ExecState struct {
	Regs      map[string][]uint64
	Seq       uint64
	RecircReq bool
	Out       *Outcome
}

// NewExecState returns a fresh state with an empty outcome.
func NewExecState() *ExecState {
	return &ExecState{Regs: map[string][]uint64{}, Out: &Outcome{Fields: map[string]uint64{}}}
}

func (st *ExecState) reg(name string) []uint64 {
	r, ok := st.Regs[name]
	if !ok {
		r = make([]uint64, 1)
		st.Regs[name] = r
	}
	return r
}

// EvalCondString evaluates a gateway condition concretely. Conditions
// outside the generator grammar evaluate to false on both executors.
func EvalCondString(m Machine, s string) bool {
	cond, ok := p4ir.ParseCond(s)
	if !ok {
		return false
	}
	for _, a := range cond.Atoms {
		if !a.Op.Eval(m.Get(a.Field), a.Value) {
			return false
		}
	}
	return true
}

func fnvStr(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func fnvU64(seed string, vals ...uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(seed))
	var b [8]byte
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// srcValue resolves an op's Src operand: a numeric constant, a PHV field,
// or — for opaque expressions (list lookups, record slots) — a
// deterministic digest of the expression text, identical on both sides.
func srcValue(m Machine, op p4ir.Op) uint64 {
	if c, err := strconv.ParseUint(op.Src, 0, 64); err == nil {
		return c
	}
	if srcField(op.Src) {
		return m.Get(op.Src)
	}
	return fnvStr("src", op.Src)
}

func opMask(op p4ir.Op) uint64 {
	if op.Bits > 0 {
		return maxVal(op.Bits)
	}
	return ^uint64(0)
}

// ExecOp runs one primitive with deterministic semantics. RMW programs the
// generator emits as "+N"/"+N wrap M" increment cell 0 (wrapping to 0 past
// M); every other SALU program bumps the cell and is recorded opaquely.
func ExecOp(m Machine, st *ExecState, op p4ir.Op) {
	switch op.Kind {
	case p4ir.OpModifyField:
		m.Set(op.Dst, srcValue(m, op)&opMask(op))
	case p4ir.OpAddToField:
		m.Set(op.Dst, (m.Get(op.Dst)+srcValue(m, op))&opMask(op))
	case p4ir.OpRegisterRead:
		r := st.reg(op.Dst)
		st.Out.SALU = append(st.Out.SALU, fmt.Sprintf("%s:read:%d", op.Dst, r[0]))
	case p4ir.OpRegisterWrite:
		r := st.reg(op.Dst)
		r[0] = srcValue(m, op) & opMask(op)
		st.Out.SALU = append(st.Out.SALU, fmt.Sprintf("%s:write:%d", op.Dst, r[0]))
	case p4ir.OpRegisterRMW:
		r := st.reg(op.Dst)
		if inc, wrap, ok := parseIncrement(op.Src); ok {
			r[0] += inc
			if wrap > 0 && r[0] > wrap {
				r[0] = 0
			}
		} else {
			r[0]++
		}
		st.Out.SALU = append(st.Out.SALU, fmt.Sprintf("%s:%s:%d", op.Dst, op.Src, r[0]))
	case p4ir.OpHash:
		five := []uint64{
			m.Get("ipv4.sip"), m.Get("ipv4.dip"), m.Get("ipv4.proto"),
			m.Get("l4.sport"), m.Get("l4.dport"),
		}
		m.Set(op.Dst, fnvU64("hash:"+op.Src, five...)&opMask(op))
	case p4ir.OpRandom:
		st.Seq++
		m.Set(op.Dst, fnvU64("rand:"+op.Dst, st.Seq)&opMask(op))
	case p4ir.OpGenerateDigest:
		st.Out.Digests = append(st.Out.Digests, op.Dst)
	case p4ir.OpRecirculate:
		st.RecircReq = true
		st.Out.Recircs++
	case p4ir.OpMulticast:
		m.Set(op.Dst, srcValue(m, op)&opMask(op))
	case p4ir.OpDropPacket:
		st.Out.Dropped = true
	case p4ir.OpNoOp:
	}
}

// RunAction executes an action's ops in order.
func RunAction(m Machine, st *ExecState, a *p4ir.ActionDef) {
	for _, op := range a.Ops {
		ExecOp(m, st, op)
	}
}

// MatchEntries finds the matching entry with the IR-level semantics the
// ASIC tables implement: exact first-match, ternary and range by priority
// (higher wins, insertion order breaks ties).
func MatchEntries(t *p4ir.TableDef, entries []p4ir.Entry, keys []uint64) (int, bool) {
	best, bestPri := -1, 0
	for i := range entries {
		e := &entries[i]
		switch t.Match {
		case p4ir.MatchExact:
			ok := len(e.Values) == len(keys)
			for k := 0; ok && k < len(keys); k++ {
				ok = keys[k] == e.Values[k]
			}
			if ok {
				return i, true
			}
		case p4ir.MatchTernary:
			ok := len(e.Values) == len(keys)
			for k := 0; ok && k < len(keys); k++ {
				mask := ^uint64(0)
				if e.Masks != nil {
					mask = e.Masks[k]
				}
				ok = keys[k]&mask == e.Values[k]&mask
			}
			if ok && (best < 0 || e.Priority > bestPri) {
				best, bestPri = i, e.Priority
			}
		case p4ir.MatchRange:
			if len(keys) == 1 && keys[0] >= e.Lo && keys[0] <= e.Hi &&
				(best < 0 || e.Priority > bestPri) {
				best, bestPri = i, e.Priority
			}
		}
	}
	if best >= 0 {
		return best, true
	}
	return 0, false
}

// OutcomeFields is the deterministic field set both executors report: every
// name the width table knows, minus the l4 aliases (already captured via
// the transport header they resolve to).
func OutcomeFields() []string {
	names := make([]string, 0, len(fieldWidths))
	for n := range fieldWidths {
		if n == "l4.sport" || n == "l4.dport" {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WidthMask returns the all-ones mask of a named field's width, for
// executors outside this package that mirror the PHV masking rules.
func WidthMask(name string) uint64 { return maxVal(fieldWidth(name, 0)) }

// CaptureFields reads the outcome field set off a machine.
func CaptureFields(m Machine) map[string]uint64 {
	out := map[string]uint64{}
	for _, n := range OutcomeFields() {
		out[n] = m.Get(n)
	}
	return out
}

// NormalizeWitness makes the witness self-consistent for replay: the
// select fields implied by its header stack are pinned to the canonical
// values (a packet cannot be serialized otherwise), and fields of headers
// the packet does not carry are dropped.
func NormalizeWitness(wit *Witness) {
	has := map[string]bool{}
	for _, h := range wit.Headers {
		has[h] = true
	}
	if wit.Fields == nil {
		wit.Fields = map[string]uint64{}
	}
	if has["ipv4"] {
		wit.Fields["eth.type"] = 0x0800
	}
	switch {
	case has["tcp"]:
		wit.Fields["ipv4.proto"] = 6
	case has["udp"]:
		wit.Fields["ipv4.proto"] = 17
	case has["icmp"]:
		wit.Fields["ipv4.proto"] = 1
	}
	for name := range wit.Fields {
		if hdr := headerOf(name); hdr != "" && hdr != "l4" && !has[hdr] {
			delete(wit.Fields, name)
		}
	}
}

// MapMachine is the naive interpreter's PHV: a flat field map plus derived
// header validity. It mirrors the asic field codec's quirks independently:
// width masking per field, tcp.flag's 6 flag bits, VLAN writes dropped
// unless the header is present, read-only intrinsics never written.
type MapMachine struct {
	Vals  map[string]uint64
	Valid map[string]bool
}

// NewMapMachine seeds the machine from a (normalized) witness, deriving
// header validity by re-parsing the witness's own select fields — not by
// trusting wit.Headers — so a verifier bug that emits an inconsistent
// witness surfaces as a differential mismatch.
func NewMapMachine(wit Witness) *MapMachine {
	m := &MapMachine{Vals: map[string]uint64{}, Valid: map[string]bool{}}
	for k, v := range wit.Fields {
		m.Vals[k] = v & maxVal(fieldWidth(k, 0))
	}
	m.Valid["ethernet"] = true
	switch m.Vals["eth.type"] {
	case 0x0800:
		m.Valid["ipv4"] = true
	case 0x8100:
		m.Valid["vlan"] = true
	}
	if m.Valid["ipv4"] {
		switch m.Vals["ipv4.proto"] {
		case 6:
			m.Valid["tcp"] = true
		case 17:
			m.Valid["udp"] = true
		case 1:
			m.Valid["icmp"] = true
		}
	}
	m.Vals["meta.one"] = 1
	return m
}

// resolve routes the l4 aliases the way the asic codec does: TCP when the
// packet carries it, UDP otherwise.
func (m *MapMachine) resolve(name string) string {
	if name == "l4.sport" || name == "l4.dport" {
		if m.Valid["tcp"] {
			return "tcp" + name[2:]
		}
		return "udp" + name[2:]
	}
	return name
}

// Get reads a field; untouched fields of unparsed headers read 0, exactly
// like the asic's zeroed header structs.
func (m *MapMachine) Get(name string) uint64 {
	return m.Vals[m.resolve(name)]
}

// Set writes a field with the asic codec's masking rules.
func (m *MapMachine) Set(name string, v uint64) {
	name = m.resolve(name)
	switch name {
	case "meta.in_port", "pkt_len", "meta.ingress_ts", "meta.template_id":
		return // read-only intrinsics
	case "vlan.id", "vlan.pcp":
		if !m.Valid["vlan"] {
			return
		}
	case "tcp.flag":
		v &= 0x3f
	}
	m.Vals[name] = v & maxVal(fieldWidth(name, 0))
}

// Interp is the naive reference interpreter: it walks the IR control flow
// directly, matching tables by linear scan.
type Interp struct {
	Prog *p4ir.Program
	// Entries overrides/extends per-table entries (synthetic entries for
	// runtime-populated tables). A table absent here uses its IR entries.
	Entries map[string][]p4ir.Entry
}

// Run replays one witness and returns the outcome.
func (in *Interp) Run(wit Witness) *Outcome {
	m := NewMapMachine(wit)
	st := NewExecState()
	for pass := 0; ; pass++ {
		st.RecircReq = false
		in.walk(m, st, in.Prog.Ingress)
		in.walk(m, st, in.Prog.Egress)
		if !st.RecircReq || pass >= RecircCap {
			break
		}
	}
	st.Out.Fields = CaptureFields(m)
	return st.Out
}

func (in *Interp) walk(m Machine, st *ExecState, stmts []p4ir.ControlStmt) {
	for i := range stmts {
		s := &stmts[i]
		if s.Apply != "" {
			in.applyTable(m, st, s.Apply)
			continue
		}
		if EvalCondString(m, s.If) {
			in.walk(m, st, s.Then)
		} else {
			in.walk(m, st, s.Else)
		}
	}
}

func (in *Interp) applyTable(m Machine, st *ExecState, name string) {
	var t *p4ir.TableDef
	for _, cand := range in.Prog.Tables {
		if cand.Name == name {
			t = cand
			break
		}
	}
	if t == nil {
		return
	}
	entries := t.Entries
	if over, ok := in.Entries[name]; ok {
		entries = over
	}
	keys := make([]uint64, len(t.Keys))
	for i, kd := range t.Keys {
		keys[i] = m.Get(kd.Field)
	}
	idx, hit := MatchEntries(t, entries, keys)
	if !hit {
		st.Out.Tables = append(st.Out.Tables, name+":miss")
		return
	}
	act := entries[idx].ActionName(t)
	st.Out.Tables = append(st.Out.Tables, name+":"+act)
	for _, a := range in.Prog.Actions {
		if a.Name == act {
			RunAction(m, st, a)
			break
		}
	}
}
