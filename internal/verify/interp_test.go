package verify

import (
	"math/rand"
	"testing"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/p4ir"
)

// newTestPHV builds a PHV over a minimal UDP frame for table-lookup tests.
func newTestPHV(t *testing.T) *asic.PHV {
	t.Helper()
	raw, err := netproto.BuildUDP(netproto.UDPSpec{})
	if err != nil {
		t.Fatalf("BuildUDP: %v", err)
	}
	return asic.NewPHV(&netproto.Packet{Data: raw})
}

// TestMatchEntriesExactAgainstASIC drives MatchEntries and asic.Table with
// the same exact entries and random keys; the chosen action must agree.
func TestMatchEntriesExactAgainstASIC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	phv := newTestPHV(t)

	at := asic.NewTable("x", asic.MatchExact, asic.FieldIPv4Src, asic.FieldIPv4Dst)
	ir := &p4ir.TableDef{
		Name: "x", Match: p4ir.MatchExact,
		Keys: []p4ir.KeyDef{{Field: "ipv4.sip", Bits: 32}, {Field: "ipv4.dip", Bits: 32}},
	}
	fired := -1
	seen := map[[2]uint64]bool{}
	for i := 0; i < 16; i++ {
		k := [2]uint64{uint64(rng.Intn(8)), uint64(rng.Intn(8))}
		if seen[k] {
			continue // asic exact is a map: duplicates overwrite, linear scan doesn't
		}
		seen[k] = true
		idx := len(ir.Entries)
		if err := at.AddExact([]uint64{k[0], k[1]}, func(*asic.PHV) { fired = idx }); err != nil {
			t.Fatal(err)
		}
		ir.Entries = append(ir.Entries, p4ir.Entry{Values: []uint64{k[0], k[1]}})
	}

	for trial := 0; trial < 500; trial++ {
		sip, dip := uint64(rng.Intn(10)), uint64(rng.Intn(10))
		asic.FieldIPv4Src.Set(phv, sip)
		asic.FieldIPv4Dst.Set(phv, dip)
		fired = -1
		hitA := at.Apply(phv)
		idxI, hitI := MatchEntries(ir, ir.Entries, []uint64{sip, dip})
		if hitA != hitI {
			t.Fatalf("trial %d keys (%d,%d): asic hit=%v interp hit=%v", trial, sip, dip, hitA, hitI)
		}
		if hitA && fired != idxI {
			t.Fatalf("trial %d keys (%d,%d): asic entry %d, interp entry %d", trial, sip, dip, fired, idxI)
		}
	}
}

// TestMatchEntriesTernaryAgainstASIC checks priority and tie-break
// agreement on random value/mask entries.
func TestMatchEntriesTernaryAgainstASIC(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	phv := newTestPHV(t)

	at := asic.NewTable("x", asic.MatchTernary, asic.FieldIPv4Src)
	ir := &p4ir.TableDef{
		Name: "x", Match: p4ir.MatchTernary,
		Keys: []p4ir.KeyDef{{Field: "ipv4.sip", Bits: 32}},
	}
	fired := -1
	for i := 0; i < 24; i++ {
		v, m := uint64(rng.Intn(16)), uint64(rng.Intn(16))
		pri := rng.Intn(4)
		idx := len(ir.Entries)
		if err := at.AddTernary([]uint64{v}, []uint64{m}, pri, func(*asic.PHV) { fired = idx }); err != nil {
			t.Fatal(err)
		}
		ir.Entries = append(ir.Entries, p4ir.Entry{Values: []uint64{v}, Masks: []uint64{m}, Priority: pri})
	}

	for trial := 0; trial < 500; trial++ {
		key := uint64(rng.Intn(16))
		asic.FieldIPv4Src.Set(phv, key)
		fired = -1
		hitA := at.Apply(phv)
		idxI, hitI := MatchEntries(ir, ir.Entries, []uint64{key})
		if hitA != hitI {
			t.Fatalf("trial %d key %d: asic hit=%v interp hit=%v", trial, key, hitA, hitI)
		}
		if !hitA {
			continue
		}
		// The asic table re-sorts entries; agreement is on the selected
		// entry's identity, recorded through the action closure.
		if a, b := ir.Entries[fired], ir.Entries[idxI]; a.Priority != b.Priority ||
			a.Values[0]&a.Masks[0] != key&a.Masks[0] || b.Values[0]&b.Masks[0] != key&b.Masks[0] {
			t.Fatalf("trial %d key %d: asic entry %d (pri %d), interp entry %d (pri %d)",
				trial, key, fired, a.Priority, idxI, b.Priority)
		}
	}
}

// TestMatchEntriesRangeAgainstASIC checks range matching with priorities.
func TestMatchEntriesRangeAgainstASIC(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	phv := newTestPHV(t)

	at := asic.NewTable("x", asic.MatchRange, asic.FieldL4DstPort)
	ir := &p4ir.TableDef{
		Name: "x", Match: p4ir.MatchRange,
		Keys: []p4ir.KeyDef{{Field: "l4.dport", Bits: 16}},
	}
	fired := -1
	for i := 0; i < 12; i++ {
		lo := uint64(rng.Intn(100))
		hi := lo + uint64(rng.Intn(40))
		pri := rng.Intn(3)
		idx := len(ir.Entries)
		if err := at.AddRange(lo, hi, pri, func(*asic.PHV) { fired = idx }); err != nil {
			t.Fatal(err)
		}
		ir.Entries = append(ir.Entries, p4ir.Entry{Lo: lo, Hi: hi, Priority: pri})
	}

	for trial := 0; trial < 500; trial++ {
		key := uint64(rng.Intn(160))
		asic.FieldL4DstPort.Set(phv, key)
		fired = -1
		hitA := at.Apply(phv)
		idxI, hitI := MatchEntries(ir, ir.Entries, []uint64{key})
		if hitA != hitI {
			t.Fatalf("trial %d key %d: asic hit=%v interp hit=%v", trial, key, hitA, hitI)
		}
		if !hitA {
			continue
		}
		a, b := ir.Entries[fired], ir.Entries[idxI]
		if a.Priority != b.Priority || key < b.Lo || key > b.Hi {
			t.Fatalf("trial %d key %d: asic [%d,%d] pri %d, interp [%d,%d] pri %d",
				trial, key, a.Lo, a.Hi, a.Priority, b.Lo, b.Hi, b.Priority)
		}
	}
}

func TestEvalCondString(t *testing.T) {
	m := &MapMachine{Vals: map[string]uint64{"meta.x": 7}, Valid: map[string]bool{}}
	cases := []struct {
		cond string
		want bool
	}{
		{"true", true},
		{"", true},
		{"meta.x == 7", true},
		{"meta.x != 7", false},
		{"meta.x >= 2 and meta.x <= 10", true},
		{"meta.x < 7", false},
		{"now - last >= interval", false}, // opaque: false on both executors
	}
	for _, c := range cases {
		if got := EvalCondString(m, c.cond); got != c.want {
			t.Errorf("EvalCondString(%q) = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestMapMachineMirrorsASICQuirks(t *testing.T) {
	wit := Witness{
		Headers: []string{"ethernet", "ipv4", "tcp"},
		Fields:  map[string]uint64{"eth.type": 0x0800, "ipv4.proto": 6, "pkt_len": 128},
	}
	m := NewMapMachine(wit)
	if !m.Valid["tcp"] || m.Valid["udp"] {
		t.Fatalf("validity re-parse wrong: %v", m.Valid)
	}
	m.Set("tcp.flag", 0xFF)
	if got := m.Get("tcp.flag"); got != 0x3f {
		t.Fatalf("tcp.flag mask: got %#x want 0x3f", got)
	}
	m.Set("pkt_len", 9999)
	if got := m.Get("pkt_len"); got != 128 {
		t.Fatalf("pkt_len is read-only: got %d", got)
	}
	m.Set("vlan.id", 5)
	if got := m.Get("vlan.id"); got != 0 {
		t.Fatalf("vlan.id write without VLAN header must drop: got %d", got)
	}
	m.Set("l4.sport", 4242)
	if got := m.Get("tcp.sport"); got != 4242 {
		t.Fatalf("l4.sport should route to tcp.sport: got %d", got)
	}
	m.Set("ipv4.ttl", 0x1FF)
	if got := m.Get("ipv4.ttl"); got != 0xFF {
		t.Fatalf("ipv4.ttl width mask: got %#x", got)
	}
}

// TestInterpSmoke replays a small program end to end: gateway, table hit,
// register bump, recirculation capped.
func TestInterpSmoke(t *testing.T) {
	p := &p4ir.Program{
		Name:    "smoke",
		Headers: []string{"ethernet", "ipv4"},
		Parser:  []p4ir.ParserEdge{{From: "ethernet", To: "ipv4"}},
	}
	p.AddRegister(&p4ir.RegisterDef{Name: "cnt", Width: 32, Size: 1})
	p.AddAction(&p4ir.ActionDef{Name: "spin", Ops: []p4ir.Op{
		{Kind: p4ir.OpRegisterRMW, Dst: "cnt", Src: "+1", Bits: 32},
		{Kind: p4ir.OpRecirculate, Dst: "recirc_port"},
	}})
	p.AddTable(&p4ir.TableDef{
		Name: "accel", Pipeline: p4ir.PipeIngress, Match: p4ir.MatchExact,
		Keys:    []p4ir.KeyDef{{Field: "meta.template_id", Bits: 16}},
		Actions: []string{"spin"}, Size: 1,
		Entries: []p4ir.Entry{{Values: []uint64{3}}},
	})
	p.Ingress = []p4ir.ControlStmt{{
		If:   "meta.template_id != 0",
		Then: []p4ir.ControlStmt{{Apply: "accel"}},
	}}

	in := &Interp{Prog: p}
	wit := Witness{
		Headers: []string{"ethernet", "ipv4"},
		Fields:  map[string]uint64{"eth.type": 0x0800, "meta.template_id": 3},
	}
	out := in.Run(wit)
	// One initial pass plus RecircCap recirculated passes, each hitting.
	if want := RecircCap + 1; out.Recircs != want {
		t.Fatalf("recircs = %d, want %d (capped)", out.Recircs, want)
	}
	if len(out.Tables) != RecircCap+1 || out.Tables[0] != "accel:spin" {
		t.Fatalf("table log wrong: %v", out.Tables)
	}
	if len(out.SALU) == 0 || out.SALU[len(out.SALU)-1] != "cnt:+1:4" {
		t.Fatalf("register trace wrong: %v", out.SALU)
	}

	// A non-template packet misses the gateway entirely.
	out = in.Run(Witness{Headers: []string{"ethernet"}, Fields: map[string]uint64{}})
	if len(out.Tables) != 0 || out.Recircs != 0 {
		t.Fatalf("non-template packet should do nothing: %+v", out)
	}
}
