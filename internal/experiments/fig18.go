package experiments

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/moongen"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/stats"
	"github.com/hypertester/hypertester/internal/testbed"
)

// Fig18DelayTesting reproduces the delay-testing case study (Fig. 18):
// measuring a Tofino DUT's forwarding delay with HyperTester and MoonGen,
// using hardware (MAC/NIC) and software (P4 pipeline / CPU) timestamps,
// plus the state-based variant. Smaller measured delay = better accuracy;
// the known true delay of the simulated DUT anchors the comparison.
func Fig18DelayTesting(cfg Config) *Result {
	res := &Result{
		ID:      "Fig. 18",
		Title:   "Delay testing: measured DUT forwarding delay (ns)",
		Columns: []string{"mean", "stddev", "vs truth"},
	}
	n := 5000
	if cfg.Quick {
		n = 1000
	}

	// Ground truth: DUT pipeline traversal + 64B serialization.
	truth := float64(asic.IngressLatencyNs+asic.TMLatencyNs+asic.EgressLatencyNs+asic.MACTxLatencyNs) +
		netproto.WireTimeNs(64, 100)

	// --- HyperTester side: tester switch -> DUT -> back, true MAC times
	// observed at the wire; timestamp models applied per method.
	txT, rxT, err := htProbeTimes(cfg, n)
	if err != nil {
		return errResult(res, err)
	}
	rng := netsim.NewRNG(cfg.Seed, "fig18")
	addRow := func(label string, delays []float64) {
		m := stats.Mean(delays)
		res.Rows = append(res.Rows, Row{
			Label:  label,
			Values: []string{f1(m), f2(stats.StdDev(delays)), fmt.Sprintf("%+.0f", m-truth)},
		})
	}
	method := func(txAdj, rxAdj func(float64) float64) []float64 {
		out := make([]float64, 0, len(txT))
		for i := range txT {
			out = append(out, rxAdj(rxT[i])-txAdj(txT[i]))
		}
		return out
	}
	jitter := func(spread float64) func(float64) float64 {
		return func(t float64) float64 { return t + float64(rng.Jitter(netsim.Ns(spread)))/1e3 }
	}
	// HW: MAC timestamps, ±2ns.
	addRow("HyperTester-HW", method(jitter(2), jitter(2)))
	// SW: P4-pipeline timestamps — taken one pipeline stage away from the
	// MAC on each side, slightly inflating the measured delay.
	swTx := func(t float64) float64 {
		return t - float64(asic.MACTxLatencyNs) - netproto.WireTimeNs(64, 100) + float64(rng.Jitter(3000))/1e3
	}
	swRx := func(t float64) float64 {
		return t + float64(asic.IngressLatencyNs) + float64(rng.Jitter(3000))/1e3
	}
	addRow("HyperTester-SW", method(swTx, swRx))
	// State-based: the egress MAC timestamp lands in a register; accuracy
	// tracks the HW path with register-read granularity on top.
	addRow("HyperTester-state", method(jitter(4), jitter(4)))

	// --- MoonGen side: same DUT, generator and timestamp models from the
	// software baseline.
	mgTx, mgRx, err := mgProbeTimes(cfg, n)
	if err != nil {
		return errResult(res, err)
	}
	g := moongen.New(netsim.New(), moongen.Config{Name: "ts", PortGbps: 10, FrameLen: 64, Seed: cfg.Seed})
	// Software timestamps compound: the TX stamp is taken in the CPU loop
	// *before* the NIC DMA (early by the software path latency), the RX
	// stamp *after* it (late), so the biases add instead of cancelling.
	swBias := (netsim.Duration(moongen.SWTimestampMean)).Nanoseconds()
	mgMethod := func(hw bool) []float64 {
		out := make([]float64, 0, len(mgTx))
		for i := range mgTx {
			var tx, rx float64
			if hw {
				tx = g.HWTimestamp(netsim.Time(mgTx[i] * 1e3)).Nanoseconds()
				rx = g.HWTimestamp(netsim.Time(mgRx[i] * 1e3)).Nanoseconds()
			} else {
				tx = g.SWTimestamp(netsim.Time(mgTx[i]*1e3)).Nanoseconds() - 2*swBias
				rx = g.SWTimestamp(netsim.Time(mgRx[i] * 1e3)).Nanoseconds()
			}
			out = append(out, rx-tx)
		}
		return out
	}
	addRow("MoonGen-HW", mgMethod(true))
	addRow("MoonGen-SW", mgMethod(false))
	mgState := mgMethod(false)
	for i := range mgState {
		mgState[i] += float64(rng.Jitter(500*netsim.Nanosecond)) / 1e3
	}
	addRow("MoonGen-state", mgState)

	res.Rows = append(res.Rows, Row{Label: "true DUT delay", Values: []string{f1(truth), "-", "+0"}})
	res.Notes = append(res.Notes,
		"paper Fig. 18: HW timestamps are most accurate; HyperTester-SW is close to HW; MoonGen-SW deviates by over 3x; state-based results track the timestamp-based ones")
	return res
}

// htProbeTimes sends n probes from a tester switch through a forwarding DUT
// and returns the true MAC egress/ingress times (ns) for each probe.
func htProbeTimes(cfg Config, n int) (tx, rx []float64, err error) {
	sim := netsim.New()
	tester := asic.New(asic.Config{Name: "ht", Sim: sim, PortGbps: []float64{100, 100}, Seed: cfg.Seed})
	dut := testbed.NewForwardingDUT(sim, "dut", []float64{100, 100}, map[int]int{0: 1}, cfg.Seed+1)

	txAt := map[uint64]float64{}
	// Tap the cable: record exact MAC egress, then deliver to the DUT.
	tester.Port(0).SetPeer(func(pkt *netproto.Packet, at netsim.Time) {
		txAt[pkt.Meta.UID] = at.Nanoseconds()
		dut.Port(0).Receive(pkt)
	})
	dut.Port(1).SetPeer(func(pkt *netproto.Packet, at netsim.Time) {
		if t, ok := txAt[pkt.Meta.UID]; ok {
			tx = append(tx, t)
			rx = append(rx, at.Nanoseconds())
		}
	})
	tester.Ingress.Add(asic.ProcessorFunc(func(p *asic.PHV) { p.EgressPort = 0 }))

	raw, err := netproto.BuildUDP(netproto.UDPSpec{SrcIP: 1, DstIP: 2, SrcPort: 7, DstPort: 7, FrameLen: 64})
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < n; i++ {
		pkt := &netproto.Packet{Data: append([]byte(nil), raw...)}
		pkt.Meta.UID = uint64(i + 1)
		at := netsim.Time(int64(i) * int64(2*netsim.Microsecond))
		sim.At(at, func() { tester.Port(1).Receive(pkt) })
	}
	sim.Run()
	return tx, rx, nil
}

// mgProbeTimes sends n probes from a MoonGen generator through the same DUT.
func mgProbeTimes(cfg Config, n int) (tx, rx []float64, err error) {
	sim := netsim.New()
	g := moongen.New(sim, moongen.Config{
		Name: "mg", PortGbps: 100, FrameLen: 64,
		TargetPps: 5e5, HWRateControl: true, Seed: cfg.Seed,
	})
	dut := testbed.NewForwardingDUT(sim, "dut", []float64{100, 100}, map[int]int{0: 1}, cfg.Seed+2)
	txAt := map[uint64]float64{}
	g.Iface.SetPeer(func(pkt *netproto.Packet, at netsim.Time) {
		txAt[pkt.Meta.UID] = at.Nanoseconds()
		dut.Port(0).Receive(pkt)
	})
	dut.Port(1).SetPeer(func(pkt *netproto.Packet, at netsim.Time) {
		if t, ok := txAt[pkt.Meta.UID]; ok {
			tx = append(tx, t)
			rx = append(rx, at.Nanoseconds())
		}
	})
	g.Start(netsim.Time(int64(n) * int64(2*netsim.Microsecond)))
	sim.Run()
	return tx, rx, nil
}
