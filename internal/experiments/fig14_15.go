package experiments

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/stats"
)

// Fig14Accelerator reproduces Fig. 14: the template-packet recirculation
// round-trip time (mean and RMSE) and the accelerator capacity, across
// template sizes.
func Fig14Accelerator(cfg Config) *Result {
	res := &Result{
		ID:      "Fig. 14",
		Title:   "Accelerator: recirculation RTT and capacity",
		Columns: []string{"RTT mean (ns)", "RTT RMSE (ns)", "capacity"},
	}
	loops := 20000
	if cfg.Quick {
		loops = 3000
	}
	for _, size := range packetSizes {
		sim := netsim.New()
		sw := asic.New(asic.Config{Name: "sw", Sim: sim, PortGbps: []float64{100}, Seed: cfg.Seed})
		var arrivals []float64
		sw.Ingress.Add(asic.ProcessorFunc(func(p *asic.PHV) {
			if p.Meta.InPort >= asic.RecircPortBase {
				arrivals = append(arrivals, netsim.Time(p.Meta.IngressPs).Nanoseconds())
			}
			if len(arrivals) >= loops {
				p.Drop = true
				return
			}
			p.Recirculate = true
		}))
		raw, err := netproto.BuildUDP(netproto.UDPSpec{
			SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, FrameLen: size})
		if err != nil {
			return errResult(res, err)
		}
		sw.Port(0).Receive(&netproto.Packet{Data: raw})
		sim.Run()

		gaps := stats.Gaps(arrivals[1:]) // skip the front-panel entry hop
		mean := stats.Mean(gaps)
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%dB", size),
			Values: []string{
				f1(mean),
				f2(stats.RMSE(gaps, mean)),
				fmt.Sprintf("%d", asic.AcceleratorCapacity(size)),
			},
		})
	}
	res.Notes = append(res.Notes,
		"paper Fig. 14: 64B completes a loop in ~570ns with RMSE <5ns; capacity 89 at 64B, shrinking with size")
	return res
}

// Fig15Replicator reproduces Fig. 15: the multicast-engine delay across
// packet sizes, and its (near-zero) sensitivity to port count and speed.
func Fig15Replicator(cfg Config) *Result {
	res := &Result{
		ID:      "Fig. 15",
		Title:   "Replicator: mcast engine delay",
		Columns: []string{"delay mean (ns)", "RMSE (ns)"},
	}
	n := 3000
	if cfg.Quick {
		n = 500
	}
	// (a) impact of packet size, 1 mcast port at 100G.
	for _, size := range []int{64, 256, 512, 1024, 1280} {
		mean, rmse, err := mcastDelay(cfg, size, 1, 100, n)
		if err != nil {
			return errResult(res, err)
		}
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%dB x1port@100G", size),
			Values: []string{f1(mean), f2(rmse)},
		})
	}
	// (b) impact of port count and speed on 64B packets.
	for _, pc := range []struct {
		ports int
		gbps  float64
	}{{2, 100}, {4, 100}, {8, 100}, {4, 40}, {4, 10}} {
		mean, rmse, err := mcastDelay(cfg, 64, pc.ports, pc.gbps, n)
		if err != nil {
			return errResult(res, err)
		}
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("64B x%dports@%.0fG", pc.ports, pc.gbps),
			Values: []string{f1(mean), f2(rmse)},
		})
	}
	res.Notes = append(res.Notes,
		"paper Fig. 15: ~389ns at 64B rising ~65ns by 1280B, RMSE <4.5ns; port count and speed have close-to-zero impact")
	return res
}

// mcastDelay measures the extra delay replication adds over the unicast
// path, by timestamping copies at egress-pipeline entry.
func mcastDelay(cfg Config, size, ports int, gbps float64, n int) (mean, rmse float64, err error) {
	sim := netsim.New()
	rates := make([]float64, ports+1)
	for i := range rates {
		rates[i] = gbps
	}
	sw := asic.New(asic.Config{Name: "sw", Sim: sim, PortGbps: rates, Seed: cfg.Seed})
	copies := []asic.CopySpec{}
	for p := 1; p <= ports; p++ {
		copies = append(copies, asic.CopySpec{Port: p, Rid: p})
	}
	if err := sw.Mcast.SetGroup(1, copies); err != nil {
		return 0, 0, err
	}
	// Carry the ingress-end timestamp to the copies in packet metadata
	// (SeqID is unused in this controlled experiment).
	sw.Ingress.Add(asic.ProcessorFunc(func(p *asic.PHV) {
		p.Meta.SeqID = uint64(sim.Now())
		p.McastGroup = 1
	}))
	var delays []float64
	sw.Egress.Add(asic.ProcessorFunc(func(p *asic.PHV) {
		// Replication delay = egress-entry time minus ingress-end time
		// minus the baseline TM latency.
		d := float64(uint64(sim.Now())-p.Meta.SeqID)/1e3 - float64(asic.TMLatencyNs)
		delays = append(delays, d)
	}))

	raw, err := netproto.BuildUDP(netproto.UDPSpec{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, FrameLen: size})
	if err != nil {
		return 0, 0, err
	}
	// Send n packets, spaced enough to avoid queueing.
	gap := netsim.Ns(3 * netproto.WireTimeNs(size, gbps))
	if gap < netsim.Ns(asic.McastDelayNs(size)*2) {
		gap = netsim.Ns(asic.McastDelayNs(size) * 2)
	}
	for i := 0; i < n; i++ {
		pkt := &netproto.Packet{Data: append([]byte(nil), raw...)}
		pkt.Meta.UID = uint64(i + 1)
		at := netsim.Time(int64(i) * int64(gap))
		sim.At(at, func() { sw.Port(0).Receive(pkt) })
	}
	sim.Run()
	mean = stats.Mean(delays)
	return mean, stats.RMSE(delays, mean), nil
}
