package experiments

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/moongen"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/testbed"
)

func throughputSrc(size int, ports string) string {
	return fmt.Sprintf(`
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set(length, %d)
    .set(port, %s)
`, size, ports)
}

var packetSizes = []int{64, 128, 256, 512, 1024, 1500}

// Fig9SinglePort reproduces Fig. 9: single-port throughput across packet
// sizes for HyperTester at 100G and 40G (line rate everywhere) versus a
// single-core MoonGen on a 40G port (CPU-bound for small packets).
func Fig9SinglePort(cfg Config) *Result {
	window := 200 * netsim.Microsecond
	if cfg.Quick {
		window = 60 * netsim.Microsecond
	}
	res := &Result{
		ID:      "Fig. 9",
		Title:   "Single-port throughput vs packet size (Gbps)",
		Columns: []string{"HT@100G", "HT@40G", "MG@40G(1 core)", "line@40G"},
	}
	for _, size := range packetSizes {
		var vals []string
		for _, gbps := range []float64{100, 40} {
			sinks, _, _, err := htGenerate(cfg, throughputSrc(size, "0"), []float64{gbps}, cfg.Seed,
				30*netsim.Microsecond, window, false)
			if err != nil {
				return errResult(res, err)
			}
			vals = append(vals, f1(sinks[0].ThroughputGbps()))
		}
		// MoonGen, one core on a 40G port, max speed.
		sim := netsim.New()
		g := moongen.New(sim, moongen.Config{Name: "mg", PortGbps: 40, FrameLen: size, Seed: cfg.Seed})
		sink := testbed.NewSink(sim, "sink", 40)
		testbed.Connect(sim, g.Iface, sink.Iface, 0)
		g.Start(netsim.Time(window))
		sim.RunUntil(netsim.Time(window + netsim.Millisecond))
		vals = append(vals, f1(sink.ThroughputGbps()), f1(40))
		res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("%dB", size), Values: vals})
	}
	res.Notes = append(res.Notes,
		"paper Fig. 9: HT at line rate for all sizes on both port speeds; MG cannot fill 40G below ~320B with one core")
	return res
}

// Fig10MultiPort reproduces Fig. 10: aggregate 64-byte throughput as ports
// (HyperTester, 100G each) or cores (MoonGen, one per 10G port) are added.
func Fig10MultiPort(cfg Config) *Result {
	window := 100 * netsim.Microsecond
	if cfg.Quick {
		window = 50 * netsim.Microsecond
	}
	res := &Result{
		ID:      "Fig. 10",
		Title:   "Multi-port 64B throughput (Gbps aggregate)",
		Columns: []string{"HT n x 100G", "MG n cores x 10G"},
	}
	maxN := 8
	if cfg.Quick {
		maxN = 4
	}
	for n := 1; n <= maxN; n++ {
		htVal := "-"
		if n <= 4 { // the testbed tops out at 4x100G (Fig. 8)
			ports := make([]float64, n)
			portList := ""
			for i := range ports {
				ports[i] = 100
				if i > 0 {
					portList += ", "
				}
				portList += fmt.Sprintf("%d", i)
			}
			sinks, _, _, err := htGenerate(cfg, throughputSrc(64, "["+portList+"]"), ports, cfg.Seed,
				30*netsim.Microsecond, window, false)
			if err != nil {
				return errResult(res, err)
			}
			total := 0.0
			for _, s := range sinks {
				total += s.ThroughputGbps()
			}
			htVal = f1(total)
		}
		// MoonGen: n cores, each driving its own 10G port. The pairs are
		// disjoint, so each generator and sink gets its own logical
		// process when the parallel engine is enabled.
		p := testbed.NewPartition(cfg.simWorkers())
		total := 0.0
		sinks := make([]*testbed.Sink, n)
		for i := 0; i < n; i++ {
			g := moongen.New(p.LP(fmt.Sprintf("mg%d", i)), moongen.Config{
				Name: fmt.Sprintf("mg%d", i), PortGbps: 10, FrameLen: 64, Seed: cfg.Seed + int64(i)})
			sinks[i] = testbed.NewSink(p.LP(fmt.Sprintf("mgsink%d", i)), "sink", 10)
			p.Connect(g.Iface, sinks[i].Iface, 0)
			g.Start(netsim.Time(window))
		}
		p.RunUntil(netsim.Time(window + netsim.Millisecond))
		for _, s := range sinks {
			total += s.ThroughputGbps()
		}
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("n=%d", n),
			Values: []string{htVal, f1(total)},
		})
	}
	res.Notes = append(res.Notes,
		"paper Fig. 10: HT holds line rate per port (400G with 4 ports in the testbed); MG adds ~10G per core up to 80G with 8 cores")
	return res
}

func errResult(res *Result, err error) *Result {
	res.Notes = append(res.Notes, "ERROR: "+err.Error())
	return res
}
