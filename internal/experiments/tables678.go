package experiments

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/costmodel"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/p4ir"
)

// Table6Cost reproduces Table 6: equipment and power cost per Tbps.
func Table6Cost(cfg Config) *Result {
	res := &Result{
		ID:      "Table 6",
		Title:   "Power and equipment cost comparison (per Tbps)",
		Columns: []string{"Equipment", "Power"},
	}
	mg := costmodel.MoonGenServer.Normalize()
	ht := costmodel.HyperTesterSwitch.Normalize()
	sav := costmodel.Savings(costmodel.MoonGenServer, costmodel.HyperTesterSwitch)
	res.Rows = append(res.Rows,
		Row{Label: "MoonGen", Values: []string{
			fmt.Sprintf("$%.0f", mg.EquipmentUSD), fmt.Sprintf("%.0fW", mg.PowerWatts)}},
		Row{Label: "HyperTester", Values: []string{
			fmt.Sprintf("$%.0f", ht.EquipmentUSD), fmt.Sprintf("%.0fW", ht.PowerWatts)}},
		Row{Label: "HyperTester saving", Values: []string{
			fmt.Sprintf("$%.0f", sav.EquipmentUSD), fmt.Sprintf("%.0fW", sav.PowerWatts)}},
	)
	res.Notes = append(res.Notes,
		fmt.Sprintf("a 6.5Tbps switch replaces %d 8-core servers; paper: $38,400 and 7,150W saved per Tbps",
			costmodel.ServersReplacedBy(6.5)))
	return res
}

// table7Cases are the NTAPI constructs Table 7 prices, each expressed as a
// minimal task whose resource delta against a baseline isolates the
// component.
var table7Cases = []struct {
	label    string
	src      string
	baseline string // subtracted, "" = empty
}{
	{
		label: "accelerator+replicator(0)",
		src:   `T1 = trigger().set([dip, proto], [9.9.9.9, udp]).set(port, 0)`,
	},
	{
		label:    "replicator(100) rate control",
		src:      `T1 = trigger().set([dip, proto], [9.9.9.9, udp]).set(interval, 100us).set(port, 0)`,
		baseline: ``,
	},
	{
		label:    "set(tcp.dp, range(80,100,2))",
		src:      `T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(tcp.dport, range(80, 100, 2)).set(port, 0)`,
		baseline: `T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(port, 0)`,
	},
	{
		label:    "set(tcp.dp, rand('E',128,16))",
		src:      `T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(tcp.dport, random('E', 128, 0, 16)).set(port, 0)`,
		baseline: `T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(port, 0)`,
	},
	{
		label:    "filter(tcp.flag==SYN)",
		src:      "T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(port, 0)\nQ1 = query().filter(tcp_flag == SYN)",
		baseline: `T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(port, 0)`,
	},
	{
		label:    "distinct(keys={5-tuple})",
		src:      "T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(sport, range(1024, 2047, 1)).set(port, 0)\nQ1 = query().distinct()",
		baseline: `T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(sport, range(1024, 2047, 1)).set(port, 0)`,
	},
	{
		label:    "reduce(keys={ipv4.dip},func=sum)",
		src:      "T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(sport, range(1024, 2047, 1)).set(port, 0)\nQ1 = query().map(p -> (pkt_len)).reduce(keys={ipv4.dip}, func=sum)",
		baseline: `T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(sport, range(1024, 2047, 1)).set(port, 0)`,
	},
}

// Table7Resources reproduces Table 7: data-plane resources per NTAPI
// construct, normalized by switch.p4.
func Table7Resources(cfg Config) *Result {
	res := &Result{
		ID:      "Table 7",
		Title:   "Hardware resources by component (% of switch.p4)",
		Columns: []string{"Crossbar", "SRAM", "TCAM", "VLIW", "Hash Bits", "SALU", "Gateway"},
	}
	resources := func(src string) (p4ir.Resources, error) {
		if src == "" {
			return p4ir.Resources{}, nil
		}
		task, err := ntapi.Parse("t7", src)
		if err != nil {
			return p4ir.Resources{}, err
		}
		prog, err := compiler.Compile(task, compiler.Options{ArraySize: 1 << 16})
		if err != nil {
			return p4ir.Resources{}, err
		}
		return prog.Resources, nil
	}
	for _, c := range table7Cases {
		full, err := resources(c.src)
		if err != nil {
			return errResult(res, err)
		}
		base, err := resources(c.baseline)
		if err != nil {
			return errResult(res, err)
		}
		delta := p4ir.Resources{
			CrossbarBytes: full.CrossbarBytes - base.CrossbarBytes,
			SRAMBlocks:    full.SRAMBlocks - base.SRAMBlocks,
			TCAMBlocks:    full.TCAMBlocks - base.TCAMBlocks,
			VLIWSlots:     full.VLIWSlots - base.VLIWSlots,
			HashBits:      full.HashBits - base.HashBits,
			SALUs:         full.SALUs - base.SALUs,
			Gateways:      full.Gateways - base.Gateways,
		}
		n := delta.Normalize(p4ir.SwitchP4Baseline)
		res.Rows = append(res.Rows, Row{
			Label: c.label,
			Values: []string{
				f2(n.Crossbar) + "%", f2(n.SRAM) + "%", f2(n.TCAM) + "%",
				f2(n.VLIW) + "%", f2(n.HashBits) + "%", f2(n.SALU) + "%", f2(n.Gateway) + "%",
			},
		})
	}
	res.Notes = append(res.Notes,
		"paper Table 7: triggers cost <3% everywhere; distinct/reduce are moderate except SALU (33-45%), inflated because switch.p4 itself uses few SALUs")
	return res
}

// Table8SynFlood reproduces Table 8: SYN-flood emulation throughput on the
// 4x100G testbed plus the 6.5Tbps estimation.
func Table8SynFlood(cfg Config) *Result {
	res := &Result{
		ID:      "Table 8",
		Title:   "SYN flood attack emulation",
		Columns: []string{"Testbed (4x100G)", "Estimation (6.5T @80%)"},
	}
	window := 100 * netsim.Microsecond
	if cfg.Quick {
		window = 50 * netsim.Microsecond
	}
	sinks, _, _, err := htGenerate(cfg, TaskSynFlood, []float64{100, 100, 100, 100}, cfg.Seed,
		30*netsim.Microsecond, window, false)
	if err != nil {
		return errResult(res, err)
	}
	var gbps, pps float64
	for _, s := range sinks {
		gbps += s.ThroughputGbps()
		pps += s.RatePps()
	}
	est := costmodel.EstimateSynFlood(6500, 0.8)
	measured := costmodel.SynFlood{
		ThroughputGbps: gbps,
		SynPacketMpps:  pps / 1e6,
		EmulatedAgents: gbps * 1e3 / costmodel.AgentTrafficMbps,
	}
	res.Rows = append(res.Rows,
		Row{Label: "Throughput", Values: []string{
			f0(measured.ThroughputGbps) + " Gbps", f0(est.ThroughputGbps) + " Gbps"}},
		Row{Label: "SYN packets", Values: []string{
			f0(measured.SynPacketMpps) + " Mpps", f0(est.SynPacketMpps) + " Mpps"}},
		Row{Label: "# emulated agents", Values: []string{
			fmt.Sprintf("%.1e", measured.EmulatedAgents), fmt.Sprintf("%.1e", est.EmulatedAgents)}},
	)
	res.Notes = append(res.Notes,
		"paper Table 8: 400Gbps / 595Mpps / 4e5 agents on the testbed; 5.2Tbps / 7737Mpps / 5.2e6 agents estimated")
	return res
}
