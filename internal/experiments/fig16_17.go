package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/switchcpu"
)

// Fig16StatCollection reproduces Fig. 16: push-mode digest goodput across
// message sizes, and pull-mode latency for counter collection with and
// without batching.
func Fig16StatCollection(cfg Config) *Result {
	res := &Result{
		ID:      "Fig. 16",
		Title:   "Test statistic collection",
		Columns: []string{"value"},
	}

	// (a) digest goodput vs message size: offer digests faster than the
	// channel drains them for a window and measure CPU-side bytes/s.
	window := 3 * netsim.Second
	if cfg.Quick {
		window = 1 * netsim.Second
	}
	for _, msgSize := range []int{16, 32, 64, 128, 256} {
		sim := netsim.New()
		sw := asic.New(asic.Config{Name: "sw", Sim: sim, PortGbps: []float64{100}, Seed: cfg.Seed})
		cpu := switchcpu.New(sim, sw)
		// The experiment only counts digest bytes, so skip retaining copies
		// of every message (the pooled digest buffers then recirculate).
		cpu.RetainDigests = false
		msg := make([]byte, msgSize)
		sw.Ingress.Add(asic.ProcessorFunc(func(p *asic.PHV) {
			p.DigestData = msg
			p.Drop = true
		}))
		raw, _ := netproto.BuildUDP(netproto.UDPSpec{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, FrameLen: 64})
		// Offer 10K digests/s — well above the channel's drain rate. One
		// self-rescheduling injector replaces a pre-scheduled event (and a
		// fresh frame copy) per offer: the dropped frames recycle through
		// the packet pool, so a multi-second window stays allocation-flat.
		inj := &fig16Injector{sim: sim, port: sw.Port(0), raw: raw,
			every: 100 * netsim.Microsecond, until: netsim.Time(window)}
		sim.AtCall(0, runFig16Offer, inj)
		sim.RunUntil(netsim.Time(window))
		goodputMbps := float64(cpu.DigestBytes) * 8 / window.Seconds() / 1e6
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("push goodput, %dB msgs", msgSize),
			Values: []string{fmt.Sprintf("%.2f Mbps", goodputMbps)},
		})
	}

	// (b) pull latency for N counters, one-by-one vs batched.
	for _, n := range []int{1024, 8192, 65536} {
		sim := netsim.New()
		sw := asic.New(asic.Config{Name: "sw", Sim: sim, PortGbps: []float64{100}, Seed: cfg.Seed})
		cpu := switchcpu.New(sim, sw)
		reg := asic.NewRegisterArray("ctrs", n)
		var single, batch netsim.Time
		cpu.PullCounters(reg, 0, n, func(vals []uint64, at netsim.Time) { single = at })
		sim.Run()
		sim2 := netsim.New()
		sw2 := asic.New(asic.Config{Name: "sw2", Sim: sim2, PortGbps: []float64{100}, Seed: cfg.Seed})
		cpu2 := switchcpu.New(sim2, sw2)
		cpu2.PullCountersBatch(reg, 0, n, func(vals []uint64, at netsim.Time) { batch = at })
		sim2.Run()
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("pull %d counters", n),
			Values: []string{fmt.Sprintf("w/o batch %.3fs, w/ batch %.3fs",
				single.Seconds(), batch.Seconds())},
		})
	}
	res.Notes = append(res.Notes,
		"paper Fig. 16: goodput grows with message size to ~4.5Mbps; 65536 counters pull in <0.2s batched, far slower one-by-one")
	return res
}

// fig16Injector offers one digest-bearing frame to the switch per period,
// rescheduling itself until the window closes.
type fig16Injector struct {
	sim   *netsim.Sim
	port  *asic.Port
	raw   []byte
	every netsim.Duration
	until netsim.Time
}

func runFig16Offer(a any) {
	inj := a.(*fig16Injector)
	pkt := netproto.NewPacket(len(inj.raw))
	copy(pkt.Data, inj.raw)
	inj.port.Receive(pkt)
	if next := inj.sim.Now().Add(inj.every); next < inj.until {
		inj.sim.AtCall(next, runFig16Offer, inj)
	}
}

// Fig17ExactMatch reproduces Fig. 17: the number of exact-key-matching
// entries needed to remove all false positives, as the flow population and
// the hashing-array size change, for 16-bit and 32-bit digests. Each point
// repeats over several trials with fresh random flow populations.
func Fig17ExactMatch(cfg Config) *Result {
	res := &Result{
		ID:      "Fig. 17",
		Title:   "Exact key matching entries vs #flows",
		Columns: []string{"16b digest (avg entries)", "32b digest (avg entries)", "16b memory"},
	}
	flowCounts := []int{1 << 16, 1 << 18, 1 << 20, 2 << 20}
	trials := 20
	if cfg.Quick {
		flowCounts = []int{1 << 16, 1 << 18, 1 << 19}
		trials = 3
	}
	arraySizes := []int{1 << 14, 1 << 16}
	rng := rand.New(rand.NewSource(cfg.Seed + 170))
	for _, n := range flowCounts {
		// Large populations keep runtime bounded with fewer trials; the
		// collision counts there are large enough to be stable anyway.
		t := trials
		if n > 1<<18 && t > 5 {
			t = 5
		}
		for _, arraySize := range arraySizes {
			// Tuples draw sequentially from the one rng stream (so any
			// worker count sees identical populations) into a two-allocation
			// arena per trial; the false-positive computations — the
			// CPU-bound bulk of the experiment — then run on the worker
			// pool, with in-flight trials bounded so peak memory stays at a
			// few populations regardless of trial count.
			type trialRes struct{ e16, e32 float64 }
			results := make([]trialRes, t)
			sem := make(chan struct{}, cfg.simWorkers())
			var wg sync.WaitGroup
			for trial := 0; trial < t; trial++ {
				backing := make([]uint64, 3*n)
				tuples := make([][]uint64, n)
				for i := range tuples {
					// Random 5-tuple-like keys (src, dst, ports+proto).
					tup := backing[3*i : 3*i+3 : 3*i+3]
					tup[0] = rng.Uint64() & 0xffffffff
					tup[1] = rng.Uint64() & 0xffffffff
					tup[2] = rng.Uint64() & 0xffffffffff
					tuples[i] = tup
				}
				sem <- struct{}{}
				wg.Add(1)
				go func(trial int, tuples [][]uint64) {
					defer wg.Done()
					defer func() { <-sem }()
					results[trial] = trialRes{
						e16: float64(len(compiler.ComputeExactKeys(tuples, arraySize, 16,
							asic.PolyCRC32, asic.PolyCRC32C, asic.PolyKoopman))),
						e32: float64(len(compiler.ComputeExactKeys(tuples, arraySize, 32,
							asic.PolyCRC32, asic.PolyCRC32C, asic.PolyKoopman))),
					}
				}(trial, tuples)
			}
			wg.Wait()
			var sum16, sum32 float64
			for _, r := range results {
				sum16 += r.e16
				sum32 += r.e32
			}
			avg16 := sum16 / float64(t)
			avg32 := sum32 / float64(t)
			// Each entry stores the 13-byte 5-tuple key: memory as in §7.3.
			memKB := avg16 * 13 / 1024
			res.Rows = append(res.Rows, Row{
				Label:  fmt.Sprintf("%d flows, %dK-slot arrays", n, arraySize>>10),
				Values: []string{f1(avg16), f1(avg32), fmt.Sprintf("%.1f KB", memKB)},
			})
		}
	}
	res.Notes = append(res.Notes,
		"paper Fig. 17: <=3000 entries (~39KB) for over 2M flows with 16-bit digests; 32-bit digests need far fewer entries at 2x memory per entry; smaller arrays need more entries")
	return res
}
