package experiments

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
)

// traceSampleSrc is the observability workload: T1 saturates two 100G ports
// with 64B frames (multicast fan-out, timer fires on every loop pass); T2 is
// rate-controlled at 1 Mpps with a swept source port, so its loop passes
// mostly miss the replication timer (recirculate records) and every fired
// replica gets a header rewrite (dirty PHV → deparse records).
const traceSampleSrc = `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set(length, 64)
    .set(port, [0, 1])
T2 = trigger()
    .set([dip, sip, proto, dport], [9.9.9.8, 1.1.0.2, udp, 2])
    .set(sport, range(1024, 2047, 1))
    .set(length, 128)
    .set(interval, 1000ns)
    .set(port, 2)
`

// TraceSample runs the fixed observability workload — a line-rate multicast
// template plus a rate-controlled header-sweeping one across three 100G
// ports — with per-packet tracing enabled, and returns the populated trace
// set plus a metrics registry describing the run (switch counters and pools,
// per-sink traffic, scheduler wheel, and — with cfg.SimWorkers > 1 — the LP
// engine).
//
// The workload crosses every emission point the tracer has except digests
// (no queries), match tables (production pipelines use processor logic, not
// asic.Table) and drops (line-rate sinks): parse, SALU timer/accelerator
// accesses, multicast replication, recirculation, TM enqueue/dequeue,
// deparse, and wire tx/rx across LP boundaries. That makes it the trace
// oracle's differential workload (TestTraceDifferential) and htbench's
// -trace sample.
func TraceSample(cfg Config) (*obs.TraceSet, *obs.Registry, error) {
	ts := obs.NewTraceSet()
	cfg.Trace = ts
	window := 80 * netsim.Microsecond
	if cfg.Quick {
		window = 40 * netsim.Microsecond
	}
	ports := []float64{100, 100, 100}
	sinks, ht, p, err := htGenerate(cfg, traceSampleSrc, ports, cfg.Seed,
		30*netsim.Microsecond, window, false)
	if err != nil {
		return nil, nil, err
	}
	reg := obs.NewRegistry()
	ht.Describe(reg)
	obs.DescribeSim(reg, "sim.tester", ht.Sim)
	if eng := p.Engine(); eng != nil {
		obs.DescribeEngine(reg, "engine", eng)
	}
	for i, s := range sinks {
		s := s
		prefix := fmt.Sprintf("sink%d", i)
		reg.Gauge(prefix+".rx_packets", func() float64 { return float64(s.Packets) })
		reg.Gauge(prefix+".rx_bytes", func() float64 { return float64(s.Bytes) })
		reg.Gauge(prefix+".gbps", s.ThroughputGbps)
	}
	return ts, reg, nil
}
