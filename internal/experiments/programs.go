package experiments

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/core/ntapi"
)

// ProgramSpec names one NTAPI source from the experiment suite together
// with the compiler options its experiment uses. The verifier corpus
// (verify_test.go, cmd/htverify) runs the symbolic analyzer and the
// witness differential over every spec.
type ProgramSpec struct {
	Name string
	Src  string
	Opts compiler.Options
}

// Compile compiles the spec exactly as its experiment would.
func (s ProgramSpec) Compile() (*compiler.Program, error) {
	task, err := ntapi.Parse(s.Name, s.Src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	prog, err := compiler.Compile(task, s.Opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	return prog, nil
}

// fig13Src is the Fig. 13 random-distribution workload with the given
// random(...) source-port setter.
func fig13Src(setSrc string) string {
	return fmt.Sprintf(`
T1 = trigger()
    .set([dip, sip, proto, dport], [9.9.9.9, 1.1.0.1, udp, 1])
    .set(sport, %s)
    .set(interval, 100ns)
    .set(port, 0)
`, setSrc)
}

// Programs returns the 18-program corpus: the four Table 5 applications,
// the seven Table 7 resource microbenchmarks, the figure workloads, the
// trace observability workload, and the §5.4 web case study.
func Programs() []ProgramSpec {
	specs := []ProgramSpec{
		{Name: "table5_throughput", Src: TaskThroughput, Opts: compiler.Options{MaxHeaderSpace: 1 << 16}},
		{Name: "table5_delay", Src: TaskDelay, Opts: compiler.Options{MaxHeaderSpace: 1 << 16}},
		{Name: "table5_ipscan", Src: TaskIPScan, Opts: compiler.Options{MaxHeaderSpace: 1 << 16}},
		{Name: "table5_synflood", Src: TaskSynFlood, Opts: compiler.Options{MaxHeaderSpace: 1 << 16}},
	}
	for i, c := range table7Cases {
		specs = append(specs, ProgramSpec{
			Name: fmt.Sprintf("table7_%02d", i+1),
			Src:  c.src,
			Opts: compiler.Options{ArraySize: 1 << 16},
		})
	}
	specs = append(specs,
		ProgramSpec{Name: "fig9_throughput_1port", Src: throughputSrc(64, "0")},
		ProgramSpec{Name: "fig10_throughput_4port", Src: throughputSrc(64, "[0, 1, 2, 3]")},
		ProgramSpec{Name: "fig11_rate_control", Src: rateSrc(128, 1000)},
		ProgramSpec{Name: "fig13_random_normal", Src: fig13Src("random('N', 30000, 2000, 16)")},
		ProgramSpec{Name: "fig13_random_exponential", Src: fig13Src("random('E', 8000, 0, 16)")},
		ProgramSpec{Name: "trace_observability", Src: traceSampleSrc},
		ProgramSpec{Name: "case_webscale", Src: caseWebScaleSrc},
	)
	return specs
}
