// Package experiments reproduces every table and figure of the paper's
// evaluation (§7) on the simulated testbed. Each experiment returns a
// structured Result whose String renders the same rows/series the paper
// reports; cmd/htbench prints them all and the repository's bench suite
// wraps each one in a testing.B benchmark.
//
// Quick mode shrinks measurement windows and sweep densities so the whole
// suite runs in seconds; full mode uses longer windows for tighter
// statistics. Shapes and ratios are stable across both.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
	"github.com/hypertester/hypertester/internal/testbed"

	hypertester "github.com/hypertester/hypertester"
)

// Config tunes experiment scale.
type Config struct {
	// Quick shrinks windows and sweeps.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// SimWorkers > 1 opts an experiment's testbed into the conservative
	// parallel discrete-event engine (one logical process per device) and
	// its CPU-bound sweeps into a same-width worker pool. Results are
	// bit-identical across any worker count; <= 1 means the sequential
	// reference engine.
	SimWorkers int
	// Trace, when non-nil, records per-packet lifecycle traces for every
	// device an experiment builds through htGenerate. Streams are created
	// in topology order (tester first, then sinks by port), so the merged
	// trace is bit-identical across engines and worker counts. Tracing is
	// observational only: results are unchanged. Experiments that fan out
	// over parMap leave it unset on inner runs (seq() strips it) — a single
	// TraceSet is not safe for concurrent topologies.
	Trace *obs.TraceSet
}

// simWorkers normalizes the worker budget.
func (c Config) simWorkers() int {
	if c.SimWorkers < 1 {
		return 1
	}
	return c.SimWorkers
}

// seq returns the config with parallelism stripped — for inner measurements
// that an outer parMap already spreads across the worker budget. The trace
// set is stripped with it: inner runs execute concurrently, and a TraceSet
// is owned by a single topology.
func (c Config) seq() Config {
	c.SimWorkers = 1
	c.Trace = nil
	return c
}

// parMap runs fn(0..n-1) across up to workers goroutines (inline when the
// budget or n is 1). Each index must write only its own slot of any shared
// output slice; iteration order is unspecified but slot ownership makes the
// overall result order-independent.
func parMap(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Row is one line of a result table.
type Row struct {
	Label  string
	Values []string
}

// Result is one experiment's outcome.
type Result struct {
	ID      string // e.g. "Table 5", "Fig. 9a"
	Title   string
	Columns []string
	Rows    []Row
	// Notes carries the paper-vs-measured commentary.
	Notes []string
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns)+1)
	update := func(i int, s string) {
		if len(s) > widths[i] {
			widths[i] = len(s)
		}
	}
	update(0, "")
	for i, c := range r.Columns {
		update(i+1, c)
	}
	for _, row := range r.Rows {
		update(0, row.Label)
		for i, v := range row.Values {
			if i+1 < len(widths) {
				update(i+1, v)
			}
		}
	}
	pad := func(s string, w int) string { return s + strings.Repeat(" ", w-len(s)) }
	b.WriteString(pad("", widths[0]))
	for i, c := range r.Columns {
		b.WriteString("  " + pad(c, widths[i+1]))
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		b.WriteString(pad(row.Label, widths[0]))
		for i, v := range row.Values {
			if i+1 < len(widths) {
				b.WriteString("  " + pad(v, widths[i+1]))
			}
		}
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// htGenerate runs a HyperTester generation task against per-port sinks and
// returns them after the measurement window (warm-up excluded). With
// cfg.SimWorkers > 1 the topology is partitioned — the tester switch on one
// logical process, every sink on its own — and runs on the parallel engine;
// callers that advance virtual time afterwards must do so through the
// returned Partition (not ht.RunFor, which only knows the tester's clock).
func htGenerate(cfg Config, src string, portGbps []float64, seed int64,
	warmup, window netsim.Duration, record bool) ([]*testbed.Sink, *hypertester.Tester, *testbed.Partition, error) {

	p := testbed.NewPartition(cfg.simWorkers())
	ht := hypertester.New(hypertester.Config{Sim: p.LP("tester"), Ports: portGbps, Seed: seed})
	if cfg.Trace != nil {
		// Stream creation order = LP creation order = merge rank order, so
		// the canonical trace is engine-independent (see package obs).
		ht.EnableTrace(cfg.Trace.New("tester"))
	}
	if err := ht.LoadTaskSource("exp", src); err != nil {
		return nil, nil, nil, err
	}
	sinks := make([]*testbed.Sink, len(portGbps))
	for i := range portGbps {
		sinks[i] = testbed.NewSink(p.LP(fmt.Sprintf("sink%d", i)), fmt.Sprintf("sink%d", i), portGbps[i])
		sinks[i].RecordTimestamps = record
		if cfg.Trace != nil {
			sinks[i].Iface.SetTrace(cfg.Trace.New(sinks[i].Iface.Name))
		}
		p.Connect(ht.Port(i), sinks[i].Iface, 0)
	}
	if err := ht.Start(); err != nil {
		return nil, nil, nil, err
	}
	p.RunFor(warmup)
	for _, s := range sinks {
		s.Reset()
	}
	p.RunFor(window)
	return sinks, ht, p, nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
