package experiments

import (
	"strings"
	"testing"
)

// TestRegistryMatchesPaperSpecs is the refactor's differential gate: running
// the 18 paper experiments through the registry (Specs()) must produce
// bit-identical rendered tables and headline metrics to running the
// pre-refactor literal list (paperSpecs()) directly — on the sequential
// engine and with SimWorkers=4.
func TestRegistryMatchesPaperSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential run")
	}
	for _, workers := range []int{0, 4} {
		cfg := Config{Quick: true, Seed: 1, SimWorkers: workers}
		pre := Run(cfg, paperSpecs())
		reg := Run(cfg, Specs())
		if len(reg) < len(pre) {
			t.Fatalf("SimWorkers=%d: registry ran %d experiments, pre-refactor list has %d",
				workers, len(reg), len(pre))
		}
		// The paper experiments must be the registry's prefix, in paper order.
		for i := range pre {
			if pre[i].ID != reg[i].ID {
				t.Fatalf("SimWorkers=%d: order diverged at %d: %s (pre-refactor) vs %s (registry)",
					workers, i, pre[i].ID, reg[i].ID)
			}
			if p, r := pre[i].String(), reg[i].String(); p != r {
				t.Errorf("SimWorkers=%d: %s: registry output diverges:\n--- pre-refactor\n%s\n--- registry\n%s",
					workers, pre[i].ID, p, r)
			}
			pv, pu, perr := Headline(pre[i])
			rv, ru, rerr := Headline(reg[i])
			if perr != nil || rerr != nil {
				t.Errorf("SimWorkers=%d: %s: headline errors: %v / %v", workers, pre[i].ID, perr, rerr)
				continue
			}
			if pv != rv || pu != ru {
				t.Errorf("SimWorkers=%d: %s: headline %v %s (pre-refactor) != %v %s (registry)",
					workers, pre[i].ID, pv, pu, rv, ru)
			}
		}
	}
}

// TestRegisterUnregister pins the registry contract: duplicate IDs are
// rejected, empty specs are rejected, Unregister removes the spec and its
// headline, and unknown Unregister IDs are a no-op.
func TestRegisterUnregister(t *testing.T) {
	fn := func(Config) *Result { return &Result{ID: "reg-test"} }
	if err := Register(Spec{ID: "reg-test", Fn: fn}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	defer Unregister("reg-test")
	if err := Register(Spec{ID: "reg-test", Fn: fn}); err == nil {
		t.Error("duplicate ID did not error")
	}
	if err := Register(Spec{ID: "", Fn: fn}); err == nil {
		t.Error("empty ID did not error")
	}
	if err := Register(Spec{ID: "no-fn"}); err == nil {
		t.Error("nil Fn did not error")
	}
	if err := Register(Spec{ID: "Table 5", Fn: fn}); err == nil {
		t.Error("shadowing a paper experiment did not error")
	}

	RegisterHeadline("reg-test", HeadlineSpec{0, 0, "units"})
	found := false
	for _, sp := range Specs() {
		if sp.ID == "reg-test" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered spec missing from Specs()")
	}
	Unregister("reg-test")
	for _, sp := range Specs() {
		if sp.ID == "reg-test" {
			t.Fatal("Unregister left the spec in Specs()")
		}
	}
	if _, _, err := Headline(&Result{ID: "reg-test"}); err == nil {
		t.Error("Unregister left the headline registered")
	}
	Unregister("reg-test") // unknown ID: must not panic
	if err := Register(Spec{ID: "reg-test", Fn: fn}); err != nil {
		t.Errorf("re-Register after Unregister: %v", err)
	}
}

// TestRunRecoversPanics pins the bugfix: a panicking experiment must become
// a named failure in its input-order slot — on the worker-pool path, the
// inline path, and AllSequential — instead of crashing the whole suite.
func TestRunRecoversPanics(t *testing.T) {
	ok := func(id string) Spec {
		return Spec{ID: id, Fn: func(Config) *Result {
			return &Result{ID: id, Title: "ok"}
		}}
	}
	specs := []Spec{
		ok("first"),
		{ID: "boom", Fn: func(Config) *Result { panic("synthetic failure") }},
		ok("third"),
		{ID: "nilres", Fn: func(Config) *Result { return nil }},
	}
	check := func(t *testing.T, in []Spec, out []*Result) {
		t.Helper()
		if len(out) != len(in) {
			t.Fatalf("got %d results, want %d", len(out), len(in))
		}
		for i, r := range out {
			if r == nil {
				t.Fatalf("result %d is nil", i)
			}
			if r.ID != in[i].ID {
				t.Errorf("result %d = %s, want %s (input order lost)", i, r.ID, in[i].ID)
			}
		}
		if out[1].Title != "experiment failed" {
			t.Errorf("panicking spec title = %q, want failure", out[1].Title)
		}
		if len(out[1].Notes) == 0 || !strings.Contains(out[1].Notes[0], "synthetic failure") {
			t.Errorf("panic value not preserved in notes: %v", out[1].Notes)
		}
		if len(out) > 3 && out[3].Title != "experiment failed" {
			t.Errorf("nil-result spec title = %q, want failure", out[3].Title)
		}
		if _, _, err := Headline(out[1]); err == nil {
			t.Error("failed experiment produced a headline")
		}
	}
	t.Run("pool", func(t *testing.T) { check(t, specs, Run(Config{Quick: true, Seed: 1}, specs)) })
	// A 2-spec input on a multi-core box still uses the pool, but Run's
	// workers<=1 fallback is what a single-CPU machine gets; exercise runSpec
	// through Run either way with the panicking spec in slot 1.
	t.Run("short", func(t *testing.T) { check(t, specs[:2], Run(Config{Quick: true, Seed: 1}, specs[:2])) })
}

// TestRunRecoversPanicsSequential covers AllSequential's recovery path via a
// temporarily registered panicking experiment.
func TestRunRecoversPanicsSequential(t *testing.T) {
	if err := Register(Spec{ID: "seq-boom", Fn: func(Config) *Result { panic("seq failure") }}); err != nil {
		t.Fatal(err)
	}
	defer Unregister("seq-boom")
	// Run only the tail of the registry so this stays cheap: the panicking
	// spec is last, preceded by one real (fast) experiment.
	specs := Specs()
	out := make([]*Result, 0, 2)
	for _, sp := range specs {
		if sp.ID == "Table 5" || sp.ID == "seq-boom" {
			out = append(out, runSpec(Config{Quick: true, Seed: 1}, sp))
		}
	}
	if len(out) != 2 {
		t.Fatalf("expected 2 results, got %d", len(out))
	}
	if out[0].ID != "Table 5" || out[0].Title == "experiment failed" {
		t.Errorf("real experiment failed: %+v", out[0])
	}
	if out[1].ID != "seq-boom" || out[1].Title != "experiment failed" {
		t.Errorf("panicking experiment not recovered: %+v", out[1])
	}
}
