package experiments

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/moongen"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/stats"
	"github.com/hypertester/hypertester/internal/testbed"
)

func rateSrc(size int, intervalNs float64) string {
	return fmt.Sprintf(`
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set(length, %d)
    .set(interval, %.0fns)
    .set(port, 0)
`, size, intervalNs)
}

// htRateErrors measures HyperTester inter-departure errors at a target rate.
func htRateErrors(cfg Config, portGbps float64, size int, pps float64, window netsim.Duration) (stats.RateErrors, float64, error) {
	interval := 1e9 / pps
	sinks, _, _, err := htGenerate(cfg, rateSrc(size, interval), []float64{portGbps}, cfg.Seed,
		50*netsim.Microsecond, window, true)
	if err != nil {
		return stats.RateErrors{}, 0, err
	}
	return stats.InterDepartureErrors(sinks[0].Timestamps, interval), sinks[0].RatePps(), nil
}

// mgRateErrors measures MoonGen (NIC hardware rate control) errors.
func mgRateErrors(cfg Config, portGbps float64, size int, pps float64, window netsim.Duration) (stats.RateErrors, float64) {
	sim := netsim.New()
	g := moongen.New(sim, moongen.Config{
		Name: "mg", PortGbps: portGbps, FrameLen: size,
		TargetPps: pps, HWRateControl: true, Seed: cfg.Seed,
	})
	sink := testbed.NewSink(sim, "sink", portGbps)
	sink.RecordTimestamps = true
	g.Start(netsim.Time(window))
	testbed.Connect(sim, g.Iface, sink.Iface, 0)
	sim.RunUntil(netsim.Time(window + netsim.Millisecond))
	return stats.InterDepartureErrors(sink.Timestamps, 1e9/pps), sink.RatePps()
}

// Fig11RateControl40G reproduces Fig. 11: rate-control error metrics on a
// 40G port, HyperTester vs MoonGen with NIC hardware rate control, across
// generation speeds and packet sizes.
func Fig11RateControl40G(cfg Config) *Result {
	res := &Result{
		ID:      "Fig. 11",
		Title:   "Rate control on 40G: inter-departure error (ns)",
		Columns: []string{"HT MAE", "HT MAD", "HT RMSE", "MG MAE", "MG MAD", "MG RMSE", "ratio"},
	}
	type pt struct {
		label string
		size  int
		pps   float64
	}
	points := []pt{
		{"100Kpps/64B", 64, 1e5},
		{"1Mpps/64B", 64, 1e6},
		{"10Mpps/64B", 64, 1e7},
		{"1Mpps/512B", 512, 1e6},
		{"1Mpps/1280B", 1280, 1e6},
	}
	// The points are independent measurements, so the worker budget spreads
	// across them (each inner testbed stays sequential); every point writes
	// only its own row slot, keeping output order identical to a
	// sequential sweep.
	rows := make([]Row, len(points))
	errs := make([]error, len(points))
	parMap(cfg.simWorkers(), len(points), func(i int) {
		p := points[i]
		window := windowFor(p.pps, cfg.Quick)
		he, _, err := htRateErrors(cfg.seq(), 40, p.size, p.pps, window)
		if err != nil {
			errs[i] = err
			return
		}
		me, _ := mgRateErrors(cfg.seq(), 40, p.size, p.pps, window)
		ratio := me.MAE / he.MAE
		rows[i] = Row{
			Label: p.label,
			Values: []string{
				f2(he.MAE), f2(he.MAD), f2(he.RMSE),
				f2(me.MAE), f2(me.MAD), f2(me.RMSE),
				fmt.Sprintf("%.0fx", ratio),
			},
		}
	})
	for _, err := range errs {
		if err != nil {
			return errResult(res, err)
		}
	}
	res.Rows = append(res.Rows, rows...)
	res.Notes = append(res.Notes,
		"paper Fig. 11: every HyperTester error metric is over one order of magnitude below MoonGen's")
	return res
}

// Fig12RateControl100G reproduces Fig. 12: HyperTester rate-control errors
// on a 100G port across speed and size — speed has little effect, errors
// grow with packet size (coarser template-arrival granularity).
func Fig12RateControl100G(cfg Config) *Result {
	res := &Result{
		ID:      "Fig. 12",
		Title:   "HyperTester rate control on 100G: error (ns)",
		Columns: []string{"MAE", "MAD", "RMSE"},
	}
	rates := []float64{1e5, 1e6, 1e7}
	if !cfg.Quick {
		rates = append(rates, 5e7)
	}
	type pt struct {
		label string
		size  int
		pps   float64
	}
	var points []pt
	for _, pps := range rates {
		points = append(points, pt{fmt.Sprintf("%s/64B", ppsLabel(pps)), 64, pps})
	}
	for _, size := range []int{256, 512, 1024, 1500} {
		points = append(points, pt{fmt.Sprintf("1Mpps/%dB", size), size, 1e6})
	}
	rows := make([]Row, len(points))
	errs := make([]error, len(points))
	parMap(cfg.simWorkers(), len(points), func(i int) {
		p := points[i]
		he, _, err := htRateErrors(cfg.seq(), 100, p.size, p.pps, windowFor(p.pps, cfg.Quick))
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = Row{
			Label:  p.label,
			Values: []string{f2(he.MAE), f2(he.MAD), f2(he.RMSE)},
		}
	})
	for _, err := range errs {
		if err != nil {
			return errResult(res, err)
		}
	}
	res.Rows = append(res.Rows, rows...)
	res.Notes = append(res.Notes,
		"paper Fig. 12: speed barely affects errors; errors grow with packet size")
	return res
}

// windowFor sizes the measurement window so each point collects a useful
// number of inter-departure samples.
func windowFor(pps float64, quick bool) netsim.Duration {
	samples := 3000.0
	if quick {
		samples = 600
	}
	w := netsim.Duration(samples / pps * 1e12)
	if w < 100*netsim.Microsecond {
		w = 100 * netsim.Microsecond
	}
	if w > 20*netsim.Millisecond {
		w = 20 * netsim.Millisecond
	}
	return w
}

func ppsLabel(pps float64) string {
	switch {
	case pps >= 1e6:
		return fmt.Sprintf("%.0fMpps", pps/1e6)
	default:
		return fmt.Sprintf("%.0fKpps", pps/1e3)
	}
}
