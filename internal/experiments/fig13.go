package experiments

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/stats"
)

// Fig13RandomQQ reproduces Fig. 13: the accuracy of on-switch random number
// generation via the inverse transformation method. HyperTester generates
// packets whose source port follows a normal or exponential distribution;
// the Q-Q comparison of observed values against the theoretical quantiles
// summarizes agreement (the paper shows Q-Q plots; we report the points'
// correlation plus selected quantiles).
func Fig13RandomQQ(cfg Config) *Result {
	res := &Result{
		ID:      "Fig. 13",
		Title:   "Random number generation accuracy (Q-Q)",
		Columns: []string{"corr", "q10 thy/smp", "q50 thy/smp", "q90 thy/smp"},
	}
	window := 2 * netsim.Millisecond
	if cfg.Quick {
		window = 400 * netsim.Microsecond
	}

	type dist struct {
		label  string
		setSrc string
		inv    func(p float64) float64
	}
	dists := []dist{
		{
			label:  "normal(30000,2000)",
			setSrc: "random('N', 30000, 2000, 16)",
			inv:    stats.NormalInvCDF(30000, 2000),
		},
		{
			label:  "exponential(mean 8000)",
			setSrc: "random('E', 8000, 0, 16)",
			inv:    stats.ExponentialInvCDF(1.0 / 8000),
		},
	}
	for _, d := range dists {
		src := fig13Src(d.setSrc)
		samples, err := collectField(cfg, src, cfg.Seed, window, func(s *netproto.Stack) float64 {
			return float64(s.UDP.SrcPort)
		})
		if err != nil {
			return errResult(res, err)
		}
		pts := stats.QQ(samples, d.inv, 99)
		corr := stats.QQCorrelation(pts)
		q := func(i int) string {
			return fmt.Sprintf("%.0f/%.0f", pts[i].Theoretical, pts[i].Sample)
		}
		res.Rows = append(res.Rows, Row{
			Label:  d.label,
			Values: []string{fmt.Sprintf("%.5f", corr), q(9), q(49), q(89)},
		})
	}
	res.Notes = append(res.Notes,
		"paper Fig. 13: Q-Q points hug the identity line for both distributions; the inverse-transform tables quantize extreme tails")
	return res
}

// collectField runs a generation task and extracts one numeric field per
// generated packet. The mid-run hook installation means virtual time must
// advance through the Partition, which drives every logical process — the
// tester's own clock alone would leave the sink idle under the parallel
// engine.
func collectField(cfg Config, src string, seed int64, window netsim.Duration, extract func(*netproto.Stack) float64) ([]float64, error) {
	sinks, _, p, err := htGenerate(cfg, src, []float64{100}, seed, 30*netsim.Microsecond, 0, false)
	if err != nil {
		return nil, err
	}
	var samples []float64
	var stack netproto.Stack
	sinks[0].OnPacket = func(pkt *netproto.Packet, at netsim.Time) {
		if err := stack.Decode(pkt.Data); err == nil {
			samples = append(samples, extract(&stack))
		}
	}
	p.RunFor(window)
	return samples, nil
}
