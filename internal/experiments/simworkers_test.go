package experiments

import (
	"testing"
)

// TestSimWorkersDeterminism is the acceptance gate for the parallel
// discrete-event engine at the experiments layer: every rendered result —
// and therefore all 18 headline metrics — must be bit-identical whether the
// testbeds run on the sequential reference engine (SimWorkers=1) or are
// partitioned into per-device logical processes on the conservative
// parallel engine (SimWorkers=4). The full quick suite runs both ways so
// the per-packet timestamp streams behind Fig. 11–13's error metrics, the
// digest traffic behind Fig. 16, and the stateful case-study counters all
// participate in the comparison.
func TestSimWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential run")
	}
	seq := AllSequential(Config{Quick: true, Seed: 1})
	par := AllSequential(Config{Quick: true, Seed: 1, SimWorkers: 4})
	if len(seq) != len(par) {
		t.Fatalf("sequential ran %d experiments, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if s, p := seq[i].String(), par[i].String(); s != p {
			t.Errorf("%s: SimWorkers=4 diverges from sequential:\n--- SimWorkers=1\n%s\n--- SimWorkers=4\n%s",
				seq[i].ID, s, p)
		}
		hs, us, errS := Headline(seq[i])
		hp, up, errP := Headline(par[i])
		if errS != nil || errP != nil {
			t.Errorf("%s: headline errors: %v / %v", seq[i].ID, errS, errP)
			continue
		}
		if hs != hp || us != up {
			t.Errorf("%s: headline %v %s (SimWorkers=1) != %v %s (SimWorkers=4)",
				seq[i].ID, hs, us, hp, up)
		}
	}
}

// TestSimWorkersWorkerCountInvariance spot-checks that the engine-backed
// experiments agree across several worker counts, not just 1 vs 4, on the
// topologies with real cross-LP feedback (the case study's request/response
// loop) and mid-run clock driving (Fig. 13's field collection).
func TestSimWorkersWorkerCountInvariance(t *testing.T) {
	for _, fn := range []struct {
		name string
		run  func(Config) *Result
	}{
		{"Case study", CaseWebScale},
		{"Fig. 13", Fig13RandomQQ},
	} {
		want := fn.run(Config{Quick: true, Seed: 7, SimWorkers: 2}).String()
		for _, w := range []int{3, 8} {
			got := fn.run(Config{Quick: true, Seed: 7, SimWorkers: w}).String()
			if got != want {
				t.Errorf("%s: SimWorkers=%d diverges from SimWorkers=2:\n%s\nvs\n%s",
					fn.name, w, got, want)
			}
		}
	}
}

// TestParMap pins the helper's contract: every index runs exactly once at
// any worker count, including the inline path.
func TestParMap(t *testing.T) {
	for _, w := range []int{0, 1, 3, 16} {
		hits := make([]int, 37)
		parMap(w, len(hits), func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, h)
			}
		}
	}
	parMap(4, 0, func(int) { t.Fatal("n=0 must not call fn") })
}
