package experiments

import (
	"reflect"
	"testing"
)

// Regression tests for the determinism findings htlint surfaced: the
// ablation scoring loops used to range over the ground-truth map, coupling
// the computation to Go's randomized map iteration order. Scoring now walks
// the key population in first-occurrence order, so two runs with the same
// seed must agree bit for bit — including every formatted row.

func TestAblationSketchAccuracyDeterministic(t *testing.T) {
	cfg := Config{Quick: true, Seed: 42}
	a := AblationSketchAccuracy(cfg)
	b := AblationSketchAccuracy(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%v\nvs\n%v", a, b)
	}
}

func TestAblationCuckooOccupancyDeterministic(t *testing.T) {
	cfg := Config{Quick: true, Seed: 42}
	a := AblationCuckooOccupancy(cfg)
	b := AblationCuckooOccupancy(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%v\nvs\n%v", a, b)
	}
}
