package experiments

import (
	"fmt"

	hypertester "github.com/hypertester/hypertester"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/testbed"
)

// caseWebScaleSrc is the §5.4 web-testing workflow. sport sweeps 32768
// values; at 10us per SYN that is ~0.33s of distinct clients, far beyond
// any measurement window — no flow reuse.
const caseWebScaleSrc = `
T1 = trigger()
    .set([dip, dport, proto, flag, seq_no], [9.9.9.9, 80, tcp, SYN, 1])
    .set(sip, 1.1.0.1)
    .set(sport, range(1024, 33791, 1))
    .set(interval, 10us)
    .set(port, 0)
Q1 = query().filter(tcp_flag == SYN+ACK)
T2 = trigger(Q1)
    .set([dip, sip, dport, sport], [Q1.sip, Q1.dip, Q1.sport, Q1.dport])
    .set([proto, flag], [tcp, ACK])
    .set([seq_no, ack_no], [Q1.ack_no, Q1.seq_no + 1])
Q2 = query().filter(tcp_flag == SYN+ACK)
T3 = trigger(Q2)
    .set([dip, sip, dport, sport], [Q2.sip, Q2.dip, Q2.sport, Q2.dport])
    .set([proto, flag], [tcp, PSH+ACK])
    .set([seq_no, ack_no], [Q2.ack_no, Q2.seq_no + 1])
    .set(length, 78)
    .set(payload, "GET index.html")
Q3 = query().filter(tcp_flag == PSH+ACK).reduce(func=count).filter(count >= 5)
T5 = trigger(Q3)
    .set([dip, sip, dport, sport], [Q3.sip, Q3.dip, Q3.sport, Q3.dport])
    .set([proto, flag], [tcp, FIN])
    .set([seq_no, ack_no], [Q3.ack_no, Q3.seq_no + 1])
Q5 = query().filter(tcp_flag == SYN+ACK).reduce(func=sum)
`

// CaseWebScale validates the §5.4 workflow at the paper's stated scale:
// "suppose that the task creates 100K new clients per second … interval is
// 10us". The full stateless-connection lifecycle (SYN → SYN+ACK → ACK +
// HTTP GET → 5 data packets → FIN exchange) runs against the server farm,
// and the sustained connection-setup rate is measured.
func CaseWebScale(cfg Config) *Result {
	res := &Result{
		ID:      "Case study",
		Title:   "Web testing at 100K connections/s (stateless, §5.4)",
		Columns: []string{"value"},
	}
	window := 50 * netsim.Millisecond
	if cfg.Quick {
		window = 15 * netsim.Millisecond
	}

	task := caseWebScaleSrc
	// Tester and server farm each get a logical process: the cable between
	// them is the partition boundary, so the stateless client side and the
	// stateful DUT advance concurrently under the parallel engine.
	p := testbed.NewPartition(cfg.simWorkers())
	ht := hypertester.New(hypertester.Config{Sim: p.LP("tester"), Ports: []float64{100}, Seed: cfg.Seed})
	if err := ht.LoadTaskSource("webscale", task); err != nil {
		return errResult(res, err)
	}
	farm := testbed.NewHTTPServerFarm(p.LP("farm"), "farm", 100)
	farm.ResponsePackets = 5
	p.Connect(ht.Port(0), farm.Iface, testbed.DefaultCableDelay)
	if err := ht.Start(); err != nil {
		return errResult(res, err)
	}
	p.RunFor(window)

	secs := window.Seconds()
	row := func(label, format string, args ...any) {
		res.Rows = append(res.Rows, Row{Label: label, Values: []string{fmt.Sprintf(format, args...)}})
	}
	row("new clients offered", "%.0f /s (interval 10us)", float64(ht.Sender.FiredCount(1))/secs)
	row("handshakes completed", "%.0f /s", float64(farm.Handshakes)/secs)
	row("HTTP requests served", "%.0f /s", float64(farm.Requests)/secs)
	row("connections closed (FIN)", "%.0f /s", float64(farm.FinReceived)/secs)
	row("connection state on tester", "%d bytes (stateless by design)", 0)
	row("open state on the server DUT", "%d connections", farm.OpenConnections())
	res.Notes = append(res.Notes,
		"the paper's §5.4 walkthrough assumes 100K new clients/s; every lifecycle step must track that rate without the tester holding any per-connection state")
	return res
}
