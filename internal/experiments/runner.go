package experiments

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// Spec names one experiment of the evaluation suite.
type Spec struct {
	ID string
	Fn func(Config) *Result
}

// Specs returns every experiment in paper order.
func Specs() []Spec {
	return []Spec{
		{"Table 5", Table5LoC},
		{"Fig. 9", Fig9SinglePort},
		{"Fig. 10", Fig10MultiPort},
		{"Fig. 11", Fig11RateControl40G},
		{"Fig. 12", Fig12RateControl100G},
		{"Fig. 13", Fig13RandomQQ},
		{"Fig. 14", Fig14Accelerator},
		{"Fig. 15", Fig15Replicator},
		{"Fig. 16", Fig16StatCollection},
		{"Fig. 17", Fig17ExactMatch},
		{"Table 6", Table6Cost},
		{"Table 7", Table7Resources},
		{"Table 8", Table8SynFlood},
		{"Fig. 18", Fig18DelayTesting},
		{"Ablation A", AblationSketchAccuracy},
		{"Ablation B", AblationCuckooOccupancy},
		{"Ablation C", AblationTemplateAmplification},
		{"Case study", CaseWebScale},
	}
}

// Run executes specs across a GOMAXPROCS-bounded worker pool and returns
// results in input order regardless of completion order. Every experiment
// builds its own netsim.Sim and derives every random stream from cfg.Seed
// plus a component label, so no state is shared between workers and the
// output is bit-identical to a sequential run (TestParallelDeterminism pins
// this).
func Run(cfg Config, specs []Spec) []*Result {
	out := make([]*Result, len(specs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, sp := range specs {
			out[i] = sp.Fn(cfg)
		}
		return out
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = specs[i].Fn(cfg)
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// All runs every experiment in paper order on the parallel runner.
func All(cfg Config) []*Result { return Run(cfg, Specs()) }

// AllSequential runs every experiment one after another on the calling
// goroutine — the reference ordering for determinism regression tests.
func AllSequential(cfg Config) []*Result {
	specs := Specs()
	out := make([]*Result, len(specs))
	for i, sp := range specs {
		out[i] = sp.Fn(cfg)
	}
	return out
}

// HeadlineSpec locates an experiment's headline metric inside its result
// table. Row < 0 counts from the end (-1 = last row). Unit doubles as the
// custom-metric name the bench suite reports.
type HeadlineSpec struct {
	Row, Col int
	Unit     string
}

// headlines maps each experiment ID to its paper-facing headline cell. The
// bench suite and cmd/htbench's BENCH_results.json both read from here, so
// the two always agree on what each experiment's number of record is.
var headlines = map[string]HeadlineSpec{
	"Table 5":    {0, 0, "NTAPI-LoC"},
	"Fig. 9":     {0, 0, "Gbps-64B@100G"},
	"Fig. 10":    {-1, 0, "Gbps-aggregate"},
	"Fig. 11":    {1, 0, "ns-HT-MAE-1Mpps"},
	"Fig. 12":    {1, 0, "ns-MAE-1Mpps"},
	"Fig. 13":    {0, 0, "QQ-corr-normal"},
	"Fig. 14":    {0, 0, "ns-RTT-64B"},
	"Fig. 15":    {0, 0, "ns-mcast-64B"},
	"Fig. 16":    {4, 0, "Mbps-digest-256B"},
	"Fig. 17":    {-1, 0, "entries-16b"},
	"Table 6":    {2, 0, "USD-saved-per-Tbps"},
	"Table 7":    {-1, 5, "pct-SALU-reduce"},
	"Table 8":    {0, 0, "Gbps-testbed"},
	"Fig. 18":    {0, 0, "ns-HT-HW-mean"},
	"Ablation A": {0, 0, "counter-err-keys"},
	"Ablation B": {2, 0, "pct-onchip-0.75"},
	"Ablation C": {2, 0, "amplification-x"},
	"Case study": {1, 0, "handshakes-per-s"},
}

// Headline extracts an experiment's headline metric. It returns an error —
// rather than a silent zero — when the result has no such cell or the cell
// does not start with a number, so a broken experiment cannot masquerade as
// a real measurement.
func Headline(r *Result) (value float64, unit string, err error) {
	spec, ok := headlines[r.ID]
	if !ok {
		return 0, "", fmt.Errorf("experiments: no headline defined for %q", r.ID)
	}
	row := spec.Row
	if row < 0 {
		row += len(r.Rows)
	}
	if row < 0 || row >= len(r.Rows) || spec.Col >= len(r.Rows[row].Values) {
		return 0, "", fmt.Errorf("experiments: %s has no cell (%d,%d): %d rows",
			r.ID, spec.Row, spec.Col, len(r.Rows))
	}
	cell := r.Rows[row].Values[spec.Col]
	fields := strings.Fields(cell)
	if len(fields) == 0 {
		return 0, "", fmt.Errorf("experiments: %s cell (%d,%d) is empty", r.ID, spec.Row, spec.Col)
	}
	num := strings.TrimPrefix(fields[0], "$")
	num = strings.TrimSuffix(strings.TrimSuffix(num, "%"), "x")
	v, perr := strconv.ParseFloat(num, 64)
	if perr != nil {
		return 0, "", fmt.Errorf("experiments: %s cell (%d,%d) %q is not numeric",
			r.ID, spec.Row, spec.Col, cell)
	}
	return v, spec.Unit, nil
}
