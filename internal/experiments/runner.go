package experiments

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// Spec names one experiment of the evaluation suite.
type Spec struct {
	ID string
	Fn func(Config) *Result
}

// The global experiment registry. The 18 paper experiments register at init
// (in paper order); scenario suites loaded from files register alongside
// them (internal/scenario.RegisterSuite), so one runner — worker pool, panic
// containment, headline extraction — serves both. Registration is mutex-
// guarded for test harnesses that register and unregister concurrently with
// reads; the ordered slice keeps Specs() deterministic.
var (
	regMu    sync.RWMutex
	regSpecs []Spec
	regHeads = map[string]HeadlineSpec{}
)

// paperSpecs returns the 18 paper experiments in paper order — the exact
// pre-registry Specs() list, kept verbatim as the reference the registry
// differential test (TestRegistryMatchesPaperSpecs) compares against.
func paperSpecs() []Spec {
	return []Spec{
		{"Table 5", Table5LoC},
		{"Fig. 9", Fig9SinglePort},
		{"Fig. 10", Fig10MultiPort},
		{"Fig. 11", Fig11RateControl40G},
		{"Fig. 12", Fig12RateControl100G},
		{"Fig. 13", Fig13RandomQQ},
		{"Fig. 14", Fig14Accelerator},
		{"Fig. 15", Fig15Replicator},
		{"Fig. 16", Fig16StatCollection},
		{"Fig. 17", Fig17ExactMatch},
		{"Table 6", Table6Cost},
		{"Table 7", Table7Resources},
		{"Table 8", Table8SynFlood},
		{"Fig. 18", Fig18DelayTesting},
		{"Ablation A", AblationSketchAccuracy},
		{"Ablation B", AblationCuckooOccupancy},
		{"Ablation C", AblationTemplateAmplification},
		{"Case study", CaseWebScale},
	}
}

// paperHeadlines maps each paper experiment to its headline cell, in paper
// order (a slice, not a map literal, so registration order is deterministic).
var paperHeadlines = []struct {
	ID string
	HeadlineSpec
}{
	{"Table 5", HeadlineSpec{0, 0, "NTAPI-LoC"}},
	{"Fig. 9", HeadlineSpec{0, 0, "Gbps-64B@100G"}},
	{"Fig. 10", HeadlineSpec{-1, 0, "Gbps-aggregate"}},
	{"Fig. 11", HeadlineSpec{1, 0, "ns-HT-MAE-1Mpps"}},
	{"Fig. 12", HeadlineSpec{1, 0, "ns-MAE-1Mpps"}},
	{"Fig. 13", HeadlineSpec{0, 0, "QQ-corr-normal"}},
	{"Fig. 14", HeadlineSpec{0, 0, "ns-RTT-64B"}},
	{"Fig. 15", HeadlineSpec{0, 0, "ns-mcast-64B"}},
	{"Fig. 16", HeadlineSpec{4, 0, "Mbps-digest-256B"}},
	{"Fig. 17", HeadlineSpec{-1, 0, "entries-16b"}},
	{"Table 6", HeadlineSpec{2, 0, "USD-saved-per-Tbps"}},
	{"Table 7", HeadlineSpec{-1, 5, "pct-SALU-reduce"}},
	{"Table 8", HeadlineSpec{0, 0, "Gbps-testbed"}},
	{"Fig. 18", HeadlineSpec{0, 0, "ns-HT-HW-mean"}},
	{"Ablation A", HeadlineSpec{0, 0, "counter-err-keys"}},
	{"Ablation B", HeadlineSpec{2, 0, "pct-onchip-0.75"}},
	{"Ablation C", HeadlineSpec{2, 0, "amplification-x"}},
	{"Case study", HeadlineSpec{1, 0, "handshakes-per-s"}},
}

func init() {
	for _, sp := range paperSpecs() {
		MustRegister(sp)
	}
	for _, h := range paperHeadlines {
		RegisterHeadline(h.ID, h.HeadlineSpec)
	}
}

// Register appends an experiment to the registry. IDs are unique: loading
// the same scenario suite twice without unregistering is an error, not a
// silent double run.
func Register(sp Spec) error {
	if sp.ID == "" || sp.Fn == nil {
		return fmt.Errorf("experiments: Register needs an ID and an Fn")
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, have := range regSpecs {
		if have.ID == sp.ID {
			return fmt.Errorf("experiments: %q already registered", sp.ID)
		}
	}
	regSpecs = append(regSpecs, sp)
	return nil
}

// MustRegister is Register for init-time wiring, where a duplicate is a bug.
func MustRegister(sp Spec) {
	if err := Register(sp); err != nil {
		panic(err)
	}
}

// Unregister removes an experiment (and its headline) by ID, so test
// harnesses and suite reloads can re-register cleanly. Unknown IDs are a
// no-op.
func Unregister(id string) {
	regMu.Lock()
	defer regMu.Unlock()
	for i, sp := range regSpecs {
		if sp.ID == id {
			regSpecs = append(regSpecs[:i], regSpecs[i+1:]...)
			break
		}
	}
	delete(regHeads, id)
}

// RegisterHeadline declares where an experiment's headline metric lives in
// its result table (see HeadlineSpec). Re-registration overwrites.
func RegisterHeadline(id string, hs HeadlineSpec) {
	regMu.Lock()
	defer regMu.Unlock()
	regHeads[id] = hs
}

// Specs returns every registered experiment in registration order — the 18
// paper experiments first (paper order), then any registered scenarios.
func Specs() []Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]Spec(nil), regSpecs...)
}

// runSpec executes one experiment, containing any panic as a named failure:
// the suite keeps running, the panicking experiment reports a result whose
// notes carry the panic value, and Headline() on that result errors (so a
// crashed experiment can never masquerade as a measurement). The recovery
// note deliberately omits the stack trace — results render bit-identically
// across engines and worker counts, and goroutine stacks do not.
func runSpec(cfg Config, sp Spec) (res *Result) {
	defer func() {
		if p := recover(); p != nil {
			res = &Result{
				ID:    sp.ID,
				Title: "experiment failed",
				Notes: []string{fmt.Sprintf("PANIC: %v", p)},
			}
		}
	}()
	res = sp.Fn(cfg)
	if res == nil {
		res = &Result{ID: sp.ID, Title: "experiment failed",
			Notes: []string{"experiment returned no result"}}
	}
	return res
}

// Run executes specs across a GOMAXPROCS-bounded worker pool and returns
// results in input order regardless of completion order. Every experiment
// builds its own netsim.Sim and derives every random stream from cfg.Seed
// plus a component label, so no state is shared between workers and the
// output is bit-identical to a sequential run (TestParallelDeterminism pins
// this). A panicking experiment fails alone (runSpec): its slot carries a
// failure result and the rest of the suite completes.
func Run(cfg Config, specs []Spec) []*Result {
	out := make([]*Result, len(specs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, sp := range specs {
			out[i] = runSpec(cfg, sp)
		}
		return out
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = runSpec(cfg, specs[i])
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// All runs every registered experiment on the parallel runner.
func All(cfg Config) []*Result { return Run(cfg, Specs()) }

// AllSequential runs every registered experiment one after another on the
// calling goroutine — the reference ordering for determinism regression
// tests.
func AllSequential(cfg Config) []*Result {
	specs := Specs()
	out := make([]*Result, len(specs))
	for i, sp := range specs {
		out[i] = runSpec(cfg, sp)
	}
	return out
}

// HeadlineSpec locates an experiment's headline metric inside its result
// table. Row < 0 counts from the end (-1 = last row). Unit doubles as the
// custom-metric name the bench suite reports.
type HeadlineSpec struct {
	Row, Col int
	Unit     string
}

// Headline extracts an experiment's headline metric. It returns an error —
// rather than a silent zero — when the result has no such cell or the cell
// does not start with a number, so a broken experiment cannot masquerade as
// a real measurement. The headline table is part of the registry: paper
// experiments install theirs at init, scenarios via RegisterHeadline.
func Headline(r *Result) (value float64, unit string, err error) {
	regMu.RLock()
	spec, ok := regHeads[r.ID]
	regMu.RUnlock()
	if !ok {
		return 0, "", fmt.Errorf("experiments: no headline defined for %q", r.ID)
	}
	row := spec.Row
	if row < 0 {
		row += len(r.Rows)
	}
	if row < 0 || row >= len(r.Rows) || spec.Col >= len(r.Rows[row].Values) {
		return 0, "", fmt.Errorf("experiments: %s has no cell (%d,%d): %d rows",
			r.ID, spec.Row, spec.Col, len(r.Rows))
	}
	cell := r.Rows[row].Values[spec.Col]
	fields := strings.Fields(cell)
	if len(fields) == 0 {
		return 0, "", fmt.Errorf("experiments: %s cell (%d,%d) is empty", r.ID, spec.Row, spec.Col)
	}
	num := strings.TrimPrefix(fields[0], "$")
	num = strings.TrimSuffix(strings.TrimSuffix(num, "%"), "x")
	v, perr := strconv.ParseFloat(num, 64)
	if perr != nil {
		return 0, "", fmt.Errorf("experiments: %s cell (%d,%d) %q is not numeric",
			r.ID, spec.Row, spec.Col, cell)
	}
	return v, spec.Unit, nil
}
