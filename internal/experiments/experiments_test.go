package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var cfg = Config{Quick: true, Seed: 1}

func num(t *testing.T, res *Result, row, col int) float64 {
	t.Helper()
	if row >= len(res.Rows) || col >= len(res.Rows[row].Values) {
		t.Fatalf("%s: no cell (%d,%d); rows=%d", res.ID, row, col, len(res.Rows))
	}
	f := strings.Fields(res.Rows[row].Values[col])
	v, err := strconv.ParseFloat(strings.TrimPrefix(strings.TrimSuffix(strings.TrimSuffix(f[0], "%"), "x"), "$"), 64)
	if err != nil {
		t.Fatalf("%s row %d col %d: %q not numeric", res.ID, row, col, res.Rows[row].Values[col])
	}
	return v
}

func noErrors(t *testing.T, res *Result) {
	t.Helper()
	for _, n := range res.Notes {
		if strings.HasPrefix(n, "ERROR") {
			t.Fatalf("%s: %s", res.ID, n)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	res := Table5LoC(cfg)
	noErrors(t, res)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := range res.Rows {
		nt, p4, lua := num(t, res, i, 0), num(t, res, i, 1), num(t, res, i, 2)
		if nt >= lua {
			t.Errorf("%s: NTAPI (%v) not smaller than Lua (%v)", res.Rows[i].Label, nt, lua)
		}
		if p4 < 5*nt {
			t.Errorf("%s: generated P4 (%v) should dwarf NTAPI (%v)", res.Rows[i].Label, p4, nt)
		}
		// The paper's headline: >74.4% reduction vs Lua.
		if 1-nt/lua < 0.744 {
			t.Errorf("%s: reduction %.1f%% below the paper's 74.4%%", res.Rows[i].Label, 100*(1-nt/lua))
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res := Fig9SinglePort(cfg)
	noErrors(t, res)
	for i, row := range res.Rows {
		ht100, ht40, mg40 := num(t, res, i, 0), num(t, res, i, 1), num(t, res, i, 2)
		if ht100 < 97 || ht40 < 38 {
			t.Errorf("%s: HT off line rate: %v / %v", row.Label, ht100, ht40)
		}
		if i == 0 && mg40 > 15 {
			t.Errorf("64B: MG one core should be far below 40G, got %v", mg40)
		}
	}
	// MG reaches line rate for the largest size.
	last := len(res.Rows) - 1
	if mg := num(t, res, last, 2); mg < 38 {
		t.Errorf("1500B: MG should reach 40G line rate, got %v", mg)
	}
}

func TestFig10Shape(t *testing.T) {
	res := Fig10MultiPort(cfg)
	noErrors(t, res)
	// HT scales ~100G per port; MG ~10G per core.
	for i := range res.Rows {
		n := float64(i + 1)
		if ht := num(t, res, i, 0); ht < 97*n {
			t.Errorf("n=%d: HT aggregate %v below %v", i+1, ht, 97*n)
		}
		if mg := num(t, res, i, 1); mg < 9*n || mg > 11*n {
			t.Errorf("n=%d: MG aggregate %v, want ~%v", i+1, mg, 10*n)
		}
	}
}

func TestFig11OrderOfMagnitude(t *testing.T) {
	res := Fig11RateControl40G(cfg)
	noErrors(t, res)
	for i, row := range res.Rows {
		htMAE, mgMAE := num(t, res, i, 0), num(t, res, i, 3)
		if mgMAE < 10*htMAE {
			t.Errorf("%s: MG MAE %v not an order above HT %v", row.Label, mgMAE, htMAE)
		}
		htRMSE := num(t, res, i, 2)
		if htRMSE < htMAE {
			t.Errorf("%s: RMSE < MAE", row.Label)
		}
	}
}

func TestFig12ErrorsGrowWithSize(t *testing.T) {
	res := Fig12RateControl100G(cfg)
	noErrors(t, res)
	// Speed rows (same size) stay in a narrow band; size rows grow.
	var sizeMAEs []float64
	for i, row := range res.Rows {
		if strings.Contains(row.Label, "1Mpps/") && !strings.Contains(row.Label, "/64B") {
			sizeMAEs = append(sizeMAEs, num(t, res, i, 0))
		}
	}
	if len(sizeMAEs) < 3 {
		t.Fatalf("size sweep rows missing")
	}
	if sizeMAEs[len(sizeMAEs)-1] <= sizeMAEs[0] {
		t.Errorf("errors should grow with packet size: %v", sizeMAEs)
	}
}

func TestFig13Correlation(t *testing.T) {
	res := Fig13RandomQQ(cfg)
	noErrors(t, res)
	for i, row := range res.Rows {
		if corr := num(t, res, i, 0); corr < 0.995 {
			t.Errorf("%s: Q-Q correlation %v too low", row.Label, corr)
		}
	}
}

func TestFig14Calibration(t *testing.T) {
	res := Fig14Accelerator(cfg)
	noErrors(t, res)
	rtt64 := num(t, res, 0, 0)
	if rtt64 < 568 || rtt64 > 572 {
		t.Errorf("64B RTT = %v, want ~570 (paper)", rtt64)
	}
	if rmse := num(t, res, 0, 1); rmse > 5 {
		t.Errorf("RTT RMSE %v above the paper's 5ns bound", rmse)
	}
	if cap64 := num(t, res, 0, 2); cap64 != 89 {
		t.Errorf("capacity = %v, want 89", cap64)
	}
	// RTT grows with size; capacity shrinks.
	last := len(res.Rows) - 1
	if num(t, res, last, 0) <= rtt64 || num(t, res, last, 2) >= 89 {
		t.Error("size trend wrong")
	}
}

func TestFig15Calibration(t *testing.T) {
	res := Fig15Replicator(cfg)
	noErrors(t, res)
	d64 := num(t, res, 0, 0)
	if d64 < 385 || d64 > 393 {
		t.Errorf("64B mcast delay = %v, want ~389", d64)
	}
	if rmse := num(t, res, 0, 1); rmse > 4.5 {
		t.Errorf("mcast RMSE %v above the paper's 4.5ns", rmse)
	}
	// 1280B ~ +65ns.
	d1280 := num(t, res, 4, 0)
	if d1280-d64 < 55 || d1280-d64 > 75 {
		t.Errorf("1280B delta = %v, want ~65ns", d1280-d64)
	}
	// Port count/speed rows stay within a few ns of the 64B baseline.
	for i := 5; i < len(res.Rows); i++ {
		if d := num(t, res, i, 0); d < d64-5 || d > d64+5 {
			t.Errorf("%s: delay %v deviates from baseline", res.Rows[i].Label, d)
		}
	}
}

func TestFig16Shapes(t *testing.T) {
	res := Fig16StatCollection(cfg)
	noErrors(t, res)
	// Goodput grows with message size to ~4.5 Mbps.
	g16, g256 := num(t, res, 0, 0), num(t, res, 4, 0)
	if g256 < 4.0 || g256 > 5.0 {
		t.Errorf("256B goodput = %v, want ~4.5Mbps", g256)
	}
	if g16 >= g256 {
		t.Error("goodput should grow with message size")
	}
	// 65536-counter row: batched <0.2s and much faster than one-by-one.
	last := res.Rows[len(res.Rows)-1].Values[0]
	var single, batch float64
	if _, err := sscanTwo(last, &single, &batch); err != nil {
		t.Fatalf("parse %q: %v", last, err)
	}
	if batch >= 0.2 {
		t.Errorf("batched pull %vs, want <0.2s (paper)", batch)
	}
	if single < 5*batch {
		t.Errorf("one-by-one (%v) should be much slower than batched (%v)", single, batch)
	}
}

func sscanTwo(s string, a, b *float64) (int, error) {
	var x, y float64
	n, err := fmtSscanf(s, &x, &y)
	*a, *b = x, y
	return n, err
}

func fmtSscanf(s string, x, y *float64) (int, error) {
	fields := strings.Fields(s)
	got := 0
	for _, f := range fields {
		f = strings.TrimSuffix(strings.TrimSuffix(f, "s,"), "s")
		if v, err := strconv.ParseFloat(f, 64); err == nil {
			if got == 0 {
				*x = v
			} else if got == 1 {
				*y = v
				return 2, nil
			}
			got++
		}
	}
	return got, nil
}

func TestFig17Trends(t *testing.T) {
	res := Fig17ExactMatch(cfg)
	noErrors(t, res)
	// Entries grow with flow count (same array size), 32-bit needs fewer
	// than 16-bit at scale, and smaller arrays need more entries.
	var small16 []float64 // 16K arrays across flow counts
	for i, row := range res.Rows {
		if strings.Contains(row.Label, "16K-slot") {
			small16 = append(small16, num(t, res, i, 0))
		}
	}
	for i := 1; i < len(small16); i++ {
		if small16[i] < small16[i-1] {
			t.Errorf("entries should grow with flows: %v", small16)
		}
	}
	// Last (largest) population: digest-width and array-size effects.
	n := len(res.Rows)
	e16small, e32small := num(t, res, n-2, 0), num(t, res, n-2, 1)
	e16big := num(t, res, n-1, 0)
	if e32small >= e16small {
		t.Errorf("32-bit digest (%v) should need fewer entries than 16-bit (%v)", e32small, e16small)
	}
	if e16big >= e16small {
		t.Errorf("larger arrays (%v) should need fewer entries than small (%v)", e16big, e16small)
	}
}

func TestTable6Numbers(t *testing.T) {
	res := Table6Cost(cfg)
	noErrors(t, res)
	if sav := num(t, res, 2, 0); sav < 38400 {
		t.Errorf("equipment savings %v below the paper's $38,400", sav)
	}
}

func TestTable7Shape(t *testing.T) {
	res := Table7Resources(cfg)
	noErrors(t, res)
	// Trigger components stay small; reduce/distinct dominate SALU.
	for i, row := range res.Rows {
		salu := num(t, res, i, 5)
		if strings.HasPrefix(row.Label, "distinct") || strings.HasPrefix(row.Label, "reduce") {
			if salu < 15 {
				t.Errorf("%s: SALU %v%% too small (paper: 33-45%%)", row.Label, salu)
			}
			if sram := num(t, res, i, 1); sram < 5 {
				t.Errorf("%s: SRAM %v%% too small", row.Label, sram)
			}
		} else if salu > 15 {
			t.Errorf("%s: SALU %v%% too large for a trigger component", row.Label, salu)
		}
		if xbar := num(t, res, i, 0); xbar > 15 {
			t.Errorf("%s: crossbar %v%% implausible", row.Label, xbar)
		}
	}
}

func TestTable8Numbers(t *testing.T) {
	res := Table8SynFlood(cfg)
	noErrors(t, res)
	if g := num(t, res, 0, 0); g < 390 || g > 410 {
		t.Errorf("testbed throughput %v, want ~400Gbps", g)
	}
	if a := num(t, res, 2, 1); a < 5.1e6 || a > 5.3e6 {
		t.Errorf("estimated agents %v, want 5.2e6", a)
	}
}

func TestFig18Ordering(t *testing.T) {
	res := Fig18DelayTesting(cfg)
	noErrors(t, res)
	get := func(label string) float64 {
		for i, row := range res.Rows {
			if row.Label == label {
				return num(t, res, i, 0)
			}
		}
		t.Fatalf("row %q missing", label)
		return 0
	}
	truth := get("true DUT delay")
	htHW, htSW := get("HyperTester-HW"), get("HyperTester-SW")
	mgHW, mgSW := get("MoonGen-HW"), get("MoonGen-SW")
	if abs(htHW-truth) > 2 || abs(mgHW-truth) > 2 {
		t.Errorf("HW timestamps should match truth: ht=%v mg=%v truth=%v", htHW, mgHW, truth)
	}
	if htSW <= htHW {
		t.Error("HT-SW should measure more than HW")
	}
	if htSW > 1.6*truth {
		t.Errorf("HT-SW (%v) should stay close to truth (%v)", htSW, truth)
	}
	if mgSW < 3*truth {
		t.Errorf("MG-SW (%v) should deviate by over 3x (paper)", mgSW)
	}
	if htSW >= mgSW {
		t.Error("HT-SW must beat MG-SW")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestResultString(t *testing.T) {
	res := &Result{ID: "X", Title: "t", Columns: []string{"a"},
		Rows: []Row{{Label: "r", Values: []string{"1"}}}, Notes: []string{"n"}}
	s := res.String()
	for _, want := range []string{"== X — t ==", "r", "1", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestAblationShapes(t *testing.T) {
	a := AblationSketchAccuracy(cfg)
	noErrors(t, a)
	for i, row := range a.Rows {
		if errs := num(t, a, i, 0); errs != 0 {
			t.Errorf("%s: counter-based errors = %v, want 0 (exactness)", row.Label, errs)
		}
		if over := num(t, a, i, 1); over == 0 {
			t.Errorf("%s: Count-Min had no overestimates under 4x pressure", row.Label)
		}
	}

	b := AblationCuckooOccupancy(cfg)
	noErrors(t, b)
	for i, row := range b.Rows {
		cuckoo, simple := num(t, b, i, 0), num(t, b, i, 1)
		if cuckoo <= simple {
			t.Errorf("%s: cuckoo (%v%%) must beat simple hashing (%v%%)", row.Label, cuckoo, simple)
		}
	}
	// At half load, cuckoo holds essentially everything.
	if halfLoad := num(t, b, 1, 0); halfLoad < 99 {
		t.Errorf("cuckoo at load 0.5 on-chip = %v%%, want >99%%", halfLoad)
	}

	c := AblationTemplateAmplification(cfg)
	noErrors(t, c)
	if amp := num(t, c, 2, 0); amp < 50 {
		t.Errorf("amplification %vx, want >= two orders of magnitude shape", amp)
	}
}

func TestCaseWebScaleShape(t *testing.T) {
	res := CaseWebScale(cfg)
	noErrors(t, res)
	offered := num(t, res, 0, 0)
	handshakes := num(t, res, 1, 0)
	requests := num(t, res, 2, 0)
	if offered < 95000 || offered > 102000 {
		t.Fatalf("offered rate %v/s, want ~100K", offered)
	}
	if handshakes < 0.98*offered {
		t.Fatalf("handshakes %v/s lag offered %v/s", handshakes, offered)
	}
	if requests < 0.98*offered {
		t.Fatalf("requests %v/s lag offered %v/s", requests, offered)
	}
}
