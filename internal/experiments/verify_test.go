package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/verify"
)

var updateWitness = flag.Bool("update", false, "rewrite the golden witness corpus under testdata/witness")

// TestCorpusVerifiesClean runs the path-sensitive verifier over all 18
// experiment programs: zero error-severity diagnostics (no false
// positives), and none of the walks may hit the path cap, which would
// silently weaken every proof to "unknown".
func TestCorpusVerifiesClean(t *testing.T) {
	specs := Programs()
	if len(specs) != 18 {
		t.Fatalf("corpus has %d programs, want 18", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			prog, err := spec.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			rep := compiler.AnalyzePlan(prog, verify.Options{})
			for _, d := range rep.Errors() {
				t.Errorf("false positive: %s", d)
			}
			if rep.Truncated {
				t.Errorf("walk truncated at %d paths; proofs degraded", rep.Paths)
			}
			if rep.Paths == 0 {
				t.Error("no feasible paths — the verifier proved the program unreachable")
			}
		})
	}
}

// witnessDump renders one program's witnesses plus the naive-interpreter
// outcome for each, deterministically, for the golden corpus.
func witnessDump(t *testing.T, spec ProgramSpec) string {
	t.Helper()
	prog, err := spec.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep := compiler.AnalyzePlan(prog, verify.Options{Witnesses: true})
	if len(rep.Witnesses) == 0 {
		t.Fatal("no witnesses extracted")
	}
	var b strings.Builder
	for i := range rep.Witnesses {
		wit := rep.Witnesses[i]
		entries := compiler.SyntheticEntries(prog.P4, wit)

		// ReplayPlan normalizes the witness in place and pins pkt_len to
		// the serialized frame, so the naive replay below and the golden
		// dump both see the settled input.
		got, err := compiler.ReplayPlan(prog, &wit, entries)
		if err != nil {
			t.Fatalf("witness %d: replay: %v", i, err)
		}
		in := &verify.Interp{Prog: prog.P4, Entries: entries}
		want := in.Run(wit)
		if got.Canonical() != want.Canonical() {
			t.Errorf("witness %d diverges (path %v):\n--- compiled ---\n%s--- naive ---\n%s",
				i, wit.Path, got.Canonical(), want.Canonical())
		}

		fmt.Fprintf(&b, "# %s witness %d\n", spec.Name, i)
		fmt.Fprintf(&b, "path=%s\n", strings.Join(wit.Path, ";"))
		fmt.Fprintf(&b, "headers=%s\n", strings.Join(wit.Headers, ","))
		names := make([]string, 0, len(wit.Fields))
		for n := range wit.Fields {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "field %s=%d\n", n, wit.Fields[n])
		}
		b.WriteString("--- outcome ---\n")
		b.WriteString(want.Canonical())
		b.WriteString("===\n")
	}
	return b.String()
}

// TestWitnessDifferential is the committed CI gate: every witness packet
// the verifier concretizes from every corpus program must replay
// bit-identically through the compiled ASIC plan and the naive IR
// interpreter, and the whole transcript must match the golden corpus
// under testdata/witness (regenerate with `go test -run Witness -update`).
func TestWitnessDifferential(t *testing.T) {
	for _, spec := range Programs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			dump := witnessDump(t, spec)
			golden := filepath.Join("testdata", "witness", spec.Name+".golden")
			if *updateWitness {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(dump), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("golden corpus missing (run `go test ./internal/experiments -run Witness -update`): %v", err)
			}
			if string(wantBytes) != dump {
				t.Errorf("witness corpus drifted from %s; rerun with -update if the change is intended", golden)
			}
		})
	}
}
