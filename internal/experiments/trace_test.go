package experiments

import (
	"strings"
	"testing"

	"github.com/hypertester/hypertester/internal/obs"
)

// TestTraceDifferential is the trace oracle: the full per-packet lifecycle
// trace of the sample workload must be byte-identical between the sequential
// reference engine (SimWorkers=1) and the parallel LP engine (SimWorkers=4).
// This is a far stricter check than comparing experiment headlines — every
// parse, SALU access, replication copy, TM transit, recirculation, deparse
// and wire event must land on the same virtual instant in the same order.
// CI also runs it under -race, which doubles as a data-race check on the
// trace plumbing itself.
func TestTraceDifferential(t *testing.T) {
	run := func(workers int) *obs.TraceSet {
		t.Helper()
		ts, _, err := TraceSample(Config{Quick: true, Seed: 1, SimWorkers: workers})
		if err != nil {
			t.Fatalf("SimWorkers=%d: %v", workers, err)
		}
		return ts
	}
	seq := run(1)
	par := run(4)

	if seq.Len() == 0 {
		t.Fatal("sequential trace is empty; the oracle is vacuous")
	}
	// The workload must actually cross every emission point it claims to
	// (digests and drops excepted: no queries, line-rate sinks) — otherwise
	// a silently detached tracer would still pass the diff.
	want := []obs.Kind{
		obs.KindParse, obs.KindSALU, obs.KindTMEnqueue, obs.KindTMDequeue,
		obs.KindMcastCopy, obs.KindRecirculate, obs.KindDeparse,
		obs.KindWireTx, obs.KindWireRx,
	}
	seen := make(map[obs.Kind]bool)
	for _, r := range seq.Merged() {
		seen[r.Kind] = true
	}
	for _, k := range want {
		if !seen[k] {
			t.Errorf("sequential trace has no %v records; workload no longer exercises that stage", k)
		}
	}

	a, b := seq.Canonical(), par.Canonical()
	if a == b {
		return
	}
	// Locate the first diverging line for a readable failure.
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			t.Fatalf("trace diverges at line %d of %d/%d:\n  SimWorkers=1: %s\n  SimWorkers=4: %s",
				i+1, len(la), len(lb), la[i], lb[i])
		}
	}
	t.Fatalf("traces diverge in length: %d vs %d lines", len(la), len(lb))
}

// TestTraceWorkerCountInvariance extends the oracle across several worker
// counts: the canonical trace must not depend on how many goroutines the LP
// engine schedules onto.
func TestTraceWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run differential")
	}
	want := ""
	for _, w := range []int{2, 3, 8} {
		ts, _, err := TraceSample(Config{Quick: true, Seed: 3, SimWorkers: w})
		if err != nil {
			t.Fatalf("SimWorkers=%d: %v", w, err)
		}
		got := ts.Canonical()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("SimWorkers=%d trace differs from SimWorkers=2", w)
		}
	}
}

// TestTraceDoesNotPerturbHeadlines pins the "observational only" contract:
// running the full quick suite with tracing enabled must render every one of
// the 18 experiment results byte-identically to an untraced run. Streams are
// capped so the traced run's memory stays bounded; the cap is count-based
// and therefore deterministic too.
func TestTraceDoesNotPerturbHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential run")
	}
	plain := AllSequential(Config{Quick: true, Seed: 1})

	ts := obs.NewTraceSet()
	ts.SetLimit(4096)
	traced := AllSequential(Config{Quick: true, Seed: 1, Trace: ts})

	if ts.Len() == 0 {
		t.Error("traced suite recorded nothing; Config.Trace is not wired through")
	}
	if len(plain) != len(traced) {
		t.Fatalf("plain ran %d experiments, traced %d", len(plain), len(traced))
	}
	for i := range plain {
		if p, q := plain[i].String(), traced[i].String(); p != q {
			t.Errorf("%s: enabling tracing changed the result:\n--- untraced\n%s\n--- traced\n%s",
				plain[i].ID, p, q)
		}
	}
}

// TestTraceSampleRegistry sanity-checks the metrics half of TraceSample: the
// registry must expose switch, sink, and scheduler metrics, and — on the
// parallel engine — per-LP engine stats, with plausible values.
func TestTraceSampleRegistry(t *testing.T) {
	_, reg, err := TraceSample(Config{Quick: true, Seed: 1, SimWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"hypertester.pipeline_drops",
		"hypertester.port0.tx_packets",
		"sink0.rx_packets",
		"sim.tester.executed",
		"engine.workers",
		"engine.lp.tester.executed",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("registry snapshot missing %q", name)
		}
	}
	if v, _ := snap["sink0.rx_packets"].(float64); !(v > 0) {
		t.Errorf("sink0.rx_packets = %v, want > 0", snap["sink0.rx_packets"])
	}
	if v, _ := snap["engine.workers"].(float64); v != 4 {
		t.Errorf("engine.workers = %v, want 4", snap["engine.workers"])
	}
	if v, _ := snap["engine.epochs"].(float64); !(v > 0) {
		t.Errorf("engine.epochs = %v, want > 0", snap["engine.epochs"])
	}
}
