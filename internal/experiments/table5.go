package experiments

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/moongen"
	"github.com/hypertester/hypertester/internal/p4ir"
)

// The four Table 5 applications, written in NTAPI. These are the library's
// canonical task sources — the examples and case studies reuse them.

// TaskThroughput is Table 3's throughput-testing task.
const TaskThroughput = `
# Throughput testing (Table 3)
T1 = trigger()
    .set([dip, sip, proto], [9.9.9.9, 1.1.0.1, udp])
    .set([dport, sport], [1, 1])
    .set([loop, length], [0, 64])
    .set(port, 0)
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
Q2 = query().map(p -> (pkt_len)).reduce(func=sum)
`

// TaskDelay probes a device under test and reduces per-flow delay samples
// from reflected packets (§7.5's delay-testing application).
const TaskDelay = `
# Delay testing (case study, Fig. 18)
T1 = trigger()
    .set([dip, sip, proto], [9.9.9.9, 1.1.0.1, udp])
    .set([dport, sport], [7, 7])
    .set(ipv4.id, range(0, 65535, 1))
    .set(interval, 10us)
    .set(port, 0)
Q1 = query(T1).map(p -> (ipv4.id)).reduce(keys={ipv4.id}, func=max)
Q2 = query().map(p -> (ipv4.id)).reduce(keys={ipv4.id}, func=max)
Q3 = query().map(p -> (pkt_len)).reduce(func=sum)
`

// TaskIPScan sweeps an address block with SYN probes and counts distinct
// responders (the ZMap-style Internet-scanning application).
const TaskIPScan = `
# IP scanning
T1 = trigger()
    .set([sip, proto, flag], [1.1.0.1, tcp, SYN])
    .set([dport, sport], [80, 1024])
    .set(dip, range(184549376, 185073663, 1))
    .set(port, 0)
Q1 = query().filter(tcp_flag == SYN+ACK).distinct(keys={ipv4.sip})
`

// TaskSynFlood emulates a distributed SYN flood (§7.5).
const TaskSynFlood = `
# SYN flood attack emulation
T1 = trigger()
    .set([dip, dport, proto, flag], [9.9.9.9, 80, tcp, SYN])
    .set(sip, range(201326592, 201392127, 1))
    .set(sport, range(1024, 65535, 1))
    .set(port, [0, 1, 2, 3])
`

// Table5Apps maps application name to (NTAPI source, MoonGen Lua script).
var Table5Apps = []struct {
	Name   string
	NTAPI  string
	MGName string
}{
	{"Throughput Testing", TaskThroughput, "throughput"},
	{"Delay Testing", TaskDelay, "delay"},
	{"IP Scanning", TaskIPScan, "ipscan"},
	{"SYN Flood Attack", TaskSynFlood, "synflood"},
}

// Table5LoC reproduces Table 5: lines of code per application in NTAPI, in
// the generated P4, and in MoonGen Lua.
func Table5LoC(cfg Config) *Result {
	res := &Result{
		ID:      "Table 5",
		Title:   "Lines of code for different applications",
		Columns: []string{"NTAPI", "P4", "MoonGen Lua", "NTAPI vs Lua"},
	}
	for _, app := range Table5Apps {
		task, err := ntapi.Parse(app.Name, app.NTAPI)
		if err != nil {
			res.Rows = append(res.Rows, Row{Label: app.Name, Values: []string{"parse error: " + err.Error()}})
			continue
		}
		prog, err := compiler.Compile(task, compiler.Options{
			// The scan task's exact-key precomputation over ~512K
			// addresses is capped for the LoC table.
			MaxHeaderSpace: 1 << 16,
		})
		if err != nil {
			res.Rows = append(res.Rows, Row{Label: app.Name, Values: []string{"compile error: " + err.Error()}})
			continue
		}
		nt := ntapi.CountLoC(app.NTAPI)
		p4 := p4ir.CountedLoC(prog.P4)
		lua := moongen.CountLoC(moongen.Scripts[app.MGName])
		res.Rows = append(res.Rows, Row{
			Label: app.Name,
			Values: []string{
				fmt.Sprintf("%d", nt),
				fmt.Sprintf("%d", p4),
				fmt.Sprintf("%d", lua),
				fmt.Sprintf("-%.1f%%", 100*(1-float64(nt)/float64(lua))),
			},
		})
	}
	res.Notes = append(res.Notes,
		"paper: NTAPI 9/10/7/5 LoC; P4 172/134/133/94; MoonGen 43/71/48/63; reduction >74.4%")
	return res
}
