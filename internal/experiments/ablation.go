package experiments

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/core/htpr"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/sketch"
)

// The two ablations back the paper's §3.1/§5.2 design arguments with
// measurements the paper asserts but does not plot:
//
//   - AblationSketchAccuracy: the counter-based algorithm with exact key
//     matching is *exact*, while Sonata's sketch-based reduce (Count-Min)
//     and distinct (Bloom) err under memory pressure — the reason
//     HyperTester "redesigns reduce and distinct".
//   - AblationCuckooOccupancy: cuckoo hashing holds far more of the key
//     population on-chip than the simple hashing of prior counter-based
//     designs (HashPipe et al.), which evict on first collision — the
//     reason §5.2 takes on the complexity of data-plane cuckoo.

func ablationPlan(kind ntapi.QueryKind, arraySize int) *compiler.QueryPlan {
	return &compiler.QueryPlan{
		ID:         1,
		Query:      &ntapi.Query{Name: "ablation"},
		Kind:       kind,
		Func:       ntapi.AggCount,
		Keys:       []asic.Field{asic.FieldIPv4Src},
		DigestBits: 16,
		ArraySize:  arraySize,
		PolyArray1: asic.PolyCRC32,
		PolyArray2: asic.PolyCRC32C,
		PolyDigest: asic.PolyKoopman,
	}
}

func keyBytes(k uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], k)
	return b[:]
}

// AblationSketchAccuracy compares per-flow counting accuracy of the paper's
// counter-based algorithm against Sonata's sketch structures at equal
// data-plane memory, across flow populations.
func AblationSketchAccuracy(cfg Config) *Result {
	res := &Result{
		ID:      "Ablation A",
		Title:   "Counter-based vs sketch-based accuracy (equal memory)",
		Columns: []string{"counter err keys", "CM overest. keys", "CM avg rel err", "Bloom distinct err"},
	}
	updatesPerFlow := 8
	pops := []int{1 << 12, 1 << 14, 1 << 16}
	if cfg.Quick {
		pops = []int{1 << 12, 1 << 14}
	}
	for _, flows := range pops {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(flows)))

		// Key population + ground truth. uniq holds the distinct keys in
		// first-occurrence order: scoring iterates it instead of the truth
		// map, whose iteration order varies run to run.
		keys := make([]uint64, flows)
		for i := range keys {
			keys[i] = rng.Uint64() & 0xffffffff
		}
		truth := map[uint64]uint64{}
		uniq := make([]uint64, 0, flows)
		for _, k := range keys {
			if _, ok := truth[k]; !ok {
				truth[k] = 0
				uniq = append(uniq, k)
			}
		}

		// Counter-based: arrays sized at 1/4 of the population (heavy
		// pressure), exact keys precomputed as the compiler would.
		arraySize := flows / 4
		for arraySize&(arraySize-1) != 0 {
			arraySize++
		}
		plan := ablationPlan(ntapi.KindReduce, arraySize)
		tuples := make([][]uint64, flows)
		for i, k := range keys {
			tuples[i] = []uint64{k}
		}
		plan.ExactKeys = compiler.ComputeExactKeys(tuples, plan.ArraySize, plan.DigestBits,
			plan.PolyArray1, plan.PolyArray2, plan.PolyDigest)
		ct := htpr.NewCounterTable(plan)

		// Sketch memory budget = the counter table's register memory:
		// 2 arrays x (16b digest + 64b counter).
		memBytes := 2 * arraySize * (16 + 64) / 8
		cmWidth := memBytes / 8 / 4 // 4 rows of 8-byte counters
		cm := sketch.NewCountMin(4, cmWidth)
		bloom := sketch.NewBloom(memBytes*8, 3)
		bloomDistinct := 0

		for pass := 0; pass < updatesPerFlow; pass++ {
			for _, k := range keys {
				ct.Update([]uint64{k}, 1)
				ct.DrainOne()
				cm.Add(keyBytes(k), 1)
				if pass == 0 && bloom.AddIfNew(keyBytes(k)) {
					bloomDistinct++
				}
				truth[k]++
			}
		}

		// Score.
		counterErrs := 0
		got := map[uint64]uint64{}
		for _, r := range ct.Collect() {
			got[r.Key[0]] = r.Value
		}
		for _, k := range uniq {
			if got[k] != truth[k] {
				counterErrs++
			}
		}
		cmOver, cmRelSum := 0, 0.0
		for _, k := range uniq {
			want := truth[k]
			est := cm.Estimate(keyBytes(k))
			if est > want {
				cmOver++
			}
			cmRelSum += float64(est-want) / float64(want)
		}
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%d flows", flows),
			Values: []string{
				fmt.Sprintf("%d", counterErrs),
				fmt.Sprintf("%d (%.1f%%)", cmOver, 100*float64(cmOver)/float64(flows)),
				fmt.Sprintf("%.3f", cmRelSum/float64(flows)),
				fmt.Sprintf("%+d", bloomDistinct-flows),
			},
		})
	}
	res.Notes = append(res.Notes,
		"counter-based reduce/distinct (exact key matching + cuckoo + CPU eviction) is exact at any pressure; Count-Min overestimates and Bloom undercounts distinct as memory tightens — the §5.2 motivation")
	return res
}

// AblationCuckooOccupancy compares on-chip occupancy (fraction of the key
// population resident in data-plane arrays rather than evicted to the CPU)
// between partial-key cuckoo hashing and the simple single-choice hashing
// of prior counter-based designs, at equal memory.
func AblationCuckooOccupancy(cfg Config) *Result {
	res := &Result{
		ID:      "Ablation B",
		Title:   "Cuckoo vs simple hashing: on-chip occupancy at equal memory",
		Columns: []string{"cuckoo on-chip", "simple-hash on-chip"},
	}
	h := asic.NewHashUnit("simple", asic.PolyCRC32)
	loads := []float64{0.25, 0.5, 0.75, 1.0, 1.25}
	const slots = 1 << 12 // total cells across structures
	for _, load := range loads {
		n := int(load * slots)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))

		// Cuckoo: two arrays of slots/2 (same total memory).
		plan := ablationPlan(ntapi.KindDistinct, slots/2)
		ct := htpr.NewCounterTable(plan)
		for i := 0; i < n; i++ {
			ct.Update([]uint64{rng.Uint64()}, 1)
			ct.DrainOne()
			ct.DrainOne()
		}
		cuckooOnChip := float64(n-int(ct.Evictions)) / float64(n)

		// Simple hashing: one array of `slots`; first collision evicts
		// the newcomer to the CPU.
		occupied := make([]bool, slots)
		evicted := 0
		for i := 0; i < n; i++ {
			idx := h.Index(keyBytes(rng.Uint64()), slots)
			if occupied[idx] {
				evicted++
			} else {
				occupied[idx] = true
			}
		}
		simpleOnChip := float64(n-evicted) / float64(n)

		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("load %.2f (%d keys / %d cells)", load, n, slots),
			Values: []string{
				fmt.Sprintf("%.1f%%", 100*cuckooOnChip),
				fmt.Sprintf("%.1f%%", 100*simpleOnChip),
			},
		})
	}
	res.Notes = append(res.Notes,
		"partial-key cuckoo keeps nearly the whole population on-chip until the arrays genuinely fill; single-choice hashing sheds keys to the control plane from low load — the memory-efficiency argument of §5.2")
	return res
}
