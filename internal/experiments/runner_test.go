package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// TestParallelDeterminism is the regression gate for the parallel suite
// runner: the same seed must produce bit-identical rendered results whether
// the 18 experiments run sequentially on one goroutine or fanned out across
// the worker pool. Each experiment owns its Sim and derives every RNG stream
// from (seed, label), so any divergence here means someone introduced shared
// mutable state between experiments.
func TestParallelDeterminism(t *testing.T) {
	// Force a genuinely concurrent pool even on single-CPU machines, so
	// this test (and its -race run in CI) always exercises the parallel
	// path rather than Run's sequential fallback.
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	c := Config{Quick: true, Seed: 1}
	seq := AllSequential(c)
	par := All(c)
	if len(seq) != len(par) {
		t.Fatalf("sequential ran %d experiments, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID != par[i].ID {
			t.Fatalf("order diverged at %d: %s vs %s", i, seq[i].ID, par[i].ID)
		}
		if s, p := seq[i].String(), par[i].String(); s != p {
			t.Errorf("%s: parallel output diverges from sequential:\n--- sequential\n%s\n--- parallel\n%s",
				seq[i].ID, s, p)
		}
	}
	// Piggyback the headline audit on the results already computed: every
	// experiment must expose a parseable headline metric — the number
	// htbench records in BENCH_results.json and the bench suite reports.
	for _, r := range par {
		v, unit, err := Headline(r)
		if err != nil {
			t.Errorf("%s: %v", r.ID, err)
			continue
		}
		if unit == "" {
			t.Errorf("%s: empty headline unit", r.ID)
		}
		if v == 0 && !strings.HasPrefix(r.ID, "Ablation A") {
			// Ablation A's headline is "0 counter errors" by design.
			t.Errorf("%s: headline %s = 0, suspicious", r.ID, unit)
		}
	}
}

// TestRunPreservesOrder pins that Run returns results in spec order even
// though workers complete out of order.
func TestRunPreservesOrder(t *testing.T) {
	specs := Specs()
	got := Run(Config{Quick: true, Seed: 1}, specs[:4])
	for i, r := range got {
		if r == nil {
			t.Fatalf("result %d missing", i)
		}
		if r.ID != specs[i].ID {
			t.Errorf("result %d = %s, want %s", i, r.ID, specs[i].ID)
		}
	}
}

// TestHeadlineErrors pins the failure mode: unknown IDs and non-numeric
// cells must error instead of silently reporting 0.
func TestHeadlineErrors(t *testing.T) {
	if _, _, err := Headline(&Result{ID: "nope"}); err == nil {
		t.Error("unknown experiment ID did not error")
	}
	r := &Result{ID: "Fig. 9", Rows: []Row{{Label: "64B", Values: []string{"not-a-number"}}}}
	if _, _, err := Headline(r); err == nil {
		t.Error("non-numeric headline cell did not error")
	}
	if _, _, err := Headline(&Result{ID: "Fig. 9"}); err == nil {
		t.Error("missing rows did not error")
	}
}
