package experiments

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/switchcpu"
	"github.com/hypertester/hypertester/internal/testbed"
)

// AblationTemplateAmplification quantifies the paper's core co-design
// argument (§3.1): the switch CPU alone cannot generate meaningful traffic
// through the PCIe packet interface; template-based generation uses the CPU
// once per template and lets the ASIC amplify to line rate.
func AblationTemplateAmplification(cfg Config) *Result {
	res := &Result{
		ID:      "Ablation C",
		Title:   "Template-based amplification vs CPU-only injection (64B, one 100G port)",
		Columns: []string{"rate", "CPU packets used"},
	}
	window := 200 * netsim.Microsecond
	if cfg.Quick {
		window = 100 * netsim.Microsecond
	}

	// (a) CPU-only: the switch CPU injects every packet itself.
	sim := netsim.New()
	sw := asic.New(asic.Config{Name: "sw", Sim: sim, PortGbps: []float64{100}, Seed: cfg.Seed})
	cpu := switchcpu.New(sim, sw)
	sw.Ingress.Add(asic.ProcessorFunc(func(p *asic.PHV) { p.EgressPort = 0 }))
	sink := testbed.NewSink(sim, "sink", 100)
	testbed.Connect(sim, sw.Port(0), sink.Iface, 0)
	raw, err := netproto.BuildUDP(netproto.UDPSpec{
		SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, FrameLen: 64})
	if err != nil {
		return errResult(res, err)
	}
	injected := cpu.InjectLoop(func(n uint64) *netproto.Packet {
		return &netproto.Packet{Data: append([]byte(nil), raw...)}
	}, netsim.Time(window))
	sim.RunUntil(netsim.Time(window + netsim.Millisecond))
	cpuOnlyPps := sink.RatePps()
	res.Rows = append(res.Rows, Row{
		Label: "CPU-only injection",
		Values: []string{
			fmt.Sprintf("%.2f Mpps (%.1f Gbps)", cpuOnlyPps/1e6, sink.ThroughputGbps()),
			fmt.Sprintf("%d (one per packet)", *injected),
		},
	})

	// (b) Template-based: one CPU packet, ASIC amplification.
	sinks, ht, _, err := htGenerate(cfg, throughputSrc(64, "0"), []float64{100}, cfg.Seed,
		30*netsim.Microsecond, window, false)
	if err != nil {
		return errResult(res, err)
	}
	tmplPps := sinks[0].RatePps()
	res.Rows = append(res.Rows, Row{
		Label: "template-based (HTPS)",
		Values: []string{
			fmt.Sprintf("%.2f Mpps (%.1f Gbps)", tmplPps/1e6, sinks[0].ThroughputGbps()),
			fmt.Sprintf("%d (one template)", len(ht.Program.Templates)),
		},
	})
	res.Rows = append(res.Rows, Row{
		Label:  "amplification",
		Values: []string{fmt.Sprintf("%.0fx", tmplPps/cpuOnlyPps), "-"},
	})
	res.Notes = append(res.Notes,
		"the co-design of §3.1 measured: the ASIC amplifies one CPU-built template to line rate, two orders beyond what the switch CPU can inject directly")
	return res
}
