package netproto

import (
	"bytes"
	"testing"
)

func TestStackDecodeUDP(t *testing.T) {
	raw, err := BuildUDP(UDPSpec{
		SrcMAC: MACFromUint64(1), DstMAC: MACFromUint64(2),
		SrcIP: MustIPv4("10.0.0.1"), DstIP: MustIPv4("10.0.0.2"),
		SrcPort: 5000, DstPort: 53, Payload: []byte("hello"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var s Stack
	if err := s.Decode(raw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []LayerType{LayerEthernet, LayerIPv4, LayerUDP, LayerPayload} {
		if !s.Has(want) {
			t.Fatalf("missing layer %v; decoded %v", want, s.Decoded)
		}
	}
	if s.UDP.SrcPort != 5000 || s.UDP.DstPort != 53 {
		t.Fatalf("udp ports: %+v", s.UDP)
	}
	if !bytes.Equal(s.Payload, []byte("hello")) {
		t.Fatalf("payload = %q", s.Payload)
	}
	if s.PayloadOffset != EthernetLen+IPv4MinLen+UDPLen {
		t.Fatalf("payload offset = %d", s.PayloadOffset)
	}
}

func TestStackDecodeTCPNoPayload(t *testing.T) {
	raw, err := BuildTCP(TCPSpec{
		SrcIP: MustIPv4("1.1.0.1"), DstIP: MustIPv4("9.9.9.9"),
		SrcPort: 1024, DstPort: 80, Flags: TCPSyn, Seq: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var s Stack
	if err := s.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !s.Has(LayerTCP) || s.Has(LayerPayload) {
		t.Fatalf("decoded = %v", s.Decoded)
	}
	if s.TCP.Flags != TCPSyn || s.TCP.Seq != 1 {
		t.Fatalf("tcp: %+v", s.TCP)
	}
}

func TestStackDecodePaddingNotPayload(t *testing.T) {
	// A 64-byte SYN frame carries Ethernet padding beyond IPv4 TotalLen;
	// the decoder must not report it as TCP payload.
	raw, err := BuildTCP(TCPSpec{
		SrcIP: MustIPv4("1.1.0.1"), DstIP: MustIPv4("9.9.9.9"),
		SrcPort: 1024, DstPort: 80, Flags: TCPSyn, FrameLen: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 64 {
		t.Fatalf("frame len = %d", len(raw))
	}
	var s Stack
	if err := s.Decode(raw); err != nil {
		t.Fatal(err)
	}
	// FrameLen padding is *inside* the IP datagram in our builder (payload
	// pad), so it does appear as payload; craft explicit outer padding
	// instead: rebuild a 54-byte segment then append trailer bytes.
	raw2, _ := BuildTCP(TCPSpec{
		SrcIP: MustIPv4("1.1.0.1"), DstIP: MustIPv4("9.9.9.9"),
		SrcPort: 1024, DstPort: 80, Flags: TCPSyn,
	})
	raw2 = append(raw2, make([]byte, 10)...) // Ethernet trailer padding
	var s2 Stack
	if err := s2.Decode(raw2); err != nil {
		t.Fatal(err)
	}
	if s2.Has(LayerPayload) {
		t.Fatalf("trailer padding decoded as payload (len %d)", len(s2.Payload))
	}
}

func TestStackDecodeARP(t *testing.T) {
	raw, err := Serialize(
		&Ethernet{EtherType: EtherTypeARP},
		&ARP{Op: 1, SenderIP: MustIPv4("10.0.0.1"), TargetIP: MustIPv4("10.0.0.2")},
	)
	if err != nil {
		t.Fatal(err)
	}
	var s Stack
	if err := s.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !s.Has(LayerARP) || s.ARP.Op != 1 {
		t.Fatalf("arp decode: %v %+v", s.Decoded, s.ARP)
	}
}

func TestStackDecodeICMP(t *testing.T) {
	raw, err := Serialize(
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoICMP, Src: 1, Dst: 2},
		&ICMP{Type: 8, Ident: 1, Seq: 1},
		Payload([]byte("x")),
	)
	if err != nil {
		t.Fatal(err)
	}
	var s Stack
	if err := s.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !s.Has(LayerICMP) || s.ICMP.Type != 8 {
		t.Fatalf("icmp decode: %v", s.Decoded)
	}
}

func TestStackDecodeIPv6UDP(t *testing.T) {
	ip6 := &IPv6{NextHeader: IPProtoUDP, HopLimit: 64}
	raw, err := Serialize(
		&Ethernet{EtherType: EtherTypeIPv6},
		ip6,
		&UDP{SrcPort: 1, DstPort: 2},
		Payload([]byte("v6")),
	)
	if err != nil {
		t.Fatal(err)
	}
	var s Stack
	if err := s.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !s.Has(LayerIPv6) || !s.Has(LayerUDP) || !bytes.Equal(s.Payload, []byte("v6")) {
		t.Fatalf("ipv6 decode: %v payload=%q", s.Decoded, s.Payload)
	}
}

func TestStackDecodeUnknownEtherType(t *testing.T) {
	raw, err := Serialize(&Ethernet{EtherType: 0x88cc}, Payload([]byte("lldp-ish")))
	if err != nil {
		t.Fatal(err)
	}
	var s Stack
	if err := s.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !s.Has(LayerPayload) || s.Has(LayerIPv4) {
		t.Fatalf("decoded = %v", s.Decoded)
	}
}

func TestStackDecodeTruncated(t *testing.T) {
	raw, _ := BuildUDP(UDPSpec{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4})
	var s Stack
	if err := s.Decode(raw[:EthernetLen+10]); err == nil {
		t.Fatal("truncated IPv4 decoded without error")
	}
	if !s.Has(LayerEthernet) {
		t.Fatal("outer layer should still be decoded")
	}
}

func TestStackReuseNoStaleLayers(t *testing.T) {
	var s Stack
	udp, _ := BuildUDP(UDPSpec{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Payload: []byte("a")})
	if err := s.Decode(udp); err != nil {
		t.Fatal(err)
	}
	tcp, _ := BuildTCP(TCPSpec{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Flags: TCPAck})
	if err := s.Decode(tcp); err != nil {
		t.Fatal(err)
	}
	if s.Has(LayerUDP) || s.Has(LayerPayload) {
		t.Fatalf("stale layers after reuse: %v", s.Decoded)
	}
	if !s.Has(LayerTCP) {
		t.Fatal("tcp missing on reuse")
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{SrcIP: 1, DstIP: 2, Proto: IPProtoTCP, SrcPort: 10, DstPort: 20}
	r := k.Reverse()
	if r.SrcIP != 2 || r.DstIP != 1 || r.SrcPort != 20 || r.DstPort != 10 || r.Proto != IPProtoTCP {
		t.Fatalf("reverse: %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse is not identity")
	}
}

func TestFlowKeyBytesCanonical(t *testing.T) {
	k := FlowKey{SrcIP: 0x01020304, DstIP: 0x05060708, Proto: 6, SrcPort: 0x0a0b, DstPort: 0x0c0d}
	b := k.Bytes()
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 0x0a, 0x0b, 0x0c, 0x0d, 6}
	if !bytes.Equal(b[:], want) {
		t.Fatalf("Bytes() = %v, want %v", b, want)
	}
}

func TestFlowFromStackNonIP(t *testing.T) {
	raw, _ := Serialize(&Ethernet{EtherType: EtherTypeARP}, &ARP{Op: 1})
	var s Stack
	if err := s.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := FlowFromStack(&s); ok {
		t.Fatal("FlowFromStack returned ok for ARP")
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := NewSerializeBuffer()
	// Force several growth cycles with large prepends and appends.
	copy(b.PrependBytes(3000), bytes.Repeat([]byte{0xaa}, 3000))
	copy(b.AppendBytes(5000), bytes.Repeat([]byte{0xbb}, 5000))
	copy(b.PrependBytes(100), bytes.Repeat([]byte{0xcc}, 100))
	out := b.Bytes()
	if len(out) != 8100 {
		t.Fatalf("len = %d, want 8100", len(out))
	}
	if out[0] != 0xcc || out[100] != 0xaa || out[3100] != 0xbb {
		t.Fatal("content misplaced after growth")
	}
	b.Clear()
	if len(b.Bytes()) != 0 {
		t.Fatal("Clear left bytes behind")
	}
}
