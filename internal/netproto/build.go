package netproto

// This file holds packet builders used by template generation, DUT models
// and tests. Builders produce frames of an exact target size by padding the
// application payload, the way real testers craft fixed-size test packets.

// UDPSpec describes a UDP test packet to build.
type UDPSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IPv4Addr
	SrcPort, DstPort uint16
	TTL              uint8
	Payload          []byte
	// FrameLen, when non-zero, pads the payload so the final frame is
	// exactly this many bytes. Minimum is headers + payload.
	FrameLen int
	// VLAN, when true, inserts an 802.1Q tag with VlanID/VlanPCP.
	VLAN    bool
	VlanID  uint16
	VlanPCP uint8
}

// TCPSpec describes a TCP test packet to build.
type TCPSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IPv4Addr
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	TTL              uint8
	Payload          []byte
	FrameLen         int
	VLAN             bool
	VlanID           uint16
	VlanPCP          uint8
}

// MinUDPFrame is the smallest UDP-over-IPv4-over-Ethernet frame we build.
const MinUDPFrame = EthernetLen + IPv4MinLen + UDPLen

// MinTCPFrame is the smallest TCP-over-IPv4-over-Ethernet frame we build.
const MinTCPFrame = EthernetLen + IPv4MinLen + TCPMinLen

func padTo(payload []byte, have, want int) []byte {
	if want <= have+len(payload) {
		return payload
	}
	p := make([]byte, want-have)
	copy(p, payload)
	return p
}

// l2Layers builds the Ethernet (and optional 802.1Q) prefix.
func l2Layers(src, dst MAC, vlan bool, vid uint16, pcp uint8) []SerializableLayer {
	if !vlan {
		return []SerializableLayer{&Ethernet{Dst: dst, Src: src, EtherType: EtherTypeIPv4}}
	}
	return []SerializableLayer{
		&Ethernet{Dst: dst, Src: src, EtherType: EtherTypeVLAN},
		&Dot1Q{VID: vid, PCP: pcp, EtherType: EtherTypeIPv4},
	}
}

// BuildUDP assembles the frame described by spec.
func BuildUDP(spec UDPSpec) ([]byte, error) {
	ttl := spec.TTL
	if ttl == 0 {
		ttl = 64
	}
	minLen := MinUDPFrame
	if spec.VLAN {
		minLen += Dot1QLen
	}
	payload := padTo(spec.Payload, minLen, spec.FrameLen)
	layers := l2Layers(spec.SrcMAC, spec.DstMAC, spec.VLAN, spec.VlanID, spec.VlanPCP)
	layers = append(layers,
		&IPv4{TTL: ttl, Protocol: IPProtoUDP, Src: spec.SrcIP, Dst: spec.DstIP},
		&UDP{SrcPort: spec.SrcPort, DstPort: spec.DstPort, PseudoSrc: spec.SrcIP, PseudoDst: spec.DstIP},
		Payload(payload),
	)
	return Serialize(layers...)
}

// BuildTCP assembles the frame described by spec.
func BuildTCP(spec TCPSpec) ([]byte, error) {
	ttl := spec.TTL
	if ttl == 0 {
		ttl = 64
	}
	win := spec.Window
	if win == 0 {
		win = 65535
	}
	minLen := MinTCPFrame
	if spec.VLAN {
		minLen += Dot1QLen
	}
	payload := padTo(spec.Payload, minLen, spec.FrameLen)
	layers := l2Layers(spec.SrcMAC, spec.DstMAC, spec.VLAN, spec.VlanID, spec.VlanPCP)
	layers = append(layers,
		&IPv4{TTL: ttl, Protocol: IPProtoTCP, Src: spec.SrcIP, Dst: spec.DstIP},
		&TCP{
			SrcPort: spec.SrcPort, DstPort: spec.DstPort,
			Seq: spec.Seq, Ack: spec.Ack, Flags: spec.Flags, Window: win,
			PseudoSrc: spec.SrcIP, PseudoDst: spec.DstIP,
		},
		Payload(payload),
	)
	return Serialize(layers...)
}

// ICMPSpec describes an ICMP echo test packet to build.
type ICMPSpec struct {
	SrcMAC, DstMAC MAC
	SrcIP, DstIP   IPv4Addr
	Type, Code     uint8
	Ident, Seq     uint16
	TTL            uint8
	Payload        []byte
	FrameLen       int
}

// MinICMPFrame is the smallest ICMP-over-IPv4-over-Ethernet frame we build.
const MinICMPFrame = EthernetLen + IPv4MinLen + ICMPLen

// BuildICMP assembles the frame described by spec.
func BuildICMP(spec ICMPSpec) ([]byte, error) {
	ttl := spec.TTL
	if ttl == 0 {
		ttl = 64
	}
	payload := padTo(spec.Payload, MinICMPFrame, spec.FrameLen)
	return Serialize(
		&Ethernet{Dst: spec.DstMAC, Src: spec.SrcMAC, EtherType: EtherTypeIPv4},
		&IPv4{TTL: ttl, Protocol: IPProtoICMP, Src: spec.SrcIP, Dst: spec.DstIP},
		&ICMP{Type: spec.Type, Code: spec.Code, Ident: spec.Ident, Seq: spec.Seq},
		Payload(payload),
	)
}
