package netproto

import (
	"encoding/binary"
)

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// EthernetLen is the Ethernet II header size.
const EthernetLen = 14

// DecodeFrom parses the header and returns the bytes consumed.
func (e *Ethernet) DecodeFrom(data []byte) (int, error) {
	if len(data) < EthernetLen {
		return 0, ErrTooShort
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return EthernetLen, nil
}

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b *SerializeBuffer) error {
	h := b.PrependBytes(EthernetLen)
	copy(h[0:6], e.Dst[:])
	copy(h[6:12], e.Src[:])
	binary.BigEndian.PutUint16(h[12:14], e.EtherType)
	return nil
}

// Dot1Q is an IEEE 802.1Q VLAN tag.
type Dot1Q struct {
	PCP       uint8  // priority code point (3 bits)
	DEI       bool   // drop eligible indicator
	VID       uint16 // VLAN identifier (12 bits)
	EtherType uint16 // encapsulated EtherType
}

// Dot1QLen is the VLAN tag size (after the outer EtherType).
const Dot1QLen = 4

// DecodeFrom parses the tag and returns bytes consumed.
func (v *Dot1Q) DecodeFrom(data []byte) (int, error) {
	if len(data) < Dot1QLen {
		return 0, ErrTooShort
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	v.PCP = uint8(tci >> 13)
	v.DEI = tci&0x1000 != 0
	v.VID = tci & 0x0fff
	v.EtherType = binary.BigEndian.Uint16(data[2:4])
	return Dot1QLen, nil
}

// SerializeTo implements SerializableLayer.
func (v *Dot1Q) SerializeTo(b *SerializeBuffer) error {
	h := b.PrependBytes(Dot1QLen)
	tci := uint16(v.PCP&0x7)<<13 | v.VID&0x0fff
	if v.DEI {
		tci |= 0x1000
	}
	binary.BigEndian.PutUint16(h[0:2], tci)
	binary.BigEndian.PutUint16(h[2:4], v.EtherType)
	return nil
}

// IPv4 is an IPv4 header. Options are not modelled: IHL is always 5 on
// serialize; decode accepts and skips options.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      IPv4Addr
	Dst      IPv4Addr

	hdrLen int // set by DecodeFrom
}

// IPv4MinLen is the option-less IPv4 header size.
const IPv4MinLen = 20

// DecodeFrom parses the header (skipping options) and returns bytes consumed.
func (ip *IPv4) DecodeFrom(data []byte) (int, error) {
	if len(data) < IPv4MinLen {
		return 0, ErrTooShort
	}
	if data[0]>>4 != 4 {
		return 0, ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4MinLen || len(data) < ihl {
		return 0, ErrBadHdrLen
	}
	ip.TOS = data[1]
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = IPv4Addr(binary.BigEndian.Uint32(data[12:16]))
	ip.Dst = IPv4Addr(binary.BigEndian.Uint32(data[16:20]))
	ip.hdrLen = ihl
	return ihl, nil
}

// PayloadLen returns the L4 length implied by TotalLen, clamped to zero.
func (ip *IPv4) PayloadLen() int {
	n := int(ip.TotalLen) - ip.hdrLen
	if ip.hdrLen == 0 {
		n = int(ip.TotalLen) - IPv4MinLen
	}
	if n < 0 {
		return 0
	}
	return n
}

// SerializeTo implements SerializableLayer. TotalLen and Checksum are
// computed; caller-set values are ignored.
func (ip *IPv4) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	h := b.PrependBytes(IPv4MinLen)
	h[0] = 0x45
	h[1] = ip.TOS
	total := IPv4MinLen + payloadLen
	binary.BigEndian.PutUint16(h[2:4], uint16(total))
	binary.BigEndian.PutUint16(h[4:6], ip.ID)
	binary.BigEndian.PutUint16(h[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	h[8] = ip.TTL
	h[9] = ip.Protocol
	h[10], h[11] = 0, 0
	binary.BigEndian.PutUint32(h[12:16], uint32(ip.Src))
	binary.BigEndian.PutUint32(h[16:20], uint32(ip.Dst))
	binary.BigEndian.PutUint16(h[10:12], foldChecksum(checksum(0, h)))
	ip.TotalLen = uint16(total)
	ip.Checksum = binary.BigEndian.Uint16(h[10:12])
	ip.hdrLen = IPv4MinLen
	return nil
}

// VerifyChecksum recomputes the header checksum over raw header bytes.
func (ip *IPv4) VerifyChecksum(hdr []byte) bool {
	if len(hdr) < IPv4MinLen {
		return false
	}
	return foldChecksum(checksum(0, hdr[:IPv4MinLen])) == 0
}

// IPv6 extension-header protocol numbers the decoder walks, plus the
// "no next header" terminator.
const (
	IPProtoHopByHop     uint8 = 0
	IPProtoIPv6Routing  uint8 = 43
	IPProtoIPv6Fragment uint8 = 44
	IPProtoIPv6NoNext   uint8 = 59
	IPProtoIPv6DestOpts uint8 = 60
)

// IsIPv6Ext reports whether proto is an extension header the decoder can
// walk (hop-by-hop, routing, fragment, destination options). ESP/AH are not
// modelled: they terminate the walk like any other unknown protocol.
func IsIPv6Ext(proto uint8) bool {
	switch proto {
	case IPProtoHopByHop, IPProtoIPv6Routing, IPProtoIPv6Fragment, IPProtoIPv6DestOpts:
		return true
	}
	return false
}

// MaxIPv6ExtHeaders bounds the extension-chain walk. Real stacks see at most
// one of each kind (RFC 8200 §4.1); eight tolerates repeats without letting
// a crafted frame turn the decoder into a long loop.
const MaxIPv6ExtHeaders = 8

// IPv6ExtChain summarises a walked IPv6 extension-header chain. The chain's
// bytes stay in the frame (nothing is copied); the summary carries what the
// pipeline needs: where the chain ends, which upper-layer protocol follows,
// and fragmentation state.
type IPv6ExtChain struct {
	Count int   // extension headers walked
	Len   int   // total chain length in bytes
	Final uint8 // protocol number following the chain

	// Fragment header state (valid when Fragmented).
	Fragmented bool
	FragOffset uint16 // in 8-byte units; non-zero means no L4 header follows
	FragMore   bool
	FragID     uint32
}

// DecodeFrom walks an extension chain whose first header has protocol number
// first, returning the bytes consumed. It fails with ErrTooShort when a
// header's declared length runs past the buffer (lying HdrExtLen) and with
// ErrUnsupported when the chain exceeds MaxIPv6ExtHeaders.
func (c *IPv6ExtChain) DecodeFrom(first uint8, data []byte) (int, error) {
	*c = IPv6ExtChain{}
	next := first
	n := 0
	for IsIPv6Ext(next) {
		if c.Count >= MaxIPv6ExtHeaders {
			return n, ErrUnsupported
		}
		rest := data[n:]
		if next == IPProtoIPv6Fragment {
			// Fixed 8 bytes: next, reserved, offset/flags, identification.
			if len(rest) < 8 {
				return n, ErrTooShort
			}
			c.Fragmented = true
			c.FragOffset = binary.BigEndian.Uint16(rest[2:4]) >> 3
			c.FragMore = rest[3]&1 != 0
			c.FragID = binary.BigEndian.Uint32(rest[4:8])
			next = rest[0]
			n += 8
		} else {
			// Hop-by-hop, routing, destination options: next, HdrExtLen in
			// 8-byte units not counting the first 8 bytes.
			if len(rest) < 2 {
				return n, ErrTooShort
			}
			l := (int(rest[1]) + 1) * 8
			if len(rest) < l {
				return n, ErrTooShort
			}
			next = rest[0]
			n += l
		}
		c.Count++
	}
	c.Final = next
	c.Len = n
	return n, nil
}

// IPv6 is a fixed IPv6 header (no extension headers).
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   uint16
	NextHeader   uint8
	HopLimit     uint8
	Src          [16]byte
	Dst          [16]byte
}

// IPv6Len is the fixed IPv6 header size.
const IPv6Len = 40

// DecodeFrom parses the fixed header and returns bytes consumed.
func (ip *IPv6) DecodeFrom(data []byte) (int, error) {
	if len(data) < IPv6Len {
		return 0, ErrTooShort
	}
	if data[0]>>4 != 6 {
		return 0, ErrBadVersion
	}
	v := binary.BigEndian.Uint32(data[0:4])
	ip.TrafficClass = uint8(v >> 20)
	ip.FlowLabel = v & 0xfffff
	ip.PayloadLen = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	copy(ip.Src[:], data[8:24])
	copy(ip.Dst[:], data[24:40])
	return IPv6Len, nil
}

// SerializeTo implements SerializableLayer; PayloadLen is computed.
func (ip *IPv6) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	h := b.PrependBytes(IPv6Len)
	binary.BigEndian.PutUint32(h[0:4], 6<<28|uint32(ip.TrafficClass)<<20|ip.FlowLabel&0xfffff)
	binary.BigEndian.PutUint16(h[4:6], uint16(payloadLen))
	h[6] = ip.NextHeader
	h[7] = ip.HopLimit
	copy(h[8:24], ip.Src[:])
	copy(h[24:40], ip.Dst[:])
	ip.PayloadLen = uint16(payloadLen)
	return nil
}

// TCP is a TCP header without options (DataOffset fixed at 5 on serialize;
// decode accepts options and skips them).
type TCP struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8
	Window   uint16
	Checksum uint16
	Urgent   uint16

	// PseudoSrc/PseudoDst feed the checksum pseudo-header on serialize;
	// set them from the enclosing IPv4 layer before serializing.
	PseudoSrc IPv4Addr
	PseudoDst IPv4Addr

	hdrLen int
}

// TCPMinLen is the option-less TCP header size.
const TCPMinLen = 20

// DecodeFrom parses the header (skipping options) and returns bytes consumed.
func (t *TCP) DecodeFrom(data []byte) (int, error) {
	if len(data) < TCPMinLen {
		return 0, ErrTooShort
	}
	off := int(data[12]>>4) * 4
	if off < TCPMinLen || len(data) < off {
		return 0, ErrBadHdrLen
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.hdrLen = off
	return off, nil
}

// SerializeTo implements SerializableLayer; Checksum is computed using the
// pseudo-header fields.
func (t *TCP) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	h := b.PrependBytes(TCPMinLen)
	binary.BigEndian.PutUint16(h[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], t.DstPort)
	binary.BigEndian.PutUint32(h[4:8], t.Seq)
	binary.BigEndian.PutUint32(h[8:12], t.Ack)
	h[12] = 5 << 4
	h[13] = t.Flags & 0x3f
	binary.BigEndian.PutUint16(h[14:16], t.Window)
	h[16], h[17] = 0, 0
	binary.BigEndian.PutUint16(h[18:20], t.Urgent)
	seg := b.Bytes() // header + payload
	sum := pseudoHeaderSum(uint32(t.PseudoSrc), uint32(t.PseudoDst), IPProtoTCP, TCPMinLen+payloadLen)
	binary.BigEndian.PutUint16(h[16:18], foldChecksum(checksum(sum, seg[:TCPMinLen+payloadLen])))
	t.Checksum = binary.BigEndian.Uint16(h[16:18])
	t.hdrLen = TCPMinLen
	return nil
}

// UDP is a UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16

	PseudoSrc IPv4Addr
	PseudoDst IPv4Addr
}

// UDPLen is the UDP header size.
const UDPLen = 8

// DecodeFrom parses the header and returns bytes consumed.
func (u *UDP) DecodeFrom(data []byte) (int, error) {
	if len(data) < UDPLen {
		return 0, ErrTooShort
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	return UDPLen, nil
}

// SerializeTo implements SerializableLayer; Length and Checksum are computed.
func (u *UDP) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	h := b.PrependBytes(UDPLen)
	binary.BigEndian.PutUint16(h[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], u.DstPort)
	length := UDPLen + payloadLen
	binary.BigEndian.PutUint16(h[4:6], uint16(length))
	h[6], h[7] = 0, 0
	seg := b.Bytes()
	sum := pseudoHeaderSum(uint32(u.PseudoSrc), uint32(u.PseudoDst), IPProtoUDP, length)
	cs := foldChecksum(checksum(sum, seg[:length]))
	if cs == 0 {
		cs = 0xffff // RFC 768: transmitted zero checksum means "none"
	}
	binary.BigEndian.PutUint16(h[6:8], cs)
	u.Length = uint16(length)
	u.Checksum = cs
	return nil
}

// ICMP is an ICMPv4 header (echo-style: ident/seq in RestOfHeader).
type ICMP struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	Ident    uint16
	Seq      uint16
}

// ICMPLen is the echo-style ICMP header size.
const ICMPLen = 8

// DecodeFrom parses the header and returns bytes consumed.
func (ic *ICMP) DecodeFrom(data []byte) (int, error) {
	if len(data) < ICMPLen {
		return 0, ErrTooShort
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.Ident = binary.BigEndian.Uint16(data[4:6])
	ic.Seq = binary.BigEndian.Uint16(data[6:8])
	return ICMPLen, nil
}

// SerializeTo implements SerializableLayer; Checksum is computed.
func (ic *ICMP) SerializeTo(b *SerializeBuffer) error {
	h := b.PrependBytes(ICMPLen)
	h[0] = ic.Type
	h[1] = ic.Code
	h[2], h[3] = 0, 0
	binary.BigEndian.PutUint16(h[4:6], ic.Ident)
	binary.BigEndian.PutUint16(h[6:8], ic.Seq)
	binary.BigEndian.PutUint16(h[2:4], foldChecksum(checksum(0, b.Bytes())))
	ic.Checksum = binary.BigEndian.Uint16(h[2:4])
	return nil
}

// ARP is an Ethernet/IPv4 ARP message.
type ARP struct {
	Op        uint16 // 1 request, 2 reply
	SenderMAC MAC
	SenderIP  IPv4Addr
	TargetMAC MAC
	TargetIP  IPv4Addr
}

// ARPLen is the Ethernet/IPv4 ARP message size.
const ARPLen = 28

// DecodeFrom parses the message and returns bytes consumed.
func (a *ARP) DecodeFrom(data []byte) (int, error) {
	if len(data) < ARPLen {
		return 0, ErrTooShort
	}
	if binary.BigEndian.Uint16(data[0:2]) != 1 || binary.BigEndian.Uint16(data[2:4]) != EtherTypeIPv4 {
		return 0, ErrUnsupported
	}
	a.Op = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	a.SenderIP = IPv4Addr(binary.BigEndian.Uint32(data[14:18]))
	copy(a.TargetMAC[:], data[18:24])
	a.TargetIP = IPv4Addr(binary.BigEndian.Uint32(data[24:28]))
	return ARPLen, nil
}

// SerializeTo implements SerializableLayer.
func (a *ARP) SerializeTo(b *SerializeBuffer) error {
	h := b.PrependBytes(ARPLen)
	binary.BigEndian.PutUint16(h[0:2], 1)
	binary.BigEndian.PutUint16(h[2:4], EtherTypeIPv4)
	h[4], h[5] = 6, 4
	binary.BigEndian.PutUint16(h[6:8], a.Op)
	copy(h[8:14], a.SenderMAC[:])
	binary.BigEndian.PutUint32(h[14:18], uint32(a.SenderIP))
	copy(h[18:24], a.TargetMAC[:])
	binary.BigEndian.PutUint32(h[24:28], uint32(a.TargetIP))
	return nil
}
