package netproto

import (
	"encoding/binary"
	"fmt"
)

// FlowKey is the classic 5-tuple. It is a comparable value type, usable
// directly as a map key and hashable into pipeline digests.
type FlowKey struct {
	SrcIP   IPv4Addr
	DstIP   IPv4Addr
	Proto   uint8
	SrcPort uint16
	DstPort uint16
}

// FlowFromStack extracts the 5-tuple from a decoded stack. It returns false
// when the packet has no IPv4 layer.
func FlowFromStack(s *Stack) (FlowKey, bool) {
	if !s.Has(LayerIPv4) {
		return FlowKey{}, false
	}
	k := FlowKey{SrcIP: s.IP4.Src, DstIP: s.IP4.Dst, Proto: s.IP4.Protocol}
	switch {
	case s.Has(LayerTCP):
		k.SrcPort, k.DstPort = s.TCP.SrcPort, s.TCP.DstPort
	case s.Has(LayerUDP):
		k.SrcPort, k.DstPort = s.UDP.SrcPort, s.UDP.DstPort
	}
	return k, true
}

// Reverse returns the key with endpoints swapped (the response direction).
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{
		SrcIP: k.DstIP, DstIP: k.SrcIP, Proto: k.Proto,
		SrcPort: k.DstPort, DstPort: k.SrcPort,
	}
}

// Bytes serializes the key into a fixed 13-byte canonical form used as hash
// input by the pipeline (SrcIP, DstIP, SrcPort, DstPort, Proto, big-endian).
func (k FlowKey) Bytes() [13]byte {
	var b [13]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(k.SrcIP))
	binary.BigEndian.PutUint32(b[4:8], uint32(k.DstIP))
	binary.BigEndian.PutUint16(b[8:10], k.SrcPort)
	binary.BigEndian.PutUint16(b[10:12], k.DstPort)
	b[12] = k.Proto
	return b
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%v:%d>%v:%d/%d", k.SrcIP, k.SrcPort, k.DstIP, k.DstPort, k.Proto)
}
