package netproto

// LayerType identifies a decoded layer in a Stack.
type LayerType uint8

// Layer types produced by Stack.Decode.
const (
	LayerNone LayerType = iota
	LayerEthernet
	LayerVLAN
	LayerARP
	LayerIPv4
	LayerIPv6
	LayerICMP
	LayerTCP
	LayerUDP
	LayerPayload
	LayerIPv6Ext
)

func (t LayerType) String() string {
	switch t {
	case LayerEthernet:
		return "ethernet"
	case LayerVLAN:
		return "vlan"
	case LayerARP:
		return "arp"
	case LayerIPv4:
		return "ipv4"
	case LayerIPv6:
		return "ipv6"
	case LayerICMP:
		return "icmp"
	case LayerTCP:
		return "tcp"
	case LayerUDP:
		return "udp"
	case LayerPayload:
		return "payload"
	case LayerIPv6Ext:
		return "ipv6ext"
	}
	return "none"
}

// Stack is a preallocated set of decoding layers in the style of gopacket's
// DecodingLayerParser: Decode fills the embedded layer structs in place and
// records which layers were found, allocating nothing per packet. A Stack is
// owned by a single goroutine.
type Stack struct {
	Eth     Ethernet
	VLAN    Dot1Q
	ARP     ARP
	IP4     IPv4
	IP6     IPv6
	IP6Ext  IPv6ExtChain
	ICMP    ICMP
	TCP     TCP
	UDP     UDP
	Payload []byte // window into the decoded packet; not a copy

	Decoded []LayerType

	// PayloadOffset is the byte offset of Payload within the frame, or -1.
	PayloadOffset int
}

// Decode parses data starting at the Ethernet header. It stops (without
// error) at the first layer it has no decoder for; decoding errors from
// malformed inner layers are returned alongside the layers already decoded.
func (s *Stack) Decode(data []byte) error {
	s.Decoded = s.Decoded[:0]
	s.Payload = nil
	s.PayloadOffset = -1

	n, err := s.Eth.DecodeFrom(data)
	if err != nil {
		return err
	}
	s.Decoded = append(s.Decoded, LayerEthernet)
	rest := data[n:]
	off := n

	etherType := s.Eth.EtherType
	if etherType == EtherTypeVLAN {
		vn, err := s.VLAN.DecodeFrom(rest)
		if err != nil {
			return err
		}
		s.Decoded = append(s.Decoded, LayerVLAN)
		rest = rest[vn:]
		off += vn
		etherType = s.VLAN.EtherType
	}

	switch etherType {
	case EtherTypeARP:
		if _, err := s.ARP.DecodeFrom(rest); err != nil {
			return err
		}
		s.Decoded = append(s.Decoded, LayerARP)
		return nil
	case EtherTypeIPv4:
		n, err := s.IP4.DecodeFrom(rest)
		if err != nil {
			return err
		}
		s.Decoded = append(s.Decoded, LayerIPv4)
		// Honour TotalLen so Ethernet padding is not mistaken for payload.
		l4len := s.IP4.PayloadLen()
		if l4len > len(rest)-n {
			l4len = len(rest) - n
		}
		rest = rest[n : n+l4len]
		off += n
		return s.decodeL4(s.IP4.Protocol, rest, off)
	case EtherTypeIPv6:
		n, err := s.IP6.DecodeFrom(rest)
		if err != nil {
			return err
		}
		s.Decoded = append(s.Decoded, LayerIPv6)
		l4len := int(s.IP6.PayloadLen)
		if l4len > len(rest)-n {
			l4len = len(rest) - n
		}
		rest = rest[n : n+l4len]
		off += n
		next := s.IP6.NextHeader
		if IsIPv6Ext(next) {
			// Walk the extension chain (hop-by-hop, routing, fragment,
			// destination options) so the TCP/UDP segment behind it is
			// classified like any other; the chain's bytes stay in place
			// and IP6Ext carries the summary. Bounded walk, and a header
			// whose declared length runs past the buffer errors out.
			en, err := s.IP6Ext.DecodeFrom(next, rest)
			if err != nil {
				return err
			}
			s.Decoded = append(s.Decoded, LayerIPv6Ext)
			rest = rest[en:]
			off += en
			next = s.IP6Ext.Final
			if s.IP6Ext.FragOffset != 0 {
				// Non-first fragment: the bytes after the chain are a
				// mid-stream slice of the original datagram, not an L4
				// header.
				s.setPayload(rest, off)
				return nil
			}
		}
		return s.decodeL4(next, rest, off)
	}
	// Unknown EtherType: remaining bytes are opaque payload.
	s.setPayload(rest, off)
	return nil
}

func (s *Stack) decodeL4(proto uint8, rest []byte, off int) error {
	switch proto {
	case IPProtoTCP:
		n, err := s.TCP.DecodeFrom(rest)
		if err != nil {
			return err
		}
		s.Decoded = append(s.Decoded, LayerTCP)
		s.setPayload(rest[n:], off+n)
	case IPProtoUDP:
		n, err := s.UDP.DecodeFrom(rest)
		if err != nil {
			return err
		}
		s.Decoded = append(s.Decoded, LayerUDP)
		s.setPayload(rest[n:], off+n)
	case IPProtoICMP:
		n, err := s.ICMP.DecodeFrom(rest)
		if err != nil {
			return err
		}
		s.Decoded = append(s.Decoded, LayerICMP)
		s.setPayload(rest[n:], off+n)
	default:
		s.setPayload(rest, off)
	}
	return nil
}

func (s *Stack) setPayload(p []byte, off int) {
	if len(p) == 0 {
		return
	}
	s.Payload = p
	s.PayloadOffset = off
	s.Decoded = append(s.Decoded, LayerPayload)
}

// Has reports whether layer t was decoded by the last Decode call.
func (s *Stack) Has(t LayerType) bool {
	for _, d := range s.Decoded {
		if d == t {
			return true
		}
	}
	return false
}
