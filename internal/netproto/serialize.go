package netproto

// SerializeBuffer builds packets back to front: each layer prepends its
// header bytes in front of whatever is already in the buffer (which it treats
// as its payload), mirroring gopacket's SerializeBuffer contract. This lets
// inner layers (payload, L4) be written first so outer layers can compute
// lengths and checksums over them.
type SerializeBuffer struct {
	store      []byte // backing storage; contents live in store[start:end]
	start, end int
}

// NewSerializeBuffer returns a buffer with room for a typical frame.
func NewSerializeBuffer() *SerializeBuffer {
	s := &SerializeBuffer{store: make([]byte, 2048)}
	s.Clear()
	return s
}

// Clear empties the buffer, retaining storage. New content is positioned so
// prepends (the common direction) have most of the room.
func (s *SerializeBuffer) Clear() {
	s.start = len(s.store) * 3 / 4
	s.end = s.start
}

// Bytes returns the assembled packet. The slice is valid until the next
// mutation of the buffer.
func (s *SerializeBuffer) Bytes() []byte { return s.store[s.start:s.end] }

// Len reports the current content length.
func (s *SerializeBuffer) Len() int { return s.end - s.start }

// grow reallocates storage with at least front free bytes before the content
// and back free bytes after it.
func (s *SerializeBuffer) grow(front, back int) {
	contentLen := s.end - s.start
	newCap := 2 * len(s.store)
	for newCap < front+contentLen+back {
		newCap *= 2
	}
	store := make([]byte, newCap)
	newStart := front + (newCap-front-contentLen-back)/2
	copy(store[newStart:], s.store[s.start:s.end])
	s.store = store
	s.start = newStart
	s.end = newStart + contentLen
}

// PrependBytes makes room for n bytes in front of the current contents and
// returns that region for the caller to fill.
func (s *SerializeBuffer) PrependBytes(n int) []byte {
	if n > s.start {
		s.grow(n, 0)
	}
	s.start -= n
	return s.store[s.start : s.start+n]
}

// AppendBytes extends the packet at the tail by n bytes and returns the new
// region. Used for payloads written before headers.
func (s *SerializeBuffer) AppendBytes(n int) []byte {
	if s.end+n > len(s.store) {
		s.grow(0, n)
	}
	s.end += n
	return s.store[s.end-n : s.end]
}

// SerializableLayer is any layer that can prepend itself onto a buffer. The
// buffer's current contents are the layer's payload.
type SerializableLayer interface {
	SerializeTo(b *SerializeBuffer) error
}

// Serialize assembles layers outermost-first (Ethernet, IPv4, TCP, Payload)
// by writing them to the buffer in reverse order, and returns the packet
// bytes as a fresh slice.
func Serialize(layers ...SerializableLayer) ([]byte, error) {
	b := NewSerializeBuffer()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return nil, err
		}
	}
	out := make([]byte, len(b.Bytes()))
	copy(out, b.Bytes())
	return out, nil
}

// Payload is a raw application-layer blob.
type Payload []byte

// SerializeTo implements SerializableLayer.
func (p Payload) SerializeTo(b *SerializeBuffer) error {
	dst := b.PrependBytes(len(p))
	copy(dst, p)
	return nil
}

// Pad is zero padding of a fixed size, used to reach minimum frame lengths.
type Pad int

// SerializeTo implements SerializableLayer.
func (p Pad) SerializeTo(b *SerializeBuffer) error {
	dst := b.PrependBytes(int(p))
	for i := range dst {
		dst[i] = 0
	}
	return nil
}
