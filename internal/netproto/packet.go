// Package netproto implements the packet model used throughout the
// reproduction: wire-format codecs for Ethernet, ARP, IPv4, IPv6, ICMP, TCP
// and UDP, a prepend-style serialization buffer, and preallocated decoding
// layers in the style of gopacket's DecodingLayerParser (decode into caller-
// owned structs, no per-packet allocation on the hot path).
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Packet is a wire packet travelling through the simulation. Data holds the
// full frame starting at the Ethernet header, excluding preamble and FCS.
type Packet struct {
	Data []byte

	// Meta carries simulation-side context that a real wire does not:
	// the ingress timestamp assigned by a MAC, the template ID for
	// HyperTester template packets, and a monotonically growing unique ID
	// for tracing. None of these fields exist on the wire.
	Meta Meta

	// buf is the pooled frame storage a NewPacket/Clone-built packet
	// carries through its pool lifetime; Data aliases it for frames up to
	// FrameBufSize bytes. Nil for packets built around caller-owned
	// storage (&Packet{Data: raw}).
	buf *[FrameBufSize]byte
}

// FrameBufSize is the pooled frame-buffer capacity. It covers standard
// 1500-byte MTU frames plus the simulation's internal headroom; jumbo frames
// fall back to exact-size heap allocation.
const FrameBufSize = 2048

// packetPool recycles Packet structs together with their frame buffers.
// Release is strictly opt-in: a packet whose owner never releases it is
// simply collected by the GC, so forgetting Release is safe (slower), while
// releasing a packet someone else still references is a bug (see the
// pooling invariants in DESIGN.md).
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// NewPacket returns a pooled packet whose Data has length n. The frame bytes
// are NOT zeroed: callers are expected to overwrite the full frame (as Clone
// and the serializers do).
func NewPacket(n int) *Packet {
	p := packetPool.Get().(*Packet)
	if n <= FrameBufSize {
		if p.buf == nil {
			p.buf = new([FrameBufSize]byte)
		}
		p.Data = p.buf[:n]
	} else {
		p.Data = make([]byte, n)
	}
	return p
}

// Release returns the packet (and its pooled frame buffer) to the packet
// pool. After Release the caller must not touch the packet again: its Data
// is gone and the struct will be handed to an unrelated future NewPacket or
// Clone call. Only the packet's exclusive owner may release it — never a
// packet somebody else may still hold (a delivered frame, a retained
// capture). Releasing a caller-built &Packet{Data: raw} is allowed; the raw
// storage stays with its creator.
func (p *Packet) Release() {
	if p == nil {
		return
	}
	p.Data = nil
	p.Meta = Meta{}
	packetPool.Put(p)
}

// Meta is simulation-side packet context. It is copied, never shared, when a
// packet is replicated.
type Meta struct {
	// UID uniquely identifies the packet instance for tracing.
	UID uint64
	// TemplateID marks HyperTester template packets (0 = not a template;
	// templates use 1-based IDs).
	TemplateID int
	// IngressPs is the MAC ingress timestamp in virtual picoseconds.
	IngressPs int64
	// EgressPs is the MAC egress timestamp in virtual picoseconds.
	EgressPs int64
	// InPort is the switch port the packet arrived on.
	InPort int
	// Replica marks packets produced by the multicast engine.
	Replica bool
	// ReplicaID is the multicast replication ID (rid) of this copy.
	ReplicaID int
	// SeqID is the replication sequence number HTPS stamps at fire time
	// (the editor's per-template packet ID).
	SeqID uint64
	// Record carries a stateless-connection trigger record from HTPR to
	// the editor (PHV metadata in hardware terms).
	Record []uint64
}

// Len returns the frame length in bytes (without preamble/IFG/FCS).
func (p *Packet) Len() int { return len(p.Data) }

// Clone deep-copies the packet, sharing nothing with the original. The copy
// lives in pooled storage: multicast replication clones every template
// arrival, and without recycling those buffers the replication hot loop
// would be GC-bound. The clone's owner may hand it back with Release.
func (p *Packet) Clone() *Packet {
	c := NewPacket(len(p.Data))
	copy(c.Data, p.Data)
	c.Meta = p.Meta
	if p.Meta.Record != nil {
		c.Meta.Record = append([]uint64(nil), p.Meta.Record...)
	}
	return c
}

// WireOverheadBytes is the per-frame on-the-wire overhead beyond the frame
// bytes themselves. The paper reports a 6.4 ns minimum inter-arrival for
// 64-byte packets at 100 Gbps (§5.1); 6.4 ns * 100 Gbps = 80 bytes, i.e.
// 16 bytes of overhead per 64-byte frame. We adopt that calibration.
const WireOverheadBytes = 16

// WireTimeNs returns the time in nanoseconds a frame of frameLen bytes
// occupies a link of rate gbps (including calibrated overhead).
func WireTimeNs(frameLen int, gbps float64) float64 {
	return float64(frameLen+WireOverheadBytes) * 8 / gbps
}

// Common errors returned by decoders.
var (
	ErrTooShort    = errors.New("netproto: buffer too short")
	ErrBadVersion  = errors.New("netproto: bad IP version")
	ErrBadHdrLen   = errors.New("netproto: bad header length")
	ErrUnsupported = errors.New("netproto: unsupported layer")
)

// EtherType values understood by the decoder.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeIPv6 uint16 = 0x86DD
	EtherTypeVLAN uint16 = 0x8100
)

// IP protocol numbers understood by the decoder.
const (
	IPProtoICMP uint8 = 1
	IPProtoTCP  uint8 = 6
	IPProtoUDP  uint8 = 17
)

// TCP flag bits.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
	TCPUrg uint8 = 1 << 5
)

// FlagName renders TCP flags the way the paper writes them (SYN+ACK).
func FlagName(f uint8) string {
	names := []struct {
		bit  uint8
		name string
	}{
		{TCPSyn, "SYN"}, {TCPAck, "ACK"}, {TCPFin, "FIN"},
		{TCPRst, "RST"}, {TCPPsh, "PSH"}, {TCPUrg, "URG"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "+"
			}
			out += n.name
		}
	}
	if out == "" {
		out = "NONE"
	}
	return out
}

// checksum computes the ones-complement sum used by IPv4/TCP/UDP/ICMP.
func checksum(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

func foldChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the IPv4 pseudo-header contribution for TCP/UDP
// checksums.
func pseudoHeaderSum(src, dst uint32, proto uint8, length int) uint32 {
	var sum uint32
	sum += src >> 16
	sum += src & 0xffff
	sum += dst >> 16
	sum += dst & 0xffff
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// IPv4Addr is a 32-bit IPv4 address in host-order uint32 form, the natural
// representation for match-action pipelines.
type IPv4Addr uint32

// ParseIPv4 parses dotted-quad notation.
func ParseIPv4(s string) (IPv4Addr, error) {
	var a, b, c, d int
	if n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); n != 4 || err != nil {
		return 0, fmt.Errorf("netproto: bad IPv4 address %q", s)
	}
	for _, v := range []int{a, b, c, d} {
		if v < 0 || v > 255 {
			return 0, fmt.Errorf("netproto: bad IPv4 address %q", s)
		}
	}
	return IPv4Addr(a<<24 | b<<16 | c<<8 | d), nil
}

// MustIPv4 is ParseIPv4 that panics on error, for constants in tests and
// examples.
func MustIPv4(s string) IPv4Addr {
	a, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return a
}

func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MACFromUint64 builds a MAC from the low 48 bits of v, handy for
// synthesizing distinct addresses in workloads.
func MACFromUint64(v uint64) MAC {
	var m MAC
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}
