package netproto

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestParseIPv4(t *testing.T) {
	cases := []struct {
		in   string
		want IPv4Addr
		ok   bool
	}{
		{"1.2.3.4", 0x01020304, true},
		{"255.255.255.255", 0xffffffff, true},
		{"0.0.0.0", 0, true},
		{"10.0.0.1", 0x0a000001, true},
		{"256.1.1.1", 0, false},
		{"1.2.3", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseIPv4(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseIPv4(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseIPv4(%q) succeeded, want error", c.in)
		}
	}
}

func TestIPv4AddrString(t *testing.T) {
	if got := MustIPv4("192.168.1.200").String(); got != "192.168.1.200" {
		t.Fatalf("String() = %q", got)
	}
}

func TestMACFromUint64(t *testing.T) {
	m := MACFromUint64(0x0000112233445566)
	want := MAC{0x11, 0x22, 0x33, 0x44, 0x55, 0x66}
	if m != want {
		t.Fatalf("MACFromUint64 = %v, want %v", m, want)
	}
	if m.String() != "11:22:33:44:55:66" {
		t.Fatalf("MAC.String() = %q", m.String())
	}
}

func TestFlagName(t *testing.T) {
	cases := map[uint8]string{
		TCPSyn:          "SYN",
		TCPSyn | TCPAck: "SYN+ACK",
		TCPFin | TCPAck: "ACK+FIN",
		0:               "NONE",
	}
	for f, want := range cases {
		if got := FlagName(f); got != want {
			t.Errorf("FlagName(%#x) = %q, want %q", f, got, want)
		}
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	in := Ethernet{Dst: MACFromUint64(1), Src: MACFromUint64(2), EtherType: EtherTypeIPv4}
	b := NewSerializeBuffer()
	if err := in.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	var out Ethernet
	n, err := out.DecodeFrom(b.Bytes())
	if err != nil || n != EthernetLen {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	in := IPv4{TOS: 7, ID: 0x1234, TTL: 63, Protocol: IPProtoUDP,
		Src: MustIPv4("10.0.0.1"), Dst: MustIPv4("10.0.0.2")}
	b := NewSerializeBuffer()
	copy(b.PrependBytes(10), []byte("payload890")) // payload to count in TotalLen
	if err := in.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	raw := b.Bytes()
	var out IPv4
	n, err := out.DecodeFrom(raw)
	if err != nil || n != IPv4MinLen {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if out.TotalLen != 30 {
		t.Fatalf("TotalLen = %d, want 30", out.TotalLen)
	}
	if out.Src != in.Src || out.Dst != in.Dst || out.TTL != 63 || out.Protocol != IPProtoUDP {
		t.Fatalf("field mismatch: %+v", out)
	}
	if !out.VerifyChecksum(raw) {
		t.Fatal("checksum does not verify")
	}
	raw[8]-- // corrupt TTL
	if out.VerifyChecksum(raw) {
		t.Fatal("checksum verified after corruption")
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var ip IPv4
	if _, err := ip.DecodeFrom(make([]byte, 10)); err != ErrTooShort {
		t.Fatalf("short buffer: err = %v", err)
	}
	bad := make([]byte, 20)
	bad[0] = 0x60 // version 6
	if _, err := ip.DecodeFrom(bad); err != ErrBadVersion {
		t.Fatalf("bad version: err = %v", err)
	}
	bad[0] = 0x43 // version 4, IHL 3 (<5)
	if _, err := ip.DecodeFrom(bad); err != ErrBadHdrLen {
		t.Fatalf("bad IHL: err = %v", err)
	}
}

func TestTCPChecksumMatchesReference(t *testing.T) {
	// Serialize a TCP segment and verify the checksum with an independent
	// full recomputation (pseudo-header + header-with-zero-cksum + payload).
	src, dst := MustIPv4("1.1.1.1"), MustIPv4("2.2.2.2")
	tc := &TCP{SrcPort: 4096, DstPort: 80, Seq: 100, Ack: 7, Flags: TCPSyn | TCPAck,
		Window: 1024, PseudoSrc: src, PseudoDst: dst}
	payload := []byte("GET index.html")
	raw, err := Serialize(tc, Payload(payload))
	if err != nil {
		t.Fatal(err)
	}
	seg := make([]byte, len(raw))
	copy(seg, raw)
	seg[16], seg[17] = 0, 0
	sum := pseudoHeaderSum(uint32(src), uint32(dst), IPProtoTCP, len(seg))
	want := foldChecksum(checksum(sum, seg))
	got := binary.BigEndian.Uint16(raw[16:18])
	if got != want {
		t.Fatalf("checksum = %#x, want %#x", got, want)
	}
	// And the standard verification property: summing over the segment
	// including the transmitted checksum folds to zero.
	if foldChecksum(checksum(sum, raw)) != 0 {
		t.Fatal("segment checksum does not verify")
	}
}

func TestUDPZeroChecksumAvoided(t *testing.T) {
	// Craft a payload; whatever the fold yields, serialized checksum must
	// never be zero (RFC 768 reserves zero for "no checksum").
	raw, err := BuildUDP(UDPSpec{
		SrcIP: MustIPv4("1.1.1.1"), DstIP: MustIPv4("2.2.2.2"),
		SrcPort: 1, DstPort: 1, FrameLen: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	off := EthernetLen + IPv4MinLen
	if binary.BigEndian.Uint16(raw[off+6:off+8]) == 0 {
		t.Fatal("UDP checksum serialized as zero")
	}
}

func TestTCPOptionsSkipped(t *testing.T) {
	// Hand-craft a TCP header with 4 bytes of options (data offset 6).
	h := make([]byte, 24+3)
	binary.BigEndian.PutUint16(h[0:2], 1000)
	binary.BigEndian.PutUint16(h[2:4], 2000)
	h[12] = 6 << 4
	h[13] = TCPAck
	copy(h[24:], "abc")
	var tc TCP
	n, err := tc.DecodeFrom(h)
	if err != nil {
		t.Fatal(err)
	}
	if n != 24 {
		t.Fatalf("consumed %d, want 24", n)
	}
	if tc.SrcPort != 1000 || tc.DstPort != 2000 || tc.Flags != TCPAck {
		t.Fatalf("fields: %+v", tc)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	in := ICMP{Type: 8, Code: 0, Ident: 77, Seq: 3}
	raw, err := Serialize(&in, Payload([]byte("ping")))
	if err != nil {
		t.Fatal(err)
	}
	var out ICMP
	if _, err := out.DecodeFrom(raw); err != nil {
		t.Fatal(err)
	}
	if out.Type != 8 || out.Ident != 77 || out.Seq != 3 {
		t.Fatalf("fields: %+v", out)
	}
	if foldChecksum(checksum(0, raw)) != 0 {
		t.Fatal("ICMP checksum does not verify")
	}
}

func TestARPRoundTrip(t *testing.T) {
	in := ARP{Op: 2, SenderMAC: MACFromUint64(5), SenderIP: MustIPv4("10.1.1.1"),
		TargetMAC: MACFromUint64(9), TargetIP: MustIPv4("10.1.1.2")}
	raw, err := Serialize(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out ARP
	if _, err := out.DecodeFrom(raw); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	in := IPv6{TrafficClass: 3, FlowLabel: 0xabcde, NextHeader: IPProtoUDP, HopLimit: 64}
	in.Src[15], in.Dst[15] = 1, 2
	b := NewSerializeBuffer()
	copy(b.PrependBytes(4), "data")
	if err := in.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	var out IPv6
	n, err := out.DecodeFrom(b.Bytes())
	if err != nil || n != IPv6Len {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if out.TrafficClass != 3 || out.FlowLabel != 0xabcde || out.PayloadLen != 4 ||
		out.NextHeader != IPProtoUDP || out.Src != in.Src || out.Dst != in.Dst {
		t.Fatalf("fields: %+v", out)
	}
}

// Property: BuildUDP always produces exactly the requested frame size (when
// above the minimum) and decodes back to the same 5-tuple.
func TestBuildUDPProperty(t *testing.T) {
	f := func(srcIP, dstIP uint32, sport, dport uint16, szRaw uint16) bool {
		size := MinUDPFrame + int(szRaw)%1400
		raw, err := BuildUDP(UDPSpec{
			SrcIP: IPv4Addr(srcIP), DstIP: IPv4Addr(dstIP),
			SrcPort: sport, DstPort: dport, FrameLen: size,
		})
		if err != nil || len(raw) != size {
			return false
		}
		var s Stack
		if err := s.Decode(raw); err != nil {
			return false
		}
		k, ok := FlowFromStack(&s)
		return ok && k.SrcIP == IPv4Addr(srcIP) && k.DstIP == IPv4Addr(dstIP) &&
			k.SrcPort == sport && k.DstPort == dport && k.Proto == IPProtoUDP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: TCP round trip preserves all header fields.
func TestTCPRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16) bool {
		in := TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags & 0x3f, Window: win,
			PseudoSrc: 1, PseudoDst: 2}
		raw, err := Serialize(&in)
		if err != nil {
			return false
		}
		var out TCP
		if _, err := out.DecodeFrom(raw); err != nil {
			return false
		}
		return out.SrcPort == sp && out.DstPort == dp && out.Seq == seq &&
			out.Ack == ack && out.Flags == flags&0x3f && out.Window == win
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Data: []byte{1, 2, 3}, Meta: Meta{UID: 9, TemplateID: 2}}
	c := p.Clone()
	c.Data[0] = 99
	c.Meta.UID = 10
	if p.Data[0] != 1 || p.Meta.UID != 9 {
		t.Fatal("Clone shares state with original")
	}
	if !bytes.Equal(c.Data, []byte{99, 2, 3}) || c.Meta.TemplateID != 2 {
		t.Fatal("Clone did not copy contents")
	}
}

func TestWireTimeCalibration(t *testing.T) {
	// The paper's calibration point: 64-byte packets at 100 Gbps arrive
	// no faster than every 6.4 ns (§5.1).
	if got := WireTimeNs(64, 100); got != 6.4 {
		t.Fatalf("WireTimeNs(64,100) = %v, want 6.4", got)
	}
	// Sanity: a 1500-byte frame at 10 Gbps takes ~1.21 us.
	got := WireTimeNs(1500, 10)
	if got < 1200 || got > 1220 {
		t.Fatalf("WireTimeNs(1500,10) = %v, out of range", got)
	}
}
