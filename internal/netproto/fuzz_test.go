package netproto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzFrame assembles an Ethernet frame from parts without the builders, so
// seeds can be deliberately malformed (truncated headers, lying length
// fields, unterminated tag stacks).
func fuzzFrame(etherType uint16, payload ...[]byte) []byte {
	b := make([]byte, 0, 64)
	b = append(b, make([]byte, 12)...) // zero MACs
	b = binary.BigEndian.AppendUint16(b, etherType)
	for _, p := range payload {
		b = append(b, p...)
	}
	return b
}

// FuzzStackDecode throws arbitrary bytes at the preallocated-layer decoder
// and checks its safety contract: no panic on any input, and whenever a
// payload is reported it must be a window into the input frame (correct
// offset, in bounds, aliasing the original buffer — never a copy), with the
// decode fully deterministic.
func FuzzStackDecode(f *testing.F) {
	// Well-formed frames from the builders.
	udp, err := BuildUDP(UDPSpec{
		SrcIP: MustIPv4("10.0.0.1"), DstIP: MustIPv4("10.0.0.2"),
		SrcPort: 1, DstPort: 2, FrameLen: 64,
	})
	if err != nil {
		f.Fatal(err)
	}
	tcp, err := BuildTCP(TCPSpec{
		SrcIP: MustIPv4("10.0.0.1"), DstIP: MustIPv4("10.0.0.2"),
		SrcPort: 80, DstPort: 1024, Flags: 0x12, FrameLen: 64,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(udp)
	f.Add(tcp)

	// Truncations at every layer boundary and mid-header.
	for _, n := range []int{0, 7, EthernetLen - 1, EthernetLen,
		EthernetLen + 3, EthernetLen + IPv4MinLen - 1, len(udp) - 1} {
		if n <= len(udp) {
			f.Add(udp[:n])
		}
	}

	// VLAN tag, truncated VLAN tag, and a QinQ stack (VLAN-in-VLAN: the
	// inner tag has no decoder slot, so it must land in Payload).
	vlanTag := func(inner uint16) []byte {
		return binary.BigEndian.AppendUint16([]byte{0x20, 0x01}, inner)
	}
	f.Add(fuzzFrame(EtherTypeVLAN, vlanTag(EtherTypeIPv4), udp[EthernetLen:]))
	f.Add(fuzzFrame(EtherTypeVLAN, []byte{0x20}))
	f.Add(fuzzFrame(EtherTypeVLAN, vlanTag(EtherTypeVLAN), vlanTag(EtherTypeIPv4), udp[EthernetLen:]))

	// IPv4 with a TotalLen smaller than its own header, and with options.
	lying := append([]byte(nil), udp...)
	binary.BigEndian.PutUint16(lying[EthernetLen+2:], 5)
	f.Add(lying)
	opts := append([]byte(nil), udp...)
	opts[EthernetLen] = 0x46 // IHL=6: one option word the frame doesn't have room for
	f.Add(opts)

	// IPv6: plain UDP, truncated fixed header, and a hop-by-hop extension
	// header in front of TCP (decoded as payload; see Stack.Decode).
	ip6 := func(next uint8, payload []byte) []byte {
		h := make([]byte, IPv6Len)
		h[0] = 6 << 4
		binary.BigEndian.PutUint16(h[4:6], uint16(len(payload)))
		h[6] = next
		h[7] = 64
		return fuzzFrame(EtherTypeIPv6, h, payload)
	}
	f.Add(ip6(IPProtoUDP, udp[EthernetLen+IPv4MinLen:]))
	f.Add(ip6(IPProtoTCP, tcp[EthernetLen+IPv4MinLen:])[:EthernetLen+IPv6Len-2])
	hbh := append([]byte{IPProtoTCP, 0, 0, 0, 0, 0, 0, 0}, tcp[EthernetLen+IPv4MinLen:]...)
	f.Add(ip6(0 /* hop-by-hop */, hbh))

	// TCP with a data offset pointing past the segment.
	shortTCP := append([]byte(nil), tcp...)
	shortTCP[EthernetLen+IPv4MinLen+12] = 0xf0
	f.Add(shortTCP)

	// ARP and unknown EtherType.
	f.Add(fuzzFrame(EtherTypeARP, make([]byte, ARPLen)))
	f.Add(fuzzFrame(0x88b5, []byte("opaque")))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Stack
		err := s.Decode(data)

		if len(s.Decoded) == 0 && err == nil && len(data) >= EthernetLen {
			t.Fatalf("decoded nothing without error from %d bytes", len(data))
		}
		if s.Has(LayerPayload) != (s.PayloadOffset >= 0) {
			t.Fatalf("payload layer/offset disagree: %v vs %d", s.Decoded, s.PayloadOffset)
		}
		if s.PayloadOffset >= 0 {
			if len(s.Payload) == 0 {
				t.Fatal("payload recorded but empty")
			}
			if s.PayloadOffset+len(s.Payload) > len(data) {
				t.Fatalf("payload [%d:%d] out of bounds of %d-byte frame",
					s.PayloadOffset, s.PayloadOffset+len(s.Payload), len(data))
			}
			if &s.Payload[0] != &data[s.PayloadOffset] {
				t.Fatal("payload is not a window into the frame")
			}
		}
		if len(s.Decoded) > 0 && s.Decoded[0] != LayerEthernet {
			t.Fatalf("first decoded layer is %v, not ethernet", s.Decoded[0])
		}

		// Decoding the same bytes again must reproduce the same view.
		var s2 Stack
		err2 := s2.Decode(data)
		if (err == nil) != (err2 == nil) || len(s.Decoded) != len(s2.Decoded) ||
			s.PayloadOffset != s2.PayloadOffset || !bytes.Equal(s.Payload, s2.Payload) {
			t.Fatalf("decode not deterministic: %v/%v vs %v/%v", s.Decoded, err, s2.Decoded, err2)
		}
		for i := range s.Decoded {
			if s.Decoded[i] != s2.Decoded[i] {
				t.Fatalf("decode not deterministic at layer %d", i)
			}
		}
	})
}

// TestIPv6ExtensionHeaderAsPayload pins the documented modelling limit: an
// IPv6 frame carrying a hop-by-hop extension header decodes cleanly, but the
// extension chain and the TCP segment behind it are opaque payload — no TCP
// layer is reported.
func TestIPv6ExtensionHeaderAsPayload(t *testing.T) {
	tcp, err := BuildTCP(TCPSpec{
		SrcIP: MustIPv4("10.0.0.1"), DstIP: MustIPv4("10.0.0.2"),
		SrcPort: 80, DstPort: 1024, Flags: 0x02, FrameLen: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	seg := tcp[EthernetLen+IPv4MinLen:]
	ext := append([]byte{IPProtoTCP, 0, 0, 0, 0, 0, 0, 0}, seg...)
	h := make([]byte, IPv6Len)
	h[0] = 6 << 4
	binary.BigEndian.PutUint16(h[4:6], uint16(len(ext)))
	h[6] = 0 // hop-by-hop options
	h[7] = 64
	frame := fuzzFrame(EtherTypeIPv6, h, ext)

	var s Stack
	if err := s.Decode(frame); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !s.Has(LayerIPv6) {
		t.Fatal("ipv6 layer missing")
	}
	if s.Has(LayerTCP) {
		t.Fatal("TCP behind an extension header must not be decoded (fixed-header model)")
	}
	if !s.Has(LayerPayload) || s.PayloadOffset != EthernetLen+IPv6Len {
		t.Fatalf("extension chain should be payload at offset %d, got %d",
			EthernetLen+IPv6Len, s.PayloadOffset)
	}
}
