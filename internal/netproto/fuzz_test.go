package netproto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzFrame assembles an Ethernet frame from parts without the builders, so
// seeds can be deliberately malformed (truncated headers, lying length
// fields, unterminated tag stacks).
func fuzzFrame(etherType uint16, payload ...[]byte) []byte {
	b := make([]byte, 0, 64)
	b = append(b, make([]byte, 12)...) // zero MACs
	b = binary.BigEndian.AppendUint16(b, etherType)
	for _, p := range payload {
		b = append(b, p...)
	}
	return b
}

// FuzzStackDecode throws arbitrary bytes at the preallocated-layer decoder
// and checks its safety contract: no panic on any input, and whenever a
// payload is reported it must be a window into the input frame (correct
// offset, in bounds, aliasing the original buffer — never a copy), with the
// decode fully deterministic.
func FuzzStackDecode(f *testing.F) {
	// Well-formed frames from the builders.
	udp, err := BuildUDP(UDPSpec{
		SrcIP: MustIPv4("10.0.0.1"), DstIP: MustIPv4("10.0.0.2"),
		SrcPort: 1, DstPort: 2, FrameLen: 64,
	})
	if err != nil {
		f.Fatal(err)
	}
	tcp, err := BuildTCP(TCPSpec{
		SrcIP: MustIPv4("10.0.0.1"), DstIP: MustIPv4("10.0.0.2"),
		SrcPort: 80, DstPort: 1024, Flags: 0x12, FrameLen: 64,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(udp)
	f.Add(tcp)

	// Truncations at every layer boundary and mid-header.
	for _, n := range []int{0, 7, EthernetLen - 1, EthernetLen,
		EthernetLen + 3, EthernetLen + IPv4MinLen - 1, len(udp) - 1} {
		if n <= len(udp) {
			f.Add(udp[:n])
		}
	}

	// VLAN tag, truncated VLAN tag, and a QinQ stack (VLAN-in-VLAN: the
	// inner tag has no decoder slot, so it must land in Payload).
	vlanTag := func(inner uint16) []byte {
		return binary.BigEndian.AppendUint16([]byte{0x20, 0x01}, inner)
	}
	f.Add(fuzzFrame(EtherTypeVLAN, vlanTag(EtherTypeIPv4), udp[EthernetLen:]))
	f.Add(fuzzFrame(EtherTypeVLAN, []byte{0x20}))
	f.Add(fuzzFrame(EtherTypeVLAN, vlanTag(EtherTypeVLAN), vlanTag(EtherTypeIPv4), udp[EthernetLen:]))

	// IPv4 with a TotalLen smaller than its own header, and with options.
	lying := append([]byte(nil), udp...)
	binary.BigEndian.PutUint16(lying[EthernetLen+2:], 5)
	f.Add(lying)
	opts := append([]byte(nil), udp...)
	opts[EthernetLen] = 0x46 // IHL=6: one option word the frame doesn't have room for
	f.Add(opts)

	// IPv6: plain UDP, truncated fixed header, and extension-header chains
	// in front of TCP (walked by Stack.Decode since the ext-chain fix).
	ip6 := func(next uint8, payload []byte) []byte {
		h := make([]byte, IPv6Len)
		h[0] = 6 << 4
		binary.BigEndian.PutUint16(h[4:6], uint16(len(payload)))
		h[6] = next
		h[7] = 64
		return fuzzFrame(EtherTypeIPv6, h, payload)
	}
	f.Add(ip6(IPProtoUDP, udp[EthernetLen+IPv4MinLen:]))
	f.Add(ip6(IPProtoTCP, tcp[EthernetLen+IPv4MinLen:])[:EthernetLen+IPv6Len-2])
	seg := tcp[EthernetLen+IPv4MinLen:]
	ext := func(next uint8, extLen8 uint8) []byte {
		e := make([]byte, (int(extLen8)+1)*8)
		e[0] = next
		e[1] = extLen8
		return e
	}
	frag := func(next uint8, off uint16, more bool) []byte {
		e := make([]byte, 8)
		e[0] = next
		binary.BigEndian.PutUint16(e[2:4], off<<3)
		if more {
			e[3] |= 1
		}
		binary.BigEndian.PutUint32(e[4:8], 0xdead)
		return e
	}
	// Single hop-by-hop, a full four-header chain (hbh -> routing -> first
	// fragment -> dest options -> TCP), and a no-next-header end.
	f.Add(ip6(IPProtoHopByHop, append(ext(IPProtoTCP, 0), seg...)))
	chain := ext(IPProtoIPv6Routing, 0)                           // hop-by-hop
	chain = append(chain, ext(IPProtoIPv6Fragment, 0)...)         // routing
	chain = append(chain, frag(IPProtoIPv6DestOpts, 0, false)...) // first fragment
	chain = append(chain, ext(IPProtoTCP, 0)...)                  // dest options
	f.Add(ip6(IPProtoHopByHop, append(chain, seg...)))
	f.Add(ip6(IPProtoHopByHop, ext(IPProtoIPv6NoNext, 0)))
	// Non-first fragment (offset != 0): no L4 header behind the chain.
	f.Add(ip6(IPProtoIPv6Fragment, append(frag(IPProtoTCP, 5, true), seg...)))
	// Lying HdrExtLen (declared length past the buffer) and a chain longer
	// than the walk bound.
	f.Add(ip6(IPProtoHopByHop, append([]byte{IPProtoTCP, 0xff}, seg...)))
	long := []byte{}
	for i := 0; i < MaxIPv6ExtHeaders+2; i++ {
		long = append(long, ext(IPProtoHopByHop, 0)...)
	}
	f.Add(ip6(IPProtoHopByHop, append(long, seg...)))
	// Truncated mid-chain: routing header cut off after its first byte.
	f.Add(ip6(IPProtoIPv6Routing, []byte{IPProtoTCP}))

	// TCP with a data offset pointing past the segment.
	shortTCP := append([]byte(nil), tcp...)
	shortTCP[EthernetLen+IPv4MinLen+12] = 0xf0
	f.Add(shortTCP)

	// ARP and unknown EtherType.
	f.Add(fuzzFrame(EtherTypeARP, make([]byte, ARPLen)))
	f.Add(fuzzFrame(0x88b5, []byte("opaque")))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Stack
		err := s.Decode(data)

		if len(s.Decoded) == 0 && err == nil && len(data) >= EthernetLen {
			t.Fatalf("decoded nothing without error from %d bytes", len(data))
		}
		if s.Has(LayerPayload) != (s.PayloadOffset >= 0) {
			t.Fatalf("payload layer/offset disagree: %v vs %d", s.Decoded, s.PayloadOffset)
		}
		if s.PayloadOffset >= 0 {
			if len(s.Payload) == 0 {
				t.Fatal("payload recorded but empty")
			}
			if s.PayloadOffset+len(s.Payload) > len(data) {
				t.Fatalf("payload [%d:%d] out of bounds of %d-byte frame",
					s.PayloadOffset, s.PayloadOffset+len(s.Payload), len(data))
			}
			if &s.Payload[0] != &data[s.PayloadOffset] {
				t.Fatal("payload is not a window into the frame")
			}
		}
		if len(s.Decoded) > 0 && s.Decoded[0] != LayerEthernet {
			t.Fatalf("first decoded layer is %v, not ethernet", s.Decoded[0])
		}

		// Decoding the same bytes again must reproduce the same view.
		var s2 Stack
		err2 := s2.Decode(data)
		if (err == nil) != (err2 == nil) || len(s.Decoded) != len(s2.Decoded) ||
			s.PayloadOffset != s2.PayloadOffset || !bytes.Equal(s.Payload, s2.Payload) {
			t.Fatalf("decode not deterministic: %v/%v vs %v/%v", s.Decoded, err, s2.Decoded, err2)
		}
		for i := range s.Decoded {
			if s.Decoded[i] != s2.Decoded[i] {
				t.Fatalf("decode not deterministic at layer %d", i)
			}
		}
	})
}

// ip6ExtFrame assembles Ethernet + IPv6 + the given extension chain/L4 bytes.
func ip6ExtFrame(next uint8, payload []byte) []byte {
	h := make([]byte, IPv6Len)
	h[0] = 6 << 4
	binary.BigEndian.PutUint16(h[4:6], uint16(len(payload)))
	h[6] = next
	h[7] = 64
	return fuzzFrame(EtherTypeIPv6, h, payload)
}

// TestIPv6ExtensionHeaderChain is the mutation-verified regression test for
// the extension-header fix: TCP behind a hop-by-hop header (formerly opaque
// payload — the pinned limitation this test replaces) is now classified, with
// ports intact and the payload window positioned after the real TCP header.
func TestIPv6ExtensionHeaderChain(t *testing.T) {
	tcp, err := BuildTCP(TCPSpec{
		SrcIP: MustIPv4("10.0.0.1"), DstIP: MustIPv4("10.0.0.2"),
		SrcPort: 80, DstPort: 1024, Flags: 0x02, FrameLen: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	seg := tcp[EthernetLen+IPv4MinLen:]
	hbh := append([]byte{IPProtoTCP, 0, 0, 0, 0, 0, 0, 0}, seg...)
	frame := ip6ExtFrame(IPProtoHopByHop, hbh)

	var s Stack
	if err := s.Decode(frame); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !s.Has(LayerIPv6) || !s.Has(LayerIPv6Ext) {
		t.Fatalf("ipv6/ext layers missing: %v", s.Decoded)
	}
	if s.IP6Ext.Count != 1 || s.IP6Ext.Len != 8 || s.IP6Ext.Final != IPProtoTCP {
		t.Fatalf("chain summary wrong: %+v", s.IP6Ext)
	}
	if !s.Has(LayerTCP) {
		t.Fatalf("TCP behind a hop-by-hop header not decoded: %v", s.Decoded)
	}
	if s.TCP.SrcPort != 80 || s.TCP.DstPort != 1024 || s.TCP.Flags&TCPSyn == 0 {
		t.Fatalf("TCP fields wrong: %+v", s.TCP)
	}
	wantOff := EthernetLen + IPv6Len + 8 + TCPMinLen
	if s.Has(LayerPayload) && s.PayloadOffset != wantOff {
		t.Fatalf("payload offset %d, want %d", s.PayloadOffset, wantOff)
	}
}

// TestIPv6ExtensionHeaderFullChain walks all four modelled extension kinds
// in one frame and checks the summary plus the UDP header behind them.
func TestIPv6ExtensionHeaderFullChain(t *testing.T) {
	udp, err := BuildUDP(UDPSpec{
		SrcIP: MustIPv4("10.0.0.1"), DstIP: MustIPv4("10.0.0.2"),
		SrcPort: 53, DstPort: 9999, FrameLen: 96,
	})
	if err != nil {
		t.Fatal(err)
	}
	seg := udp[EthernetLen+IPv4MinLen:]
	chain := []byte{IPProtoIPv6Routing, 0, 0, 0, 0, 0, 0, 0} // hop-by-hop
	chain = append(chain, IPProtoIPv6Fragment, 1, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0) // routing, HdrExtLen=1 (16 bytes)
	chain = append(chain, IPProtoIPv6DestOpts, 0, 0, 0, 0, 0, 0, 1) // fragment, offset 0
	chain = append(chain, IPProtoUDP, 0, 0, 0, 0, 0, 0, 0)          // dest options
	frame := ip6ExtFrame(IPProtoHopByHop, append(chain, seg...))

	var s Stack
	if err := s.Decode(frame); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !s.Has(LayerIPv6Ext) || !s.Has(LayerUDP) {
		t.Fatalf("layers missing: %v", s.Decoded)
	}
	c := s.IP6Ext
	if c.Count != 4 || c.Len != len(chain) || c.Final != IPProtoUDP {
		t.Fatalf("chain summary wrong: %+v (want count 4, len %d)", c, len(chain))
	}
	if !c.Fragmented || c.FragOffset != 0 || c.FragID != 1 {
		t.Fatalf("fragment state wrong: %+v", c)
	}
	if s.UDP.SrcPort != 53 || s.UDP.DstPort != 9999 {
		t.Fatalf("UDP ports wrong: %+v", s.UDP)
	}
}

// TestIPv6ExtensionHeaderEdgeCases pins the failure modes of the chain walk:
// non-first fragments yield payload (no mid-stream L4 decode), lying
// HdrExtLen errors, over-long chains error, and a no-next-header terminator
// ends cleanly.
func TestIPv6ExtensionHeaderEdgeCases(t *testing.T) {
	tcp, err := BuildTCP(TCPSpec{
		SrcIP: MustIPv4("10.0.0.1"), DstIP: MustIPv4("10.0.0.2"),
		SrcPort: 80, DstPort: 1024, Flags: 0x02, FrameLen: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	seg := tcp[EthernetLen+IPv4MinLen:]

	t.Run("non-first fragment", func(t *testing.T) {
		fr := []byte{IPProtoTCP, 0, 0, 0, 0, 0, 0, 0}
		binary.BigEndian.PutUint16(fr[2:4], 5<<3) // offset 5, more=0
		frame := ip6ExtFrame(IPProtoIPv6Fragment, append(fr, seg...))
		var s Stack
		if err := s.Decode(frame); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if s.Has(LayerTCP) {
			t.Fatal("decoded an L4 header out of a non-first fragment")
		}
		if !s.IP6Ext.Fragmented || s.IP6Ext.FragOffset != 5 {
			t.Fatalf("fragment state wrong: %+v", s.IP6Ext)
		}
		if !s.Has(LayerPayload) || s.PayloadOffset != EthernetLen+IPv6Len+8 {
			t.Fatalf("payload offset %d, want %d", s.PayloadOffset, EthernetLen+IPv6Len+8)
		}
	})

	t.Run("lying HdrExtLen", func(t *testing.T) {
		frame := ip6ExtFrame(IPProtoHopByHop, append([]byte{IPProtoTCP, 0xff}, seg...))
		var s Stack
		if err := s.Decode(frame); err == nil {
			t.Fatal("HdrExtLen past the buffer did not error")
		}
		if s.Has(LayerTCP) || s.Has(LayerPayload) {
			t.Fatalf("layers decoded past a lying length: %v", s.Decoded)
		}
	})

	t.Run("over-long chain", func(t *testing.T) {
		var chain []byte
		for i := 0; i < MaxIPv6ExtHeaders+1; i++ {
			chain = append(chain, IPProtoHopByHop, 0, 0, 0, 0, 0, 0, 0)
		}
		frame := ip6ExtFrame(IPProtoHopByHop, append(chain, seg...))
		var s Stack
		if err := s.Decode(frame); err == nil {
			t.Fatalf("chain of %d headers did not error", MaxIPv6ExtHeaders+1)
		}
	})

	t.Run("no next header", func(t *testing.T) {
		frame := ip6ExtFrame(IPProtoHopByHop, []byte{IPProtoIPv6NoNext, 0, 0, 0, 0, 0, 0, 0})
		var s Stack
		if err := s.Decode(frame); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !s.Has(LayerIPv6Ext) || s.Has(LayerPayload) {
			t.Fatalf("no-next-header frame decoded wrong: %v", s.Decoded)
		}
	})
}
