package netproto

import (
	"testing"
	"testing/quick"
)

func TestDot1QRoundTrip(t *testing.T) {
	in := Dot1Q{PCP: 5, DEI: true, VID: 0x123, EtherType: EtherTypeIPv4}
	b := NewSerializeBuffer()
	if err := in.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	var out Dot1Q
	n, err := out.DecodeFrom(b.Bytes())
	if err != nil || n != Dot1QLen {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestStackDecodeVLANUDP(t *testing.T) {
	raw, err := BuildUDP(UDPSpec{
		SrcIP: MustIPv4("10.0.0.1"), DstIP: MustIPv4("10.0.0.2"),
		SrcPort: 5000, DstPort: 53,
		VLAN: true, VlanID: 100, VlanPCP: 3,
		FrameLen: 68,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 68 {
		t.Fatalf("frame len = %d", len(raw))
	}
	var s Stack
	if err := s.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !s.Has(LayerVLAN) || s.VLAN.VID != 100 || s.VLAN.PCP != 3 {
		t.Fatalf("vlan decode: %v %+v", s.Decoded, s.VLAN)
	}
	if !s.Has(LayerUDP) || s.UDP.DstPort != 53 {
		t.Fatalf("inner layers lost: %v", s.Decoded)
	}
	if s.Eth.EtherType != EtherTypeVLAN || s.VLAN.EtherType != EtherTypeIPv4 {
		t.Fatal("ethertype chain wrong")
	}
}

func TestStackDecodeVLANTCP(t *testing.T) {
	raw, err := BuildTCP(TCPSpec{
		SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Flags: TCPSyn,
		VLAN: true, VlanID: 4095,
	})
	if err != nil {
		t.Fatal(err)
	}
	var s Stack
	if err := s.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !s.Has(LayerVLAN) || !s.Has(LayerTCP) || s.VLAN.VID != 4095 {
		t.Fatalf("decode: %v", s.Decoded)
	}
}

// Property: any (vid, pcp, dei) round-trips through the tag, masked to
// field widths.
func TestDot1QProperty(t *testing.T) {
	f := func(vid uint16, pcp uint8, dei bool) bool {
		in := Dot1Q{PCP: pcp & 0x7, DEI: dei, VID: vid & 0x0fff, EtherType: EtherTypeIPv4}
		b := NewSerializeBuffer()
		if err := in.SerializeTo(b); err != nil {
			return false
		}
		var out Dot1Q
		if _, err := out.DecodeFrom(b.Bytes()); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
