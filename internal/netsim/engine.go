package netsim

import (
	"fmt"
	"sort"
	"sync"
)

// Conservative parallel discrete-event engine
//
// The Engine shards a simulation into logical processes (LPs) — in the
// testbed mapping, one per switch ASIC, DUT and server/sink — each owning its
// own Sim (clock + timing wheel). LPs exchange events only through explicitly
// registered channels, each carrying a positive lookahead: the minimum
// virtual-time distance between an LP executing an event and the earliest
// cross-channel event that execution can cause. In the testbed the lookahead
// is derived from calibrated physics (internal/asic/timing.go): minimum wire
// serialization time at the link rate, plus cable propagation, plus — when
// the receiver is a switch port — the fixed MAC/ingress-pipeline latency.
//
// Synchronization is windowed (epochs). Before each epoch the coordinator
// computes every LP's next pending timestamp, their minimum (the classic
// lower-bound timestamp, LBTS), each LP's earliest possible execution time
// by fixed-point relaxation over the channel graph,
//
//	et(i) = min(nextAt(i), min over channels j->i of et(j) + lookahead(j->i))
//
// and from it a per-LP horizon:
//
//	horizon(i) = min over channels j->i of et(j) + lookahead(j->i)
//
// An LP may execute every event strictly before its horizon: any message a
// neighbor j can still send — including one j itself has yet to receive —
// arrives no earlier than et(j)+lookahead. Because lookahead is strictly
// positive, the LP owning the LBTS always has a horizon above it, so every
// epoch makes progress and the engine cannot deadlock. LPs with work run in parallel on a worker pool; cross-LP sends
// are staged in per-destination outboxes (bounded — an LP that stages
// outboxCap messages pauses until the next epoch, the flow-control equivalent
// of a bounded channel) and routed to destination inboxes between epochs.
//
// Determinism (the bit-identical-merge argument, DESIGN.md §10): messages are
// sequence-stamped by construction — per-source FIFO staging order, sources
// drained in LP-rank order — and each message carries schedAt, the virtual
// time the sequential engine would have scheduled the corresponding event
// at (the sender-side transmit-completion time). Inbox filing sorts stably by
// (at, schedAt) and the event comparator orders by (at, schedAt, seq), so a
// remote event lands in exactly the slot the sequential run gives it relative
// to every locally scheduled event. The one residual tie class — messages
// from two *different* source LPs with identical (at, schedAt) at one
// destination — is broken by source LP rank, which can differ from the
// sequential interleave; it cannot arise in the testbed mapping, where every
// attachment point has exactly one peer, so each (at, schedAt) pair at a
// destination has a unique sender. No wall-clock reads, no global RNG, and
// no map iteration anywhere in the scheduler: epoch boundaries are pure
// functions of event timestamps, so results do not depend on the worker
// count or on goroutine scheduling.
const EngineImpl = "conservative-lp/v1"

// DefaultOutboxCap bounds how many cross-LP messages one LP may stage within
// a single epoch before pausing (bounded-channel flow control).
const DefaultOutboxCap = 4096

// remoteMsg is one staged cross-LP event.
type remoteMsg struct {
	at      Time // execution time on the destination clock
	schedAt Time // the sequential engine's schedule time, for merge order
	fn      func(any)
	arg     any
	// pre, when non-nil, is an early side effect the sequential engine
	// makes observable at preAt, before the event itself runs at `at`
	// (e.g. an RX-counter credit at wire arrival, one ingress latency
	// ahead of pipeline entry). If a RunUntil boundary lands in
	// [preAt, at), the engine runs pre(arg) at the boundary — exactly
	// once — so counters sampled there match the sequential run. When no
	// boundary intervenes, pre never fires and fn must perform the side
	// effect itself (see Sim.PostRemotePre).
	pre   func(any)
	preAt Time
}

// lpState is the engine-side state of one logical process.
type lpState struct {
	sim  *Sim
	eng  *Engine
	rank int
	name string

	// outbox[d] stages messages for LP d during an epoch; staged counts
	// them for the flow-control cap. Only the owning worker touches these
	// during an epoch; the coordinator drains them between epochs.
	outbox [][]remoteMsg
	staged int

	// inbox holds routed messages awaiting filing at the LP's next epoch.
	inbox []remoteMsg

	nextAt   Time
	et       Time // earliest possible execution time (see RunUntil)
	horizon  Time
	runnable bool

	// Lifetime counters, surfaced by Engine.Stats. sent is bumped by the
	// owning worker (postRemote); received and stalls by the coordinator.
	sent     uint64
	received uint64
	stalls   uint64
}

// edge is a registered channel before sealing.
type edge struct {
	src, dst  int
	lookahead Duration
}

// inEdge is one incoming channel of an LP after sealing.
type inEdge struct {
	src       int
	lookahead Duration
}

// Engine coordinates a set of LPs. Build LPs with NewLP, register every
// cross-LP channel with Channel, then drive virtual time with RunUntil /
// RunFor. The topology seals at the first run.
type Engine struct {
	workers   int
	outboxCap int

	lps     []*lpState
	edges   []edge
	la      [][]Duration // la[src][dst]; 0 = no channel
	inEdges [][]inEdge   // per-destination, ascending source rank
	chans   []edge       // deduplicated channel list, for ET relaxation
	sealed  bool

	clock Time
	// deadline is the active RunUntil bound; fileInbox retains messages
	// beyond it so their boundary side effects (remoteMsg.pre) stay
	// reachable until the run that executes them.
	deadline Time

	// Lifetime counters, surfaced by Stats.
	epochs   uint64
	lastLBTS Time
}

// NewEngine builds an engine whose epochs run on up to workers goroutines.
func NewEngine(workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	return &Engine{workers: workers, outboxCap: DefaultOutboxCap}
}

// NewLP adds a logical process and returns its simulator. LP rank is
// creation order; it is the source-priority used when merging same-timestamp
// cross-LP messages, so topology construction order is part of the seed.
func (e *Engine) NewLP(name string) *Sim {
	if e.sealed {
		panic("netsim: NewLP after the engine topology sealed")
	}
	s := New()
	lp := &lpState{sim: s, eng: e, rank: len(e.lps), name: name, nextAt: MaxTime}
	s.lp = lp
	e.lps = append(e.lps, lp)
	return s
}

// Workers reports the engine's worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Now returns the engine's virtual clock (the deadline of the last RunUntil).
func (e *Engine) Now() Time { return e.clock }

// Channel registers a directed cross-LP channel with the given lookahead:
// every PostRemote from src to dst must target a time at least lookahead
// after src's clock. Lookahead must be positive — that is what guarantees
// epoch progress. Repeat registrations keep the minimum.
func (e *Engine) Channel(src, dst *Sim, lookahead Duration) {
	if e.sealed {
		panic("netsim: Channel after the engine topology sealed")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("netsim: channel lookahead must be positive, got %v", lookahead))
	}
	sl, dl := src.lp, dst.lp
	if sl == nil || dl == nil || sl.eng != e || dl.eng != e {
		panic("netsim: Channel endpoints must be LPs of this engine")
	}
	if sl == dl {
		panic("netsim: Channel endpoints must be distinct LPs")
	}
	e.edges = append(e.edges, edge{src: sl.rank, dst: dl.rank, lookahead: lookahead})
}

// seal freezes the topology: builds the lookahead matrix, the per-LP
// in-edge lists (ascending source rank — the deterministic drain order) and
// the per-LP outboxes.
func (e *Engine) seal() {
	if e.sealed {
		return
	}
	n := len(e.lps)
	e.la = make([][]Duration, n)
	for i := range e.la {
		e.la[i] = make([]Duration, n)
	}
	for _, ed := range e.edges {
		if cur := e.la[ed.src][ed.dst]; cur == 0 || ed.lookahead < cur {
			e.la[ed.src][ed.dst] = ed.lookahead
		}
	}
	e.inEdges = make([][]inEdge, n)
	for dst := 0; dst < n; dst++ {
		for src := 0; src < n; src++ {
			if d := e.la[src][dst]; d > 0 {
				e.inEdges[dst] = append(e.inEdges[dst], inEdge{src: src, lookahead: d})
				e.chans = append(e.chans, edge{src: src, dst: dst, lookahead: d})
			}
		}
	}
	for _, lp := range e.lps {
		lp.outbox = make([][]remoteMsg, n)
	}
	e.sealed = true
}

// PostRemote stages fn(arg) for execution at absolute time at on dst, a
// different LP of the same engine. schedAt is the virtual time the sequential
// engine would have scheduled this event at (e.g. the transmit-completion
// time of the frame being delivered); it determines merge order against
// same-timestamp events and must satisfy s.Now() <= schedAt <= at. The target
// time must respect the registered channel lookahead — violations panic, as
// they would silently corrupt the conservative synchronization invariant.
func (s *Sim) PostRemote(dst *Sim, at, schedAt Time, fn func(any), arg any) {
	s.postRemote(dst, at, schedAt, fn, arg, nil, 0)
}

// PostRemotePre is PostRemote with an early boundary side effect: the
// sequential engine makes some part of the event observable at preAt < at
// (e.g. crediting a port's RX counters at wire arrival, one ingress latency
// before pipeline entry). If a RunUntil deadline lands in [preAt, at), the
// engine invokes pre(arg) at that boundary — at most once per message — so
// state sampled at the boundary matches the sequential run bit for bit.
// When the message instead executes normally, pre is never called: fn must
// detect (via arg) whether the side effect already ran and apply it
// idempotently. pre runs on the coordinator goroutine while all LP workers
// are quiescent, so it may touch the destination LP's state.
func (s *Sim) PostRemotePre(dst *Sim, at, schedAt, preAt Time, pre, fn func(any), arg any) {
	s.postRemote(dst, at, schedAt, fn, arg, pre, preAt)
}

func (s *Sim) postRemote(dst *Sim, at, schedAt Time, fn func(any), arg any, pre func(any), preAt Time) {
	src := s.lp
	if src == nil || dst.lp == nil || src.eng != dst.lp.eng {
		panic("netsim: PostRemote requires src and dst LPs of one engine")
	}
	e := src.eng
	la := e.la[src.rank][dst.lp.rank]
	if la == 0 {
		panic("netsim: PostRemote without a registered Channel")
	}
	if at < s.now.Add(la) {
		panic(fmt.Sprintf("netsim: PostRemote at %v violates lookahead %v from now %v",
			at, la, s.now))
	}
	if schedAt > at {
		schedAt = at
	}
	if schedAt < s.now {
		schedAt = s.now
	}
	if pre != nil {
		if preAt > at {
			preAt = at
		}
		if preAt < s.now {
			preAt = s.now
		}
	}
	src.outbox[dst.lp.rank] = append(src.outbox[dst.lp.rank],
		remoteMsg{at: at, schedAt: schedAt, fn: fn, arg: arg, pre: pre, preAt: preAt})
	src.staged++
	src.sent++
}

// fileInbox files routed messages due within the active deadline into the
// wheel in deterministic merge order. Messages beyond the deadline stay in
// the inbox: they are folded into nextAt at every run boundary (so a later
// RunUntil picks them up) and keeping them as remoteMsgs preserves their
// boundary side effects (pre) until the run that executes them.
func (lp *lpState) fileInbox() {
	ms := lp.inbox
	if len(ms) == 0 {
		return
	}
	// Stable sort by (at, schedAt): staging order — per-source FIFO, sources
	// in rank order — breaks the remaining ties deterministically. Retained
	// messages keep their sorted (hence staging-relative) order, so
	// re-sorting them alongside later arrivals reproduces the order a
	// single-shot filing would give.
	if len(ms) > 1 {
		sort.SliceStable(ms, func(i, j int) bool {
			if ms[i].at != ms[j].at {
				return ms[i].at < ms[j].at
			}
			return ms[i].schedAt < ms[j].schedAt
		})
	}
	s := lp.sim
	deadline := lp.eng.deadline
	keep := ms[:0]
	for i := range ms {
		m := &ms[i]
		if m.at > deadline {
			keep = append(keep, *m)
			continue
		}
		ev := s.alloc(m.at) // panics if at < now: a lookahead violation
		ev.schedAt = m.schedAt
		ev.fn2, ev.arg = m.fn, m.arg
		s.schedule(ev)
	}
	// Clear vacated tail slots so retired callback references can be
	// collected.
	for i := len(keep); i < len(ms); i++ {
		ms[i] = remoteMsg{}
	}
	lp.inbox = keep
}

// runEpoch files the inbox and executes events strictly before the horizon,
// pausing early if the outbox cap is reached. It then refreshes nextAt.
// Runs on a worker goroutine; touches only this LP's state.
func (lp *lpState) runEpoch() {
	lp.fileInbox()
	s := lp.sim
	cap := lp.eng.outboxCap
	for lp.staged < cap {
		ev := s.peek()
		if ev == nil || ev.at >= lp.horizon {
			break
		}
		s.step()
	}
	lp.refreshNextAt()
}

// refreshNextAt recomputes the LP's earliest pending event time.
func (lp *lpState) refreshNextAt() {
	if ev := lp.sim.peek(); ev != nil {
		lp.nextAt = ev.at
	} else {
		lp.nextAt = MaxTime
	}
}

// route drains every LP's outboxes into the destination inboxes, sources in
// rank order (the deterministic part of the sequence stamp).
func (e *Engine) route() {
	for _, src := range e.lps {
		if src.staged == 0 {
			continue
		}
		for d := range src.outbox {
			ms := src.outbox[d]
			if len(ms) == 0 {
				continue
			}
			dst := e.lps[d]
			dst.inbox = append(dst.inbox, ms...)
			dst.received += uint64(len(ms))
			for i := range ms {
				ms[i] = remoteMsg{}
			}
			src.outbox[d] = ms[:0]
		}
		src.staged = 0
	}
}

// foldInbox folds pending inbox message times into each LP's nextAt, so the
// LBTS and per-LP horizons account for messages not yet filed into a wheel.
func (e *Engine) foldInbox() {
	for _, lp := range e.lps {
		for i := range lp.inbox {
			if lp.inbox[i].at < lp.nextAt {
				lp.nextAt = lp.inbox[i].at
			}
		}
	}
}

// RunUntil executes all events with timestamps <= deadline across every LP,
// then advances every LP clock to the deadline — the parallel counterpart of
// Sim.RunUntil, with bit-identical results.
func (e *Engine) RunUntil(deadline Time) {
	e.seal()
	e.deadline = deadline
	// Work can be pending from before this run: outboxes staged by setup
	// code outside any epoch, and inbox messages carried past the previous
	// run's deadline. Route and fold them into nextAt before computing the
	// first LBTS — otherwise a run whose wheels are quiet would return
	// immediately and advance every clock past the pending messages,
	// silently dropping them.
	e.route()
	for _, lp := range e.lps {
		lp.refreshNextAt()
	}
	e.foldInbox()

	work := make(chan *lpState, len(e.lps))
	var wg sync.WaitGroup
	nw := e.workers
	if nw > len(e.lps) {
		nw = len(e.lps)
	}
	for w := 0; w < nw; w++ {
		go func() {
			for lp := range work {
				lp.runEpoch()
				wg.Done()
			}
		}()
	}
	defer close(work)

	for {
		// Lower-bound timestamp across all LPs.
		lbts := MaxTime
		for _, lp := range e.lps {
			if lp.nextAt < lbts {
				lbts = lp.nextAt
			}
		}
		if lbts == MaxTime || lbts > deadline {
			break
		}
		e.epochs++
		e.lastLBTS = lbts

		// Earliest possible execution times, by fixed-point relaxation over
		// the channel graph: an LP can execute nothing before its own next
		// pending event, or before a remote event whose sender's earliest
		// execution plus lookahead reaches it. The relaxation makes idle
		// intermediate LPs bound their successors transitively — an LP with
		// an empty wheel can still relay a message it has yet to receive.
		// Positive lookaheads bound the passes by the longest acyclic chain.
		for _, lp := range e.lps {
			lp.et = lp.nextAt
		}
		for changed := true; changed; {
			changed = false
			for _, ch := range e.chans {
				if st := e.lps[ch.src].et; st != MaxTime {
					if t := st.Add(ch.lookahead); t < e.lps[ch.dst].et {
						e.lps[ch.dst].et = t
						changed = true
					}
				}
			}
		}

		// Per-LP horizons (exclusive bounds), capped at deadline+1 so
		// events exactly at the deadline still execute this run. The cap
		// saturates at MaxTime: deadline+1 would overflow to a negative
		// horizon and starve every LP.
		for _, lp := range e.lps {
			h := MaxTime
			for _, in := range e.inEdges[lp.rank] {
				if t := e.lps[in.src].et; t != MaxTime {
					if ht := t.Add(in.lookahead); ht < h {
						h = ht
					}
				}
			}
			if deadline < MaxTime && h > deadline+1 {
				h = deadline + 1
			}
			lp.horizon = h
			// nextAt folds pending inbox messages, so it alone decides
			// runnability; inboxes whose earliest message sits at or past
			// the horizon can wait for a later epoch to be filed.
			lp.runnable = lp.nextAt < h
			if !lp.runnable && lp.nextAt <= deadline {
				lp.stalls++
			}
		}

		// Run the epoch: inline when a single LP has work (the common
		// bursty-phase case), otherwise fan out to the pool.
		n := 0
		var solo *lpState
		for _, lp := range e.lps {
			if lp.runnable {
				n++
				solo = lp
			}
		}
		if n == 1 {
			solo.runEpoch()
		} else {
			wg.Add(n)
			for _, lp := range e.lps {
				if lp.runnable {
					work <- lp
				}
			}
			wg.Wait()
		}

		// Route staged sends and fold the arrivals into nextAt.
		e.route()
		e.foldInbox()
	}

	// Boundary flush: messages still pending beyond the deadline may carry
	// an early side effect the sequential engine already made observable
	// (remoteMsg.pre at preAt <= deadline < at). Run those now, once, so
	// state sampled at this boundary is bit-identical to the sequential
	// run. All workers are quiescent here; LP rank and staging order make
	// the flush order deterministic.
	for _, lp := range e.lps {
		for i := range lp.inbox {
			m := &lp.inbox[i]
			if m.pre != nil && m.preAt <= deadline {
				m.pre(m.arg)
				m.pre = nil
			}
		}
	}

	for _, lp := range e.lps {
		if lp.sim.now < deadline {
			lp.sim.now = deadline
		}
	}
	if e.clock < deadline {
		e.clock = deadline
	}
}

// RunFor advances the engine clock by d.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.clock.Add(d)) }
