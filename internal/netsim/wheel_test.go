package netsim

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

// TestWheelDifferentialRandom drives the wheel scheduler with randomized
// workloads — mixed horizons across every wheel level and the overflow heap,
// nested scheduling, cancels — and asserts the execution order matches the
// specification: nondecreasing timestamps, FIFO within equal timestamps.
func TestWheelDifferentialRandom(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		s := New()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		seq := 0
		// Horizon mix: same-bucket, cross-bucket, cross-level, overflow.
		horizon := func() Duration {
			switch rng.Intn(6) {
			case 0:
				return Duration(rng.Int63n(256)) // level 0, same bucket scale
			case 1:
				return Duration(rng.Int63n(int64(WheelLevelSpan(0))))
			case 2:
				return Duration(rng.Int63n(int64(WheelLevelSpan(1))))
			case 3:
				return Duration(rng.Int63n(int64(WheelLevelSpan(2))))
			case 4:
				return Duration(rng.Int63n(int64(WheelLevelSpan(3))))
			default:
				return WheelLevelSpan(3) + Duration(rng.Int63n(int64(3*WheelLevelSpan(3))))
			}
		}
		var pendingEvents []*Event
		var schedule func(depth int)
		schedule = func(depth int) {
			at := s.Now().Add(horizon())
			mySeq := seq
			seq++
			e := s.At(at, func() {
				got = append(got, rec{at, mySeq})
				if depth < 2 && rng.Intn(4) == 0 {
					schedule(depth + 1)
				}
			})
			pendingEvents = append(pendingEvents, e)
		}
		n := 200 + rng.Intn(300)
		for i := 0; i < n; i++ {
			schedule(0)
		}
		// Cancel a random subset before running (handles are only valid
		// until execution, so cancel up-front).
		cancelled := 0
		for _, e := range pendingEvents {
			if rng.Intn(5) == 0 {
				s.Cancel(e)
				cancelled++
			}
		}
		want := s.Pending()
		s.Run()
		if len(got) < n-cancelled {
			t.Fatalf("trial %d: executed %d events, scheduled at least %d (cancelled %d)",
				trial, len(got), n-cancelled, cancelled)
		}
		_ = want
		if s.Pending() != 0 {
			t.Fatalf("trial %d: %d events still pending after Run", trial, s.Pending())
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].at != got[j].at {
				return got[i].at < got[j].at
			}
			return got[i].seq < got[j].seq
		}) {
			t.Fatalf("trial %d: execution order violates (timestamp, FIFO) order", trial)
		}
	}
}

// refEvent / refQueue form an independent reference scheduler — a plain
// binary heap ordered by (at, seq) — used to check the wheel's execution
// trace exactly, not just its ordering properties.
type refEvent struct {
	at  Time
	seq int
}

type refQueue []refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(refEvent)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// TestWheelVsReferenceRunUntil runs randomized workloads through the wheel
// and through the reference heap, chunked by RunUntil at random deadlines,
// and requires the two execution traces to be identical element-for-element.
func TestWheelVsReferenceRunUntil(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1000))
		s := New()
		var ref refQueue
		var gotTrace, refTrace []refEvent
		seq := 0
		horizon := func() Duration {
			switch rng.Intn(6) {
			case 0:
				return Duration(rng.Int63n(256))
			case 1:
				return Duration(rng.Int63n(int64(WheelLevelSpan(0))))
			case 2:
				return Duration(rng.Int63n(int64(WheelLevelSpan(1))))
			case 3:
				return Duration(rng.Int63n(int64(WheelLevelSpan(2))))
			case 4:
				return Duration(rng.Int63n(int64(WheelLevelSpan(3))))
			default:
				return Duration(rng.Int63n(3 * int64(WheelLevelSpan(3))))
			}
		}
		n := 100 + rng.Intn(200)
		for i := 0; i < n; i++ {
			at := Time(horizon())
			mySeq := seq
			seq++
			s.At(at, func() { gotTrace = append(gotTrace, refEvent{at, mySeq}) })
			heap.Push(&ref, refEvent{at, mySeq})
		}
		deadlines := make([]Time, 10)
		for i := range deadlines {
			deadlines[i] = Time(horizon())
		}
		sort.Slice(deadlines, func(i, j int) bool { return deadlines[i] < deadlines[j] })
		for _, d := range deadlines {
			s.RunUntil(d)
			for ref.Len() > 0 && ref[0].at <= d {
				refTrace = append(refTrace, heap.Pop(&ref).(refEvent))
			}
		}
		s.Run()
		for ref.Len() > 0 {
			refTrace = append(refTrace, heap.Pop(&ref).(refEvent))
		}
		if len(gotTrace) != len(refTrace) {
			t.Fatalf("trial %d: wheel ran %d events, reference %d", trial, len(gotTrace), len(refTrace))
		}
		for i := range gotTrace {
			if gotTrace[i] != refTrace[i] {
				t.Fatalf("trial %d: divergence at %d: wheel=%+v ref=%+v", trial, i, gotTrace[i], refTrace[i])
			}
		}
	}
}

// TestWheelCursorBucketCascade is the regression test for the stranded
// cursor-bucket bug: an event parked at level 1 whose bucket the base enters
// via level-0 drains must run before a younger level-0 event with a later
// timestamp. Without the cascade-before-scan step in advance, F (scheduled
// after base crossed into E's bucket) fired first and E ran late.
func TestWheelCursorBucketCascade(t *testing.T) {
	s := New()
	var trace []Time
	const eAt = Time(70_000) // level-1 bucket 1: beyond the first 65.536ns block
	s.At(eAt, func() { trace = append(trace, eAt) })
	var chain func()
	chain = func() {
		trace = append(trace, s.Now())
		if s.Now() < 66_000 {
			s.After(256, chain)
			return
		}
		// base has crossed into E's level-1 bucket; this younger, later
		// event must not overtake E.
		fAt := Time(70_100)
		s.At(fAt, func() { trace = append(trace, fAt) })
	}
	s.At(0, chain)
	s.Run()
	if !sort.SliceIsSorted(trace, func(i, j int) bool { return trace[i] < trace[j] }) {
		t.Fatalf("execution trace out of order: %v", trace)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events stranded after Run", s.Pending())
	}
}

// TestWheelOverflowBlockCrossing is the overflow twin of the cursor-bucket
// regression: an overflow event whose 2^40-ps block the base enters via
// wheel activity must be promoted before younger wheel events with later
// timestamps execute.
func TestWheelOverflowBlockCrossing(t *testing.T) {
	s := New()
	var trace []Time
	topBlock := Time(1) << 40
	eAt := topBlock + 100 // beyond the first top-level block: overflow
	s.At(eAt, func() { trace = append(trace, eAt) })
	step := Duration(1) << 32
	var chain func()
	chain = func() {
		trace = append(trace, s.Now())
		if s.Now() < topBlock+Time(2*step) {
			s.After(step, chain)
		}
	}
	s.At(0, chain)
	s.Run()
	if !sort.SliceIsSorted(trace, func(i, j int) bool { return trace[i] < trace[j] }) {
		t.Fatalf("execution trace out of order around the overflow block boundary: %v", trace)
	}
	found := false
	for _, at := range trace {
		if at == eAt {
			found = true
		}
	}
	if !found || s.Pending() != 0 {
		t.Fatalf("overflow event ran=%v, pending=%d; want ran with none stranded", found, s.Pending())
	}
}

// TestWheelCancelHeavy interleaves cancellation with execution: every
// surviving callback cancels a sibling scheduled after it. The survivors
// must still run in exact (at, seq) order and the pool must stay balanced.
func TestWheelCancelHeavy(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 77))
		s := New()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		var handles []*Event
		ran := 0
		n := 500
		for i := 0; i < n; i++ {
			at := Time(rng.Int63n(3 * int64(WheelLevelSpan(1))))
			mySeq := i
			idx := i
			e := s.At(at, func() {
				ran++
				got = append(got, rec{at, mySeq})
				// Cancel a random later handle — possibly one already run
				// or cancelled, which must be a harmless no-op.
				if idx+1 < len(handles) {
					s.Cancel(handles[idx+1+rng.Intn(len(handles)-idx-1)])
				}
			})
			handles = append(handles, e)
		}
		// Cancel a third up-front too.
		for i := 0; i < n/3; i++ {
			s.Cancel(handles[rng.Intn(n)])
		}
		s.Run()
		if s.Pending() != 0 {
			t.Fatalf("trial %d: %d events stranded", trial, s.Pending())
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].at != got[j].at {
				return got[i].at < got[j].at
			}
			return got[i].seq < got[j].seq
		}) {
			t.Fatalf("trial %d: cancel-heavy run broke (at, seq) order", trial)
		}
		if len(s.free) != n {
			t.Fatalf("trial %d: pool holds %d events after %d scheduled; leak or double-recycle", trial, len(s.free), n)
		}
	}
}

// TestWheelSameTimestampFIFOAcrossBuckets schedules events for one
// timestamp from very different distances — due heap, every wheel level,
// and overflow — so they are filed into different containers, then checks
// they still fire in scheduling order.
func TestWheelSameTimestampFIFOAcrossBuckets(t *testing.T) {
	s := New()
	target := Time(2)<<40 + 12345 // starts out beyond the wheel horizon
	var order []int
	// Scheduled while target is in overflow range.
	s.At(target, func() { order = append(order, 0) })
	hop := 0
	var approach func()
	approach = func() {
		// Each hop halves the remaining distance, so successive schedules
		// of the same target land at progressively lower wheel levels.
		h := hop
		s.At(target, func() { order = append(order, 1+h) })
		hop++
		remaining := target.Sub(s.Now())
		if remaining > 512 {
			s.After(remaining/2, approach)
		}
	}
	s.At(0, approach)
	s.Run()
	if len(order) < 6 {
		t.Fatalf("expected at least 6 same-timestamp events, got %d", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of scheduling order: %v", order)
		}
	}
}

// TestRunUntilOnBucketEdge pins RunUntil semantics when the deadline sits
// exactly on a level-0 block boundary: events at the deadline run, events
// one picosecond later stay queued, and the clock parks on the deadline.
func TestRunUntilOnBucketEdge(t *testing.T) {
	s := New()
	edge := Time(WheelLevelSpan(0)) // 65.536ns: bucket-255/bucket-0 boundary
	var ran []Time
	for _, at := range []Time{edge - 1, edge, edge + 1} {
		at := at
		s.At(at, func() { ran = append(ran, at) })
	}
	s.RunUntil(edge)
	if len(ran) != 2 || ran[0] != edge-1 || ran[1] != edge {
		t.Fatalf("RunUntil(edge) ran %v, want [edge-1 edge]", ran)
	}
	if s.Now() != edge {
		t.Fatalf("clock parked at %v, want %v", s.Now(), edge)
	}
	if s.Pending() != 1 {
		t.Fatalf("%d events pending, want 1 (the one past the deadline)", s.Pending())
	}
	s.Run()
	if len(ran) != 3 || ran[2] != edge+1 {
		t.Fatalf("drain after deadline ran %v", ran)
	}
}
