package netsim

import (
	"fmt"
	"testing"
)

// Differential harness. Nodes bounce order-sensitive messages at quantized
// timestamps, so same-due-time collisions between remote arrivals and locally
// scheduled events are common — exactly the merge the (at, schedAt, seq)
// comparator must get right.
//
// In aligned mode, every node's event instants sit on a distinct picosecond
// residue class (mod 1 ns), mirroring the real testbed, where per-link
// physics make it essentially impossible for two different LPs to schedule
// with identical (at, schedAt): due-time ties stay frequent, but schedAt
// always identifies a unique origin LP, and the engine must match a
// sequential single-Sim run bit for bit. Unaligned mode allows genuine
// cross-LP (at, schedAt) ties; there the engine promises a deterministic
// source-rank order, not the sequential interleave, so the assertion is
// worker-count invariance.
const (
	nodeLA     = 100 * Nanosecond
	nodeTTL    = 7
	nodeWindow = 50 * Microsecond
)

type testNode struct {
	id    int
	sim   *Sim
	next  []*testNode // forwarding targets (ring: exactly one)
	rng   *RNG
	align bool
	post  func(src, dst *testNode, at Time, val uint64, ttl int)

	state uint64
	log   []int64 // (at, val) pairs in execution order
}

// target places a raw schedule time onto dst's residue class (aligned mode).
// The shift is under 1 ns either way; callers leave >= 1 ns of slack above
// any lookahead bound.
func (n *testNode) target(raw Time, dstID int) Time {
	if !n.align {
		return raw
	}
	const class = Time(Nanosecond)
	at := raw - raw%class + Time(dstID)
	if at < raw {
		at += class
	}
	return at
}

type testMsg struct {
	dst *testNode
	val uint64
	ttl int
}

func runTestMsg(a any) {
	m := a.(*testMsg)
	m.dst.receive(m.val, m.ttl)
}

func (n *testNode) receive(val uint64, ttl int) {
	now := n.sim.Now()
	n.state = n.state*1000003 + val // order-sensitive fold
	n.log = append(n.log, int64(now), int64(val))
	if ttl <= 0 {
		return
	}
	// Forward 1-2 messages onward; quantized delays make same-due-time
	// arrivals at the destination likely.
	fanout := 1 + int(n.rng.Uint64()%2)
	for i := 0; i < fanout; i++ {
		dst := n.next[int(n.rng.Uint64()%uint64(len(n.next)))]
		delay := nodeLA + Duration(1+n.rng.Uint64()%4)*50*Nanosecond
		n.post(n, dst, n.target(now.Add(delay), dst.id), n.state^uint64(ttl), ttl-1)
	}
	// Half the time, also schedule a local echo at a quantized offset that
	// can collide with remote arrivals (including offsets below the channel
	// lookahead — local events are not lookahead-bound).
	if n.rng.Uint64()%2 == 0 {
		delay := Duration(1+n.rng.Uint64()%6) * 50 * Nanosecond
		n.sim.AtCall(n.target(now.Add(delay), n.id), runTestMsg,
			&testMsg{dst: n, val: n.state ^ 0xeeee, ttl: ttl - 1})
	}
}

// buildNodes wires numNodes nodes. With eng == nil all nodes share one
// sequential Sim; otherwise each node is its own LP. chords=false builds a
// ring (unique sender per destination); chords=true adds extra edges so
// destinations merge traffic from several senders. align places each node's
// instants on its own ps residue class (see the harness comment).
func buildNodes(eng *Engine, seed int64, numNodes int, chords, align bool) []*testNode {
	var shared *Sim
	if eng == nil {
		shared = New()
	}
	nodes := make([]*testNode, numNodes)
	for i := range nodes {
		s := shared
		if eng != nil {
			s = eng.NewLP(fmt.Sprintf("node%d", i))
		}
		nodes[i] = &testNode{
			id:    i,
			sim:   s,
			rng:   NewRNG(seed, fmt.Sprintf("node%d", i)),
			align: align,
		}
	}
	topo := NewRNG(seed, "topology")
	for i, n := range nodes {
		for j, m := range nodes {
			if i == j {
				continue
			}
			ringEdge := j == (i+1)%numNodes
			if !ringEdge && (!chords || topo.Uint64()%2 == 0) {
				continue
			}
			n.next = append(n.next, m)
			if eng != nil {
				eng.Channel(n.sim, m.sim, nodeLA)
			}
		}
	}
	for _, n := range nodes {
		if eng == nil {
			n.post = func(src, dst *testNode, at Time, val uint64, ttl int) {
				src.sim.AtCall(at, runTestMsg, &testMsg{dst: dst, val: val, ttl: ttl})
			}
		} else {
			n.post = func(src, dst *testNode, at Time, val uint64, ttl int) {
				src.sim.PostRemote(dst.sim, at, src.sim.Now(), runTestMsg,
					&testMsg{dst: dst, val: val, ttl: ttl})
			}
		}
	}
	// Seed traffic: a few quantized-time injections per node.
	for _, n := range nodes {
		for k := 0; k < 3; k++ {
			at := Time(1+n.rng.Uint64()%20) * Time(Microsecond)
			n.sim.AtCall(n.target(at, n.id), runTestMsg,
				&testMsg{dst: n, val: uint64(n.id*100 + k), ttl: nodeTTL})
		}
	}
	return nodes
}

func compareNodes(t *testing.T, label string, want, got []*testNode) {
	t.Helper()
	for i := range want {
		if want[i].state != got[i].state {
			t.Errorf("%s: node %d state = %#x, want %#x", label, i, got[i].state, want[i].state)
		}
		if len(want[i].log) != len(got[i].log) {
			t.Fatalf("%s: node %d log length = %d, want %d",
				label, i, len(got[i].log)/2, len(want[i].log)/2)
		}
		for k := range want[i].log {
			if want[i].log[k] != got[i].log[k] {
				t.Fatalf("%s: node %d log entry %d = %d, want %d",
					label, i, k/2, got[i].log[k], want[i].log[k])
			}
		}
	}
}

func TestEngineMatchesSequential(t *testing.T) {
	for _, chords := range []bool{false, true} {
		for _, seed := range []int64{1, 7, 42} {
			for _, numNodes := range []int{2, 5, 9} {
				ref := buildNodes(nil, seed, numNodes, chords, true)
				ref[0].sim.RunUntil(Time(nodeWindow))
				total := 0
				for _, n := range ref {
					total += len(n.log) / 2
				}
				if total == 0 {
					t.Fatalf("seed %d n=%d: reference run executed nothing", seed, numNodes)
				}
				for _, workers := range []int{1, 2, 4, 8} {
					eng := NewEngine(workers)
					nodes := buildNodes(eng, seed, numNodes, chords, true)
					eng.RunUntil(Time(nodeWindow))
					compareNodes(t,
						fmt.Sprintf("chords=%v seed=%d n=%d workers=%d", chords, seed, numNodes, workers),
						ref, nodes)
					for _, n := range nodes {
						if n.sim.Now() != Time(nodeWindow) {
							t.Fatalf("LP %d clock = %v, want %v", n.id, n.sim.Now(), Time(nodeWindow))
						}
					}
				}
			}
		}
	}
}

// Unaligned chords produce genuine cross-LP (at, schedAt) ties, where the
// engine promises the deterministic source-rank order rather than the
// sequential interleave: results must not depend on the worker count.
func TestEngineWorkerCountInvariant(t *testing.T) {
	for _, seed := range []int64{5, 19} {
		refEng := NewEngine(1)
		ref := buildNodes(refEng, seed, 8, true, false)
		refEng.RunUntil(Time(nodeWindow))
		for _, workers := range []int{2, 4, 8} {
			eng := NewEngine(workers)
			nodes := buildNodes(eng, seed, 8, true, false)
			eng.RunUntil(Time(nodeWindow))
			compareNodes(t, fmt.Sprintf("chords seed=%d workers=%d", seed, workers), ref, nodes)
		}
	}
}

// A tiny outbox cap forces the flow-control pause path (staged == cap) on
// nearly every epoch; results must still match the sequential reference.
func TestEngineSmallOutboxCap(t *testing.T) {
	const seed, numNodes = 3, 6
	ref := buildNodes(nil, seed, numNodes, false, true)
	ref[0].sim.RunUntil(Time(nodeWindow))
	eng := NewEngine(4)
	eng.outboxCap = 2
	nodes := buildNodes(eng, seed, numNodes, false, true)
	eng.RunUntil(Time(nodeWindow))
	compareNodes(t, "outboxCap=2", ref, nodes)
}

// Repeated RunUntil calls must compose: two half-window runs equal one
// full-window run.
func TestEngineRunUntilComposes(t *testing.T) {
	const seed, numNodes = 11, 5
	ref := buildNodes(nil, seed, numNodes, false, true)
	ref[0].sim.RunUntil(Time(nodeWindow))
	eng := NewEngine(4)
	nodes := buildNodes(eng, seed, numNodes, false, true)
	eng.RunUntil(Time(nodeWindow) / 2)
	eng.RunFor(nodeWindow / 2)
	compareNodes(t, "split run", ref, nodes)
	if eng.Now() != Time(nodeWindow) {
		t.Fatalf("engine clock = %v, want %v", eng.Now(), Time(nodeWindow))
	}
}

// TestEngineCrossRunBoundaryMessage pins the REVIEW repro: a cross-LP
// message staged beyond one RunUntil's deadline must survive into — and
// execute during — a later RunUntil, even when the intervening runs find
// every wheel empty (the warmup+window double-RunFor composition the
// experiment driver uses).
func TestEngineCrossRunBoundaryMessage(t *testing.T) {
	eng := NewEngine(2)
	a := eng.NewLP("a")
	b := eng.NewLP("b")
	eng.Channel(a, b, 50*Nanosecond)
	fired := false
	var at Time
	a.At(Time(100*Nanosecond), func() {
		a.PostRemote(b, Time(200*Nanosecond), a.Now(), func(any) {
			fired, at = true, b.Now()
		}, nil)
	})
	eng.RunUntil(Time(150 * Nanosecond))
	if fired {
		t.Fatal("message executed before its due time")
	}
	// A second run still short of the due time must neither run nor drop it.
	eng.RunUntil(Time(170 * Nanosecond))
	if fired {
		t.Fatal("message executed before its due time")
	}
	eng.RunUntil(Time(300 * Nanosecond))
	if !fired {
		t.Fatal("message staged across RunUntil boundaries was dropped")
	}
	if at != Time(200*Nanosecond) {
		t.Fatalf("message executed at %v, want 200ns", at)
	}
}

// A PostRemote issued between runs (outside any epoch) sits in the source
// outbox; the next RunUntil must route it even if every wheel is quiet.
func TestEnginePostBetweenRuns(t *testing.T) {
	eng := NewEngine(2)
	a := eng.NewLP("a")
	b := eng.NewLP("b")
	eng.Channel(a, b, 50*Nanosecond)
	eng.RunUntil(Time(100 * Nanosecond)) // seals and idles
	fired := false
	a.PostRemote(b, Time(400*Nanosecond), a.Now(), func(any) { fired = true }, nil)
	eng.RunUntil(Time(500 * Nanosecond))
	if !fired {
		t.Fatal("message posted between runs was dropped")
	}
}

// RunUntil(MaxTime) must terminate: the deadline+1 horizon cap would
// overflow to a negative horizon and starve every LP forever.
func TestEngineRunUntilMaxTime(t *testing.T) {
	eng := NewEngine(2)
	a := eng.NewLP("a")
	b := eng.NewLP("b")
	eng.Channel(a, b, 50*Nanosecond)
	fired := false
	a.At(Time(100*Nanosecond), func() {
		a.PostRemote(b, Time(200*Nanosecond), a.Now(), func(any) { fired = true }, nil)
	})
	eng.RunUntil(MaxTime)
	if !fired {
		t.Fatal("event not executed by RunUntil(MaxTime)")
	}
	if a.Now() != MaxTime || b.Now() != MaxTime {
		t.Fatalf("clocks = %v, %v; want MaxTime", a.Now(), b.Now())
	}
}

// PostRemotePre semantics: the early side effect runs exactly once, and only
// when a run boundary lands in [preAt, at); a message that executes normally
// never sees its pre hook fire.
func TestEnginePostRemotePre(t *testing.T) {
	build := func() (*Engine, *Sim, *Sim) {
		eng := NewEngine(2)
		a := eng.NewLP("a")
		b := eng.NewLP("b")
		eng.Channel(a, b, 50*Nanosecond)
		return eng, a, b
	}
	post := func(a, b *Sim, preRuns, mainRuns *int) {
		a.At(Time(100*Nanosecond), func() {
			a.PostRemotePre(b, Time(300*Nanosecond), Time(200*Nanosecond), Time(200*Nanosecond),
				func(any) { *preRuns++ }, func(any) { *mainRuns++ }, nil)
		})
	}

	// Boundary inside [preAt, at): flush once, then execute in a later run.
	eng, a, b := build()
	var preRuns, mainRuns int
	post(a, b, &preRuns, &mainRuns)
	eng.RunUntil(Time(150 * Nanosecond)) // before preAt: nothing
	if preRuns != 0 || mainRuns != 0 {
		t.Fatalf("after 150ns: pre=%d main=%d, want 0,0", preRuns, mainRuns)
	}
	eng.RunUntil(Time(250 * Nanosecond)) // preAt <= 250 < at: flush
	if preRuns != 1 || mainRuns != 0 {
		t.Fatalf("after 250ns: pre=%d main=%d, want 1,0", preRuns, mainRuns)
	}
	eng.RunUntil(Time(260 * Nanosecond)) // already flushed: not again
	eng.RunUntil(Time(400 * Nanosecond)) // main event executes
	if preRuns != 1 || mainRuns != 1 {
		t.Fatalf("after 400ns: pre=%d main=%d, want 1,1", preRuns, mainRuns)
	}

	// No boundary inside the window: pre never fires.
	eng, a, b = build()
	preRuns, mainRuns = 0, 0
	post(a, b, &preRuns, &mainRuns)
	eng.RunUntil(Time(400 * Nanosecond))
	if preRuns != 0 || mainRuns != 1 {
		t.Fatalf("single run: pre=%d main=%d, want 0,1", preRuns, mainRuns)
	}
}

func TestEngineIdleAdvancesClock(t *testing.T) {
	eng := NewEngine(2)
	a := eng.NewLP("a")
	b := eng.NewLP("b")
	eng.Channel(a, b, Microsecond)
	eng.RunUntil(Time(Millisecond))
	if a.Now() != Time(Millisecond) || b.Now() != Time(Millisecond) {
		t.Fatalf("idle LP clocks = %v, %v; want %v", a.Now(), b.Now(), Time(Millisecond))
	}
}

// An idle intermediate LP must still bound its successors: a -> b -> c with b
// idle may deliver to c no earlier than la(a,b)+la(b,c) after a's next event,
// and c must not run past that transitively-derived horizon. The relay makes
// that chain concrete; missing ET relaxation would panic filing c's inbox.
func TestEngineTransitiveLookahead(t *testing.T) {
	eng := NewEngine(4)
	a := eng.NewLP("a")
	b := eng.NewLP("b")
	c := eng.NewLP("c")
	eng.Channel(a, b, 10*Nanosecond)
	eng.Channel(b, c, 10*Nanosecond)
	// c gets plenty of cheap local work tempting it to run far ahead.
	cHits := 0
	for i := 1; i <= 1000; i++ {
		at := Time(i) * Time(10*Nanosecond)
		c.At(at, func() { cHits++ })
	}
	var relayed, received Time
	a.At(Time(100*Nanosecond), func() {
		a.PostRemote(b, Time(110*Nanosecond), a.Now(), func(any) {
			relayed = b.Now()
			b.PostRemote(c, Time(120*Nanosecond), b.Now(), func(any) {
				received = c.Now()
			}, nil)
		}, nil)
	})
	eng.RunUntil(Time(10 * Microsecond))
	if relayed != Time(110*Nanosecond) || received != Time(120*Nanosecond) {
		t.Fatalf("relay times = %v, %v; want 110ns, 120ns", relayed, received)
	}
	if cHits != 1000 {
		t.Fatalf("c executed %d local events, want 1000", cHits)
	}
}

func mustPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", label)
		}
	}()
	fn()
}

func TestEngineValidation(t *testing.T) {
	eng := NewEngine(2)
	a := eng.NewLP("a")
	b := eng.NewLP("b")
	c := eng.NewLP("c")
	standalone := New()

	mustPanic(t, "non-positive lookahead", func() { eng.Channel(a, b, 0) })
	mustPanic(t, "same-LP channel", func() { eng.Channel(a, a, Nanosecond) })
	mustPanic(t, "foreign sim", func() { eng.Channel(a, standalone, Nanosecond) })

	eng.Channel(a, b, Microsecond)
	eng.RunUntil(Time(Nanosecond)) // seals

	mustPanic(t, "NewLP after seal", func() { eng.NewLP("late") })
	mustPanic(t, "Channel after seal", func() { eng.Channel(a, c, Microsecond) })
	mustPanic(t, "post without channel", func() {
		a.PostRemote(c, Time(10*Microsecond), 0, runTestMsg, nil)
	})
	mustPanic(t, "lookahead violation", func() {
		a.PostRemote(b, Time(Microsecond), 0, runTestMsg, nil)
	})
	mustPanic(t, "standalone post", func() {
		standalone.PostRemote(b, Time(10*Microsecond), 0, runTestMsg, nil)
	})
}
