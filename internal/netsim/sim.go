// Package netsim provides a deterministic discrete-event simulator with a
// picosecond-resolution virtual clock. Every component in the reproduction
// (switching ASIC, links, devices under test, software packet generators)
// advances time exclusively through this scheduler, so experiments are
// reproducible bit-for-bit across runs and machines.
//
// Picosecond resolution matters: HyperTester's rate-control accuracy story
// lives at the 6.4 ns granularity of template-packet arrivals, and the
// paper reports jitters under 5 ns RMSE. An integer-nanosecond clock would
// quantize exactly the effects under study.
package netsim

import (
	"fmt"
	"math"
)

// SchedulerImpl tags the active scheduler implementation, recorded into
// BENCH_results.json so the bench trajectory is attributable across PRs.
const SchedulerImpl = "timing-wheel/v1"

// Time is a point in virtual time, in picoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Ns converts (possibly fractional) nanoseconds to a Duration, rounding to
// the nearest picosecond.
func Ns(ns float64) Duration { return Duration(math.Round(ns * 1e3)) }

// Nanoseconds returns d as floating-point nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / 1e3 }

// Seconds returns d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e12 }

func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%gns", float64(d)/1e3)
	case d < Millisecond:
		return fmt.Sprintf("%gus", float64(d)/1e6)
	case d < Second:
		return fmt.Sprintf("%gms", float64(d)/1e9)
	default:
		return fmt.Sprintf("%gs", float64(d)/1e12)
	}
}

// MaxTime is the largest representable virtual time (~106 days).
const MaxTime = Time(math.MaxInt64)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / 1e12 }

// Nanoseconds returns t as floating-point nanoseconds since start.
func (t Time) Nanoseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. Callbacks run sequentially in timestamp
// order; ties break in scheduling order, which keeps runs deterministic.
//
// Events are pooled: once an event has executed or been cancelled, the Sim
// recycles it for a future schedule. A caller may therefore retain the
// *Event returned by At/After only until the callback runs (to Cancel it);
// holding it past execution and cancelling later may cancel an unrelated,
// newer event.
type Event struct {
	at  Time
	seq uint64
	// schedAt is the virtual time the event was scheduled at (the clock of
	// the scheduling Sim for local events; the sender-side completion time
	// for cross-LP messages). It is an ordering key only — see eventBefore.
	schedAt Time
	// Exactly one of fn / fn2 is set. fn2+arg is the allocation-free form
	// used by AtCall; fn is the closure form used by At.
	fn   func()
	fn2  func(any)
	arg  any
	done bool // cancelled or executed
	// Location inside the scheduler, for O(1) Cancel: which container
	// (whereDue / whereWheel / whereOverflow), the wheel coordinates and
	// list links when bucketed, and the heap position otherwise. Buckets
	// are intrusive doubly-linked lists, so filing and unlinking events
	// never touches the heap allocator.
	where      int8
	level      uint8
	bucket     uint8
	idx        int32
	next, prev *Event
}

// Time reports when the event is due.
func (e *Event) Time() Time { return e.at }

// Sim owns the virtual clock and the pending-event timing wheel (see
// wheel.go). It is not safe for concurrent use: the simulation is
// single-threaded by design, mirroring the determinism of the hardware it
// stands in for.
type Sim struct {
	now     Time
	seq     uint64
	stopped bool
	// free is the recycled-event pool. Steady-state scheduling pops from
	// here instead of allocating, so a schedule/run/recycle loop is
	// allocation-free once the pool has warmed up.
	free []*Event
	// Executed counts events that have run, for loop-detection in tests.
	Executed uint64

	// Timing-wheel state. base is the drain frontier: every event in the
	// wheel or overflow is at >= base; everything earlier already sits in
	// the due heap, ordered by (at, seq).
	base     Time
	due      eventHeap
	overflow eventHeap
	levels   [WheelLevels][WheelBuckets]*Event
	occ      [WheelLevels][occWords]uint64
	pending  int

	// lp binds this Sim to a logical process of a parallel Engine; nil for
	// a standalone (sequential) simulation.
	lp *lpState
}

// New returns an empty simulation positioned at time zero.
func New() *Sim {
	return &Sim{due: eventHeap{tag: whereDue}, overflow: eventHeap{tag: whereOverflow}}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// alloc pops a recycled event or allocates a fresh one.
func (s *Sim) alloc(at Time) *Event {
	if at < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %v before now %v", at, s.now))
	}
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.done = false
	} else {
		e = &Event{}
	}
	e.at, e.seq, e.schedAt, e.where = at, s.seq, s.now, whereNone
	return e
}

// schedule files a freshly allocated event into the wheel.
func (s *Sim) schedule(e *Event) {
	s.pending++
	s.place(e)
}

// recycle returns an executed or cancelled event to the pool, dropping its
// callback references so they can be collected.
func (s *Sim) recycle(e *Event) {
	e.fn, e.fn2, e.arg = nil, nil, nil
	s.free = append(s.free, e)
}

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it is always a component bug, never a recoverable condition.
func (s *Sim) At(at Time, fn func()) *Event {
	e := s.alloc(at)
	e.fn = fn
	s.schedule(e)
	return e
}

// AtCall schedules fn(arg) at absolute time at. Unlike At, it needs no
// closure: callers pass a static function plus a (typically pooled) argument,
// so steady-state scheduling performs zero heap allocations. Passing a
// pointer as arg does not allocate.
func (s *Sim) AtCall(at Time, fn func(any), arg any) *Event {
	e := s.alloc(at)
	e.fn2, e.arg = fn, arg
	s.schedule(e)
	return e
}

// After schedules fn to run d from now. Negative d panics via At.
func (s *Sim) After(d Duration, fn func()) *Event { return s.At(s.now.Add(d), fn) }

// AfterCall schedules fn(arg) to run d from now, without closure allocation.
func (s *Sim) AfterCall(d Duration, fn func(any), arg any) *Event {
	return s.AtCall(s.now.Add(d), fn, arg)
}

// Cancel removes a pending event. Cancelling an already-run or already-
// cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.done || e.where == whereNone {
		return
	}
	s.unlink(e)
	s.pending--
	e.done = true
	s.recycle(e)
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return s.pending }

// Stop makes the currently running Run/RunUntil return after the current
// event completes. Pending events stay queued.
func (s *Sim) Stop() { s.stopped = true }

// step runs the earliest pending event. It reports false when the queue is
// empty.
func (s *Sim) step() bool {
	if s.due.len() == 0 && !s.advance() {
		return false
	}
	e := s.due.popMin()
	s.pending--
	s.now = e.at
	e.done = true
	s.Executed++
	if e.fn2 != nil {
		fn, arg := e.fn2, e.arg
		s.recycle(e)
		fn(arg)
	} else {
		fn := e.fn
		s.recycle(e)
		fn()
	}
	return true
}

// Run executes events until the queue drains or Stop is called.
func (s *Sim) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline remain queued.
func (s *Sim) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		if e := s.peek(); e == nil || e.at > deadline {
			break
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor is RunUntil(Now()+d).
func (s *Sim) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }
