package netsim

import (
	"testing"

	"github.com/hypertester/hypertester/internal/raceflag"
)

// BenchmarkSimSteadyState measures the per-event cost of the scheduler's
// steady state: one pending event that, when it fires, schedules its
// successor through the allocation-free AtCall path. This is the shape of
// every hot loop in the reproduction (recirculating templates, port
// serialization chains) and must run at 0 allocs/op.
func BenchmarkSimSteadyState(b *testing.B) {
	s := New()
	n := 0
	var step func(any)
	step = func(arg any) {
		n++
		if n < b.N {
			s.AtCall(s.Now().Add(10), step, arg)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.AtCall(0, step, nil)
	s.Run()
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkSimSteadyStateClosure is the same loop through the legacy
// closure-based After API, for comparison (pays one closure per event).
func BenchmarkSimSteadyStateClosure(b *testing.B) {
	s := New()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			s.After(10, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.After(0, step)
	s.Run()
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// TestSteadyStateZeroAllocs pins the zero-allocation contract of the AtCall
// hot path: once the event pool is warm, a schedule/run/recycle cycle must
// not touch the heap.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; the contract holds in non-race builds")
	}
	s := New()
	fire := func(any) {}
	// Warm the pool.
	for i := 0; i < 64; i++ {
		s.AtCall(s.Now(), fire, nil)
	}
	s.Run()
	avg := testing.AllocsPerRun(1000, func() {
		s.AtCall(s.Now(), fire, nil)
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state AtCall cycle allocates %v allocs/op, want 0", avg)
	}
}

// TestEventPoolRecycles verifies executed and cancelled events return to the
// pool and that cancellation before execution still works after recycling.
func TestEventPoolRecycles(t *testing.T) {
	s := New()
	ran := 0
	e := s.AtCall(5, func(any) { ran++ }, nil)
	s.Cancel(e)
	if len(s.free) != 1 {
		t.Fatalf("cancelled event not recycled: pool=%d", len(s.free))
	}
	e2 := s.AtCall(5, func(any) { ran++ }, nil)
	if e2 != e {
		t.Fatalf("pool did not reuse the cancelled event")
	}
	s.Run()
	if ran != 1 {
		t.Fatalf("ran=%d, want 1", ran)
	}
	if len(s.free) != 1 {
		t.Fatalf("executed event not recycled: pool=%d", len(s.free))
	}
	// Cancelling the stale handle of an already-recycled event is a no-op
	// while it sits in the pool.
	s.Cancel(e2)
	if len(s.free) != 1 {
		t.Fatalf("stale cancel corrupted the pool: pool=%d", len(s.free))
	}
}
