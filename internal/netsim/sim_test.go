package netsim

import (
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	s := New()
	s.Run()
	if s.Now() != 0 {
		t.Fatalf("empty run moved clock to %v", s.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("final time = %v, want 30", s.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-timestamp events reordered: got[%d]=%d", i, got[i])
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	s := New()
	var inner Time
	s.After(100*Nanosecond, func() {
		s.After(50*Nanosecond, func() { inner = s.Now() })
	})
	s.Run()
	if inner != Time(150*Nanosecond) {
		t.Fatalf("nested After fired at %v, want 150ns", inner)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double-cancel is a no-op
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after cancel", s.Pending())
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []int
	events := make([]*Event, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		events = append(events, s.At(Time(i*10), func() { got = append(got, i) }))
	}
	s.Cancel(events[4])
	s.Cancel(events[7])
	s.Run()
	if len(got) != 8 {
		t.Fatalf("ran %d events, want 8", len(got))
	}
	for _, v := range got {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d ran", v)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var ran []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { ran = append(ran, at) })
	}
	s.RunUntil(25)
	if len(ran) != 2 {
		t.Fatalf("ran %d events by t=25, want 2", len(ran))
	}
	if s.Now() != 25 {
		t.Fatalf("clock = %v, want 25", s.Now())
	}
	s.RunUntil(100)
	if len(ran) != 4 {
		t.Fatalf("ran %d events total, want 4", len(ran))
	}
	if s.Now() != 100 {
		t.Fatalf("clock = %v, want 100", s.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New()
	fired := false
	s.At(25, func() { fired = true })
	s.RunUntil(25)
	if !fired {
		t.Fatal("event at the deadline did not fire")
	}
}

func TestStop(t *testing.T) {
	s := New()
	n := 0
	s.At(10, func() { n++; s.Stop() })
	s.At(20, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("ran %d events after Stop, want 1", n)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run() // resume
	if n != 2 {
		t.Fatalf("resume ran %d events total, want 2", n)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunFor(Millisecond)
	if s.Now() != Time(Millisecond) {
		t.Fatalf("clock = %v, want 1ms", s.Now())
	}
}

func TestTimeArith(t *testing.T) {
	a := Time(1000)
	if a.Add(500) != 1500 {
		t.Fatal("Add")
	}
	if a.Sub(400) != 600 {
		t.Fatal("Sub")
	}
	if Time(2e12).Seconds() != 2.0 {
		t.Fatal("Seconds")
	}
	if Ns(6.4) != 6400 {
		t.Fatalf("Ns(6.4) = %d, want 6400 ps", Ns(6.4))
	}
	if (2 * Microsecond).Nanoseconds() != 2000 {
		t.Fatal("Duration.Nanoseconds")
	}
}

// Property: for any set of schedule offsets, events execute in nondecreasing
// timestamp order and the clock never moves backwards.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		var times []Time
		for _, off := range offsets {
			at := Time(off)
			s.At(at, func() { times = append(times, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, "replicator")
	b := NewRNG(42, "replicator")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed,label) streams diverged")
		}
	}
	c := NewRNG(42, "editor")
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42, "replicator").Int63() != c.Int63() {
			same = false
			break
		}
		c = NewRNG(42, "editor") // reset both
	}
	_ = same // distinct labels *may* collide in theory; just ensure no panic
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(7, "jitter")
	for i := 0; i < 1000; i++ {
		j := r.Jitter(100 * Nanosecond)
		if j < -100*Nanosecond || j > 100*Nanosecond {
			t.Fatalf("jitter %v out of bounds", j)
		}
	}
	if r.Jitter(0) != 0 {
		t.Fatal("zero-spread jitter must be 0")
	}
}
