package netsim

import "math/bits"

// Observability accessors. These live in netsim (rather than internal/obs)
// because obs imports netsim for the Time type — the accessors expose the
// scheduler's internals as plain values so obs can wrap them in gauges
// without an import cycle. They are meant to be read between runs (or from
// snapshot gauges after a run); none are safe to call while an Engine epoch
// is executing on worker goroutines.

// WheelStats is a point-in-time occupancy snapshot of one Sim's scheduler.
type WheelStats struct {
	// Pending is the total number of queued events.
	Pending int
	// Due counts events already drained past the wheel frontier into the
	// (at, seq)-ordered due heap.
	Due int
	// Overflow counts events beyond the wheel's time span.
	Overflow int
	// Buckets counts occupied wheel buckets across all levels — the wheel's
	// working-set width.
	Buckets int
}

// WheelStats reports the scheduler's occupancy.
func (s *Sim) WheelStats() WheelStats {
	ws := WheelStats{Pending: s.pending, Due: s.due.len(), Overflow: s.overflow.len()}
	for l := 0; l < WheelLevels; l++ {
		for w := 0; w < occWords; w++ {
			ws.Buckets += bits.OnesCount64(s.occ[l][w])
		}
	}
	return ws
}

// LPStats is one logical process's lifetime counters.
type LPStats struct {
	Name string
	// Executed counts events run on the LP's Sim.
	Executed uint64
	// Pending is the LP's queued-event count (wheel + due + overflow).
	Pending int
	// Sent counts cross-LP messages this LP staged (PostRemote calls).
	Sent uint64
	// Received counts cross-LP messages routed into this LP's inbox.
	Received uint64
	// Stalls counts epochs in which the LP had an event due within the
	// deadline but could not run it because its horizon blocked it — the
	// engine's synchronization-wait measure.
	Stalls uint64
}

// EngineStats is the engine-wide view of a run.
type EngineStats struct {
	Workers int
	// Epochs counts synchronization windows executed across all RunUntil
	// calls.
	Epochs uint64
	// LBTS is the lower-bound timestamp of the last epoch (MaxTime if the
	// engine has not run).
	LBTS Time
	// LPs holds per-LP counters in rank order.
	LPs []LPStats
}

// Stats snapshots the engine's counters. Call only while the engine is
// quiescent (between RunUntil calls).
func (e *Engine) Stats() EngineStats {
	st := EngineStats{Workers: e.workers, Epochs: e.epochs, LBTS: e.lastLBTS}
	if st.LBTS == 0 && e.epochs == 0 {
		st.LBTS = MaxTime
	}
	st.LPs = make([]LPStats, len(e.lps))
	for i, lp := range e.lps {
		st.LPs[i] = LPStats{
			Name:     lp.name,
			Executed: lp.sim.Executed,
			Pending:  lp.sim.pending,
			Sent:     lp.sent,
			Received: lp.received,
			Stalls:   lp.stalls,
		}
	}
	return st
}
