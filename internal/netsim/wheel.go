package netsim

import "math/bits"

// Hierarchical timing wheel
//
// The scheduler keeps pending events in a four-level timing wheel plus a
// small overflow heap, replacing the former global binary heap. The wheel
// turns every schedule/fire pair into O(1) bucket operations for the event
// horizons that dominate the reproduction, so the simulator's per-event cost
// stays flat as experiments grow — the same property the Tofino it models
// gets from per-stage constant latency.
//
// Geometry is sized from the calibrated constants in internal/asic/timing.go
// (asserted by a pin test in that package, which imports these exported
// constants; netsim cannot import asic without a cycle):
//
//	level 0:  256 ps buckets,  span 65.536 ns — wire times and the minimum
//	          template inter-arrival (6.4 ns at 100 Gbps, §5.1) land ~25
//	          buckets ahead;
//	level 1:  65.536 ns buckets, span ~16.8 µs — the fixed pipeline latency
//	          (563.6 ns), the 570 ns recirculation RTT, replication delay
//	          (~390 ns) and Mpps-scale rate-control intervals;
//	level 2:  ~16.8 µs buckets, span ~4.29 ms — timer thresholds and quick
//	          measurement windows;
//	level 3:  ~4.29 ms buckets, span ~1.1 s — full-mode windows and digest
//	          drains.
//
// Events beyond the level-3 horizon wait in an overflow heap and are
// promoted wheel-ward one ~1.1 s block at a time.
//
// Determinism: buckets are unsorted; a bucket is drained into the due heap,
// which orders by (timestamp, schedule sequence). Ties on the timestamp
// therefore break in scheduling order — exactly the FIFO-within-timestamp
// contract the previous heap provided and the determinism tests pin.
const (
	// WheelBucketBits is log2 of the bucket count per level.
	WheelBucketBits = 8
	// WheelBuckets is the number of buckets per wheel level.
	WheelBuckets = 1 << WheelBucketBits
	// WheelLevels is the number of wheel levels below the overflow heap.
	WheelLevels = 4
	// WheelShift0 is log2 of the level-0 bucket width in picoseconds.
	WheelShift0 = 8

	wheelBucketMask = WheelBuckets - 1
	occWords        = WheelBuckets / 64
	// wheelTopShift is the horizon exponent of the whole wheel: events at
	// or beyond the current 2^wheelTopShift-ps block go to overflow.
	wheelTopShift = WheelShift0 + WheelBucketBits*WheelLevels
)

// wheelShift returns the bucket-width exponent of level k.
func wheelShift(k int) uint { return uint(WheelShift0 + WheelBucketBits*k) }

// WheelBucketWidth returns the bucket width of wheel level k.
func WheelBucketWidth(k int) Duration { return Duration(1) << wheelShift(k) }

// WheelLevelSpan returns the horizon covered by wheel level k.
func WheelLevelSpan(k int) Duration { return WheelBucketWidth(k) << WheelBucketBits }

// Event locations, for O(1) Cancel.
const (
	whereNone int8 = iota
	whereDue
	whereWheel
	whereOverflow
)

// eventHeap is a binary min-heap of events ordered by (at, seq), with the
// heap index mirrored into Event.idx so Cancel removes in O(log n). It backs
// both the due heap (the drained front of the wheel) and the overflow heap
// (events beyond the wheel horizon).
type eventHeap struct {
	tag int8 // whereDue or whereOverflow
	q   []*Event
}

// eventBefore orders events by (due time, schedule time, schedule sequence).
// For a single sequential Sim the schedule-time component is redundant —
// schedule sequence numbers already increase monotonically with the clock, so
// (at, seq) and (at, schedAt, seq) induce the same total order. It exists for
// the parallel engine (engine.go): a cross-LP message is filed into the
// destination wheel later (in wall-clock terms) than the sequential engine
// would have scheduled it, but it carries its original schedule timestamp, so
// comparing schedAt before seq slots it exactly where the sequential run
// would have — the heart of the bit-identical-merge guarantee.
func eventBefore(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	return a.seq < b.seq
}

func (h *eventHeap) len() int { return len(h.q) }

func (h *eventHeap) push(e *Event) {
	e.where = h.tag
	e.idx = int32(len(h.q))
	//htlint:ignore poolsafety heap slots are scheduler custody: popMin/remove nil the slot and step/Cancel recycle exactly once
	h.q = append(h.q, e)
	h.up(int(e.idx))
}

func (h *eventHeap) up(i int) {
	e := h.q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h.q[parent]
		if !eventBefore(e, p) {
			break
		}
		h.q[i] = p
		p.idx = int32(i)
		i = parent
	}
	h.q[i] = e
	e.idx = int32(i)
}

func (h *eventHeap) down(i int) {
	e := h.q[i]
	n := len(h.q)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventBefore(h.q[r], h.q[child]) {
			child = r
		}
		c := h.q[child]
		if !eventBefore(c, e) {
			break
		}
		h.q[i] = c
		c.idx = int32(i)
		i = child
	}
	h.q[i] = e
	e.idx = int32(i)
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *Event {
	e := h.q[0]
	last := len(h.q) - 1
	moved := h.q[last]
	h.q[last] = nil
	h.q = h.q[:last]
	if last > 0 {
		h.q[0] = moved
		moved.idx = 0
		h.down(0)
	}
	e.where = whereNone
	return e
}

// remove deletes the event at heap position i.
func (h *eventHeap) remove(i int) {
	e := h.q[i]
	last := len(h.q) - 1
	moved := h.q[last]
	h.q[last] = nil
	h.q = h.q[:last]
	if i < last {
		h.q[i] = moved
		moved.idx = int32(i)
		if eventBefore(moved, e) {
			h.up(i)
		} else {
			h.down(i)
		}
	}
	e.where = whereNone
}

// place files a queued event into the due heap, a wheel bucket, or the
// overflow heap, according to its distance from the wheel base. It does not
// touch the pending count — schedule/cascade/promotion share it.
func (s *Sim) place(e *Event) {
	if e.at < s.base {
		// Already inside the drained front: order by the due heap.
		s.due.push(e)
		return
	}
	at := uint64(e.at)
	base := uint64(s.base)
	for k := 0; k < WheelLevels; k++ {
		shift := wheelShift(k)
		// End of the aligned level-(k+1) block containing base: level k
		// only holds events inside it, so buckets never hold two laps.
		blockEnd := (base>>(shift+WheelBucketBits) + 1) << (shift + WheelBucketBits)
		if at < blockEnd {
			b := int(at>>shift) & wheelBucketMask
			// Push onto the bucket's intrusive list. Bucket order is
			// irrelevant: draining goes through the due heap, which
			// restores (at, seq) order.
			head := s.levels[k][b]
			e.where, e.level, e.bucket = whereWheel, uint8(k), uint8(b)
			e.prev, e.next = nil, head
			if head != nil {
				head.prev = e
			}
			s.levels[k][b] = e
			s.occ[k][b>>6] |= 1 << uint(b&63)
			return
		}
	}
	s.overflow.push(e)
}

// unlink removes a still-pending event from whichever container holds it.
func (s *Sim) unlink(e *Event) {
	switch e.where {
	case whereDue:
		s.due.remove(int(e.idx))
	case whereOverflow:
		s.overflow.remove(int(e.idx))
	case whereWheel:
		k, b := int(e.level), int(e.bucket)
		if e.prev != nil {
			e.prev.next = e.next
		} else {
			s.levels[k][b] = e.next
			if e.next == nil {
				s.occ[k][b>>6] &^= 1 << uint(b&63)
			}
		}
		if e.next != nil {
			e.next.prev = e.prev
		}
		e.next, e.prev = nil, nil
		e.where = whereNone
	}
}

// nextOccupied scans level k's occupancy bitmap for the first non-empty
// bucket at index >= from.
func (s *Sim) nextOccupied(k, from int) (int, bool) {
	w := from >> 6
	word := s.occ[k][w] & (^uint64(0) << uint(from&63))
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word), true
		}
		w++
		if w >= occWords {
			return 0, false
		}
		word = s.occ[k][w]
	}
}

// takeBucket detaches level k bucket b's event list, clearing its occupancy
// bit, and returns the head for draining or cascading.
func (s *Sim) takeBucket(k, b int) *Event {
	head := s.levels[k][b]
	s.levels[k][b] = nil
	s.occ[k][b>>6] &^= 1 << uint(b&63)
	return head
}

// advance refills the due heap from the wheel and overflow. It reports false
// when no event is pending anywhere. Advancing moves the wheel base (the
// drain frontier) but executes nothing, so it is safe to call from peeks.
func (s *Sim) advance() bool {
	for s.due.len() == 0 {
		if s.pending == 0 {
			return false
		}
		// base may have crossed a block boundary since events were filed, in
		// which case the overflow heap and the cursor buckets of higher
		// levels can hold events due before anything at level 0. Pull them
		// down first — overflow into the wheel, then each level's cursor
		// bucket top-down — so the level-0 scan below sees every candidate.
		if s.overflow.len() > 0 {
			blockEnd := Time((uint64(s.base)>>wheelTopShift + 1) << wheelTopShift)
			for s.overflow.len() > 0 && s.overflow.q[0].at < blockEnd {
				s.place(s.overflow.popMin())
			}
		}
		for k := WheelLevels - 1; k >= 1; k-- {
			ck := int(uint64(s.base)>>wheelShift(k)) & wheelBucketMask
			if s.occ[k][ck>>6]&(1<<uint(ck&63)) == 0 {
				continue
			}
			for e := s.takeBucket(k, ck); e != nil; {
				n := e.next
				e.next, e.prev = nil, nil
				s.place(e)
				e = n
			}
		}
		// Drain the next occupied level-0 bucket of the current block.
		c0 := int(uint64(s.base)>>WheelShift0) & wheelBucketMask
		if b, ok := s.nextOccupied(0, c0); ok {
			blockBase := uint64(s.base) &^ (1<<(WheelShift0+WheelBucketBits) - 1)
			s.base = Time(blockBase|uint64(b)<<WheelShift0) + 1<<WheelShift0
			for e := s.takeBucket(0, b); e != nil; {
				n := e.next
				e.next, e.prev = nil, nil
				s.due.push(e)
				e = n
			}
			continue
		}
		// Level 0 exhausted: cascade the next occupied higher-level bucket
		// down. Its window start becomes the new base, so the re-placed
		// events land at strictly lower levels.
		cascaded := false
		for k := 1; k < WheelLevels; k++ {
			shift := wheelShift(k)
			ck := int(uint64(s.base)>>shift) & wheelBucketMask
			b, ok := s.nextOccupied(k, ck)
			if !ok {
				continue
			}
			blockBase := uint64(s.base) &^ (1<<(shift+WheelBucketBits) - 1)
			if nb := Time(blockBase | uint64(b)<<shift); nb > s.base {
				s.base = nb
			}
			for e := s.takeBucket(k, b); e != nil; {
				n := e.next
				e.next, e.prev = nil, nil
				s.place(e)
				e = n
			}
			cascaded = true
			break
		}
		if cascaded {
			continue
		}
		// Wheel empty: promote the overflow block holding the earliest
		// far-future event.
		if s.overflow.len() == 0 {
			return false
		}
		minAt := uint64(s.overflow.q[0].at)
		if pb := Time(minAt &^ (1<<wheelTopShift - 1)); pb > s.base {
			s.base = pb
		}
		blockEnd := Time((minAt>>wheelTopShift + 1) << wheelTopShift)
		for s.overflow.len() > 0 && s.overflow.q[0].at < blockEnd {
			s.place(s.overflow.popMin())
		}
	}
	return true
}

// peek returns the earliest pending event without executing it, or nil.
func (s *Sim) peek() *Event {
	if s.due.len() == 0 && !s.advance() {
		return nil
	}
	return s.due.q[0]
}
