package netsim

import "math/rand"

// RNG is a deterministic random stream. Each component that needs randomness
// derives its own stream from the experiment seed plus a component label, so
// adding a new consumer never perturbs the draws seen by existing ones.
type RNG struct {
	*rand.Rand
}

// NewRNG derives a stream from a base seed and a component label using an
// FNV-1a mix. The same (seed, label) pair always yields the same stream.
func NewRNG(seed int64, label string) *RNG {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	h ^= uint64(seed)
	h *= prime64
	return &RNG{rand.New(rand.NewSource(int64(h)))}
}

// Jitter returns a duration drawn uniformly from [-spread, +spread].
func (r *RNG) Jitter(spread Duration) Duration {
	if spread <= 0 {
		return 0
	}
	return Duration(r.Int63n(int64(2*spread)+1) - int64(spread))
}
