// Package stats implements the statistics used by the paper's evaluation:
// the rate-control error metrics (MAE, MAD, RMSE over inter-departure
// times, §7.2), quantile/Q-Q machinery for the random-number-generation
// accuracy study (Fig. 13), and the inverse CDFs of the distributions
// HyperTester emulates on the data plane.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MAE returns the mean absolute error of xs against a target value:
// mean(|x_i - target|). The paper computes it on inter-departure times
// against the configured interval.
func MAE(xs []float64, target float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Abs(x - target)
	}
	return s / float64(len(xs))
}

// MAD returns the mean absolute difference around the sample mean:
// mean(|x_i - mean(x)|).
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += math.Abs(x - m)
	}
	return s / float64(len(xs))
}

// RMSE returns the root mean squared error of xs against a target value.
func RMSE(xs []float64, target float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - target
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// RateErrors bundles the three §7.2 error metrics for one experiment.
type RateErrors struct {
	MAE, MAD, RMSE float64
}

// InterDepartureErrors computes the paper's rate-control error metrics from
// raw departure timestamps (ns) against the configured interval (ns).
func InterDepartureErrors(departNs []float64, intervalNs float64) RateErrors {
	gaps := Gaps(departNs)
	return RateErrors{
		MAE:  MAE(gaps, intervalNs),
		MAD:  MAD(gaps),
		RMSE: RMSE(gaps, intervalNs),
	}
}

// Gaps returns consecutive differences of a timestamp series.
func Gaps(ts []float64) []float64 {
	if len(ts) < 2 {
		return nil
	}
	out := make([]float64, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		out[i-1] = ts[i] - ts[i-1]
	}
	return out
}

// Quantile returns the q-quantile (0..1) of xs by linear interpolation on a
// sorted copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return sortedQuantile(s, q)
}

func sortedQuantile(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// QQPoint is one point of a quantile-quantile plot.
type QQPoint struct {
	Theoretical float64
	Sample      float64
}

// QQ computes n Q-Q points of xs against a theoretical inverse CDF,
// evaluating both at the plotting positions (i-0.5)/n.
func QQ(xs []float64, invCDF func(p float64) float64, n int) []QQPoint {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	out := make([]QQPoint, 0, n)
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		out = append(out, QQPoint{Theoretical: invCDF(p), Sample: sortedQuantile(s, p)})
	}
	return out
}

// QQCorrelation returns the Pearson correlation between theoretical and
// sample quantiles — the standard scalar summary of Q-Q agreement.
func QQCorrelation(points []QQPoint) float64 {
	n := float64(len(points))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy float64
	for _, p := range points {
		sx += p.Theoretical
		sy += p.Sample
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for _, p := range points {
		dx, dy := p.Theoretical-mx, p.Sample-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// NormalInvCDF returns the inverse CDF of N(mu, sigma) using the
// Acklam/Wichura-style rational approximation (|relative error| < 1.15e-9).
func NormalInvCDF(mu, sigma float64) func(p float64) float64 {
	return func(p float64) float64 { return mu + sigma*StdNormalInv(p) }
}

// StdNormalInv is the standard normal inverse CDF (probit function).
func StdNormalInv(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients from Peter Acklam's algorithm.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	return x
}

// ExponentialInvCDF returns the inverse CDF of Exp(rate).
func ExponentialInvCDF(rate float64) func(p float64) float64 {
	return func(p float64) float64 {
		if p >= 1 {
			return math.Inf(1)
		}
		return -math.Log(1-p) / rate
	}
}

// Histogram bins xs into n equal-width buckets across [min,max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds a histogram of xs with n bins. A degenerate request
// (n<=0 or a range where min is not strictly below max, including NaN bounds)
// yields an empty histogram rather than a panic; NaN samples are skipped, and
// the bin index is clamped so values a half-ulp below max — where
// (x-min)/width rounds up to exactly n — land in the last bin instead of one
// past it.
func NewHistogram(xs []float64, n int, min, max float64) *Histogram {
	if n <= 0 || !(min < max) {
		return &Histogram{Min: min, Max: max}
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, n)}
	width := (max - min) / float64(n)
	for _, x := range xs {
		if !(x >= min) || x >= max { // !(x>=min) also rejects NaN
			continue
		}
		idx := int((x - min) / width)
		if idx >= n {
			idx = n - 1
		} else if idx < 0 {
			idx = 0
		}
		h.Counts[idx]++
		h.Total++
	}
	return h
}

func (h *Histogram) String() string {
	return fmt.Sprintf("hist[%g,%g) n=%d total=%d", h.Min, h.Max, len(h.Counts), h.Total)
}
