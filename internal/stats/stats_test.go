package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("stddev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty input")
	}
}

func TestErrorMetrics(t *testing.T) {
	xs := []float64{9, 11, 10, 10}
	if got := MAE(xs, 10); got != 0.5 {
		t.Fatalf("MAE = %v", got)
	}
	if got := RMSE(xs, 10); !close(got, math.Sqrt(0.5), 1e-12) {
		t.Fatalf("RMSE = %v", got)
	}
	if got := MAD(xs); got != 0.5 {
		t.Fatalf("MAD = %v", got)
	}
	if MAE(nil, 1) != 0 || RMSE(nil, 1) != 0 || MAD(nil) != 0 {
		t.Fatal("empty input")
	}
}

func TestGapsAndInterDeparture(t *testing.T) {
	ts := []float64{0, 10, 21, 30}
	g := Gaps(ts)
	want := []float64{10, 11, 9}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("gaps = %v", g)
		}
	}
	e := InterDepartureErrors(ts, 10)
	if !close(e.MAE, 2.0/3.0, 1e-12) {
		t.Fatalf("MAE = %v", e.MAE)
	}
	if e.RMSE <= e.MAE {
		t.Fatal("RMSE should exceed MAE for non-uniform errors")
	}
	if Gaps([]float64{1}) != nil {
		t.Fatal("single timestamp should give no gaps")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extremes")
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestStdNormalInv(t *testing.T) {
	// Standard reference points.
	cases := map[float64]float64{
		0.5:    0,
		0.8413: 1, // Phi(1) ~ 0.8413
		0.9772: 2,
		0.0228: -2,
		0.999:  3.0902,
	}
	for p, want := range cases {
		if got := StdNormalInv(p); !close(got, want, 5e-3) {
			t.Errorf("probit(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsInf(StdNormalInv(0), -1) || !math.IsInf(StdNormalInv(1), 1) {
		t.Fatal("boundary behaviour")
	}
}

func TestStdNormalInvRoundTrip(t *testing.T) {
	// probit should invert the normal CDF: Phi(probit(p)) ~ p.
	phi := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	for p := 0.001; p < 1; p += 0.0173 {
		if got := phi(StdNormalInv(p)); !close(got, p, 1e-6) {
			t.Fatalf("Phi(probit(%v)) = %v", p, got)
		}
	}
}

func TestExponentialInvCDF(t *testing.T) {
	inv := ExponentialInvCDF(2)
	// median of Exp(2) is ln2/2.
	if got := inv(0.5); !close(got, math.Ln2/2, 1e-12) {
		t.Fatalf("median = %v", got)
	}
	if inv(0) != 0 {
		t.Fatal("inv(0) should be 0")
	}
	if !math.IsInf(inv(1), 1) {
		t.Fatal("inv(1) should be +Inf")
	}
}

func TestQQPerfectSample(t *testing.T) {
	// A sample drawn exactly from the theoretical quantiles must give
	// correlation ~1 and y~x.
	inv := NormalInvCDF(100, 15)
	var xs []float64
	for i := 0; i < 2000; i++ {
		xs = append(xs, inv((float64(i)+0.5)/2000))
	}
	pts := QQ(xs, inv, 50)
	if r := QQCorrelation(pts); r < 0.9999 {
		t.Fatalf("correlation = %v", r)
	}
	for _, p := range pts {
		if !close(p.Theoretical, p.Sample, 0.5) {
			t.Fatalf("QQ point off identity: %+v", p)
		}
	}
}

func TestQQDetectsMismatch(t *testing.T) {
	// Uniform sample against a normal theoretical distribution: the Q-Q
	// tails must deviate visibly even if correlation stays high.
	rng := rand.New(rand.NewSource(1))
	var xs []float64
	for i := 0; i < 5000; i++ {
		xs = append(xs, rng.Float64()*2-1)
	}
	pts := QQ(xs, NormalInvCDF(0, 1), 100)
	tail := pts[0]
	if close(tail.Theoretical, tail.Sample, 0.5) {
		t.Fatalf("uniform sample matched normal tail: %+v", tail)
	}
}

func TestQQCorrelationDegenerate(t *testing.T) {
	if !math.IsNaN(QQCorrelation(nil)) {
		t.Fatal("empty correlation should be NaN")
	}
	pts := []QQPoint{{1, 1}, {1, 2}}
	if !math.IsNaN(QQCorrelation(pts)) {
		t.Fatal("zero-variance theoretical should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 9.99, 10, -5}, 10, 0, 10)
	if h.Total != 5 {
		t.Fatalf("total = %d (out-of-range values must be excluded)", h.Total)
	}
	if h.Counts[0] != 1 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.String() == "" {
		t.Fatal("String empty")
	}
}

// Regression tests for the NewHistogram panics: before the clamp/degenerate
// guards, each of these adversarial inputs indexed Counts out of range (or
// panicked in makeslice).
func TestHistogramAdversarial(t *testing.T) {
	// Float rounding: x = nextafter(max, -inf) with min=0, max=0.1, n=3
	// makes (x-min)/width round up to exactly n. Pre-fix: Counts[3] of a
	// 3-bin histogram → index out of range. Post-fix it lands in the last
	// bin and is counted.
	x := math.Nextafter(0.1, math.Inf(-1))
	h := NewHistogram([]float64{x}, 3, 0, 0.1)
	if h.Total != 1 || h.Counts[2] != 1 {
		t.Fatalf("rounding edge: total=%d counts=%v, want last-bin count", h.Total, h.Counts)
	}

	// NaN sample: pre-fix int(NaN) produced a huge negative index.
	h = NewHistogram([]float64{0.5, math.NaN()}, 4, 0, 1)
	if h.Total != 1 {
		t.Fatalf("NaN sample must be skipped, total=%d", h.Total)
	}

	// Degenerate ranges and bin counts degrade to an empty histogram.
	for _, tc := range []struct {
		name     string
		xs       []float64
		n        int
		min, max float64
	}{
		{"min==max", []float64{1, 1, 1}, 4, 1, 1},
		{"min>max", []float64{1}, 4, 2, 1},
		{"n==0", []float64{1}, 0, 0, 1},
		{"n<0", []float64{1}, -1, 0, 1}, // pre-fix: makeslice len out of range
		{"NaN bounds", []float64{1}, 4, math.NaN(), math.NaN()},
	} {
		h := NewHistogram(tc.xs, tc.n, tc.min, tc.max)
		if h.Total != 0 || len(h.Counts) != 0 {
			t.Fatalf("%s: want empty histogram, got total=%d counts=%v", tc.name, h.Total, h.Counts)
		}
	}
}

// Property: RMSE >= MAE for any series and target (Jensen).
func TestRMSEGeqMAEProperty(t *testing.T) {
	f := func(raw []int8, target int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return RMSE(xs, float64(target))+1e-9 >= MAE(xs, float64(target))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
