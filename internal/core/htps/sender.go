// Package htps implements the HyperTester Packet Sender (§5.1): the
// accelerator that fills the recirculation loop with template packets, the
// replicator whose register timer gates multicast replication at the
// configured rate, and the editor that rewrites replica header fields
// (constants, value lists, arithmetic progressions, inverse-transform
// random values, and trigger-record stamping for stateless connections).
package htps

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/core/stateless"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
	"github.com/hypertester/hypertester/internal/switchcpu"
)

// Multicast group ID allocation.
const (
	fireGidBase     = 1    // fire group per template: gid = template ID
	fillGidBase     = 4096 // loop-fill group per template
	portFireGidBase = 8192 // per-ingress-port fire groups (stateless)
	portGidStride   = 256
)

// Sender deploys compiled templates onto a switch.
type Sender struct {
	sw     *asic.Switch
	cpu    *switchcpu.CPU
	prog   *compiler.Program
	states map[int]*templateState
}

type templateState struct {
	tmpl *compiler.Template

	fireGid int
	fillGid int
	// portGids maps a trigger record's ingress port to a fire group
	// (stateless templates with no static ports answer on the port the
	// triggering packet arrived on).
	portGids map[int]int

	inflight       *asic.RegisterArray // cell 0: copies in the loop
	inflightTarget int

	timer *asic.RegisterArray // cell 0: last fire time (ps)
	// curIntervalPs is the active timer threshold; with a random
	// inter-departure distribution it is resampled after every fire.
	curIntervalPs int64

	// Fired counts replication events (the editor's packet ID source).
	Fired uint64

	rng *netsim.RNG

	// fifo is the trigger-record source for stateless templates.
	fifo *stateless.FIFO
	// recordIdx maps record fields to positions in the record layout.
	recordIdx map[asic.Field]int
	inPortIdx int
}

// New builds a sender for a compiled program. triggerFIFOs maps query IDs to
// the record FIFOs HTPR fills (one per stateless trigger).
func New(sw *asic.Switch, cpu *switchcpu.CPU, prog *compiler.Program,
	triggerFIFOs map[int]*stateless.FIFO, seed int64) (*Sender, error) {

	s := &Sender{sw: sw, cpu: cpu, prog: prog, states: make(map[int]*templateState)}

	// Loop capacity is shared among templates (§7.3): each template gets
	// an equal share of the in-flight budget across all paths.
	minSize := 1500
	for _, t := range prog.Templates {
		if t.Packet.Len() < minSize {
			minSize = t.Packet.Len()
		}
	}
	totalCapacity := sw.RecircPaths() * asic.AcceleratorCapacity(minSize)
	perTemplate := 1
	if len(prog.Templates) > 0 {
		perTemplate = totalCapacity / len(prog.Templates)
		if perTemplate < 1 {
			perTemplate = 1
		}
	}

	for _, tmpl := range prog.Templates {
		st := &templateState{
			tmpl:           tmpl,
			fireGid:        tmpl.ID,
			fillGid:        fillGidBase + tmpl.ID,
			inflight:       asic.NewRegisterArray(fmt.Sprintf("accel_inflight_%d", tmpl.ID), 1),
			inflightTarget: perTemplate,
			timer:          asic.NewRegisterArray(fmt.Sprintf("repl_timer_%d", tmpl.ID), 1),
			curIntervalPs:  tmpl.IntervalPs,
			rng:            netsim.NewRNG(seed, fmt.Sprintf("editor/%d", tmpl.ID)),
		}

		if tmpl.FromQueryID != 0 {
			fifo := triggerFIFOs[tmpl.FromQueryID]
			if fifo == nil {
				return nil, fmt.Errorf("htps: template %d has no trigger FIFO for query %d",
					tmpl.ID, tmpl.FromQueryID)
			}
			st.fifo = fifo
			st.recordIdx = make(map[asic.Field]int)
			for i, f := range fifo.Fields {
				st.recordIdx[f] = i
			}
			st.inPortIdx = fifo.FieldIndex(asic.FieldInPort)
		}

		// The loop-continuation copy: recirculation path by template ID.
		recircPort := asic.RecircPortBase + (tmpl.ID % sw.RecircPaths())
		cont := asic.CopySpec{Port: recircPort, Rid: 0}

		fire := []asic.CopySpec{cont}
		for i, p := range tmpl.Ports {
			fire = append(fire, asic.CopySpec{Port: p, Rid: i + 1})
		}
		if len(tmpl.Ports) > 0 {
			if err := sw.Mcast.SetGroup(st.fireGid, fire); err != nil {
				return nil, err
			}
		}
		if st.fifo != nil && len(tmpl.Ports) == 0 {
			// Stateless template answering on the triggering port:
			// one preinstalled group per front-panel port.
			st.portGids = make(map[int]int)
			for p := 0; p < sw.NumPorts(); p++ {
				gid := portFireGidBase + tmpl.ID*portGidStride + p
				if err := sw.Mcast.SetGroup(gid, []asic.CopySpec{cont, {Port: p, Rid: 1}}); err != nil {
					return nil, err
				}
				st.portGids[p] = gid
			}
		}
		// Loop-fill group: double the template back into the loop.
		if err := sw.Mcast.SetGroup(st.fillGid, []asic.CopySpec{cont, {Port: recircPort, Rid: 0}}); err != nil {
			return nil, err
		}
		s.states[tmpl.ID] = st
	}
	return s, nil
}

// State exposes a template's runtime state (tests, reports).
func (s *Sender) State(templateID int) *templateState { return s.states[templateID] }

// FiredCount returns how many replication events a template has produced.
func (s *Sender) FiredCount(templateID int) uint64 {
	if st := s.states[templateID]; st != nil {
		return st.Fired
	}
	return 0
}

// Observe binds every template's SALU register arrays (accelerator inflight
// counter, replication timer) to a trace stream, emitting one salu record
// per access. Binding order does not matter — records are stamped at access
// time — so iterating the template map here is fine.
func (s *Sender) Observe(clock *netsim.Sim, tr *obs.Trace) {
	for _, st := range s.states {
		st.inflight.Observe(clock, tr)
		st.timer.Observe(clock, tr)
	}
}

// Start injects every template packet from the switch CPU (step 2 of the
// §5.4 workflow). The accelerator then fills the loop by doubling.
func (s *Sender) Start() {
	for _, tmpl := range s.prog.Templates {
		s.cpu.InjectTemplate(tmpl.Packet.Clone())
	}
}

// IngressProcessor implements the accelerator and replicator.
func (s *Sender) IngressProcessor() asic.Processor {
	return asic.ProcessorFunc(func(p *asic.PHV) {
		st := s.states[p.Meta.TemplateID]
		if st == nil {
			return
		}
		// Accelerator: double the template until the loop share is full.
		filled := st.inflight.RMW(0, func(old uint64) (uint64, uint64) {
			if old < uint64(st.inflightTarget) {
				return old + 1, 0
			}
			return old, 1
		})
		if filled == 0 {
			p.McastGroup = st.fillGid
			return
		}

		if st.fifo != nil {
			s.fireStateless(st, p)
			return
		}

		// Loop bound: a finished stream keeps its templates circulating
		// idle (the task can be restarted without re-filling the loop).
		if st.tmpl.LoopPackets > 0 && st.Fired >= st.tmpl.LoopPackets {
			p.Recirculate = true
			return
		}

		// Replicator timer (§5.1): fire when now - last >= interval. The
		// decision quantizes to template arrival times — the source of
		// the few-ns rate-control error the paper measures. With a
		// random inter-departure distribution, every fire draws a fresh
		// threshold from the inverse-transform table (§3.1).
		if st.curIntervalPs > 0 {
			now := int64(s.sw.Sim().Now())
			fired := st.timer.RMW(0, func(last uint64) (uint64, uint64) {
				if now-int64(last) >= st.curIntervalPs {
					return uint64(now), 1
				}
				return last, 0
			})
			if fired == 0 {
				p.Recirculate = true
				return
			}
			if n := len(st.tmpl.IntervalTablePs); n > 0 {
				st.curIntervalPs = st.tmpl.IntervalTablePs[st.rng.Intn(n)]
			}
		}
		p.Meta.SeqID = st.Fired
		st.Fired++
		p.McastGroup = st.fireGid
	})
}

// fireStateless pops one trigger record and fires the template with it; an
// empty FIFO just recirculates the template.
func (s *Sender) fireStateless(st *templateState, p *asic.PHV) {
	rec, ok := st.fifo.Pop()
	if !ok {
		p.Recirculate = true
		return
	}
	p.Meta.Record = rec
	p.Meta.SeqID = st.Fired
	st.Fired++
	if len(st.tmpl.Ports) > 0 {
		p.McastGroup = st.fireGid
		return
	}
	port := 0
	if st.inPortIdx >= 0 {
		port = int(rec[st.inPortIdx])
	}
	gid, ok := st.portGids[port]
	if !ok {
		// Triggering packet arrived on a port with no preinstalled
		// group (e.g. the CPU port); drop the record.
		p.Recirculate = true
		return
	}
	p.McastGroup = gid
}

// EgressProcessor implements the editor: replicas (rid != 0) get their
// fields rewritten; the rid-0 continuation copy stays pristine.
func (s *Sender) EgressProcessor() asic.Processor {
	return asic.ProcessorFunc(func(p *asic.PHV) {
		if p.Meta.TemplateID == 0 || p.Meta.ReplicaID == 0 {
			return
		}
		st := s.states[p.Meta.TemplateID]
		if st == nil {
			return
		}
		seq := p.Meta.SeqID
		for i := range st.tmpl.Mods {
			m := &st.tmpl.Mods[i]
			switch m.Kind {
			case compiler.ModConst:
				m.Field.Set(p, m.Const)
			case compiler.ModList, compiler.ModProgression:
				m.Field.Set(p, m.ValueAt(seq))
			case compiler.ModRandom:
				draw := st.rng.Int63() & (1<<uint(m.RandBits) - 1)
				idx := int(uint64(draw) * uint64(len(m.InvTable)) >> uint(m.RandBits))
				m.Field.Set(p, m.InvTable[idx])
			case compiler.ModFromRecord:
				if p.Meta.Record == nil {
					continue
				}
				idx, ok := st.recordIdx[m.RecordField]
				if !ok {
					continue
				}
				v := uint64(int64(p.Meta.Record[idx]) + m.RecordOffset)
				m.Field.Set(p, v&m.Field.MaxValue())
			}
		}
	})
}
