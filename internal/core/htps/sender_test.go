package htps

import (
	"testing"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/core/stateless"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/switchcpu"
)

func deploy(t *testing.T, src string, ports int, fifos map[int]*stateless.FIFO) (*netsim.Sim, *asic.Switch, *Sender, *compiler.Program) {
	t.Helper()
	task, err := ntapi.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(task, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New()
	gbps := make([]float64, ports)
	for i := range gbps {
		gbps[i] = 100
	}
	sw := asic.New(asic.Config{Name: "sw", Sim: sim, PortGbps: gbps, Seed: 1})
	cpu := switchcpu.New(sim, sw)
	s, err := New(sw, cpu, prog, fifos, 1)
	if err != nil {
		t.Fatal(err)
	}
	sw.Ingress.Add(s.IngressProcessor())
	sw.Egress.Add(s.EgressProcessor())
	return sim, sw, s, prog
}

func TestAcceleratorFillsLoop(t *testing.T) {
	sim, sw, s, _ := deploy(t, `
T1 = trigger().set([dip, proto], [9.9.9.9, udp]).set(interval, 1us).set(port, 0)
`, 1, nil)
	s.Start()
	sim.RunFor(20 * netsim.Microsecond)
	st := s.State(1)
	if st == nil {
		t.Fatal("no template state")
	}
	inflight := st.inflight.Read(0)
	if int(inflight) != asic.AcceleratorCapacity(64) {
		t.Fatalf("inflight = %d, want %d (full loop)", inflight, asic.AcceleratorCapacity(64))
	}
	_ = sw
}

func TestCapacitySharedAcrossTemplates(t *testing.T) {
	sim, _, s, _ := deploy(t, `
T1 = trigger().set([dip, proto], [9.9.9.1, udp]).set(interval, 1us).set(port, 0)
T2 = trigger().set([dip, proto], [9.9.9.2, udp]).set(interval, 1us).set(port, 0)
`, 1, nil)
	s.Start()
	sim.RunFor(20 * netsim.Microsecond)
	want := asic.AcceleratorCapacity(64) / 2
	for tid := 1; tid <= 2; tid++ {
		got := int(s.State(tid).inflight.Read(0))
		if got != want {
			t.Fatalf("template %d inflight = %d, want %d (half the loop)", tid, got, want)
		}
	}
}

func TestFireEveryArrivalAtLineRate(t *testing.T) {
	sim, sw, s, _ := deploy(t, `
T1 = trigger().set([dip, proto], [9.9.9.9, udp]).set(port, 0)
`, 1, nil)
	s.Start()
	sim.RunFor(20 * netsim.Microsecond)
	before := s.FiredCount(1)
	sim.RunFor(100 * netsim.Microsecond)
	fired := s.FiredCount(1) - before
	// Line rate at 64B/100G = one fire per 6.4ns = 15625 per 100us.
	if fired < 15000 || fired > 16000 {
		t.Fatalf("fired %d in 100us, want ~15625 (line rate)", fired)
	}
	if sw.Port(0).TxDrops > 0 {
		t.Fatalf("unexpected TX drops: %d", sw.Port(0).TxDrops)
	}
}

func TestStatelessFiresOnlyWithRecords(t *testing.T) {
	// A query-based template must not fire until records arrive.
	fifo := stateless.New("q1", []asic.Field{asic.FieldIPv4Src, asic.FieldInPort}, 16)
	fifos := map[int]*stateless.FIFO{1: fifo}
	sim, sw, s, _ := deploy(t, `
Q1 = query().filter(tcp_flag == SYN+ACK)
T1 = trigger(Q1).set([dip, proto], [Q1.sip, tcp])
`, 2, fifos)
	var sent []*netproto.Packet
	sw.Port(1).SetPeer(func(pkt *netproto.Packet, at netsim.Time) { sent = append(sent, pkt) })
	s.Start()
	sim.RunFor(100 * netsim.Microsecond)
	if len(sent) != 0 || s.FiredCount(1) != 0 {
		t.Fatalf("stateless template fired %d times without records", s.FiredCount(1))
	}
	// Push two records: template fires twice, onto the record's port.
	fifo.Push([]uint64{uint64(netproto.MustIPv4("7.7.7.7")), 1})
	fifo.Push([]uint64{uint64(netproto.MustIPv4("8.8.8.8")), 1})
	sim.RunFor(100 * netsim.Microsecond)
	if s.FiredCount(1) != 2 {
		t.Fatalf("fired %d, want 2", s.FiredCount(1))
	}
	if len(sent) != 2 {
		t.Fatalf("port 1 got %d packets, want 2", len(sent))
	}
	var st netproto.Stack
	if err := st.Decode(sent[0].Data); err != nil {
		t.Fatal(err)
	}
	if st.IP4.Dst != netproto.MustIPv4("7.7.7.7") {
		t.Fatalf("record not stamped: dip = %v", st.IP4.Dst)
	}
}

func TestRandomModDistribution(t *testing.T) {
	sim, sw, s, _ := deploy(t, `
T1 = trigger()
    .set([dip, proto], [9.9.9.9, udp])
    .set(sport, random('U', 1000, 2023, 10))
    .set(port, 0)
`, 1, nil)
	counts := map[uint16]int{}
	var st netproto.Stack
	sw.Port(0).SetPeer(func(pkt *netproto.Packet, at netsim.Time) {
		if err := st.Decode(pkt.Data); err == nil {
			counts[st.UDP.SrcPort]++
		}
	})
	s.Start()
	sim.RunFor(100 * netsim.Microsecond)
	if len(counts) < 100 {
		t.Fatalf("uniform random produced only %d distinct ports", len(counts))
	}
	for p := range counts {
		if p < 1000 || p > 2023 {
			t.Fatalf("port %d outside configured uniform range", p)
		}
	}
}

func TestMissingTriggerFIFOErrors(t *testing.T) {
	task, err := ntapi.Parse("t", `
Q1 = query().filter(tcp_flag == SYN)
T1 = trigger(Q1).set(dip, Q1.sip)
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(task, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New()
	sw := asic.New(asic.Config{Name: "sw", Sim: sim, PortGbps: []float64{100}, Seed: 1})
	cpu := switchcpu.New(sim, sw)
	if _, err := New(sw, cpu, prog, nil, 1); err == nil {
		t.Fatal("missing trigger FIFO accepted")
	}
}
