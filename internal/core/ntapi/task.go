package ntapi

import (
	"fmt"
	"time"
)

// SetOp assigns values to fields for the packets a trigger generates
// (Table 2's set primitive).
type SetOp struct {
	Fields []string
	Values []Value
}

// Trigger defines one packet stream (§4.1). A trigger with From == nil
// starts generating when the task starts; a query-based trigger fires once
// per record its query emits (stateless connections).
type Trigger struct {
	ID   int
	Name string
	// From is the query whose matches trigger generation, or nil.
	From *Query
	Sets []SetOp

	// Control fields (Table 1).
	Interval time.Duration // inter-departure interval; 0 = line rate
	// IntervalDist, when non-nil, draws each inter-departure interval
	// from a distribution (params in nanoseconds) — §3.1's "random
	// inter-departure time" requirement.
	IntervalDist *Random
	Ports        []int  // injection ports
	Loop         uint64 // times to re-generate the stream; 0 = forever
	Length       int    // frame length in bytes
	PayloadV     []byte // constant payload content

	task *Task
}

// Set assigns a value to one field, returning the trigger for chaining.
func (t *Trigger) Set(field string, v Value) *Trigger {
	t.Sets = append(t.Sets, SetOp{Fields: []string{field}, Values: []Value{v}})
	return t
}

// SetMany assigns values to several fields at once, mirroring the paper's
// set([f1, f2], [v1, v2]) form.
func (t *Trigger) SetMany(fields []string, values []Value) *Trigger {
	t.Sets = append(t.Sets, SetOp{Fields: fields, Values: values})
	return t
}

// WithInterval sets the inter-departure interval (rate control).
func (t *Trigger) WithInterval(d time.Duration) *Trigger { t.Interval = d; return t }

// WithIntervalDist draws inter-departure intervals from a distribution
// whose parameters are in nanoseconds.
func (t *Trigger) WithIntervalDist(r Random) *Trigger { t.IntervalDist = &r; return t }

// WithPorts sets the injection ports.
func (t *Trigger) WithPorts(ports ...int) *Trigger { t.Ports = ports; return t }

// WithLoop sets how many packets to generate before stopping (0 = forever).
func (t *Trigger) WithLoop(n uint64) *Trigger { t.Loop = n; return t }

// WithLength sets the generated frame length.
func (t *Trigger) WithLength(n int) *Trigger { t.Length = n; return t }

// WithPayload sets the constant payload.
func (t *Trigger) WithPayload(p []byte) *Trigger { t.PayloadV = p; return t }

// CmpOp is a filter comparison operator.
type CmpOp string

// Comparison operators.
const (
	OpEq CmpOp = "=="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Predicate is one filter condition over a packet field or, after a reduce,
// over the aggregate ("count").
type Predicate struct {
	Field string
	Op    CmpOp
	Value uint64
}

func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %d", p.Field, p.Op, p.Value)
}

// AggFunc is a reduce aggregation function.
type AggFunc string

// Aggregations supported by reduce.
const (
	AggSum   AggFunc = "sum"
	AggCount AggFunc = "count"
	AggMax   AggFunc = "max"
	AggMin   AggFunc = "min"
)

// QueryKind distinguishes the terminal operator of a query.
type QueryKind string

// Query kinds.
const (
	KindCapture  QueryKind = "capture"  // filter only: every match is a record
	KindReduce   QueryKind = "reduce"   // keyed aggregation
	KindDistinct QueryKind = "distinct" // distinct-key counting
	// KindDelay measures per-key one-way delay: the sent side stores a
	// pipeline timestamp keyed by the packet (state-based delay testing,
	// the Fig. 18b variant); the received side computes now - stored.
	KindDelay QueryKind = "delay"
)

// Query defines a packet-stream query (§4.1): a filter chain over either
// received traffic or the sent traffic of one trigger, optionally
// terminated by reduce or distinct.
type Query struct {
	ID   int
	Name string
	// Of is the trigger whose sent traffic this query monitors; nil
	// monitors received traffic.
	Of *Query // unused; kept for symmetry
	// Sent, when non-nil, selects the sent traffic of that trigger.
	Sent *Trigger
	// Port restricts received-traffic monitoring to one port (-1 = any).
	Port int

	Filters []Predicate
	// MapFields is the projection (map(p -> (f1, f2))). For reduce, the
	// first mapped field is the aggregated value; empty means count.
	MapFields []string

	Kind QueryKind
	// Keys are the grouping keys for reduce/distinct; empty defaults to
	// the 5-tuple.
	Keys []string
	Func AggFunc
	// Post are predicates applied to the aggregate after reduce
	// (the paper's .filter(count < 5)).
	Post []Predicate

	task *Task
}

// Filter appends a packet-field predicate.
func (q *Query) Filter(field string, op CmpOp, v uint64) *Query {
	if q.Kind == KindReduce || q.Kind == KindDistinct {
		q.Post = append(q.Post, Predicate{Field: field, Op: op, Value: v})
		return q
	}
	q.Filters = append(q.Filters, Predicate{Field: field, Op: op, Value: v})
	return q
}

// Map sets the projection.
func (q *Query) Map(fields ...string) *Query { q.MapFields = fields; return q }

// Reduce turns the query into a keyed aggregation.
func (q *Query) Reduce(fn AggFunc, keys ...string) *Query {
	q.Kind = KindReduce
	q.Func = fn
	q.Keys = keys
	return q
}

// Distinct turns the query into distinct-key counting.
func (q *Query) Distinct(keys ...string) *Query {
	q.Kind = KindDistinct
	q.Keys = keys
	return q
}

// Delay turns the query into a state-based delay measurement keyed by the
// given fields (default ipv4.id): sent packets matching the key store a
// timestamp; received packets matching it report now - stored.
func (q *Query) Delay(keys ...string) *Query {
	q.Kind = KindDelay
	q.Keys = keys
	return q
}

// Task is a complete network testing task: a set of triggers and queries.
type Task struct {
	Name     string
	Triggers []*Trigger
	Queries  []*Query
}

// NewTask creates an empty task.
func NewTask(name string) *Task { return &Task{Name: name} }

// Trigger creates and registers a start trigger. The default frame length
// is 64 bytes, the minimum test packet.
func (t *Task) Trigger() *Trigger {
	tr := &Trigger{ID: len(t.Triggers) + 1, task: t, Length: 64}
	tr.Name = fmt.Sprintf("T%d", tr.ID)
	t.Triggers = append(t.Triggers, tr)
	return tr
}

// TriggerOn creates and registers a query-based trigger: it generates one
// packet per record q emits (the stateless-connection mechanism, §5.3).
func (t *Task) TriggerOn(q *Query) *Trigger {
	tr := t.Trigger()
	tr.From = q
	return tr
}

// Query creates and registers a received-traffic query.
func (t *Task) Query() *Query {
	q := &Query{ID: len(t.Queries) + 1, task: t, Port: -1, Kind: KindCapture}
	q.Name = fmt.Sprintf("Q%d", q.ID)
	t.Queries = append(t.Queries, q)
	return q
}

// QueryOf creates and registers a query over the sent traffic of tr.
func (t *Task) QueryOf(tr *Trigger) *Query {
	q := t.Query()
	q.Sent = tr
	return q
}

// FindTrigger returns the registered trigger with the given name, or nil.
func (t *Task) FindTrigger(name string) *Trigger {
	for _, tr := range t.Triggers {
		if tr.Name == name {
			return tr
		}
	}
	return nil
}

// FindQuery returns the registered query with the given name, or nil.
func (t *Task) FindQuery(name string) *Query {
	for _, q := range t.Queries {
		if q.Name == name {
			return q
		}
	}
	return nil
}
