package ntapi

import (
	"fmt"
	"strings"
	"time"
)

// Format renders a task back into the textual NTAPI form Parse accepts —
// the tooling path for saving programmatically-built tasks and for
// normalizing hand-written ones. Parse(Format(task)) yields an equivalent
// task.
func Format(task *Task) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# task %s\n", task.Name)

	// Interleave triggers and queries in declaration order where
	// possible: queries must appear before the triggers they fire.
	emitted := map[string]bool{}
	var emitQuery func(q *Query)
	emitQuery = func(q *Query) {
		if emitted["q"+q.Name] {
			return
		}
		emitted["q"+q.Name] = true
		if q.Sent != nil {
			fmt.Fprintf(&b, "%s = query(%s)", q.Name, q.Sent.Name)
		} else {
			fmt.Fprintf(&b, "%s = query()", q.Name)
		}
		if q.Port >= 0 {
			fmt.Fprintf(&b, ".port(%d)", q.Port)
		}
		for _, f := range q.Filters {
			fmt.Fprintf(&b, ".filter(%s %s %s)", f.Field, f.Op, formatScalar(f.Field, f.Value))
		}
		if len(q.MapFields) > 0 {
			fmt.Fprintf(&b, ".map(p -> (%s))", strings.Join(q.MapFields, ", "))
		}
		switch q.Kind {
		case KindReduce:
			fmt.Fprintf(&b, ".reduce(func=%s%s)", q.Func, formatKeys(q.Keys))
		case KindDistinct:
			fmt.Fprintf(&b, ".distinct(%s)", strings.TrimPrefix(formatKeys(q.Keys), ", "))
		case KindDelay:
			fmt.Fprintf(&b, ".delay(%s)", strings.TrimPrefix(formatKeys(q.Keys), ", "))
		}
		for _, p := range q.Post {
			fmt.Fprintf(&b, ".filter(count %s %d)", p.Op, p.Value)
		}
		b.WriteString("\n")
	}

	for _, tr := range task.Triggers {
		if tr.From != nil {
			emitQuery(tr.From)
		}
		if tr.From != nil {
			fmt.Fprintf(&b, "%s = trigger(%s)", tr.Name, tr.From.Name)
		} else {
			fmt.Fprintf(&b, "%s = trigger()", tr.Name)
		}
		for _, so := range tr.Sets {
			if len(so.Fields) == 1 {
				fmt.Fprintf(&b, "\n    .set(%s, %s)", so.Fields[0], formatValue(so.Fields[0], so.Values[0]))
				continue
			}
			vals := make([]string, len(so.Values))
			for i, v := range so.Values {
				vals[i] = formatValue(so.Fields[i], v)
			}
			fmt.Fprintf(&b, "\n    .set([%s], [%s])",
				strings.Join(so.Fields, ", "), strings.Join(vals, ", "))
		}
		if tr.IntervalDist != nil {
			d := *tr.IntervalDist
			fmt.Fprintf(&b, "\n    .set(interval, random(%s, %g, %g))", distCode(d.Dist), d.P1, d.P2)
		} else if tr.Interval > 0 {
			fmt.Fprintf(&b, "\n    .set(interval, %s)", formatDuration(tr.Interval))
		}
		if tr.Loop > 0 {
			fmt.Fprintf(&b, "\n    .set(loop, %d)", tr.Loop)
		}
		if tr.Length != 0 && tr.Length != 64 {
			fmt.Fprintf(&b, "\n    .set(length, %d)", tr.Length)
		}
		if len(tr.PayloadV) > 0 {
			fmt.Fprintf(&b, "\n    .set(payload, %q)", string(tr.PayloadV))
		}
		if len(tr.Ports) == 1 {
			fmt.Fprintf(&b, "\n    .set(port, %d)", tr.Ports[0])
		} else if len(tr.Ports) > 1 {
			ports := make([]string, len(tr.Ports))
			for i, p := range tr.Ports {
				ports[i] = fmt.Sprintf("%d", p)
			}
			fmt.Fprintf(&b, "\n    .set(port, [%s])", strings.Join(ports, ", "))
		}
		b.WriteString("\n")
	}
	for _, q := range task.Queries {
		emitQuery(q)
	}
	return b.String()
}

func formatKeys(keys []string) string {
	if len(keys) == 0 {
		return ""
	}
	return fmt.Sprintf(", keys={%s}", strings.Join(keys, ", "))
}

func distCode(d DistKind) string {
	switch d {
	case DistNormal:
		return "'N'"
	case DistExponential:
		return "'E'"
	default:
		return "'U'"
	}
}

// formatScalar renders a filter value; IP-ish fields print dotted quads so
// the output reads like the paper's listings.
func formatScalar(field string, v uint64) string {
	if strings.Contains(field, "ip") && v > 0xffff {
		return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return fmt.Sprintf("%d", v)
}

func formatValue(field string, v Value) string {
	switch val := v.(type) {
	case Const:
		return formatScalar(field, uint64(val))
	case List:
		parts := make([]string, len(val))
		for i, x := range val {
			parts[i] = fmt.Sprintf("%d", x)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case Range:
		return fmt.Sprintf("range(%d, %d, %d)", val.Start, val.End, val.Step)
	case Random:
		return fmt.Sprintf("random(%s, %g, %g, %d)", distCode(val.Dist), val.P1, val.P2, val.Bits)
	case Ref:
		// The source query's name is not stored in the ref; Parse
		// resolves any query prefix, so emit a stable placeholder.
		if val.Offset == 0 {
			return "q." + val.Field
		}
		return fmt.Sprintf("q.%s + %d", val.Field, val.Offset)
	case Payload:
		return fmt.Sprintf("%q", string(val))
	}
	return v.String()
}

func formatDuration(d time.Duration) string {
	switch {
	case d%time.Millisecond == 0:
		return fmt.Sprintf("%dms", d/time.Millisecond)
	case d%time.Microsecond == 0:
		return fmt.Sprintf("%dus", d/time.Microsecond)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
