package ntapi

import (
	"strings"
	"testing"
	"time"
)

func TestFormatParsesBack(t *testing.T) {
	src := `
T1 = trigger()
    .set([dip, dport, proto, flag, seq_no], [9.9.9.9, 80, tcp, SYN, 1])
    .set(sport, range(1024, 2047, 1))
    .set(interval, 10us)
    .set(loop, 3)
    .set(port, 0)
Q1 = query().filter(tcp_flag == SYN+ACK)
T2 = trigger(Q1)
    .set([dip, sip], [Q1.sip, Q1.dip])
    .set(ack_no, Q1.seq_no + 1)
Q2 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
Q3 = query().distinct(keys={ipv4.sip})
Q4 = query().delay(keys={ipv4.id})
`
	task, err := Parse("rt", src)
	if err != nil {
		t.Fatal(err)
	}
	formatted := Format(task)
	task2, err := Parse("rt2", formatted)
	if err != nil {
		t.Fatalf("Format output does not parse: %v\n%s", err, formatted)
	}

	// Structural equivalence.
	if len(task2.Triggers) != len(task.Triggers) || len(task2.Queries) != len(task.Queries) {
		t.Fatalf("shape changed: %d/%d triggers, %d/%d queries\n%s",
			len(task2.Triggers), len(task.Triggers), len(task2.Queries), len(task.Queries), formatted)
	}
	t1 := task2.FindTrigger("T1")
	if t1 == nil || t1.Interval != 10*time.Microsecond || t1.Loop != 3 {
		t.Fatalf("T1 after round trip: %+v\n%s", t1, formatted)
	}
	t2 := task2.FindTrigger("T2")
	if t2 == nil || t2.From == nil || t2.From.Name != "Q1" {
		t.Fatalf("T2 binding lost\n%s", formatted)
	}
	q2 := task2.FindQuery("Q2")
	if q2 == nil || q2.Kind != KindReduce || q2.Func != AggSum || q2.Sent == nil {
		t.Fatalf("Q2 after round trip: %+v", q2)
	}
	q3 := task2.FindQuery("Q3")
	if q3 == nil || q3.Kind != KindDistinct || len(q3.Keys) != 1 {
		t.Fatalf("Q3 after round trip: %+v", q3)
	}
	q4 := task2.FindQuery("Q4")
	if q4 == nil || q4.Kind != KindDelay {
		t.Fatalf("Q4 after round trip: %+v", q4)
	}
}

func TestFormatRandomIntervalAndPayload(t *testing.T) {
	task := NewTask("f")
	task.Trigger().
		Set("dip", IP("9.9.9.9")).
		WithIntervalDist(Random{Dist: DistExponential, P1: 5000}).
		WithPayload([]byte("GET /")).
		WithLength(128).
		WithPorts(0, 1)
	out := Format(task)
	for _, want := range []string{"random('E', 5000, 0)", `"GET /"`, "length, 128", "port, [0, 1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	task2, err := Parse("f2", out)
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, out)
	}
	tr := task2.Triggers[0]
	if tr.IntervalDist == nil || tr.IntervalDist.Dist != DistExponential || tr.IntervalDist.P1 != 5000 {
		t.Fatalf("interval dist lost: %+v", tr.IntervalDist)
	}
	if string(tr.PayloadV) != "GET /" || tr.Length != 128 || len(tr.Ports) != 2 {
		t.Fatalf("trigger fields lost: %+v", tr)
	}
}

// Property-style: the four Table 5 task sources all survive a
// parse-format-parse cycle with their shapes intact.
func TestFormatRoundTripCanonicalTasks(t *testing.T) {
	sources := []string{
		`T1 = trigger().set([dip, proto], [9.9.9.9, udp]).set(port, 0)
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)`,
		`T1 = trigger().set([sip, proto, flag], [1.1.0.1, tcp, SYN]).set(dip, range(1, 1000, 1)).set(loop, 1).set(port, 0)
Q1 = query().filter(tcp_flag == SYN+ACK).distinct(keys={ipv4.sip})`,
		`T1 = trigger().set([dip, proto], [9.9.9.9, udp]).set(ipv4.id, range(0, 100, 1)).set(interval, 1us).set(port, 0)
Q1 = query().delay(keys={ipv4.id})`,
	}
	for i, src := range sources {
		task, err := Parse("t", src)
		if err != nil {
			t.Fatalf("case %d parse: %v", i, err)
		}
		task2, err := Parse("t2", Format(task))
		if err != nil {
			t.Fatalf("case %d reparse: %v\n%s", i, err, Format(task))
		}
		if len(task2.Triggers) != len(task.Triggers) || len(task2.Queries) != len(task.Queries) {
			t.Fatalf("case %d shape changed", i)
		}
		// Second format is a fixed point.
		if Format(task2) != Format(task2) {
			t.Fatalf("case %d format not deterministic", i)
		}
	}
}

// Parser robustness: arbitrary junk must error or parse, never panic.
func TestParseNeverPanics(t *testing.T) {
	inputs := []string{
		"T1 = trigger(().set(", "Q = query().filter(", "= trigger()",
		"T1 = trigger().set([a,b,c], [1,2])", "T1 = trigger().set(dip, range(,,))",
		"T1 = trigger().set(dip, random('X', 1, 2))", "\x00\x01\x02",
		"T1 = trigger().set(payload, \"unterminated", "T1 = trigger().set(dip, [)",
		strings.Repeat(".set(a, 1)", 500),
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on %q: %v", in, r)
				}
			}()
			_, _ = Parse("fuzz", in)
		}()
	}
}
