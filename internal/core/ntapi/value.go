// Package ntapi implements the Network Testing API (§4): the packet-stream
// programming model with triggers (packet generation) and queries
// (statistic collection), the field and value vocabulary of Tables 1 and 2,
// and a parser for the textual task format used by the operator CLI.
package ntapi

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/netproto"
)

// DistKind names the random distributions the editor can emulate with the
// inverse transformation method (§5.1).
type DistKind string

// Supported distributions.
const (
	DistUniform     DistKind = "uniform"
	DistNormal      DistKind = "normal"
	DistExponential DistKind = "exponential"
)

// Value is a field value in a set operation: a constant, a value list, a
// range array (arithmetic progression), a random array, or a reference to a
// field of the triggering query's record (Table 2's value grammar).
type Value interface {
	value()
	String() string
}

// Const is a fixed value applied to every packet.
type Const uint64

func (Const) value()           {}
func (c Const) String() string { return fmt.Sprintf("%d", uint64(c)) }

// IP builds a Const from dotted-quad notation.
func IP(s string) Const { return Const(netproto.MustIPv4(s)) }

// List assigns values from a pre-defined list, one per generated packet,
// cycling.
type List []uint64

func (List) value()           {}
func (l List) String() string { return fmt.Sprintf("%v", []uint64(l)) }

// Range is the arithmetic progression range(start, end, step): start,
// start+step, ... wrapping after end (inclusive).
type Range struct {
	Start, End uint64
	Step       uint64
}

func (Range) value() {}
func (r Range) String() string {
	return fmt.Sprintf("range(%d,%d,%d)", r.Start, r.End, r.Step)
}

// Count returns the number of values in the progression.
func (r Range) Count() uint64 {
	if r.Step == 0 || r.End < r.Start {
		return 0
	}
	return (r.End-r.Start)/r.Step + 1
}

// Random draws each packet's value from a distribution: random(ALG, P, n)
// in the paper's grammar. P1/P2 are distribution parameters (mean/stddev
// for normal, rate for exponential, lo/hi for uniform); Bits bounds the
// generated value's width.
type Random struct {
	Dist   DistKind
	P1, P2 float64
	Bits   int
}

func (Random) value() {}
func (r Random) String() string {
	return fmt.Sprintf("random(%s,%g,%g,%d)", r.Dist, r.P1, r.P2, r.Bits)
}

// Ref reads a field from the triggering query's record, plus a constant
// offset — the Q1.seq_no + 1 form stateless connections use (§5.4).
type Ref struct {
	Field  string
	Offset int64
}

func (Ref) value() {}
func (r Ref) String() string {
	if r.Offset == 0 {
		return "q." + r.Field
	}
	return fmt.Sprintf("q.%s%+d", r.Field, r.Offset)
}

// Payload is a constant payload value (switch CPU writes it into template
// packets; the pipeline itself cannot touch payloads).
type Payload []byte

func (Payload) value()           {}
func (p Payload) String() string { return fmt.Sprintf("%q", string(p)) }
