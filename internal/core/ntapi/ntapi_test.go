package ntapi

import (
	"testing"
	"time"
)

func TestBuilderThroughputTask(t *testing.T) {
	// Table 3's throughput-testing task via the Go builder.
	task := NewTask("throughput")
	t1 := task.Trigger().
		SetMany([]string{"dip", "sip", "proto", "dport", "sport"},
			[]Value{IP("9.9.9.9"), IP("1.1.0.1"), Const(17), Const(1), Const(1)}).
		WithLoop(0).WithLength(64).WithPorts(0)
	q1 := task.QueryOf(t1).Map("pkt_len").Reduce(AggSum)
	q2 := task.Query().Map("pkt_len").Reduce(AggSum)

	if len(task.Triggers) != 1 || len(task.Queries) != 2 {
		t.Fatalf("registered %d triggers, %d queries", len(task.Triggers), len(task.Queries))
	}
	if q1.Sent != t1 {
		t.Fatal("QueryOf did not bind the trigger")
	}
	if q2.Sent != nil {
		t.Fatal("plain query should monitor received traffic")
	}
	if t1.Length != 64 || len(t1.Sets) != 1 || len(t1.Sets[0].Fields) != 5 {
		t.Fatalf("trigger config: %+v", t1)
	}
	if q1.Kind != KindReduce || q1.Func != AggSum {
		t.Fatalf("query kind: %+v", q1)
	}
}

func TestBuilderQueryBasedTrigger(t *testing.T) {
	task := NewTask("web")
	q := task.Query().Filter("tcp_flag", OpEq, 18)
	tr := task.TriggerOn(q).
		Set("dip", Ref{Field: "sip"}).
		Set("seq_no", Ref{Field: "ack_no"}).
		Set("ack_no", Ref{Field: "seq_no", Offset: 1})
	if tr.From != q {
		t.Fatal("TriggerOn did not bind the query")
	}
	if len(tr.Sets) != 3 {
		t.Fatalf("sets: %d", len(tr.Sets))
	}
	ref := tr.Sets[2].Values[0].(Ref)
	if ref.Field != "seq_no" || ref.Offset != 1 {
		t.Fatalf("ref: %+v", ref)
	}
}

func TestFilterAfterReduceIsPost(t *testing.T) {
	task := NewTask("x")
	q := task.Query().Filter("tcp_flag", OpEq, 16).Reduce(AggCount).Filter("count", OpLt, 5)
	if len(q.Filters) != 1 || len(q.Post) != 1 {
		t.Fatalf("filters=%d post=%d", len(q.Filters), len(q.Post))
	}
	if q.Post[0].Op != OpLt || q.Post[0].Value != 5 {
		t.Fatalf("post: %+v", q.Post[0])
	}
}

func TestRangeCount(t *testing.T) {
	if n := (Range{Start: 80, End: 100, Step: 2}).Count(); n != 11 {
		t.Fatalf("count = %d, want 11", n)
	}
	if n := (Range{Start: 5, End: 5, Step: 1}).Count(); n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
	if n := (Range{Start: 5, End: 4, Step: 1}).Count(); n != 0 {
		t.Fatalf("count = %d, want 0", n)
	}
	if n := (Range{Start: 1, End: 10, Step: 0}).Count(); n != 0 {
		t.Fatalf("zero step count = %d, want 0", n)
	}
}

const throughputSrc = `
# Table 3: throughput testing
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set([loop, length], [0, 64])
    .set(port, 0)
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
Q2 = query().map(p -> (pkt_len)).reduce(func=sum)
`

func TestParseThroughput(t *testing.T) {
	task, err := Parse("throughput", throughputSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Triggers) != 1 || len(task.Queries) != 2 {
		t.Fatalf("parsed %d triggers, %d queries", len(task.Triggers), len(task.Queries))
	}
	tr := task.Triggers[0]
	if tr.Name != "T1" || tr.Length != 64 || tr.Loop != 0 || len(tr.Ports) != 1 || tr.Ports[0] != 0 {
		t.Fatalf("trigger: %+v", tr)
	}
	// dip/sip/proto/dport/sport are header sets (the parser may group
	// them one way or another; the pairs are what matters).
	pairs := map[string]Value{}
	for _, so := range tr.Sets {
		for i, f := range so.Fields {
			pairs[f] = so.Values[i]
		}
	}
	if len(pairs) != 5 {
		t.Fatalf("sets: %+v", tr.Sets)
	}
	if pairs["proto"] != Const(17) {
		t.Fatalf("proto value: %v", pairs["proto"])
	}
	if pairs["dip"] != IP("9.9.9.9") {
		t.Fatalf("dip value: %v", pairs["dip"])
	}
	q1 := task.Queries[0]
	if q1.Sent != tr || q1.Kind != KindReduce || q1.Func != AggSum {
		t.Fatalf("q1: %+v", q1)
	}
	if len(q1.MapFields) != 1 || q1.MapFields[0] != "pkt_len" {
		t.Fatalf("map fields: %v", q1.MapFields)
	}
}

const webSrc = `
# Table 4 (abridged): web testing with stateless connections
T1 = trigger()
    .set([dip, dport, proto, flag, seq_no], [9.9.9.9, 80, tcp, SYN, 1])
    .set(sip, range(16846849, 16847104, 1))
    .set(sport, range(1024, 65535, 1))
    .set(interval, 10us)
    .set(port, 0)
Q1 = query().filter(tcp_flag == SYN+ACK)
T2 = trigger(Q1)
    .set([dip, sip, dport, sport], [Q1.sip, Q1.dip, Q1.sport, Q1.dport])
    .set([flag, seq_no, ack_no], [ACK, Q1.ack_no, Q1.seq_no + 1])
Q5 = query().filter(tcp_flag == SYN+ACK).reduce(func=sum)
`

func TestParseWebTask(t *testing.T) {
	task, err := Parse("web", webSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Triggers) != 2 || len(task.Queries) != 2 {
		t.Fatalf("parsed %d triggers, %d queries", len(task.Triggers), len(task.Queries))
	}
	t1 := task.FindTrigger("T1")
	if t1.Interval != 10*time.Microsecond {
		t.Fatalf("interval = %v", t1.Interval)
	}
	// sip range parsed as Range value.
	var sipRange Range
	found := false
	for _, s := range t1.Sets {
		for i, f := range s.Fields {
			if f == "sip" {
				sipRange, found = s.Values[i].(Range), true
			}
		}
	}
	if !found || sipRange.Count() != 256 {
		t.Fatalf("sip range: %+v found=%v", sipRange, found)
	}
	// Q1 filter on SYN+ACK == 18.
	q1 := task.FindQuery("Q1")
	if len(q1.Filters) != 1 || q1.Filters[0].Value != 18 {
		t.Fatalf("q1 filter: %+v", q1.Filters)
	}
	// T2 is query-based with record references.
	t2 := task.FindTrigger("T2")
	if t2.From != q1 {
		t.Fatal("T2 not bound to Q1")
	}
	var ackRef Ref
	for _, s := range t2.Sets {
		for i, f := range s.Fields {
			if f == "ack_no" {
				ackRef = s.Values[i].(Ref)
			}
		}
	}
	if ackRef.Field != "seq_no" || ackRef.Offset != 1 {
		t.Fatalf("ack ref: %+v", ackRef)
	}
}

func TestParsePayloadAndRandom(t *testing.T) {
	src := `
T1 = trigger()
    .set(payload, "GET index.html")
    .set(sport, random('N', 32768, 1000, 16))
    .set(dport, random('E', 128, 0, 16))
`
	task, err := Parse("p", src)
	if err != nil {
		t.Fatal(err)
	}
	tr := task.Triggers[0]
	if string(tr.PayloadV) != "GET index.html" {
		t.Fatalf("payload: %q", tr.PayloadV)
	}
	r1 := tr.Sets[0].Values[0].(Random)
	if r1.Dist != DistNormal || r1.P1 != 32768 || r1.P2 != 1000 || r1.Bits != 16 {
		t.Fatalf("normal random: %+v", r1)
	}
	r2 := tr.Sets[1].Values[0].(Random)
	if r2.Dist != DistExponential {
		t.Fatalf("exp random: %+v", r2)
	}
}

func TestParseDistinct(t *testing.T) {
	src := `Q1 = query().filter(tcp_flag == SYN+ACK).distinct(keys={ipv4.sip})`
	task, err := Parse("d", src)
	if err != nil {
		t.Fatal(err)
	}
	q := task.Queries[0]
	if q.Kind != KindDistinct || len(q.Keys) != 1 || q.Keys[0] != "ipv4.sip" {
		t.Fatalf("distinct: %+v", q)
	}
}

func TestParseReduceWithKeys(t *testing.T) {
	src := `Q1 = query().reduce(keys={ipv4.dip}, func=sum)`
	task, err := Parse("r", src)
	if err != nil {
		t.Fatal(err)
	}
	q := task.Queries[0]
	if q.Func != AggSum || len(q.Keys) != 1 || q.Keys[0] != "ipv4.dip" {
		t.Fatalf("reduce: %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", "\n# nothing\n"},
		{"no equals", "trigger().set(a, 1)"},
		{"unknown primitive", "T1 = widget()"},
		{"unknown query ref", "T1 = trigger(Q9)"},
		{"unknown trigger ref", "Q1 = query(T9)"},
		{"unknown method", "T1 = trigger().explode(1)"},
		{"set arity", "T1 = trigger().set([a, b], [1])"},
		{"bad value", "T1 = trigger().set(dip, 1.2.3)"},
		{"bad filter", "Q1 = query().filter(tcp_flag)"},
		{"unbalanced", "T1 = trigger().set([a, [1)"},
		{"bad reduce", "Q1 = query().reduce(func=avg)"},
		{"bad interval", "T1 = trigger().set(interval, soon)"},
	}
	for _, c := range cases {
		if _, err := Parse(c.name, c.src); err == nil {
			t.Errorf("%s: parsed without error", c.name)
		}
	}
}

func TestCountLoC(t *testing.T) {
	if n := CountLoC(throughputSrc); n != 6 {
		t.Fatalf("throughput LoC = %d, want 6", n)
	}
	if CountLoC("# only\n\n# comments\n") != 0 {
		t.Fatal("comments counted")
	}
}

func TestValueStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Const(5), "5"},
		{Range{Start: 1, End: 9, Step: 2}, "range(1,9,2)"},
		{Ref{Field: "sip"}, "q.sip"},
		{Ref{Field: "seq_no", Offset: 1}, "q.seq_no+1"},
		{Payload("hi"), `"hi"`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%T String = %q, want %q", c.v, got, c.want)
		}
	}
	if (List{1, 2}).String() == "" || (Random{Dist: DistNormal}).String() == "" {
		t.Error("List/Random String empty")
	}
	if IP("1.2.3.4") != Const(0x01020304) {
		t.Error("IP helper")
	}
}

func TestParseRejectsDuplicateNames(t *testing.T) {
	if _, err := Parse("dup", `
T1 = trigger().set(dip, 9.9.9.9).set(port, 0)
T1 = trigger().set(dip, 8.8.8.8).set(port, 0)
`); err == nil {
		t.Fatal("duplicate trigger name accepted")
	}
	if _, err := Parse("dup2", `
Q1 = query().filter(tcp_flag == SYN)
Q1 = query().filter(tcp_flag == ACK)
`); err == nil {
		t.Fatal("duplicate query name accepted")
	}
}

func TestParseMultiKeyReduce(t *testing.T) {
	task, err := Parse("mk", `Q1 = query().reduce(keys={ipv4.sip, l4.sport}, func=sum)`)
	if err != nil {
		t.Fatal(err)
	}
	q := task.Queries[0]
	if len(q.Keys) != 2 || q.Keys[0] != "ipv4.sip" || q.Keys[1] != "l4.sport" {
		t.Fatalf("keys = %v", q.Keys)
	}
}
