package ntapi

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/hypertester/hypertester/internal/netproto"
)

// Parse reads the textual task format, a line-oriented rendering of the
// paper's NTAPI listings (Tables 3 and 4):
//
//	# throughput testing
//	T1 = trigger()
//	    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
//	    .set([loop, length], [0, 64])
//	    .set(port, 0)
//	Q1 = query(T1).map(pkt_len).reduce(func=sum)
//	Q2 = query().map(pkt_len).reduce(func=sum)
//
// Statements start at column 0 with "Name = trigger(...)" or
// "Name = query(...)"; continuation lines start with ".". Lines beginning
// with "#" are comments. CountLoC applies the Table 5 counting rule
// (statements and continuations count; comments and blanks do not).
func Parse(name, src string) (*Task, error) {
	task := NewTask(name)
	for i, stmt := range logicalStatements(src) {
		if err := parseStatement(task, stmt); err != nil {
			return nil, fmt.Errorf("ntapi: statement %d (%s...): %w", i+1, firstWord(stmt), err)
		}
	}
	if len(task.Triggers) == 0 && len(task.Queries) == 0 {
		return nil, fmt.Errorf("ntapi: task %q is empty", name)
	}
	return task, nil
}

// CountLoC counts NTAPI lines of code the way Table 5 does: every non-blank,
// non-comment source line.
func CountLoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		n++
	}
	return n
}

func firstWord(s string) string {
	if i := strings.IndexAny(s, " ="); i > 0 {
		return s[:i]
	}
	if len(s) > 10 {
		return s[:10]
	}
	return s
}

// logicalStatements joins continuation lines (starting with ".") onto their
// statement line.
func logicalStatements(src string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		if strings.HasPrefix(t, ".") && len(out) > 0 {
			out[len(out)-1] += t
			continue
		}
		out = append(out, t)
	}
	return out
}

func parseStatement(task *Task, stmt string) error {
	eq := strings.Index(stmt, "=")
	if eq < 0 {
		return fmt.Errorf("missing '='")
	}
	name := strings.TrimSpace(stmt[:eq])
	rest := strings.TrimSpace(stmt[eq+1:])
	if name == "" {
		return fmt.Errorf("missing statement name")
	}

	calls, err := splitCalls(rest)
	if err != nil {
		return err
	}
	if len(calls) == 0 {
		return fmt.Errorf("empty statement body")
	}

	if task.FindTrigger(name) != nil || task.FindQuery(name) != nil {
		return fmt.Errorf("duplicate statement name %q", name)
	}

	head := calls[0]
	switch head.fn {
	case "trigger":
		var tr *Trigger
		if arg := strings.TrimSpace(head.args); arg != "" {
			q := task.FindQuery(arg)
			if q == nil {
				return fmt.Errorf("trigger(%s): unknown query", arg)
			}
			tr = task.TriggerOn(q)
		} else {
			tr = task.Trigger()
		}
		tr.Name = name
		return applyTriggerCalls(task, tr, calls[1:])
	case "query":
		var q *Query
		if arg := strings.TrimSpace(head.args); arg != "" {
			t := task.FindTrigger(arg)
			if t == nil {
				return fmt.Errorf("query(%s): unknown trigger", arg)
			}
			q = task.QueryOf(t)
		} else {
			q = task.Query()
		}
		q.Name = name
		return applyQueryCalls(q, calls[1:])
	default:
		return fmt.Errorf("unknown primitive %q (want trigger or query)", head.fn)
	}
}

type call struct {
	fn   string
	args string
}

// splitCalls decomposes "trigger().set(a, b).set(c, d)" into calls,
// respecting nesting inside parentheses and brackets.
func splitCalls(s string) ([]call, error) {
	var out []call
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == '.' || s[i] == ' ') {
			i++
		}
		if i >= len(s) {
			break
		}
		j := i
		for j < len(s) && s[j] != '(' {
			j++
		}
		if j >= len(s) {
			return nil, fmt.Errorf("expected '(' after %q", s[i:])
		}
		fn := strings.TrimSpace(s[i:j])
		depth := 0
		k := j
		for ; k < len(s); k++ {
			switch s[k] {
			case '(', '[':
				depth++
			case ')', ']':
				depth--
			}
			if depth == 0 {
				break
			}
		}
		if depth != 0 {
			return nil, fmt.Errorf("unbalanced parentheses in %q", s[i:])
		}
		out = append(out, call{fn: fn, args: s[j+1 : k]})
		i = k + 1
	}
	return out, nil
}

// splitTop splits a comma-separated list at nesting depth zero.
func splitTop(s string) []string {
	var out []string
	depth, start := 0, 0
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inStr = !inStr
		case inStr:
		case c == '(' || c == '[' || c == '{':
			depth++
		case c == ')' || c == ']' || c == '}':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

func applyTriggerCalls(task *Task, tr *Trigger, calls []call) error {
	for _, c := range calls {
		if c.fn != "set" {
			return fmt.Errorf("trigger %s: unknown method .%s", tr.Name, c.fn)
		}
		parts := splitTop(c.args)
		if len(parts) != 2 {
			return fmt.Errorf("trigger %s: set wants (fields, values), got %q", tr.Name, c.args)
		}
		fields := parseNameList(parts[0])
		var valueStrs []string
		if len(fields) == 1 {
			// A single field takes the whole expression — a bracketed
			// second argument is a list *value*, not parallel values.
			valueStrs = []string{strings.TrimSpace(parts[1])}
		} else {
			valueStrs = parseRawList(parts[1])
		}
		if len(fields) != len(valueStrs) {
			return fmt.Errorf("trigger %s: %d fields but %d values", tr.Name, len(fields), len(valueStrs))
		}
		for i, f := range fields {
			if err := applyTriggerSet(tr, f, valueStrs[i]); err != nil {
				return fmt.Errorf("trigger %s: set %s: %w", tr.Name, f, err)
			}
		}
	}
	return nil
}

// applyTriggerSet routes control fields (Table 1) to their dedicated
// settings and header fields to Set operations.
func applyTriggerSet(tr *Trigger, field, raw string) error {
	switch field {
	case "interval":
		if strings.HasPrefix(raw, "random(") {
			v, err := parseValue(raw)
			if err != nil {
				return err
			}
			r, ok := v.(Random)
			if !ok {
				return fmt.Errorf("interval wants a duration or random(...)")
			}
			tr.IntervalDist = &r
			return nil
		}
		d, err := parseDuration(raw)
		if err != nil {
			return err
		}
		tr.Interval = d
		return nil
	case "port":
		ports, err := parseIntList(raw)
		if err != nil {
			return err
		}
		tr.Ports = ports
		return nil
	case "loop":
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return err
		}
		tr.Loop = n
		return nil
	case "length", "pkt_len":
		n, err := strconv.Atoi(raw)
		if err != nil {
			return err
		}
		tr.Length = n
		return nil
	case "payload":
		v, err := parseValue(raw)
		if err != nil {
			return err
		}
		p, ok := v.(Payload)
		if !ok {
			return fmt.Errorf("payload wants a quoted string")
		}
		tr.PayloadV = []byte(p)
		return nil
	}
	v, err := parseValue(raw)
	if err != nil {
		return err
	}
	tr.Set(field, v)
	return nil
}

func applyQueryCalls(q *Query, calls []call) error {
	for _, c := range calls {
		switch c.fn {
		case "filter":
			p, err := parsePredicate(c.args)
			if err != nil {
				return fmt.Errorf("query %s: %w", q.Name, err)
			}
			if q.Kind == KindReduce || q.Kind == KindDistinct {
				q.Post = append(q.Post, p)
			} else {
				q.Filters = append(q.Filters, p)
			}
		case "map":
			arg := strings.TrimSpace(c.args)
			arg = strings.TrimPrefix(arg, "p ->")
			arg = strings.TrimPrefix(strings.TrimSpace(arg), "(")
			arg = strings.TrimSuffix(arg, ")")
			q.MapFields = parseNameList(arg)
		case "reduce":
			fn, keys, err := parseReduceArgs(c.args)
			if err != nil {
				return fmt.Errorf("query %s: %w", q.Name, err)
			}
			q.Reduce(fn, keys...)
		case "distinct":
			_, keys, err := parseReduceArgs(c.args)
			if err != nil {
				return fmt.Errorf("query %s: %w", q.Name, err)
			}
			q.Distinct(keys...)
		case "delay":
			keys := []string{}
			if strings.TrimSpace(c.args) != "" {
				_, ks, err := parseReduceArgs(c.args)
				if err != nil {
					return fmt.Errorf("query %s: %w", q.Name, err)
				}
				keys = ks
			}
			q.Delay(keys...)
		case "port":
			n, err := strconv.Atoi(strings.TrimSpace(c.args))
			if err != nil {
				return fmt.Errorf("query %s: port: %w", q.Name, err)
			}
			q.Port = n
		default:
			return fmt.Errorf("query %s: unknown method .%s", q.Name, c.fn)
		}
	}
	return nil
}

func parseReduceArgs(args string) (AggFunc, []string, error) {
	fn := AggCount
	var keys []string
	for _, part := range splitTop(args) {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return fn, nil, fmt.Errorf("reduce/distinct arg %q wants key=value", part)
		}
		k, v := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch k {
		case "func":
			switch AggFunc(v) {
			case AggSum, AggCount, AggMax, AggMin:
				fn = AggFunc(v)
			default:
				return fn, nil, fmt.Errorf("unknown reduce func %q", v)
			}
		case "keys":
			keys = parseNameList(strings.Trim(v, "{}"))
		default:
			return fn, nil, fmt.Errorf("unknown reduce arg %q", k)
		}
	}
	return fn, keys, nil
}

func parsePredicate(s string) (Predicate, error) {
	for _, op := range []CmpOp{OpEq, OpNe, OpLe, OpGe, OpLt, OpGt} {
		if i := strings.Index(s, string(op)); i > 0 {
			field := strings.TrimSpace(s[:i])
			raw := strings.TrimSpace(s[i+len(op):])
			v, err := parseScalar(raw)
			if err != nil {
				return Predicate{}, fmt.Errorf("filter %q: %w", s, err)
			}
			return Predicate{Field: field, Op: op, Value: v}, nil
		}
	}
	return Predicate{}, fmt.Errorf("filter %q: no comparison operator", s)
}

func parseNameList(s string) []string {
	s = strings.Trim(strings.TrimSpace(s), "[]")
	var out []string
	for _, p := range strings.Split(s, ",") {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// parseRawList splits "[a, b, c]" or a single value into raw value strings.
func parseRawList(s string) []string {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		return splitTop(s[1 : len(s)-1])
	}
	return []string{s}
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, p := range parseRawList(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad port %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad interval %q", s)
	}
	return d, nil
}

// parseScalar parses constants: integers, IPs, protocol names, TCP flag
// expressions.
func parseScalar(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "udp":
		return uint64(netproto.IPProtoUDP), nil
	case "tcp":
		return uint64(netproto.IPProtoTCP), nil
	case "icmp":
		return uint64(netproto.IPProtoICMP), nil
	}
	if flags, ok := parseFlags(s); ok {
		return uint64(flags), nil
	}
	if strings.Count(s, ".") == 3 {
		ip, err := netproto.ParseIPv4(s)
		if err != nil {
			return 0, err
		}
		return uint64(ip), nil
	}
	n, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return n, nil
}

func parseFlags(s string) (uint8, bool) {
	names := map[string]uint8{
		"SYN": netproto.TCPSyn, "ACK": netproto.TCPAck, "FIN": netproto.TCPFin,
		"RST": netproto.TCPRst, "PSH": netproto.TCPPsh, "URG": netproto.TCPUrg,
	}
	var flags uint8
	for _, part := range strings.Split(s, "+") {
		f, ok := names[strings.TrimSpace(part)]
		if !ok {
			return 0, false
		}
		flags |= f
	}
	return flags, true
}

// parseValue parses a full Table 2 value: constant, list, range array,
// random array, query-record reference, or quoted payload.
func parseValue(s string) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, `"`) && strings.HasSuffix(s, `"`) && len(s) >= 2:
		return Payload(s[1 : len(s)-1]), nil

	case strings.HasPrefix(s, "range(") && strings.HasSuffix(s, ")"):
		parts := splitTop(s[len("range(") : len(s)-1])
		if len(parts) != 3 {
			return nil, fmt.Errorf("range wants 3 args, got %q", s)
		}
		var vals [3]uint64
		for i, p := range parts {
			v, err := parseScalar(p)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return Range{Start: vals[0], End: vals[1], Step: vals[2]}, nil

	case strings.HasPrefix(s, "random(") && strings.HasSuffix(s, ")"):
		parts := splitTop(s[len("random(") : len(s)-1])
		if len(parts) < 3 {
			return nil, fmt.Errorf("random wants (dist, p1, p2[, bits]), got %q", s)
		}
		dist, err := parseDist(parts[0])
		if err != nil {
			return nil, err
		}
		p1, err1 := strconv.ParseFloat(parts[1], 64)
		p2, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("random params in %q", s)
		}
		bits := 16
		if len(parts) == 4 {
			b, err := strconv.Atoi(parts[3])
			if err != nil {
				return nil, fmt.Errorf("random bits in %q", s)
			}
			bits = b
		}
		return Random{Dist: dist, P1: p1, P2: p2, Bits: bits}, nil

	case strings.HasPrefix(s, "["):
		var list List
		for _, p := range parseRawList(s) {
			v, err := parseScalar(p)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
		}
		return list, nil

	case isQueryRef(s):
		return parseRef(s)
	}
	v, err := parseScalar(s)
	if err != nil {
		return nil, err
	}
	return Const(v), nil
}

func parseDist(s string) (DistKind, error) {
	s = strings.Trim(strings.TrimSpace(s), "'\"")
	switch s {
	case "U", "uniform":
		return DistUniform, nil
	case "N", "normal":
		return DistNormal, nil
	case "E", "exponential", "exp":
		return DistExponential, nil
	}
	return "", fmt.Errorf("unknown distribution %q", s)
}

// isQueryRef recognizes "Qn.field" style references (an identifier with a
// dot where the prefix is not a known header name).
func isQueryRef(s string) bool {
	i := strings.Index(s, ".")
	if i <= 0 {
		return false
	}
	prefix := s[:i]
	c := prefix[0]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_') {
		return false
	}
	switch prefix {
	case "ipv4", "tcp", "udp", "eth", "icmp", "meta":
		return false
	}
	// Must not be an IP.
	if strings.Count(s, ".") == 3 {
		return false
	}
	return true
}

func parseRef(s string) (Value, error) {
	i := strings.Index(s, ".")
	rest := s[i+1:]
	offset := int64(0)
	if j := strings.IndexAny(rest, "+-"); j > 0 {
		n, err := strconv.ParseInt(strings.ReplaceAll(rest[j:], " ", ""), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad reference offset in %q", s)
		}
		offset = n
		rest = strings.TrimSpace(rest[:j])
	}
	return Ref{Field: rest, Offset: offset}, nil
}
