package compiler

// exec.go is the compiled-plan half of the witness differential oracle.
// internal/verify's symbolic walker extracts witness packets — one concrete
// input per feasible leaf path of the generated p4ir program — and two
// executors replay each:
//
//   - ReplayPlan (here): serializes the witness into a real wire frame,
//     parses it with the asic PHV/field codec, matches through real
//     asic.Table index structures where the keys are PHV fields, and walks
//     the control flow on the parsed representation;
//   - verify.Interp: the naive reference, a flat field map with
//     linear-scan matching and no packet bytes at all.
//
// Both sides share only the deterministic op semantics (verify.ExecOp) and
// gateway evaluation; everything else — codec, widths, header validity,
// match structures — is independent, so a disagreement pinpoints a real
// divergence between the ASIC model and the IR's intended meaning.

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/p4ir"
	"github.com/hypertester/hypertester/internal/verify"
)

// TemplateInvariants derives the environment facts the symbolic verifier
// needs from the compiled templates: a packet whose metadata carries
// template N's ID is (by construction of HTPS) a clone of template N's
// packet, so it has template N's header stack and select-field values. A
// header the generated parser cannot extract (VLAN, ICMP) shows up as a
// Then atom over that header, which refutes any path claiming the ID — the
// walker then never reports the template's editor writes as invalid-header
// accesses on packets that cannot exist.
func TemplateInvariants(prog *Program) []verify.Implication {
	var out []verify.Implication
	for _, tmpl := range prog.Templates {
		phv := asic.NewPHV(tmpl.Packet.Clone())
		then := []p4ir.Atom{{Field: "eth.type", Op: p4ir.CmpEq, Value: uint64(phv.Stack.Eth.EtherType)}}
		if phv.Has(netproto.LayerVLAN) {
			then = append(then, p4ir.Atom{Field: "vlan.id", Op: p4ir.CmpEq, Value: uint64(phv.Stack.VLAN.VID)})
		}
		if phv.Has(netproto.LayerIPv4) {
			then = append(then, p4ir.Atom{Field: "ipv4.proto", Op: p4ir.CmpEq, Value: uint64(phv.Stack.IP4.Protocol)})
		}
		if phv.Has(netproto.LayerICMP) {
			then = append(then, p4ir.Atom{Field: "icmp.type", Op: p4ir.CmpEq, Value: uint64(phv.Stack.ICMP.Type)})
		}
		out = append(out, verify.Implication{
			If:   p4ir.Atom{Field: "meta.template_id", Op: p4ir.CmpEq, Value: uint64(tmpl.ID)},
			Then: then,
		})
		phv.Pkt.Release()
	}
	return out
}

// AnalyzePlan runs the path-sensitive verifier over the compiled plan with
// the template invariants installed.
func AnalyzePlan(prog *Program, opts verify.Options) *verify.Report {
	opts.Invariants = append(TemplateInvariants(prog), opts.Invariants...)
	return verify.Analyze(prog.P4, opts)
}

// SyntheticEntries builds one hit entry per runtime-populated table (a table
// the IR declares without compile-time entries) from the witness's initial
// key values. Installing the same map on both executors keeps the
// differential meaningful: each side must reach the same hit-or-miss verdict
// through its own matching machinery.
func SyntheticEntries(p *p4ir.Program, wit verify.Witness) map[string][]p4ir.Entry {
	m := verify.NewMapMachine(wit)
	out := map[string][]p4ir.Entry{}
	for _, t := range p.Tables {
		if len(t.Entries) > 0 || len(t.Keys) == 0 {
			continue
		}
		vals := make([]uint64, len(t.Keys))
		for i, kd := range t.Keys {
			vals[i] = m.Get(kd.Field)
		}
		switch t.Match {
		case p4ir.MatchExact:
			out[t.Name] = []p4ir.Entry{{Values: vals}}
		case p4ir.MatchTernary:
			masks := make([]uint64, len(t.Keys))
			for i, kd := range t.Keys {
				masks[i] = verify.WidthMask(kd.Field)
			}
			out[t.Name] = []p4ir.Entry{{Values: vals, Masks: masks}}
		case p4ir.MatchRange:
			out[t.Name] = []p4ir.Entry{{Lo: vals[0], Hi: vals[0]}}
		}
	}
	return out
}

// witnessPacket serializes a normalized witness into a wire frame. The
// layers are assembled by hand — not through the netproto builders, whose
// convenience defaults (TTL 64, TCP window 65535) would diverge from the
// zero defaults the naive executor assumes for unconstrained fields.
func witnessPacket(wit *verify.Witness) (*netproto.Packet, error) {
	has := map[string]bool{}
	for _, h := range wit.Headers {
		has[h] = true
	}
	if has["vlan"] {
		return nil, fmt.Errorf("compiler: witness %q carries a VLAN header, which generated parsers never extract", wit.Program)
	}
	f := func(name string) uint64 { return wit.Fields[name] }

	layers := []netproto.SerializableLayer{&netproto.Ethernet{
		Dst:       netproto.MACFromUint64(f("eth.dst")),
		Src:       netproto.MACFromUint64(f("eth.src")),
		EtherType: uint16(f("eth.type")),
	}}
	hdrLen := netproto.EthernetLen
	if has["ipv4"] {
		src, dst := netproto.IPv4Addr(f("ipv4.sip")), netproto.IPv4Addr(f("ipv4.dip"))
		layers = append(layers, &netproto.IPv4{
			TOS: uint8(f("ipv4.tos")), ID: uint16(f("ipv4.id")),
			TTL: uint8(f("ipv4.ttl")), Protocol: uint8(f("ipv4.proto")),
			Src: src, Dst: dst,
		})
		hdrLen += netproto.IPv4MinLen
		switch {
		case has["tcp"]:
			layers = append(layers, &netproto.TCP{
				SrcPort: uint16(f("tcp.sport")), DstPort: uint16(f("tcp.dport")),
				Seq: uint32(f("tcp.seq_no")), Ack: uint32(f("tcp.ack_no")),
				Flags: uint8(f("tcp.flag")), Window: uint16(f("tcp.window")),
				PseudoSrc: src, PseudoDst: dst,
			})
			hdrLen += netproto.TCPMinLen
		case has["udp"]:
			layers = append(layers, &netproto.UDP{
				SrcPort: uint16(f("udp.sport")), DstPort: uint16(f("udp.dport")),
				PseudoSrc: src, PseudoDst: dst,
			})
			hdrLen += netproto.UDPLen
		case has["icmp"]:
			layers = append(layers, &netproto.ICMP{
				Type: uint8(f("icmp.type")), Ident: uint16(f("icmp.ident")),
				Seq: uint16(f("icmp.seq")),
			})
			hdrLen += netproto.ICMPLen
		}
	}
	frameLen := int(f("pkt_len"))
	if frameLen < hdrLen {
		frameLen = hdrLen
	}
	if frameLen > hdrLen {
		layers = append(layers, netproto.Pad(frameLen-hdrLen))
	}
	raw, err := netproto.Serialize(layers...)
	if err != nil {
		return nil, fmt.Errorf("compiler: serializing witness %q: %w", wit.Program, err)
	}
	pkt := &netproto.Packet{Data: raw}
	pkt.Meta.TemplateID = int(f("meta.template_id"))
	pkt.Meta.InPort = int(f("meta.in_port"))
	pkt.Meta.IngressPs = int64(f("meta.ingress_ts"))
	pkt.Meta.ReplicaID = int(f("eg_intr_md.rid"))
	// The frame is the authoritative length; expose it to the naive side.
	wit.Fields["pkt_len"] = uint64(pkt.Len())
	return pkt, nil
}

// phvMachine adapts an asic.PHV to the verify.Machine interface. Header and
// intrinsic fields go through the real asic field codec (width truncation,
// read-only intrinsics, the VLAN gate, l4 aliasing); compiler metadata the
// asic does not model lives in a width-masked side map.
type phvMachine struct {
	phv  *asic.PHV
	side map[string]uint64
}

func newPHVMachine(phv *asic.PHV, wit verify.Witness) *phvMachine {
	m := &phvMachine{phv: phv, side: map[string]uint64{"meta.one": 1}}
	for k, v := range wit.Fields {
		if _, err := asic.FieldByName(k); err == nil {
			continue // parsed from the frame or carried in Meta
		}
		switch k {
		case "eg_intr_md.rid", "ig_intr_md.mcast_grp":
			continue
		}
		m.side[k] = v & verify.WidthMask(k)
	}
	return m
}

func (m *phvMachine) Get(name string) uint64 {
	switch name {
	case "eg_intr_md.rid":
		return uint64(m.phv.Meta.ReplicaID) & 0xffff
	case "ig_intr_md.mcast_grp":
		return uint64(m.phv.McastGroup) & 0xffff
	}
	if f, err := asic.FieldByName(name); err == nil {
		return f.Get(m.phv)
	}
	return m.side[name]
}

func (m *phvMachine) Set(name string, v uint64) {
	switch name {
	case "eg_intr_md.rid":
		m.phv.Meta.ReplicaID = int(v & 0xffff)
		return
	case "ig_intr_md.mcast_grp":
		m.phv.McastGroup = int(v & 0xffff)
		return
	}
	if f, err := asic.FieldByName(name); err == nil {
		f.Set(m.phv, v)
		return
	}
	m.side[name] = v & verify.WidthMask(name)
}

// planTable is one table prepared for replay: its effective entries and,
// when every key is an asic PHV field, a real indexed asic.Table whose
// action closures record which entry matched.
type planTable struct {
	def     *p4ir.TableDef
	entries []p4ir.Entry
	asicT   *asic.Table
	fired   int
}

// buildPlanTables compiles the IR tables into replay form. Tables keyed on
// compiler metadata (meta.one, pkt_id, ...) fall back to linear matching
// through the machine interface; exact tables with duplicate key tuples also
// fall back, because the asic's hash map would resolve the duplicate by
// overwrite where the IR semantics are first-match.
func buildPlanTables(p *p4ir.Program, overrides map[string][]p4ir.Entry) (map[string]*planTable, error) {
	out := map[string]*planTable{}
	for _, t := range p.Tables {
		pt := &planTable{def: t, entries: t.Entries}
		if over, ok := overrides[t.Name]; ok {
			pt.entries = over
		}
		out[t.Name] = pt
		if len(pt.entries) == 0 {
			continue
		}
		fields := make([]asic.Field, len(t.Keys))
		resolvable := true
		for i, kd := range t.Keys {
			fd, err := asic.FieldByName(kd.Field)
			if err != nil {
				resolvable = false
				break
			}
			fields[i] = fd
		}
		if !resolvable || (t.Match == p4ir.MatchExact && (len(t.Keys) > 4 || hasDuplicateKeys(pt.entries))) {
			// asic.Table.Apply packs exact keys into a 4-word stack buffer,
			// so wider key tuples (the 5-tuple query tables) stay on the
			// linear path.
			continue
		}
		var kind asic.MatchKind
		switch t.Match {
		case p4ir.MatchExact:
			kind = asic.MatchExact
		case p4ir.MatchTernary:
			kind = asic.MatchTernary
		case p4ir.MatchRange:
			kind = asic.MatchRange
		default:
			continue
		}
		at := asic.NewTable(t.Name, kind, fields...)
		ok := true
		for i := range pt.entries {
			e := &pt.entries[i]
			idx := i
			act := func(*asic.PHV) { pt.fired = idx }
			var err error
			switch t.Match {
			case p4ir.MatchExact:
				err = at.AddExact(e.Values, act)
			case p4ir.MatchTernary:
				masks := e.Masks
				if masks == nil {
					masks = make([]uint64, len(t.Keys))
					for k, kd := range t.Keys {
						masks[k] = verify.WidthMask(kd.Field)
					}
				}
				err = at.AddTernary(e.Values, masks, e.Priority, act)
			case p4ir.MatchRange:
				err = at.AddRange(e.Lo, e.Hi, e.Priority, act)
			}
			if err != nil {
				ok = false
				break
			}
		}
		if ok {
			pt.asicT = at
		}
	}
	return out, nil
}

func hasDuplicateKeys(entries []p4ir.Entry) bool {
	seen := map[string]bool{}
	for i := range entries {
		key := fmt.Sprint(entries[i].Values)
		if seen[key] {
			return true
		}
		seen[key] = true
	}
	return false
}

// planExec walks the compiled control flow over the parsed PHV.
type planExec struct {
	prog    *p4ir.Program
	tables  map[string]*planTable
	actions map[string]*p4ir.ActionDef
}

func (pe *planExec) walk(m *phvMachine, st *verify.ExecState, stmts []p4ir.ControlStmt) {
	for i := range stmts {
		s := &stmts[i]
		if s.Apply != "" {
			pe.applyTable(m, st, s.Apply)
			continue
		}
		if verify.EvalCondString(m, s.If) {
			pe.walk(m, st, s.Then)
		} else {
			pe.walk(m, st, s.Else)
		}
	}
}

func (pe *planExec) applyTable(m *phvMachine, st *verify.ExecState, name string) {
	pt := pe.tables[name]
	if pt == nil {
		return
	}
	idx, hit := -1, false
	if pt.asicT != nil {
		pt.fired = -1
		hit = pt.asicT.Apply(m.phv)
		idx = pt.fired
	} else {
		keys := make([]uint64, len(pt.def.Keys))
		for i, kd := range pt.def.Keys {
			keys[i] = m.Get(kd.Field)
		}
		idx, hit = verify.MatchEntries(pt.def, pt.entries, keys)
	}
	if !hit || idx < 0 {
		st.Out.Tables = append(st.Out.Tables, name+":miss")
		return
	}
	act := pt.entries[idx].ActionName(pt.def)
	st.Out.Tables = append(st.Out.Tables, name+":"+act)
	if a := pe.actions[act]; a != nil {
		verify.RunAction(m, st, a)
	}
}

// ReplayPlan replays one witness through the compiled plan: real frame,
// real parser, real field codec, real match tables. The witness is
// normalized in place (and its pkt_len pinned to the actual frame length),
// so running verify.Interp on the same witness afterwards replays the
// identical input. entries supplies synthetic rows for runtime-populated
// tables; pass the same map to the naive side.
func ReplayPlan(prog *Program, wit *verify.Witness, entries map[string][]p4ir.Entry) (*verify.Outcome, error) {
	if prog.P4 == nil {
		return nil, fmt.Errorf("compiler: program has no generated P4 to replay")
	}
	verify.NormalizeWitness(wit)
	pkt, err := witnessPacket(wit)
	if err != nil {
		return nil, err
	}
	tables, err := buildPlanTables(prog.P4, entries)
	if err != nil {
		return nil, err
	}
	pe := &planExec{prog: prog.P4, tables: tables, actions: map[string]*p4ir.ActionDef{}}
	for _, a := range prog.P4.Actions {
		pe.actions[a.Name] = a
	}

	m := newPHVMachine(asic.NewPHV(pkt), *wit)
	st := verify.NewExecState()
	for pass := 0; ; pass++ {
		st.RecircReq = false
		pe.walk(m, st, prog.P4.Ingress)
		pe.walk(m, st, prog.P4.Egress)
		if !st.RecircReq || pass >= verify.RecircCap {
			break
		}
	}
	st.Out.Fields = verify.CaptureFields(m)
	return st.Out, nil
}
