package compiler

import (
	"math"
	"math/rand"
	"testing"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/p4ir"
	"github.com/hypertester/hypertester/internal/stats"
)

func throughputTask(t *testing.T) *ntapi.Task {
	t.Helper()
	task, err := ntapi.Parse("throughput", `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set([loop, length], [0, 64])
    .set(port, 0)
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
Q2 = query().map(p -> (pkt_len)).reduce(func=sum)
`)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestCompileThroughput(t *testing.T) {
	prog, err := Compile(throughputTask(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Templates) != 1 || len(prog.Queries) != 2 {
		t.Fatalf("templates=%d queries=%d", len(prog.Templates), len(prog.Queries))
	}
	tmpl := prog.Templates[0]
	if tmpl.Packet.Len() != 64 {
		t.Fatalf("template frame = %d bytes", tmpl.Packet.Len())
	}
	var s netproto.Stack
	if err := s.Decode(tmpl.Packet.Data); err != nil {
		t.Fatal(err)
	}
	if s.IP4.Dst != netproto.MustIPv4("9.9.9.9") || s.IP4.Src != netproto.MustIPv4("1.1.0.1") {
		t.Fatalf("template IPs: %v -> %v", s.IP4.Src, s.IP4.Dst)
	}
	if !s.Has(netproto.LayerUDP) || s.UDP.DstPort != 1 {
		t.Fatalf("template L4: %+v", s.UDP)
	}
	if len(tmpl.Mods) != 0 {
		t.Fatalf("constant-only trigger should have no editor mods: %+v", tmpl.Mods)
	}
	if tmpl.IntervalPs != 0 {
		t.Fatalf("interval = %d, want 0 (line rate)", tmpl.IntervalPs)
	}
	// Sent-traffic query bound to the template; received query at ingress.
	if !prog.Queries[0].Egress || prog.Queries[0].SentTemplateID != 1 {
		t.Fatalf("q1 plan: %+v", prog.Queries[0])
	}
	if prog.Queries[1].Egress {
		t.Fatal("q2 should monitor received traffic")
	}
	if prog.Queries[0].ValueField != asic.FieldPktLen {
		t.Fatalf("q1 value field = %v", prog.Queries[0].ValueField)
	}
	// Generated P4 exists and prints.
	if prog.P4 == nil || p4ir.CountedLoC(prog.P4) < 20 {
		t.Fatalf("generated P4 LoC = %d", p4ir.CountedLoC(prog.P4))
	}
}

func TestCompileEditorMods(t *testing.T) {
	task, err := ntapi.Parse("mods", `
T1 = trigger()
    .set([dip, proto], [9.9.9.9, tcp])
    .set(sport, range(1024, 2047, 1))
    .set(dport, [80, 81, 82])
    .set(seq_no, random('N', 1000, 100, 16))
    .set(port, 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tmpl := prog.Templates[0]
	if len(tmpl.Mods) != 3 {
		t.Fatalf("mods = %d, want 3", len(tmpl.Mods))
	}
	kinds := map[ModKind]FieldMod{}
	for _, m := range tmpl.Mods {
		kinds[m.Kind] = m
	}
	prog1, ok := kinds[ModProgression]
	if !ok || prog1.Start != 1024 || prog1.End != 2047 {
		t.Fatalf("progression: %+v", prog1)
	}
	list, ok := kinds[ModList]
	if !ok || len(list.List) != 3 {
		t.Fatalf("list: %+v", list)
	}
	rnd, ok := kinds[ModRandom]
	if !ok || len(rnd.InvTable) == 0 {
		t.Fatalf("random: %+v", rnd)
	}
	// Stream length is the longest sequence.
	if tmpl.StreamLen != 1024 {
		t.Fatalf("stream len = %d, want 1024", tmpl.StreamLen)
	}
	// TCP implied by seq_no set.
	var s netproto.Stack
	if err := s.Decode(tmpl.Packet.Data); err != nil {
		t.Fatal(err)
	}
	if !s.Has(netproto.LayerTCP) {
		t.Fatal("template should be TCP")
	}
}

func TestCompileRandomInvTableShape(t *testing.T) {
	task := ntapi.NewTask("rand")
	task.Trigger().Set("sport", ntapi.Random{Dist: ntapi.DistNormal, P1: 30000, P2: 2000, Bits: 16}).WithPorts(0)
	prog, err := Compile(task, Options{RandTableSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	table := prog.Templates[0].Mods[0].InvTable
	if len(table) != 1024 {
		t.Fatalf("table size = %d", len(table))
	}
	// Median of the table should be near the mean; tails spread.
	mid := float64(table[len(table)/2])
	if math.Abs(mid-30000) > 200 {
		t.Fatalf("median = %v, want ~30000", mid)
	}
	if table[0] >= table[len(table)-1] {
		t.Fatal("inverse CDF not increasing")
	}
	lo := stats.NormalInvCDF(30000, 2000)(0.5 / 1024)
	if math.Abs(float64(table[0])-lo) > 2 {
		t.Fatalf("low tail %d vs theory %.0f", table[0], lo)
	}
}

func TestCompileLoopPackets(t *testing.T) {
	task := ntapi.NewTask("loop")
	task.Trigger().
		Set("dport", ntapi.List{80, 81, 82, 83}).
		WithLoop(5).WithPorts(0)
	prog, err := Compile(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Templates[0].LoopPackets != 20 {
		t.Fatalf("loop packets = %d, want 20 (5 loops x 4)", prog.Templates[0].LoopPackets)
	}
}

func TestCompileStatelessWiring(t *testing.T) {
	task, err := ntapi.Parse("web", `
T1 = trigger()
    .set([dip, dport, proto, flag, seq_no], [9.9.9.9, 80, tcp, SYN, 1])
    .set(sport, range(1024, 1279, 1))
    .set(interval, 10us)
    .set(port, 0)
Q1 = query().filter(tcp_flag == SYN+ACK)
T2 = trigger(Q1)
    .set([dip, sip, dport, sport], [Q1.sip, Q1.dip, Q1.sport, Q1.dport])
    .set([flag, ack_no], [ACK, Q1.seq_no + 1])
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q1 := prog.Queries[0]
	t2 := prog.Templates[1]
	if t2.FromQueryID != q1.ID {
		t.Fatalf("T2 from query %d, want %d", t2.FromQueryID, q1.ID)
	}
	if q1.TriggerTemplateID != t2.ID {
		t.Fatalf("Q1 triggers template %d, want %d", q1.TriggerTemplateID, t2.ID)
	}
	// Record fields must cover every referenced field plus in_port.
	want := map[asic.Field]bool{
		asic.FieldIPv4Src: true, asic.FieldIPv4Dst: true,
		asic.FieldL4SrcPort: true, asic.FieldL4DstPort: true,
		asic.FieldTCPSeq: true, asic.FieldInPort: true,
	}
	got := map[asic.Field]bool{}
	for _, f := range q1.RecordFields {
		got[f] = true
	}
	for f := range want {
		if !got[f] {
			t.Errorf("record fields missing %v (have %v)", f, q1.RecordFields)
		}
	}
	// T2's interval defaults to 0 and has record mods.
	found := false
	for _, m := range t2.Mods {
		if m.Kind == ModFromRecord && m.Field == asic.FieldTCPAck &&
			m.RecordField == asic.FieldTCPSeq && m.RecordOffset == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ack_no record mod missing: %+v", t2.Mods)
	}
}

func TestHeaderSpaceSentZipSemantics(t *testing.T) {
	// sport range of 4 and dport list of 2: the editor zips them, so one
	// pass yields lcm(4,2)=4 tuples.
	task := ntapi.NewTask("zip")
	tr := task.Trigger().
		Set("sip", ntapi.IP("1.1.0.1")).Set("dip", ntapi.IP("9.9.9.9")).
		Set("sport", ntapi.Range{Start: 1000, End: 1003, Step: 1}).
		Set("dport", ntapi.List{80, 81}).
		WithPorts(0)
	task.QueryOf(tr).Reduce(ntapi.AggCount)
	prog, err := Compile(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := prog.Queries[0]
	if q.HeaderSpaceSize != 4 {
		t.Fatalf("header space = %d, want 4 (zip of lengths 4 and 2)", q.HeaderSpaceSize)
	}
}

func TestHeaderSpaceReceivedReversed(t *testing.T) {
	// For received traffic the space is the response direction: the
	// probe's dip appears as sip.
	task := ntapi.NewTask("rev")
	task.Trigger().
		Set("sip", ntapi.IP("1.1.0.1")).
		Set("dip", ntapi.Range{Start: uint64(netproto.MustIPv4("9.9.9.0")), End: uint64(netproto.MustIPv4("9.9.9.9")), Step: 1}).
		Set("proto", ntapi.Const(netproto.IPProtoTCP)).
		Set("dport", ntapi.Const(80)).Set("sport", ntapi.Const(1024)).
		WithPorts(0)
	task.Query().Reduce(ntapi.AggCount, "ipv4.sip")
	prog, err := Compile(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := prog.Queries[0]
	if q.HeaderSpaceSize != 10 {
		t.Fatalf("response header space = %d, want 10 (the probed dips)", q.HeaderSpaceSize)
	}
}

func TestCompileRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"port too large", `T1 = trigger().set(dport, 70000).set(port, 0)`},
		{"list exceeds width", `T1 = trigger().set(ipv4.ttl, [1, 300]).set(port, 0)`},
		{"range exceeds width", `T1 = trigger().set(dport, range(60000, 70000, 1)).set(port, 0)`},
		{"bad length", `T1 = trigger().set(length, 20).set(port, 0)`},
		{"oversize length", `T1 = trigger().set(length, 3000).set(port, 0)`},
		{"payload too big for frame", `T1 = trigger().set(length, 64).set(payload, "` + string(make([]byte, 100)) + `").set(port, 0)`},
		{"no port", `T1 = trigger().set(dport, 80)`},
		{"count filter pre-reduce", `Q1 = query().filter(count < 5)`},
		{"post filter non-count", `Q1 = query().reduce(func=sum).filter(dport < 5)`},
	}
	for _, c := range cases {
		task, err := ntapi.Parse(c.name, c.src)
		if err != nil {
			// Some are parse-time errors; either rejection layer is fine.
			continue
		}
		if _, err := Compile(task, Options{}); err == nil {
			t.Errorf("%s: compiled without error", c.name)
		}
	}
}

func TestCompileRejectsTooManyTemplates(t *testing.T) {
	// One recirculation path holds AcceleratorCapacity(1500) large
	// templates; one more must be rejected with a pointer to loopback
	// ports (§6.1).
	capacity := asic.AcceleratorCapacity(1500)
	task := ntapi.NewTask("many")
	for i := 0; i <= capacity; i++ {
		task.Trigger().Set("dip", ntapi.IP("9.9.9.9")).WithLength(1500).WithPorts(0)
	}
	if _, err := Compile(task, Options{RecircPaths: 1}); err == nil {
		t.Fatal("over-capacity template count accepted")
	}
	// With enough paths it compiles.
	if _, err := Compile(task, Options{RecircPaths: 2}); err != nil {
		t.Fatalf("with 2 paths: %v", err)
	}
}

func TestCompileRejectsOverBudget(t *testing.T) {
	// Enough distinct/reduce queries exhaust the chip's SALUs.
	task := ntapi.NewTask("hog")
	tr := task.Trigger().Set("dip", ntapi.IP("9.9.9.9")).WithPorts(0)
	_ = tr
	for i := 0; i < 40; i++ {
		task.Query().Reduce(ntapi.AggCount, "ipv4.sip")
	}
	if _, err := Compile(task, Options{}); err == nil {
		t.Fatal("resource-hog task accepted")
	}
}

func TestExactKeysNoFalsePositivesByConstruction(t *testing.T) {
	// Property: after removing the exact keys, no two remaining tuples
	// share (array slot, digest) in either array.
	// Randomized flow tuples: CRC hashes behave uniformly on random
	// keys (sequential keys can map injectively — linear hash — and then
	// need no exact entries at all).
	rng := rand.New(rand.NewSource(17))
	tuples := make([][]uint64, 0, 50000)
	for i := 0; i < 50000; i++ {
		tuples = append(tuples, []uint64{rng.Uint64() & 0xffffffff, rng.Uint64() & 0xffff, 6})
	}
	const arraySize = 1 << 12
	const digestBits = 12
	exact := ComputeExactKeys(tuples, arraySize, digestBits,
		asic.PolyCRC32, asic.PolyCRC32C, asic.PolyKoopman)
	if len(exact) == 0 {
		t.Fatal("expected some collisions at this density")
	}
	inExact := map[string]bool{}
	for _, e := range exact {
		inExact[string(EncodeKey(e))] = true
	}
	h1 := asic.NewHashUnit("t1", asic.PolyCRC32)
	halt := asic.NewHashUnit("t2", asic.PolyCRC32C)
	hd := asic.NewHashUnit("td", asic.PolyKoopman)
	seen := map[[2]uint32]bool{}
	for _, tu := range tuples {
		k := EncodeKey(tu)
		if inExact[string(k)] {
			continue
		}
		idx1, idx2, d := CuckooSlots(k, arraySize, digestBits, h1, hd, halt)
		c1 := [2]uint32{uint32(idx1), d}
		c2 := [2]uint32{uint32(idx2), d}
		if seen[c1] || seen[c2] {
			t.Fatal("two non-exact tuples still collide: false positive possible")
		}
		seen[c1] = true
		seen[c2] = true
	}
}

func TestExactKeysCountScalesWithDigestWidth(t *testing.T) {
	// Fig. 17: 32-bit digests need far fewer exact entries than 16-bit.
	rng := rand.New(rand.NewSource(23))
	tuples := make([][]uint64, 0, 200000)
	for i := 0; i < 200000; i++ {
		tuples = append(tuples, []uint64{rng.Uint64() & 0xffffffff, rng.Uint64() & 0xffffffff, 6})
	}
	n16 := len(ComputeExactKeys(tuples, 1<<16, 16, asic.PolyCRC32, asic.PolyCRC32C, asic.PolyKoopman))
	n32 := len(ComputeExactKeys(tuples, 1<<16, 32, asic.PolyCRC32, asic.PolyCRC32C, asic.PolyKoopman))
	if n32 >= n16 && n16 > 0 {
		t.Fatalf("32-bit digest entries (%d) should be fewer than 16-bit (%d)", n32, n16)
	}
}

func TestFieldModValueAt(t *testing.T) {
	list := FieldMod{Kind: ModList, List: []uint64{7, 8, 9}}
	if list.ValueAt(0) != 7 || list.ValueAt(4) != 8 {
		t.Fatal("list ValueAt")
	}
	prog := FieldMod{Kind: ModProgression, Start: 10, End: 20, Step: 5}
	if prog.StreamLen() != 3 {
		t.Fatalf("prog stream len = %d", prog.StreamLen())
	}
	if prog.ValueAt(0) != 10 || prog.ValueAt(1) != 15 || prog.ValueAt(2) != 20 || prog.ValueAt(3) != 10 {
		t.Fatal("progression ValueAt")
	}
}

func TestGeneratedP4Printable(t *testing.T) {
	prog, err := Compile(throughputTask(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := p4ir.Print(prog.P4)
	for _, want := range []string{"accelerator", "replicator_1", "query_1", "control ingress", "control egress"} {
		if !contains(src, want) {
			t.Errorf("generated P4 missing %q", want)
		}
	}
	// Resources should be modest for this small task.
	n := prog.Resources.Normalize(p4ir.SwitchP4Baseline)
	if n.SALU > 100 {
		t.Fatalf("SALU usage %v%% implausible for throughput task", n.SALU)
	}
}

func contains(s, sub string) bool { return indexOf(s, sub) >= 0 }

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestCompileICMPTemplate(t *testing.T) {
	task, err := ntapi.Parse("ping", `
T1 = trigger()
    .set([dip, sip, proto], [9.9.9.9, 1.1.0.1, icmp])
    .set(icmp.type, 8)
    .set(icmp.seq, range(0, 99, 1))
    .set(port, 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var s netproto.Stack
	if err := s.Decode(prog.Templates[0].Packet.Data); err != nil {
		t.Fatal(err)
	}
	if !s.Has(netproto.LayerICMP) || s.ICMP.Type != 8 {
		t.Fatalf("icmp template: %v %+v", s.Decoded, s.ICMP)
	}
	if prog.Templates[0].StreamLen != 100 {
		t.Fatalf("stream len = %d", prog.Templates[0].StreamLen)
	}
}

func TestCompileVLANTemplate(t *testing.T) {
	task, err := ntapi.Parse("vlan", `
T1 = trigger()
    .set([dip, proto], [9.9.9.9, udp])
    .set(vlan.id, 100)
    .set(length, 68)
    .set(port, 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var s netproto.Stack
	if err := s.Decode(prog.Templates[0].Packet.Data); err != nil {
		t.Fatal(err)
	}
	if !s.Has(netproto.LayerVLAN) || s.VLAN.VID != 100 {
		t.Fatalf("vlan template: %v vid=%d", s.Decoded, s.VLAN.VID)
	}
	// VLAN-tagged ICMP is rejected.
	bad, err := ntapi.Parse("badvlan", `
T1 = trigger().set([dip, proto], [9.9.9.9, icmp]).set(vlan.id, 5).set(port, 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(bad, Options{}); err == nil {
		t.Fatal("vlan-tagged icmp accepted")
	}
}

func TestCompileIntervalDistribution(t *testing.T) {
	task, err := ntapi.Parse("poisson", `
T1 = trigger()
    .set([dip, proto], [9.9.9.9, udp])
    .set(interval, random('E', 5000, 0))
    .set(port, 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(task, Options{RandTableSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	table := prog.Templates[0].IntervalTablePs
	if len(table) != 256 {
		t.Fatalf("interval table size = %d", len(table))
	}
	// Monotonically nondecreasing (inverse CDF) with a plausible mean.
	var sum int64
	for i, v := range table {
		if i > 0 && v < table[i-1] {
			t.Fatalf("interval table not monotone at %d", i)
		}
		sum += v
	}
	meanNs := float64(sum) / float64(len(table)) / 1e3
	if meanNs < 4500 || meanNs > 5500 {
		t.Fatalf("interval table mean = %.0fns, want ~5000", meanNs)
	}
	// Initial threshold seeded from the median.
	if prog.Templates[0].IntervalPs != table[128] {
		t.Fatalf("initial interval = %d, want median %d", prog.Templates[0].IntervalPs, table[128])
	}
	// Bad distributions rejected.
	for _, src := range []string{
		`T1 = trigger().set(interval, random('E', 0, 0)).set(dip, 1.2.3.4).set(port, 0)`,
		`T1 = trigger().set(interval, random('N', 0, 5)).set(dip, 1.2.3.4).set(port, 0)`,
		`T1 = trigger().set(interval, random('U', 9, 5)).set(dip, 1.2.3.4).set(port, 0)`,
	} {
		task, err := ntapi.Parse("bad", src)
		if err != nil {
			continue
		}
		if _, err := Compile(task, Options{}); err == nil {
			t.Fatalf("bad interval distribution accepted: %s", src)
		}
	}
}

func TestCompileDelayQueryPlan(t *testing.T) {
	task, err := ntapi.Parse("d", `
T1 = trigger().set([dip, proto], [9.9.9.9, udp]).set(port, 0)
Q1 = query().delay()
Q2 = query().delay(keys={ipv4.id, l4.sport})
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q1 := prog.Queries[0]
	if q1.Kind != ntapi.KindDelay || len(q1.Keys) != 1 || q1.Keys[0] != asic.FieldIPv4ID {
		t.Fatalf("default delay keys: %+v", q1.Keys)
	}
	q2 := prog.Queries[1]
	if len(q2.Keys) != 2 {
		t.Fatalf("explicit delay keys: %+v", q2.Keys)
	}
}

func TestGeneratedP4CoversAllConstructs(t *testing.T) {
	// A kitchen-sink task: stateless trigger, every editor mod kind,
	// reduce + distinct + delay queries. The generated program must
	// validate and print in both dialects with the expected structures.
	task, err := ntapi.Parse("kitchen", `
T1 = trigger()
    .set([dip, dport, proto, flag], [9.9.9.9, 80, tcp, SYN])
    .set(sport, range(1024, 1279, 1))
    .set(tcp.seq_no, random('N', 1000, 100, 16))
    .set(tcp.window, [10, 20, 30])
    .set(interval, 10us)
    .set(port, 0)
Q1 = query().filter(tcp_flag == SYN+ACK)
T2 = trigger(Q1)
    .set([dip, sip], [Q1.sip, Q1.dip])
    .set([proto, flag, ack_no], [tcp, ACK, Q1.seq_no + 1])
Q2 = query().reduce(func=count, keys={ipv4.sip})
Q3 = query().distinct(keys={ipv4.sip, l4.sport})
Q4 = query().delay(keys={ipv4.id})
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.P4.Validate(); err != nil {
		t.Fatal(err)
	}
	src14 := p4ir.Print(prog.P4)
	src16 := p4ir.PrintP416(prog.P4)
	for _, want := range []string{
		"accelerator", "replicator_1", "replicator_2",
		"editor_pop_record_2", // the single wide FIFO pop
		"_rng", "_inv_tbl",    // two-table inverse transform
		"_list", "_prog_tbl", // value list + progression
		"query_2_counter", "query_3_counter", "query_4_delay_tbl",
		"trigger_fifo",
	} {
		if !contains(src14, want) {
			t.Errorf("P4-14 output missing %q", want)
		}
	}
	if !contains(src16, "tna.p4") || !contains(src16, "accelerator.apply();") {
		t.Error("P4-16 output malformed")
	}
	// Exactly one wide record-pop action per stateless template (it
	// appears twice in the source: definition + table action list).
	if n := countOccurrences(src14, "action editor_pop_record_"); n != 1 {
		t.Errorf("record-pop actions = %d, want 1", n)
	}
}

func countOccurrences(s, sub string) int {
	n, i := 0, 0
	for {
		j := indexOf(s[i:], sub)
		if j < 0 {
			return n
		}
		n++
		i += j + len(sub)
	}
}
