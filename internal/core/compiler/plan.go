// Package compiler translates NTAPI tasks (§4) into everything the
// HyperTester runtime deploys (§5.1–5.3):
//
//   - template packets the switch CPU will inject (payload and initial
//     header values are CPU work — the pipeline never touches payloads);
//   - replicator configuration: multicast groups, timer intervals, loop
//     bounds;
//   - editor programs: per-field modifications (constant, value list,
//     arithmetic progression, inverse-transform random);
//   - query plans: compiled filters, reduce/distinct configuration, the
//     extracted header space, and the precomputed exact-key-match entries
//     that remove false positives (§5.2);
//   - trigger-record layouts for stateless connections (§5.3);
//   - a p4ir.Program for resource estimation (Table 7) and generated-code
//     line counting (Table 5).
//
// The compiler also rejects invalid or unimplementable tasks (§6.1): bad
// field values, payload transforms, template counts beyond the accelerator
// capacity, and programs exceeding the chip's resource budget.
package compiler

import (
	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/p4ir"
)

// ModKind selects a field-modification mechanism in the editor (§5.1 lists
// exactly these four, plus record stamping for stateless connections).
type ModKind uint8

// Modification kinds.
const (
	ModConst ModKind = iota
	ModList
	ModProgression
	ModRandom
	ModFromRecord
)

// FieldMod is one editor modification of one header field.
type FieldMod struct {
	Field asic.Field
	Kind  ModKind

	// ModConst.
	Const uint64

	// ModList: value indexed by the per-template packet ID.
	List []uint64

	// ModProgression.
	Start, End, Step uint64

	// ModRandom: the inverse-transform lookup table (§5.1's two-table
	// method), indexed by a uniform random bucket.
	InvTable []uint64
	// RandBits is the uniform generator width feeding the table.
	RandBits int

	// ModFromRecord: stamp the field from the trigger record.
	RecordField  asic.Field
	RecordOffset int64
}

// StreamLen returns how many packets one pass over this modification's
// value sequence takes (1 for constants/random).
func (m *FieldMod) StreamLen() uint64 {
	switch m.Kind {
	case ModList:
		return uint64(len(m.List))
	case ModProgression:
		if m.Step == 0 || m.End < m.Start {
			return 1
		}
		return (m.End-m.Start)/m.Step + 1
	}
	return 1
}

// Template is the compiled form of one trigger.
type Template struct {
	ID      int
	Trigger *ntapi.Trigger

	// Packet is the CPU-built template packet (headers initialized,
	// payload written, padded to the trigger's length).
	Packet *netproto.Packet

	// IntervalPs is the replicator timer threshold in picoseconds;
	// 0 fires on every template arrival (line rate).
	IntervalPs int64

	// IntervalTablePs, when non-empty, is an inverse-transform table of
	// interval thresholds (ps): the replicator samples a fresh threshold
	// after every fire, giving random inter-departure times (§3.1).
	IntervalTablePs []int64

	// Ports are the egress test ports; the multicast group is these plus
	// the recirculation continuation copy.
	Ports []int

	// LoopPackets is the total number of generation events before the
	// replicator stops (0 = forever): loop × stream length.
	LoopPackets uint64

	// StreamLen is one pass over the longest value sequence.
	StreamLen uint64

	// Mods is the editor program, applied in order to each replica.
	Mods []FieldMod

	// FromQueryID marks a query-based trigger (stateless connections):
	// the template fires only when the named query has pushed a trigger
	// record. 0 means a start trigger.
	FromQueryID int
}

// CompiledPred is a filter predicate resolved to a PHV field.
type CompiledPred struct {
	Field asic.Field
	Op    ntapi.CmpOp
	Value uint64
}

// Eval applies the predicate to a PHV.
func (p CompiledPred) Eval(phv *asic.PHV) bool {
	v := p.Field.Get(phv)
	switch p.Op {
	case ntapi.OpEq:
		return v == p.Value
	case ntapi.OpNe:
		return v != p.Value
	case ntapi.OpLt:
		return v < p.Value
	case ntapi.OpLe:
		return v <= p.Value
	case ntapi.OpGt:
		return v > p.Value
	case ntapi.OpGe:
		return v >= p.Value
	}
	return false
}

// AggPred is a predicate over the post-reduce aggregate.
type AggPred struct {
	Op    ntapi.CmpOp
	Value uint64
}

// Eval applies the predicate to an aggregate value.
func (p AggPred) Eval(v uint64) bool {
	switch p.Op {
	case ntapi.OpEq:
		return v == p.Value
	case ntapi.OpNe:
		return v != p.Value
	case ntapi.OpLt:
		return v < p.Value
	case ntapi.OpLe:
		return v <= p.Value
	case ntapi.OpGt:
		return v > p.Value
	case ntapi.OpGe:
		return v >= p.Value
	}
	return false
}

// QueryPlan is the compiled form of one query.
type QueryPlan struct {
	ID    int
	Query *ntapi.Query

	// Egress is true when the query monitors sent traffic (deployed at
	// the egress pipeline, §5.2); false monitors received traffic at
	// ingress.
	Egress bool
	// SentTemplateID restricts an egress query to one template's
	// replicas.
	SentTemplateID int
	// Port restricts an ingress query to one port (-1 = any).
	Port int

	Filters []CompiledPred

	Kind ntapi.QueryKind
	// Keys are the reduce/distinct grouping fields (default 5-tuple).
	Keys []asic.Field
	// ValueField is the aggregated field for sum/max/min; FieldNone
	// counts packets.
	ValueField asic.Field
	Func       ntapi.AggFunc
	Post       []AggPred

	// Counter-table sizing.
	DigestBits int
	ArraySize  int

	// Hash configuration shared between compiler (false-positive
	// precomputation) and runtime (cuckoo arrays): reflected CRC-32
	// polynomials for array 1, array 2, and the stored digest.
	PolyArray1, PolyArray2, PolyDigest uint32

	// ExactKeys are the precomputed colliding key tuples that need
	// exact-match entries to guarantee zero false positives (§5.2).
	// Each entry holds one value per Keys field.
	ExactKeys [][]uint64

	// HeaderSpaceSize is the number of distinct key tuples the compiler
	// extracted for this query.
	HeaderSpaceSize int

	// TriggerTemplateID is the template fired per matching record
	// (stateless connections); 0 = none.
	TriggerTemplateID int
	// RecordFields are the packet fields captured into trigger records.
	RecordFields []asic.Field
}

// Program is a fully compiled task.
type Program struct {
	Task      *ntapi.Task
	Templates []*Template
	Queries   []*QueryPlan

	// P4 is the generated data-plane program (for Table 5's LoC count
	// and Table 7's resource estimate).
	P4        *p4ir.Program
	Resources p4ir.Resources
}

// TemplateByID returns the template with the given 1-based ID, or nil.
func (p *Program) TemplateByID(id int) *Template {
	for _, t := range p.Templates {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// QueryByID returns the query plan with the given 1-based ID, or nil.
func (p *Program) QueryByID(id int) *QueryPlan {
	for _, q := range p.Queries {
		if q.ID == id {
			return q
		}
	}
	return nil
}
