package compiler

import (
	"testing"

	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/p4ir"
	"github.com/hypertester/hypertester/internal/verify"
)

func compileSrc(t *testing.T, name, src string) *Program {
	t.Helper()
	task, err := ntapi.Parse(name, src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	prog, err := Compile(task, Options{})
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	return prog
}

const diffSrc = `
T1 = trigger()
    .set([dip, sip, proto, dport], [9.9.9.9, 1.1.0.1, tcp, 80])
    .set(sport, range(1024, 1279, 1))
    .set([loop, length], [0, 64])
    .set(port, 0)
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
Q2 = query().filter(tcp.flag == 18).map(p -> (pkt_len)).reduce(func=count)
`

// TestTemplateInvariants checks the derived environment facts: a TCP
// template implies IPv4 carriage and protocol 6.
func TestTemplateInvariants(t *testing.T) {
	prog := compileSrc(t, "inv", diffSrc)
	invs := TemplateInvariants(prog)
	if len(invs) != len(prog.Templates) {
		t.Fatalf("got %d implications for %d templates", len(invs), len(prog.Templates))
	}
	inv := invs[0]
	if inv.If.Field != "meta.template_id" || inv.If.Op != p4ir.CmpEq || inv.If.Value != 1 {
		t.Fatalf("If atom = %+v", inv.If)
	}
	want := map[string]uint64{"eth.type": 0x0800, "ipv4.proto": 6}
	for _, a := range inv.Then {
		if v, ok := want[a.Field]; ok && a.Op == p4ir.CmpEq && a.Value == v {
			delete(want, a.Field)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing Then atoms %v in %+v", want, inv.Then)
	}
}

// TestReplayPlanMatchesInterpreter is the differential oracle in miniature:
// every witness the verifier extracts from a compiled plan must produce a
// bit-identical outcome on the asic-backed executor and the naive
// interpreter.
func TestReplayPlanMatchesInterpreter(t *testing.T) {
	prog := compileSrc(t, "diff", diffSrc)
	rep := AnalyzePlan(prog, verify.Options{Witnesses: true})
	if errs := rep.Errors(); len(errs) > 0 {
		t.Fatalf("compiled plan has verifier errors: %v", errs)
	}
	if len(rep.Witnesses) == 0 {
		t.Fatal("no witnesses extracted")
	}
	for i := range rep.Witnesses {
		wit := rep.Witnesses[i]
		entries := SyntheticEntries(prog.P4, wit)
		got, err := ReplayPlan(prog, &wit, entries)
		if err != nil {
			t.Fatalf("witness %d: replay: %v", i, err)
		}
		in := &verify.Interp{Prog: prog.P4, Entries: entries}
		want := in.Run(wit)
		if got.Canonical() != want.Canonical() {
			t.Errorf("witness %d diverges (path %v):\n--- compiled ---\n%s--- naive ---\n%s",
				i, wit.Path, got.Canonical(), want.Canonical())
		}
	}
}

// TestReplayPlanExercisesRealTables confirms the compiled side actually uses
// indexed asic tables for PHV-keyed tables rather than always falling back
// to the linear scan.
func TestReplayPlanExercisesRealTables(t *testing.T) {
	prog := compileSrc(t, "tables", diffSrc)
	tables, err := buildPlanTables(prog.P4, nil)
	if err != nil {
		t.Fatal(err)
	}
	asicBacked := 0
	for _, pt := range tables {
		if pt.asicT != nil {
			asicBacked++
		}
	}
	if asicBacked == 0 {
		t.Fatal("no table was lowered to an asic.Table; the differential is not exercising the real match path")
	}
}
