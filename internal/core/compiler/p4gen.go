package compiler

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/p4ir"
)

// generateP4 renders the compiled program as a p4ir.Program, mirroring the
// structures the runtime deploys: the accelerator, one replicator per
// template, editor tables per modification, and the counter-based query
// machinery. Table 5 counts this program's lines; Table 7 prices it.
func generateP4(prog *Program, opts Options) *p4ir.Program {
	p := &p4ir.Program{Name: prog.Task.Name}

	headers := map[string]bool{"ethernet": true, "ipv4": true}
	for _, tmpl := range prog.Templates {
		phv := asic.NewPHV(tmpl.Packet.Clone())
		if phv.Has(netproto.LayerTCP) {
			headers["tcp"] = true
		}
		if phv.Has(netproto.LayerUDP) {
			headers["udp"] = true
		}
	}
	for _, h := range []string{"ethernet", "ipv4", "tcp", "udp"} {
		if headers[h] {
			p.Headers = append(p.Headers, h)
		}
	}
	// Parse graph: ethernet selects ipv4 on ethertype; ipv4 selects the
	// transport header on protocol. The IR verifier checks acyclicity.
	p.Parser = append(p.Parser, p4ir.ParserEdge{From: "ethernet", To: "ipv4"})
	for _, l4 := range []string{"tcp", "udp"} {
		if headers[l4] {
			p.Parser = append(p.Parser, p4ir.ParserEdge{From: "ipv4", To: l4})
		}
	}

	if len(prog.Templates) > 0 {
		genAccelerator(p, prog)
	}
	for _, tmpl := range prog.Templates {
		genReplicator(p, tmpl)
		genEditor(p, tmpl)
	}
	for _, q := range prog.Queries {
		genQuery(p, q)
	}
	genTriggerPush(p, prog)
	return p
}

// genTriggerPush funnels every trigger-bound capture query's FIFO push
// through one shared table per pipeline. The capture actions only set
// meta.trigger_push; the action here performs the single stateful access to
// the shared trigger FIFO, so exactly one table owns the register's SALU
// per packet pass (the layout rule verifyir.go enforces).
func genTriggerPush(p *p4ir.Program, prog *Program) {
	need := map[p4ir.PipelineKind]bool{}
	for _, q := range prog.Queries {
		if q.TriggerTemplateID == 0 ||
			q.Kind == ntapi.KindDelay || q.Kind == ntapi.KindReduce || q.Kind == ntapi.KindDistinct {
			continue
		}
		if q.Egress {
			need[p4ir.PipeEgress] = true
		} else {
			need[p4ir.PipeIngress] = true
		}
	}
	for _, pipe := range []p4ir.PipelineKind{p4ir.PipeIngress, p4ir.PipeEgress} {
		if !need[pipe] {
			continue
		}
		p.AddRegisterOnce(&p4ir.RegisterDef{Name: "trigger_fifo", Width: 64, Size: 4096})
		act := fmt.Sprintf("trigger_push_%s", pipe)
		p.AddAction(&p4ir.ActionDef{Name: act, Ops: []p4ir.Op{
			{Kind: p4ir.OpRegisterRMW, Dst: "trigger_fifo", Src: "push record", Bits: 64},
		}})
		tbl := fmt.Sprintf("trigger_push_tbl_%s", pipe)
		p.AddTable(&p4ir.TableDef{
			Name: tbl, Pipeline: pipe, Match: p4ir.MatchExact,
			Keys:    []p4ir.KeyDef{{Field: "meta.trigger_push", Bits: 1}},
			Actions: []string{act},
			Size:    1,
			Entries: oneEntry(1),
		})
		stmt := p4ir.ControlStmt{
			If:   "meta.trigger_push == 1",
			Then: []p4ir.ControlStmt{{Apply: tbl}},
		}
		if pipe == p4ir.PipeIngress {
			p.Ingress = append(p.Ingress, stmt)
		} else {
			p.Egress = append(p.Egress, stmt)
		}
	}
}

// oneEntry builds the single compile-time entry of a table gated on one key
// value (per-template gating, the always-on meta.one tables).
func oneEntry(v uint64) []p4ir.Entry {
	return []p4ir.Entry{{Values: []uint64{v}}}
}

// genAccelerator emits the shared template-recirculation machinery (§5.1).
func genAccelerator(p *p4ir.Program, prog *Program) {
	p.AddRegister(&p4ir.RegisterDef{Name: "accel_inflight", Width: 32, Size: 64})
	p.AddAction(&p4ir.ActionDef{Name: "accel_recirculate", Ops: []p4ir.Op{
		{Kind: p4ir.OpRegisterRMW, Dst: "accel_inflight", Src: "+1", Bits: 32},
		{Kind: p4ir.OpRecirculate, Dst: "recirc_port"},
	}})
	var entries []p4ir.Entry
	for _, tmpl := range prog.Templates {
		entries = append(entries, p4ir.Entry{Values: []uint64{uint64(tmpl.ID)}})
	}
	p.AddTable(&p4ir.TableDef{
		Name: "accelerator", Pipeline: p4ir.PipeIngress, Match: p4ir.MatchExact,
		Keys:    []p4ir.KeyDef{{Field: "meta.template_id", Bits: 16}},
		Actions: []string{"accel_recirculate"},
		Size:    len(prog.Templates),
		Entries: entries,
	})
	p.Ingress = append(p.Ingress, p4ir.ControlStmt{
		If:   "meta.template_id != 0",
		Then: []p4ir.ControlStmt{{Apply: "accelerator"}},
	})
}

// genReplicator emits one template's timer + multicast logic (§5.1).
func genReplicator(p *p4ir.Program, tmpl *Template) {
	timer := fmt.Sprintf("repl_timer_%d", tmpl.ID)
	act := fmt.Sprintf("repl_fire_%d", tmpl.ID)
	tbl := fmt.Sprintf("replicator_%d", tmpl.ID)
	p.AddRegister(&p4ir.RegisterDef{Name: timer, Width: 64, Size: 1})
	ops := []p4ir.Op{
		{Kind: p4ir.OpRegisterRMW, Dst: timer, Src: "now - last >= interval", Bits: 64},
		{Kind: p4ir.OpMulticast, Dst: "ig_intr_md.mcast_grp", Src: fmt.Sprintf("%d", tmpl.ID)},
	}
	if tmpl.LoopPackets > 0 {
		cnt := fmt.Sprintf("repl_count_%d", tmpl.ID)
		p.AddRegister(&p4ir.RegisterDef{Name: cnt, Width: 64, Size: 1})
		ops = append(ops, p4ir.Op{Kind: p4ir.OpRegisterRMW, Dst: cnt, Src: "+1", Bits: 64})
	}
	p.AddAction(&p4ir.ActionDef{Name: act, Ops: ops})
	p.AddTable(&p4ir.TableDef{
		Name: tbl, Pipeline: p4ir.PipeIngress, Match: p4ir.MatchExact,
		Keys:    []p4ir.KeyDef{{Field: "meta.template_id", Bits: 16}},
		Actions: []string{act},
		Size:    1,
		Entries: oneEntry(uint64(tmpl.ID)),
	})
	p.Ingress = append(p.Ingress, p4ir.ControlStmt{
		If:   fmt.Sprintf("meta.template_id == %d", tmpl.ID),
		Then: []p4ir.ControlStmt{{Apply: tbl}},
	})
}

// genEditor emits the egress field-modification tables (§5.1): packet-ID
// register plus one table or action per modification.
func genEditor(p *p4ir.Program, tmpl *Template) {
	if len(tmpl.Mods) == 0 {
		return
	}
	pktID := fmt.Sprintf("editor_pktid_%d", tmpl.ID)
	p.AddRegister(&p4ir.RegisterDef{Name: pktID, Width: 32, Size: 1})
	bump := fmt.Sprintf("editor_bump_%d", tmpl.ID)
	p.AddAction(&p4ir.ActionDef{Name: bump, Ops: []p4ir.Op{
		{Kind: p4ir.OpRegisterRMW, Dst: pktID, Src: "+1", Bits: 32},
	}})
	bumpTbl := fmt.Sprintf("editor_pktid_tbl_%d", tmpl.ID)
	p.AddTable(&p4ir.TableDef{
		Name: bumpTbl, Pipeline: p4ir.PipeEgress, Match: p4ir.MatchExact,
		Keys:    []p4ir.KeyDef{{Field: "meta.template_id", Bits: 16}},
		Actions: []string{bump},
		Size:    1,
		Entries: oneEntry(uint64(tmpl.ID)),
	})
	stmts := []p4ir.ControlStmt{{Apply: bumpTbl}}

	// Stateless templates pop their whole trigger record with a single
	// wide register access shared by every record-stamping modification.
	if tmpl.FromQueryID != 0 {
		pop := fmt.Sprintf("editor_pop_record_%d", tmpl.ID)
		p.AddAction(&p4ir.ActionDef{Name: pop, Ops: []p4ir.Op{
			{Kind: p4ir.OpRegisterRMW, Dst: "trigger_fifo", Src: "pop", Bits: 64},
		}})
		p.AddRegisterOnce(&p4ir.RegisterDef{Name: "trigger_fifo", Width: 64, Size: 4096})
		popTbl := fmt.Sprintf("editor_pop_tbl_%d", tmpl.ID)
		p.AddTable(&p4ir.TableDef{
			Name: popTbl, Pipeline: p4ir.PipeEgress, Match: p4ir.MatchExact,
			Keys:    []p4ir.KeyDef{{Field: "meta.template_id", Bits: 16}},
			Actions: []string{pop},
			Size:    1,
			Entries: oneEntry(uint64(tmpl.ID)),
		})
		stmts = append(stmts, p4ir.ControlStmt{Apply: popTbl})
	}

	for i := range tmpl.Mods {
		m := &tmpl.Mods[i]
		base := fmt.Sprintf("editor_%d_%d", tmpl.ID, i)
		switch m.Kind {
		case ModList:
			act := base + "_set"
			p.AddAction(&p4ir.ActionDef{Name: act, Ops: []p4ir.Op{
				{Kind: p4ir.OpModifyField, Dst: m.Field.Name(), Src: "value[pkt_id]", Bits: m.Field.Width()},
			}})
			p.AddTable(&p4ir.TableDef{
				Name: base + "_list", Pipeline: p4ir.PipeEgress, Match: p4ir.MatchExact,
				Keys:    []p4ir.KeyDef{{Field: "pkt_id", Bits: 32}},
				Actions: []string{act},
				Size:    len(m.List),
			})
			stmts = append(stmts, p4ir.ControlStmt{Apply: base + "_list"})
		case ModProgression:
			reg := base + "_prog"
			act := base + "_step"
			p.AddRegister(&p4ir.RegisterDef{Name: reg, Width: int(min64(64, uint64(m.Field.Width()+1))), Size: 1})
			p.AddAction(&p4ir.ActionDef{Name: act, Ops: []p4ir.Op{
				{Kind: p4ir.OpRegisterRMW, Dst: reg, Src: fmt.Sprintf("+%d wrap %d", m.Step, m.End), Bits: m.Field.Width()},
				{Kind: p4ir.OpModifyField, Dst: m.Field.Name(), Src: reg, Bits: m.Field.Width()},
			}})
			p.AddTable(&p4ir.TableDef{
				Name: base + "_prog_tbl", Pipeline: p4ir.PipeEgress, Match: p4ir.MatchExact,
				Keys:    []p4ir.KeyDef{{Field: "meta.template_id", Bits: 16}},
				Actions: []string{act},
				Size:    1,
				Entries: oneEntry(uint64(tmpl.ID)),
			})
			stmts = append(stmts, p4ir.ControlStmt{Apply: base + "_prog_tbl"})
		case ModRandom:
			// Two-table inverse transform (§5.1): draw, then look up.
			draw := base + "_draw"
			p.AddAction(&p4ir.ActionDef{Name: draw, Ops: []p4ir.Op{
				{Kind: p4ir.OpRandom, Dst: "meta.rand", Src: fmt.Sprintf("0..2^%d", m.RandBits), Bits: m.RandBits},
			}})
			p.AddTable(&p4ir.TableDef{
				Name: base + "_rng", Pipeline: p4ir.PipeEgress, Match: p4ir.MatchExact,
				Keys:    []p4ir.KeyDef{{Field: "meta.template_id", Bits: 16}},
				Actions: []string{draw},
				Size:    1,
				Entries: oneEntry(uint64(tmpl.ID)),
			})
			lookup := base + "_inv"
			p.AddAction(&p4ir.ActionDef{Name: lookup, Ops: []p4ir.Op{
				{Kind: p4ir.OpModifyField, Dst: m.Field.Name(), Src: "inv_cdf[bucket]", Bits: m.Field.Width()},
			}})
			p.AddTable(&p4ir.TableDef{
				Name: base + "_inv_tbl", Pipeline: p4ir.PipeEgress, Match: p4ir.MatchExact,
				Keys:    []p4ir.KeyDef{{Field: "meta.rand_bucket", Bits: 16}},
				Actions: []string{lookup},
				Size:    len(m.InvTable),
			})
			stmts = append(stmts,
				p4ir.ControlStmt{Apply: base + "_rng"},
				p4ir.ControlStmt{Apply: base + "_inv_tbl"})
		case ModFromRecord:
			// The record was popped once above; stamping is a plain
			// field move from PHV metadata.
			act := base + "_stamp"
			p.AddAction(&p4ir.ActionDef{Name: act, Ops: []p4ir.Op{
				{Kind: p4ir.OpModifyField, Dst: m.Field.Name(), Src: "record." + m.RecordField.Name(), Bits: m.Field.Width()},
			}})
			p.AddTable(&p4ir.TableDef{
				Name: base + "_rec_tbl", Pipeline: p4ir.PipeEgress, Match: p4ir.MatchExact,
				Keys:    []p4ir.KeyDef{{Field: "meta.template_id", Bits: 16}},
				Actions: []string{act},
				Size:    1,
				Entries: oneEntry(uint64(tmpl.ID)),
			})
			stmts = append(stmts, p4ir.ControlStmt{Apply: base + "_rec_tbl"})
		}
	}

	p.Egress = append(p.Egress, p4ir.ControlStmt{
		If:   fmt.Sprintf("meta.template_id == %d and eg_intr_md.rid != 0", tmpl.ID),
		Then: stmts,
	})
}

// genQuery emits a query's filter gateways and, for reduce/distinct, the
// counter-table machinery (§5.2): cuckoo register arrays, KV FIFO, exact
// key matching and digest reporting.
func genQuery(p *p4ir.Program, q *QueryPlan) {
	pipe := p4ir.PipeIngress
	ctl := &p.Ingress
	if q.Egress {
		pipe = p4ir.PipeEgress
		ctl = &p.Egress
	}
	base := fmt.Sprintf("query_%d", q.ID)

	var inner []p4ir.ControlStmt
	if q.Kind == ntapi.KindDelay {
		// State-based delay: a timestamp register keyed by a hash of the
		// key fields, written at egress and read+cleared at ingress.
		act := base + "_delay"
		p.AddRegister(&p4ir.RegisterDef{Name: base + "_ts_store", Width: 48, Size: q.ArraySize})
		p.AddAction(&p4ir.ActionDef{Name: act, Ops: []p4ir.Op{
			{Kind: p4ir.OpHash, Dst: "meta.delay_idx", Src: "key", Bits: 16},
			{Kind: p4ir.OpRegisterRMW, Dst: base + "_ts_store", Src: "store-or-diff", Bits: 48},
		}})
		p.AddTable(&p4ir.TableDef{
			Name: base + "_delay_tbl", Pipeline: pipe, Match: p4ir.MatchExact,
			Keys:    []p4ir.KeyDef{{Field: "meta.one", Bits: 1}},
			Actions: []string{act},
			Size:    1,
			Entries: oneEntry(1),
		})
		inner = []p4ir.ControlStmt{{Apply: base + "_delay_tbl"}}
		stmt := p4ir.ControlStmt{If: "true", Then: inner}
		for i := len(q.Filters) - 1; i >= 0; i-- {
			f := q.Filters[i]
			stmt = p4ir.ControlStmt{
				If:   fmt.Sprintf("%s %s %d", f.Field.Name(), f.Op, f.Value),
				Then: []p4ir.ControlStmt{stmt},
			}
		}
		*ctl = append(*ctl, stmt)
		return
	}
	if q.Kind == ntapi.KindReduce || q.Kind == ntapi.KindDistinct {
		keyBits := 0
		var keys []p4ir.KeyDef
		for _, k := range q.Keys {
			keys = append(keys, p4ir.KeyDef{Field: k.Name(), Bits: k.Width()})
			keyBits += k.Width()
		}

		// Exact key matching table (precomputed false positives).
		exactAct := base + "_exact_count"
		p.AddAction(&p4ir.ActionDef{Name: exactAct, Ops: []p4ir.Op{
			{Kind: p4ir.OpRegisterRMW, Dst: base + "_exact_ctrs", Src: "agg", Bits: 64},
		}})
		exactSize := len(q.ExactKeys)
		if exactSize == 0 {
			exactSize = 64 // allocation floor for runtime additions
		}
		p.AddRegister(&p4ir.RegisterDef{Name: base + "_exact_ctrs", Width: 64, Size: exactSize})
		p.AddTable(&p4ir.TableDef{
			Name: base + "_exact", Pipeline: pipe, Match: p4ir.MatchExact,
			Keys: keys, Actions: []string{exactAct}, Size: exactSize,
		})

		// Cuckoo arrays: digest + counter per slot, two arrays.
		cellBits := q.DigestBits + 64
		p.AddRegister(&p4ir.RegisterDef{Name: base + "_array1", Width: cellBits, Size: q.ArraySize})
		p.AddRegister(&p4ir.RegisterDef{Name: base + "_array2", Width: cellBits, Size: q.ArraySize})
		// KV FIFO (§6.1's Figure 7 implementation).
		p.AddRegister(&p4ir.RegisterDef{Name: base + "_fifo", Width: keyBits + 64, Size: 1024})
		p.AddRegister(&p4ir.RegisterDef{Name: base + "_fifo_ptrs", Width: 32, Size: 2})

		cuckooAct := base + "_cuckoo"
		p.AddAction(&p4ir.ActionDef{Name: cuckooAct, Ops: []p4ir.Op{
			{Kind: p4ir.OpHash, Dst: "meta.idx1", Src: "key", Bits: 16},
			{Kind: p4ir.OpHash, Dst: "meta.idx2", Src: "key", Bits: 16},
			{Kind: p4ir.OpHash, Dst: "meta.digest", Src: "key", Bits: q.DigestBits},
			{Kind: p4ir.OpRegisterRMW, Dst: base + "_array1", Src: "match-or-insert", Bits: cellBits},
			{Kind: p4ir.OpRegisterRMW, Dst: base + "_array2", Src: "match-or-insert", Bits: cellBits},
			{Kind: p4ir.OpRegisterRMW, Dst: base + "_fifo_ptrs", Src: "push", Bits: 32},
			{Kind: p4ir.OpGenerateDigest, Dst: "evictions"},
		}})
		cuckooTbl := base + "_counter"
		p.AddTable(&p4ir.TableDef{
			Name: cuckooTbl, Pipeline: pipe, Match: p4ir.MatchExact,
			Keys:    []p4ir.KeyDef{{Field: "meta.one", Bits: 1}},
			Actions: []string{cuckooAct},
			Size:    1,
			Entries: oneEntry(1),
		})
		inner = []p4ir.ControlStmt{
			{Apply: base + "_exact"},
			{Apply: cuckooTbl},
		}
	} else {
		capAct := base + "_record"
		ops := []p4ir.Op{{Kind: p4ir.OpRegisterRMW, Dst: base + "_count", Src: "+1", Bits: 64}}
		if q.TriggerTemplateID != 0 {
			// The capture action only raises a flag (a VLIW move); the
			// single shared trigger_push table performs the FIFO's
			// stateful access, because an RMT register's SALU fires at
			// most once per packet — two capture tables pushing directly
			// would be rejected by the IR verifier.
			ops = append(ops, p4ir.Op{Kind: p4ir.OpModifyField, Dst: "meta.trigger_push", Src: "1", Bits: 1})
		}
		p.AddAction(&p4ir.ActionDef{Name: capAct, Ops: ops})
		p.AddRegister(&p4ir.RegisterDef{Name: base + "_count", Width: 64, Size: 1})
		p.AddTable(&p4ir.TableDef{
			Name: base + "_capture", Pipeline: pipe, Match: p4ir.MatchExact,
			Keys:    []p4ir.KeyDef{{Field: "meta.one", Bits: 1}},
			Actions: []string{capAct},
			Size:    1,
			Entries: oneEntry(1),
		})
		inner = []p4ir.ControlStmt{{Apply: base + "_capture"}}
	}

	// Filter chain as nested gateways.
	stmt := p4ir.ControlStmt{If: "true", Then: inner}
	for i := len(q.Filters) - 1; i >= 0; i-- {
		f := q.Filters[i]
		stmt = p4ir.ControlStmt{
			If:   fmt.Sprintf("%s %s %d", f.Field.Name(), f.Op, f.Value),
			Then: []p4ir.ControlStmt{stmt},
		}
	}
	*ctl = append(*ctl, stmt)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// estimateResources prices the generated program.
func estimateResources(prog *Program) p4ir.Resources {
	return p4ir.Estimate(prog.P4)
}
