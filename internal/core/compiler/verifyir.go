package compiler

import (
	"fmt"
	"strings"

	"github.com/hypertester/hypertester/internal/p4ir"
	"github.com/hypertester/hypertester/internal/verify"
)

// This file is the IR-level pipeline verifier: validate.go's whole-chip
// budget check says whether a program fits the chip *in total*; VerifyPlan
// says whether it can actually be *laid out and executed* on an RMT
// pipeline. It statically rejects, at compile time, the plan shapes that
// would otherwise misbehave at simulation (or deployment) time:
//
//   - parser graphs with cycles — the TCAM-driven parser state machine
//     would never terminate;
//   - two stateful-ALU accesses to the same register on one packet pass —
//     RMT registers are bound to a single SALU, which fires at most once
//     per packet per pipeline;
//   - table/register placements that overflow the per-stage resource
//     budget — a table has to live in *some* stage, and stages are finite;
//   - unguarded recirculation — a `recirculate` reachable on every packet
//     with no loop state to bound it recirculates forever and melts the
//     accelerator's capacity model (§6.1).
//
// The model is deliberately conservative where the real chip's compiler
// backtracks: placement is greedy in control order (a table may span
// consecutive stages when wider than one stage's budget), and branch
// exclusivity is recognized syntactically (Then vs Else, and equality
// guards on the same field with different constants — the shape our
// generator emits for per-template gating).

// StageModel is the stage-level capacity of the target ASIC.
type StageModel struct {
	// Stages is the number of physical match-action stages per pipeline
	// direction.
	Stages int
	// PerStage is the resource capacity of one stage.
	PerStage p4ir.Resources
}

// TofinoStageModel divides ChipBudget evenly across 12 stages, matching
// the RMT accounting validate.go uses for totals. SALUs are the hard
// per-stage wall: four per stage, the figure the paper leans on when
// explaining Table 7's SALU percentages.
var TofinoStageModel = StageModel{
	Stages: 12,
	PerStage: p4ir.Resources{
		CrossbarBytes: ChipBudget.CrossbarBytes / 12,
		SRAMBlocks:    ChipBudget.SRAMBlocks / 12,
		TCAMBlocks:    ChipBudget.TCAMBlocks / 12,
		VLIWSlots:     ChipBudget.VLIWSlots / 12,
		HashBits:      ChipBudget.HashBits / 12,
		SALUs:         ChipBudget.SALUs / 12,
		Gateways:      ChipBudget.Gateways / 12,
	},
}

// VerifyPlan statically checks a compiled pipeline plan against the stage
// model. It returns the first violation found, or nil for a deployable
// plan.
func VerifyPlan(p *p4ir.Program, m StageModel) error {
	return VerifyPlanEnv(p, m, nil)
}

// VerifyPlanEnv is VerifyPlan with environment invariants attached: when the
// syntactic exclusivity heuristic fails on a SALU pair, the path-sensitive
// walker (internal/verify) is consulted under these invariants before the
// plan is rejected.
func VerifyPlanEnv(p *p4ir.Program, m StageModel, invs []verify.Implication) error {
	v := newVerifier(p)
	v.invs = invs
	if err := v.checkParserDAG(); err != nil {
		return err
	}
	for _, pipe := range []struct {
		name  string
		stmts []p4ir.ControlStmt
	}{{"ingress", p.Ingress}, {"egress", p.Egress}} {
		accesses := v.collectAccesses(pipe.stmts, nil)
		if err := v.checkSALUAccess(pipe.name, accesses); err != nil {
			return err
		}
		if err := v.checkStagePlacement(pipe.name, pipe.stmts, m); err != nil {
			return err
		}
		if err := v.checkRecircBound(pipe.name, accesses); err != nil {
			return err
		}
	}
	return nil
}

type verifier struct {
	prog    *p4ir.Program
	tables  map[string]*p4ir.TableDef
	actions map[string]*p4ir.ActionDef

	invs []verify.Implication
	rep  *verify.Report // lazily-computed path-sensitive report
}

func newVerifier(p *p4ir.Program) *verifier {
	v := &verifier{
		prog:    p,
		tables:  map[string]*p4ir.TableDef{},
		actions: map[string]*p4ir.ActionDef{},
	}
	for _, t := range p.Tables {
		v.tables[t.Name] = t
	}
	for _, a := range p.Actions {
		v.actions[a.Name] = a
	}
	return v
}

// checkParserDAG rejects cyclic parse graphs by depth-first search with
// the classic three-color scheme.
func (v *verifier) checkParserDAG() error {
	edges := v.prog.ParserGraph()
	next := map[string][]string{}
	for _, e := range edges {
		next[e.From] = append(next[e.From], e.To)
	}
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // finished
	)
	color := map[string]int{}
	var path []string
	var visit func(n string) error
	visit = func(n string) error {
		color[n] = gray
		path = append(path, n)
		for _, to := range next[n] {
			switch color[to] {
			case gray:
				return fmt.Errorf("compiler: parser graph has a cycle: %s -> %s; the parse state machine would not terminate",
					strings.Join(path, " -> "), to)
			case white:
				if err := visit(to); err != nil {
					return err
				}
			}
		}
		path = path[:len(path)-1]
		color[n] = black
		return nil
	}
	for _, e := range edges {
		if color[e.From] == white {
			if err := visit(e.From); err != nil {
				return err
			}
		}
	}
	return nil
}

// guard is one branch condition active at an apply site. negated marks the
// Else side.
type guard struct {
	cond    string
	negated bool
}

// saluAccess is one stateful-ALU access reachable in a pipeline pass.
type saluAccess struct {
	register string
	table    string
	action   string
	op       p4ir.OpKind
	guards   []guard
}

// collectAccesses walks a control list gathering every SALU access with
// its enclosing guard chain. All sequential statements execute on the same
// packet; only Then/Else choose.
func (v *verifier) collectAccesses(stmts []p4ir.ControlStmt, guards []guard) []saluAccess {
	var out []saluAccess
	for i := range stmts {
		s := &stmts[i]
		if s.Apply != "" {
			t := v.tables[s.Apply]
			if t == nil {
				continue // p4ir.Validate reports unknown tables
			}
			for _, an := range t.Actions {
				a := v.actions[an]
				if a == nil {
					continue
				}
				for _, op := range a.Ops {
					switch op.Kind {
					case p4ir.OpRegisterRead, p4ir.OpRegisterWrite, p4ir.OpRegisterRMW:
						out = append(out, saluAccess{
							register: op.Dst,
							table:    t.Name,
							action:   a.Name,
							op:       op.Kind,
							guards:   append([]guard(nil), guards...),
						})
					}
				}
			}
		}
		if s.If != "" {
			thenGuards := append(append([]guard(nil), guards...), guard{cond: s.If})
			out = append(out, v.collectAccesses(s.Then, thenGuards)...)
			elseGuards := append(append([]guard(nil), guards...), guard{cond: s.If, negated: true})
			out = append(out, v.collectAccesses(s.Else, elseGuards)...)
		}
	}
	return out
}

// checkSALUAccess enforces the one-SALU-access-per-packet rule: no packet
// pass through one pipeline may reach the same register twice, except via
// provably exclusive branches. Two actions of the same table are
// alternatives (one action per table per packet), so they never conflict
// with each other.
func (v *verifier) checkSALUAccess(pipe string, accesses []saluAccess) error {
	// Same action touching a register twice is always a conflict: one
	// SALU fires once per packet.
	type key struct{ action, register string }
	seen := map[key]bool{}
	for _, a := range accesses {
		k := key{a.action, a.register}
		if seen[k] {
			return fmt.Errorf(
				"compiler: %s action %s accesses register %s twice in one pass; an RMT stateful ALU fires at most once per packet (fold the accesses into one RMW)",
				pipe, a.action, a.register)
		}
		seen[k] = true
	}
	for i := 0; i < len(accesses); i++ {
		for j := i + 1; j < len(accesses); j++ {
			a, b := accesses[i], accesses[j]
			if a.register != b.register || a.table == b.table {
				continue
			}
			if mutuallyExclusive(a.guards, b.guards) {
				continue
			}
			// The syntactic heuristic could not prove exclusivity; it is a
			// fast pre-pass, not the verdict. Ask the path-sensitive walker
			// whether the two accesses are ever jointly feasible — interval
			// guards like "meta.x < 2" vs "meta.x > 5" are exclusive without
			// sharing the equality shape the heuristic recognizes.
			if !v.pathConflict(a.register, a.table, b.table) {
				continue
			}
			return fmt.Errorf(
				"compiler: register %s is accessed by both table %s (action %s) and table %s (action %s) on one %s pass; a register's stateful ALU fires at most once per packet — gate the tables with exclusive conditions or split the register",
				a.register, a.table, a.action, b.table, b.action, pipe)
		}
	}
	return nil
}

// pathConflict reports whether the symbolic walker found a feasible pass on
// which both tables touch the register. A truncated enumeration proves
// nothing about the paths it never reached, so it stays conservative and
// upholds the heuristic's rejection.
func (v *verifier) pathConflict(register, tableA, tableB string) bool {
	if v.rep == nil {
		v.rep = verify.Analyze(v.prog, verify.Options{Invariants: v.invs})
	}
	return v.rep.Truncated || v.rep.HasSALUConflict(register, tableA, tableB)
}

// mutuallyExclusive reports whether two guard chains can be shown to never
// both hold: one contains a condition the other negates, or both pin the
// same field to different constants with `==` (examining each `and`
// conjunct — the generator emits guards like
// "meta.template_id == 2 and eg_intr_md.rid != 0").
func mutuallyExclusive(a, b []guard) bool {
	for _, ga := range a {
		for _, gb := range b {
			if ga.cond == gb.cond && ga.negated != gb.negated {
				return true
			}
			if ga.negated || gb.negated {
				continue
			}
			for _, ca := range strings.Split(ga.cond, " and ") {
				fa, va, oka := splitEquality(ca)
				if !oka {
					continue
				}
				for _, cb := range strings.Split(gb.cond, " and ") {
					fb, vb, okb := splitEquality(cb)
					if okb && fa == fb && va != vb {
						return true
					}
				}
			}
		}
	}
	return false
}

// splitEquality parses a `field == constant` condition.
func splitEquality(cond string) (field, value string, ok bool) {
	field, value, ok = strings.Cut(cond, " == ")
	if !ok || strings.ContainsAny(strings.TrimSpace(value), " ") {
		return "", "", false
	}
	return strings.TrimSpace(field), strings.TrimSpace(value), true
}

// checkStagePlacement lays the pipeline's tables into stages greedily in
// apply order — the order hardware dependencies follow, since our
// generator applies producers before consumers — and rejects the program
// when the tables do not fit the stage count. A table wider than one
// stage's budget spans consecutive stages (RMT table spreading); a
// register's SRAM is placed with the first table that accesses it.
func (v *verifier) checkStagePlacement(pipe string, stmts []p4ir.ControlStmt, m StageModel) error {
	var order []string
	seenTbl := map[string]bool{}
	var walk func(list []p4ir.ControlStmt)
	walk = func(list []p4ir.ControlStmt) {
		for i := range list {
			s := &list[i]
			if s.Apply != "" && !seenTbl[s.Apply] && v.tables[s.Apply] != nil {
				seenTbl[s.Apply] = true
				order = append(order, s.Apply)
			}
			walk(s.Then)
			walk(s.Else)
		}
	}
	walk(stmts)

	// Attach each register's memory to its first accessing table.
	regOf := map[string]*p4ir.RegisterDef{}
	for _, r := range v.prog.Registers {
		regOf[r.Name] = r
	}
	regPlaced := map[string]bool{}

	stage := 0 // current stage index (0-based)
	var use p4ir.Resources
	for _, name := range order {
		t := v.tables[name]
		cost := p4ir.TableCost(v.prog, t)
		for _, an := range t.Actions {
			a := v.actions[an]
			if a == nil {
				continue
			}
			for _, op := range a.Ops {
				switch op.Kind {
				case p4ir.OpRegisterRead, p4ir.OpRegisterWrite, p4ir.OpRegisterRMW:
					if r := regOf[op.Dst]; r != nil && !regPlaced[op.Dst] {
						regPlaced[op.Dst] = true
						cost.Add(p4ir.RegisterCost(r))
					}
				}
			}
		}

		span := stagesNeeded(cost, m.PerStage)
		if span > m.Stages {
			return fmt.Errorf(
				"compiler: table %s alone needs %d stages of %d (%s); the table cannot be laid out (§6.1)",
				name, span, m.Stages, overflowColumn(cost, m.PerStage))
		}
		sum := use
		sum.Add(cost)
		if fits(sum, m.PerStage) {
			use = sum
			continue
		}
		// Advance to a fresh stage (or a run of them for a spanning
		// table).
		stage += span
		if stage+1 > m.Stages {
			return fmt.Errorf(
				"compiler: stage budget overflow in %s: table %s needs stage %d but the chip has %d stages (%s); the task cannot be accommodated (§6.1)",
				pipe, name, stage+1, m.Stages, overflowColumn(cost, m.PerStage))
		}
		if span > 1 {
			// The spanning table fills its stages completely; the next
			// table starts fresh.
			use = m.PerStage
		} else {
			use = cost
		}
	}
	return nil
}

// fits reports whether use stays within cap on every column.
func fits(use, cap p4ir.Resources) bool {
	return use.CrossbarBytes <= cap.CrossbarBytes &&
		use.SRAMBlocks <= cap.SRAMBlocks &&
		use.TCAMBlocks <= cap.TCAMBlocks &&
		use.VLIWSlots <= cap.VLIWSlots &&
		use.HashBits <= cap.HashBits &&
		use.SALUs <= cap.SALUs &&
		use.Gateways <= cap.Gateways
}

// stagesNeeded returns how many whole stages a cost spans: the max over
// columns of ceil(cost/perStage).
func stagesNeeded(cost, per p4ir.Resources) int {
	n := 1
	ceil := func(a, b float64) int {
		if a <= 0 || b <= 0 {
			return 1
		}
		k := int(a / b)
		if float64(k)*b < a {
			k++
		}
		return k
	}
	for _, c := range [][2]float64{
		{float64(cost.CrossbarBytes), float64(per.CrossbarBytes)},
		{cost.SRAMBlocks, per.SRAMBlocks},
		{cost.TCAMBlocks, per.TCAMBlocks},
		{float64(cost.VLIWSlots), float64(per.VLIWSlots)},
		{float64(cost.HashBits), float64(per.HashBits)},
		{float64(cost.SALUs), float64(per.SALUs)},
		{float64(cost.Gateways), float64(per.Gateways)},
	} {
		if k := ceil(c[0], c[1]); k > n {
			n = k
		}
	}
	return n
}

// overflowColumn names the resource column that drives a placement
// failure, for actionable error messages.
func overflowColumn(cost, per p4ir.Resources) string {
	type col struct {
		name      string
		use, pcap float64
	}
	cols := []col{
		{"crossbar", float64(cost.CrossbarBytes), float64(per.CrossbarBytes)},
		{"SRAM", cost.SRAMBlocks, per.SRAMBlocks},
		{"TCAM", cost.TCAMBlocks, per.TCAMBlocks},
		{"VLIW", float64(cost.VLIWSlots), float64(per.VLIWSlots)},
		{"hash bits", float64(cost.HashBits), float64(per.HashBits)},
		{"SALU", float64(cost.SALUs), float64(per.SALUs)},
		{"gateways", float64(cost.Gateways), float64(per.Gateways)},
	}
	worst, ratio := "resources", 0.0
	for _, c := range cols {
		if c.pcap <= 0 {
			continue
		}
		if r := c.use / c.pcap; r > ratio {
			worst, ratio = fmt.Sprintf("%s %.1f per-stage cap %.1f", c.name, c.use, c.pcap), r
		}
	}
	return worst
}

// checkRecircBound rejects unbounded recirculation: every reachable
// `recirculate` must sit behind at least one real gateway condition (a
// data-plane exit path) and its action must maintain loop state in a
// register (the in-flight counter the accelerator uses), or the packet
// loops forever.
func (v *verifier) checkRecircBound(pipe string, accesses []saluAccess) error {
	// Re-walk for recirculate ops: collectAccesses only gathers SALU ops.
	var check func(stmts []p4ir.ControlStmt, guarded bool) error
	check = func(stmts []p4ir.ControlStmt, guarded bool) error {
		for i := range stmts {
			s := &stmts[i]
			if s.Apply != "" {
				t := v.tables[s.Apply]
				if t == nil {
					continue
				}
				for _, an := range t.Actions {
					a := v.actions[an]
					if a == nil {
						continue
					}
					hasRecirc, hasState := false, false
					for _, op := range a.Ops {
						switch op.Kind {
						case p4ir.OpRecirculate:
							hasRecirc = true
						case p4ir.OpRegisterRead, p4ir.OpRegisterWrite, p4ir.OpRegisterRMW:
							hasState = true
						}
					}
					if !hasRecirc {
						continue
					}
					if !guarded {
						return fmt.Errorf(
							"compiler: %s table %s recirculates unconditionally; every packet would loop forever — guard the apply with a gateway that can exit the loop",
							pipe, t.Name)
					}
					if !hasState {
						return fmt.Errorf(
							"compiler: %s action %s recirculates without maintaining loop state in a register; the recirculation count cannot be bounded — add an in-flight counter (RMW) to the action",
							pipe, a.Name)
					}
				}
			}
			g := guarded || (s.If != "" && s.If != "true")
			if err := check(s.Then, g); err != nil {
				return err
			}
			if err := check(s.Else, g); err != nil {
				return err
			}
		}
		return nil
	}
	_ = accesses
	var stmts []p4ir.ControlStmt
	if pipe == "ingress" {
		stmts = v.prog.Ingress
	} else {
		stmts = v.prog.Egress
	}
	return check(stmts, false)
}
