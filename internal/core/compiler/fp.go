package compiler

import (
	"encoding/binary"
	"math/bits"

	"github.com/hypertester/hypertester/internal/asic"
)

// CuckooSlots computes a key's two candidate slots and its stored digest
// under partial-key cuckoo hashing (Fan et al., the paper's [70]): the
// alternate slot derives from the primary slot and the digest alone, so the
// data plane can relocate an entry knowing only what the cell stores.
// arraySize must be a power of two.
//
// This function is the single source of truth shared by the compiler's
// false-positive precomputation and the runtime's counter table — they must
// agree bit-for-bit or precomputed exact entries would not cover runtime
// collisions.
func CuckooSlots(key []byte, arraySize, digestBits int, h1, hd, halt *asic.HashUnit) (idx1, idx2 int, digest uint32) {
	mask := arraySize - 1
	digest = hd.Digest(key, digestBits)
	if digest == 0 {
		digest = 1 // zero marks an empty cell
	}
	idx1 = int(h1.Sum(key)) & mask
	var db [4]byte
	binary.BigEndian.PutUint32(db[:], digest)
	idx2 = (idx1 ^ int(halt.Sum(db[:]))) & mask
	return idx1, idx2, digest
}

// AltSlot returns the other candidate slot for an entry, from the slot it
// occupies and its digest — the relocation step of partial-key cuckoo.
func AltSlot(idx int, digest uint32, arraySize int, halt *asic.HashUnit) int {
	var db [4]byte
	binary.BigEndian.PutUint32(db[:], digest)
	return (idx ^ int(halt.Sum(db[:]))) & (arraySize - 1)
}

// ComputeExactKeys finds the key tuples that would collide in the runtime's
// counter table — a candidate slot and stored digest equal to an earlier
// key's — and therefore need entries in the exact-key-matching table to keep
// reduce/distinct free of false positives (§5.2, Fig. 17).
//
// For each colliding pair only the later key needs an exact entry: lookups
// for it would otherwise hit the earlier key's (slot, digest) cell.
func ComputeExactKeys(tuples [][]uint64, arraySize, digestBits int, polyA1, polyA2, polyDigest uint32) [][]uint64 {
	h1 := asic.NewHashUnit("fp-a1", polyA1)
	halt := asic.NewHashUnit("fp-alt", polyA2)
	hd := asic.NewHashUnit("fp-digest", polyDigest)

	// Occupied (slot, digest) cells, packed slot<<32|digest into an
	// open-addressed table. CuckooSlots never returns digest 0 (zero marks
	// an empty runtime cell), so a packed cell is never 0 and 0 can mark
	// empty probe slots here too. Sized for <=50% load at two cells per
	// tuple, probed linearly from a Fibonacci-mixed home slot.
	tableSize := 16
	for tableSize < 4*len(tuples) {
		tableSize <<= 1
	}
	shift := uint(64 - bits.TrailingZeros(uint(tableSize)))
	mask := uint64(tableSize - 1)
	set := make([]uint64, tableSize)
	// claim records c if absent and reports whether it was already present.
	claim := func(c uint64) bool {
		h := (c * 0x9e3779b97f4a7c15) >> shift
		for {
			switch set[h] {
			case 0:
				set[h] = c
				return false
			case c:
				return true
			}
			h = (h + 1) & mask
		}
	}

	needExact := make([]bool, len(tuples))
	need := 0
	var kbuf []byte
	for i, t := range tuples {
		kbuf = AppendKey(kbuf[:0], t)
		idx1, idx2, d := CuckooSlots(kbuf, arraySize, digestBits, h1, hd, halt)
		// Claim both candidate cells in order; either being taken (including
		// by this key's own first claim, when idx1 == idx2) means a runtime
		// lookup could land on a foreign cell, so the key needs exact-match
		// coverage.
		taken := claim(uint64(uint32(idx1))<<32 | uint64(d))
		if claim(uint64(uint32(idx2))<<32|uint64(d)) || taken {
			needExact[i] = true
			need++
		}
	}

	out := make([][]uint64, 0, need)
	for i := range tuples {
		if needExact[i] {
			out = append(out, tuples[i])
		}
	}
	return out
}

// EncodeKey serializes a key tuple into hash-input bytes, the canonical
// form shared by the compiler's precomputation and the runtime's lookups.
func EncodeKey(t []uint64) []byte {
	return AppendKey(make([]byte, 0, 8*len(t)), t)
}

// AppendKey appends t's canonical hash-input encoding to dst and returns the
// extended slice, letting hot loops reuse one buffer across keys.
func AppendKey(dst []byte, t []uint64) []byte {
	for _, v := range t {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}
