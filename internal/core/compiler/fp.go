package compiler

import (
	"encoding/binary"

	"github.com/hypertester/hypertester/internal/asic"
)

// CuckooSlots computes a key's two candidate slots and its stored digest
// under partial-key cuckoo hashing (Fan et al., the paper's [70]): the
// alternate slot derives from the primary slot and the digest alone, so the
// data plane can relocate an entry knowing only what the cell stores.
// arraySize must be a power of two.
//
// This function is the single source of truth shared by the compiler's
// false-positive precomputation and the runtime's counter table — they must
// agree bit-for-bit or precomputed exact entries would not cover runtime
// collisions.
func CuckooSlots(key []byte, arraySize, digestBits int, h1, hd, halt *asic.HashUnit) (idx1, idx2 int, digest uint32) {
	mask := arraySize - 1
	digest = hd.Digest(key, digestBits)
	if digest == 0 {
		digest = 1 // zero marks an empty cell
	}
	idx1 = int(h1.Sum(key)) & mask
	var db [4]byte
	binary.BigEndian.PutUint32(db[:], digest)
	idx2 = (idx1 ^ int(halt.Sum(db[:]))) & mask
	return idx1, idx2, digest
}

// AltSlot returns the other candidate slot for an entry, from the slot it
// occupies and its digest — the relocation step of partial-key cuckoo.
func AltSlot(idx int, digest uint32, arraySize int, halt *asic.HashUnit) int {
	var db [4]byte
	binary.BigEndian.PutUint32(db[:], digest)
	return (idx ^ int(halt.Sum(db[:]))) & (arraySize - 1)
}

// ComputeExactKeys finds the key tuples that would collide in the runtime's
// counter table — a candidate slot and stored digest equal to an earlier
// key's — and therefore need entries in the exact-key-matching table to keep
// reduce/distinct free of false positives (§5.2, Fig. 17).
//
// For each colliding pair only the later key needs an exact entry: lookups
// for it would otherwise hit the earlier key's (slot, digest) cell.
func ComputeExactKeys(tuples [][]uint64, arraySize, digestBits int, polyA1, polyA2, polyDigest uint32) [][]uint64 {
	h1 := asic.NewHashUnit("fp-a1", polyA1)
	halt := asic.NewHashUnit("fp-alt", polyA2)
	hd := asic.NewHashUnit("fp-digest", polyDigest)

	type cell struct {
		slot   uint32
		digest uint32
	}
	owner := make(map[cell]int, 2*len(tuples))
	needExact := map[int]bool{}

	for i, t := range tuples {
		k := EncodeKey(t)
		idx1, idx2, d := CuckooSlots(k, arraySize, digestBits, h1, hd, halt)
		for _, c := range [2]cell{{uint32(idx1), d}, {uint32(idx2), d}} {
			if _, taken := owner[c]; taken {
				needExact[i] = true
			} else {
				owner[c] = i
			}
		}
	}

	out := make([][]uint64, 0, len(needExact))
	for i := range tuples {
		if needExact[i] {
			out = append(out, tuples[i])
		}
	}
	return out
}

// EncodeKey serializes a key tuple into hash-input bytes, the canonical
// form shared by the compiler's precomputation and the runtime's lookups.
func EncodeKey(t []uint64) []byte {
	b := make([]byte, 8*len(t))
	for i, v := range t {
		binary.BigEndian.PutUint64(b[i*8:], v)
	}
	return b
}
