package compiler

import (
	"fmt"
	"math"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/stats"
)

// Options tunes compilation.
type Options struct {
	// RecircPaths is how many recirculation paths the target switch has
	// (internal path plus loopback-mode ports); bounds the template
	// count via the accelerator capacity (§6.1).
	RecircPaths int
	// DigestBits is the stored partial-key width for reduce/distinct
	// (§5.2; Fig. 17 studies 16 vs 32).
	DigestBits int
	// ArraySize is the per-array cuckoo slot count.
	ArraySize int
	// MaxHeaderSpace caps header-space enumeration for false-positive
	// precomputation.
	MaxHeaderSpace int
	// RandTableSize is the inverse-transform table size (§5.1's
	// two-table method).
	RandTableSize int
}

func (o Options) withDefaults() Options {
	if o.RecircPaths == 0 {
		o.RecircPaths = 1
	}
	if o.DigestBits == 0 {
		o.DigestBits = 16
	}
	if o.ArraySize == 0 {
		o.ArraySize = 1 << 14
	}
	// Partial-key cuckoo hashing derives the alternate slot with an XOR,
	// which needs a power-of-two array.
	for o.ArraySize&(o.ArraySize-1) != 0 {
		o.ArraySize++
	}
	if o.MaxHeaderSpace == 0 {
		o.MaxHeaderSpace = 1 << 21
	}
	if o.RandTableSize == 0 {
		o.RandTableSize = 512
	}
	return o
}

// Compile translates a task into a deployable program, rejecting tasks the
// switching ASIC cannot accommodate (§6.1).
func Compile(task *ntapi.Task, opts Options) (*Program, error) {
	opts = opts.withDefaults()
	prog := &Program{Task: task}

	queryIDs := map[*ntapi.Query]int{}
	for i, q := range task.Queries {
		queryIDs[q] = i + 1
	}

	for i, tr := range task.Triggers {
		tmpl, err := compileTrigger(tr, i+1, queryIDs, opts)
		if err != nil {
			return nil, fmt.Errorf("compiler: trigger %s: %w", tr.Name, err)
		}
		prog.Templates = append(prog.Templates, tmpl)
	}

	for i, q := range task.Queries {
		plan, err := compileQuery(q, i+1, prog, opts)
		if err != nil {
			return nil, fmt.Errorf("compiler: query %s: %w", q.Name, err)
		}
		prog.Queries = append(prog.Queries, plan)
	}

	// Wire stateless connections: a query that triggers a template must
	// capture the record fields that template stamps.
	for _, tmpl := range prog.Templates {
		if tmpl.FromQueryID == 0 {
			continue
		}
		plan := prog.QueryByID(tmpl.FromQueryID)
		if plan == nil {
			return nil, fmt.Errorf("compiler: trigger %s references unregistered query", tmpl.Trigger.Name)
		}
		if plan.TriggerTemplateID != 0 {
			return nil, fmt.Errorf("compiler: query %s triggers both T%d and T%d",
				plan.Query.Name, plan.TriggerTemplateID, tmpl.ID)
		}
		plan.TriggerTemplateID = tmpl.ID
		plan.RecordFields = recordFields(tmpl)
	}

	prog.P4 = generateP4(prog, opts)
	if err := prog.P4.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: generated program invalid: %w", err)
	}
	prog.Resources = estimateResources(prog)
	if err := validateProgram(prog, opts); err != nil {
		return nil, err
	}
	return prog, nil
}

// compileTrigger builds a template packet plus its replicator and editor
// configuration.
func compileTrigger(tr *ntapi.Trigger, id int, queryIDs map[*ntapi.Query]int, opts Options) (*Template, error) {
	tmpl := &Template{ID: id, Trigger: tr}

	if tr.From != nil {
		qid, ok := queryIDs[tr.From]
		if !ok {
			return nil, fmt.Errorf("triggering query %s not part of the task", tr.From.Name)
		}
		tmpl.FromQueryID = qid
	}

	// Flatten set operations into (field, value) pairs; later sets win.
	type pair struct {
		field asic.Field
		value ntapi.Value
	}
	var pairs []pair
	for _, so := range tr.Sets {
		if len(so.Fields) != len(so.Values) {
			return nil, fmt.Errorf("set with %d fields but %d values", len(so.Fields), len(so.Values))
		}
		for i, name := range so.Fields {
			f, err := asic.FieldByName(name)
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, pair{f, so.Values[i]})
		}
	}

	// Initial header values for the template packet (CPU work).
	initial := map[asic.Field]uint64{}
	proto := uint64(netproto.IPProtoUDP)
	for _, p := range pairs {
		if c, ok := p.value.(ntapi.Const); ok {
			if uint64(c) > p.field.MaxValue() {
				return nil, fmt.Errorf("field %v: constant %d exceeds its %d-bit width",
					p.field, uint64(c), p.field.Width())
			}
			initial[p.field] = uint64(c)
			if p.field == asic.FieldIPv4Proto {
				proto = uint64(c)
			}
		}
	}
	// A TCP field set implies TCP even without an explicit proto.
	for _, p := range pairs {
		switch p.field {
		case asic.FieldTCPFlags, asic.FieldTCPSeq, asic.FieldTCPAck, asic.FieldTCPWindow:
			if _, explicit := initial[asic.FieldIPv4Proto]; !explicit {
				proto = uint64(netproto.IPProtoTCP)
			}
		}
	}

	vlan := false
	for _, p := range pairs {
		if p.field == asic.FieldVlanID || p.field == asic.FieldVlanPCP {
			vlan = true
		}
	}
	pkt, err := buildTemplatePacket(tr, id, proto, initial, vlan)
	if err != nil {
		return nil, err
	}
	tmpl.Packet = pkt

	// Editor program: every non-constant value becomes a modification.
	streamLen := uint64(1)
	for _, p := range pairs {
		mod, err := compileMod(p.field, p.value, opts)
		if err != nil {
			return nil, fmt.Errorf("field %v: %w", p.field, err)
		}
		if mod == nil {
			continue // constant, already in the template
		}
		tmpl.Mods = append(tmpl.Mods, *mod)
		if l := mod.StreamLen(); l > streamLen {
			streamLen = l
		}
	}
	tmpl.StreamLen = streamLen
	if tr.Loop > 0 {
		tmpl.LoopPackets = tr.Loop * streamLen
	}
	tmpl.IntervalPs = int64(tr.Interval) * 1000 // time.Duration ns -> ps
	if tr.IntervalDist != nil {
		table, err := intervalTable(*tr.IntervalDist, opts)
		if err != nil {
			return nil, fmt.Errorf("interval distribution: %w", err)
		}
		tmpl.IntervalTablePs = table
		if tmpl.IntervalPs == 0 {
			tmpl.IntervalPs = table[len(table)/2] // median as the initial threshold
		}
	}
	tmpl.Ports = append([]int(nil), tr.Ports...)
	if len(tmpl.Ports) == 0 && tmpl.FromQueryID == 0 {
		return nil, fmt.Errorf("start trigger needs at least one injection port")
	}
	return tmpl, nil
}

// buildTemplatePacket is the switch-CPU side of template-based generation:
// assemble the frame with initial header values and the constant payload.
func buildTemplatePacket(tr *ntapi.Trigger, id int, proto uint64, initial map[asic.Field]uint64, vlan bool) (*netproto.Packet, error) {
	length := tr.Length
	var minLen int
	switch uint8(proto) {
	case netproto.IPProtoTCP:
		minLen = netproto.MinTCPFrame
	case netproto.IPProtoUDP:
		minLen = netproto.MinUDPFrame
	case netproto.IPProtoICMP:
		minLen = netproto.MinICMPFrame
	default:
		return nil, fmt.Errorf("unsupported protocol %d (tcp, udp and icmp templates only)", proto)
	}
	if vlan {
		minLen += netproto.Dot1QLen
	}
	if vlan && uint8(proto) == netproto.IPProtoICMP {
		return nil, fmt.Errorf("vlan-tagged icmp templates are not supported")
	}
	if length == 0 {
		length = 64
	}
	if length < minLen || length > 1500 {
		return nil, fmt.Errorf("frame length %d outside [%d, 1500]", length, minLen)
	}
	if len(tr.PayloadV) > length-minLen {
		return nil, fmt.Errorf("payload of %d bytes does not fit a %d-byte frame", len(tr.PayloadV), length)
	}

	var raw []byte
	var err error
	if uint8(proto) == netproto.IPProtoICMP {
		raw, err = netproto.BuildICMP(netproto.ICMPSpec{
			SrcMAC:   netproto.MACFromUint64(initial[asic.FieldEthSrc]),
			DstMAC:   netproto.MACFromUint64(initial[asic.FieldEthDst]),
			SrcIP:    netproto.IPv4Addr(initial[asic.FieldIPv4Src]),
			DstIP:    netproto.IPv4Addr(initial[asic.FieldIPv4Dst]),
			Type:     uint8(initial[asic.FieldICMPType]),
			Ident:    uint16(initial[asic.FieldICMPIdent]),
			Seq:      uint16(initial[asic.FieldICMPSeq]),
			Payload:  tr.PayloadV,
			FrameLen: length,
		})
	} else if uint8(proto) == netproto.IPProtoTCP {
		raw, err = netproto.BuildTCP(netproto.TCPSpec{
			SrcMAC:   netproto.MACFromUint64(initial[asic.FieldEthSrc]),
			DstMAC:   netproto.MACFromUint64(initial[asic.FieldEthDst]),
			SrcIP:    netproto.IPv4Addr(initial[asic.FieldIPv4Src]),
			DstIP:    netproto.IPv4Addr(initial[asic.FieldIPv4Dst]),
			SrcPort:  uint16(firstOf(initial, asic.FieldTCPSrcPort, asic.FieldL4SrcPort)),
			DstPort:  uint16(firstOf(initial, asic.FieldTCPDstPort, asic.FieldL4DstPort)),
			Seq:      uint32(initial[asic.FieldTCPSeq]),
			Ack:      uint32(initial[asic.FieldTCPAck]),
			Flags:    uint8(initial[asic.FieldTCPFlags]),
			Payload:  tr.PayloadV,
			FrameLen: length,
			VLAN:     vlan,
			VlanID:   uint16(initial[asic.FieldVlanID]),
			VlanPCP:  uint8(initial[asic.FieldVlanPCP]),
		})
	} else {
		sp := firstOf(initial, asic.FieldUDPSrcPort, asic.FieldL4SrcPort, asic.FieldTCPSrcPort)
		dp := firstOf(initial, asic.FieldUDPDstPort, asic.FieldL4DstPort, asic.FieldTCPDstPort)
		raw, err = netproto.BuildUDP(netproto.UDPSpec{
			SrcMAC:   netproto.MACFromUint64(initial[asic.FieldEthSrc]),
			DstMAC:   netproto.MACFromUint64(initial[asic.FieldEthDst]),
			SrcIP:    netproto.IPv4Addr(initial[asic.FieldIPv4Src]),
			DstIP:    netproto.IPv4Addr(initial[asic.FieldIPv4Dst]),
			SrcPort:  uint16(sp),
			DstPort:  uint16(dp),
			Payload:  tr.PayloadV,
			FrameLen: length,
			VLAN:     vlan,
			VlanID:   uint16(initial[asic.FieldVlanID]),
			VlanPCP:  uint8(initial[asic.FieldVlanPCP]),
		})
	}
	if err != nil {
		return nil, err
	}
	return &netproto.Packet{Data: raw, Meta: netproto.Meta{TemplateID: id}}, nil
}

// firstOf returns the first field present in the initial-value map.
func firstOf(initial map[asic.Field]uint64, fields ...asic.Field) uint64 {
	for _, f := range fields {
		if v, ok := initial[f]; ok {
			return v
		}
	}
	return 0
}

// compileMod translates one set value into an editor modification; nil for
// constants (already in the template packet).
func compileMod(f asic.Field, v ntapi.Value, opts Options) (*FieldMod, error) {
	// The editor's port alias: when a TCP-named alias lands on a UDP
	// template the runtime resolves via the L4 union fields.
	switch val := v.(type) {
	case ntapi.Const:
		return nil, nil
	case ntapi.Payload:
		return nil, fmt.Errorf("payload is CPU-side only; the pipeline cannot rewrite payloads (§6.2)")
	case ntapi.List:
		if len(val) == 0 {
			return nil, fmt.Errorf("empty value list")
		}
		for _, x := range val {
			if x > f.MaxValue() {
				return nil, fmt.Errorf("list value %d exceeds %d-bit field", x, f.Width())
			}
		}
		return &FieldMod{Field: f, Kind: ModList, List: append([]uint64(nil), val...)}, nil
	case ntapi.Range:
		if val.Count() == 0 {
			return nil, fmt.Errorf("empty range %s", val)
		}
		if val.End > f.MaxValue() {
			return nil, fmt.Errorf("range end %d exceeds %d-bit field", val.End, f.Width())
		}
		return &FieldMod{Field: f, Kind: ModProgression, Start: val.Start, End: val.End, Step: val.Step}, nil
	case ntapi.Random:
		return compileRandom(f, val, opts)
	case ntapi.Ref:
		rf, err := asic.FieldByName(val.Field)
		if err != nil {
			return nil, fmt.Errorf("record reference: %w", err)
		}
		return &FieldMod{Field: f, Kind: ModFromRecord, RecordField: rf, RecordOffset: val.Offset}, nil
	}
	return nil, fmt.Errorf("unsupported value %v", v)
}

// compileRandom builds the inverse-transform lookup table (§5.1): a uniform
// random draw indexes a quantized inverse CDF. Honouring the Tofino
// limitation (§6.1), the uniform generator width is a power of two and the
// table adds the offset.
func compileRandom(f asic.Field, r ntapi.Random, opts Options) (*FieldMod, error) {
	bits := r.Bits
	if bits <= 0 || bits > f.Width() {
		bits = f.Width()
	}
	if bits > 30 {
		bits = 30
	}
	var inv func(p float64) float64
	switch r.Dist {
	case ntapi.DistUniform:
		lo, hi := r.P1, r.P2
		if hi < lo {
			return nil, fmt.Errorf("uniform random with hi < lo")
		}
		inv = func(p float64) float64 { return lo + p*(hi-lo) }
	case ntapi.DistNormal:
		if r.P2 < 0 {
			return nil, fmt.Errorf("normal random with negative stddev")
		}
		inv = stats.NormalInvCDF(r.P1, r.P2)
	case ntapi.DistExponential:
		if r.P1 <= 0 {
			return nil, fmt.Errorf("exponential random with non-positive rate")
		}
		inv = stats.ExponentialInvCDF(1 / r.P1) // P1 is the mean
	default:
		return nil, fmt.Errorf("unknown distribution %q", r.Dist)
	}
	n := opts.RandTableSize
	table := make([]uint64, n)
	maxV := float64(f.MaxValue())
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		v := math.Round(inv(p))
		if v < 0 {
			v = 0
		}
		if v > maxV {
			v = maxV
		}
		table[i] = uint64(v)
	}
	return &FieldMod{Field: f, Kind: ModRandom, InvTable: table, RandBits: bits}, nil
}

// intervalTable builds the inverse-transform table of interval thresholds
// (ps) for a random inter-departure distribution with nanosecond parameters.
func intervalTable(r ntapi.Random, opts Options) ([]int64, error) {
	var inv func(p float64) float64
	switch r.Dist {
	case ntapi.DistUniform:
		if r.P2 < r.P1 || r.P1 < 0 {
			return nil, fmt.Errorf("uniform interval wants 0 <= lo <= hi ns")
		}
		inv = func(p float64) float64 { return r.P1 + p*(r.P2-r.P1) }
	case ntapi.DistNormal:
		if r.P1 <= 0 || r.P2 < 0 {
			return nil, fmt.Errorf("normal interval wants positive mean")
		}
		inv = stats.NormalInvCDF(r.P1, r.P2)
	case ntapi.DistExponential:
		if r.P1 <= 0 {
			return nil, fmt.Errorf("exponential interval wants a positive mean")
		}
		inv = stats.ExponentialInvCDF(1 / r.P1)
	default:
		return nil, fmt.Errorf("unknown interval distribution %q", r.Dist)
	}
	n := opts.RandTableSize
	table := make([]int64, n)
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		ns := inv(p)
		if ns < 0 {
			ns = 0
		}
		table[i] = int64(ns * 1000) // ns -> ps
	}
	return table, nil
}

// compileQuery builds a query plan including header-space extraction and
// false-positive precomputation.
func compileQuery(q *ntapi.Query, id int, prog *Program, opts Options) (*QueryPlan, error) {
	plan := &QueryPlan{
		ID:    id,
		Query: q,
		Port:  q.Port,
		Kind:  q.Kind,
		Func:  q.Func,

		DigestBits: opts.DigestBits,
		ArraySize:  opts.ArraySize,
		PolyArray1: asic.PolyCRC32,
		PolyArray2: asic.PolyCRC32C,
		PolyDigest: asic.PolyKoopman,
	}
	if q.Sent != nil {
		plan.Egress = true
		for _, t := range prog.Templates {
			if t.Trigger == q.Sent {
				plan.SentTemplateID = t.ID
			}
		}
		if plan.SentTemplateID == 0 {
			return nil, fmt.Errorf("monitored trigger %s not part of the task", q.Sent.Name)
		}
	}

	for _, f := range q.Filters {
		if f.Field == "count" {
			return nil, fmt.Errorf("count is only filterable after reduce")
		}
		fld, err := asic.FieldByName(f.Field)
		if err != nil {
			return nil, err
		}
		if f.Value > fld.MaxValue() {
			return nil, fmt.Errorf("filter %s: value %d exceeds %d-bit field", f, f.Value, fld.Width())
		}
		plan.Filters = append(plan.Filters, CompiledPred{Field: fld, Op: f.Op, Value: f.Value})
	}
	for _, p := range q.Post {
		if p.Field != "count" {
			return nil, fmt.Errorf("post-reduce filters apply to count, got %q", p.Field)
		}
		plan.Post = append(plan.Post, AggPred{Op: p.Op, Value: p.Value})
	}

	if q.Kind == ntapi.KindDelay {
		keys := q.Keys
		if len(keys) == 0 {
			keys = []string{"ipv4.id"}
		}
		for _, k := range keys {
			fld, err := asic.FieldByName(k)
			if err != nil {
				return nil, fmt.Errorf("delay key: %w", err)
			}
			plan.Keys = append(plan.Keys, fld)
		}
		return plan, nil
	}
	if q.Kind == ntapi.KindReduce || q.Kind == ntapi.KindDistinct {
		keys := q.Keys
		if len(keys) == 0 {
			keys = []string{"ipv4.sip", "ipv4.dip", "ipv4.proto", "l4.sport", "l4.dport"}
		}
		for _, k := range keys {
			fld, err := asic.FieldByName(k)
			if err != nil {
				return nil, fmt.Errorf("reduce key: %w", err)
			}
			plan.Keys = append(plan.Keys, fld)
		}
		if q.Kind == ntapi.KindReduce && q.Func != ntapi.AggCount && len(q.MapFields) > 0 {
			vf, err := asic.FieldByName(q.MapFields[0])
			if err != nil {
				return nil, fmt.Errorf("reduce value field: %w", err)
			}
			plan.ValueField = vf
		}
		// Extract the header space and precompute false positives.
		tuples, truncated := headerSpace(plan, prog.Templates, opts.MaxHeaderSpace)
		plan.HeaderSpaceSize = len(tuples)
		if !truncated {
			plan.ExactKeys = ComputeExactKeys(tuples, plan.ArraySize, plan.DigestBits,
				plan.PolyArray1, plan.PolyArray2, plan.PolyDigest)
		}
	}
	return plan, nil
}

// recordFields collects the packet fields a stateless trigger needs in its
// trigger records: everything its ModFromRecord mods reference.
func recordFields(tmpl *Template) []asic.Field {
	seen := map[asic.Field]bool{}
	var out []asic.Field
	add := func(f asic.Field) {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, m := range tmpl.Mods {
		if m.Kind == ModFromRecord {
			add(m.RecordField)
		}
	}
	add(asic.FieldInPort) // responses leave on the port the match arrived on
	return out
}
