package compiler

import (
	"strings"
	"testing"

	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/p4ir"
)

// rmwProg builds a minimal program with n tables whose actions each RMW a
// register, applied sequentially (reg name shared when shared is true).
func rmwProg(n int, shared bool) *p4ir.Program {
	p := &p4ir.Program{Name: "t", Headers: []string{"ethernet", "ipv4"}}
	for i := 0; i < n; i++ {
		reg := "reg_shared"
		if !shared {
			reg = "reg_" + string(rune('a'+i))
		}
		p.AddRegisterOnce(&p4ir.RegisterDef{Name: reg, Width: 32, Size: 1024})
		a := p.AddAction(&p4ir.ActionDef{
			Name: "act_" + string(rune('a'+i)),
			Ops:  []p4ir.Op{{Kind: p4ir.OpRegisterRMW, Dst: reg, Src: "1", Bits: 32}},
		})
		t := p.AddTable(&p4ir.TableDef{
			Name:     "tbl_" + string(rune('a'+i)),
			Pipeline: p4ir.PipeIngress,
			Match:    p4ir.MatchExact,
			Keys:     []p4ir.KeyDef{{Field: "ipv4.dstAddr", Bits: 32}},
			Actions:  []string{a.Name},
			Size:     16,
		})
		p.Ingress = append(p.Ingress, p4ir.ControlStmt{Apply: t.Name})
	}
	return p
}

func TestVerifyRejectsStageOverflow(t *testing.T) {
	// Each table's exact-match SRAM is sized to nearly fill one stage, so
	// no two share a stage; one more table than there are stages cannot
	// be placed.
	p := &p4ir.Program{Name: "wide", Headers: []string{"ethernet", "ipv4"}}
	noop := p.AddAction(&p4ir.ActionDef{Name: "nop", Ops: []p4ir.Op{{Kind: p4ir.OpNoOp}}})
	perStageBlocks := TofinoStageModel.PerStage.SRAMBlocks
	// entry = 32 key + overhead + action-data bits; pick a size just under
	// one stage's SRAM.
	entryBits := 32 + 32 + 64
	size := int(perStageBlocks-1) * 16 * 1024 * 8 / entryBits
	for i := 0; i <= TofinoStageModel.Stages; i++ {
		tbl := p.AddTable(&p4ir.TableDef{
			Name:     "big_" + string(rune('a'+i)),
			Pipeline: p4ir.PipeIngress,
			Match:    p4ir.MatchExact,
			Keys:     []p4ir.KeyDef{{Field: "ipv4.dstAddr", Bits: 32}},
			Actions:  []string{noop.Name},
			Size:     size,
		})
		p.Ingress = append(p.Ingress, p4ir.ControlStmt{Apply: tbl.Name})
	}
	err := VerifyPlan(p, TofinoStageModel)
	if err == nil || !strings.Contains(err.Error(), "stage") {
		t.Fatalf("want stage budget overflow, got %v", err)
	}
}

func TestVerifyRejectsOversizedSingleTable(t *testing.T) {
	p := &p4ir.Program{Name: "huge", Headers: []string{"ethernet", "ipv4"}}
	noop := p.AddAction(&p4ir.ActionDef{Name: "nop", Ops: []p4ir.Op{{Kind: p4ir.OpNoOp}}})
	tbl := p.AddTable(&p4ir.TableDef{
		Name:     "monster",
		Pipeline: p4ir.PipeIngress,
		Match:    p4ir.MatchExact,
		Keys:     []p4ir.KeyDef{{Field: "ipv4.dstAddr", Bits: 32}},
		Actions:  []string{noop.Name},
		Size:     20_000_000, // far beyond 12 stages of SRAM even spanning
	})
	p.Ingress = append(p.Ingress, p4ir.ControlStmt{Apply: tbl.Name})
	err := VerifyPlan(p, TofinoStageModel)
	if err == nil || !strings.Contains(err.Error(), "alone needs") {
		t.Fatalf("want single-table span failure, got %v", err)
	}
}

func TestVerifyRejectsDoubleSALUAccess(t *testing.T) {
	// Two sequentially applied tables RMW the same register: one packet
	// pass would fire the register's SALU twice.
	p := rmwProg(2, true)
	err := VerifyPlan(p, TofinoStageModel)
	if err == nil || !strings.Contains(err.Error(), "at most once per packet") {
		t.Fatalf("want SALU conflict, got %v", err)
	}

	// Distinct registers are fine.
	if err := VerifyPlan(rmwProg(2, false), TofinoStageModel); err != nil {
		t.Fatalf("distinct registers must verify: %v", err)
	}
}

func TestVerifyRejectsDoubleSALUAccessInOneAction(t *testing.T) {
	p := &p4ir.Program{Name: "dbl", Headers: []string{"ethernet", "ipv4"}}
	p.AddRegister(&p4ir.RegisterDef{Name: "cnt", Width: 32, Size: 64})
	a := p.AddAction(&p4ir.ActionDef{Name: "twice", Ops: []p4ir.Op{
		{Kind: p4ir.OpRegisterRead, Dst: "cnt", Src: "meta.v", Bits: 32},
		{Kind: p4ir.OpRegisterWrite, Dst: "cnt", Src: "meta.v", Bits: 32},
	}})
	tbl := p.AddTable(&p4ir.TableDef{
		Name: "t", Pipeline: p4ir.PipeIngress, Match: p4ir.MatchExact,
		Keys:    []p4ir.KeyDef{{Field: "ipv4.dstAddr", Bits: 32}},
		Actions: []string{a.Name}, Size: 4,
	})
	p.Ingress = append(p.Ingress, p4ir.ControlStmt{Apply: tbl.Name})
	err := VerifyPlan(p, TofinoStageModel)
	if err == nil || !strings.Contains(err.Error(), "twice in one pass") {
		t.Fatalf("want same-action double access, got %v", err)
	}
}

func TestVerifyAcceptsExclusiveSALUBranches(t *testing.T) {
	// Same register behind provably exclusive guards is one access per
	// packet: equality on the same field with different constants, and
	// Then vs Else of one condition.
	base := rmwProg(2, true)
	base.Ingress = []p4ir.ControlStmt{
		{If: "meta.template_id == 1", Then: []p4ir.ControlStmt{{Apply: "tbl_a"}}},
		{If: "meta.template_id == 2", Then: []p4ir.ControlStmt{{Apply: "tbl_b"}}},
	}
	if err := VerifyPlan(base, TofinoStageModel); err != nil {
		t.Fatalf("exclusive equality guards must verify: %v", err)
	}

	thenElse := rmwProg(2, true)
	thenElse.Ingress = []p4ir.ControlStmt{{
		If:   "meta.is_probe == 1",
		Then: []p4ir.ControlStmt{{Apply: "tbl_a"}},
		Else: []p4ir.ControlStmt{{Apply: "tbl_b"}},
	}}
	if err := VerifyPlan(thenElse, TofinoStageModel); err != nil {
		t.Fatalf("then/else branches must verify: %v", err)
	}

	// Same constant on both guards is NOT exclusive.
	same := rmwProg(2, true)
	same.Ingress = []p4ir.ControlStmt{
		{If: "meta.template_id == 1", Then: []p4ir.ControlStmt{{Apply: "tbl_a"}}},
		{If: "meta.template_id == 1", Then: []p4ir.ControlStmt{{Apply: "tbl_b"}}},
	}
	if err := VerifyPlan(same, TofinoStageModel); err == nil {
		t.Fatal("identical guards must not count as exclusive")
	}
}

func TestVerifyRejectsParserCycle(t *testing.T) {
	p := &p4ir.Program{
		Name:    "cyc",
		Headers: []string{"ethernet", "ipv4"},
		Parser: []p4ir.ParserEdge{
			{From: "ethernet", To: "ipv4"},
			{From: "ipv4", To: "vlan"},
			{From: "vlan", To: "ipv4"}, // QinQ-style loop back into ipv4
		},
	}
	err := VerifyPlan(p, TofinoStageModel)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want parser cycle, got %v", err)
	}

	// The linear chain derived from Headers is acyclic.
	p.Parser = nil
	if err := VerifyPlan(p, TofinoStageModel); err != nil {
		t.Fatalf("linear parser must verify: %v", err)
	}
}

func TestVerifyRejectsUnboundedRecirculation(t *testing.T) {
	mk := func(guard string, withState bool) *p4ir.Program {
		p := &p4ir.Program{Name: "rc", Headers: []string{"ethernet", "ipv4"}}
		ops := []p4ir.Op{{Kind: p4ir.OpRecirculate}}
		if withState {
			p.AddRegister(&p4ir.RegisterDef{Name: "inflight", Width: 32, Size: 64})
			ops = append([]p4ir.Op{{Kind: p4ir.OpRegisterRMW, Dst: "inflight", Src: "1", Bits: 32}}, ops...)
		}
		a := p.AddAction(&p4ir.ActionDef{Name: "do_recirc", Ops: ops})
		tbl := p.AddTable(&p4ir.TableDef{
			Name: "recirc_tbl", Pipeline: p4ir.PipeIngress, Match: p4ir.MatchExact,
			Keys:    []p4ir.KeyDef{{Field: "ipv4.dstAddr", Bits: 32}},
			Actions: []string{a.Name}, Size: 4,
		})
		apply := p4ir.ControlStmt{Apply: tbl.Name}
		if guard != "" {
			p.Ingress = []p4ir.ControlStmt{{If: guard, Then: []p4ir.ControlStmt{apply}}}
		} else {
			p.Ingress = []p4ir.ControlStmt{apply}
		}
		return p
	}

	err := VerifyPlan(mk("", true), TofinoStageModel)
	if err == nil || !strings.Contains(err.Error(), "recirculates unconditionally") {
		t.Fatalf("want unguarded recirculation rejection, got %v", err)
	}

	// A tautological guard is no guard.
	err = VerifyPlan(mk("true", true), TofinoStageModel)
	if err == nil || !strings.Contains(err.Error(), "recirculates unconditionally") {
		t.Fatalf("want true-guard recirculation rejection, got %v", err)
	}

	err = VerifyPlan(mk("meta.loop == 1", false), TofinoStageModel)
	if err == nil || !strings.Contains(err.Error(), "loop state") {
		t.Fatalf("want stateless recirculation rejection, got %v", err)
	}

	// Guarded and stateful: the shape the generator emits for loop
	// templates.
	if err := VerifyPlan(mk("meta.template_id != 0", true), TofinoStageModel); err != nil {
		t.Fatalf("bounded recirculation must verify: %v", err)
	}
}

// TestVerifyAcceptsIntervalExclusiveGuards is the regression for the
// heuristic's known blind spot: two interval guards over one field can be
// mutually exclusive without sharing the `field == const` shape the
// syntactic pre-pass recognizes. The path-sensitive consult must accept the
// disjoint pair and still reject an overlapping one.
func TestVerifyAcceptsIntervalExclusiveGuards(t *testing.T) {
	disjoint := rmwProg(2, true)
	disjoint.Ingress = []p4ir.ControlStmt{
		{If: "meta.x < 2", Then: []p4ir.ControlStmt{{Apply: "tbl_a"}}},
		{If: "meta.x > 5", Then: []p4ir.ControlStmt{{Apply: "tbl_b"}}},
	}
	if err := VerifyPlan(disjoint, TofinoStageModel); err != nil {
		t.Fatalf("disjoint interval guards must verify: %v", err)
	}

	overlap := rmwProg(2, true)
	overlap.Ingress = []p4ir.ControlStmt{
		{If: "meta.x >= 2", Then: []p4ir.ControlStmt{{Apply: "tbl_a"}}},
		{If: "meta.x <= 5", Then: []p4ir.ControlStmt{{Apply: "tbl_b"}}},
	}
	err := VerifyPlan(overlap, TofinoStageModel)
	if err == nil || !strings.Contains(err.Error(), "at most once per packet") {
		t.Fatalf("overlapping interval guards must be rejected, got %v", err)
	}
}

// TestVerifyAcceptsCompiledPlans pins the other half of the contract: every
// plan the compiler actually produces must pass the verifier (it already
// runs inside Compile via validateProgram; calling it again directly makes
// the acceptance explicit and keeps it if the wiring ever changes).
func TestVerifyAcceptsCompiledPlans(t *testing.T) {
	specs := map[string]string{
		"throughput": `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set([loop, length], [0, 64])
    .set(port, 0)
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
Q2 = query().map(p -> (pkt_len)).reduce(func=sum)
`,
		"loop": `
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [9.9.9.9, 1.1.0.1, udp, 1, 1])
    .set([loop, length], [1, 64])
    .set(port, 0)
Q1 = query().map(p -> (pkt_len)).reduce(func=count)
`,
		"mods": `
T1 = trigger()
    .set([dip, proto], [9.9.9.9, tcp])
    .set(sport, range(1024, 2047, 1))
    .set(dport, [80, 81, 82])
    .set([loop, length], [0, 128])
    .set(port, 2)
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
`,
	}
	for name, src := range specs {
		task, err := ntapi.Parse(name, src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		prog, err := Compile(task, Options{})
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		if prog.P4 == nil {
			t.Fatalf("%s: no generated P4", name)
		}
		if err := VerifyPlan(prog.P4, TofinoStageModel); err != nil {
			t.Errorf("%s: compiled plan rejected: %v", name, err)
		}
	}
}
