package compiler

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/p4ir"
	"github.com/hypertester/hypertester/internal/verify"
)

// ChipBudget is the absolute resource capacity of the target switching
// ASIC, a Tofino-class chip: switch.p4 consumes roughly half of most
// classes, and stateful ALUs (which switch.p4 barely uses — the point the
// paper makes under Table 7) come four per stage across 12 stages. Programs
// exceeding any column are rejected at compile time, the behaviour §6.1
// requires ("HyperTester will reject the testing tasks that cannot be
// accommodated by switching ASIC").
var ChipBudget = p4ir.Resources{
	CrossbarBytes: 1536,
	SRAMBlocks:    1187,
	TCAMBlocks:    372,
	VLIWSlots:     710,
	HashBits:      3260,
	SALUs:         48,
	Gateways:      192,
}

// validateProgram enforces the feasibility checks of §6.1.
func validateProgram(prog *Program, opts Options) error {
	// Template count against accelerator capacity: every template must
	// keep at least one copy in flight, and capacity shrinks with frame
	// size. Loopback ports extend it linearly (§6.1).
	if len(prog.Templates) > 0 {
		minSize := 1500
		for _, t := range prog.Templates {
			if t.Packet.Len() < minSize {
				minSize = t.Packet.Len()
			}
		}
		capacity := opts.RecircPaths * asic.AcceleratorCapacity(minSize)
		if len(prog.Templates) > capacity {
			return fmt.Errorf(
				"compiler: %d template packets exceed the accelerator capacity of %d (%d path(s), %d-byte templates); configure more loopback ports (§6.1)",
				len(prog.Templates), capacity, opts.RecircPaths, minSize)
		}
	}

	r := prog.Resources
	type col struct {
		name string
		use  float64
		cap  float64
	}
	cols := []col{
		{"match crossbar", float64(r.CrossbarBytes), float64(ChipBudget.CrossbarBytes)},
		{"SRAM", r.SRAMBlocks, ChipBudget.SRAMBlocks},
		{"TCAM", r.TCAMBlocks, ChipBudget.TCAMBlocks},
		{"VLIW", float64(r.VLIWSlots), float64(ChipBudget.VLIWSlots)},
		{"hash bits", float64(r.HashBits), float64(ChipBudget.HashBits)},
		{"SALU", float64(r.SALUs), float64(ChipBudget.SALUs)},
		{"gateways", float64(r.Gateways), float64(ChipBudget.Gateways)},
	}
	for _, c := range cols {
		if c.use > c.cap {
			return fmt.Errorf(
				"compiler: task needs %.1f %s but the chip has %.1f; the task cannot be accommodated (§6.1)",
				c.use, c.name, c.cap)
		}
	}

	// Whole-chip totals fit; now verify the plan can actually be laid out
	// and executed on the staged pipeline (verifyir.go), with the template
	// invariants available to the path-sensitive consult.
	if prog.P4 != nil {
		if err := VerifyPlanEnv(prog.P4, TofinoStageModel, TemplateInvariants(prog)); err != nil {
			return err
		}
		// Path-sensitive safety gate (internal/verify): invalid-header
		// accesses, recirculation without a termination proof, and SALU
		// conflicts the layout heuristic cannot see.
		if errs := AnalyzePlan(prog, verify.Options{}).Errors(); len(errs) > 0 {
			return fmt.Errorf("compiler: symbolic verifier: %s", errs[0])
		}
	}
	return nil
}
