package htpr

import "sort"

// CPU-side query post-processing. Sonata's operator set includes join on
// top of filter/map/reduce/distinct; HyperTester partitions such operators
// to the switch CPU (§5.2: "HyperTester runs all the CPU logic within
// switch CPU"). These helpers implement that CPU stage over collected
// reports.

// JoinedResult pairs the aggregates of two queries for one key.
type JoinedResult struct {
	Key   []uint64
	Left  uint64
	Right uint64
}

// Join inner-joins two result sets on their full key tuples. Keys present
// in only one side are dropped (use LeftJoin to keep them).
func Join(left, right []Result) []JoinedResult {
	idx := make(map[string]uint64, len(right))
	for _, r := range right {
		idx[keyString(r.Key)] = r.Value
	}
	var out []JoinedResult
	for _, l := range left {
		if rv, ok := idx[keyString(l.Key)]; ok {
			out = append(out, JoinedResult{Key: l.Key, Left: l.Value, Right: rv})
		}
	}
	return out
}

// LeftJoin keeps every left key; missing right values are zero.
func LeftJoin(left, right []Result) []JoinedResult {
	idx := make(map[string]uint64, len(right))
	for _, r := range right {
		idx[keyString(r.Key)] = r.Value
	}
	out := make([]JoinedResult, 0, len(left))
	for _, l := range left {
		out = append(out, JoinedResult{Key: l.Key, Left: l.Value, Right: idx[keyString(l.Key)]})
	}
	return out
}

// TopK returns the k largest results by value (ties broken by key order for
// determinism). The input is not modified.
func TopK(results []Result, k int) []Result {
	sorted := make([]Result, len(results))
	copy(sorted, results)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Value != sorted[j].Value {
			return sorted[i].Value > sorted[j].Value
		}
		return keyString(sorted[i].Key) < keyString(sorted[j].Key)
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// SumValues totals a result set (the scalar a keyless reduce reports).
func SumValues(results []Result) uint64 {
	var total uint64
	for _, r := range results {
		total += r.Value
	}
	return total
}

func keyString(key []uint64) string {
	b := make([]byte, 0, len(key)*8)
	for _, v := range key {
		for s := 56; s >= 0; s -= 8 {
			b = append(b, byte(v>>uint(s)))
		}
	}
	return string(b)
}
