package htpr

import (
	"bytes"
	"testing"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/netproto"
)

func compileTask(t *testing.T, src string) *compiler.Program {
	t.Helper()
	task, err := ntapi.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(task, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func tcpPHV(t *testing.T, sip netproto.IPv4Addr, sport uint16, flags uint8, inPort int) *asic.PHV {
	t.Helper()
	raw, err := netproto.BuildTCP(netproto.TCPSpec{
		SrcIP: sip, DstIP: netproto.MustIPv4("1.1.0.1"),
		SrcPort: sport, DstPort: 1024, Flags: flags, FrameLen: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	pkt := &netproto.Packet{Data: raw}
	pkt.Meta.InPort = inPort
	return asic.NewPHV(pkt)
}

func TestReceiverFiltersAndCounts(t *testing.T) {
	prog := compileTask(t, `
T1 = trigger().set([dip, proto, flag], [9.9.9.9, tcp, SYN]).set(port, 0)
Q1 = query().filter(tcp_flag == SYN+ACK)
`)
	r := NewReceiver(prog)
	proc := r.IngressProcessor()
	proc.Process(tcpPHV(t, 2, 80, netproto.TCPSyn|netproto.TCPAck, 0))
	proc.Process(tcpPHV(t, 2, 80, netproto.TCPRst, 0))
	st := r.State(1)
	if st.Matches != 1 {
		t.Fatalf("matches = %d, want 1 (RST filtered out)", st.Matches)
	}
	if st.MatchedBytes != 64 {
		t.Fatalf("bytes = %d", st.MatchedBytes)
	}
}

func TestReceiverPortFilter(t *testing.T) {
	prog := compileTask(t, `
T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(port, 0)
Q1 = query().port(2).filter(tcp_flag == SYN)
`)
	r := NewReceiver(prog)
	proc := r.IngressProcessor()
	proc.Process(tcpPHV(t, 2, 80, netproto.TCPSyn, 1)) // wrong port
	proc.Process(tcpPHV(t, 2, 80, netproto.TCPSyn, 2)) // right port
	if got := r.State(1).Matches; got != 1 {
		t.Fatalf("matches = %d, want 1", got)
	}
}

func TestReceiverTemplatePacketsDrainNotCount(t *testing.T) {
	prog := compileTask(t, `
T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(sport, range(1, 1024, 1)).set(port, 0)
Q1 = query().reduce(func=count, keys={ipv4.sip})
`)
	r := NewReceiver(prog)
	proc := r.IngressProcessor()
	// A recirculating template packet must not be counted as received
	// traffic; it drains the KV FIFO instead.
	phv := tcpPHV(t, 2, 80, netproto.TCPSyn, 0)
	phv.Meta.TemplateID = 1
	proc.Process(phv)
	if got := r.State(1).Matches; got != 0 {
		t.Fatalf("template packet counted as received traffic: %d", got)
	}
}

func TestReceiverEgressQueryScopedToTemplate(t *testing.T) {
	prog := compileTask(t, `
T1 = trigger().set([dip, proto], [9.9.9.1, tcp]).set(port, 0)
T2 = trigger().set([dip, proto], [9.9.9.2, tcp]).set(port, 0)
Q1 = query(T2).reduce(func=count)
`)
	r := NewReceiver(prog)
	proc := r.EgressProcessor()

	mk := func(tid, rid int) *asic.PHV {
		phv := tcpPHV(t, 2, 80, netproto.TCPSyn, 0)
		phv.Meta.TemplateID = tid
		phv.Meta.ReplicaID = rid
		return phv
	}
	proc.Process(mk(1, 1)) // other template's replica
	proc.Process(mk(2, 0)) // T2's loop continuation: not sent traffic
	proc.Process(mk(2, 1)) // T2's replica: counts
	proc.Process(mk(0, 0)) // not a template at all
	if got := r.State(1).Matches; got != 1 {
		t.Fatalf("egress query matched %d, want 1", got)
	}
}

func TestReceiverReducePostFilterGatesTrigger(t *testing.T) {
	prog := compileTask(t, `
T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(port, 0)
Q1 = query().filter(tcp_flag == ACK).reduce(func=count).filter(count >= 3)
T2 = trigger(Q1).set([dip, flag], [Q1.sip, FIN])
`)
	r := NewReceiver(prog)
	proc := r.IngressProcessor()
	fifo := r.TriggerFIFO(1)
	if fifo == nil {
		t.Fatal("no trigger FIFO")
	}
	for i := 0; i < 5; i++ {
		proc.Process(tcpPHV(t, 2, 80, netproto.TCPAck, 0))
	}
	// Counts 1,2 gated; 3,4,5 pass the post filter.
	if got := fifo.Len(); got != 3 {
		t.Fatalf("records pushed = %d, want 3 (count >= 3)", got)
	}
	if r.State(1).RecordsPushed != 3 {
		t.Fatalf("RecordsPushed = %d", r.State(1).RecordsPushed)
	}
}

func TestReceiverCollectReports(t *testing.T) {
	prog := compileTask(t, `
T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(port, 0)
Q1 = query().filter(tcp_flag == SYN).distinct(keys={ipv4.sip})
Q2 = query().filter(tcp_flag == SYN)
`)
	r := NewReceiver(prog)
	proc := r.IngressProcessor()
	for i := 0; i < 10; i++ {
		proc.Process(tcpPHV(t, netproto.IPv4Addr(i%4), 80, netproto.TCPSyn, 0))
	}
	reps := r.Collect()
	if len(reps) != 2 {
		t.Fatalf("reports = %d", len(reps))
	}
	if reps[0].Query != "Q1" || reps[0].Distinct != 4 {
		t.Fatalf("Q1 report: %+v", reps[0])
	}
	if reps[1].Query != "Q2" || reps[1].Matches != 10 || reps[1].Results != nil {
		t.Fatalf("Q2 report: %+v", reps[1])
	}
}

func TestSweepIdleEvictsOnlyStale(t *testing.T) {
	ct := NewCounterTable(testPlan(ntapi.KindReduce, ntapi.AggCount, 1<<8, 16))
	// Ten keys once; then keep touching the first three.
	for k := uint64(0); k < 10; k++ {
		ct.Update([]uint64{k}, 1)
	}
	for pass := 0; pass < 20; pass++ {
		for k := uint64(0); k < 3; k++ {
			ct.Update([]uint64{k}, 1)
		}
	}
	evicted := ct.SweepIdle(30)
	if evicted != 7 {
		t.Fatalf("evicted %d idle entries, want 7", evicted)
	}
	if ct.Unattributed != 0 {
		t.Fatalf("unattributed evictions: %d", ct.Unattributed)
	}
	// Totals preserved across eviction.
	totals := map[uint64]uint64{}
	for _, r := range ct.Collect() {
		totals[r.Key[0]] = r.Value
	}
	for k := uint64(0); k < 10; k++ {
		want := uint64(1)
		if k < 3 {
			want = 21
		}
		if totals[k] != want {
			t.Fatalf("key %d total %d, want %d", k, totals[k], want)
		}
	}
	// Swept cells are reusable.
	ct.Update([]uint64{99}, 1)
	if ct.SweepIdle(1<<30) != 0 {
		// nothing else is stale under a huge age bound
	}
}

func TestSweepIdleThenContinueCounting(t *testing.T) {
	ct := NewCounterTable(testPlan(ntapi.KindReduce, ntapi.AggCount, 1<<6, 16))
	ct.Update([]uint64{5}, 1)
	for i := 0; i < 100; i++ {
		ct.Update([]uint64{uint64(1000 + i)}, 1)
	}
	ct.SweepIdle(50) // key 5 goes to the CPU
	ct.Update([]uint64{5}, 1)
	ct.Update([]uint64{5}, 1)
	for _, r := range ct.Collect() {
		if r.Key[0] == 5 && r.Value != 3 {
			t.Fatalf("key 5 total %d, want 3 (1 evicted + 2 fresh)", r.Value)
		}
	}
}

// TestDigestBufferLifecycle pins the pooled eviction-buffer contract: a
// buffer handed to a packet's digest slot stays live — untouched by later
// evictions — until the ASIC's DigestFree consumption callback returns it,
// and only then is its storage reused. (The previous scheme recycled the
// buffer at the *next* attachment, corrupting a message whose emission had
// not happened yet.)
func TestDigestBufferLifecycle(t *testing.T) {
	prog := compileTask(t, `
T1 = trigger().set([dip, proto], [9.9.9.9, tcp]).set(sport, range(1, 1024, 1)).set(port, 0)
Q1 = query().reduce(func=count, keys={ipv4.sip})
`)
	r := NewReceiver(prog)
	r.EnableDigestEvictions()
	st := r.State(1)
	evict := func(k uint64) { st.Table.OnEvict([]uint64{k}, 1) }

	evict(11)
	evict(22)
	p1 := tcpPHV(t, 2, 80, netproto.TCPSyn, 0)
	r.attachDigest(p1)
	if p1.DigestData == nil || p1.DigestFree == nil {
		t.Fatal("attachDigest did not install buffer and consumption callback")
	}
	msg1 := append([]byte(nil), p1.DigestData...)

	// A second attachment while the first is still in flight must not
	// recycle the first buffer.
	p2 := tcpPHV(t, 3, 80, netproto.TCPSyn, 0)
	r.attachDigest(p2)
	if n := len(r.digestFree); n != 0 {
		t.Fatalf("free list holds %d buffers while both attachments are in flight", n)
	}
	// A fresh eviction must not overwrite the live attachment either.
	evict(33)
	if !bytes.Equal(p1.DigestData, msg1) {
		t.Fatal("eviction encoded into a buffer still attached to a packet")
	}

	// Consumption (what asic.Switch.takeDigest does after copying the
	// message onto the digest channel) returns the buffer for reuse.
	buf := p1.DigestData
	p1.DigestFree(p1.DigestData)
	p1.DigestData, p1.DigestFree = nil, nil
	if n := len(r.digestFree); n != 1 {
		t.Fatalf("free list holds %d buffers after consumption, want 1", n)
	}
	evict(44)
	st.pendingDigests.pop() // 33's message
	m44 := st.pendingDigests.pop()
	if len(m44) == 0 || &m44[0] != &buf[0] {
		t.Fatal("consumed buffer storage was not reused by the next eviction")
	}
}
