package htpr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/core/ntapi"
)

func testPlan(kind ntapi.QueryKind, fn ntapi.AggFunc, arraySize, digestBits int) *compiler.QueryPlan {
	return &compiler.QueryPlan{
		ID:         1,
		Query:      &ntapi.Query{Name: "Q1"},
		Kind:       kind,
		Func:       fn,
		Keys:       []asic.Field{asic.FieldIPv4Src},
		DigestBits: digestBits,
		ArraySize:  arraySize,
		PolyArray1: asic.PolyCRC32,
		PolyArray2: asic.PolyCRC32C,
		PolyDigest: asic.PolyKoopman,
	}
}

func TestCounterTableSumExact(t *testing.T) {
	ct := NewCounterTable(testPlan(ntapi.KindReduce, ntapi.AggSum, 1<<10, 16))
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(200))
		v := uint64(rng.Intn(100) + 1)
		ct.Update([]uint64{k}, v)
		truth[k] += v
		if i%7 == 0 {
			ct.DrainOne() // template packets drain as traffic flows
		}
	}
	results := ct.Collect()
	if len(results) != len(truth) {
		t.Fatalf("keys = %d, want %d", len(results), len(truth))
	}
	for _, r := range results {
		if truth[r.Key[0]] != r.Value {
			t.Fatalf("key %d: sum %d, want %d", r.Key[0], r.Value, truth[r.Key[0]])
		}
	}
}

func TestCounterTableCount(t *testing.T) {
	ct := NewCounterTable(testPlan(ntapi.KindReduce, ntapi.AggCount, 1<<10, 16))
	for i := 0; i < 300; i++ {
		ct.Update([]uint64{uint64(i % 3)}, 99) // delta ignored for count
	}
	for _, r := range ct.Collect() {
		if r.Value != 100 {
			t.Fatalf("key %d count = %d, want 100", r.Key[0], r.Value)
		}
	}
}

func TestCounterTableMaxMin(t *testing.T) {
	ctMax := NewCounterTable(testPlan(ntapi.KindReduce, ntapi.AggMax, 1<<8, 16))
	ctMin := NewCounterTable(testPlan(ntapi.KindReduce, ntapi.AggMin, 1<<8, 16))
	for _, v := range []uint64{17, 3, 99, 40} {
		ctMax.Update([]uint64{1}, v)
		ctMin.Update([]uint64{1}, v)
	}
	if r := ctMax.Collect(); r[0].Value != 99 {
		t.Fatalf("max = %d", r[0].Value)
	}
	if r := ctMin.Collect(); r[0].Value != 3 {
		t.Fatalf("min = %d", r[0].Value)
	}
}

func TestCounterTableDistinct(t *testing.T) {
	ct := NewCounterTable(testPlan(ntapi.KindDistinct, ntapi.AggCount, 1<<12, 16))
	rng := rand.New(rand.NewSource(9))
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		k := uint64(rng.Intn(700))
		ct.Update([]uint64{k}, 1)
		seen[k] = true
		if i%5 == 0 {
			ct.DrainOne()
		}
	}
	if got := ct.DistinctCount(); got != len(seen) {
		t.Fatalf("distinct = %d, want %d", got, len(seen))
	}
}

func TestCounterTableOverloadEvictsToCPU(t *testing.T) {
	// Far more keys than slots: FIFO fills, relocation fails, entries must
	// flow to the CPU — and the total must stay exact.
	ct := NewCounterTable(testPlan(ntapi.KindReduce, ntapi.AggCount, 1<<6, 16))
	rng := rand.New(rand.NewSource(11))
	truth := map[uint64]uint64{}
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() % 2000
		ct.Update([]uint64{k}, 1)
		truth[k]++
	}
	if ct.Evictions == 0 {
		t.Fatal("expected evictions under 31x overload")
	}
	var total, want uint64
	for _, r := range ct.Collect() {
		total += r.Value
	}
	for _, v := range truth {
		want += v
	}
	if total != want {
		t.Fatalf("total = %d, want %d (no updates may be lost)", total, want)
	}
}

func TestCounterTableExactKeysIsolated(t *testing.T) {
	// Keys installed as exact-match entries must bypass the arrays
	// entirely and count precisely.
	plan := testPlan(ntapi.KindReduce, ntapi.AggSum, 1<<8, 8)
	plan.ExactKeys = [][]uint64{{42}, {77}}
	ct := NewCounterTable(plan)
	ct.Update([]uint64{42}, 5)
	ct.Update([]uint64{42}, 5)
	ct.Update([]uint64{77}, 1)
	ct.Update([]uint64{1}, 3)
	if ct.ExactHits != 3 {
		t.Fatalf("exact hits = %d, want 3", ct.ExactHits)
	}
	vals := map[uint64]uint64{}
	for _, r := range ct.Collect() {
		vals[r.Key[0]] = r.Value
	}
	if vals[42] != 10 || vals[77] != 1 || vals[1] != 3 {
		t.Fatalf("values = %v", vals)
	}
}

func TestNoFalsePositivesWithPrecomputedExact(t *testing.T) {
	// The §5.2 guarantee, end to end: enumerate a key population, let the
	// compiler precompute exact entries, then feed every key — per-key
	// counts must be exact even where digests collide.
	const n = 60000
	rng := rand.New(rand.NewSource(13))
	keys := make([][]uint64, n)
	for i := range keys {
		keys[i] = []uint64{rng.Uint64() & 0xffffffff}
	}
	plan := testPlan(ntapi.KindReduce, ntapi.AggCount, 1<<12, 12)
	plan.ExactKeys = compiler.ComputeExactKeys(keys, plan.ArraySize, plan.DigestBits,
		plan.PolyArray1, plan.PolyArray2, plan.PolyDigest)
	if len(plan.ExactKeys) == 0 {
		t.Fatal("expected precomputed collisions at this density")
	}
	ct := NewCounterTable(plan)
	truth := map[uint64]uint64{}
	for pass := 0; pass < 2; pass++ {
		for _, k := range keys {
			ct.Update(k, 1)
			truth[k[0]]++
			ct.DrainOne()
		}
	}
	bad := 0
	for _, r := range ct.Collect() {
		if truth[r.Key[0]] != r.Value {
			bad++
		}
	}
	if bad != 0 {
		t.Fatalf("%d keys with wrong counts: false positives slipped through", bad)
	}
}

func TestDrainOnEmptyFIFO(t *testing.T) {
	ct := NewCounterTable(testPlan(ntapi.KindReduce, ntapi.AggSum, 1<<8, 16))
	if ct.DrainOne() {
		t.Fatal("drain on empty FIFO reported work")
	}
}

// Property: for any update sequence, collected totals equal the ground
// truth (counter-based queries are exact — the paper's core claim).
func TestExactnessProperty(t *testing.T) {
	f := func(keysRaw []uint8, drainEvery uint8) bool {
		ct := NewCounterTable(testPlan(ntapi.KindReduce, ntapi.AggCount, 1<<7, 16))
		truth := map[uint64]uint64{}
		de := int(drainEvery%5) + 1
		for i, kr := range keysRaw {
			k := uint64(kr)
			ct.Update([]uint64{k}, 1)
			truth[k]++
			if i%de == 0 {
				ct.DrainOne()
			}
		}
		for _, r := range ct.Collect() {
			if truth[r.Key[0]] != r.Value {
				return false
			}
		}
		return len(ct.Collect()) == len(truth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
