// Package htpr implements the HyperTester Packet Receiver (§5.2): compiled
// packet-stream queries with the false-positive-free counter-based
// algorithm — partial-key cuckoo hashing over two register arrays, a KV
// FIFO whose entries are drained by recirculated template packets, exact
// key matching for the precomputed collisions, and eviction of old entries
// to the switch CPU.
package htpr

import (
	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/core/stateless"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
)

// CounterTable is the data-plane structure behind one reduce or distinct
// query. The arrays store (digest, counter) in registers; full keys are
// never stored on the data plane. KV-FIFO records carry (primary slot,
// digest, count) — under partial-key cuckoo hashing that is sufficient to
// place and relocate entries without knowing the key. The shadowKeys map is
// control-plane bookkeeping only: the switch CPU can reconstruct key↔cell
// mappings because the header space is known (§5.2); it labels results and
// never influences data-plane behaviour.
type CounterTable struct {
	plan *compiler.QueryPlan

	h1, hd, halt *asic.HashUnit

	digest1, count1 *asic.RegisterArray
	digest2, count2 *asic.RegisterArray
	// touch1/touch2 record the Updates clock of each cell's last hit, so
	// the CPU can sweep out idle entries ("evict the old analysis states
	// and upload them to the switch CPU", §3.1).
	touch1, touch2 *asic.RegisterArray

	// kvFIFO buffers entries awaiting cuckoo insertion by a recirculated
	// template packet (Figure 5). Record layout: slot1, digest, count.
	kvFIFO *stateless.FIFO

	// keyDir labels cells for the CPU: (primary slot, digest) -> key.
	// Among non-exact keys the pair is unique by construction (colliding
	// keys were moved to the exact table), and the CPU can always rebuild
	// it because the header space is known (§5.2). Entries persist for
	// the task's lifetime.
	keyDir map[uint64][]uint64

	// exact maps precomputed colliding keys to dedicated counters.
	exact map[string]*exactEntry

	// shadowKeys labels occupied cells for result collection:
	// array<<40 | slot -> key tuple.
	shadowKeys map[uint64][]uint64

	// evicted accumulates entries reported to the switch CPU (FIFO
	// overflow or relocation-budget eviction), keyed by encoded tuple.
	// When OnEvict is set, reports go through it instead (the push-mode
	// digest path the receiver wires up).
	evicted map[string]uint64

	// OnEvict, when non-nil, receives each evicted (key, partial
	// aggregate) instead of the internal CPU-side map.
	OnEvict func(key []uint64, value uint64)

	// Statistics.
	// Unattributed counts aggregate value the CPU could not map back to
	// a key (should stay zero; exported for verification).
	Unattributed uint64
	Updates      uint64
	ExactHits    uint64
	FIFOPushes   uint64
	FIFODrains   uint64
	Evictions    uint64 // entries reported out to the CPU
	FIFODrops    uint64 // KV-FIFO overflow (the §6.1 limitation)

	maxRelocate int
}

// Observe binds the table's six register arrays to a trace stream so every
// SALU access during query processing emits a salu record.
func (ct *CounterTable) Observe(clock *netsim.Sim, tr *obs.Trace) {
	ct.digest1.Observe(clock, tr)
	ct.count1.Observe(clock, tr)
	ct.digest2.Observe(clock, tr)
	ct.count2.Observe(clock, tr)
	ct.touch1.Observe(clock, tr)
	ct.touch2.Observe(clock, tr)
}

type exactEntry struct {
	key   []uint64
	count uint64
	seen  bool
}

// kvLayout: slot1, digest, count (register-file FIFO reuse).
var kvLayout = []asic.Field{asic.FieldNone, asic.FieldNone, asic.FieldNone}

// NewCounterTable builds the runtime structure for a reduce/distinct plan.
func NewCounterTable(plan *compiler.QueryPlan) *CounterTable {
	ct := &CounterTable{
		plan:        plan,
		h1:          asic.NewHashUnit("ct-a1", plan.PolyArray1),
		halt:        asic.NewHashUnit("ct-alt", plan.PolyArray2),
		hd:          asic.NewHashUnit("ct-digest", plan.PolyDigest),
		digest1:     asic.NewRegisterArray("ct-digest1", plan.ArraySize),
		count1:      asic.NewRegisterArray("ct-count1", plan.ArraySize),
		digest2:     asic.NewRegisterArray("ct-digest2", plan.ArraySize),
		count2:      asic.NewRegisterArray("ct-count2", plan.ArraySize),
		touch1:      asic.NewRegisterArray("ct-touch1", plan.ArraySize),
		touch2:      asic.NewRegisterArray("ct-touch2", plan.ArraySize),
		kvFIFO:      stateless.New("kv-fifo", kvLayout, 1024),
		keyDir:      make(map[uint64][]uint64),
		exact:       make(map[string]*exactEntry),
		shadowKeys:  make(map[uint64][]uint64),
		evicted:     make(map[string]uint64),
		maxRelocate: 8,
	}
	for _, k := range plan.ExactKeys {
		key := append([]uint64(nil), k...)
		ct.exact[string(compiler.EncodeKey(key))] = &exactEntry{key: key}
	}
	return ct
}

func pendingID(slot1 int, digest uint32) uint64 {
	return uint64(slot1)<<32 | uint64(digest)
}

func cellID(array, slot int) uint64 { return uint64(array)<<40 | uint64(slot) }

// Update processes one packet's key with a value delta. For distinct
// queries the aggregate saturates at 1 (insert-if-new). It returns the
// post-update aggregate for the key, which post-reduce filters evaluate.
func (ct *CounterTable) Update(key []uint64, delta uint64) uint64 {
	ct.Updates++
	kb := compiler.EncodeKey(key)

	// Exact key matching first: precomputed collisions resolve here and
	// never touch the hashed arrays (Figure 4).
	if e, ok := ct.exact[string(kb)]; ok {
		ct.ExactHits++
		e.count = ct.agg(e.count, delta, !e.seen)
		e.seen = true
		return e.count
	}

	idx1, idx2, d := compiler.CuckooSlots(kb, ct.plan.ArraySize, ct.plan.DigestBits, ct.h1, ct.hd, ct.halt)

	// Hit in either array?
	if ct.digest1.Read(idx1) == uint64(d) {
		nv := ct.agg(ct.count1.Read(idx1), delta, false)
		ct.count1.Write(idx1, nv)
		ct.touch1.Write(idx1, ct.Updates)
		return nv
	}
	if ct.digest2.Read(idx2) == uint64(d) {
		nv := ct.agg(ct.count2.Read(idx2), delta, false)
		ct.count2.Write(idx2, nv)
		ct.touch2.Write(idx2, ct.Updates)
		return nv
	}
	// Miss: new key. Insert into an empty candidate slot if available.
	first := ct.agg(0, delta, true)
	if ct.digest1.Read(idx1) == 0 {
		ct.digest1.Write(idx1, uint64(d))
		ct.count1.Write(idx1, first)
		ct.touch1.Write(idx1, ct.Updates)
		ct.shadowKeys[cellID(1, idx1)] = append([]uint64(nil), key...)
		return first
	}
	if ct.digest2.Read(idx2) == 0 {
		ct.digest2.Write(idx2, uint64(d))
		ct.count2.Write(idx2, first)
		ct.touch2.Write(idx2, ct.Updates)
		ct.shadowKeys[cellID(2, idx2)] = append([]uint64(nil), key...)
		return first
	}
	// Both candidate slots occupied: queue the KV pair for a recirculated
	// template packet to place (Figure 5b).
	if ct.kvFIFO.Push([]uint64{uint64(idx1), uint64(d), first}) {
		ct.FIFOPushes++
		if _, dup := ct.keyDir[pendingID(idx1, d)]; !dup {
			ct.keyDir[pendingID(idx1, d)] = append([]uint64(nil), key...)
		}
	} else {
		// FIFO overflow: report straight to the switch CPU (§6.1).
		ct.FIFODrops++
		ct.evict(key, first)
	}
	return first
}

// agg folds a packet's delta into an aggregate.
func (ct *CounterTable) agg(old, delta uint64, isNew bool) uint64 {
	if ct.plan.Kind == ntapi.KindDistinct {
		return 1
	}
	switch ct.plan.Func {
	case ntapi.AggSum:
		return old + delta
	case ntapi.AggCount:
		return old + 1
	case ntapi.AggMax:
		if isNew || delta > old {
			return delta
		}
		return old
	case ntapi.AggMin:
		if isNew || delta < old {
			return delta
		}
		return old
	}
	return old + 1
}

// merge folds two partial aggregates of the same key together.
func (ct *CounterTable) merge(a, b uint64) uint64 {
	if ct.plan.Kind == ntapi.KindDistinct {
		return 1
	}
	switch ct.plan.Func {
	case ntapi.AggMax:
		if b > a {
			return b
		}
		return a
	case ntapi.AggMin:
		if a == 0 || b < a {
			return b
		}
		return a
	default:
		return a + b
	}
}

// DrainOne performs one FIFO pop and cuckoo insertion — the work a
// recirculated template packet does per pass (Figure 5). It reports whether
// anything was drained.
func (ct *CounterTable) DrainOne() bool {
	rec, ok := ct.kvFIFO.Pop()
	if !ok {
		return false
	}
	ct.FIFODrains++
	slot1, d, cnt := int(rec[0]), uint32(rec[1]), rec[2]
	idx2 := compiler.AltSlot(slot1, d, ct.plan.ArraySize, ct.halt)

	// If the key is already placed (by Update or an earlier drain), merge.
	if ct.digest1.Read(slot1) == uint64(d) {
		ct.count1.Write(slot1, ct.merge(ct.count1.Read(slot1), cnt))
		return true
	}
	if ct.digest2.Read(idx2) == uint64(d) {
		ct.count2.Write(idx2, ct.merge(ct.count2.Read(idx2), cnt))
		return true
	}

	shadow := ct.keyDir[pendingID(slot1, d)]

	// Insert at the primary slot, relocating occupants along their
	// alternate-slot chains (bounded, like a pipeline pass).
	slot, digest, count := slot1, d, cnt
	array := 1
	for hop := 0; hop < ct.maxRelocate; hop++ {
		dArr, cArr := ct.digest1, ct.count1
		if array == 2 {
			dArr, cArr = ct.digest2, ct.count2
		}
		oldD := dArr.Read(slot)
		oldC := cArr.Read(slot)
		oldShadow := ct.shadowKeys[cellID(array, slot)]
		if oldShadow == nil && oldD != 0 {
			// Recover the occupant's label from the key directory via
			// its primary slot (partial-key cuckoo makes it computable).
			occIdx1 := slot
			if array == 2 {
				occIdx1 = compiler.AltSlot(slot, uint32(oldD), ct.plan.ArraySize, ct.halt)
			}
			oldShadow = ct.keyDir[pendingID(occIdx1, uint32(oldD))]
		}
		dArr.Write(slot, uint64(digest))
		cArr.Write(slot, count)
		if shadow != nil {
			ct.shadowKeys[cellID(array, slot)] = shadow
		} else {
			delete(ct.shadowKeys, cellID(array, slot))
		}
		if oldD == 0 {
			return true // placed in an empty slot
		}
		// The evicted occupant moves to its alternate slot (computable
		// from slot + digest alone).
		digest, count, shadow = uint32(oldD), oldC, oldShadow
		slot = compiler.AltSlot(slot, digest, ct.plan.ArraySize, ct.halt)
		array = 3 - array
	}
	// Relocation budget exhausted: report the carried entry to the CPU
	// (the "old KV pair evicted" path of Figure 5d).
	if shadow != nil {
		ct.evict(shadow, count)
	} else {
		ct.Unattributed += count
		ct.Evictions++
	}
	return true
}

// evict reports one entry to the switch CPU, through the OnEvict hook
// (push-mode digests) when installed, or the internal CPU map otherwise.
func (ct *CounterTable) evict(key []uint64, value uint64) {
	ct.Evictions++
	if ct.OnEvict != nil {
		ct.OnEvict(append([]uint64(nil), key...), value)
		return
	}
	kb := string(compiler.EncodeKey(key))
	ct.evicted[kb] = ct.merge(ct.evicted[kb], value)
}

// Merge exposes the aggregate-combining rule so the CPU side merges partial
// aggregates with the same semantics as the data plane.
func (ct *CounterTable) Merge(a, b uint64) uint64 { return ct.merge(a, b) }

// SweepIdle is the control-plane aging pass: every occupied cell whose last
// touch is older than maxAge updates is uploaded to the CPU and freed,
// keeping the on-chip arrays available for active flows (§3.1's "evict the
// old analysis states"). It returns the number of evicted entries.
func (ct *CounterTable) SweepIdle(maxAge uint64) int {
	evicted := 0
	sweep := func(array int, dArr, cArr, tArr *asic.RegisterArray) {
		for slot := 0; slot < ct.plan.ArraySize; slot++ {
			if dArr.Read(slot) == 0 {
				continue
			}
			if ct.Updates-tArr.Read(slot) <= maxAge {
				continue
			}
			key := ct.shadowKeys[cellID(array, slot)]
			if key == nil {
				occIdx1 := slot
				if array == 2 {
					occIdx1 = compiler.AltSlot(slot, uint32(dArr.Read(slot)), ct.plan.ArraySize, ct.halt)
				}
				key = ct.keyDir[pendingID(occIdx1, uint32(dArr.Read(slot)))]
			}
			if key != nil {
				ct.evict(key, cArr.Read(slot))
			} else {
				ct.Unattributed += cArr.Read(slot)
				ct.Evictions++
			}
			dArr.Write(slot, 0)
			cArr.Write(slot, 0)
			delete(ct.shadowKeys, cellID(array, slot))
			evicted++
		}
	}
	sweep(1, ct.digest1, ct.count1, ct.touch1)
	sweep(2, ct.digest2, ct.count2, ct.touch2)
	return evicted
}

// FIFOLen reports queued KV entries.
func (ct *CounterTable) FIFOLen() int { return ct.kvFIFO.Len() }

// DrainAll drains the FIFO completely (the CPU does this at collection
// time; during the run, template packets drain one entry per pass).
func (ct *CounterTable) DrainAll() {
	for ct.DrainOne() {
	}
}

// Result is one key's aggregate in a collected report.
type Result struct {
	Key   []uint64
	Value uint64
}

// Collect merges the data-plane state (exact counters, both arrays, any
// remaining FIFO entries) with CPU-side evictions into a per-key report —
// what the switch CPU assembles from batched pulls plus digest messages.
func (ct *CounterTable) Collect() []Result {
	ct.DrainAll()
	merged := make(map[string]uint64)
	keyOf := make(map[string][]uint64)
	add := func(key []uint64, v uint64) {
		kb := string(compiler.EncodeKey(key))
		merged[kb] = ct.merge(merged[kb], v)
		keyOf[kb] = key
	}
	for _, e := range ct.exact {
		if e.seen {
			add(e.key, e.count)
		}
	}
	for cid, key := range ct.shadowKeys {
		array, slot := int(cid>>40), int(cid&0xffffffffff)
		if array == 1 {
			if ct.digest1.Read(slot) != 0 {
				add(key, ct.count1.Read(slot))
			}
		} else if ct.digest2.Read(slot) != 0 {
			add(key, ct.count2.Read(slot))
		}
	}
	for kb, v := range ct.evicted {
		key := keyOf[kb]
		if key == nil {
			key = decodeKey(kb)
		}
		add(key, v)
	}
	out := make([]Result, 0, len(merged))
	for kb, v := range merged {
		out = append(out, Result{Key: keyOf[kb], Value: v})
	}
	return out
}

func decodeKey(kb string) []uint64 {
	b := []byte(kb)
	out := make([]uint64, len(b)/8)
	for i := range out {
		for j := 0; j < 8; j++ {
			out[i] = out[i]<<8 | uint64(b[i*8+j])
		}
	}
	return out
}

// DistinctCount returns the number of distinct keys observed.
func (ct *CounterTable) DistinctCount() int { return len(ct.Collect()) }
