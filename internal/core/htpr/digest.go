package htpr

import (
	"encoding/binary"
	"fmt"
)

// Digest-message codec for push-mode eviction reporting (§5.2: "report the
// KV pairs to the switch CPU via generate_digest"). A message carries the
// query ID, the key tuple and the partial aggregate; the switch CPU decodes
// and merges it. Messages ride the rate-limited digest channel, so heavy
// eviction churn genuinely consumes the Fig. 16a budget.

// evictionMagic guards against decoding foreign digest messages.
const evictionMagic = 0x4855 // "HU"

// AppendEviction serializes one evicted entry into dst, reusing its capacity
// — the allocation-free form used by the receiver's pooled digest path.
func AppendEviction(dst []byte, queryID int, key []uint64, value uint64) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint16(hdr[0:2], evictionMagic)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(queryID))
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(key)))
	dst = append(dst, hdr[:6]...)
	var v [8]byte
	for _, k := range key {
		binary.BigEndian.PutUint64(v[:], k)
		dst = append(dst, v[:]...)
	}
	binary.BigEndian.PutUint64(v[:], value)
	dst = append(dst, v[:]...)
	return dst
}

// EncodeEviction serializes one evicted entry into a fresh buffer.
func EncodeEviction(queryID int, key []uint64, value uint64) []byte {
	return AppendEviction(make([]byte, 0, 6+8*len(key)+8), queryID, key, value)
}

// DecodeEviction parses a message produced by EncodeEviction.
func DecodeEviction(msg []byte) (queryID int, key []uint64, value uint64, err error) {
	if len(msg) < 6 {
		return 0, nil, 0, fmt.Errorf("htpr: digest message too short")
	}
	if binary.BigEndian.Uint16(msg[0:2]) != evictionMagic {
		return 0, nil, 0, fmt.Errorf("htpr: not an eviction digest")
	}
	queryID = int(binary.BigEndian.Uint16(msg[2:4]))
	n := int(binary.BigEndian.Uint16(msg[4:6]))
	want := 6 + 8*n + 8
	if len(msg) != want {
		return 0, nil, 0, fmt.Errorf("htpr: eviction digest length %d, want %d", len(msg), want)
	}
	key = make([]uint64, n)
	for i := 0; i < n; i++ {
		key[i] = binary.BigEndian.Uint64(msg[6+8*i:])
	}
	value = binary.BigEndian.Uint64(msg[6+8*n:])
	return queryID, key, value, nil
}
