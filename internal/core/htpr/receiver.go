package htpr

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/core/compiler"
	"github.com/hypertester/hypertester/internal/core/ntapi"
	"github.com/hypertester/hypertester/internal/core/stateless"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
)

// QueryState is the runtime of one compiled query.
type QueryState struct {
	Plan *compiler.QueryPlan

	// Matches counts packets that passed the filter chain.
	Matches uint64
	// MatchedBytes sums their frame lengths (throughput reporting).
	MatchedBytes uint64

	// Table is the counter table for reduce/distinct queries; nil for
	// capture queries.
	Table *CounterTable

	// TriggerFIFO, when non-nil, receives trigger records for the
	// stateless-connection template this query drives (§5.3).
	TriggerFIFO *stateless.FIFO
	// RecordsPushed counts records handed to HTPS.
	RecordsPushed uint64

	// Push-mode eviction reporting (enabled by EnableDigestEvictions):
	// encoded digest messages awaiting a packet to carry them, and the
	// CPU-side merge of decoded messages.
	pendingDigests digestFIFO
	cpuEvicted     map[string]uint64
	cpuKeys        map[string][]uint64

	// Delay-measurement state (KindDelay): a hash-indexed timestamp
	// register written at egress and consumed at ingress.
	delayStore *asic.RegisterArray
	delayHash  *asic.HashUnit
	DelayCount uint64
	DelaySumNs float64
	DelayMinNs float64
	DelayMaxNs float64
}

// digestFIFO queues encoded eviction messages with slot reuse: popping
// advances a head index instead of reslicing, so the backing array is
// reclaimed (and reused) once drained rather than pinned by a [1:] chain.
type digestFIFO struct {
	q    [][]byte
	head int
}

func (f *digestFIFO) len() int { return len(f.q) - f.head }

func (f *digestFIFO) push(m []byte) { f.q = append(f.q, m) }

func (f *digestFIFO) pop() []byte {
	m := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	if f.head == len(f.q) {
		f.q, f.head = f.q[:0], 0
	}
	return m
}

// Receiver deploys compiled queries onto a switch's pipelines: ingress for
// received traffic, egress for sent traffic (§5.2's component layout).
type Receiver struct {
	prog   *compiler.Program
	states []*QueryState

	// DigestRoom, when set, gates push-mode digest attachment on channel
	// backpressure (a learn filter's pipeline-visible signal): pending
	// messages wait on the data plane until the channel has room, or the
	// CPU drains them at collection time.
	DigestRoom func() bool

	// digestFree recycles encoded-eviction buffers: a message returns here
	// once consumed (copied by the ASIC digest channel, or decoded at
	// collection time) and its storage is reused by the next eviction,
	// making sustained eviction reporting allocation-free.
	digestFree [][]byte
	// recycleFn is recycleDigestBuf bound once at construction, installed
	// as PHV.DigestFree on every attachment so the ASIC hands the buffer
	// back at the moment it is provably consumed (copied onto the digest
	// channel, or the PHV released unconsumed) — a per-packet method-value
	// allocation would break the zero-alloc digest path.
	recycleFn func([]byte)
}

// newEviction encodes an eviction into a recycled buffer when one is free.
func (r *Receiver) newEviction(queryID int, key []uint64, value uint64) []byte {
	var buf []byte
	if n := len(r.digestFree); n > 0 {
		buf = r.digestFree[n-1][:0]
		r.digestFree[n-1] = nil
		r.digestFree = r.digestFree[:n-1]
	}
	return AppendEviction(buf, queryID, key, value)
}

// recycleDigestBuf returns a consumed message buffer to the freelist.
func (r *Receiver) recycleDigestBuf(b []byte) {
	if b != nil {
		r.digestFree = append(r.digestFree, b)
	}
}

// NewReceiver builds runtime state for every query in the program,
// including the trigger FIFOs for stateless connections.
func NewReceiver(prog *compiler.Program) *Receiver {
	r := &Receiver{prog: prog}
	r.recycleFn = r.recycleDigestBuf
	for _, plan := range prog.Queries {
		st := &QueryState{Plan: plan}
		if plan.Kind == ntapi.KindReduce || plan.Kind == ntapi.KindDistinct {
			st.Table = NewCounterTable(plan)
		}
		if plan.Kind == ntapi.KindDelay {
			st.delayStore = asic.NewRegisterArray("delay-ts", plan.ArraySize)
			st.delayHash = asic.NewHashUnit("delay-key", plan.PolyArray1)
		}
		if plan.TriggerTemplateID != 0 {
			st.TriggerFIFO = stateless.New(
				fmt.Sprintf("trigger-fifo-q%d", plan.ID), plan.RecordFields, 4096)
		}
		r.states = append(r.states, st)
	}
	return r
}

// State returns the runtime state of a query by 1-based ID, or nil.
func (r *Receiver) State(queryID int) *QueryState {
	for _, st := range r.states {
		if st.Plan.ID == queryID {
			return st
		}
	}
	return nil
}

// States returns all query states.
func (r *Receiver) States() []*QueryState { return r.states }

// Observe binds every query's SALU register arrays (counter-table slots,
// delay-timestamp store) to a trace stream, emitting one salu record per
// access.
func (r *Receiver) Observe(clock *netsim.Sim, tr *obs.Trace) {
	for _, st := range r.states {
		if st.Table != nil {
			st.Table.Observe(clock, tr)
		}
		if st.delayStore != nil {
			st.delayStore.Observe(clock, tr)
		}
	}
}

// EnableDigestEvictions switches counter-table eviction reporting onto the
// push-mode digest path (§5.2): evictions become generate_digest messages
// that ride outgoing packets to the switch CPU, which decodes and merges
// them (the facade wires the CPU side to MergeEviction).
func (r *Receiver) EnableDigestEvictions() {
	for _, st := range r.states {
		if st.Table == nil {
			continue
		}
		st := st
		st.cpuEvicted = make(map[string]uint64)
		st.cpuKeys = make(map[string][]uint64)
		st.Table.OnEvict = func(key []uint64, value uint64) {
			st.pendingDigests.push(r.newEviction(st.Plan.ID, key, value))
		}
	}
}

// MergeEviction is the switch-CPU side of push-mode reporting: it folds one
// decoded eviction into the query's CPU aggregate.
func (r *Receiver) MergeEviction(queryID int, key []uint64, value uint64) {
	st := r.State(queryID)
	if st == nil || st.cpuEvicted == nil || st.Table == nil {
		return
	}
	kb := keyString(key)
	st.cpuEvicted[kb] = st.Table.Merge(st.cpuEvicted[kb], value)
	st.cpuKeys[kb] = key
}

// attachDigest hands one pending eviction message to the current packet's
// digest slot (one generate_digest per packet traversal), honouring channel
// backpressure.
func (r *Receiver) attachDigest(p *asic.PHV) {
	if p.DigestData != nil {
		return
	}
	if r.DigestRoom != nil && !r.DigestRoom() {
		return
	}
	for _, st := range r.states {
		if st.pendingDigests.len() > 0 {
			// The buffer comes back through DigestFree when the ASIC has
			// copied it onto the channel (or dropped the PHV unconsumed).
			p.DigestData = st.pendingDigests.pop()
			p.DigestFree = r.recycleFn
			return
		}
	}
}

// TriggerFIFO returns the record FIFO a query feeds, or nil.
func (r *Receiver) TriggerFIFO(queryID int) *stateless.FIFO {
	if st := r.State(queryID); st != nil {
		return st.TriggerFIFO
	}
	return nil
}

// IngressProcessor handles received traffic: every non-template packet runs
// through the ingress-deployed queries; every template packet instead pops
// one KV-FIFO entry per counter table (the recirculated-packet drain of
// Figure 5).
func (r *Receiver) IngressProcessor() asic.Processor {
	return asic.ProcessorFunc(func(p *asic.PHV) {
		if p.Meta.TemplateID != 0 {
			for _, st := range r.states {
				if st.Table != nil {
					st.Table.DrainOne()
				}
			}
			r.attachDigest(p)
			return
		}
		for _, st := range r.states {
			if st.Plan.Egress {
				continue
			}
			if st.Plan.Port >= 0 && st.Plan.Port != p.Meta.InPort {
				continue
			}
			if st.Plan.Kind == ntapi.KindDelay {
				if filtersPass(st, p) {
					st.recordDelay(p)
				}
				continue
			}
			r.process(st, p)
		}
		r.attachDigest(p)
	})
}

// EgressProcessor handles sent traffic: queries bound to a template observe
// its replicas after the editor has rewritten them, and delay queries store
// the sent-side timestamp for each outgoing test packet.
func (r *Receiver) EgressProcessor() asic.Processor {
	return asic.ProcessorFunc(func(p *asic.PHV) {
		if p.Meta.TemplateID == 0 || p.Meta.ReplicaID == 0 {
			return
		}
		for _, st := range r.states {
			if st.Plan.Kind == ntapi.KindDelay {
				if filtersPass(st, p) {
					idx := st.delayIndex(p)
					st.delayStore.Write(idx, uint64(r.nowPs(p)))
				}
				continue
			}
			if !st.Plan.Egress || st.Plan.SentTemplateID != p.Meta.TemplateID {
				continue
			}
			r.process(st, p)
		}
	})
}

// nowPs reads the pipeline timestamp a stage sees for this packet: the
// MAC-assigned ingress timestamp (ns) scaled to the simulation clock. It is
// the SW-timestamp accuracy class of Fig. 18.
func (r *Receiver) nowPs(p *asic.PHV) int64 { return p.Meta.IngressPs }

func filtersPass(st *QueryState, p *asic.PHV) bool {
	for _, f := range st.Plan.Filters {
		if !f.Eval(p) {
			return false
		}
	}
	return true
}

// delayIndex hashes the query's key fields into the timestamp register.
func (st *QueryState) delayIndex(p *asic.PHV) int {
	key := make([]uint64, len(st.Plan.Keys))
	for i, kf := range st.Plan.Keys {
		key[i] = kf.Get(p)
	}
	return st.delayHash.Index(compiler.EncodeKey(key), st.Plan.ArraySize)
}

// recordDelay consumes a stored sent-side timestamp and accumulates the
// delay sample.
func (st *QueryState) recordDelay(p *asic.PHV) {
	idx := st.delayIndex(p)
	sent := st.delayStore.RMW(idx, func(old uint64) (uint64, uint64) { return 0, old })
	if sent == 0 {
		return
	}
	st.Matches++
	d := float64(p.Meta.IngressPs-int64(sent)) / 1e3 // ps -> ns
	if d < 0 {
		return
	}
	st.DelayCount++
	st.DelaySumNs += d
	if st.DelayCount == 1 || d < st.DelayMinNs {
		st.DelayMinNs = d
	}
	if d > st.DelayMaxNs {
		st.DelayMaxNs = d
	}
}

// process runs one packet through one query.
func (r *Receiver) process(st *QueryState, p *asic.PHV) {
	for _, f := range st.Plan.Filters {
		if !f.Eval(p) {
			return
		}
	}
	st.Matches++
	st.MatchedBytes += uint64(p.FrameLen)

	if st.Table != nil {
		key := make([]uint64, len(st.Plan.Keys))
		for i, kf := range st.Plan.Keys {
			key[i] = kf.Get(p)
		}
		delta := uint64(1)
		if st.Plan.ValueField != asic.FieldNone {
			delta = st.Plan.ValueField.Get(p)
		}
		agg := st.Table.Update(key, delta)
		for _, pred := range st.Plan.Post {
			if !pred.Eval(agg) {
				return
			}
		}
	}
	if st.TriggerFIFO != nil {
		rec := make([]uint64, len(st.Plan.RecordFields))
		for i, f := range st.Plan.RecordFields {
			rec[i] = f.Get(p)
		}
		if st.TriggerFIFO.Push(rec) {
			st.RecordsPushed++
		}
	}
}

// Report is the collected outcome of one query.
type Report struct {
	Query   string
	Kind    ntapi.QueryKind
	Matches uint64
	Bytes   uint64
	// Results holds per-key aggregates for reduce, per-key presence for
	// distinct; nil for capture queries.
	Results []Result
	// Distinct is the distinct-key count (distinct queries).
	Distinct int
	// Delay statistics (delay queries), in nanoseconds.
	DelaySamples uint64
	DelayMeanNs  float64
	DelayMinNs   float64
	DelayMaxNs   float64
}

// mergeCPUResults folds the CPU-side eviction aggregates into a collected
// result set.
func mergeCPUResults(st *QueryState, results []Result) []Result {
	byKey := make(map[string]int, len(results))
	for i, r := range results {
		byKey[keyString(r.Key)] = i
	}
	for kb, v := range st.cpuEvicted {
		if i, ok := byKey[kb]; ok {
			results[i].Value = st.Table.Merge(results[i].Value, v)
		} else {
			results = append(results, Result{Key: st.cpuKeys[kb], Value: v})
		}
	}
	return results
}

// Collect assembles reports for every query.
func (r *Receiver) Collect() []Report {
	var out []Report
	for _, st := range r.states {
		rep := Report{
			Query:   st.Plan.Query.Name,
			Kind:    st.Plan.Kind,
			Matches: st.Matches,
			Bytes:   st.MatchedBytes,
		}
		if st.Table != nil {
			rep.Results = st.Table.Collect()
			// At collection time the CPU drains any digests still
			// queued on the data plane, then folds in everything it
			// received over the channel.
			for st.pendingDigests.len() > 0 {
				msg := st.pendingDigests.pop()
				if qid, key, v, err := DecodeEviction(msg); err == nil {
					r.MergeEviction(qid, key, v)
				}
				r.recycleDigestBuf(msg)
			}
			if len(st.cpuEvicted) > 0 {
				rep.Results = mergeCPUResults(st, rep.Results)
			}
			rep.Distinct = len(rep.Results)
		}
		if st.Plan.Kind == ntapi.KindDelay && st.DelayCount > 0 {
			rep.DelaySamples = st.DelayCount
			rep.DelayMeanNs = st.DelaySumNs / float64(st.DelayCount)
			rep.DelayMinNs = st.DelayMinNs
			rep.DelayMaxNs = st.DelayMaxNs
		}
		out = append(out, rep)
	}
	return out
}
