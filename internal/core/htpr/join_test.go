package htpr

import (
	"testing"
	"testing/quick"
)

func rs(pairs ...[2]uint64) []Result {
	out := make([]Result, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, Result{Key: []uint64{p[0]}, Value: p[1]})
	}
	return out
}

func TestJoinInner(t *testing.T) {
	left := rs([2]uint64{1, 10}, [2]uint64{2, 20}, [2]uint64{3, 30})
	right := rs([2]uint64{2, 200}, [2]uint64{3, 300}, [2]uint64{4, 400})
	j := Join(left, right)
	if len(j) != 2 {
		t.Fatalf("joined %d keys, want 2", len(j))
	}
	for _, r := range j {
		if r.Right != r.Left*10 {
			t.Fatalf("join row mismatch: %+v", r)
		}
	}
}

func TestLeftJoinKeepsAll(t *testing.T) {
	left := rs([2]uint64{1, 10}, [2]uint64{2, 20})
	right := rs([2]uint64{2, 200})
	j := LeftJoin(left, right)
	if len(j) != 2 {
		t.Fatalf("left join %d rows", len(j))
	}
	if j[0].Right != 0 || j[1].Right != 200 {
		t.Fatalf("rows: %+v", j)
	}
}

func TestJoinMultiFieldKeys(t *testing.T) {
	left := []Result{{Key: []uint64{1, 2}, Value: 5}}
	right := []Result{{Key: []uint64{1, 2}, Value: 7}, {Key: []uint64{2, 1}, Value: 9}}
	j := Join(left, right)
	if len(j) != 1 || j[0].Right != 7 {
		t.Fatalf("multi-field join: %+v (swapped key must not match)", j)
	}
}

func TestTopK(t *testing.T) {
	in := rs([2]uint64{1, 5}, [2]uint64{2, 50}, [2]uint64{3, 20}, [2]uint64{4, 50})
	top := TopK(in, 3)
	if len(top) != 3 {
		t.Fatalf("topk size %d", len(top))
	}
	if top[0].Value != 50 || top[1].Value != 50 || top[2].Value != 20 {
		t.Fatalf("topk order: %+v", top)
	}
	// Deterministic tie-break: key 2 before key 4.
	if top[0].Key[0] != 2 || top[1].Key[0] != 4 {
		t.Fatalf("tie break: %+v", top)
	}
	// Input untouched, oversized k clamped.
	if in[0].Value != 5 {
		t.Fatal("TopK mutated input")
	}
	if got := TopK(in, 99); len(got) != 4 {
		t.Fatalf("clamped topk: %d", len(got))
	}
}

func TestSumValues(t *testing.T) {
	if SumValues(rs([2]uint64{1, 5}, [2]uint64{2, 7})) != 12 {
		t.Fatal("sum")
	}
	if SumValues(nil) != 0 {
		t.Fatal("empty sum")
	}
}

// Property: Join is symmetric in membership — a key appears in the join
// exactly when it appears on both sides.
func TestJoinMembershipProperty(t *testing.T) {
	f := func(lks, rks []uint8) bool {
		seenL := map[uint8]bool{}
		var left, right []Result
		for _, k := range lks {
			if !seenL[k] {
				seenL[k] = true
				left = append(left, Result{Key: []uint64{uint64(k)}, Value: 1})
			}
		}
		seenR := map[uint8]bool{}
		for _, k := range rks {
			if !seenR[k] {
				seenR[k] = true
				right = append(right, Result{Key: []uint64{uint64(k)}, Value: 1})
			}
		}
		j := Join(left, right)
		both := 0
		for k := range seenL {
			if seenR[k] {
				both++
			}
		}
		return len(j) == both
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
