package stateless

import (
	"testing"
	"testing/quick"

	"github.com/hypertester/hypertester/internal/asic"
)

var layout = []asic.Field{asic.FieldIPv4Src, asic.FieldTCPSeq, asic.FieldInPort}

func TestPushPopOrder(t *testing.T) {
	f := New("t", layout, 8)
	for i := uint64(0); i < 5; i++ {
		if !f.Push([]uint64{i, i * 10, i * 100}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if f.Len() != 5 {
		t.Fatalf("len = %d", f.Len())
	}
	for i := uint64(0); i < 5; i++ {
		v, ok := f.Pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if v[0] != i || v[1] != i*10 || v[2] != i*100 {
			t.Fatalf("pop %d = %v", i, v)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	if f.Len() != 0 {
		t.Fatalf("len after drain = %d", f.Len())
	}
}

func TestOverflowCountedAndDropped(t *testing.T) {
	f := New("t", layout, 2)
	f.Push([]uint64{1, 0, 0})
	f.Push([]uint64{2, 0, 0})
	if f.Push([]uint64{3, 0, 0}) {
		t.Fatal("push to full queue succeeded")
	}
	if f.Overflows != 1 {
		t.Fatalf("overflows = %d", f.Overflows)
	}
	// The queued records are intact.
	v, _ := f.Pop()
	if v[0] != 1 {
		t.Fatalf("head = %v", v)
	}
}

func TestWrapAround(t *testing.T) {
	f := New("t", layout, 4)
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 3; i++ {
			if !f.Push([]uint64{uint64(round)*10 + i, 0, 0}) {
				t.Fatalf("round %d push %d failed", round, i)
			}
		}
		for i := uint64(0); i < 3; i++ {
			v, ok := f.Pop()
			if !ok || v[0] != uint64(round)*10+i {
				t.Fatalf("round %d pop %d = %v ok=%v", round, i, v, ok)
			}
		}
	}
}

func TestPushArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity did not panic")
		}
	}()
	New("t", layout, 4).Push([]uint64{1})
}

func TestFieldIndex(t *testing.T) {
	f := New("t", layout, 4)
	if f.FieldIndex(asic.FieldTCPSeq) != 1 {
		t.Fatal("FieldIndex")
	}
	if f.FieldIndex(asic.FieldTCPAck) != -1 {
		t.Fatal("missing field should be -1")
	}
	if f.Cap() != 4 {
		t.Fatal("Cap")
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order of the
// successfully-pushed elements.
func TestFIFOOrderProperty(t *testing.T) {
	check := func(ops []bool) bool {
		f := New("p", []asic.Field{asic.FieldIPv4Src}, 8)
		var next, expect uint64
		for _, push := range ops {
			if push {
				if f.Push([]uint64{next}) {
					next++
				}
			} else if v, ok := f.Pop(); ok {
				if v[0] != expect {
					return false
				}
				expect++
			}
		}
		// Drain the remainder.
		for {
			v, ok := f.Pop()
			if !ok {
				break
			}
			if v[0] != expect {
				return false
			}
			expect++
		}
		// Every successful push must eventually pop.
		return expect == next
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
