// Package stateless implements the stateless-connection machinery of §5.3:
// the trigger FIFO through which the packet receiver (HTPR) hands trigger
// records to the packet sender (HTPS), built from register arrays with the
// front/rear counter discipline of Figure 7. HyperTester stores no
// per-connection state — response packets are generated purely from the
// record extracted out of the packet that triggered them.
package stateless

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/asic"
)

// FIFO is a register-file FIFO of fixed-width records. Figure 7: a front
// counter and a rear counter (read and update operations), with rear updates
// guarded against underflow by the front value. As in the paper, freedom
// from overflow is NOT guaranteed (§6.1's stated limitation) — overflowing
// pushes are counted and dropped.
type FIFO struct {
	Name string

	// Fields is the record layout: one register array per field.
	Fields []asic.Field

	entries []*asic.RegisterArray
	ptrs    *asic.RegisterArray // [frontIdx]=dequeue counter, [rearIdx]=enqueue counter
	size    int

	// Overflows counts records dropped on a full queue.
	Overflows uint64
	// Pushed and Popped count successful operations.
	Pushed, Popped uint64
}

const (
	frontIdx = 0
	rearIdx  = 1
)

// New builds a FIFO of the given capacity for records with the given field
// layout.
func New(name string, fields []asic.Field, capacity int) *FIFO {
	if capacity <= 0 {
		capacity = 1024
	}
	f := &FIFO{
		Name:   name,
		Fields: append([]asic.Field(nil), fields...),
		ptrs:   asic.NewRegisterArray(name+"/ptrs", 2),
		size:   capacity,
	}
	for _, fld := range f.Fields {
		f.entries = append(f.entries, asic.NewRegisterArray(
			fmt.Sprintf("%s/%s", name, fld.Name()), capacity))
	}
	return f
}

// Cap returns the FIFO capacity in records.
func (f *FIFO) Cap() int { return f.size }

// Len returns the number of queued records.
func (f *FIFO) Len() int {
	return int(f.ptrs.Read(rearIdx) - f.ptrs.Read(frontIdx))
}

// Push enqueues one record (one value per field, in Fields order). It
// reports false — and counts an overflow — when the queue is full.
func (f *FIFO) Push(values []uint64) bool {
	if len(values) != len(f.Fields) {
		panic(fmt.Sprintf("stateless: FIFO %s push with %d values, want %d", f.Name, len(values), len(f.Fields)))
	}
	front := f.ptrs.Read(frontIdx)
	// Rear update guarded by the front value (Figure 7's dependency, here
	// preventing overflow past capacity).
	rear := f.ptrs.RMW(rearIdx, func(old uint64) (uint64, uint64) {
		if old-front >= uint64(f.size) {
			return old, ^uint64(0) // full: leave rear unchanged
		}
		return old + 1, old
	})
	if rear == ^uint64(0) {
		f.Overflows++
		return false
	}
	slot := int(rear % uint64(f.size))
	for i, arr := range f.entries {
		arr.Write(slot, values[i])
	}
	f.Pushed++
	return true
}

// Pop dequeues one record; ok is false when the queue is empty (the front
// update depends on the rear value to prevent underflow).
func (f *FIFO) Pop() (values []uint64, ok bool) {
	rear := f.ptrs.Read(rearIdx)
	front := f.ptrs.RMW(frontIdx, func(old uint64) (uint64, uint64) {
		if old >= rear {
			return old, ^uint64(0) // empty
		}
		return old + 1, old
	})
	if front == ^uint64(0) {
		return nil, false
	}
	slot := int(front % uint64(f.size))
	values = make([]uint64, len(f.entries))
	for i, arr := range f.entries {
		values[i] = arr.Read(slot)
	}
	f.Popped++
	return values, true
}

// FieldIndex returns the record index of a field, or -1.
func (f *FIFO) FieldIndex(fld asic.Field) int {
	for i, x := range f.Fields {
		if x == fld {
			return i
		}
	}
	return -1
}
