package testbed

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

// Capture support: sinks can retain full frames and export them as a
// nanosecond-resolution pcap file readable by tcpdump/Wireshark — the
// capture half of a network tester's job.

// CapturedFrame is one retained frame with its arrival time.
type CapturedFrame struct {
	At   netsim.Time
	Data []byte
}

// EnableCapture makes the sink retain up to max frames (0 = unlimited).
func (s *Sink) EnableCapture(max int) {
	s.captureMax = max
	s.capturing = true
}

// Captured returns the retained frames.
func (s *Sink) Captured() []CapturedFrame { return s.captured }

// pcap constants: nanosecond-resolution classic pcap, LINKTYPE_ETHERNET.
const (
	pcapMagicNs  = 0xa1b23c4d
	pcapVerMajor = 2
	pcapVerMinor = 4
	pcapSnapLen  = 65535
	pcapLinkEth  = 1
)

// WritePcap writes the captured frames as a nanosecond-precision pcap
// stream.
func WritePcap(w io.Writer, frames []CapturedFrame) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicNs)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVerMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVerMinor)
	// thiszone, sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], pcapLinkEth)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("pcap header: %w", err)
	}
	rec := make([]byte, 16)
	for i := range frames {
		f := &frames[i]
		ps := int64(f.At)
		sec := ps / 1e12
		nsec := (ps % 1e12) / 1e3
		binary.LittleEndian.PutUint32(rec[0:4], uint32(sec))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(nsec))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(f.Data)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(f.Data)))
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("pcap record %d: %w", i, err)
		}
		if _, err := w.Write(f.Data); err != nil {
			return fmt.Errorf("pcap record %d data: %w", i, err)
		}
	}
	return nil
}

// WritePcap exports the sink's captured frames.
func (s *Sink) WritePcap(w io.Writer) error { return WritePcap(w, s.captured) }

// ReadPcap parses a pcap stream written by WritePcap (round-trip testing
// and trace inspection).
func ReadPcap(r io.Reader) ([]CapturedFrame, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("pcap header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	if magic != pcapMagicNs {
		return nil, fmt.Errorf("pcap magic %#x unsupported (want ns-resolution %#x)", magic, uint32(pcapMagicNs))
	}
	var out []CapturedFrame
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("pcap record header: %w", err)
		}
		sec := int64(binary.LittleEndian.Uint32(rec[0:4]))
		nsec := int64(binary.LittleEndian.Uint32(rec[4:8]))
		n := binary.LittleEndian.Uint32(rec[8:12])
		if n > pcapSnapLen {
			return nil, fmt.Errorf("pcap record too large: %d", n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("pcap record data: %w", err)
		}
		out = append(out, CapturedFrame{
			At:   netsim.Time(sec*1e12 + nsec*1e3),
			Data: data,
		})
	}
}

// captureFrame is called from the sink's receive path.
func (s *Sink) captureFrame(pkt *netproto.Packet, at netsim.Time) {
	if !s.capturing {
		return
	}
	if s.captureMax > 0 && len(s.captured) >= s.captureMax {
		return
	}
	data := make([]byte, len(pkt.Data))
	copy(data, pkt.Data)
	s.captured = append(s.captured, CapturedFrame{At: at, Data: data})
}
