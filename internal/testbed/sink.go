package testbed

import (
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

// Sink is a measurement endpoint: it counts frames and bytes, optionally
// records arrival timestamps, and can invoke a hook per frame. It stands in
// for the receiving side of throughput and rate-control experiments.
type Sink struct {
	Iface *Iface

	Packets uint64
	Bytes   uint64
	First   netsim.Time
	Last    netsim.Time

	firstBytes uint64

	// RecordTimestamps, when set before traffic starts, appends each
	// arrival to Timestamps (ns, float64) for error metrics.
	RecordTimestamps bool
	Timestamps       []float64

	// MaxRecorded bounds timestamp recording (0 = unlimited).
	MaxRecorded int

	// OnPacket, when set, runs for each arriving frame.
	OnPacket func(pkt *netproto.Packet, at netsim.Time)

	// Capture state (see EnableCapture / WritePcap).
	capturing  bool
	captureMax int
	captured   []CapturedFrame

	sim *netsim.Sim
}

// NewSink builds a sink behind a fresh interface of the given rate.
func NewSink(sim *netsim.Sim, name string, gbps float64) *Sink {
	s := &Sink{Iface: NewIface(sim, name, gbps), sim: sim}
	s.Iface.OnReceive(s.receive)
	return s
}

func (s *Sink) receive(pkt *netproto.Packet) {
	now := s.sim.Now()
	if s.Packets == 0 {
		s.First = now
		s.firstBytes = uint64(pkt.Len())
	}
	s.Last = now
	s.Packets++
	s.Bytes += uint64(pkt.Len())
	if s.RecordTimestamps && (s.MaxRecorded == 0 || len(s.Timestamps) < s.MaxRecorded) {
		s.Timestamps = append(s.Timestamps, now.Nanoseconds())
	}
	s.captureFrame(pkt, now)
	if s.OnPacket != nil {
		// The hook may retain the packet, so ownership passes to it and
		// the pool is bypassed.
		s.OnPacket(pkt, now)
		return
	}
	if s.capturing {
		return // captured frames keep the packet's bytes alive
	}
	// A plain counting sink is the end of the frame's life: recycle it so
	// line-rate throughput runs recirculate buffers instead of growing the
	// heap.
	pkt.Release()
}

// ThroughputGbps returns the goodput plus wire overhead over the window the
// sink observed traffic, in Gbps — the way testers report port throughput.
func (s *Sink) ThroughputGbps() float64 {
	if s.Packets < 2 {
		return 0
	}
	span := s.Last.Sub(s.First).Nanoseconds()
	if span <= 0 {
		return 0
	}
	// The window [First,Last] spans Packets-1 inter-arrival gaps, so the
	// first frame's bits are excluded to avoid overestimating rate.
	bits := float64(s.Bytes-s.firstBytes+uint64(s.Packets-1)*netproto.WireOverheadBytes) * 8
	return bits / span
}

// RatePps returns observed packets per second over the measurement window.
func (s *Sink) RatePps() float64 {
	if s.Packets < 2 {
		return 0
	}
	span := s.Last.Sub(s.First).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(s.Packets-1) / span
}

// Reset clears counters and recordings (for measuring in phases).
func (s *Sink) Reset() {
	s.Packets, s.Bytes, s.firstBytes = 0, 0, 0
	s.First, s.Last = 0, 0
	s.Timestamps = s.Timestamps[:0]
	s.captured = s.captured[:0]
}
