package testbed

import (
	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/netsim"
)

// PaperTestbed assembles the evaluation topology of the paper's Fig. 8: a
// tester switch wired to a second programmable switch (the device under
// test) over 100 Gbps cables, and two commodity servers hanging off the DUT
// on 40 and 10 Gbps links. The tester switch itself is created by the
// caller (usually via the hypertester facade) so a task can be loaded on
// it; this builder wires everything else.
type PaperTestbed struct {
	// DUT is the second Tofino-class switch, forwarding tester ports
	// through to the servers and looping the rest back.
	DUT *asic.Switch

	// Server1 (40G) and Server2 (10G) stand in for the two commodity
	// servers; they terminate traffic and measure it.
	Server1 *Sink
	Server2 *Sink

	// Loop counts frames the DUT sent back towards the tester.
	Loop *Sink
}

// DUT port map for the Fig. 8 wiring.
const (
	dutFromTester0 = 0 // 100G from tester port 0
	dutFromTester1 = 1 // 100G from tester port 1
	dutToServer1   = 2 // 40G to server 1
	dutToServer2   = 3 // 10G to server 2
)

// NewPaperTestbed wires the Fig. 8 topology around a tester switch's ports
// 0 and 1: tester:0 → DUT → server1 (40G), tester:1 → DUT → server2 (10G).
func NewPaperTestbed(sim *netsim.Sim, tester *asic.Switch, seed int64) *PaperTestbed {
	tb := &PaperTestbed{}
	tb.DUT = NewForwardingDUT(sim, "dut", []float64{100, 100, 40, 10},
		map[int]int{
			dutFromTester0: dutToServer1,
			dutFromTester1: dutToServer2,
		}, seed)
	tb.Server1 = NewSink(sim, "server1", 40)
	tb.Server2 = NewSink(sim, "server2", 10)

	Connect(sim, tester.Port(0), tb.DUT.Port(dutFromTester0), DefaultCableDelay)
	Connect(sim, tester.Port(1), tb.DUT.Port(dutFromTester1), DefaultCableDelay)
	Connect(sim, tb.DUT.Port(dutToServer1), tb.Server1.Iface, DefaultCableDelay)
	Connect(sim, tb.DUT.Port(dutToServer2), tb.Server2.Iface, DefaultCableDelay)
	return tb
}
