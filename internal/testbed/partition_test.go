package testbed

import (
	"reflect"
	"testing"

	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

// The partition differential tests build the same topology twice — once on
// the sequential reference engine (workers=1) and once on the parallel
// engine — run the identical traffic script, and require every observable
// (counters, first/last arrival, per-packet timestamps, device state) to be
// bit-identical. They are the testbed-level counterpart of the netsim engine
// differential tests, exercising the calibrated lookahead derivation and the
// deferred switch-port ingress path over real devices.

var partitionWorkers = []int{2, 4, 8}

// buildTCPFrame builds a parseable TCP frame for scripted test traffic.
func buildTCPFrame(t *testing.T, srcPort, dstPort uint16, flags uint8, seq uint32, payload []byte, frameLen int) []byte {
	t.Helper()
	raw, err := netproto.BuildTCP(netproto.TCPSpec{
		SrcMAC: netproto.MAC{2, 0, 0, 0, 0, 1}, DstMAC: netproto.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: netproto.IPv4Addr(0x0a000001), DstIP: netproto.IPv4Addr(0x0a000002),
		SrcPort: srcPort, DstPort: dstPort,
		Seq: seq, Flags: flags, TTL: 64,
		Payload: payload, FrameLen: frameLen,
	})
	if err != nil {
		t.Fatalf("BuildTCP: %v", err)
	}
	return raw
}

// chainSnapshot captures every observable of the src -> DUT -> sink chain.
type chainSnapshot struct {
	SrcTxPackets, SrcTxBytes   uint64
	P0Rx, P0RxBytes            uint64
	P1Tx, P1TxBytes            uint64
	SinkPackets, SinkBytes     uint64
	SinkRxPackets, SinkRxBytes uint64
	First, Last                netsim.Time
	Timestamps                 []float64
}

// runChain drives a three-LP chain: a software source interface cabled into
// port 0 of a forwarding switch whose port 1 feeds a timestamp-recording
// sink. It exercises both cross-LP directions a switch port participates in
// (iface->port deferred ingress, port->iface delivery).
func runChain(t *testing.T, workers int) chainSnapshot {
	t.Helper()
	p := NewPartition(workers)
	src := NewIface(p.LP("src"), "src", 40)
	dut := NewForwardingDUT(p.LP("dut"), "dut", []float64{40, 40}, map[int]int{0: 1}, 7)
	sink := NewSink(p.LP("sink"), "sink", 40)
	sink.RecordTimestamps = true
	p.Connect(src, dut.Port(0), DefaultCableDelay)
	p.Connect(dut.Port(1), sink.Iface, DefaultCableDelay)

	// Scripted traffic: bursts of back-to-back frames with varied lengths
	// and spacing, so serialization queueing and due-time ties are common.
	rng := netsim.NewRNG(42, "partition-chain")
	at := netsim.Time(0).Add(10 * netsim.Microsecond)
	srcSim := src.Sim()
	for i := 0; i < 400; i++ {
		frameLen := 64 + int(rng.Uint64()%9)*64
		raw := buildTCPFrame(t, uint16(40000+i%16), 80, netproto.TCPSyn, uint32(i), nil, frameLen)
		srcSim.At(at, func() { src.Send(&netproto.Packet{Data: raw}) })
		if i%8 != 7 {
			at = at.Add(netsim.Duration(rng.Int63n(int64(200 * netsim.Nanosecond))))
		} else {
			at = at.Add(netsim.Duration(rng.Int63n(int64(3 * netsim.Microsecond))))
		}
	}
	// Idle tail so deferred port-ingress RX credits (see
	// asic.Port.DeliverDeferred) land before the deadline in both modes.
	p.RunUntil(at.Add(time1ms))

	return chainSnapshot{
		SrcTxPackets: src.TxPackets, SrcTxBytes: src.TxBytes,
		P0Rx: dut.Port(0).RxPackets, P0RxBytes: dut.Port(0).RxBytes,
		P1Tx: dut.Port(1).TxPackets, P1TxBytes: dut.Port(1).TxBytes,
		SinkPackets: sink.Packets, SinkBytes: sink.Bytes,
		SinkRxPackets: sink.Iface.RxPackets, SinkRxBytes: sink.Iface.RxBytes,
		First: sink.First, Last: sink.Last,
		Timestamps: sink.Timestamps,
	}
}

const time1ms = netsim.Millisecond

func TestPartitionChainMatchesSequential(t *testing.T) {
	want := runChain(t, 1)
	if want.SinkPackets == 0 || len(want.Timestamps) == 0 {
		t.Fatalf("sequential chain saw no traffic: %+v", want)
	}
	if want.SinkPackets != want.SrcTxPackets || want.P0Rx != want.SrcTxPackets {
		t.Fatalf("sequential chain lost frames: %+v", want)
	}
	for _, w := range partitionWorkers {
		got := runChain(t, w)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d diverged from sequential:\n got %+v\nwant %+v", w, got, want)
		}
	}
}

// pingPongSnapshot captures the observables of a reflector loop.
type pingPongSnapshot struct {
	AReflected, BReflected uint64
	ATx, ARx, BTx, BRx     uint64
	ATxB, ARxB, BTxB, BRxB uint64
}

// runPingPong bounces seed frames between two reflectors on separate LPs —
// a feedback topology where every event on one LP causes the next event on
// the other, the worst case for conservative synchronization. The jittery
// side draws from its RNG per bounce, so any reordering of receives changes
// every subsequent timestamp and the final bounce counts.
func runPingPong(t *testing.T, workers int) pingPongSnapshot {
	t.Helper()
	p := NewPartition(workers)
	ra := NewReflector(p.LP("a"), "ra", 10)
	rb := NewReflector(p.LP("b"), "rb", 25)
	rb.ExtraDelay = 300 * netsim.Nanosecond
	rb.ExtraJitter = 2 * netsim.Microsecond
	p.Connect(ra.Iface, rb.Iface, 100*netsim.Nanosecond)

	aSim := ra.Iface.Sim()
	for i := 0; i < 3; i++ {
		raw := buildTCPFrame(t, uint16(50000+i), 443, netproto.TCPAck, 1, nil, 64+i*128)
		aSim.At(netsim.Time(0).Add(netsim.Duration(1+i)*netsim.Microsecond),
			func() { ra.Iface.Send(&netproto.Packet{Data: raw}) })
	}
	p.RunUntil(netsim.Time(0).Add(3 * netsim.Millisecond))

	return pingPongSnapshot{
		AReflected: ra.Reflected, BReflected: rb.Reflected,
		ATx: ra.Iface.TxPackets, ARx: ra.Iface.RxPackets,
		BTx: rb.Iface.TxPackets, BRx: rb.Iface.RxPackets,
		ATxB: ra.Iface.TxBytes, ARxB: ra.Iface.RxBytes,
		BTxB: rb.Iface.TxBytes, BRxB: rb.Iface.RxBytes,
	}
}

func TestPartitionPingPongMatchesSequential(t *testing.T) {
	want := runPingPong(t, 1)
	if want.AReflected < 100 {
		t.Fatalf("sequential ping-pong barely bounced: %+v", want)
	}
	for _, w := range partitionWorkers {
		got := runPingPong(t, w)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d diverged from sequential:\n got %+v\nwant %+v", w, got, want)
		}
	}
}

// farmSnapshot captures client- and server-side observables of scripted
// HTTP exchanges.
type farmSnapshot struct {
	SynReceived, Handshakes, Requests uint64
	DataSent, FinReceived, Closed     uint64
	Unexpected                        uint64
	OpenConns                         int
	ClientRx, ClientRxBytes           uint64
	ClientTimes                       []int64
}

// runFarm scripts a batch of overlapping HTTP exchanges (SYN, request, FIN
// per flow) from a client interface against a stateful server farm on its
// own LP. The farm's per-connection state and reply scheduling make its
// observables sensitive to receive order.
func runFarm(t *testing.T, workers int) farmSnapshot {
	t.Helper()
	p := NewPartition(workers)
	client := NewIface(p.LP("client"), "client", 10)
	farm := NewHTTPServerFarm(p.LP("farm"), "farm", 10)
	p.Connect(client, farm.Iface, DefaultCableDelay)

	var snap farmSnapshot
	client.OnReceive(func(pkt *netproto.Packet) {
		snap.ClientRx++
		snap.ClientRxBytes += uint64(pkt.Len())
		snap.ClientTimes = append(snap.ClientTimes, pkt.Meta.IngressPs)
		pkt.Release()
	})

	clientSim := client.Sim()
	base := netsim.Time(0).Add(5 * netsim.Microsecond)
	for i := 0; i < 12; i++ {
		port := uint16(40000 + i)
		start := base.Add(netsim.Duration(i) * 7 * netsim.Microsecond)
		syn := buildTCPFrame(t, port, 80, netproto.TCPSyn, 100, nil, 64)
		req := buildTCPFrame(t, port, 80, netproto.TCPPsh|netproto.TCPAck, 101,
			[]byte("GET / HTTP/1.1"), 0)
		fin := buildTCPFrame(t, port, 80, netproto.TCPFin|netproto.TCPAck, 115, nil, 64)
		clientSim.At(start, func() { client.Send(&netproto.Packet{Data: syn}) })
		clientSim.At(start.Add(30*netsim.Microsecond),
			func() { client.Send(&netproto.Packet{Data: req}) })
		clientSim.At(start.Add(400*netsim.Microsecond),
			func() { client.Send(&netproto.Packet{Data: fin}) })
	}
	p.RunUntil(base.Add(2 * netsim.Millisecond))

	snap.SynReceived, snap.Handshakes, snap.Requests = farm.SynReceived, farm.Handshakes, farm.Requests
	snap.DataSent, snap.FinReceived, snap.Closed = farm.DataSent, farm.FinReceived, farm.Closed
	snap.Unexpected = farm.UnexpectedPkts
	snap.OpenConns = farm.OpenConnections()
	return snap
}

func TestPartitionHTTPFarmMatchesSequential(t *testing.T) {
	want := runFarm(t, 1)
	if want.Requests != 12 || want.Closed != 12 {
		t.Fatalf("sequential farm script incomplete: %+v", want)
	}
	for _, w := range partitionWorkers {
		got := runFarm(t, w)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d diverged from sequential:\n got %+v\nwant %+v", w, got, want)
		}
	}
}

// TestPartitionSequentialSharesOneSim pins the degenerate mapping: with one
// worker every LP is the same Sim and Connect falls back to the legacy
// single-clock cable.
func TestPartitionSequentialSharesOneSim(t *testing.T) {
	p := NewPartition(1)
	if p.Parallel() {
		t.Fatal("NewPartition(1).Parallel() = true, want false")
	}
	if p.LP("a") != p.LP("b") {
		t.Fatal("sequential partition returned distinct Sims per LP")
	}
	pp := NewPartition(4)
	if !pp.Parallel() {
		t.Fatal("NewPartition(4).Parallel() = false, want true")
	}
	if pp.LP("a") == pp.LP("b") {
		t.Fatal("parallel partition shared one Sim across LPs")
	}
}

// TestPartitionRunForComposes checks that chunked RunFor calls on a
// partitioned topology agree with one shot — experiments that sample
// mid-window (Fig. 13's field collection) advance the clock in steps.
func TestPartitionRunForComposes(t *testing.T) {
	run := func(steps int) pingPongSnapshot {
		p := NewPartition(4)
		ra := NewReflector(p.LP("a"), "ra", 10)
		rb := NewReflector(p.LP("b"), "rb", 10)
		rb.ExtraJitter = time1ms / 500
		p.Connect(ra.Iface, rb.Iface, 50*netsim.Nanosecond)
		raw := buildTCPFrame(t, 50000, 443, netproto.TCPAck, 1, nil, 64)
		ra.Iface.Sim().At(netsim.Time(0).Add(netsim.Microsecond),
			func() { ra.Iface.Send(&netproto.Packet{Data: raw}) })
		total := 2 * netsim.Millisecond
		for i := 0; i < steps; i++ {
			p.RunFor(total / netsim.Duration(steps))
		}
		return pingPongSnapshot{
			AReflected: ra.Reflected, BReflected: rb.Reflected,
			ATx: ra.Iface.TxPackets, ARx: ra.Iface.RxPackets,
			BTx: rb.Iface.TxPackets, BRx: rb.Iface.RxPackets,
		}
	}
	want := run(1)
	if want.AReflected == 0 {
		t.Fatal("ping-pong never bounced")
	}
	for _, steps := range []int{2, 5} {
		if got := run(steps); !reflect.DeepEqual(got, want) {
			t.Errorf("steps=%d: got %+v, want %+v", steps, got, want)
		}
	}
}

// TestPartitionBoundaryRxCredit pins port RX-counter bit-identity at RunUntil
// boundaries that land between a frame's wire arrival and its deferred
// pipeline entry on a partitioned link (the engine's boundary flush of the
// PostRemotePre credit), and that deliveries spanning a boundary survive into
// the next run — the cross-run composition the experiment driver's
// warmup+window pattern exercises.
func TestPartitionBoundaryRxCredit(t *testing.T) {
	type edgeSnap struct {
		EdgeRx, EdgeRxBytes uint64 // port 0 RX sampled at the boundary
		FinalRx, SinkPkts   uint64 // totals after the drained second run
	}
	sample := func(workers int, deadline netsim.Time) edgeSnap {
		p := NewPartition(workers)
		src := NewIface(p.LP("src"), "src", 40)
		dut := NewForwardingDUT(p.LP("dut"), "dut", []float64{40, 40}, map[int]int{0: 1}, 7)
		sink := NewSink(p.LP("sink"), "sink", 40)
		p.Connect(src, dut.Port(0), DefaultCableDelay)
		p.Connect(dut.Port(1), sink.Iface, DefaultCableDelay)
		raw := buildTCPFrame(t, 40000, 80, netproto.TCPSyn, 1, nil, 64)
		src.Sim().At(netsim.Time(0).Add(10*netsim.Microsecond),
			func() { src.Send(&netproto.Packet{Data: raw}) })
		p.RunUntil(deadline)
		s := edgeSnap{EdgeRx: dut.Port(0).RxPackets, EdgeRxBytes: dut.Port(0).RxBytes}
		p.RunUntil(deadline.Add(netsim.Millisecond))
		s.FinalRx, s.SinkPkts = dut.Port(0).RxPackets, sink.Packets
		return s
	}
	// Sweep boundaries across the frame's arrival + MAC/ingress-latency
	// window (sent at 10us, ~17ns serialization + 5ns cable, then the fixed
	// ingress latency): several edges fall strictly inside the deferred
	// window, where the sequential engine has already credited RX.
	sawCredit := false
	for off := netsim.Duration(0); off <= 800*netsim.Nanosecond; off += 25 * netsim.Nanosecond {
		deadline := netsim.Time(0).Add(10 * netsim.Microsecond).Add(off)
		want := sample(1, deadline)
		sawCredit = sawCredit || want.EdgeRx > 0
		if want.SinkPkts != 1 {
			t.Fatalf("off=%v: sequential run lost the frame: %+v", off, want)
		}
		for _, w := range partitionWorkers {
			if got := sample(w, deadline); got != want {
				t.Errorf("off=%v workers=%d: got %+v, want %+v", off, w, got, want)
			}
		}
	}
	if !sawCredit {
		t.Fatal("sweep never crossed the frame's arrival; widen the offsets")
	}
}

// TestPartitionMixedLocalRemote pins that a partition can mix same-LP legacy
// cables with cross-LP channels: two sinks, one co-located with the source's
// LP, one remote, both fed by a forwarding switch.
func TestPartitionMixedLocalRemote(t *testing.T) {
	run := func(workers int) [2]uint64 {
		p := NewPartition(workers)
		genSim := p.LP("gen")
		src := NewIface(genSim, "src", 40)
		dut := NewForwardingDUT(genSim, "dut", []float64{40, 40, 40}, map[int]int{0: 1, 2: 1}, 7)
		// Remote sink hangs off the DUT via a cross-LP (or, sequentially,
		// same-Sim) cable; the local loop stays on the generator LP.
		sink := NewSink(p.LP("sink"), "sink", 40)
		p.Connect(src, dut.Port(0), DefaultCableDelay)
		p.Connect(dut.Port(1), sink.Iface, DefaultCableDelay)
		for i := 0; i < 50; i++ {
			raw := buildTCPFrame(t, uint16(41000+i), 80, netproto.TCPSyn, uint32(i), nil, 128)
			genSim.At(netsim.Time(0).Add(netsim.Duration(i)*netsim.Microsecond),
				func() { src.Send(&netproto.Packet{Data: raw}) })
		}
		p.RunUntil(netsim.Time(0).Add(time1ms))
		return [2]uint64{sink.Packets, sink.Bytes}
	}
	want := run(1)
	if want[0] != 50 {
		t.Fatalf("sequential mixed topology delivered %d packets, want 50", want[0])
	}
	for _, w := range partitionWorkers {
		if got := run(w); got != want {
			t.Errorf("workers=%d: got %v, want %v", w, got, want)
		}
	}
}

// TestPartitionUnknownAttachPanics pins the endpoint() contract.
func TestPartitionUnknownAttachPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Connect with unknown attachment type did not panic")
		}
	}()
	p := NewPartition(2)
	s := NewSink(p.LP("s"), "s", 10)
	p.Connect(badAttach{}, s.Iface, 0)
}

type badAttach struct{}

func (badAttach) SetPeer(func(*netproto.Packet, netsim.Time)) {}
func (badAttach) Deliver(*netproto.Packet)                    {}
