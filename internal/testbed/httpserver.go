package testbed

import (
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

// HTTPServerFarm emulates the server side of the paper's web-testing task
// (§5.4): it terminates TCP handshakes, serves an HTTP response as a fixed
// number of data packets, and closes connections. Unlike HyperTester's
// stateless client side, a server farm legitimately keeps per-connection
// state — it is the device under test.
type HTTPServerFarm struct {
	Iface *Iface

	// ResponsePackets is how many data packets one request produces
	// (the paper's example assumes a page loads in 5 packets).
	ResponsePackets int
	// ResponseSegment is the payload bytes per data packet.
	ResponseSegment int
	// ServiceDelay models server think time per event.
	ServiceDelay netsim.Duration

	// Statistics.
	SynReceived    uint64
	Handshakes     uint64
	Requests       uint64
	DataSent       uint64
	FinReceived    uint64
	Closed         uint64
	UnexpectedPkts uint64

	sim   *netsim.Sim
	conns map[netproto.FlowKey]*serverConn
	stack netproto.Stack
}

type serverConn struct {
	established bool
	srvSeq      uint32 // next server sequence number
}

// NewHTTPServerFarm builds a farm behind one interface.
func NewHTTPServerFarm(sim *netsim.Sim, name string, gbps float64) *HTTPServerFarm {
	f := &HTTPServerFarm{
		Iface:           NewIface(sim, name, gbps),
		ResponsePackets: 5,
		ResponseSegment: 1000,
		ServiceDelay:    2 * netsim.Microsecond,
		sim:             sim,
		conns:           make(map[netproto.FlowKey]*serverConn),
	}
	f.Iface.OnReceive(f.receive)
	return f
}

// OpenConnections reports connections currently tracked.
func (f *HTTPServerFarm) OpenConnections() int { return len(f.conns) }

func (f *HTTPServerFarm) receive(pkt *netproto.Packet) {
	if err := f.stack.Decode(pkt.Data); err != nil || !f.stack.Has(netproto.LayerTCP) {
		f.UnexpectedPkts++
		return
	}
	key, _ := netproto.FlowFromStack(&f.stack)
	tcp := f.stack.TCP
	ip := f.stack.IP4
	eth := f.stack.Eth
	payloadLen := len(f.stack.Payload)

	reply := func(flags uint8, seq, ack uint32, payload []byte) {
		raw, err := netproto.BuildTCP(netproto.TCPSpec{
			SrcMAC: eth.Dst, DstMAC: eth.Src,
			SrcIP: ip.Dst, DstIP: ip.Src,
			SrcPort: tcp.DstPort, DstPort: tcp.SrcPort,
			Seq: seq, Ack: ack, Flags: flags,
			Payload: payload, FrameLen: 64,
		})
		if err != nil {
			return
		}
		f.Iface.Send(&netproto.Packet{Data: raw})
	}

	switch {
	case tcp.Flags&netproto.TCPSyn != 0 && tcp.Flags&netproto.TCPAck == 0:
		f.SynReceived++
		// Deterministic ISN derived from the flow, so retransmitted SYNs
		// get consistent answers.
		isn := uint32(key.SrcIP) ^ uint32(key.DstIP)<<16 ^ uint32(key.SrcPort)
		f.conns[key] = &serverConn{srvSeq: isn + 1}
		f.sim.After(f.ServiceDelay, func() {
			reply(netproto.TCPSyn|netproto.TCPAck, isn, tcp.Seq+1, nil)
		})

	case tcp.Flags&netproto.TCPFin != 0:
		f.FinReceived++
		if _, ok := f.conns[key]; ok {
			delete(f.conns, key)
			f.Closed++
		}
		f.sim.After(f.ServiceDelay, func() {
			reply(netproto.TCPFin|netproto.TCPAck, tcp.Ack, tcp.Seq+1, nil)
		})

	case payloadLen > 0 && tcp.Flags&netproto.TCPPsh != 0:
		// HTTP request: serve the page as ResponsePackets data packets.
		conn, ok := f.conns[key]
		if !ok {
			f.UnexpectedPkts++
			return
		}
		if !conn.established {
			conn.established = true
			f.Handshakes++
		}
		f.Requests++
		clientNext := tcp.Seq + uint32(payloadLen)
		for i := 0; i < f.ResponsePackets; i++ {
			i := i
			seq := conn.srvSeq
			conn.srvSeq += uint32(f.ResponseSegment)
			f.sim.After(f.ServiceDelay+netsim.Duration(i)*netsim.Microsecond, func() {
				f.DataSent++
				body := make([]byte, f.ResponseSegment)
				raw, err := netproto.BuildTCP(netproto.TCPSpec{
					SrcMAC: eth.Dst, DstMAC: eth.Src,
					SrcIP: ip.Dst, DstIP: ip.Src,
					SrcPort: tcp.DstPort, DstPort: tcp.SrcPort,
					Seq: seq, Ack: clientNext,
					Flags:   netproto.TCPPsh | netproto.TCPAck,
					Payload: body,
				})
				if err != nil {
					return
				}
				f.Iface.Send(&netproto.Packet{Data: raw})
			})
		}

	case tcp.Flags&netproto.TCPAck != 0:
		// Bare ACK: completes a handshake or acknowledges data.
		if conn, ok := f.conns[key]; ok && !conn.established {
			conn.established = true
			f.Handshakes++
		}

	default:
		f.UnexpectedPkts++
	}
}
