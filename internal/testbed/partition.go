package testbed

import (
	"fmt"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

// Partition maps a testbed topology onto the parallel engine's logical
// processes: one LP per device (switch ASIC + its CPU, server, sink, software
// generator), with every cable between devices on different LPs becoming a
// cross-LP channel whose lookahead is derived from calibrated link physics:
//
//	lookahead = wire time of a minimum-size frame at the source rate
//	          + cable propagation delay
//	          + MAC/ingress-pipeline latency (switch-port destinations only)
//
// With workers <= 1 the partition degenerates to a single shared sequential
// Sim — the default engine, and the reference the differential determinism
// tests compare against.
type Partition struct {
	eng    *netsim.Engine
	shared *netsim.Sim
}

// NewPartition builds a partition whose LPs run on up to workers goroutines.
func NewPartition(workers int) *Partition {
	if workers <= 1 {
		return &Partition{shared: netsim.New()}
	}
	return &Partition{eng: netsim.NewEngine(workers)}
}

// Parallel reports whether the partition runs on the parallel engine.
func (p *Partition) Parallel() bool { return p.eng != nil }

// Engine returns the underlying parallel engine, or nil in sequential mode.
// Observability code uses it to register per-LP metrics (obs.DescribeEngine).
func (p *Partition) Engine() *netsim.Engine { return p.eng }

// LP returns the simulator for one logical process (device). In sequential
// mode every device shares one Sim.
func (p *Partition) LP(name string) *netsim.Sim {
	if p.eng == nil {
		return p.shared
	}
	return p.eng.NewLP(name)
}

// Now returns the partition's virtual clock.
func (p *Partition) Now() netsim.Time {
	if p.eng == nil {
		return p.shared.Now()
	}
	return p.eng.Now()
}

// RunUntil executes all events with timestamps <= deadline on every LP.
func (p *Partition) RunUntil(deadline netsim.Time) {
	if p.eng == nil {
		p.shared.RunUntil(deadline)
		return
	}
	p.eng.RunUntil(deadline)
}

// RunFor advances the partition clock by d.
func (p *Partition) RunFor(d netsim.Duration) { p.RunUntil(p.Now().Add(d)) }

// endpoint resolves an attachment point's simulator, line rate, and switch
// port (nil for device interfaces).
func endpoint(a Attach) (*netsim.Sim, float64, *asic.Port) {
	switch x := a.(type) {
	case *Iface:
		return x.Sim(), x.Gbps, nil
	case *asic.Port:
		return x.Sim(), x.Gbps, x
	}
	panic(fmt.Sprintf("testbed: cannot partition attachment type %T", a))
}

// minFrameLen is the smallest Ethernet frame the testbed generates; its wire
// time bounds from below how far ahead of its clock a source can hand a
// frame to the cable, so it is the serialization share of the lookahead.
const minFrameLen = 64

// Connect joins two attachment points with a full-duplex cable of the given
// propagation delay, splitting the cable into a pair of cross-LP channels
// when its endpoints live on different LPs.
func (p *Partition) Connect(a, b Attach, propagation netsim.Duration) {
	sa, _, _ := endpoint(a)
	sb, _, _ := endpoint(b)
	if p.eng == nil || sa == sb {
		Connect(sa, a, b, propagation)
		return
	}
	p.wire(a, b, propagation)
	p.wire(b, a, propagation)
}

// wire installs the src -> dst half of a partitioned cable: registers the
// engine channel with its calibrated lookahead and diverts src transmissions
// into cross-LP messages.
//
// Message timing preserves the sequential engine's schedule exactly. For an
// interface destination the delivery event runs at the wire-arrival time and
// carries schedAt = serialization end — the (at, schedAt) the sequential
// cable hop has. For a switch-port destination the arrival-time delivery
// only *schedules* pipeline entry after the MAC/ingress latency, so the
// message instead targets that deferred instant directly (at = arrival +
// ingress latency, schedAt = arrival), buying the channel an extra
// DeliverLookahead of lookahead. The sequential engine credits the port's
// RX counters at the arrival instant, inside that window — the message
// carries the credit as a boundary side effect (PostRemotePre with preAt =
// arrival, flushed if a RunUntil deadline lands between arrival and
// pipeline entry) so counters sampled at any boundary stay bit-identical.
func (p *Partition) wire(src, dst Attach, propagation netsim.Duration) {
	ss, srcGbps, _ := endpoint(src)
	ds, _, dstPort := endpoint(dst)
	la := netsim.Ns(netproto.WireTimeNs(minFrameLen, srcGbps)) + propagation
	var ingressLA netsim.Duration
	if dstPort != nil {
		ingressLA = dstPort.DeliverLookahead()
		la += ingressLA
	}
	p.eng.Channel(ss, ds, la)
	send := func(pkt *netproto.Packet, end netsim.Time) {
		arrival := end.Add(propagation)
		j := linkJobPool.Get().(*linkJob)
		j.pkt = pkt
		if dstPort != nil {
			j.port, j.arrival, j.n = dstPort, arrival, pkt.Len()
			ss.PostRemotePre(ds, arrival.Add(ingressLA), arrival, arrival,
				runRemoteRxCredit, runRemoteArrival, j)
		} else {
			j.dst = dst
			ss.PostRemote(ds, arrival, end, runRemoteArrival, j)
		}
	}
	switch x := src.(type) {
	case *Iface:
		x.SetRemote(send)
	case *asic.Port:
		x.SetRemote(send)
	}
}
