package testbed

import (
	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

// Reflector bounces every frame back with L2/L3/L4 endpoints swapped, the
// classic loop target for delay measurement.
type Reflector struct {
	Iface     *Iface
	Reflected uint64

	// ExtraDelay adds device processing time before the bounce;
	// ExtraJitter adds a uniform random spread on top (a jittery DUT for
	// delay-variance experiments).
	ExtraDelay  netsim.Duration
	ExtraJitter netsim.Duration

	sim   *netsim.Sim
	rng   *netsim.RNG
	stack netproto.Stack
}

// NewReflector builds a reflector behind one interface.
func NewReflector(sim *netsim.Sim, name string, gbps float64) *Reflector {
	r := &Reflector{Iface: NewIface(sim, name, gbps), sim: sim,
		rng: netsim.NewRNG(1, "reflector/"+name)}
	r.Iface.OnReceive(r.receive)
	return r
}

func (r *Reflector) receive(pkt *netproto.Packet) {
	if err := r.stack.Decode(pkt.Data); err != nil {
		return
	}
	out := pkt.Clone()
	phv := asic.NewPHV(out)
	asic.FieldEthSrc.Set(phv, asic.FieldEthDst.Get(phv))
	if phv.Has(netproto.LayerIPv4) {
		src, dst := asic.FieldIPv4Src.Get(phv), asic.FieldIPv4Dst.Get(phv)
		asic.FieldIPv4Src.Set(phv, dst)
		asic.FieldIPv4Dst.Set(phv, src)
	}
	switch {
	case phv.Has(netproto.LayerTCP):
		sp, dp := asic.FieldTCPSrcPort.Get(phv), asic.FieldTCPDstPort.Get(phv)
		asic.FieldTCPSrcPort.Set(phv, dp)
		asic.FieldTCPDstPort.Set(phv, sp)
	case phv.Has(netproto.LayerUDP):
		sp, dp := asic.FieldUDPSrcPort.Get(phv), asic.FieldUDPDstPort.Get(phv)
		asic.FieldUDPSrcPort.Set(phv, dp)
		asic.FieldUDPDstPort.Set(phv, sp)
	}
	phv.Deparse()
	r.Reflected++
	d := r.ExtraDelay
	if r.ExtraJitter > 0 {
		d += netsim.Duration(r.rng.Int63n(int64(r.ExtraJitter)))
	}
	r.sim.After(d, func() { r.Iface.Send(out) })
}

// ScanTarget emulates an IPv4 address space for Internet-scanning tasks:
// a deterministic subset of addresses is "live", and live hosts answer TCP
// SYNs on open ports with SYN+ACK, closed ports with RST. Dead addresses
// stay silent. Liveness derives from a hash so any scan order sees the same
// population.
type ScanTarget struct {
	Iface *Iface

	// LivePermille is how many of 1000 addresses respond at all.
	LivePermille int
	// OpenPorts answers SYN+ACK; other ports on live hosts answer RST.
	OpenPorts map[uint16]bool

	ProbesSeen  uint64
	SynAcksSent uint64
	RstsSent    uint64

	sim   *netsim.Sim
	hash  *asic.HashUnit
	stack netproto.Stack
}

// NewScanTarget builds a scan target behind one interface.
func NewScanTarget(sim *netsim.Sim, name string, gbps float64) *ScanTarget {
	t := &ScanTarget{
		Iface:        NewIface(sim, name, gbps),
		LivePermille: 50,
		OpenPorts:    map[uint16]bool{80: true, 443: true},
		sim:          sim,
		hash:         asic.NewHashUnit("scan-liveness", asic.PolyCRC32C),
	}
	t.Iface.OnReceive(t.receive)
	return t
}

// Live reports whether an address belongs to the responding population.
func (t *ScanTarget) Live(ip netproto.IPv4Addr) bool {
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip)
	return int(t.hash.Sum(b[:])%1000) < t.LivePermille
}

func (t *ScanTarget) receive(pkt *netproto.Packet) {
	if err := t.stack.Decode(pkt.Data); err != nil || !t.stack.Has(netproto.LayerTCP) {
		return
	}
	if t.stack.TCP.Flags&netproto.TCPSyn == 0 || t.stack.TCP.Flags&netproto.TCPAck != 0 {
		return
	}
	t.ProbesSeen++
	dst := t.stack.IP4.Dst
	if !t.Live(dst) {
		return
	}
	flags := uint8(netproto.TCPRst)
	if t.OpenPorts[t.stack.TCP.DstPort] {
		flags = netproto.TCPSyn | netproto.TCPAck
	}
	raw, err := netproto.BuildTCP(netproto.TCPSpec{
		SrcMAC: t.stack.Eth.Dst, DstMAC: t.stack.Eth.Src,
		SrcIP: dst, DstIP: t.stack.IP4.Src,
		SrcPort: t.stack.TCP.DstPort, DstPort: t.stack.TCP.SrcPort,
		Seq: uint32(dst) ^ 0x5a5a5a5a, Ack: t.stack.TCP.Seq + 1,
		Flags: flags, FrameLen: 64,
	})
	if err != nil {
		return
	}
	if flags&netproto.TCPSyn != 0 {
		t.SynAcksSent++
	} else {
		t.RstsSent++
	}
	t.Iface.Send(&netproto.Packet{Data: raw})
}

// NewForwardingDUT builds a second programmable switch configured as a plain
// store-and-forward device under test: every packet arriving on port a
// leaves on portMap[a]. This is the "Tofino switch forwarding delay" DUT of
// the Fig. 18 case study.
func NewForwardingDUT(sim *netsim.Sim, name string, portGbps []float64, portMap map[int]int, seed int64) *asic.Switch {
	sw := asic.New(asic.Config{Name: name, Sim: sim, PortGbps: portGbps, Seed: seed})
	sw.Ingress.Add(asic.ProcessorFunc(func(p *asic.PHV) {
		out, ok := portMap[p.Meta.InPort]
		if !ok {
			p.Drop = true
			return
		}
		p.EgressPort = out
	}))
	return sw
}
