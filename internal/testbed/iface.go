// Package testbed assembles evaluation topologies: device network
// interfaces, cables with serialization and propagation delay, rate/latency
// meters, and the devices under test the paper's experiments need — a
// forwarding switch, stateful TCP/HTTP servers, scan targets and reflectors.
// The reference topology mirrors Fig. 8 (two Tofino switches, two servers,
// 100/40/10 Gbps cables).
package testbed

import (
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

// Attach is anything a cable can plug into: a switch port or a device
// interface. SetPeer installs the far end; Deliver accepts a frame arriving
// off the wire now.
type Attach interface {
	SetPeer(fn func(pkt *netproto.Packet, at netsim.Time))
	Deliver(pkt *netproto.Packet)
}

// Iface is a device-side network interface (a NIC port): it serializes
// outgoing frames at its rate and hands incoming frames to the device.
type Iface struct {
	Name string
	Gbps float64

	sim  *netsim.Sim
	peer func(pkt *netproto.Packet, at netsim.Time)
	recv func(pkt *netproto.Packet)

	txBusyUntil netsim.Time

	// Counters.
	TxPackets, TxBytes uint64
	RxPackets, RxBytes uint64
}

// NewIface builds an interface with the given line rate.
func NewIface(sim *netsim.Sim, name string, gbps float64) *Iface {
	return &Iface{Name: name, Gbps: gbps, sim: sim}
}

// SetPeer implements Attach.
func (i *Iface) SetPeer(fn func(pkt *netproto.Packet, at netsim.Time)) { i.peer = fn }

// OnReceive installs the device's frame handler.
func (i *Iface) OnReceive(fn func(pkt *netproto.Packet)) { i.recv = fn }

// Deliver implements Attach: a frame has fully arrived now.
func (i *Iface) Deliver(pkt *netproto.Packet) {
	i.RxPackets++
	i.RxBytes += uint64(pkt.Len())
	pkt.Meta.IngressPs = int64(i.sim.Now())
	if i.recv != nil {
		i.recv(pkt)
	}
}

// Send serializes a frame onto the wire at the interface rate and delivers
// it to the peer when the last bit leaves.
func (i *Iface) Send(pkt *netproto.Packet) {
	now := i.sim.Now()
	start := i.txBusyUntil
	if start < now {
		start = now
	}
	end := start.Add(netsim.Ns(netproto.WireTimeNs(pkt.Len(), i.Gbps)))
	i.txBusyUntil = end
	i.sim.At(end, func() {
		i.TxPackets++
		i.TxBytes += uint64(pkt.Len())
		pkt.Meta.EgressPs = int64(end)
		if i.peer != nil {
			i.peer(pkt, end)
		}
	})
}

// Connect joins two attachment points with a full-duplex cable of the given
// propagation delay.
func Connect(sim *netsim.Sim, a, b Attach, propagation netsim.Duration) {
	a.SetPeer(func(pkt *netproto.Packet, at netsim.Time) {
		sim.At(at.Add(propagation), func() { b.Deliver(pkt) })
	})
	b.SetPeer(func(pkt *netproto.Packet, at netsim.Time) {
		sim.At(at.Add(propagation), func() { a.Deliver(pkt) })
	})
}

// DefaultCableDelay is the propagation delay of a short DAC cable.
const DefaultCableDelay = 5 * netsim.Nanosecond

// ConnectLossy joins two attachment points with a cable that drops each
// frame independently with the given probability — the substrate for
// packet-loss measurement tasks (§1 names loss measurement as a core
// network-tester duty).
func ConnectLossy(sim *netsim.Sim, a, b Attach, propagation netsim.Duration, lossRate float64, seed int64) *LossyLink {
	l := &LossyLink{rng: netsim.NewRNG(seed, "lossy-link"), rate: lossRate}
	forward := func(dst Attach) func(pkt *netproto.Packet, at netsim.Time) {
		return func(pkt *netproto.Packet, at netsim.Time) {
			if l.rng.Float64() < l.rate {
				l.Dropped++
				return
			}
			l.Delivered++
			sim.At(at.Add(propagation), func() { dst.Deliver(pkt) })
		}
	}
	a.SetPeer(forward(b))
	b.SetPeer(forward(a))
	return l
}

// LossyLink reports what a lossy cable did.
type LossyLink struct {
	rng  *netsim.RNG
	rate float64

	Dropped   uint64
	Delivered uint64
}
