// Package testbed assembles evaluation topologies: device network
// interfaces, cables with serialization and propagation delay, rate/latency
// meters, and the devices under test the paper's experiments need — a
// forwarding switch, stateful TCP/HTTP servers, scan targets and reflectors.
// The reference topology mirrors Fig. 8 (two Tofino switches, two servers,
// 100/40/10 Gbps cables).
package testbed

import (
	"sync"

	"github.com/hypertester/hypertester/internal/asic"
	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
	"github.com/hypertester/hypertester/internal/obs"
)

// linkJob carries one in-flight frame delivery (cable propagation or NIC
// serialization) so links schedule through netsim.AtCall without a capturing
// closure per frame. The pool is a sync.Pool because testbeds from different
// experiments run concurrently under the parallel suite runner.
type linkJob struct {
	dst   Attach
	iface *Iface
	pkt   *netproto.Packet
	// Cross-LP delivery state (partition.go): the destination switch port
	// (nil for interface destinations), the wire-arrival timestamp, and a
	// byte count plus packet UID for TX-counter credits (and their wire_tx
	// trace records) that outlive the packet handoff.
	port    *asic.Port
	arrival netsim.Time
	n       int
	uid     uint64
	// credited records that the destination port's RX counters were
	// already credited by the engine's boundary flush (runRemoteRxCredit),
	// so the deferred-arrival handler must not credit them again.
	credited bool
}

var linkJobPool = sync.Pool{New: func() any { return new(linkJob) }}

// runDeliverJob completes a cable hop: the frame arrives at the far end.
func runDeliverJob(a any) {
	j := a.(*linkJob)
	dst, pkt := j.dst, j.pkt
	*j = linkJob{}
	linkJobPool.Put(j)
	dst.Deliver(pkt)
}

// runIfaceTxJob completes a NIC serialization: the last bit left the
// interface, so the current virtual time is the egress timestamp.
func runIfaceTxJob(a any) {
	j := a.(*linkJob)
	i, pkt := j.iface, j.pkt
	*j = linkJob{}
	linkJobPool.Put(j)
	i.TxPackets++
	i.TxBytes += uint64(pkt.Len())
	end := i.sim.Now()
	i.trace.Emit(end, obs.KindWireTx, pkt.Meta.UID, i.Name, 0, int64(pkt.Len()))
	pkt.Meta.EgressPs = int64(end)
	if i.peer != nil {
		i.peer(pkt, end)
	}
}

// runIfaceTxCountJob credits TX counters at serialization end for frames
// already staged to a remote LP (see Iface.Send's remote path). Scheduled
// at Send time for the serialization-end instant — the same slot
// runIfaceTxJob's wire_tx record occupies under the sequential engine.
func runIfaceTxCountJob(a any) {
	j := a.(*linkJob)
	i, n, uid := j.iface, j.n, j.uid
	*j = linkJob{}
	linkJobPool.Put(j)
	i.TxPackets++
	i.TxBytes += uint64(n)
	i.trace.Emit(i.sim.Now(), obs.KindWireTx, uid, i.Name, 0, int64(n))
}

// runRemoteRxCredit is the boundary side effect of a deferred switch-port
// delivery (netsim.PostRemotePre): the sequential engine credits RX counters
// at wire arrival, one ingress latency before pipeline entry, so when a
// RunUntil deadline lands inside that window the engine flushes the credit
// at the boundary. runRemoteArrival skips the credit once this has run.
func runRemoteRxCredit(a any) {
	j := a.(*linkJob)
	j.credited = true
	j.port.CreditRX(j.n)
}

// runRemoteArrival completes a cross-LP cable hop on the destination LP:
// deferred port ingress for switch-port destinations (the frame arrived
// DeliverLookahead earlier — see asic.Port.DeliverDeferred), plain delivery
// for interface destinations.
func runRemoteArrival(a any) {
	j := a.(*linkJob)
	port, dst, pkt, arrival, credited := j.port, j.dst, j.pkt, j.arrival, j.credited
	*j = linkJob{}
	linkJobPool.Put(j)
	if port != nil {
		if !credited {
			port.CreditRX(pkt.Len())
		}
		port.DeliverDeferred(pkt, arrival)
	} else {
		dst.Deliver(pkt)
	}
}

// Attach is anything a cable can plug into: a switch port or a device
// interface. SetPeer installs the far end; Deliver accepts a frame arriving
// off the wire now.
type Attach interface {
	SetPeer(fn func(pkt *netproto.Packet, at netsim.Time))
	Deliver(pkt *netproto.Packet)
}

// Iface is a device-side network interface (a NIC port): it serializes
// outgoing frames at its rate and hands incoming frames to the device.
type Iface struct {
	Name string
	Gbps float64

	sim  *netsim.Sim
	peer func(pkt *netproto.Packet, at netsim.Time)
	recv func(pkt *netproto.Packet)

	// remote, when set, diverts outgoing frames to a cross-LP channel of
	// the parallel engine at Send time (with the computed serialization-end
	// timestamp), mirroring asic.Port's remote hook.
	remote func(pkt *netproto.Packet, end netsim.Time)

	txBusyUntil netsim.Time

	// trace, when non-nil, records wire_rx/wire_tx lifecycle events. Both
	// emission points (Deliver at arrival, TX completion at serialization
	// end) run at engine-invariant instants — see package obs.
	trace *obs.Trace

	// Counters.
	TxPackets, TxBytes uint64
	RxPackets, RxBytes uint64
}

// NewIface builds an interface with the given line rate.
func NewIface(sim *netsim.Sim, name string, gbps float64) *Iface {
	return &Iface{Name: name, Gbps: gbps, sim: sim}
}

// SetPeer implements Attach.
func (i *Iface) SetPeer(fn func(pkt *netproto.Packet, at netsim.Time)) { i.peer = fn }

// SetRemote diverts this interface's transmissions to a cross-LP staging
// hook. Used by Partition for partitioned links.
func (i *Iface) SetRemote(fn func(pkt *netproto.Packet, end netsim.Time)) { i.remote = fn }

// Sim returns the simulation clock this interface is bound to.
func (i *Iface) Sim() *netsim.Sim { return i.sim }

// SetTrace attaches a trace stream (nil disables tracing).
func (i *Iface) SetTrace(tr *obs.Trace) { i.trace = tr }

// OnReceive installs the device's frame handler.
func (i *Iface) OnReceive(fn func(pkt *netproto.Packet)) { i.recv = fn }

// Deliver implements Attach: a frame has fully arrived now.
func (i *Iface) Deliver(pkt *netproto.Packet) {
	i.RxPackets++
	i.RxBytes += uint64(pkt.Len())
	i.trace.Emit(i.sim.Now(), obs.KindWireRx, pkt.Meta.UID, i.Name, 0, int64(pkt.Len()))
	pkt.Meta.IngressPs = int64(i.sim.Now())
	if i.recv != nil {
		i.recv(pkt)
	}
}

// Send serializes a frame onto the wire at the interface rate and delivers
// it to the peer when the last bit leaves.
func (i *Iface) Send(pkt *netproto.Packet) {
	now := i.sim.Now()
	start := i.txBusyUntil
	if start < now {
		start = now
	}
	end := start.Add(netsim.Ns(netproto.WireTimeNs(pkt.Len(), i.Gbps)))
	i.txBusyUntil = end
	if i.remote != nil {
		// Cross-LP path: stamp the egress timestamp now (its value is the
		// same one runIfaceTxJob would write at end), hand the frame to the
		// staging engine, and credit TX counters with a local event at
		// serialization end, exactly when the sequential engine would.
		j := linkJobPool.Get().(*linkJob)
		j.iface, j.n, j.uid = i, pkt.Len(), pkt.Meta.UID
		i.sim.AtCall(end, runIfaceTxCountJob, j)
		pkt.Meta.EgressPs = int64(end)
		i.remote(pkt, end)
		return
	}
	j := linkJobPool.Get().(*linkJob)
	j.iface, j.pkt = i, pkt
	i.sim.AtCall(end, runIfaceTxJob, j)
}

// Connect joins two attachment points with a full-duplex cable of the given
// propagation delay.
func Connect(sim *netsim.Sim, a, b Attach, propagation netsim.Duration) {
	a.SetPeer(func(pkt *netproto.Packet, at netsim.Time) {
		j := linkJobPool.Get().(*linkJob)
		j.dst, j.pkt = b, pkt
		sim.AtCall(at.Add(propagation), runDeliverJob, j)
	})
	b.SetPeer(func(pkt *netproto.Packet, at netsim.Time) {
		j := linkJobPool.Get().(*linkJob)
		j.dst, j.pkt = a, pkt
		sim.AtCall(at.Add(propagation), runDeliverJob, j)
	})
}

// DefaultCableDelay is the propagation delay of a short DAC cable.
const DefaultCableDelay = 5 * netsim.Nanosecond

// ConnectLossy joins two attachment points with a cable that drops each
// frame independently with the given probability — the substrate for
// packet-loss measurement tasks (§1 names loss measurement as a core
// network-tester duty).
func ConnectLossy(sim *netsim.Sim, a, b Attach, propagation netsim.Duration, lossRate float64, seed int64) *LossyLink {
	l := &LossyLink{rng: netsim.NewRNG(seed, "lossy-link"), rate: lossRate}
	forward := func(dst Attach) func(pkt *netproto.Packet, at netsim.Time) {
		return func(pkt *netproto.Packet, at netsim.Time) {
			if l.rng.Float64() < l.rate {
				l.Dropped++
				pkt.Release() // the frame dies on this cable; recycle it
				return
			}
			l.Delivered++
			j := linkJobPool.Get().(*linkJob)
			j.dst, j.pkt = dst, pkt
			sim.AtCall(at.Add(propagation), runDeliverJob, j)
		}
	}
	a.SetPeer(forward(b))
	b.SetPeer(forward(a))
	return l
}

// LossyLink reports what a lossy cable did.
type LossyLink struct {
	rng  *netsim.RNG
	rate float64

	Dropped   uint64
	Delivered uint64
}
