package testbed

import (
	"bytes"
	"testing"

	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

func TestPcapRoundTrip(t *testing.T) {
	sim := netsim.New()
	src := NewIface(sim, "src", 100)
	sink := NewSink(sim, "sink", 100)
	sink.EnableCapture(0)
	Connect(sim, src, sink.Iface, 0)
	for i := 0; i < 5; i++ {
		src.Send(udpFrame(t, 64+i, uint16(1000+i), 53))
	}
	sim.Run()

	if len(sink.Captured()) != 5 {
		t.Fatalf("captured %d frames", len(sink.Captured()))
	}
	var buf bytes.Buffer
	if err := sink.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	frames, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("read %d frames", len(frames))
	}
	for i, f := range frames {
		want := sink.Captured()[i]
		// pcap stores nanosecond resolution; sub-ns is truncated.
		if int64(f.At)/1000 != int64(want.At)/1000 {
			t.Fatalf("frame %d timestamp %v != %v", i, f.At, want.At)
		}
		if !bytes.Equal(f.Data, want.Data) {
			t.Fatalf("frame %d data mismatch", i)
		}
		var st netproto.Stack
		if err := st.Decode(f.Data); err != nil {
			t.Fatalf("frame %d not decodable: %v", i, err)
		}
		if st.UDP.SrcPort != uint16(1000+i) {
			t.Fatalf("frame %d sport %d", i, st.UDP.SrcPort)
		}
	}
}

func TestPcapCaptureBound(t *testing.T) {
	sim := netsim.New()
	src := NewIface(sim, "src", 100)
	sink := NewSink(sim, "sink", 100)
	sink.EnableCapture(3)
	Connect(sim, src, sink.Iface, 0)
	for i := 0; i < 10; i++ {
		src.Send(udpFrame(t, 64, 1, 2))
	}
	sim.Run()
	if len(sink.Captured()) != 3 {
		t.Fatalf("captured %d, want cap of 3", len(sink.Captured()))
	}
	if sink.Packets != 10 {
		t.Fatal("counting must continue past the capture cap")
	}
}

func TestPcapHeaderValidation(t *testing.T) {
	bad := bytes.NewReader(append([]byte{1, 2, 3, 4}, make([]byte, 20)...))
	if _, err := ReadPcap(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadPcap(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestPlayerPreservesTiming(t *testing.T) {
	// Record a paced stream, replay it elsewhere, compare gaps.
	sim := netsim.New()
	src := NewIface(sim, "src", 100)
	rec := NewSink(sim, "rec", 100)
	rec.EnableCapture(0)
	Connect(sim, src, rec.Iface, 0)
	for i := 0; i < 10; i++ {
		i := i
		sim.At(netsim.Time(i)*netsim.Time(5*netsim.Microsecond), func() {
			src.Send(udpFrame(t, 64, uint16(i), 2))
		})
	}
	sim.Run()

	sim2 := netsim.New()
	replaySink := NewSink(sim2, "replay", 100)
	replaySink.RecordTimestamps = true
	player := NewPlayer(sim2, rec.Captured())
	sim2.RunFor(netsim.Millisecond) // start replay mid-simulation
	player.ReplayInto(replaySink.Iface)
	sim2.Run()

	if player.Replayed != 10 || replaySink.Packets != 10 {
		t.Fatalf("replayed %d, sink %d", player.Replayed, replaySink.Packets)
	}
	gaps := replaySink.Timestamps
	for i := 1; i < len(gaps); i++ {
		gap := gaps[i] - gaps[i-1]
		if gap < 4990 || gap > 5010 {
			t.Fatalf("gap %d = %.0fns, want ~5000", i, gap)
		}
	}
}

func TestPlayerSpeedup(t *testing.T) {
	frames := []CapturedFrame{
		{At: 0, Data: make([]byte, 64)},
		{At: netsim.Time(10 * netsim.Microsecond), Data: make([]byte, 64)},
	}
	sim := netsim.New()
	sink := NewSink(sim, "s", 100)
	sink.RecordTimestamps = true
	p := NewPlayer(sim, frames)
	p.Speedup = 2
	p.ReplayInto(sink.Iface)
	sim.Run()
	gap := sink.Timestamps[1] - sink.Timestamps[0]
	if gap < 4900 || gap > 5100 {
		t.Fatalf("2x replay gap = %.0fns, want ~5000", gap)
	}
}

func TestPlayerFromPcapRoundTrip(t *testing.T) {
	sim := netsim.New()
	src := NewIface(sim, "src", 100)
	rec := NewSink(sim, "rec", 100)
	rec.EnableCapture(0)
	Connect(sim, src, rec.Iface, 0)
	src.Send(udpFrame(t, 64, 7, 9))
	sim.Run()
	var buf bytes.Buffer
	if err := rec.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	sim2 := netsim.New()
	p, err := NewPlayerFromPcap(sim2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewSink(sim2, "s", 100)
	p.ReplayInto(sink.Iface)
	sim2.Run()
	if sink.Packets != 1 {
		t.Fatalf("packets = %d", sink.Packets)
	}
}
