package testbed

import (
	"io"

	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

// Player replays captured frames into an attachment point with their
// original relative timing. The paper notes the *generation* side cannot do
// trace replay (template extraction is impossible, §6.2) — but the receive
// side can absolutely be exercised with recorded traffic, which is how the
// query engine is tested against realistic captures.
type Player struct {
	frames []CapturedFrame
	sim    *netsim.Sim

	// Speedup scales replay timing (2.0 = twice as fast).
	Speedup float64

	// Replayed counts frames delivered.
	Replayed uint64
}

// NewPlayer builds a player over frames (e.g. from ReadPcap).
func NewPlayer(sim *netsim.Sim, frames []CapturedFrame) *Player {
	return &Player{frames: frames, sim: sim, Speedup: 1}
}

// NewPlayerFromPcap reads a pcap stream and builds a player.
func NewPlayerFromPcap(sim *netsim.Sim, r io.Reader) (*Player, error) {
	frames, err := ReadPcap(r)
	if err != nil {
		return nil, err
	}
	return NewPlayer(sim, frames), nil
}

// ReplayInto schedules every frame for delivery to dst, preserving the
// capture's inter-frame gaps (scaled by Speedup) and starting now.
func (p *Player) ReplayInto(dst Attach) {
	if len(p.frames) == 0 {
		return
	}
	start := p.sim.Now()
	base := p.frames[0].At
	speed := p.Speedup
	if speed <= 0 {
		speed = 1
	}
	for i := range p.frames {
		f := p.frames[i]
		offset := netsim.Duration(float64(f.At.Sub(base)) / speed)
		p.sim.At(start.Add(offset), func() {
			data := make([]byte, len(f.Data))
			copy(data, f.Data)
			dst.Deliver(&netproto.Packet{Data: data})
			p.Replayed++
		})
	}
}
