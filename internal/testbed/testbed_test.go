package testbed

import (
	"math"
	"testing"

	"github.com/hypertester/hypertester/internal/netproto"
	"github.com/hypertester/hypertester/internal/netsim"
)

func udpFrame(t *testing.T, size int, sport, dport uint16) *netproto.Packet {
	t.Helper()
	raw, err := netproto.BuildUDP(netproto.UDPSpec{
		SrcIP: netproto.MustIPv4("10.0.0.1"), DstIP: netproto.MustIPv4("10.0.0.2"),
		SrcPort: sport, DstPort: dport, FrameLen: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &netproto.Packet{Data: raw}
}

func TestIfaceSendSerializes(t *testing.T) {
	sim := netsim.New()
	a := NewIface(sim, "a", 10)
	var arrivals []netsim.Time
	a.SetPeer(func(pkt *netproto.Packet, at netsim.Time) { arrivals = append(arrivals, at) })
	a.Send(udpFrame(t, 1500, 1, 2))
	a.Send(udpFrame(t, 1500, 1, 2))
	sim.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	gap := arrivals[1].Sub(arrivals[0]).Nanoseconds()
	want := netproto.WireTimeNs(1500, 10)
	if math.Abs(gap-want) > 0.01 {
		t.Fatalf("gap %.2f, want %.2f", gap, want)
	}
	if a.TxPackets != 2 {
		t.Fatalf("TxPackets = %d", a.TxPackets)
	}
}

func TestConnectBidirectional(t *testing.T) {
	sim := netsim.New()
	a := NewIface(sim, "a", 100)
	b := NewIface(sim, "b", 100)
	var aGot, bGot int
	a.OnReceive(func(pkt *netproto.Packet) { aGot++ })
	b.OnReceive(func(pkt *netproto.Packet) { bGot++ })
	Connect(sim, a, b, DefaultCableDelay)
	a.Send(udpFrame(t, 64, 1, 2))
	b.Send(udpFrame(t, 64, 3, 4))
	sim.Run()
	if aGot != 1 || bGot != 1 {
		t.Fatalf("aGot=%d bGot=%d", aGot, bGot)
	}
}

func TestConnectPropagationDelay(t *testing.T) {
	sim := netsim.New()
	a := NewIface(sim, "a", 100)
	b := NewIface(sim, "b", 100)
	var at netsim.Time
	b.OnReceive(func(pkt *netproto.Packet) { at = sim.Now() })
	Connect(sim, a, b, 100*netsim.Nanosecond)
	a.Send(udpFrame(t, 64, 1, 2))
	sim.Run()
	want := netsim.Ns(netproto.WireTimeNs(64, 100)) + 100*netsim.Nanosecond
	if at != netsim.Time(want) {
		t.Fatalf("arrival %v, want %v", at, want)
	}
}

func TestSinkMetrics(t *testing.T) {
	sim := netsim.New()
	src := NewIface(sim, "src", 100)
	sink := NewSink(sim, "sink", 100)
	sink.RecordTimestamps = true
	Connect(sim, src, sink.Iface, 0)
	for i := 0; i < 100; i++ {
		src.Send(udpFrame(t, 64, 1, 2))
	}
	sim.Run()
	if sink.Packets != 100 || sink.Bytes != 6400 {
		t.Fatalf("packets=%d bytes=%d", sink.Packets, sink.Bytes)
	}
	if len(sink.Timestamps) != 100 {
		t.Fatalf("timestamps = %d", len(sink.Timestamps))
	}
	// Back-to-back 64B at 100G: sink should observe ~line rate.
	if g := sink.ThroughputGbps(); g < 99 || g > 101 {
		t.Fatalf("throughput = %.2f Gbps", g)
	}
	wantPps := 1e9 / netproto.WireTimeNs(64, 100)
	if pps := sink.RatePps(); math.Abs(pps-wantPps) > wantPps/100 {
		t.Fatalf("pps = %.0f, want ~%.0f", pps, wantPps)
	}
	sink.Reset()
	if sink.Packets != 0 || len(sink.Timestamps) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestSinkMaxRecorded(t *testing.T) {
	sim := netsim.New()
	src := NewIface(sim, "src", 100)
	sink := NewSink(sim, "sink", 100)
	sink.RecordTimestamps = true
	sink.MaxRecorded = 10
	Connect(sim, src, sink.Iface, 0)
	for i := 0; i < 50; i++ {
		src.Send(udpFrame(t, 64, 1, 2))
	}
	sim.Run()
	if len(sink.Timestamps) != 10 {
		t.Fatalf("recorded %d, want 10", len(sink.Timestamps))
	}
	if sink.Packets != 50 {
		t.Fatalf("counting must continue past the cap: %d", sink.Packets)
	}
}

func TestReflectorSwapsEndpoints(t *testing.T) {
	sim := netsim.New()
	src := NewIface(sim, "src", 100)
	refl := NewReflector(sim, "refl", 100)
	var got *netproto.Packet
	src.OnReceive(func(pkt *netproto.Packet) { got = pkt })
	Connect(sim, src, refl.Iface, 0)
	src.Send(udpFrame(t, 64, 1111, 2222))
	sim.Run()
	if got == nil {
		t.Fatal("nothing reflected")
	}
	var s netproto.Stack
	if err := s.Decode(got.Data); err != nil {
		t.Fatal(err)
	}
	if s.IP4.Src != netproto.MustIPv4("10.0.0.2") || s.IP4.Dst != netproto.MustIPv4("10.0.0.1") {
		t.Fatalf("IPs not swapped: %v -> %v", s.IP4.Src, s.IP4.Dst)
	}
	if s.UDP.SrcPort != 2222 || s.UDP.DstPort != 1111 {
		t.Fatalf("ports not swapped: %d -> %d", s.UDP.SrcPort, s.UDP.DstPort)
	}
	if refl.Reflected != 1 {
		t.Fatalf("Reflected = %d", refl.Reflected)
	}
}

func TestHTTPServerHandshakeAndServe(t *testing.T) {
	sim := netsim.New()
	client := NewIface(sim, "client", 100)
	farm := NewHTTPServerFarm(sim, "farm", 100)
	farm.ResponsePackets = 5

	type seen struct {
		flags   uint8
		payload int
		seq     uint32
		ack     uint32
	}
	var replies []seen
	var stack netproto.Stack
	client.OnReceive(func(pkt *netproto.Packet) {
		if err := stack.Decode(pkt.Data); err == nil && stack.Has(netproto.LayerTCP) {
			replies = append(replies, seen{stack.TCP.Flags, len(stack.Payload), stack.TCP.Seq, stack.TCP.Ack})
		}
	})
	Connect(sim, client, farm.Iface, 0)

	send := func(flags uint8, seq, ack uint32, payload []byte) {
		raw, err := netproto.BuildTCP(netproto.TCPSpec{
			SrcIP: netproto.MustIPv4("1.1.0.1"), DstIP: netproto.MustIPv4("9.9.9.9"),
			SrcPort: 4096, DstPort: 80, Seq: seq, Ack: ack, Flags: flags,
			Payload: payload, FrameLen: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		client.Send(&netproto.Packet{Data: raw})
	}

	send(netproto.TCPSyn, 1, 0, nil)
	sim.Run()
	if len(replies) != 1 || replies[0].flags != netproto.TCPSyn|netproto.TCPAck {
		t.Fatalf("after SYN: %+v", replies)
	}
	if replies[0].ack != 2 {
		t.Fatalf("SYN+ACK acks %d, want 2", replies[0].ack)
	}
	synAck := replies[0]

	// Complete handshake + request in one PSH+ACK (as HyperTester's T3 does).
	send(netproto.TCPAck, 2, synAck.seq+1, nil)
	send(netproto.TCPPsh|netproto.TCPAck, 2, synAck.seq+1, []byte("GET index.html"))
	sim.Run()

	data := 0
	for _, r := range replies[1:] {
		if r.payload > 0 {
			data++
		}
	}
	if data != 5 {
		t.Fatalf("served %d data packets, want 5", data)
	}
	if farm.Handshakes != 1 || farm.Requests != 1 {
		t.Fatalf("farm stats: %+v", farm)
	}

	// Close.
	send(netproto.TCPFin, 100, 0, nil)
	sim.Run()
	last := replies[len(replies)-1]
	if last.flags != netproto.TCPFin|netproto.TCPAck {
		t.Fatalf("after FIN got flags %#x", last.flags)
	}
	if farm.Closed != 1 || farm.OpenConnections() != 0 {
		t.Fatalf("close stats: closed=%d open=%d", farm.Closed, farm.OpenConnections())
	}
}

func TestHTTPServerIgnoresUnknownRequest(t *testing.T) {
	sim := netsim.New()
	client := NewIface(sim, "client", 100)
	farm := NewHTTPServerFarm(sim, "farm", 100)
	Connect(sim, client, farm.Iface, 0)
	// Request without a preceding SYN: no connection state.
	raw, _ := netproto.BuildTCP(netproto.TCPSpec{
		SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80,
		Flags: netproto.TCPPsh | netproto.TCPAck, Payload: []byte("GET x"),
	})
	client.Send(&netproto.Packet{Data: raw})
	sim.Run()
	if farm.UnexpectedPkts != 1 || farm.Requests != 0 {
		t.Fatalf("unexpected=%d requests=%d", farm.UnexpectedPkts, farm.Requests)
	}
}

func TestScanTargetResponses(t *testing.T) {
	sim := netsim.New()
	scanner := NewIface(sim, "scanner", 100)
	target := NewScanTarget(sim, "net", 100)
	target.LivePermille = 500 // half the space answers

	var synAck, rst int
	var stack netproto.Stack
	scanner.OnReceive(func(pkt *netproto.Packet) {
		if err := stack.Decode(pkt.Data); err != nil {
			return
		}
		switch stack.TCP.Flags {
		case netproto.TCPSyn | netproto.TCPAck:
			synAck++
		case netproto.TCPRst:
			rst++
		}
	})
	Connect(sim, scanner, target.Iface, 0)

	liveOpen, liveClosed, dead := 0, 0, 0
	for i := 0; i < 1000; i++ {
		ip := netproto.IPv4Addr(0x0b000000 + uint32(i))
		open := i%2 == 0
		port := uint16(80)
		if !open {
			port = 9999
		}
		if target.Live(ip) {
			if open {
				liveOpen++
			} else {
				liveClosed++
			}
		} else if open {
			dead++
		}
		raw, _ := netproto.BuildTCP(netproto.TCPSpec{
			SrcIP: netproto.MustIPv4("1.1.0.1"), DstIP: ip,
			SrcPort: 1024, DstPort: port, Flags: netproto.TCPSyn, FrameLen: 64,
		})
		scanner.Send(&netproto.Packet{Data: raw})
	}
	sim.Run()

	if target.ProbesSeen != 1000 {
		t.Fatalf("probes = %d", target.ProbesSeen)
	}
	if synAck != liveOpen {
		t.Fatalf("syn+ack = %d, want %d", synAck, liveOpen)
	}
	if rst != liveClosed {
		t.Fatalf("rst = %d, want %d", rst, liveClosed)
	}
	if liveOpen == 0 || dead == 0 {
		t.Fatal("degenerate liveness split; adjust hash")
	}
	// Liveness must be deterministic.
	if target.Live(0x0b000001) != target.Live(0x0b000001) {
		t.Fatal("liveness not stable")
	}
}

func TestForwardingDUT(t *testing.T) {
	sim := netsim.New()
	dut := NewForwardingDUT(sim, "dut", []float64{100, 100}, map[int]int{0: 1, 1: 0}, 7)
	src := NewIface(sim, "src", 100)
	sink := NewSink(sim, "sink", 100)
	Connect(sim, src, dut.Port(0), 0)
	Connect(sim, dut.Port(1), sink.Iface, 0)
	var sent netsim.Time
	sink.OnPacket = func(pkt *netproto.Packet, at netsim.Time) {}
	sent = sim.Now()
	src.Send(udpFrame(t, 64, 1, 2))
	sim.Run()
	if sink.Packets != 1 {
		t.Fatalf("packets = %d", sink.Packets)
	}
	// Forwarding delay through the DUT is the full pipe traversal.
	delay := sink.Last.Sub(sent).Nanoseconds()
	if delay < 500 || delay > 800 {
		t.Fatalf("DUT forwarding delay %.0fns out of plausible Tofino range", delay)
	}
	// Unmapped ingress port drops.
	dut2 := NewForwardingDUT(sim, "dut2", []float64{100}, map[int]int{}, 7)
	dut2.Port(0).Receive(udpFrame(t, 64, 1, 2))
	sim.Run()
	if dut2.PipelineDrops != 1 {
		t.Fatalf("unmapped port not dropped: %d", dut2.PipelineDrops)
	}
}
