package sketch

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func key(i uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], i)
	return b[:]
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(3, 256)
	truth := map[uint32]uint64{}
	for i := uint32(0); i < 2000; i++ {
		k := i % 300
		cm.Add(key(k), 1)
		truth[k]++
	}
	for k, want := range truth {
		if got := cm.Estimate(key(k)); got < want {
			t.Fatalf("key %d: estimate %d < true %d", k, got, want)
		}
	}
}

func TestCountMinOverestimatesUnderPressure(t *testing.T) {
	// Tiny sketch, many keys: collisions must inflate some estimate —
	// exactly the inaccuracy §5.2 rejects for test statistics.
	cm := NewCountMin(2, 16)
	for i := uint32(0); i < 1000; i++ {
		cm.Add(key(i), 1)
	}
	over := 0
	for i := uint32(0); i < 1000; i++ {
		if cm.Estimate(key(i)) > 1 {
			over++
		}
	}
	if over == 0 {
		t.Fatal("no overestimates despite heavy collisions")
	}
}

func TestCountMinExactWhenSparse(t *testing.T) {
	cm := NewCountMin(4, 1<<14)
	for i := uint32(0); i < 10; i++ {
		cm.Add(key(i), uint64(i+1))
	}
	for i := uint32(0); i < 10; i++ {
		if got := cm.Estimate(key(i)); got != uint64(i+1) {
			t.Fatalf("sparse estimate for %d = %d, want %d", i, got, i+1)
		}
	}
	if cm.Estimate(key(999)) != 0 {
		t.Fatal("absent key should estimate 0 in a sparse sketch")
	}
}

func TestCountMinDepthClamped(t *testing.T) {
	if cm := NewCountMin(0, 8); len(cm.rows) != 1 {
		t.Fatal("depth 0 not clamped to 1")
	}
	if cm := NewCountMin(99, 8); len(cm.rows) != len(polys) {
		t.Fatal("depth not clamped to available hashers")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1<<14, 3)
	for i := uint32(0); i < 1000; i++ {
		b.AddIfNew(key(i))
	}
	for i := uint32(0); i < 1000; i++ {
		if !b.Contains(key(i)) {
			t.Fatalf("false negative for key %d", i)
		}
	}
}

func TestBloomAddIfNewOncePerKey(t *testing.T) {
	b := NewBloom(1<<14, 3)
	if !b.AddIfNew(key(7)) {
		t.Fatal("first insert not new")
	}
	if b.AddIfNew(key(7)) {
		t.Fatal("second insert reported new")
	}
}

func TestBloomFalsePositivesUnderPressure(t *testing.T) {
	// Small filter, many keys: some distinct keys must be miscounted as
	// duplicates — the false positives HyperTester eliminates.
	b := NewBloom(256, 2)
	newCount := 0
	const n = 2000
	for i := uint32(0); i < n; i++ {
		if b.AddIfNew(key(i)) {
			newCount++
		}
	}
	if newCount == n {
		t.Fatal("no false positives despite saturation")
	}
}

func TestMemoryAccounting(t *testing.T) {
	if NewCountMin(3, 100).MemoryBytes() != 2400 {
		t.Fatal("CountMin memory")
	}
	if NewBloom(128, 2).MemoryBytes() != 16 {
		t.Fatal("Bloom memory")
	}
}

// Property: Count-Min estimate of any key is >= its true count.
func TestCountMinLowerBoundProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		cm := NewCountMin(3, 128)
		truth := map[uint16]uint64{}
		for _, k := range keys {
			cm.Add(key(uint32(k)), 1)
			truth[k]++
		}
		for k, want := range truth {
			if cm.Estimate(key(uint32(k))) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bloom never yields a false negative.
func TestBloomNoFalseNegativeProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		b := NewBloom(4096, 3)
		for _, k := range keys {
			b.AddIfNew(key(uint32(k)))
		}
		for _, k := range keys {
			if !b.Contains(key(uint32(k))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
