// Package sketch implements the probabilistic structures Sonata compiles
// reduce and distinct to — a Count-Min sketch and a Bloom filter. They are
// the accuracy baseline HyperTester's counter-based algorithm (exact key
// matching + cuckoo hashing) is designed to beat: sketches answer within
// fixed memory but with one-sided error, which §5.2 argues is unacceptable
// for test-statistic queries.
package sketch

import (
	"encoding/binary"

	"github.com/hypertester/hypertester/internal/asic"
)

// CountMin is a Count-Min sketch: d rows of w counters; updates add to one
// counter per row, queries take the minimum (never underestimates).
type CountMin struct {
	rows    [][]uint64
	hashers []*asic.HashUnit
	width   int
}

var polys = []uint32{asic.PolyCRC32, asic.PolyCRC32C, asic.PolyKoopman, asic.PolyQ}

// NewCountMin builds a d×w sketch (d ≤ 4, one CRC engine per row).
func NewCountMin(depth, width int) *CountMin {
	if depth < 1 {
		depth = 1
	}
	if depth > len(polys) {
		depth = len(polys)
	}
	cm := &CountMin{width: width}
	for i := 0; i < depth; i++ {
		cm.rows = append(cm.rows, make([]uint64, width))
		cm.hashers = append(cm.hashers, asic.NewHashUnit("cm", polys[i]))
	}
	return cm
}

// Add increments key's estimate by delta.
func (cm *CountMin) Add(key []byte, delta uint64) {
	for i, h := range cm.hashers {
		cm.rows[i][h.Index(key, cm.width)] += delta
	}
}

// Estimate returns the (over-)estimate for key.
func (cm *CountMin) Estimate(key []byte) uint64 {
	min := ^uint64(0)
	for i, h := range cm.hashers {
		if v := cm.rows[i][h.Index(key, cm.width)]; v < min {
			min = v
		}
	}
	return min
}

// MemoryBytes reports the sketch's counter memory.
func (cm *CountMin) MemoryBytes() int { return len(cm.rows) * cm.width * 8 }

// Bloom is a Bloom filter with k hash functions over m bits.
type Bloom struct {
	bits    []uint64
	m       int
	hashers []*asic.HashUnit
}

// NewBloom builds a filter of m bits with k ≤ 4 hash functions.
func NewBloom(m, k int) *Bloom {
	if k < 1 {
		k = 1
	}
	if k > len(polys) {
		k = len(polys)
	}
	b := &Bloom{bits: make([]uint64, (m+63)/64), m: m}
	for i := 0; i < k; i++ {
		b.hashers = append(b.hashers, asic.NewHashUnit("bloom", polys[i]))
	}
	return b
}

func (b *Bloom) idx(h *asic.HashUnit, key []byte, salt uint32) int {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], salt)
	return int(h.Sum(append(buf[:], key...)) % uint32(b.m))
}

// AddIfNew inserts key and reports whether it was (probably) new — the
// semantics distinct needs: true at most once per key, but possibly false
// for a genuinely new key (false positive).
func (b *Bloom) AddIfNew(key []byte) bool {
	isNew := false
	for i, h := range b.hashers {
		pos := b.idx(h, key, uint32(i))
		if b.bits[pos/64]&(1<<uint(pos%64)) == 0 {
			isNew = true
			b.bits[pos/64] |= 1 << uint(pos%64)
		}
	}
	return isNew
}

// Contains reports whether key is (probably) present.
func (b *Bloom) Contains(key []byte) bool {
	for i, h := range b.hashers {
		pos := b.idx(h, key, uint32(i))
		if b.bits[pos/64]&(1<<uint(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// MemoryBytes reports the filter's bit-array memory.
func (b *Bloom) MemoryBytes() int { return len(b.bits) * 8 }
