// Package linttest runs lint analyzers over annotated fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest (which the
// build environment does not carry). A fixture is a directory of Go files
// under testdata/; lines that must trigger a diagnostic carry a trailing
//
//	// want `regexp`
//
// comment (multiple backquoted patterns allowed on one line). The runner
// fails the test on any unmatched want and on any unexpected diagnostic,
// so fixtures prove both that the analyzer catches seeded bugs (negative
// fixtures) and that it stays quiet on the idiomatic spellings (positive
// fixtures).
//
// Fixture directories live under testdata/, which `go list ./...` skips,
// so deliberately buggy fixture code never reaches the build, the test
// binary, or cmd/htlint's repository-wide run.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/hypertester/hypertester/internal/lint"
)

// sharedLoader caches type-checked standard-library dependencies across
// fixture runs within one test binary.
var sharedLoader = lint.NewLoader()

// wantRe extracts the backquoted patterns of a // want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

// Run loads the fixture package in dir, applies the analyzer, and checks
// the produced diagnostics against the fixture's // want annotations. The
// fixture's import path is the directory base name; the analyzer's
// configuration must reference it wherever package paths are matched.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files in %s", dir)
	}
	sort.Strings(files)

	importPath := filepath.Base(dir)
	pkg, err := sharedLoader.CheckFiles(importPath, dir, files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	wants := collectWants(t, dir, files)
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: running %s: %v", a.Name, err)
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans fixture sources for // want annotations.
func collectWants(t *testing.T, dir string, files []string) []want {
	t.Helper()
	var wants []want
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, ann, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			ms := wantRe.FindAllStringSubmatch(ann, -1)
			if len(ms) == 0 {
				t.Fatalf("linttest: %s:%d: // want without backquoted pattern", name, i+1)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("linttest: %s:%d: bad want pattern: %v", name, i+1, err)
				}
				wants = append(wants, want{file: name, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// Fixture returns the path of a named fixture directory under the calling
// package's testdata/src tree.
func Fixture(t *testing.T, name string) string {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("linttest: fixture %s: %v", name, err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	return abs
}
