package lint

import (
	"go/ast"
	"go/types"
)

// AtCallConfig parameterizes the atcall analyzer. netsim.Sim.AtCall and
// AfterCall exist for exactly one reason: scheduling a hop without the
// per-packet closure allocation that At/After incur. Passing a function
// literal (a capturing closure) or a method value to them defeats the API
// — both allocate on every call — and silently reintroduces the GC
// pressure PR 1 removed. The hot-path discipline is a package-level
// trampoline function plus a pooled argument (see internal/asic/pool.go).
type AtCallConfig struct {
	// Schedulers are the receiver types carrying the zero-alloc APIs,
	// as "importpath.TypeName".
	Schedulers map[string]bool

	// Methods are the zero-alloc scheduling entry points and the
	// argument index of their callback parameter.
	Methods map[string]int
}

// DefaultAtCallConfig covers netsim.Sim.
func DefaultAtCallConfig() AtCallConfig {
	return AtCallConfig{
		Schedulers: map[string]bool{
			"github.com/hypertester/hypertester/internal/netsim.Sim": true,
		},
		Methods: map[string]int{"AtCall": 1, "AfterCall": 1},
	}
}

// AtCall builds the atcall analyzer for the given configuration.
func AtCall(cfg AtCallConfig) *Analyzer {
	a := &Analyzer{
		Name: "atcall",
		Doc: "flags function literals and method values passed to the zero-allocation " +
			"AtCall/AfterCall scheduling APIs; pass a package-level func and a pooled argument",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkAtCall(pass, cfg, call)
				return true
			})
		}
		return nil
	}
	return a
}

func checkAtCall(pass *Pass, cfg AtCallConfig, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	argIdx, ok := cfg.Methods[sel.Sel.Name]
	if !ok || argIdx >= len(call.Args) {
		return
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil || !isSchedulerType(cfg, recv) {
		return
	}
	switch fn := call.Args[argIdx].(type) {
	case *ast.FuncLit:
		pass.Reportf(fn.Pos(),
			"function literal passed to %s allocates a closure per call; pass a package-level func(any) and a pooled argument", sel.Sel.Name)
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[fn]; ok && s.Kind() == types.MethodVal {
			pass.Reportf(fn.Pos(),
				"method value passed to %s allocates per call; pass a package-level func(any) and a pooled argument", sel.Sel.Name)
		}
	}
}

func isSchedulerType(cfg AtCallConfig, t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return cfg.Schedulers[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}
