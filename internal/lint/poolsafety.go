package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolConfig parameterizes the poolsafety analyzer. PR 1 replaced the
// simulator's hot-path allocations with object pools (netsim events, ASIC
// PHVs and hop jobs, netproto packet buffers); every pool trades the
// garbage collector's safety net for three invariants the compiler cannot
// check. The analyzer enforces them syntactically:
//
//  1. no use after release — once a pooled value has been handed back, a
//     later use in the same statement sequence touches memory that may
//     already belong to an unrelated packet;
//  2. no double release — releasing twice corrupts the free list (the same
//     pointer handed out to two owners);
//  3. no retention — appending a pooled value to a slice or storing it in
//     a map inside the pool-owning packages keeps recycled memory
//     reachable, the exact bug class behind PR 1's digest-queue leak.
type PoolConfig struct {
	// Pooled is the set of pooled struct types, as "importpath.TypeName".
	Pooled map[string]bool

	// ReleaseMethods are method names that release their receiver
	// (e.g. Packet.Release).
	ReleaseMethods map[string]bool

	// ReleaseFuncs are function or method names that release a pooled
	// pointer argument (e.g. releasePHV, putJob, recycle).
	ReleaseFuncs map[string]bool

	// RetainScope lists import-path suffixes of the packages that operate
	// the pools; the retention check applies only there. Outside them,
	// holding a delivered packet is the receiver's right (see DESIGN.md
	// "Pooling invariants").
	RetainScope []string

	// AllowSinkSuffix names the free-list convention: append/map targets
	// whose identifier ends with this suffix (case-insensitive) are the
	// pools themselves and may retain pooled values.
	AllowSinkSuffix string
}

// DefaultPoolConfig matches the HyperTester repository's pools.
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{
		Pooled: map[string]bool{
			"github.com/hypertester/hypertester/internal/netproto.Packet": true,
			"github.com/hypertester/hypertester/internal/netsim.Event":    true,
			"github.com/hypertester/hypertester/internal/asic.PHV":        true,
			"github.com/hypertester/hypertester/internal/asic.pktJob":     true,
		},
		ReleaseMethods: map[string]bool{"Release": true},
		ReleaseFuncs:   map[string]bool{"releasePHV": true, "putJob": true, "recycle": true},
		RetainScope: []string{
			"internal/asic", "internal/netsim", "internal/netproto",
		},
		AllowSinkSuffix: "free",
	}
}

// PoolSafety builds the poolsafety analyzer for the given configuration.
func PoolSafety(cfg PoolConfig) *Analyzer {
	a := &Analyzer{
		Name: "poolsafety",
		Doc: "flags pooled objects (Packet/PHV/Event/pktJob) used after release, " +
			"released twice, or retained in slices/maps inside pool-owning packages",
	}
	a.Run = func(pass *Pass) error {
		ps := &poolState{pass: pass, cfg: cfg}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						ps.scanStmts(fn.Body.List, map[types.Object]token.Pos{})
					}
				case *ast.FuncLit:
					ps.scanStmts(fn.Body.List, map[types.Object]token.Pos{})
				}
				return true
			})
			if ps.inRetainScope() {
				ps.checkRetention(f)
			}
		}
		return nil
	}
	return a
}

type poolState struct {
	pass *Pass
	cfg  PoolConfig
}

func (ps *poolState) inRetainScope() bool {
	for _, sfx := range ps.cfg.RetainScope {
		if packagePathHasSuffix(ps.pass.Pkg.Path(), sfx) {
			return true
		}
	}
	return false
}

// isPooled reports whether t is (a pointer to) a configured pooled type.
func (ps *poolState) isPooled(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return ps.cfg.Pooled[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// releasedIdent returns the identifier whose pooled object call releases,
// or nil if call is not a release.
func (ps *poolState) releasedIdent(call *ast.CallExpr) *ast.Ident {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	// Receiver release: p.Release().
	if ps.cfg.ReleaseMethods[sel.Sel.Name] {
		if id, ok := sel.X.(*ast.Ident); ok && ps.isPooled(ps.pass.TypesInfo.TypeOf(id)) {
			return id
		}
	}
	// Argument release: sw.releasePHV(p), sw.putJob(j), s.recycle(e).
	if ps.cfg.ReleaseFuncs[sel.Sel.Name] {
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && ps.isPooled(ps.pass.TypesInfo.TypeOf(id)) {
				return id
			}
		}
	}
	return nil
}

// scanStmts walks one statement sequence tracking which pooled locals have
// been released. Nested control-flow blocks inherit a copy of the released
// set, so a release inside a branch never poisons the code after the
// branch — conservative by design: every report is a straight-line
// use-after-release.
func (ps *poolState) scanStmts(stmts []ast.Stmt, released map[types.Object]token.Pos) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id := ps.releasedIdent(call); id != nil {
					obj := ps.pass.TypesInfo.Uses[id]
					// Check the rest of the call (other args) first.
					for _, arg := range call.Args {
						if arg != id {
							ps.checkUses(arg, released)
						}
					}
					if obj != nil {
						if _, twice := released[obj]; twice {
							ps.pass.Reportf(call.Pos(), "pooled %s %q released twice", typeNameOf(ps.pass.TypesInfo.TypeOf(id)), id.Name)
						} else {
							released[obj] = call.Pos()
						}
					}
					continue
				}
			}
			ps.checkUses(s.X, released)
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				ps.checkUses(rhs, released)
			}
			for _, lhs := range s.Lhs {
				// A rebound identifier refers to a fresh object again.
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := ps.pass.TypesInfo.Uses[id]; obj != nil {
						delete(released, obj)
					}
					if obj := ps.pass.TypesInfo.Defs[id]; obj != nil {
						delete(released, obj)
					}
					continue
				}
				ps.checkUses(lhs, released)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				ps.scanStmts([]ast.Stmt{s.Init}, released)
			}
			ps.checkUses(s.Cond, released)
			ps.scanStmts(s.Body.List, copyReleased(released))
			if s.Else != nil {
				ps.scanStmts([]ast.Stmt{s.Else}, copyReleased(released))
			}
		case *ast.BlockStmt:
			ps.scanStmts(s.List, copyReleased(released))
		case *ast.ForStmt:
			ps.scanStmts(s.Body.List, copyReleased(released))
		case *ast.RangeStmt:
			ps.checkUses(s.X, released)
			ps.scanStmts(s.Body.List, copyReleased(released))
		case *ast.SwitchStmt:
			if s.Tag != nil {
				ps.checkUses(s.Tag, released)
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						ps.checkUses(e, released)
					}
					ps.scanStmts(cc.Body, copyReleased(released))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					ps.scanStmts(cc.Body, copyReleased(released))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					ps.scanStmts(cc.Body, copyReleased(released))
				}
			}
		case *ast.DeferStmt, *ast.GoStmt:
			// Runs later (or concurrently); their FuncLit bodies are
			// scanned independently by the file walk.
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				ps.checkUses(r, released)
			}
		default:
			ps.checkUses(stmt, released)
		}
	}
}

// checkUses reports any identifier inside n that refers to a released
// pooled object. It does not descend into function literals: those run at
// another time and are scanned as independent bodies.
func (ps *poolState) checkUses(n ast.Node, released map[types.Object]token.Pos) {
	if n == nil || len(released) == 0 {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		obj := ps.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if relPos, ok := released[obj]; ok {
			ps.pass.Reportf(id.Pos(), "pooled %s %q used after release at %v",
				typeNameOf(obj.Type()), id.Name, ps.pass.Fset.Position(relPos))
		}
		return true
	})
}

// checkRetention flags pooled values escaping into slices or maps outside
// the free-list convention.
func (ps *poolState) checkRetention(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			id, ok := s.Fun.(*ast.Ident)
			if !ok || id.Name != "append" || len(s.Args) < 2 {
				return true
			}
			if _, isBuiltin := ps.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if ps.allowedSink(s.Args[0]) {
				return true
			}
			for _, arg := range s.Args[1:] {
				if ps.isPooled(ps.pass.TypesInfo.TypeOf(arg)) {
					ps.pass.Reportf(arg.Pos(),
						"pooled %s retained by append into %s; pooled objects may only be retained by their free list",
						typeNameOf(ps.pass.TypesInfo.TypeOf(arg)), exprName(s.Args[0]))
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok || i >= len(s.Rhs) && len(s.Rhs) != 1 {
					continue
				}
				container := ps.pass.TypesInfo.TypeOf(idx.X)
				if container == nil {
					continue
				}
				if _, isMap := container.Underlying().(*types.Map); !isMap {
					continue
				}
				if ps.allowedSink(idx.X) {
					continue
				}
				rhs := s.Rhs[0]
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				}
				if ps.isPooled(ps.pass.TypesInfo.TypeOf(rhs)) {
					ps.pass.Reportf(rhs.Pos(),
						"pooled %s stored into map %s; pooled objects may only be retained by their free list",
						typeNameOf(ps.pass.TypesInfo.TypeOf(rhs)), exprName(idx.X))
				}
			}
		}
		return true
	})
}

// allowedSink reports whether the append/store target follows the
// free-list naming convention.
func (ps *poolState) allowedSink(e ast.Expr) bool {
	name := exprName(e)
	return strings.HasSuffix(strings.ToLower(name), strings.ToLower(ps.cfg.AllowSinkSuffix))
}

// exprName extracts a display identifier from a sink expression.
func exprName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.StarExpr:
		return exprName(x.X)
	case *ast.IndexExpr:
		return exprName(x.X)
	}
	return "<expr>"
}

func typeNameOf(t types.Type) string {
	if t == nil {
		return "value"
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func copyReleased(m map[types.Object]token.Pos) map[types.Object]token.Pos {
	c := make(map[types.Object]token.Pos, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}
