// Package poolsafety is the analyzer fixture: a miniature of the
// repository's object pools (netproto.Packet / asic.PHV / the switch free
// lists) with seeded violations of each pooling invariant. Lines carrying
// a `// want` comment must produce exactly that diagnostic; unannotated
// lines must stay silent.
package poolsafety

// Packet stands in for netproto.Packet.
type Packet struct{ Data []byte }

// Release returns the packet to its pool.
func (p *Packet) Release() {}

// PHV stands in for asic.PHV.
type PHV struct{ Pkt *Packet }

// Switch carries the pools and two illegal retention sinks.
type Switch struct {
	phvFree  []*PHV
	retained []*Packet
	byUID    map[uint64]*Packet
}

// releasePHV recycles p; appending to the free list is the one legal
// retention.
func (sw *Switch) releasePHV(p *PHV) {
	p.Pkt = nil
	sw.phvFree = append(sw.phvFree, p)
}

func useAfterRelease(p *Packet) {
	p.Release()
	_ = p.Data // want `used after release`
}

func doubleRelease(p *Packet) {
	p.Release()
	p.Release() // want `released twice`
}

func useAfterHelperRelease(sw *Switch, phv *PHV) {
	sw.releasePHV(phv)
	_ = phv.Pkt // want `used after release`
}

func releaseThenReturn(p *Packet) *Packet {
	p.Release()
	return p // want `used after release`
}

func retainInSlice(sw *Switch, p *Packet) {
	sw.retained = append(sw.retained, p) // want `retained by append`
}

func retainInMap(sw *Switch, p *Packet) {
	sw.byUID[7] = p // want `stored into map`
}

// branchRelease releases on one path only; using p afterwards is legal on
// the fall-through path, and the analyzer must not cry wolf.
func branchRelease(p *Packet, drop bool) {
	if drop {
		p.Release()
		return
	}
	_ = p.Data
}

// rebind re-acquires: after reassignment the identifier refers to a fresh
// object.
func rebind(p *Packet) {
	p.Release()
	p = &Packet{}
	_ = p.Data
}

// releaseOtherThenUse exercises precision: releasing one object must not
// poison its neighbours.
func releaseOtherThenUse(a, b *Packet) {
	a.Release()
	_ = b.Data
}

// suppressed shows the escape hatch: an owner may annotate an intentional
// retention with a reason.
func suppressed(sw *Switch, p *Packet) {
	//htlint:ignore poolsafety fixture demonstrates deliberate suppression
	sw.retained = append(sw.retained, p)
}
