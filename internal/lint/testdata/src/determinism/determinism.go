// Package determinism is the analyzer fixture: seeded wall-clock reads,
// global-RNG draws and map-order iteration that simulation code must never
// contain, next to the deterministic spellings that must stay silent.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `reads the wall clock`
}

func globalDraw() int {
	return rand.Intn(10) // want `unseeded global source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `unseeded global source`
}

// seededDraw is the blessed pattern: an explicit seeded source, as
// netsim.NewRNG builds.
func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// durationsOnly uses time's arithmetic types, which are deterministic and
// allowed.
func durationsOnly(d time.Duration) float64 {
	return d.Seconds()
}

func mapOrder(m map[int]int) []int {
	var out []int
	for k := range m { // want `range over map`
		out = append(out, k)
	}
	return out
}

// sortedOrder is the blessed pattern: collect keys, sort, then index.
func sortedOrder(m map[int]int, keys []int) []int {
	sort.Ints(keys)
	var out []int
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
