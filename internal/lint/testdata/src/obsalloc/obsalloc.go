// Package obsalloc is the analyzer fixture: a miniature obs.Trace plus the
// allocation-introducing patterns the fast-path cost contract bans, next to
// the idiomatic spellings that must stay quiet.
package obsalloc

import "fmt"

// Time mirrors netsim's virtual clock.
type Time int64

// Kind mirrors obs.Kind.
type Kind uint8

// Trace mirrors obs.Trace's emission surface.
type Trace struct{}

// Emit mirrors obs.Trace.Emit (nil-safe, zero-alloc when disabled).
func (t *Trace) Emit(at Time, k Kind, uid uint64, label string, arg, arg2 int64) {}

const labelGood = "good"

type dev struct {
	trace *Trace
	now   Time
	names map[int]string
	ports []int64
}

// good is the blessed shape: interned label, pre-materialized scalars,
// slice iteration.
func (d *dev) good(uid uint64, n int) {
	for _, p := range d.ports {
		d.trace.Emit(d.now, 1, uid, labelGood, p, int64(n))
	}
}

// describe is setup-time code: no Emit in scope, so closures and fmt are
// fine here.
func (d *dev) describe() func() string {
	return func() string { return fmt.Sprintf("dev-%d", len(d.names)) }
}

// goodNested keeps scopes separate: the emitting literal is its own fast
// path; the enclosing setup function is not tainted by it.
func (d *dev) goodNested() func(uint64) {
	name := fmt.Sprintf("lane-%d", 1) // setup-time formatting, allowed
	_ = name
	return func(uid uint64) {
		d.trace.Emit(d.now, 1, uid, labelGood, 0, 0)
	}
}

func (d *dev) badClosure(uid uint64) {
	f := func() int64 { return 1 } // want `function literal in a trace-emitting fast path`
	d.trace.Emit(d.now, 1, uid, labelGood, f(), 0)
}

func (d *dev) badFmt(uid uint64) {
	s := fmt.Sprintf("pkt-%d", uid) // want `fmt.Sprintf in a trace-emitting fast path`
	_ = s
	d.trace.Emit(d.now, 1, uid, labelGood, 0, 0)
}

func (d *dev) badMapRange(uid uint64) {
	for k := range d.names { // want `map iteration in a trace-emitting fast path`
		_ = k
	}
	d.trace.Emit(d.now, 1, uid, labelGood, 0, 0)
}

func (d *dev) badConcatLabel(uid uint64, name string) {
	d.trace.Emit(d.now, 1, uid, "t-"+name, 0, 0) // want `string concatenation as an Emit argument`
}

func (d *dev) badFmtLabel(uid uint64) {
	d.trace.Emit(d.now, 1, uid, fmt.Sprintf("u%d", uid), 0, 0) // want `fmt.Sprintf as an Emit argument` `fmt.Sprintf in a trace-emitting fast path`
}

func (d *dev) badEmitClosureArg(uid uint64) {
	d.trace.Emit(d.now, 1, uid, labelGood, func() int64 { return 2 }(), 0) // want `function literal in a trace-emitting fast path`
}

// numeric + in an Emit argument is plain arithmetic, not label building.
func (d *dev) goodNumericArith(uid uint64, a, b int64) {
	d.trace.Emit(d.now, 1, uid, labelGood, a+b, 0)
}
