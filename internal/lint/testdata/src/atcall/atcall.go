// Package atcall is the analyzer fixture: a miniature netsim.Sim with the
// zero-allocation scheduling APIs, plus the capturing spellings that
// defeat them.
package atcall

// Time and Duration mirror netsim's virtual-clock types.
type Time int64
type Duration int64

// Sim mirrors netsim.Sim's scheduling surface.
type Sim struct{}

// AtCall schedules fn(arg) without closure allocation.
func (s *Sim) AtCall(at Time, fn func(any), arg any) {}

// AfterCall schedules fn(arg) relative to now.
func (s *Sim) AfterCall(d Duration, fn func(any), arg any) {}

// At is the closure-friendly API; literals are fine here.
func (s *Sim) At(at Time, fn func()) {}

// runHop is the blessed trampoline shape.
func runHop(a any) {}

func good(s *Sim) {
	s.AtCall(0, runHop, nil)
	s.AfterCall(0, runHop, nil)
	s.At(0, func() {}) // At is allowed to take literals
}

func badLiteral(s *Sim, x int) {
	s.AtCall(0, func(any) { x++ }, nil) // want `function literal.*allocates a closure`
}

func badLiteralAfter(s *Sim) {
	s.AfterCall(0, func(any) {}, nil) // want `function literal.*allocates a closure`
}

type worker struct{ n int }

func (w *worker) step(any) { w.n++ }

func badMethodValue(s *Sim, w *worker) {
	s.AfterCall(0, w.step, nil) // want `method value.*allocates per call`
}
