package lint_test

import (
	"testing"

	"github.com/hypertester/hypertester/internal/lint"
)

// TestRepositoryIsLintClean is the guard the CI htlint step duplicates:
// the analyzer suite must report zero diagnostics over the whole module.
// A finding here means either a real invariant violation slipped in (fix
// it) or an intentional exception lacks its //htlint:ignore annotation
// (annotate it, with the reason).
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	diags, err := lint.Run("../..", []string{"./..."}, lint.DefaultAnalyzers())
	if err != nil {
		t.Fatalf("lint run failed: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("htlint must be clean on the repository; run `go run ./cmd/htlint ./...` locally")
	}
}
