package lint_test

import (
	"testing"

	"github.com/hypertester/hypertester/internal/lint"
	"github.com/hypertester/hypertester/internal/lint/linttest"
)

// The fixture configs mirror DefaultPoolConfig and friends but key on the
// fixture packages' own import paths, keeping the fixtures free of
// dependencies on the real simulator packages.

func TestPoolSafetyFixtures(t *testing.T) {
	a := lint.PoolSafety(lint.PoolConfig{
		Pooled: map[string]bool{
			"poolsafety.Packet": true,
			"poolsafety.PHV":    true,
		},
		ReleaseMethods:  map[string]bool{"Release": true},
		ReleaseFuncs:    map[string]bool{"releasePHV": true},
		RetainScope:     []string{"poolsafety"},
		AllowSinkSuffix: "free",
	})
	linttest.Run(t, linttest.Fixture(t, "poolsafety"), a)
}

func TestDeterminismFixtures(t *testing.T) {
	a := lint.Determinism(lint.DeterminismConfig{
		Packages: []string{"determinism"},
	})
	linttest.Run(t, linttest.Fixture(t, "determinism"), a)
}

func TestObsAllocFixtures(t *testing.T) {
	a := lint.ObsAlloc(lint.ObsAllocConfig{
		TraceTypes:  map[string]bool{"obsalloc.Trace": true},
		EmitMethods: map[string]bool{"Emit": true},
		BannedPkgs:  map[string]bool{"fmt": true},
	})
	linttest.Run(t, linttest.Fixture(t, "obsalloc"), a)
}

func TestAtCallFixtures(t *testing.T) {
	a := lint.AtCall(lint.AtCallConfig{
		Schedulers: map[string]bool{"atcall.Sim": true},
		Methods:    map[string]int{"AtCall": 1, "AfterCall": 1},
	})
	linttest.Run(t, linttest.Fixture(t, "atcall"), a)
}

// TestDeterminismOutOfScope proves the analyzer's package scoping: the
// same violations in a package outside the configured set produce no
// diagnostics (the CLI and bench harness legitimately read wall clocks).
func TestDeterminismOutOfScope(t *testing.T) {
	a := lint.Determinism(lint.DeterminismConfig{
		Packages: []string{"internal/netsim"},
	})
	pkg, err := lint.NewLoader().CheckFiles("determinism", linttest.Fixture(t, "determinism"),
		[]string{"determinism.go"})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced diagnostics: %v", diags)
	}
}
