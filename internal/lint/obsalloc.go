package lint

import (
	"go/ast"
	"go/types"
)

// ObsAllocConfig parameterizes the obsalloc analyzer. The observability
// layer's cost contract (internal/obs package doc) is that a disabled trace
// stream costs one branch per callsite and zero allocations: every function
// that emits trace records is hot-path code executed per packet. This
// analyzer bans the patterns that silently break that contract — closures,
// fmt calls, and map iteration inside emitting functions, and
// per-call-materialized arguments (string concatenation, formatting calls,
// function literals) at the emission callsites themselves.
type ObsAllocConfig struct {
	// TraceTypes are the trace-stream types whose emission methods mark a
	// function as fast-path code, as "importpath.TypeName".
	TraceTypes map[string]bool

	// EmitMethods names the emission entry points on those types.
	EmitMethods map[string]bool

	// BannedPkgs are packages whose calls allocate per invocation (fmt's
	// interface boxing and buffer growth); calling into them from a
	// fast-path function, or in an emission argument, is reported.
	BannedPkgs map[string]bool
}

// DefaultObsAllocConfig covers obs.Trace.Emit.
func DefaultObsAllocConfig() ObsAllocConfig {
	return ObsAllocConfig{
		TraceTypes: map[string]bool{
			"github.com/hypertester/hypertester/internal/obs.Trace": true,
		},
		EmitMethods: map[string]bool{"Emit": true},
		BannedPkgs:  map[string]bool{"fmt": true},
	}
}

// ObsAlloc builds the obsalloc analyzer for the given configuration.
func ObsAlloc(cfg ObsAllocConfig) *Analyzer {
	a := &Analyzer{
		Name: "obsalloc",
		Doc: "flags allocation-introducing patterns in observability fast paths: closures, " +
			"fmt calls and map iteration inside trace-emitting functions, and per-call " +
			"label/argument construction at Emit callsites",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				default:
					return true
				}
				if body == nil {
					return true
				}
				checkObsScope(pass, cfg, body)
				return true
			})
		}
		return nil
	}
	return a
}

// checkObsScope inspects one function body. Nested function literals are
// separate scopes: they are skipped here (each gets its own visit from the
// outer Inspect), except that a literal appearing inside a fast-path scope
// is itself a finding.
func checkObsScope(pass *Pass, cfg ObsAllocConfig, body *ast.BlockStmt) {
	fast := false
	walkDirect(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && isTraceEmit(pass, cfg, call) {
			fast = true
			checkEmitArgs(pass, cfg, call)
		}
	})
	if !fast {
		return
	}
	walkDirect(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"function literal in a trace-emitting fast path allocates a closure per packet; hoist it to a package-level func")
		case *ast.CallExpr:
			if pkg, name, ok := pkgCall(pass, n); ok && cfg.BannedPkgs[pkg] {
				pass.Reportf(n.Pos(),
					"%s.%s in a trace-emitting fast path allocates per packet; precompute or intern the value", pkg, name)
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"map iteration in a trace-emitting fast path has nondeterministic order and hashes per packet; use a slice")
				}
			}
		}
	})
}

// checkEmitArgs vets one emission callsite: arguments must be
// pre-materialized scalars or interned strings, never built per call.
func checkEmitArgs(pass *Pass, cfg ObsAllocConfig, call *ast.CallExpr) {
	for _, arg := range call.Args {
		switch a := arg.(type) {
		case *ast.FuncLit:
			pass.Reportf(a.Pos(), "function literal as an Emit argument allocates per packet")
		case *ast.BinaryExpr:
			if t := pass.TypesInfo.TypeOf(a); t != nil {
				if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
					pass.Reportf(a.Pos(),
						"string concatenation as an Emit argument builds a label per packet; pass an interned constant")
				}
			}
		case *ast.CallExpr:
			if pkg, name, ok := pkgCall(pass, a); ok && cfg.BannedPkgs[pkg] {
				pass.Reportf(a.Pos(),
					"%s.%s as an Emit argument allocates per packet; pass an interned constant", pkg, name)
			}
		}
	}
}

// walkDirect visits every node of body that belongs to the enclosing
// function itself, treating nested function literals as opaque: the literal
// node is visited, its body is not.
func walkDirect(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		fn(n)
		_, nested := n.(*ast.FuncLit)
		return !nested
	})
}

// isTraceEmit reports whether call is an emission method on a configured
// trace type.
func isTraceEmit(pass *Pass, cfg ObsAllocConfig, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !cfg.EmitMethods[sel.Sel.Name] {
		return false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return cfg.TraceTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// pkgCall resolves a call of the form pkg.Fn and returns the package path
// and function name.
func pkgCall(pass *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
