// Package lint is a self-contained static-analysis framework for the
// HyperTester repository, modelled on golang.org/x/tools/go/analysis but
// built entirely on the standard library (the build environment carries no
// third-party modules). It provides:
//
//   - an Analyzer/Pass/Diagnostic API mirroring go/analysis, so the
//     analyzers port to the x/tools multichecker unchanged if that
//     dependency ever becomes available;
//   - a package loader (load.go) that type-checks the module's packages —
//     and, transitively, their standard-library dependencies — from source
//     using go/parser and go/types, with `go list -deps -json` supplying
//     the file sets in topological order;
//   - a driver (driver.go) that runs analyzer suites over loaded packages
//     and supports targeted `//htlint:ignore <analyzer> <reason>`
//     suppression comments;
//   - the HyperTester-specific analyzers: poolsafety, determinism, atcall.
//
// cmd/htlint is the command-line entry point; internal/lint/linttest runs
// analyzers over `// want`-annotated fixtures in the style of
// go/analysis/analysistest.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //htlint:ignore comments. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description printed by `htlint -help`.
	Doc string

	// Run applies the analyzer to one package, reporting findings
	// through pass.Report. It returns an error only for analysis
	// malfunctions, never for findings.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives each diagnostic; installed by the driver.
	report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}
