package lint

import (
	"sort"
	"strings"
)

// Run loads the packages matched by patterns (relative to dir) and applies
// every analyzer to each, returning the surviving diagnostics sorted by
// position. Diagnostics suppressed by an `//htlint:ignore <analyzer>
// <reason>` comment on the same line — or the line immediately above — are
// dropped.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := NewLoader().Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

// RunPackage applies the analyzers to one loaded package and filters
// suppressed diagnostics.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores := collectIgnores(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			report: func(d Diagnostic) {
				if !ignores.matches(d) {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ignoreKey addresses one suppression: a (file, line, analyzer) triple.
// Analyzer "*" suppresses every analyzer on that line.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

type ignoreSet map[ignoreKey]bool

// matches reports whether d is covered by a suppression on its own line or
// the line above (the comment-above-the-statement style).
func (s ignoreSet) matches(d Diagnostic) bool {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if s[ignoreKey{d.Pos.Filename, line, d.Analyzer}] ||
			s[ignoreKey{d.Pos.Filename, line, "*"}] {
			return true
		}
	}
	return false
}

// collectIgnores scans a package's comments for //htlint:ignore directives.
func collectIgnores(pkg *Package) ignoreSet {
	s := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//htlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				s[ignoreKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return s
}

// packagePathHasSuffix reports whether pkgPath equals suffix or ends with
// "/"+suffix. Analyzers use it to scope rules to packages without
// hard-coding the module path, which keeps fixtures relocatable.
func packagePathHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}
