package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File

	Types     *types.Package
	TypesInfo *types.Info
}

// Loader type-checks packages from source. It shells out to `go list` for
// build-context resolution (file sets, topological dependency order) and
// uses go/parser + go/types for everything else, so it needs no compiled
// export data and no third-party modules. Loaded dependencies are cached,
// making repeated Load calls (e.g. across fixture tests) cheap.
//
// The loader analyzes GoFiles only — _test.go files are out of scope, as
// are cgo-built files (it forces CGO_ENABLED=0 so `go list` selects the
// pure-Go file sets).
type Loader struct {
	fset  *token.FileSet
	types map[string]*types.Package // completed type-check, by import path
	meta  map[string]*listedPackage
}

// NewLoader returns an empty loader with a fresh FileSet.
func NewLoader() *Loader {
	return &Loader{
		fset:  token.NewFileSet(),
		types: map[string]*types.Package{},
		meta:  map[string]*listedPackage{},
	}
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (as `go list` resolves
// them, relative to dir) plus all their dependencies, and returns the
// matched packages with full syntax and type information, sorted by import
// path.
func (ld *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	matched, err := ld.list(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range matched {
		pkg, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// list runs `go list -deps -json` and registers every listed package's
// metadata, returning the ones directly matched by the patterns.
func (ld *Loader) list(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Pure-Go file sets: the type checker cannot process cgo.
	cmd.Env = append(cmd.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	var matched []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s", lp.Error.Err)
		}
		if _, ok := ld.meta[lp.ImportPath]; !ok {
			ld.meta[lp.ImportPath] = lp
		}
		if !lp.DepOnly {
			matched = append(matched, lp)
		}
	}
	return matched, nil
}

// check type-checks one listed package, recursively checking dependencies
// first (go list's -deps order guarantees their metadata is registered).
func (ld *Loader) check(lp *listedPackage) (*Package, error) {
	files, err := ld.parseFiles(lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := ld.typeCheck(lp.ImportPath, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:      lp.ImportPath,
		Name:      lp.Name,
		Dir:       lp.Dir,
		Fset:      ld.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// CheckFiles parses and type-checks an ad-hoc set of files as one package
// under the given synthetic import path. Imports resolve against the
// loader's cache; standard-library imports are listed and checked on
// demand. linttest uses this to load `testdata` fixtures, which `go list`
// pattern matching deliberately ignores.
func (ld *Loader) CheckFiles(importPath, dir string, filenames []string) (*Package, error) {
	files, err := ld.parseFiles(dir, filenames)
	if err != nil {
		return nil, err
	}
	// Resolve fixture imports up front so typeCheck's importer finds them.
	for _, f := range files {
		for _, imp := range f.Imports {
			path := importPathOf(imp)
			if path == "unsafe" || ld.types[path] != nil {
				continue
			}
			if _, ok := ld.meta[path]; !ok {
				if _, err := ld.list(dir, []string{path}); err != nil {
					return nil, err
				}
			}
		}
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := ld.config()
	tpkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	return &Package{
		Path:      importPath,
		Name:      name,
		Dir:       dir,
		Fset:      ld.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

func (ld *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck resolves one import path to a *types.Package, checking it from
// source on first use. Dependency packages are checked without retaining
// per-node type information.
func (ld *Loader) typeCheck(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tpkg, ok := ld.types[path]; ok && files == nil {
		return tpkg, nil
	}
	if files == nil {
		lp, ok := ld.meta[path]
		if !ok {
			return nil, fmt.Errorf("lint: import %q not listed", path)
		}
		parsed, err := ld.parseFiles(lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		files = parsed
	}
	conf := ld.config()
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	ld.types[path] = tpkg
	return tpkg, nil
}

// config builds a types.Config whose importer resolves through the loader.
func (ld *Loader) config() types.Config {
	return types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return ld.typeCheck(path, nil, nil)
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
		// The standard library occasionally needs this for packages
		// that use the FakeImportC escape hatch; harmless otherwise.
		FakeImportC: true,
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func importPathOf(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	return s[1 : len(s)-1]
}
