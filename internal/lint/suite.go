package lint

// DefaultAnalyzers returns the full HyperTester analyzer suite with the
// repository's configuration — the set cmd/htlint and the clean-repo guard
// test run.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		PoolSafety(DefaultPoolConfig()),
		Determinism(DefaultDeterminismConfig()),
		AtCall(DefaultAtCallConfig()),
		ObsAlloc(DefaultObsAllocConfig()),
	}
}
