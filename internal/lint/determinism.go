package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismConfig parameterizes the determinism analyzer: the simulator
// promises bit-for-bit reproducible runs (same seed, same machine count,
// same results — the property the parallel experiment runner's -race test
// asserts), which only holds if simulation code never consults wall-clock
// time, never draws from a shared global RNG, and never lets Go's
// randomized map iteration order influence event order or output.
type DeterminismConfig struct {
	// Packages are import-path suffixes the rules apply to (simulation
	// core packages). Elsewhere — the CLI, the bench harness — wall
	// clocks are legitimate.
	Packages []string
}

// DefaultDeterminismConfig covers HyperTester's simulation core.
func DefaultDeterminismConfig() DeterminismConfig {
	return DeterminismConfig{Packages: []string{
		"internal/asic", "internal/netsim", "internal/experiments",
		"internal/scenario",
	}}
}

// globalRandFuncs are the math/rand (and v2) package-level functions backed
// by the shared global source. Constructing explicit seeded sources
// (New, NewSource, NewPCG, NewChaCha8, NewZipf) stays allowed: that is
// exactly what netsim.NewRNG does.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true, "N": true,
}

// wallClockFuncs are the time functions that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// Determinism builds the determinism analyzer for the given configuration.
func Determinism(cfg DeterminismConfig) *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc: "forbids wall-clock reads (time.Now), global-source math/rand calls, and " +
			"map-iteration-order dependence inside the simulation core packages",
	}
	a.Run = func(pass *Pass) error {
		inScope := false
		for _, sfx := range cfg.Packages {
			if packagePathHasSuffix(pass.Pkg.Path(), sfx) {
				inScope = true
				break
			}
		}
		if !inScope {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.CallExpr:
					checkDeterministicCall(pass, s)
				case *ast.RangeStmt:
					if t := pass.TypesInfo.TypeOf(s.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(s.Pos(),
								"range over map: iteration order is randomized and breaks run-to-run determinism; iterate a sorted key slice instead")
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkDeterministicCall flags time.Now/Since/Until and global math/rand
// draws.
func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; simulation code must use the virtual clock (netsim.Sim.Now)", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the unseeded global source; derive a stream with netsim.NewRNG (or rand.New with an explicit seed)", sel.Sel.Name)
		}
	}
}
