package lint

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// Checker is one named check a Tool can run: a Go-package analyzer
// (htlint) or a whole-corpus verification pass (htverify). Run returns
// the findings as printable lines; a non-nil error is an internal
// failure, not a finding.
type Checker struct {
	Name string
	Doc  string
	Run  func(dir string, args []string) ([]string, error)
}

// Tool is the shared multichecker driver behind cmd/htlint and
// cmd/htverify: flag parsing (-list, -dir), finding output, and the
// exit-code contract — 0 clean, 1 findings, 2 usage or internal error.
type Tool struct {
	Name     string
	Doc      string
	Checkers []Checker
	Stdout   io.Writer // defaults to os.Stdout
	Stderr   io.Writer // defaults to os.Stderr
}

// Main runs the tool over argv (without the program name) and returns
// the process exit code.
func (t *Tool) Main(argv []string) int {
	stdout, stderr := t.Stdout, t.Stderr
	if stdout == nil {
		stdout = os.Stdout
	}
	if stderr == nil {
		stderr = os.Stderr
	}
	fs := flag.NewFlagSet(t.Name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s [flags] [patterns]\n%s\n", t.Name, t.Doc)
		fs.PrintDefaults()
	}
	list := fs.Bool("list", false, "describe the checkers and exit")
	dir := fs.String("dir", ".", "directory to resolve patterns from")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, c := range t.Checkers {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	findings := 0
	for _, c := range t.Checkers {
		lines, err := c.Run(*dir, fs.Args())
		if err != nil {
			fmt.Fprintf(stderr, "%s: %s: %v\n", t.Name, c.Name, err)
			return 2
		}
		for _, l := range lines {
			fmt.Fprintln(stdout, l)
		}
		findings += len(lines)
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "%s: %d finding(s)\n", t.Name, findings)
		return 1
	}
	return 0
}

// AnalyzerCheckers adapts Go-package analyzers to Tool checkers. The
// package load is shared across the checkers of one Main run, so the
// multichecker parses and type-checks each package once.
func AnalyzerCheckers(analyzers []*Analyzer) []Checker {
	type loaded struct {
		pkgs []*Package
		err  error
	}
	cache := map[string]*loaded{}
	load := func(dir string, patterns []string) ([]*Package, error) {
		key := dir + "\x00" + strings.Join(patterns, "\x00")
		if l, ok := cache[key]; ok {
			return l.pkgs, l.err
		}
		pkgs, err := NewLoader().Load(dir, patterns...)
		cache[key] = &loaded{pkgs: pkgs, err: err}
		return pkgs, err
	}
	out := make([]Checker, 0, len(analyzers))
	for _, a := range analyzers {
		a := a
		out = append(out, Checker{
			Name: a.Name,
			Doc:  a.Doc,
			Run: func(dir string, args []string) ([]string, error) {
				patterns := args
				if len(patterns) == 0 {
					patterns = []string{"./..."}
				}
				pkgs, err := load(dir, patterns)
				if err != nil {
					return nil, err
				}
				var lines []string
				for _, pkg := range pkgs {
					diags, err := RunPackage(pkg, []*Analyzer{a})
					if err != nil {
						return nil, err
					}
					for _, d := range diags {
						lines = append(lines, d.String())
					}
				}
				return lines, nil
			},
		})
	}
	return out
}
