package p4ir

import "fmt"

// Resources is the per-program usage across the seven hardware resource
// classes the paper's Table 7 reports.
type Resources struct {
	CrossbarBytes int     // match crossbar input bytes
	SRAMBlocks    float64 // 16 KB SRAM blocks
	TCAMBlocks    float64 // 44b x 512 TCAM blocks
	VLIWSlots     int     // VLIW instruction slots
	HashBits      int     // hash-distribution-unit bits
	SALUs         int     // stateful ALUs
	Gateways      int     // gateway (condition) resources
}

// Add accumulates other into r.
func (r *Resources) Add(other Resources) {
	r.CrossbarBytes += other.CrossbarBytes
	r.SRAMBlocks += other.SRAMBlocks
	r.TCAMBlocks += other.TCAMBlocks
	r.VLIWSlots += other.VLIWSlots
	r.HashBits += other.HashBits
	r.SALUs += other.SALUs
	r.Gateways += other.Gateways
}

// RMT-style accounting constants.
const (
	sramBlockBits   = 16 * 1024 * 8 // one 16 KB SRAM block
	tcamBlockBits   = 44 * 512      // one TCAM block
	exactOverheadB  = 4 * 8         // per-entry pointer/version overhead bits
	actionEntryBits = 64            // action data bits per entry (typical)
)

func ceilDiv(a, b int) float64 {
	if a <= 0 {
		return 0
	}
	return float64((a + b - 1) / b)
}

// Estimate computes the resource usage of a program.
func Estimate(p *Program) Resources {
	var r Resources

	for _, t := range p.Tables {
		r.Add(TableCost(p, t))
	}

	for _, reg := range p.Registers {
		r.Add(RegisterCost(reg))
	}

	var walk func(stmts []ControlStmt)
	walk = func(stmts []ControlStmt) {
		for _, s := range stmts {
			if s.If != "" {
				r.Gateways++
			}
			walk(s.Then)
			walk(s.Else)
		}
	}
	walk(p.Ingress)
	walk(p.Egress)
	return r
}

// TableCost prices one table declaration: match memory and crossbar input
// plus its actions' VLIW/SALU/hash usage. The IR verifier uses the same
// accounting to place tables into stages, so totals (Estimate) and the
// per-stage placement always agree.
func TableCost(p *Program, t *TableDef) Resources {
	var r Resources
	keyBits := 0
	for _, k := range t.Keys {
		keyBits += k.Bits
	}
	keyBytes := (keyBits + 7) / 8
	size := t.Size
	if size == 0 {
		size = 1
	}
	switch t.Match {
	case MatchExact:
		r.CrossbarBytes += keyBytes
		// Exact match: hashed ways; entry = key + overhead + action data.
		entryBits := keyBits + exactOverheadB + actionEntryBits
		r.SRAMBlocks += ceilDiv(entryBits*size, sramBlockBits)
		r.HashBits += keyBits // hash distribution over the key
	case MatchTernary:
		r.CrossbarBytes += keyBytes
		entryBits := keyBits * 2 // value+mask
		r.TCAMBlocks += ceilDiv(entryBits*size, tcamBlockBits)
		r.SRAMBlocks += ceilDiv(actionEntryBits*size, sramBlockBits)
	case MatchRange:
		r.CrossbarBytes += keyBytes
		// Range expansion: a [lo,hi] entry expands to up to 2w-2
		// prefixes; price 4x TCAM per entry as the compiler does.
		entryBits := keyBits * 2 * 4
		r.TCAMBlocks += ceilDiv(entryBits*size, tcamBlockBits)
		r.SRAMBlocks += ceilDiv(actionEntryBits*size, sramBlockBits)
	}
	for _, an := range t.Actions {
		if a := p.action(an); a != nil {
			r.Add(actionResources(p, a))
		}
	}
	return r
}

// RegisterCost prices one register array's SRAM footprint.
func RegisterCost(reg *RegisterDef) Resources {
	return Resources{SRAMBlocks: ceilDiv(reg.Width*reg.Size, sramBlockBits)}
}

// actionResources prices one compound action.
func actionResources(p *Program, a *ActionDef) Resources {
	var r Resources
	for _, op := range a.Ops {
		switch op.Kind {
		case OpModifyField, OpAddToField, OpMulticast, OpDropPacket:
			r.VLIWSlots++
		case OpRegisterRead, OpRegisterWrite, OpRegisterRMW:
			r.VLIWSlots++
			r.SALUs++
			if reg := p.register(op.Dst); reg != nil {
				// Index hash feeding the SALU.
				r.HashBits += 16
			}
		case OpHash:
			r.VLIWSlots++
			r.HashBits += op.Bits
		case OpRandom:
			r.VLIWSlots++
			r.HashBits += op.Bits // RNG shares the hash/dist units
		case OpGenerateDigest:
			r.VLIWSlots++
		case OpRecirculate:
			r.VLIWSlots++
		case OpNoOp:
		}
	}
	return r
}

// SwitchP4Baseline is the absolute resource usage of the reference switch.p4
// program on a Tofino-class chip, used to normalize Table 7. The values are
// calibrated estimates from the public switch.p4 resource reports: switch.p4
// is a large stateless forwarding program, so it is heavy on crossbar, SRAM,
// TCAM and VLIW but light on SALUs (the paper notes exactly this when
// explaining why distinct/reduce SALU percentages look large).
var SwitchP4Baseline = Resources{
	CrossbarBytes: 800,
	SRAMBlocks:    593,
	TCAMBlocks:    186,
	VLIWSlots:     355,
	HashBits:      1630,
	SALUs:         18,
	Gateways:      70,
}

// NormalizedBy returns r as percentages of base, column by column.
type Normalized struct {
	Crossbar, SRAM, TCAM, VLIW, HashBits, SALU, Gateway float64
}

// Normalize divides r by base and returns percentages (0–100).
func (r Resources) Normalize(base Resources) Normalized {
	pct := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return 100 * a / b
	}
	return Normalized{
		Crossbar: pct(float64(r.CrossbarBytes), float64(base.CrossbarBytes)),
		SRAM:     pct(r.SRAMBlocks, base.SRAMBlocks),
		TCAM:     pct(r.TCAMBlocks, base.TCAMBlocks),
		VLIW:     pct(float64(r.VLIWSlots), float64(base.VLIWSlots)),
		HashBits: pct(float64(r.HashBits), float64(base.HashBits)),
		SALU:     pct(float64(r.SALUs), float64(base.SALUs)),
		Gateway:  pct(float64(r.Gateways), float64(base.Gateways)),
	}
}

func (n Normalized) String() string {
	return fmt.Sprintf("xbar=%.2f%% sram=%.2f%% tcam=%.2f%% vliw=%.2f%% hash=%.2f%% salu=%.2f%% gw=%.2f%%",
		n.Crossbar, n.SRAM, n.TCAM, n.VLIW, n.HashBits, n.SALU, n.Gateway)
}
