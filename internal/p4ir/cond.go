package p4ir

import (
	"fmt"
	"strconv"
	"strings"
)

// This file gives gateway condition strings a structured form. The
// generator emits conditions from a tiny grammar — `true`, or ` and `-joined
// comparisons of one field against a numeric constant — and the symbolic
// verifier (internal/verify) needs to reason about them: build path
// conditions, negate branches, and decide satisfiability. Conditions
// outside the grammar stay opaque strings; ParseCond reports them so the
// verifier can treat the branch conservatively.

// CmpOp is a comparison operator in a gateway condition.
type CmpOp string

// Comparison operators, spelled the way the generator prints them.
const (
	CmpEq CmpOp = "=="
	CmpNe CmpOp = "!="
	CmpLt CmpOp = "<"
	CmpLe CmpOp = "<="
	CmpGt CmpOp = ">"
	CmpGe CmpOp = ">="
)

// Negate returns the complementary operator.
func (o CmpOp) Negate() CmpOp {
	switch o {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpLe:
		return CmpGt
	case CmpGt:
		return CmpLe
	case CmpGe:
		return CmpLt
	}
	return o
}

// Eval applies the operator to concrete operands.
func (o CmpOp) Eval(a, b uint64) bool {
	switch o {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	case CmpGe:
		return a >= b
	}
	return false
}

// Atom is one comparison of a field against a constant.
type Atom struct {
	Field string
	Op    CmpOp
	Value uint64
}

// Negate returns the atom's complement.
func (a Atom) Negate() Atom {
	return Atom{Field: a.Field, Op: a.Op.Negate(), Value: a.Value}
}

func (a Atom) String() string {
	return fmt.Sprintf("%s %s %d", a.Field, a.Op, a.Value)
}

// Cond is a conjunction of atoms. The empty conjunction is `true`.
type Cond struct {
	Atoms []Atom
}

func (c Cond) String() string {
	if len(c.Atoms) == 0 {
		return "true"
	}
	parts := make([]string, len(c.Atoms))
	for i, a := range c.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, " and ")
}

// ParseCond parses a gateway condition string. ok is false when the string
// falls outside the generator's grammar (`true`, or ` and `-joined
// `field op constant` comparisons); callers must then treat the condition
// as opaque.
func ParseCond(s string) (Cond, bool) {
	s = strings.TrimSpace(s)
	if s == "" || s == "true" {
		return Cond{}, true
	}
	var c Cond
	for _, part := range strings.Split(s, " and ") {
		a, ok := parseAtom(part)
		if !ok {
			return Cond{}, false
		}
		c.Atoms = append(c.Atoms, a)
	}
	return c, true
}

func parseAtom(s string) (Atom, bool) {
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return Atom{}, false
	}
	op := CmpOp(fields[1])
	switch op {
	case CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe:
	default:
		return Atom{}, false
	}
	v, err := strconv.ParseUint(fields[2], 0, 64)
	if err != nil {
		return Atom{}, false
	}
	return Atom{Field: fields[0], Op: op, Value: v}, true
}
