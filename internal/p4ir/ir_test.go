package p4ir

import (
	"strings"
	"testing"
)

func sampleProgram() *Program {
	p := &Program{Name: "sample", Headers: []string{"ethernet", "ipv4", "tcp"}}
	p.AddRegister(&RegisterDef{Name: "pkt_id", Width: 32, Size: 16})
	p.AddAction(&ActionDef{Name: "set_port", Ops: []Op{
		{Kind: OpModifyField, Dst: "tcp.dport", Src: "80", Bits: 16},
	}})
	p.AddAction(&ActionDef{Name: "bump", Ops: []Op{
		{Kind: OpRegisterRMW, Dst: "pkt_id", Src: "+1", Bits: 32},
	}})
	p.AddTable(&TableDef{
		Name: "editor", Pipeline: PipeEgress, Match: MatchExact,
		Keys:    []KeyDef{{Field: "pkt_id_val", Bits: 32}},
		Actions: []string{"set_port", "bump"},
		Size:    128,
	})
	p.Egress = []ControlStmt{
		{If: "valid(tcp)", Then: []ControlStmt{{Apply: "editor"}}},
	}
	return p
}

func TestValidateOK(t *testing.T) {
	if err := sampleProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateUnknownAction(t *testing.T) {
	p := sampleProgram()
	p.Tables[0].Actions = append(p.Tables[0].Actions, "ghost")
	if err := p.Validate(); err == nil {
		t.Fatal("unknown action accepted")
	}
}

func TestValidateUnknownTableInControl(t *testing.T) {
	p := sampleProgram()
	p.Ingress = []ControlStmt{{Apply: "missing"}}
	if err := p.Validate(); err == nil {
		t.Fatal("unknown table apply accepted")
	}
}

func TestValidateNestedControl(t *testing.T) {
	p := sampleProgram()
	p.Ingress = []ControlStmt{{If: "x", Then: []ControlStmt{{If: "y", Else: []ControlStmt{{Apply: "nope"}}}}}}
	if err := p.Validate(); err == nil {
		t.Fatal("nested unknown table accepted")
	}
}

func TestEstimateComponents(t *testing.T) {
	p := sampleProgram()
	r := Estimate(p)
	if r.CrossbarBytes != 4 {
		t.Errorf("crossbar = %d, want 4 (32-bit key)", r.CrossbarBytes)
	}
	if r.SALUs != 1 {
		t.Errorf("SALUs = %d, want 1 (one register RMW)", r.SALUs)
	}
	if r.VLIWSlots != 2 {
		t.Errorf("VLIW = %d, want 2", r.VLIWSlots)
	}
	if r.Gateways != 1 {
		t.Errorf("gateways = %d, want 1", r.Gateways)
	}
	if r.SRAMBlocks <= 0 {
		t.Errorf("SRAM = %v, want > 0", r.SRAMBlocks)
	}
	if r.TCAMBlocks != 0 {
		t.Errorf("TCAM = %v, want 0 (no ternary)", r.TCAMBlocks)
	}
}

func TestEstimateTernaryUsesTCAM(t *testing.T) {
	p := &Program{Name: "acl"}
	p.AddAction(&ActionDef{Name: "drop_it", Ops: []Op{{Kind: OpDropPacket}}})
	p.AddTable(&TableDef{
		Name: "acl", Match: MatchTernary,
		Keys:    []KeyDef{{Field: "ipv4.dip", Bits: 32}},
		Actions: []string{"drop_it"}, Size: 1024,
	})
	r := Estimate(p)
	if r.TCAMBlocks <= 0 {
		t.Fatal("ternary table used no TCAM")
	}
}

func TestEstimateRangeCostsMoreTCAM(t *testing.T) {
	mk := func(kind MatchKind) Resources {
		p := &Program{}
		p.AddAction(&ActionDef{Name: "a", Ops: []Op{{Kind: OpNoOp}}})
		p.AddTable(&TableDef{Name: "t", Match: kind,
			Keys: []KeyDef{{Field: "f", Bits: 16}}, Actions: []string{"a"}, Size: 4096})
		return Estimate(p)
	}
	if mk(MatchRange).TCAMBlocks <= mk(MatchTernary).TCAMBlocks {
		t.Fatal("range expansion should cost more TCAM than plain ternary")
	}
}

func TestEstimateAdditive(t *testing.T) {
	p := sampleProgram()
	single := Estimate(p)
	// Duplicate every table/action/register under new names: usage doubles.
	p2 := sampleProgram()
	p2.AddRegister(&RegisterDef{Name: "pkt_id2", Width: 32, Size: 16})
	p2.AddAction(&ActionDef{Name: "set_port2", Ops: []Op{{Kind: OpModifyField, Dst: "d", Src: "s", Bits: 16}}})
	p2.AddAction(&ActionDef{Name: "bump2", Ops: []Op{{Kind: OpRegisterRMW, Dst: "pkt_id2", Src: "+1", Bits: 32}}})
	p2.AddTable(&TableDef{Name: "editor2", Match: MatchExact,
		Keys: []KeyDef{{Field: "k", Bits: 32}}, Actions: []string{"set_port2", "bump2"}, Size: 128})
	p2.Egress = append(p2.Egress, ControlStmt{If: "valid(tcp)", Then: []ControlStmt{{Apply: "editor2"}}})
	double := Estimate(p2)
	if double.SALUs != 2*single.SALUs || double.VLIWSlots != 2*single.VLIWSlots ||
		double.Gateways != 2*single.Gateways {
		t.Fatalf("estimate not additive: %+v vs %+v", single, double)
	}
}

func TestNormalize(t *testing.T) {
	r := Resources{CrossbarBytes: 8, SRAMBlocks: 5.93, SALUs: 1, Gateways: 1}
	n := r.Normalize(SwitchP4Baseline)
	if n.Crossbar != 100*8.0/800 {
		t.Fatalf("crossbar pct = %v", n.Crossbar)
	}
	if n.SALU < 5.5 || n.SALU > 5.6 {
		t.Fatalf("salu pct = %v, want ~5.56 (1 of 18)", n.SALU)
	}
	if n.TCAM != 0 {
		t.Fatalf("tcam pct = %v", n.TCAM)
	}
	if !strings.Contains(n.String(), "salu=") {
		t.Fatal("String format")
	}
}

func TestNormalizeZeroBase(t *testing.T) {
	n := Resources{CrossbarBytes: 5}.Normalize(Resources{})
	if n.Crossbar != 0 {
		t.Fatal("division by zero base must yield 0")
	}
}

func TestPrintAndCountedLoC(t *testing.T) {
	p := sampleProgram()
	src := Print(p)
	for _, want := range []string{"table editor", "action set_port", "control egress",
		"apply(editor);", "register pkt_id", "if (valid(tcp))"} {
		if !strings.Contains(src, want) {
			t.Errorf("printed source missing %q", want)
		}
	}
	loc := CountedLoC(p)
	if loc < 15 || loc > 40 {
		t.Fatalf("counted LoC = %d, expected a small table/action/control count", loc)
	}
	// Parser lines must not be counted.
	srcLines := strings.Count(src, "\n")
	if loc >= srcLines {
		t.Fatal("CountedLoC should exclude parser/blank/comment lines")
	}
}

func TestCountedLoCGrowsWithProgram(t *testing.T) {
	p := sampleProgram()
	base := CountedLoC(p)
	p.AddAction(&ActionDef{Name: "extra", Ops: []Op{{Kind: OpNoOp}}})
	p.AddTable(&TableDef{Name: "t2", Match: MatchExact,
		Keys: []KeyDef{{Field: "x", Bits: 8}}, Actions: []string{"extra"}, Size: 1})
	if CountedLoC(p) <= base {
		t.Fatal("LoC did not grow with added table")
	}
}

func TestPrintP416(t *testing.T) {
	p := sampleProgram()
	src := PrintP416(p)
	for _, want := range []string{
		"#include <tna.p4>", "Register<bit<32>, bit<32>>(16) pkt_id;",
		"control Ingress", "control Egress", "table editor",
		"editor.apply();", "if (valid(tcp))", "action set_port()",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("P4-16 output missing %q", want)
		}
	}
	// Egress-only actions must not appear in the ingress control.
	ing := src[strings.Index(src, "control Ingress"):strings.Index(src, "control Egress")]
	if strings.Contains(ing, "action set_port") {
		t.Error("egress action leaked into ingress control")
	}
}

func TestPrintP416AllOps(t *testing.T) {
	p := &Program{Name: "ops"}
	ops := []Op{
		{Kind: OpModifyField, Dst: "a", Src: "b"},
		{Kind: OpAddToField, Dst: "a", Src: "1"},
		{Kind: OpRegisterRead, Dst: "r", Src: "i"},
		{Kind: OpRegisterWrite, Dst: "r", Src: "v"},
		{Kind: OpRegisterRMW, Dst: "r", Src: "+1"},
		{Kind: OpHash, Dst: "h", Src: "key"},
		{Kind: OpRandom, Dst: "x", Src: "0..255"},
		{Kind: OpGenerateDigest, Dst: "d"},
		{Kind: OpRecirculate},
		{Kind: OpMulticast, Src: "3"},
		{Kind: OpDropPacket},
		{Kind: OpNoOp},
	}
	p.AddAction(&ActionDef{Name: "everything", Ops: ops})
	p.AddTable(&TableDef{Name: "t", Pipeline: PipeIngress, Match: MatchExact,
		Keys: []KeyDef{{Field: "k", Bits: 8}}, Actions: []string{"everything"}, Size: 1})
	p.Ingress = []ControlStmt{{Apply: "t"}}
	src := PrintP416(p)
	for _, want := range []string{"mcast_grp_a = 3", "drop_ctl = 1", "RECIRC_PORT", "digest_type"} {
		if !strings.Contains(src, want) {
			t.Errorf("P4-16 ops output missing %q", want)
		}
	}
}
