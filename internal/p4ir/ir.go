// Package p4ir models the P4 program that HyperTester's compiler generates:
// table and action definitions, register declarations, and control flow. It
// provides two consumers with a stable view of the program:
//
//   - a resource estimator following RMT-style stage accounting (match
//     crossbar bytes, SRAM and TCAM blocks, VLIW instruction slots, hash
//     bits, stateful ALUs, gateways), normalized against a switch.p4
//     baseline — the methodology of the paper's Table 7;
//   - a pretty-printer that renders P4-14-style source whose
//     control/table/action line count is what the paper's Table 5 compares
//     NTAPI against.
package p4ir

import "fmt"

// MatchKind mirrors the table match types the estimator prices differently.
type MatchKind string

// Match kinds.
const (
	MatchExact   MatchKind = "exact"
	MatchTernary MatchKind = "ternary"
	MatchRange   MatchKind = "range"
)

// PipelineKind places a table in the ingress or egress pipeline.
type PipelineKind string

// Pipelines.
const (
	PipeIngress PipelineKind = "ingress"
	PipeEgress  PipelineKind = "egress"
)

// OpKind enumerates primitive actions.
type OpKind string

// Primitive actions the generated programs use.
const (
	OpModifyField    OpKind = "modify_field"
	OpAddToField     OpKind = "add_to_field"
	OpRegisterRead   OpKind = "register_read"
	OpRegisterWrite  OpKind = "register_write"
	OpRegisterRMW    OpKind = "register_rmw" // stateful ALU program
	OpHash           OpKind = "modify_field_with_hash_based_offset"
	OpRandom         OpKind = "modify_field_rng_uniform"
	OpGenerateDigest OpKind = "generate_digest"
	OpRecirculate    OpKind = "recirculate"
	OpMulticast      OpKind = "modify_field_mcast_grp"
	OpDropPacket     OpKind = "drop"
	OpNoOp           OpKind = "no_op"
)

// Op is one primitive action invocation.
type Op struct {
	Kind OpKind
	Dst  string // destination field or register
	Src  string // source expression (field, constant, register)
	Bits int    // operand width in bits
}

// ActionDef is a compound action.
type ActionDef struct {
	Name string
	Ops  []Op
}

// KeyDef is one match key of a table.
type KeyDef struct {
	Field string
	Bits  int
}

// Entry is one match-action entry the compiler installs at deploy time.
// Tables populated at runtime by the control plane carry no Entries; the
// symbolic verifier treats those as hit-or-miss unknowns, while tables with
// Entries get per-entry reachability and shadowing analysis.
type Entry struct {
	// Values holds one value per table key, in Keys order.
	Values []uint64
	// Masks holds per-key ternary masks (all-ones = exact on that key);
	// nil on exact and range tables.
	Masks []uint64
	// Lo and Hi bound a range entry on the table's single key.
	Lo, Hi uint64
	// Priority orders ternary/range entries (higher wins).
	Priority int
	// Action names the entry's action; it must be one of the table's
	// Actions ("" selects the first).
	Action string
}

// ActionName resolves the entry's action against its table.
func (e *Entry) ActionName(t *TableDef) string {
	if e.Action != "" {
		return e.Action
	}
	if len(t.Actions) > 0 {
		return t.Actions[0]
	}
	return ""
}

// TableDef is a match-action table declaration.
type TableDef struct {
	Name     string
	Pipeline PipelineKind
	Match    MatchKind
	Keys     []KeyDef
	Actions  []string // names of ActionDefs
	Size     int      // allocated entries

	// Entries are the compile-time-installed entries, when the compiler
	// knows them (per-template gating, the always-on meta.one tables).
	// Nil means the table is populated at runtime.
	Entries []Entry
}

// RegisterDef is a register array declaration.
type RegisterDef struct {
	Name  string
	Width int // bits per cell
	Size  int // cells
}

// ControlStmt is one statement of the control flow: a table apply or a
// gateway condition with nested statements.
type ControlStmt struct {
	Apply string        // table name, when this is an apply
	If    string        // condition text, when this is a gateway
	Then  []ControlStmt // nested under If
	Else  []ControlStmt
}

// ParserEdge is one transition of the parse graph: after extracting From,
// the parser may select To. Hardware parsers compile this graph into a
// TCAM-driven state machine, which only terminates if the graph is acyclic.
type ParserEdge struct {
	From, To string
}

// Program is a full generated data-plane program.
type Program struct {
	Name      string
	Headers   []string // parsed header names, e.g. "ethernet", "ipv4", "tcp"
	Parser    []ParserEdge
	Actions   []*ActionDef
	Tables    []*TableDef
	Registers []*RegisterDef
	Ingress   []ControlStmt
	Egress    []ControlStmt
}

// ParserGraph returns the parse graph: the explicit Parser edges when
// present, otherwise a linear chain derived from Headers (the order the
// compiler lists them is the order the frames carry them).
func (p *Program) ParserGraph() []ParserEdge {
	if len(p.Parser) > 0 {
		return p.Parser
	}
	var edges []ParserEdge
	for i := 1; i < len(p.Headers); i++ {
		edges = append(edges, ParserEdge{From: p.Headers[i-1], To: p.Headers[i]})
	}
	return edges
}

// AddAction registers an action and returns it for chaining.
func (p *Program) AddAction(a *ActionDef) *ActionDef {
	p.Actions = append(p.Actions, a)
	return a
}

// AddTable registers a table.
func (p *Program) AddTable(t *TableDef) *TableDef {
	p.Tables = append(p.Tables, t)
	return t
}

// AddRegister registers a register array.
func (p *Program) AddRegister(r *RegisterDef) *RegisterDef {
	p.Registers = append(p.Registers, r)
	return r
}

// AddRegisterOnce registers a register array unless one with the same name
// already exists (shared structures like the trigger FIFO).
func (p *Program) AddRegisterOnce(r *RegisterDef) *RegisterDef {
	if existing := p.register(r.Name); existing != nil {
		return existing
	}
	return p.AddRegister(r)
}

// action looks an action up by name.
func (p *Program) action(name string) *ActionDef {
	for _, a := range p.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// register looks a register up by name.
func (p *Program) register(name string) *RegisterDef {
	for _, r := range p.Registers {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Validate checks internal references; the compiler calls it before
// deploying a program.
func (p *Program) Validate() error {
	for _, t := range p.Tables {
		for _, an := range t.Actions {
			if p.action(an) == nil {
				return fmt.Errorf("p4ir: table %s references unknown action %s", t.Name, an)
			}
		}
		if t.Size < 0 {
			return fmt.Errorf("p4ir: table %s has negative size", t.Name)
		}
		for i := range t.Entries {
			e := &t.Entries[i]
			if t.Match == MatchRange {
				if len(t.Keys) != 1 {
					return fmt.Errorf("p4ir: range table %s must have exactly one key", t.Name)
				}
				if e.Lo > e.Hi {
					return fmt.Errorf("p4ir: table %s entry %d has lo > hi", t.Name, i)
				}
			} else if len(e.Values) != len(t.Keys) {
				return fmt.Errorf("p4ir: table %s entry %d has %d key values, want %d",
					t.Name, i, len(e.Values), len(t.Keys))
			}
			if t.Match == MatchTernary && e.Masks != nil && len(e.Masks) != len(t.Keys) {
				return fmt.Errorf("p4ir: table %s entry %d has %d masks, want %d",
					t.Name, i, len(e.Masks), len(t.Keys))
			}
			if e.Action != "" {
				found := false
				for _, an := range t.Actions {
					if an == e.Action {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("p4ir: table %s entry %d names action %s not offered by the table",
						t.Name, i, e.Action)
				}
			}
		}
	}
	var checkCtl func(stmts []ControlStmt) error
	checkCtl = func(stmts []ControlStmt) error {
		for _, s := range stmts {
			if s.Apply != "" {
				found := false
				for _, t := range p.Tables {
					if t.Name == s.Apply {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("p4ir: control applies unknown table %s", s.Apply)
				}
			}
			if err := checkCtl(s.Then); err != nil {
				return err
			}
			if err := checkCtl(s.Else); err != nil {
				return err
			}
		}
		return nil
	}
	if err := checkCtl(p.Ingress); err != nil {
		return err
	}
	return checkCtl(p.Egress)
}
