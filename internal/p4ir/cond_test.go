package p4ir

import "testing"

func TestParseCond(t *testing.T) {
	cases := []struct {
		in   string
		ok   bool
		want string
	}{
		{"true", true, "true"},
		{"", true, "true"},
		{"meta.template_id != 0", true, "meta.template_id != 0"},
		{"meta.template_id == 2 and eg_intr_md.rid != 0", true,
			"meta.template_id == 2 and eg_intr_md.rid != 0"},
		{"ipv4.ttl >= 0x10", true, "ipv4.ttl >= 16"},
		{"pkt_len <= 1500", true, "pkt_len <= 1500"},
		{"tcp.flag == SYN", false, ""},        // symbolic constant
		{"now - last >= interval", false, ""}, // SALU program, not a gateway
		{"meta.x ~= 3", false, ""},
	}
	for _, c := range cases {
		got, ok := ParseCond(c.in)
		if ok != c.ok {
			t.Errorf("ParseCond(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && got.String() != c.want {
			t.Errorf("ParseCond(%q) = %q, want %q", c.in, got.String(), c.want)
		}
	}
}

func TestAtomNegate(t *testing.T) {
	pairs := [][2]CmpOp{
		{CmpEq, CmpNe}, {CmpLt, CmpGe}, {CmpLe, CmpGt},
	}
	for _, p := range pairs {
		if p[0].Negate() != p[1] || p[1].Negate() != p[0] {
			t.Errorf("negate %s <-> %s broken", p[0], p[1])
		}
	}
	if !CmpLe.Eval(3, 3) || CmpLt.Eval(3, 3) || !CmpNe.Eval(1, 2) {
		t.Error("CmpOp.Eval wrong")
	}
}

func TestValidateEntries(t *testing.T) {
	prog := func(e Entry, match MatchKind, keys int) *Program {
		p := &Program{Name: "t"}
		p.AddAction(&ActionDef{Name: "a"})
		kd := make([]KeyDef, keys)
		for i := range kd {
			kd[i] = KeyDef{Field: "meta.k", Bits: 16}
		}
		p.AddTable(&TableDef{
			Name: "tbl", Pipeline: PipeIngress, Match: match,
			Keys: kd, Actions: []string{"a"}, Size: 4,
			Entries: []Entry{e},
		})
		return p
	}
	if err := prog(Entry{Values: []uint64{1}}, MatchExact, 1).Validate(); err != nil {
		t.Errorf("valid exact entry rejected: %v", err)
	}
	if err := prog(Entry{Values: []uint64{1, 2}}, MatchExact, 1).Validate(); err == nil {
		t.Error("key-arity mismatch accepted")
	}
	if err := prog(Entry{Lo: 5, Hi: 2}, MatchRange, 1).Validate(); err == nil {
		t.Error("inverted range accepted")
	}
	if err := prog(Entry{Values: []uint64{1}, Action: "nope"}, MatchExact, 1).Validate(); err == nil {
		t.Error("unknown entry action accepted")
	}
}
