// Command htlint is HyperTester's static-analysis driver: a multichecker
// that runs the repository's analyzer suite (poolsafety, determinism,
// atcall — see internal/lint) over Go packages and exits non-zero on any
// diagnostic.
//
// Usage:
//
//	go run ./cmd/htlint ./...          # whole repository
//	go run ./cmd/htlint ./internal/asic
//	go run ./cmd/htlint -list          # describe the analyzers
//
// Suppress a single finding with a trailing or preceding comment:
//
//	//htlint:ignore poolsafety the scheduler owns queued events
//
// The IR-level pipeline verifier is separate: it runs inside the compiler
// on every Compile call (internal/core/compiler/verifyir.go) and rejects
// invalid pipeline plans at compile time.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hypertester/hypertester/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(*dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "htlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
