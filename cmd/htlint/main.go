// Command htlint is HyperTester's static-analysis driver: a multichecker
// that runs the repository's analyzer suite (poolsafety, determinism,
// atcall, obsalloc — see internal/lint) over Go packages and exits
// non-zero on any diagnostic.
//
// Usage:
//
//	go run ./cmd/htlint ./...          # whole repository
//	go run ./cmd/htlint ./internal/asic
//	go run ./cmd/htlint -list          # describe the analyzers
//
// Suppress a single finding with a trailing or preceding comment:
//
//	//htlint:ignore poolsafety the scheduler owns queued events
//
// The IR-level symbolic verifier is separate: it runs inside the compiler
// on every Compile call (internal/core/compiler, internal/verify) and has
// its own corpus driver, cmd/htverify.
package main

import (
	"os"

	"github.com/hypertester/hypertester/internal/lint"
)

func main() {
	tool := &lint.Tool{
		Name:     "htlint",
		Doc:      "run the repository analyzer suite over Go packages",
		Checkers: lint.AnalyzerCheckers(lint.DefaultAnalyzers()),
	}
	os.Exit(tool.Main(os.Args[1:]))
}
